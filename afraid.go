// Package afraid reproduces AFRAID — A Frequently Redundant Array of
// Independent Disks (Savage & Wilkes, USENIX 1996) — as a Go library.
//
// AFRAID eliminates RAID 5's small-update penalty by applying data
// writes immediately and deferring the parity update to the next idle
// period, recording stale-parity stripes in a small NVRAM bitmap. The
// array is *frequently* redundant instead of always redundant; policies
// trade the exposure window against performance, from pure AFRAID down
// to plain RAID 5.
//
// The package exposes the two halves of the reproduction:
//
//   - A functional software array (Store): real data over pluggable
//     block devices with AFRAID/RAID 5/RAID 0 modes, a background parity
//     scrubber, NVRAM crash recovery, failure injection, and
//     reconstruction. Use OpenStore.
//
//   - A discrete-event performance simulator: calibrated mechanical
//     disk models, the paper's controller configuration, the synthetic
//     workload catalog standing in for the original HP/IBM traces, and
//     the availability analytics of §3. Use SimulateTrace /
//     SimulateWorkload and the Avail* types.
//
// The cmd/experiments binary and the benchmarks in this package
// regenerate every table and figure in the paper's evaluation; see
// DESIGN.md and EXPERIMENTS.md.
package afraid

import (
	"io"
	"time"

	"afraid/internal/array"
	"afraid/internal/avail"
	"afraid/internal/core"
	"afraid/internal/disk"
	"afraid/internal/layout"
	"afraid/internal/sim"
	"afraid/internal/trace"
)

// Simulator types.
type (
	// SimMode selects the simulated array's redundancy behaviour.
	SimMode = array.Mode
	// SimConfig describes a simulated array (geometry, disk model,
	// caches, policies).
	SimConfig = array.Config
	// SimPolicy carries the AFRAID availability knobs for simulation.
	SimPolicy = array.Policy
	// SimMetrics summarizes a simulation run.
	SimMetrics = array.Metrics
	// Trace is a time-ordered I/O trace.
	Trace = trace.Trace
	// TraceRecord is a single trace I/O.
	TraceRecord = trace.Record
	// TraceParams parameterizes a synthetic workload generator.
	TraceParams = trace.Params
	// DiskParams describes a mechanical disk model.
	DiskParams = disk.Params
	// Geometry describes array striping.
	Geometry = layout.Geometry
	// SimFault injects a disk failure into a simulation (degraded-mode
	// study with optional hot-spare rebuild).
	SimFault = array.Fault
)

// Simulated array modes.
const (
	// SimRAID0 is the unprotected baseline (an AFRAID that never
	// updates parity, exactly as the paper models it).
	SimRAID0 = array.RAID0
	// SimRAID5 is the traditional always-redundant array.
	SimRAID5 = array.RAID5
	// SimAFRAID defers parity to idle periods.
	SimAFRAID = array.AFRAID
	// SimPARITYLOG is the §2 related-work baseline (Stodolsky et al.):
	// parity update images logged and batch-reintegrated.
	SimPARITYLOG = array.PARITYLOG
	// SimRAID6 keeps synchronous P and Q parity (§5).
	SimRAID6 = array.RAID6
	// SimAFRAID6 defers the Q update or both parity updates (§5),
	// selected by SimConfig.QDefer.
	SimAFRAID6 = array.AFRAID6

	// DeferQ defers only RAID 6's Q update (single-failure protection
	// retained at all times).
	DeferQ = array.DeferQ
	// DeferBoth defers both RAID 6 parity updates.
	DeferBoth = array.DeferBoth
)

// Availability analytics (paper §3).
type (
	// AvailParams carries the Table 1 constants plus array shape.
	AvailParams = avail.Params
	// AvailReport bundles derived MTTDL/MDLR figures.
	AvailReport = avail.Report
	// PowerModel is the §3.5 external-power failure model.
	PowerModel = avail.Power
)

// Functional store types.
type (
	// Store is the functional AFRAID array over block devices.
	Store = core.Store
	// StoreOptions configures a Store.
	StoreOptions = core.Options
	// StoreMode selects the store's redundancy mode.
	StoreMode = core.Mode
	// BlockDevice backs one member disk of a Store.
	BlockDevice = core.BlockDevice
	// MemDevice is an in-memory BlockDevice.
	MemDevice = core.MemDevice
	// FileDevice is a file-backed BlockDevice.
	FileDevice = core.FileDevice
	// NVRAM persists the marking memory across crashes.
	NVRAM = core.NVRAM
	// MemNVRAM is an in-memory NVRAM for tests and examples.
	MemNVRAM = core.MemNVRAM
	// FileNVRAM persists the marking memory in a file.
	FileNVRAM = core.FileNVRAM
	// DamageReport lists data lost during a repair.
	DamageReport = core.DamageReport
	// StripePolicy is the §5 per-range redundancy flag.
	StripePolicy = core.StripePolicy
)

// Store modes and stripe policies.
const (
	// StoreAFRAID defers parity to the background scrubber.
	StoreAFRAID = core.Afraid
	// StoreRAID5 maintains parity synchronously.
	StoreRAID5 = core.Raid5
	// StoreRAID0 never maintains parity.
	StoreRAID0 = core.Raid0
	// StoreRAID6 maintains P and Q synchronously (§5).
	StoreRAID6 = core.Raid6
	// StoreAFRAID6 defers the Q update (or both parities, with
	// StoreOptions.DeferBothParities) to the scrubber (§5).
	StoreAFRAID6 = core.Afraid6

	// PolicyDefault follows the store mode.
	PolicyDefault = core.PolicyDefault
	// PolicyAlwaysRedundant forces synchronous parity for a range.
	PolicyAlwaysRedundant = core.PolicyAlwaysRedundant
	// PolicyNeverRedundant disables parity for a range.
	PolicyNeverRedundant = core.PolicyNeverRedundant
)

// Store errors.
var (
	// ErrDataLoss marks bytes lost to a failure in an unprotected stripe.
	ErrDataLoss = core.ErrDataLoss
	// ErrTooManyFailures means redundancy cannot absorb the failures.
	ErrTooManyFailures = core.ErrTooManyFailures
)

// OpenStore assembles a functional AFRAID store over the devices,
// recovering the dirty-stripe map from nv (which may be nil for a
// volatile store).
func OpenStore(devs []BlockDevice, nv NVRAM, opts StoreOptions) (*Store, error) {
	return core.Open(devs, nv, opts)
}

// NewMemDevice allocates a zeroed in-memory block device.
func NewMemDevice(size int64) *MemDevice { return core.NewMemDevice(size) }

// OpenFileDevice creates or opens a file-backed device of exactly size
// bytes.
func OpenFileDevice(path string, size int64) (*FileDevice, error) {
	return core.OpenFileDevice(path, size)
}

// NewFileNVRAM returns a file-backed NVRAM at path.
func NewFileNVRAM(path string) *FileNVRAM { return core.NewFileNVRAM(path) }

// DefaultSimConfig returns the paper's experimental setup for the given
// mode: five spin-synchronized HP C3325-class disks, 8 KB stripe units,
// 256 KB write-through staging and read caches, CLOOK host queue, FCFS
// disk queues, 100 ms idle detection.
func DefaultSimConfig(mode SimMode) SimConfig { return array.DefaultConfig(mode) }

// DefaultAvailParams returns the paper's Table 1 constants.
func DefaultAvailParams() AvailParams { return avail.Default() }

// DiskModelC3325 returns the HP C3325-class disk model parameters.
func DiskModelC3325() DiskParams { return disk.C3325() }

// SimulateTrace replays a trace against a simulated array and returns
// its metrics.
func SimulateTrace(cfg SimConfig, tr *Trace) (SimMetrics, error) {
	return array.RunTrace(cfg, tr)
}

// SimulateWorkload generates the named catalog workload (see Workloads)
// and replays it against a simulated array.
func SimulateWorkload(cfg SimConfig, workload string, duration time.Duration, seed uint64) (SimMetrics, error) {
	return array.RunNamed(cfg, workload, duration, seed)
}

// Workloads lists the synthetic workload catalog, one entry per trace
// in the paper's evaluation (hplajw, snake, cello-usr, cello-news,
// netware, att, as400-1..4).
func Workloads() []string { return trace.Names() }

// WorkloadParams returns the generator parameters for a named workload.
func WorkloadParams(name string, duration time.Duration) (TraceParams, error) {
	return trace.Lookup(name, duration)
}

// GenerateTrace synthesizes a trace for an array of the given client
// capacity. Identical seeds produce identical traces.
func GenerateTrace(p TraceParams, capacity int64, seed uint64) (*Trace, error) {
	return trace.Generate(p, capacity, sim.NewRNG(seed))
}

// ReadTrace decodes a trace from the text format produced by
// (*Trace).Write (one "<time_us> <R|W> <offset> <length>" record per
// line).
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }
