// Command experiments regenerates the paper's evaluation: Table 2 /
// Figure 2 (relative performance), Table 3 and Table 4 (availability),
// Figure 3 (performance/availability tradeoff), Figure 4 (per-trace
// policy curves), and the DESIGN.md ablation sweeps.
//
// Usage:
//
//	experiments [-exp all|table2|table3|table4|fig3|fig4|ablation] [-dur 60s] [-seed 1996]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"afraid/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: all, table2, table3, table4, fig3, fig4, ablation")
	dur := flag.Duration("dur", 60*time.Second, "synthetic trace duration per workload")
	seed := flag.Uint64("seed", 1996, "workload generator seed")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	flag.Parse()

	cfg := exp.Config{Duration: *dur, Seed: *seed}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}

	needGrid := map[string]bool{"all": true, "table2": true, "table3": true, "table4": true, "fig3": true, "fig4": true}
	var grid *exp.Grid
	if needGrid[*which] {
		g, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		grid = g
	}

	switch *which {
	case "all":
		fmt.Println(grid.Table2())
		fmt.Println(grid.Table3())
		fmt.Println(grid.Table4())
		fmt.Println(grid.Figure3Text())
		fmt.Println(grid.Figure4Text())
		runAblations(*dur, *seed)
	case "table2":
		fmt.Println(grid.Table2())
	case "table3":
		fmt.Println(grid.Table3())
	case "table4":
		fmt.Println(grid.Table4())
	case "fig3":
		fmt.Println(grid.Figure3Text())
	case "fig4":
		fmt.Println(grid.Figure4Text())
	case "ablation":
		runAblations(*dur, *seed)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

func runAblations(dur time.Duration, seed uint64) {
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	idle, err := exp.IdleDelaySweep("cello-usr", dur, seed)
	check(err)
	fmt.Println(exp.RenderAblation("Ablation: idle-detection threshold (cello-usr)", idle))

	th, err := exp.DirtyThresholdSweep("att", dur, seed)
	check(err)
	fmt.Println(exp.RenderAblation("Ablation: dirty-stripe threshold (att)", th))

	co, err := exp.CoalesceSweep("netware", dur, seed)
	check(err)
	fmt.Println(exp.RenderAblation("Ablation: adjacent-stripe rebuild coalescing (netware)", co))

	ad, err := exp.AdaptiveIdleSweep("cello-usr", dur, seed)
	check(err)
	fmt.Println(exp.RenderAblation("Ablation: idle detector (cello-usr)", ad))

	width, err := exp.WidthSweep("cello-usr", dur, seed)
	check(err)
	fmt.Println(exp.RenderWidth(width))

	gran, err := exp.GranularitySweep("cello-news", dur, seed)
	check(err)
	fmt.Println(exp.RenderAblation("Extension (§5): sub-stripe marking granularity (cello-news)", gran))

	cons, err := exp.ConservativeSweep("att", dur, seed)
	check(err)
	fmt.Println(exp.RenderAblation("Extension (§5): conservative start (att)", cons))

	rel, err := exp.RelatedWorkSweep("att", dur, seed)
	check(err)
	fmt.Println(exp.RenderRelatedWork("att", rel))

	r6, err := exp.RAID6Sweep("att", dur, seed)
	check(err)
	fmt.Println(exp.RenderRAID6("att", r6))

	deg, err := exp.DegradedSweep("cello-usr", dur, seed)
	check(err)
	fmt.Println(exp.RenderDegraded("cello-usr", deg))
}
