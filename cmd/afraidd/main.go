// Command afraidd serves an AFRAID store as a network block service:
// the length-prefixed binary protocol of internal/server over TCP, with
// an expvar metrics endpoint, per-request deadlines, bounded in-flight
// backpressure, write coalescing, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	afraidd -listen :9323 -metrics 127.0.0.1:9324 -disks 5 -size 256M
//	afraidd -dir /var/lib/afraid -mode afraid          # file-backed, crash-safe
//	afraidd -mode raid5 -inflight 64 -timeout 10s      # always-redundant
//	afraidd -tier-disks 2 -tier-size 64M               # hybrid: mirrored front tier
//
// With -dir the member disks and the NVRAM marking memory live in
// files, so a restart resumes the parity rebuild exactly where the
// paper's crash recovery would.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"afraid/internal/core"
	"afraid/internal/idle"
	"afraid/internal/obs"
	"afraid/internal/server"
	"afraid/internal/tier"
)

func main() {
	listen := flag.String("listen", ":9323", "block service listen address")
	metricsAddr := flag.String("metrics", "127.0.0.1:9324", "metrics HTTP listen address (empty disables)")
	disks := flag.Int("disks", 5, "member disks")
	size := flag.String("size", "256M", "per-disk size (K/M/G suffixes)")
	dir := flag.String("dir", "", "directory for file-backed disks and NVRAM (empty = in-memory)")
	prealloc := flag.Bool("prealloc", false, "preallocate file-backed disk images at startup (fallocate)")
	mode := flag.String("mode", "afraid", "redundancy mode: afraid, raid5, raid0, raid6, afraid6")
	stripe := flag.String("stripe", "8K", "stripe unit size")
	scrubIdle := flag.Duration("scrub-idle", 100*time.Millisecond, "idle threshold before parity rebuild")
	dirtyThreshold := flag.Int("dirty-threshold", 0, "scrub under load past this many dirty stripes (0 = idle-only)")
	checksums := flag.Bool("checksums", false, "per-block CRC32C: verify every read, repair silent corruption from redundancy")
	tierDisks := flag.Int("tier-disks", 0, "mirrored front-tier devices (even, 0 disables the hybrid tier)")
	tierSize := flag.String("tier-size", "64M", "per-device front-tier size")
	tierExtent := flag.String("tier-extent", "64K", "front-tier migration extent size (power of two)")
	tierMaxDirty := flag.String("tier-max-dirty", "0", "front-tier dirty-bytes pressure valve (0 = half the front capacity)")
	tierIdle := flag.Duration("tier-idle", 50*time.Millisecond, "idle threshold before cold extents demote to the back tier")
	workers := flag.Int("workers", 0, "request worker pool size (0 = 2×GOMAXPROCS)")
	inflight := flag.Int("inflight", 0, "max in-flight requests before ERR_BUSY (0 = default 256)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = default 30s)")
	coalesce := flag.Int("coalesce", 0, "write coalescing byte limit (0 = default 256K, negative disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on shutdown")
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("afraidd: ")

	m, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	diskSize, err := parseSize(*size)
	if err != nil {
		log.Fatalf("-size: %v", err)
	}
	stripeUnit, err := parseSize(*stripe)
	if err != nil {
		log.Fatalf("-stripe: %v", err)
	}

	devs, nv, err := openBacking(*dir, *disks, diskSize, *prealloc)
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.Open(devs, nv, core.Options{
		Mode:           m,
		StripeUnit:     stripeUnit,
		ScrubIdle:      *scrubIdle,
		DirtyThreshold: *dirtyThreshold,
		Checksums:      *checksums,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("store: %d×%s %s, capacity %s, %d dirty stripes carried over",
		*disks, *size, m, fmtSize(st.Capacity()), st.DirtyStripes())

	// Optional hybrid front tier: mirrored write-back staging over the
	// parity store, à la HP AutoRAID.
	var hybrid *tier.Store
	backend := server.Backend(st)
	if *tierDisks > 0 {
		tSize, err := parseSize(*tierSize)
		if err != nil {
			log.Fatalf("-tier-size: %v", err)
		}
		tExtent, err := parseSize(*tierExtent)
		if err != nil {
			log.Fatalf("-tier-extent: %v", err)
		}
		tMaxDirty, err := parseSize(*tierMaxDirty)
		if err != nil && *tierMaxDirty != "0" {
			log.Fatalf("-tier-max-dirty: %v", err)
		}
		if *tierMaxDirty == "0" {
			tMaxDirty = 0
		}
		front, tnv, err := openTierBacking(*dir, *tierDisks, tSize, *prealloc)
		if err != nil {
			log.Fatal(err)
		}
		hybrid, err = tier.Open(st, front, tnv, tier.Options{
			ExtentSize:    tExtent,
			MaxDirtyBytes: tMaxDirty,
			Idle:          idle.NewTimer(*tierIdle),
		})
		if err != nil {
			log.Fatal(err)
		}
		backend = hybrid
		ts := hybrid.TierStats()
		log.Printf("tier: %d×%s mirrored front, extent %s, %d extents recovered resident (%s dirty)",
			*tierDisks, fmtSize(tSize), fmtSize(tExtent), ts.ResidentExtents, fmtSize(ts.DirtyBytes))
	}

	srv := server.New(backend, server.Options{
		Workers:        *workers,
		MaxInflight:    *inflight,
		RequestTimeout: *timeout,
		CoalesceLimit:  *coalesce,
		Logf:           log.Printf,
	})

	if *metricsAddr != "" {
		srv.Metrics().Publish("afraid.server")
		// Degraded-state snapshot: which members are dead, what the
		// failures cost (the paper's exposure, realized), and how far
		// repair sweeps have gotten.
		expvar.Publish("afraid.store", expvar.Func(func() any {
			st1 := st.Stats()
			dead := st.DeadDisks()
			if dead == nil {
				dead = []int{} // render as [] rather than null
			}
			return map[string]any{
				"dead_disks":        dead,
				"dirty_stripes":     st.DirtyStripes(),
				"damage_bytes":      st1.DamageBytes,
				"damaged_stripes":   st1.DamagedStripes,
				"recovered_stripes": st1.RecoveredStripes,
				"degraded_reads":    st1.DegradedReads,
				"nvram_recovered":   st1.NVRAMRecovered,
				"checksum_detected": st1.ChecksumDetected,
				"checksum_repaired": st1.ChecksumRepaired,
				"checksum_lost":     st1.ChecksumLost,
				"quarantined":       len(st.QuarantinedStripes()),
			}
		}))
		if hybrid != nil {
			// Hybrid occupancy: what lives in the front tier, how the
			// migration engine is keeping up, and the hit ratio the
			// whole design exists to earn.
			expvar.Publish("afraid.tier", expvar.Func(func() any {
				ts := hybrid.TierStats()
				return map[string]any{
					"front_read_hits":   ts.FrontReadHits,
					"front_read_misses": ts.FrontReadMisses,
					"front_write_hits":  ts.FrontWriteHits,
					"front_hit_ratio":   ts.FrontHitRatio(),
					"promotes":          ts.Promotes,
					"demotes":           ts.Demotes,
					"evictions":         ts.Evictions,
					"promoted_bytes":    ts.PromotedBytes,
					"demoted_bytes":     ts.DemotedBytes,
					"write_arounds":     ts.WriteArounds,
					"resident_extents":  ts.ResidentExtents,
					"resident_bytes":    ts.ResidentBytes,
					"dirty_extents":     ts.DirtyExtents,
					"dirty_bytes":       ts.DirtyBytes,
					"mirror_failovers":  ts.MirrorFailovers,
					"degraded_writes":   ts.DegradedWrites,
					"resilvered":        ts.Resilvered,
					"map_recovered":     ts.MapRecovered,
				}
			}))
		}
		// Node identity card for cluster tooling: when this daemon is one
		// member of an internal/cluster volume, afraidctl and monitoring
		// scrape these fields under the stable "afraid.node" key to line
		// the member up against the volume geometry. Keep the keys stable.
		expvar.Publish("afraid.node", expvar.Func(func() any {
			g := st.Geometry()
			return map[string]any{
				"capacity":      st.Capacity(),
				"stripe_unit":   g.StripeUnit,
				"disks":         g.Disks,
				"mode":          m.String(),
				"dirty_stripes": st.DirtyStripes(),
				"dead_disks":    len(st.DeadDisks()),
			}
		}))
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		// Latency histograms and op traces from both layers: the
		// server's per-op and queue/service split, and the store's
		// per-phase (stripe-lock wait, device I/O, parity, scrub).
		sections := []obs.Section{
			{Name: "server", Reg: srv.Metrics().Obs()},
			{Name: "core", Reg: st.Obs()},
		}
		if hybrid != nil {
			sections = append(sections, obs.Section{Name: "tier", Reg: hybrid.Obs()})
		}
		mux.Handle("/debug/histograms", obs.HistogramHandler(sections...))
		mux.Handle("/debug/trace", obs.TraceHandler(sections...))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("metrics: http://%s/metrics (histograms at /debug/histograms, pprof at /debug/pprof/)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("%v: draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
	}()

	log.Printf("serving on %s", *listen)
	if err := srv.ListenAndServe(*listen); err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	// Drained: make the array fully redundant before exit so the next
	// start carries over no dirty stripes (file-backed NVRAM would
	// resume them anyway; this is the clean-shutdown parity point). With
	// a hybrid tier the flush also demotes every dirty front extent.
	if hybrid != nil {
		if err := hybrid.Flush(); err != nil {
			log.Printf("final tier flush: %v", err)
		}
		if err := hybrid.Close(); err != nil {
			log.Printf("tier close: %v", err)
		}
	} else if err := st.Flush(); err != nil {
		log.Printf("final flush: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	log.Printf("bye")
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "afraid":
		return core.Afraid, nil
	case "raid5":
		return core.Raid5, nil
	case "raid0":
		return core.Raid0, nil
	case "raid6":
		return core.Raid6, nil
	case "afraid6":
		return core.Afraid6, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// parseSize reads "8K", "256M", "2G", or plain bytes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// openBacking builds the member devices and NVRAM: files under dir when
// set (durable across restarts), memory otherwise.
func openBacking(dir string, disks int, size int64, prealloc bool) ([]core.BlockDevice, core.NVRAM, error) {
	devs := make([]core.BlockDevice, disks)
	if dir == "" {
		for i := range devs {
			devs[i] = core.NewMemDevice(size)
		}
		return devs, &core.MemNVRAM{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fopts := core.FileDeviceOptions{Preallocate: prealloc}
	for i := range devs {
		d, err := core.OpenFileDeviceOpts(filepath.Join(dir, fmt.Sprintf("disk%d.img", i)), size, fopts)
		if err != nil {
			return nil, nil, err
		}
		devs[i] = d
	}
	return devs, core.NewFileNVRAM(filepath.Join(dir, "nvram.bin")), nil
}

// openTierBacking builds the front-tier mirror devices and the extent
// map's marking memory, file-backed under dir when set.
func openTierBacking(dir string, disks int, size int64, prealloc bool) ([]core.BlockDevice, core.NVRAM, error) {
	devs := make([]core.BlockDevice, disks)
	if dir == "" {
		for i := range devs {
			devs[i] = core.NewMemDevice(size)
		}
		return devs, &core.MemNVRAM{}, nil
	}
	fopts := core.FileDeviceOptions{Preallocate: prealloc}
	for i := range devs {
		d, err := core.OpenFileDeviceOpts(filepath.Join(dir, fmt.Sprintf("tier%d.img", i)), size, fopts)
		if err != nil {
			return nil, nil, err
		}
		devs[i] = d
	}
	return devs, core.NewFileNVRAM(filepath.Join(dir, "tier-map.bin")), nil
}
