// Command traceinfo prints the burst/idle structure of a trace — the
// property AFRAID exploits. It reads a trace file or analyzes a named
// catalog workload.
//
// Usage:
//
//	traceinfo -workload hplajw -dur 5m
//	traceinfo -file att.trace
//	traceinfo -all            # the whole catalog side by side
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"afraid"
)

func main() {
	workload := flag.String("workload", "", "named catalog workload")
	file := flag.String("file", "", "trace file to analyze")
	dur := flag.Duration("dur", 5*time.Minute, "duration for generated workloads")
	seed := flag.Uint64("seed", 1, "generator seed")
	gap := flag.Duration("gap", 0, "idle-gap threshold (default 250ms)")
	all := flag.Bool("all", false, "summarize every catalog workload")
	flag.Parse()

	capacity := afraid.DefaultSimConfig(afraid.SimRAID5).Geometry.Capacity()
	load := func(name string) *afraid.Trace {
		p, err := afraid.WorkloadParams(name, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		tr, err := afraid.GenerateTrace(p, capacity, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		return tr
	}

	switch {
	case *all:
		fmt.Printf("%-11s %8s %8s %9s %10s %10s %10s\n",
			"workload", "reqs", "writes%", "rate/s", "burstlen", "idle%", "p95gap")
		for _, name := range afraid.Workloads() {
			s := load(name).Analyze(*gap)
			fmt.Printf("%-11s %8d %7.0f%% %9.1f %10.1f %9.1f%% %10v\n",
				name, s.Requests, 100*s.WriteFrac, s.MeanRate,
				s.MeanBurstLen, 100*s.IdleFrac, s.P95IdleGap.Round(time.Millisecond))
		}
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		tr, err := afraid.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		fmt.Printf("trace %s\n%s", tr.Name, tr.Analyze(*gap))
	case *workload != "":
		tr := load(*workload)
		fmt.Printf("workload %s over %v\n%s", *workload, *dur, tr.Analyze(*gap))
	default:
		fmt.Fprintln(os.Stderr, "traceinfo: give -workload, -file, or -all")
		os.Exit(2)
	}
}
