// Command afraidctl stands up, inspects, and heals a distributed AFRAID
// volume striped over afraidd nodes (internal/cluster). Each invocation
// opens the volume over the listed nodes, runs one subcommand, and
// exits; the volume's marking memory can be kept in a state file so
// dirty and stale maps survive between invocations and host restarts.
//
// Usage:
//
//	afraidctl -nodes host1:9323,host2:9323,host3:9323,host4:9323 status
//	afraidctl -nodes ... -state /var/lib/afraid/ctl.marks fill -bytes 16M -seed 1
//	afraidctl -nodes ... heal -node 2          # rebuild what node 2 missed
//	afraidctl -nodes ... heal -node 2 -full    # blank replacement machine
//	afraidctl -nodes ... flush                 # drain every dirty stripe
//	afraidctl -nodes ... verify                # audit parity of clean stripes
//	afraidctl -nodes ... check -bytes 16M -seed 1   # re-read a fill workload
//	afraidctl -nodes ... locate -addr 1048576  # address → (stripe, node)
//
// The node list order IS the striping geometry: keep it identical
// across invocations or the volume will look at the wrong units.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"afraid/internal/cluster"
	"afraid/internal/core"
	"afraid/internal/server"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated afraidd addresses (order = geometry, required)")
	stripe := flag.String("stripe", "64K", "cluster stripe unit (must match across invocations)")
	state := flag.String("state", "", "marking-memory file (empty = in-memory for this run only)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-node operation deadline")
	dialTO := flag.Duration("dial-timeout", 5*time.Second, "connect+handshake deadline per node")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("afraidctl: ")

	args := flag.Args()
	if *nodes == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: afraidctl -nodes a,b,c[,d...] [-stripe 64K] [-state file] <status|flush|verify|heal|fill|check|locate> [args]")
		os.Exit(2)
	}
	addrs := strings.Split(*nodes, ",")
	stripeUnit, err := parseSize(*stripe)
	if err != nil {
		log.Fatalf("-stripe: %v", err)
	}
	opts := cluster.Options{
		StripeUnit:  stripeUnit,
		NodeTimeout: *timeout,
		DialTimeout: *dialTO,
		// A short-lived control process should not race a background
		// drain against its own subcommand; drains happen via flush.
		DisableDrain: true,
		Logf:         log.Printf,
	}
	if *state != "" {
		opts.NV = core.NewFileNVRAM(*state)
	}
	v, err := cluster.Dial(addrs, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer v.Close()

	ctx := context.Background()
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "status":
		runStatus(ctx, v, addrs, *dialTO)
	case "flush":
		runFlush(ctx, v)
	case "verify":
		runVerify(ctx, v)
	case "heal":
		runHeal(ctx, v, rest)
	case "fill":
		runFill(v, rest)
	case "check":
		runCheck(v, rest)
	case "locate":
		runLocate(v, rest)
	default:
		log.Fatalf("unknown subcommand %q", cmd)
	}
}

// runStatus prints the volume view and a per-node table, aggregating
// each daemon's own STAT alongside the volume's reachability state.
func runStatus(ctx context.Context, v *cluster.Volume, addrs []string, dialTO time.Duration) {
	st := v.Stat()
	fmt.Printf("volume: capacity %s, stripe unit %s, %d stripes, %d dirty",
		fmtSize(st.Capacity), fmtSize(st.StripeUnit), st.Stripes, st.Stats.DirtyStripes)
	if st.Stats.Recovered {
		fmt.Printf(" [RECOVERED: marking memory was lost, full rebuild pending]")
	}
	fmt.Println()
	fmt.Printf("  drains=%d degraded_reads=%d degraded_writes=%d healed=%d lost=%d failovers=%d high_water=%d\n",
		st.Stats.ParityDrains, st.Stats.DegradedReads, st.Stats.DegradedWrites,
		st.Stats.HealedStripes, st.Stats.LostStripes, st.Stats.NodeFailovers, st.Stats.DirtyHighWater)
	fmt.Printf("  hedged=%d hedge_wins=%d retries=%d retries_exhausted=%d auto_heals=%d quarantines=%d\n",
		st.Stats.HedgedReads, st.Stats.HedgeWins, st.Stats.Retries,
		st.Stats.RetriesExhausted, st.Stats.AutoHeals, st.Stats.Quarantines)
	fmt.Printf("%-4s %-22s %-12s %-5s %-10s %-10s %-14s %-20s %s\n", "NODE", "ADDR", "STATE", "FAILS", "STALE", "NODE-DIRTY", "NODE-CAPACITY", "TIER(res/hits/mig)", "CSUM(det/rep/lost)")
	for _, n := range st.Nodes {
		nodeDirty, nodeCap, nodeTier, nodeCsum := "-", "-", "-", "-"
		// Ask the daemon itself: its STAT carries its own array's
		// dirty count and capacity (the afraid.node expvar's fields,
		// over the block protocol so no metrics port is needed).
		if c, err := server.DialTimeout(addrs[n.Index], dialTO); err == nil {
			cctx, cancel := context.WithTimeout(ctx, dialTO)
			if ds, err := c.Stat(cctx); err == nil {
				nodeDirty = strconv.FormatInt(ds.DirtyStripes, 10)
				nodeCap = fmtSize(ds.Capacity)
				if ds.ChecksumDetected > 0 {
					nodeCsum = fmt.Sprintf("%d/%d/%d", ds.ChecksumDetected, ds.ChecksumRepaired, ds.ChecksumLost)
				}
				// A hybrid node (STAT v4) reports its front-tier
				// occupancy: resident bytes, front hits, and migration
				// traffic (promotes+demotes).
				if ds.TierResidentBytes > 0 || ds.TierFrontHits > 0 || ds.TierPromotes > 0 {
					nodeTier = fmt.Sprintf("%s/%d/%d", fmtSize(ds.TierResidentBytes), ds.TierFrontHits, ds.TierPromotes+ds.TierDemotes)
				}
			}
			cancel()
			c.Close()
		}
		state := n.State.String()
		if n.LastErr != "" {
			state += " (" + n.LastErr + ")"
		}
		fmt.Printf("%-4d %-22s %-12s %-5d %-10d %-10s %-14s %-20s %s\n", n.Index, n.Addr, state, n.ConsecFails, n.StaleStripes, nodeDirty, nodeCap, nodeTier, nodeCsum)
	}
}

func runFlush(ctx context.Context, v *cluster.Volume) {
	before := v.DirtyStripes()
	if err := v.Flush(ctx); err != nil {
		log.Fatalf("flush: %v (%d stripes still dirty)", err, v.DirtyStripes())
	}
	fmt.Printf("flushed: %d stripes drained, volume fully redundant\n", before)
}

func runVerify(ctx context.Context, v *cluster.Volume) {
	bad, skipped, err := v.VerifyParity(ctx)
	if err != nil {
		log.Fatalf("verify: %v", err)
	}
	fmt.Printf("verify: %d stripes checked clean, %d unverifiable (dirty or nodes down)\n",
		v.Geometry().Stripes()-int64(len(bad))-skipped, skipped)
	if len(bad) > 0 {
		log.Fatalf("PARITY MISMATCH in stripes %v", bad)
	}
}

func runHeal(ctx context.Context, v *cluster.Volume, args []string) {
	fs := flag.NewFlagSet("heal", flag.ExitOnError)
	node := fs.Int("node", -1, "node index to heal (required)")
	full := fs.Bool("full", false, "rebuild every stripe unit (blank replacement disk)")
	fs.Parse(args)
	if *node < 0 {
		log.Fatal("heal: -node required")
	}
	rep, err := v.HealNode(ctx, *node, *full)
	if err != nil {
		log.Fatalf("heal: %v", err)
	}
	fmt.Printf("heal node %d: %d stripe units rebuilt, %d skipped (retry later)\n", *node, rep.Healed, rep.Remaining)
	if len(rep.Lost) > 0 {
		log.Fatalf("DATA LOSS: %d stripes were unredundant when the node failed and cannot be rebuilt: %v\n"+
			"(rewrite them to clear; reads keep returning ErrDataLoss until then)", len(rep.Lost), rep.Lost)
	}
}

// runFill writes a deterministic pseudo-random workload — the demo/load
// half of a kill-and-heal walkthrough. check re-reads it.
func runFill(v *cluster.Volume, args []string) {
	seed, bytes := fillFlags(v, args)
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 256<<10)
	var off int64
	for off < bytes {
		n := int64(len(buf))
		if off+n > bytes {
			n = bytes - off
		}
		rng.Read(buf[:n])
		if _, err := v.WriteAt(buf[:n], off); err != nil {
			log.Fatalf("fill at %d: %v", off, err)
		}
		off += n
	}
	fmt.Printf("filled %s (seed %d), %d stripes dirty\n", fmtSize(bytes), seed, v.DirtyStripes())
}

func runCheck(v *cluster.Volume, args []string) {
	seed, bytes := fillFlags(v, args)
	rng := rand.New(rand.NewSource(seed))
	want := make([]byte, 256<<10)
	got := make([]byte, 256<<10)
	var off, lost int64
	for off < bytes {
		n := int64(len(want))
		if off+n > bytes {
			n = bytes - off
		}
		rng.Read(want[:n])
		_, err := v.ReadAt(got[:n], off)
		switch {
		case err == nil:
			for i := int64(0); i < n; i++ {
				if got[i] != want[i] {
					log.Fatalf("SILENT CORRUPTION at byte %d: got %#x want %#x", off+i, got[i], want[i])
				}
			}
		case errors.Is(err, core.ErrDataLoss):
			lost++ // reported loss: allowed, loud, accounted
		default:
			log.Fatalf("check at %d: %v", off, err)
		}
		off += n
	}
	if lost > 0 {
		fmt.Printf("check: %s verified with %d regions reporting data loss (never silent)\n", fmtSize(bytes), lost)
		os.Exit(1)
	}
	fmt.Printf("check: %s verified byte-for-byte (seed %d)\n", fmtSize(bytes), seed)
}

func fillFlags(v *cluster.Volume, args []string) (seed, bytes int64) {
	fs := flag.NewFlagSet("fill/check", flag.ExitOnError)
	s := fs.Int64("seed", 1, "workload seed")
	b := fs.String("bytes", "16M", "workload size")
	fs.Parse(args)
	n, err := parseSize(*b)
	if err != nil {
		log.Fatalf("-bytes: %v", err)
	}
	if n > v.Capacity() {
		n = v.Capacity()
	}
	return *s, n
}

func runLocate(v *cluster.Volume, args []string) {
	fs := flag.NewFlagSet("locate", flag.ExitOnError)
	addr := fs.Int64("addr", -1, "volume byte address")
	fs.Parse(args)
	st, node, off, err := v.Locate(*addr)
	if err != nil {
		log.Fatalf("locate: %v", err)
	}
	g := v.Geometry()
	fmt.Printf("address %d: stripe %d, data on node %d at offset %d, parity on node %d\n",
		*addr, st, node, off, g.ParityDisk(st))
}

// parseSize reads "8K", "256M", "2G", or plain bytes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
