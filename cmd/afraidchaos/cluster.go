package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"afraid/internal/cluster"
	"afraid/internal/core"
	"afraid/internal/fault"
	"afraid/internal/server"
)

// The -cluster mode audits the network-layer loss contract: a real
// multi-node volume (each member an afraidd over TCP) is driven through
// a fault.Proxy per node, and seeded schedules inject partitions,
// refusals, brownouts, mid-frame resets, frame truncations, and flap
// storms. Every episode ends with a full recovery and a byte-exact
// audit against a shadow: loss must be reported (core.ErrDataLoss),
// confined to stripes written while unredundant, and repairable by
// rewriting — never silent, never outside the dirty set.

// Fault classes, round-robin over episodes (or pinned with -class).
const (
	clsPartition = iota // accept-then-black-hole: TCP up, every request stalls
	clsRefuse           // hard partition: conns reset, dials fail fast
	clsSlow             // brownout: victim answers at ~20x loopback latency
	clsReset            // mid-frame RST after a byte budget
	clsTruncate         // next request frame cut short, then RST
	clsFlap             // partition/restore cycles until the damper fences the node
	numClasses
)

var classNames = [numClasses]string{
	"partition", "refuse", "slow", "reset", "truncate", "flap",
}

func parseClusterClass(s string) (int, error) {
	if s == "" {
		return -1, nil
	}
	for i, n := range classNames {
		if n == s {
			return i, nil
		}
	}
	return -1, fmt.Errorf("unknown fault class %q (want one of %v)", s, classNames)
}

// chaosNode is one afraidd in miniature: a server.Server over a
// single-device in-memory store.
type chaosNode struct {
	store *core.Store
	srv   *server.Server
	lis   net.Listener
	done  chan error
}

func newChaosNode(size int64) (*chaosNode, error) {
	st, err := core.Open(
		[]core.BlockDevice{core.NewMemDevice(size)},
		&core.MemNVRAM{},
		core.Options{Mode: core.Raid0, StripeUnit: 8 << 10, ScrubIdle: time.Hour},
	)
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return nil, err
	}
	srv := server.New(st, server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	return &chaosNode{store: st, srv: srv, lis: lis, done: done}, nil
}

func (n *chaosNode) addr() string { return n.lis.Addr().String() }

func (n *chaosNode) close() {
	n.srv.Close()
	<-n.done
	n.store.Close()
}

type clusterResult struct {
	class      int
	violations []string
	lossEvents int // reads/writes that reported loss (always legal if counted here)
	lossBytes  int64

	failovers, hedged, hedgeWins, retries, autoHeals, quarantines uint64
	resets, truncations, refused                                  uint64
}

// exercised reports whether the episode actually hit its fault class's
// target mechanism — the coverage the acceptance run insists on.
func (r *clusterResult) exercised() bool {
	switch r.class {
	case clsPartition, clsRefuse:
		return r.failovers > 0
	case clsSlow:
		return r.hedgeWins > 0
	case clsReset:
		return r.resets > 0
	case clsTruncate:
		return r.truncations > 0
	case clsFlap:
		return r.quarantines > 0
	}
	return false
}

// runCluster drives seeded network-chaos episodes against proxied TCP
// volumes and prints the per-class audit table. Exit 0 means no
// loss-contract violation and full fault-class coverage.
func runCluster(seed int64, episodes, ops int, classFlag string, verbose, failFast bool) int {
	onlyClass, err := parseClusterClass(classFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afraidchaos:", err)
		return 2
	}
	type tally struct {
		episodes, survived, loss, violated, exercised int
	}
	var tallies [numClasses]tally
	var agg clusterResult
	var violations []string

	for i := 0; i < episodes; i++ {
		class := i % numClasses
		if onlyClass >= 0 {
			class = onlyClass
		}
		epSeed := seed + int64(i)
		res, err := runClusterEpisode(epSeed, class, ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "afraidchaos: cluster episode seed=%d class=%s: %v\n",
				epSeed, classNames[class], err)
			return 2
		}
		t := &tallies[class]
		t.episodes++
		switch {
		case len(res.violations) > 0:
			t.violated++
		case res.lossEvents > 0:
			t.loss++
		default:
			t.survived++
		}
		if res.exercised() {
			t.exercised++
		}
		agg.failovers += res.failovers
		agg.hedged += res.hedged
		agg.hedgeWins += res.hedgeWins
		agg.retries += res.retries
		agg.autoHeals += res.autoHeals
		agg.quarantines += res.quarantines
		agg.resets += res.resets
		agg.truncations += res.truncations
		agg.refused += res.refused
		agg.lossBytes += res.lossBytes
		if verbose || len(res.violations) > 0 {
			fmt.Printf("seed=%-6d %-9s failovers=%d hedges=%d/%d retries=%d heals=%d quar=%d loss=%d viol=%d\n",
				epSeed, classNames[class], res.failovers, res.hedgeWins, res.hedged,
				res.retries, res.autoHeals, res.quarantines, res.lossEvents, len(res.violations))
		}
		for _, v := range res.violations {
			violations = append(violations,
				fmt.Sprintf("seed=%d class=%s: %s\n  repro: afraidchaos -cluster -seed %d -episodes 1 -class %s",
					epSeed, classNames[class], v, epSeed, classNames[class]))
		}
		if failFast && len(violations) > 0 {
			break
		}
	}

	fmt.Printf("\n%-10s %9s %9s %6s %9s %10s\n",
		"class", "episodes", "survived", "lost", "violated", "exercised")
	for c := 0; c < numClasses; c++ {
		t := tallies[c]
		if t.episodes == 0 {
			continue
		}
		fmt.Printf("%-10s %9d %9d %6d %9d %10d\n",
			classNames[c], t.episodes, t.survived, t.loss, t.violated, t.exercised)
	}
	fmt.Printf("\ncluster: %d failovers, %d/%d hedge wins, %d retries, %d auto-heals, %d quarantines\n",
		agg.failovers, agg.hedgeWins, agg.hedged, agg.retries, agg.autoHeals, agg.quarantines)
	fmt.Printf("cluster: %d resets, %d truncations, %d refused dials, %d reported-loss bytes\n",
		agg.resets, agg.truncations, agg.refused, agg.lossBytes)

	if len(violations) > 0 {
		fmt.Printf("\n%d VIOLATION(S):\n", len(violations))
		for _, v := range violations {
			fmt.Println(" ", v)
		}
		return 1
	}
	// Coverage gate: a chaos run that never exercised its fault class
	// proves nothing; fail loudly rather than report a vacuous pass.
	gaps := 0
	for c := 0; c < numClasses; c++ {
		if tallies[c].episodes > 0 && tallies[c].exercised == 0 {
			fmt.Printf("coverage gap: %d %s episodes, none exercised the fault\n",
				tallies[c].episodes, classNames[c])
			gaps++
		}
	}
	if gaps > 0 {
		return 1
	}
	fmt.Println("\nno loss-contract violations")
	return 0
}

// runClusterEpisode builds a fresh 4-node proxied TCP volume, injects
// one fault class, recovers, and audits. Returned violations break the
// loss contract; a returned error is harness infrastructure failing.
func runClusterEpisode(epSeed int64, class, ops int) (*clusterResult, error) {
	const (
		nNodes   = 4
		nData    = nNodes - 1
		unit     = int64(8 << 10)
		nodeSize = 32 * unit // 32 stripes per node
	)
	if ops <= 0 {
		ops = 40
	}
	res := &clusterResult{class: class}
	rng := rand.New(rand.NewSource(epSeed ^ 0xc1a0))
	ctx := context.Background()

	nodes := make([]*chaosNode, nNodes)
	proxies := make([]*fault.Proxy, nNodes)
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
		for _, n := range nodes {
			if n != nil {
				n.close()
			}
		}
	}()
	members := make([]cluster.Member, nNodes)
	for i := range members {
		n, err := newChaosNode(nodeSize)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		p, err := fault.NewProxy(n.addr(), epSeed*int64(nNodes)+int64(i))
		if err != nil {
			return nil, err
		}
		proxies[i] = p
		members[i] = cluster.Member{
			Addr: p.Addr(),
			Dial: func() (cluster.Node, error) {
				return server.DialTimeout(p.Addr(), 500*time.Millisecond)
			},
		}
	}
	opts := cluster.Options{
		StripeUnit:      unit,
		NodeTimeout:     200 * time.Millisecond,
		DialTimeout:     150 * time.Millisecond,
		ProbeInterval:   15 * time.Millisecond,
		DrainIdle:       10 * time.Millisecond,
		HedgeDelay:      -1,
		FlapThreshold:   3,
		FlapWindow:      time.Minute,
		QuarantineDecay: -1, // recovery below is the administrator
	}
	if class == clsSlow {
		opts.HedgeDelay = 5 * time.Millisecond
	}
	v, err := cluster.Open(members, opts)
	if err != nil {
		return nil, err
	}
	defer v.Close()

	capacity := v.Capacity()
	stripeBytes := int64(nData) * unit
	shadow := make([]byte, capacity)
	rng.Read(shadow)
	if _, err := v.WriteAt(shadow, 0); err != nil {
		return nil, fmt.Errorf("fill: %w", err)
	}
	if err := v.Flush(ctx); err != nil {
		return nil, fmt.Errorf("fill flush: %w", err)
	}

	victim := rng.Intn(nNodes)
	touched := make(map[int64]bool)  // stripes written after the fill flush
	reported := make(map[int64]bool) // stripes whose loss the volume reported
	violate := func(format string, a ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, a...))
	}

	wbuf := make([]byte, unit)
	rbuf := make([]byte, unit)
	writeOne := func() {
		off := rng.Int63n(capacity/unit) * unit
		st := off / stripeBytes
		rng.Read(wbuf)
		_, err := v.WriteAt(wbuf, off)
		switch {
		case err == nil:
			copy(shadow[off:], wbuf)
			touched[st] = true
		case errors.Is(err, core.ErrDataLoss):
			// Legal only because the write itself dirtied the stripe; the
			// content is now indeterminate until the recovery rewrite.
			touched[st] = true
			reported[st] = true
			res.lossEvents++
		default:
			violate("write at %d: %v", off, err)
		}
	}
	readOne := func() {
		off := rng.Int63n(capacity/unit) * unit
		st := off / stripeBytes
		_, err := v.ReadAt(rbuf, off)
		switch {
		case err == nil:
			if !reported[st] && !bytes.Equal(rbuf, shadow[off:off+unit]) {
				violate("silent divergence at offset %d (stripe %d)", off, st)
			}
		case errors.Is(err, core.ErrDataLoss):
			if !touched[st] {
				violate("loss reported on stripe %d, which was never unredundant", st)
			}
			reported[st] = true
			res.lossEvents++
		default:
			violate("read at %d: %v", off, err)
		}
	}
	mixed := func(n int) {
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				readOne()
			} else {
				writeOne()
			}
		}
	}
	waitCond := func(d time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(2 * time.Millisecond)
		}
		return true
	}

	// Inject the episode's fault and run the workload through it.
	switch class {
	case clsPartition:
		proxies[victim].Partition()
		mixed(ops)
	case clsRefuse:
		proxies[victim].Refuse()
		mixed(ops)
	case clsSlow:
		// Victim answers everything, just slowly; hedged reads must hide
		// the tail without a demotion.
		proxies[victim].SetLatency(8*time.Millisecond, 8*time.Millisecond, 4*time.Millisecond)
		for i := 0; i < ops; i++ {
			if i%4 == 3 {
				writeOne()
			} else {
				readOne()
			}
		}
	case clsReset:
		proxies[victim].ResetAfter(int64(2000 + rng.Intn(6000)))
		mixed(ops)
	case clsTruncate:
		proxies[victim].TruncateNext(int64(4 + rng.Intn(60)))
		mixed(ops)
	case clsFlap:
		// Partition/restore cycles; the prober redials and auto-heals each
		// time until the flap damper quarantines the node.
		for cycle := 0; cycle < 8; cycle++ {
			proxies[victim].Partition()
			if !waitCond(5*time.Second, func() bool {
				s := v.NodeStates()[victim].State
				return s == cluster.StateDown || s == cluster.StateQuarantined
			}) {
				violate("flap cycle %d: prober never demoted the partitioned node", cycle)
				break
			}
			proxies[victim].Restore()
			if !waitCond(5*time.Second, func() bool {
				s := v.NodeStates()[victim].State
				// Healing counts as back up: the node is reachable but
				// still carries stale marks from the previous cycle.
				return s == cluster.StateUp || s == cluster.StateHealing ||
					s == cluster.StateQuarantined
			}) {
				violate("flap cycle %d: node neither redialed nor quarantined", cycle)
				break
			}
			if v.NodeStates()[victim].State == cluster.StateQuarantined {
				break
			}
			mixed(3)
		}
		if st := v.Stats(); st.Quarantines > 0 {
			if st.AutoHeals > uint64(opts.FlapThreshold)+2 {
				violate("heal storm: %d auto-heals before the damper tripped (threshold %d)",
					st.AutoHeals, opts.FlapThreshold)
			}
		}
	}

	// Recovery: the fault clears; an administrator heals the victim (also
	// lifting any quarantine), rewrites whatever the volume reported
	// lost, and the volume must converge to clean, redundant, byte-exact.
	//
	// Quiesce before the heal: requests that were in flight when the
	// link failed — black-holed mid-stream, for instance — are delivered
	// once it is restored (there is no write fencing on the wire). They
	// all target stripes the volume already marked stale, so letting
	// them land first means the rebuild writes last. The prober's
	// auto-heal applies the same settle.
	proxies[victim].Restore()
	time.Sleep(250 * time.Millisecond)
	healDeadline := time.Now().Add(15 * time.Second)
	for {
		rep, healErr := v.HealNode(ctx, victim, false)
		if healErr == nil {
			for _, st := range rep.Lost {
				if !touched[st] {
					violate("heal reported stripe %d lost, but it was never unredundant", st)
				}
				reported[st] = true
			}
			res.lossBytes += int64(len(rep.Lost)) * stripeBytes
			if rep.Remaining == 0 {
				break
			}
		}
		if time.Now().After(healDeadline) {
			violate("heal never converged: %v", healErr)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for st := range reported {
		off := st * stripeBytes
		if _, err := v.WriteAt(shadow[off:off+stripeBytes], off); err != nil {
			violate("rewrite of reported-loss stripe %d failed: %v", st, err)
		}
	}
	if err := v.Flush(ctx); err != nil {
		violate("recovery flush: %v", err)
	}
	if !waitCond(10*time.Second, func() bool {
		s := v.NodeStates()[victim]
		return s.State == cluster.StateUp && s.StaleStripes == 0
	}) {
		s := v.NodeStates()[victim]
		violate("victim never returned to clean service (state=%v stale=%d)", s.State, s.StaleStripes)
	}

	got := make([]byte, capacity)
	if _, err := v.ReadAt(got, 0); err != nil {
		violate("final read: %v", err)
	} else if !bytes.Equal(got, shadow) {
		violate("volume diverged from shadow after recovery")
	}
	if bad, skipped, err := v.VerifyParity(ctx); err != nil {
		violate("parity verify: %v", err)
	} else {
		if len(bad) > 0 {
			violate("parity mismatch on stripes %v after recovery", bad)
		}
		if skipped > 0 {
			violate("%d stripes unverifiable after recovery", skipped)
		}
	}

	st := v.Stats()
	res.failovers = st.NodeFailovers
	res.hedged = st.HedgedReads
	res.hedgeWins = st.HedgeWins
	res.retries = st.Retries
	res.autoHeals = st.AutoHeals
	res.quarantines = st.Quarantines
	ps := proxies[victim].Stats()
	res.resets = uint64(ps.Resets)
	res.truncations = uint64(ps.Truncations)
	res.refused = uint64(ps.Refused)
	return res, nil
}
