// Command afraidchaos runs seeded chaos schedules against the
// functional store: randomized workloads interrupted by power cuts,
// marking-memory loss, transient member faults, disk failures, and
// repairs — plus, with -checksums (the default), silent bit flips on
// both I/O paths that the store's block checksums must catch — with
// every episode checked against the shadow model in internal/fault. An episode *survives* when nothing was lost, is
// *lost* when data was lost but the loss was legal and reported (the
// paper's exposure window), and is *violated* when the store broke its
// contract — silent divergence, unreported loss, or loss outside the
// unredundant set.
//
// Every schedule is derived from the episode's seed, so a violation is
// reproducible from the printed repro line alone.
//
// Usage:
//
// With -tier the schedules instead target the hybrid tier
// (internal/tier): a mirrored write-back front over an AFRAID back
// end, with power cuts torn mid-promote and mid-demote, extent-map
// loss, and front-copy fail-stops, all checked against a byte-level
// shadow.
//
// With -cluster the schedules target a real multi-node volume: four
// afraidd servers over TCP, each behind a fault.Proxy, with seeded
// network faults — black-hole and refused partitions, brownouts
// absorbed by hedged reads, mid-frame resets, frame truncations, and
// flap storms that must end in quarantine — every episode recovered
// and audited byte-for-byte against the loss contract.
//
// Usage:
//
//	afraidchaos                              # 200 episodes, seed 1
//	afraidchaos -episodes 500 -seed 7 -v
//	afraidchaos -modes afraid,raid6 -ops 300
//	afraidchaos -tier -episodes 200          # hybrid-tier schedules
//	afraidchaos -cluster -episodes 200       # network-chaos schedules
//	afraidchaos -cluster -class flap -v      # one fault class only
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"afraid/internal/core"
	"afraid/internal/fault"
	"afraid/internal/tier"
)

func main() {
	seed := flag.Int64("seed", 1, "base seed; episode i uses seed+i")
	episodes := flag.Int("episodes", 200, "episodes to run, round-robin over -modes")
	modesFlag := flag.String("modes", "afraid,raid5,raid6,afraid6", "comma-separated policies")
	ops := flag.Int("ops", 0, "workload operations per episode (0 = harness default)")
	disks := flag.Int("disks", 0, "member disks (0 = harness default)")
	stripes := flag.Int64("stripes", 0, "stripes per disk (0 = harness default)")
	checksums := flag.Bool("checksums", true, "open stores with block checksums and arm silent bit flips")
	flips := flag.Bool("flips", true, "arm silent bit-flip faults (with -checksums=false they go undetected)")
	tierRun := flag.Bool("tier", false, "run hybrid-tier schedules (internal/tier) instead of bare-store ones")
	clusterRun := flag.Bool("cluster", false, "run network-chaos schedules against a proxied multi-node TCP volume")
	classFlag := flag.String("class", "", "with -cluster: pin every episode to one fault class (partition, refuse, slow, reset, truncate, flap)")
	verbose := flag.Bool("v", false, "print every episode")
	failFast := flag.Bool("fail-fast", false, "stop at the first violation")
	flag.Parse()

	if *tierRun {
		os.Exit(runTier(*seed, *episodes, *ops, *verbose, *failFast))
	}
	if *clusterRun {
		os.Exit(runCluster(*seed, *episodes, *ops, *classFlag, *verbose, *failFast))
	}

	modes, err := parseModes(*modesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afraidchaos:", err)
		os.Exit(2)
	}

	tallies := make(map[core.Mode]*tally, len(modes))
	for _, m := range modes {
		tallies[m] = &tally{}
	}
	var violations []string

	for i := 0; i < *episodes; i++ {
		mode := modes[i%len(modes)]
		epSeed := *seed + int64(i)
		cfg := schedule(epSeed, mode, *checksums, *flips)
		cfg.Ops = *ops
		cfg.Disks = *disks
		cfg.StripesPerDisk = *stripes

		res, err := fault.RunEpisode(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "afraidchaos: episode seed=%d mode=%v: %v\n", epSeed, mode, err)
			os.Exit(2)
		}
		t := tallies[mode]
		t.note(res)
		if *verbose || len(res.Violations) > 0 {
			fmt.Printf("seed=%-6d %-8v %s\n", epSeed, mode, describe(res))
		}
		for _, v := range res.Violations {
			violations = append(violations,
				fmt.Sprintf("seed=%d mode=%v: %s\n  repro: afraidchaos -seed %d -episodes 1 -modes %v -checksums=%v -flips=%v",
					epSeed, mode, v, epSeed, mode, *checksums, *flips))
		}
		if *failFast && len(violations) > 0 {
			break
		}
	}

	fmt.Printf("\n%-8s %9s %9s %6s %9s %6s %11s %9s %6s %9s %6s\n",
		"policy", "episodes", "survived", "lost", "violated", "crash", "lost-bytes", "repaired",
		"flips", "csum-fix", "csum-lost")
	for _, m := range modes {
		t := tallies[m]
		fmt.Printf("%-8v %9d %9d %6d %9d %6d %11d %9d %6d %9d %6d\n",
			m, t.episodes, t.survived, t.lost, t.violated, t.crashed, t.lostBytes, t.recovered,
			t.flips, t.csumRepaired, t.csumLost)
	}

	if len(violations) > 0 {
		fmt.Printf("\n%d VIOLATION(S):\n", len(violations))
		for _, v := range violations {
			fmt.Println(" ", v)
		}
		os.Exit(1)
	}
	fmt.Println("\nno invariant violations")
}

// runTier drives seeded hybrid-tier episodes: every fourth episode is
// fault-free, and the rest mix power cuts (torn mid-promote,
// mid-demote or mid-mirror-write depending on the seed), extent-map
// loss, and front-copy fail-stops.
func runTier(seed int64, episodes, ops int, verbose, failFast bool) int {
	var violations []string
	var t struct {
		survived, violated, crashed  int
		promotes, demotes, frontHits uint64
		mapRecovered, copyFailed     int
	}
	for i := 0; i < episodes; i++ {
		epSeed := seed + int64(i)
		cfg := tierSchedule(epSeed)
		cfg.Ops = ops
		res, err := tier.RunChaosEpisode(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "afraidchaos: tier episode seed=%d: %v\n", epSeed, err)
			return 2
		}
		if len(res.Violations) > 0 {
			t.violated++
		} else {
			t.survived++
		}
		if res.Crashed {
			t.crashed++
		}
		if res.MapRecovered {
			t.mapRecovered++
		}
		if res.FrontCopyFailed {
			t.copyFailed++
		}
		t.promotes += res.Promotes
		t.demotes += res.Demotes
		t.frontHits += res.FrontHits
		if verbose || len(res.Violations) > 0 {
			fmt.Printf("seed=%-6d tier acked=%d failed=%d promotes=%d demotes=%d hits=%d crash=%v maploss=%v copyfail=%v\n",
				epSeed, res.AckedWrites, res.FailedWrites, res.Promotes, res.Demotes,
				res.FrontHits, res.Crashed, res.MapRecovered, res.FrontCopyFailed)
		}
		for _, v := range res.Violations {
			violations = append(violations,
				fmt.Sprintf("seed=%d: %s\n  repro: afraidchaos -tier -seed %d -episodes 1", epSeed, v, epSeed))
		}
		if failFast && len(violations) > 0 {
			break
		}
	}
	fmt.Printf("\ntier: %d episodes, %d survived, %d violated, %d crashed, %d map-loss recoveries, %d copy fail-stops\n",
		episodes, t.survived, t.violated, t.crashed, t.mapRecovered, t.copyFailed)
	fmt.Printf("tier: %d promotes, %d demotes, %d front hits\n", t.promotes, t.demotes, t.frontHits)
	if len(violations) > 0 {
		fmt.Printf("\n%d VIOLATION(S):\n", len(violations))
		for _, v := range violations {
			fmt.Println(" ", v)
		}
		return 1
	}
	fmt.Println("\nno invariant violations")
	return 0
}

// tierSchedule derives a tier episode's fault plan from its seed.
func tierSchedule(epSeed int64) tier.ChaosConfig {
	rng := rand.New(rand.NewSource(epSeed ^ 0x7ae5))
	cfg := tier.ChaosConfig{Seed: epSeed}
	cfg.PowerCut = rng.Float64() < 0.6
	if cfg.PowerCut {
		cfg.DropTierMap = rng.Float64() < 0.25
	}
	if !cfg.DropTierMap {
		// Map loss plus a dead mirror copy is a double failure outside
		// the contract; the harness would clamp it anyway.
		cfg.FrontCopyFail = rng.Float64() < 0.3
	}
	if rng.Float64() < 0.3 {
		cfg.FrontPairs = 2
	}
	return cfg
}

// schedule derives an episode's fault plan from its seed, independently
// of the workload stream (which RunEpisode seeds itself).
func schedule(epSeed int64, mode core.Mode, checksums, flips bool) fault.Config {
	rng := rand.New(rand.NewSource(epSeed ^ 0x5eed))
	cfg := fault.Config{Seed: epSeed, Mode: mode, Checksums: checksums}
	if flips {
		cfg.FlipBits = rng.Intn(3)
		cfg.ReadRot = rng.Intn(2)
	}
	cfg.PowerCut = rng.Float64() < 0.5
	deferredMode := mode == core.Afraid || mode == core.Afraid6
	if cfg.PowerCut && deferredMode {
		cfg.DropNVRAM = rng.Float64() < 0.25
	}
	// RunEpisode caps failures at the mode's redundancy (0 for raid0).
	cfg.DiskFails = rng.Intn(3)
	cfg.Transients = rng.Intn(2)
	if cfg.DiskFails > 0 || cfg.Transients > 0 {
		cfg.Repair = rng.Float64() < 0.9
	}
	if mode == core.Afraid6 {
		cfg.DeferBothParities = rng.Float64() < 0.5
	}
	return cfg
}

type tally struct {
	episodes, survived, lost, violated int
	crashed                            int
	lostBytes                          int64
	recovered                          uint64
	flips                              int
	csumDetected, csumRepaired         uint64
	csumLost                           uint64
}

func (t *tally) note(r *fault.Result) {
	t.episodes++
	switch {
	case len(r.Violations) > 0:
		t.violated++
	case r.LostBytes > 0 || r.ChecksumsLost > 0:
		t.lost++
	default:
		t.survived++
	}
	if r.Crashed {
		t.crashed++
	}
	t.lostBytes += r.LostBytes
	t.recovered += r.RecoveredStripes
	t.flips += r.FlipBits
	t.csumDetected += r.ChecksumsDetected
	t.csumRepaired += r.ChecksumsRepaired
	t.csumLost += r.ChecksumsLost
}

func describe(r *fault.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "acked=%d failed=%d", r.AckedWrites, r.FailedWrites)
	if r.Crashed {
		fmt.Fprintf(&b, " crash(dirty=%d holes=%d)", r.DirtyAtCrash, r.HoleStripes)
	}
	if r.NVRAMRebuild {
		b.WriteString(" nvram-rebuild")
	}
	if len(r.FailedDisks) > 0 {
		fmt.Fprintf(&b, " failed-disks=%v", r.FailedDisks)
	}
	if r.LostBytes > 0 {
		fmt.Fprintf(&b, " lost=%dB damaged=%d", r.LostBytes, r.DamagedStripes)
	}
	if r.RecoveredStripes > 0 {
		fmt.Fprintf(&b, " repaired=%d", r.RecoveredStripes)
	}
	if r.FlipBits > 0 {
		fmt.Fprintf(&b, " flips=%d(det=%d rep=%d lost=%d)",
			r.FlipBits, r.ChecksumsDetected, r.ChecksumsRepaired, r.ChecksumsLost)
	}
	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, " VIOLATIONS=%d", len(r.Violations))
	}
	return b.String()
}

func parseModes(s string) ([]core.Mode, error) {
	var modes []core.Mode
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "afraid":
			modes = append(modes, core.Afraid)
		case "raid5":
			modes = append(modes, core.Raid5)
		case "raid0":
			modes = append(modes, core.Raid0)
		case "raid6":
			modes = append(modes, core.Raid6)
		case "afraid6":
			modes = append(modes, core.Afraid6)
		case "":
		default:
			return nil, fmt.Errorf("unknown mode %q", name)
		}
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("no modes in %q", s)
	}
	return modes, nil
}
