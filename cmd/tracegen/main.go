// Command tracegen emits a synthetic workload trace in the text format
// (one record per line: "<time_us> <R|W> <offset> <length>").
//
// Usage:
//
//	tracegen -workload att -dur 5m -seed 7 > att.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"afraid"
)

func main() {
	workload := flag.String("workload", "cello-usr", "named workload from the catalog")
	dur := flag.Duration("dur", 5*time.Minute, "trace duration")
	seed := flag.Uint64("seed", 1, "generator seed")
	capacity := flag.Int64("capacity", 0, "client capacity in bytes (default: the paper's 5-disk RAID 5)")
	list := flag.Bool("list", false, "list catalog workloads and their parameters")
	flag.Parse()

	if *list {
		for _, name := range afraid.Workloads() {
			p, err := afraid.WorkloadParams(name, *dur)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			fmt.Printf("%-11s burst=%.0f intra=%v idle>=%v(alpha %.2f) writes=%.0f%% footprint=%.0f%%\n",
				name, p.MeanBurst, p.IntraGap, p.IdleMin, p.IdleAlpha,
				100*p.WriteFrac, 100*p.FootprintFrac)
		}
		return
	}

	cap := *capacity
	if cap == 0 {
		cap = afraid.DefaultSimConfig(afraid.SimRAID5).Geometry.Capacity()
	}
	p, err := afraid.WorkloadParams(*workload, *dur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	tr, err := afraid.GenerateTrace(p, cap, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	s := tr.Stats()
	fmt.Fprintf(os.Stderr, "tracegen: %d requests over %v (%.1f/s, %.0f%% writes, mean %d bytes)\n",
		s.Requests, s.Duration.Round(time.Second), s.MeanRate, 100*s.WriteFrac, s.MeanSize)
}
