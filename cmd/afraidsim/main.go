// Command afraidsim runs one simulation: a workload (named catalog
// entry or trace file) against an array mode and policy, and prints the
// performance and availability metrics.
//
// Usage:
//
//	afraidsim -mode afraid -workload cello-usr -dur 60s
//	afraidsim -mode raid5 -trace /path/to/trace.txt
//	afraidsim -mode afraid -target 1.5e6 -threshold 20 -workload att
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"afraid"
)

func main() {
	mode := flag.String("mode", "afraid", "array mode: raid0, raid5, afraid, paritylog, raid6, afraid6")
	workload := flag.String("workload", "cello-usr", "named workload from the catalog")
	traceFile := flag.String("trace", "", "trace file (overrides -workload)")
	dur := flag.Duration("dur", 60*time.Second, "synthetic trace duration")
	seed := flag.Uint64("seed", 1, "workload generator seed")
	idleDelay := flag.Duration("idle", 0, "idle-detection threshold (default 100ms)")
	threshold := flag.Int("threshold", 0, "dirty-stripe threshold (0 = unbounded)")
	target := flag.Float64("target", 0, "MTTDL_x target in hours (0 = pure AFRAID)")
	coalesce := flag.Bool("coalesce", false, "coalesce adjacent stripe rebuilds")
	gran := flag.Int("granularity", 0, "sub-stripe marking slots per stripe (§5; AFRAID mode)")
	conservative := flag.Bool("conservative", false, "start in RAID5 mode until idle headroom is observed (§5)")
	deferBoth := flag.Bool("defer-both", false, "afraid6: defer both parities instead of only Q")
	flag.Parse()

	var m afraid.SimMode
	switch *mode {
	case "raid0":
		m = afraid.SimRAID0
	case "raid5":
		m = afraid.SimRAID5
	case "afraid":
		m = afraid.SimAFRAID
	case "paritylog":
		m = afraid.SimPARITYLOG
	case "raid6":
		m = afraid.SimRAID6
	case "afraid6":
		m = afraid.SimAFRAID6
	default:
		fmt.Fprintf(os.Stderr, "afraidsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := afraid.DefaultSimConfig(m)
	cfg.Policy.IdleDelay = *idleDelay
	cfg.Policy.DirtyThreshold = *threshold
	cfg.Policy.TargetMTTDL = *target
	cfg.Policy.CoalesceAdjacent = *coalesce
	cfg.Policy.MarkGranularity = *gran
	cfg.Policy.ConservativeStart = *conservative
	if *deferBoth {
		cfg.QDefer = afraid.DeferBoth
	}

	var metrics afraid.SimMetrics
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "afraidsim:", ferr)
			os.Exit(1)
		}
		tr, terr := afraid.ReadTrace(f)
		f.Close()
		if terr != nil {
			fmt.Fprintln(os.Stderr, "afraidsim:", terr)
			os.Exit(1)
		}
		metrics, err = afraid.SimulateTrace(cfg, tr)
	} else {
		metrics, err = afraid.SimulateWorkload(cfg, *workload, *dur, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "afraidsim:", err)
		os.Exit(1)
	}

	fmt.Printf("mode            %v\n", metrics.Mode)
	fmt.Printf("requests        %d (%d reads, %d writes)\n", metrics.Completed, metrics.Reads, metrics.Writes)
	fmt.Printf("mean I/O time   %v (reads %v, writes %v)\n",
		metrics.MeanIOTime.Round(time.Microsecond),
		metrics.MeanRead.Round(time.Microsecond),
		metrics.MeanWrite.Round(time.Microsecond))
	fmt.Printf("p95 / p99 / max %v / %v / %v\n",
		metrics.P95IOTime.Round(time.Microsecond),
		metrics.P99IOTime.Round(time.Microsecond),
		metrics.MaxIOTime.Round(time.Microsecond))
	fmt.Printf("trace time      %v\n", metrics.EndTime.Round(time.Millisecond))
	if m == afraid.SimPARITYLOG {
		fmt.Printf("parity log     %d buffer flushes, %d reintegrations, %d stalled writes\n",
			metrics.LogFlushes, metrics.Reintegrations, metrics.LogStalls)
	}
	if m == afraid.SimAFRAID || m == afraid.SimAFRAID6 {
		fmt.Printf("unprotected     %.2f%% of the run\n", 100*metrics.FracUnprotected)
		fmt.Printf("parity lag      mean %.1f KB, max %.1f KB\n", metrics.MeanParityLag/1e3, metrics.MaxParityLag/1e3)
		fmt.Printf("rebuilds        %d stripes in %d episodes (%d cut short, %d forced)\n",
			metrics.RebuiltStripes, metrics.RebuildEpisodes, metrics.EpisodesCutShort, metrics.ForcedStripes)
		if *target > 0 {
			fmt.Printf("MTTDL_x         %d reverts, %v in RAID5 mode\n", metrics.Reverts, metrics.RevertedTime.Round(time.Millisecond))
		}
		ap := afraid.DefaultAvailParams()
		var rep afraid.AvailReport
		if m == afraid.SimAFRAID6 {
			rep = ap.AFRAID6Report(metrics.FracUnprotected, metrics.MeanParityLag, *deferBoth)
		} else {
			rep = ap.AFRAIDReport(metrics.FracUnprotected, metrics.MeanParityLag)
		}
		fmt.Printf("disk MTTDL      %.3g h (overall %.3g h with support hardware)\n", rep.DiskMTTDL, rep.OverallMTTDL)
		fmt.Printf("disk MDLR       %.3g B/h\n", rep.DiskMDLR)
	}
}
