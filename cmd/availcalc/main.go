// Command availcalc reproduces the paper's §3 analytic availability
// arithmetic: Table 1 constants, RAID 5/RAID 0/AFRAID MTTDL and MDLR,
// the support-component and NVRAM comparisons, and the §3.5 power model.
//
// Usage:
//
//	availcalc                 # full §3 walkthrough
//	availcalc -frac 0.1 -lag 2e6   # AFRAID report for measured inputs
//	availcalc -power          # §3.5 power-failure arithmetic
package main

import (
	"flag"
	"fmt"

	"afraid"
)

func main() {
	frac := flag.Float64("frac", -1, "measured unprotected-time fraction (Tunprot/Ttotal)")
	lag := flag.Float64("lag", 0, "measured mean parity lag in bytes")
	power := flag.Bool("power", false, "show the §3.5 power-failure model only")
	table1 := flag.Bool("table1", false, "show the Table 1 constants only")
	flag.Parse()

	p := afraid.DefaultAvailParams()

	if *table1 {
		fmt.Printf("Table 1 parameter values:\n")
		fmt.Printf("  disk MTTF (raw)            %.3g h\n", p.DiskMTTFRaw)
		fmt.Printf("  support hardware MTTDL     %.3g h\n", p.SupportMTTDL)
		fmt.Printf("  failure-prediction coverage %.2f\n", p.Coverage)
		fmt.Printf("  mean time to repair        %.0f h\n", p.MTTR)
		fmt.Printf("  stripe unit size           %.0f bytes\n", p.StripeUnit)
		fmt.Printf("  disk size                  %.3g bytes\n", p.DiskSize)
		fmt.Printf("  disks                      %d (N=%d)\n", p.Disks, p.N())
		return
	}

	if *power {
		pw := afraid.PowerModel{MainsMTTF: 4300, WriteDuty: 0.10, LossBytes: 30e3}
		fmt.Printf("external power (mains MTTF 4300 h, 10%% write duty):\n")
		fmt.Printf("  MTTDL %.3g h (paper: 43k)\n", pw.MTTDL())
		fmt.Printf("  MDLR  %.2g B/h (paper: ~0.7, roughly doubling the disk MDLR)\n", pw.MDLR())
		pw.UPSMTTF = 200e3
		fmt.Printf("with a 200k-hour UPS:\n")
		fmt.Printf("  MTTDL %.3g h (paper: back to 2M)\n", pw.MTTDL())
		return
	}

	if *frac >= 0 {
		rep := p.AFRAIDReport(*frac, *lag)
		fmt.Printf("AFRAID with measured frac=%.4f, lag=%.3g bytes:\n", *frac, *lag)
		fmt.Printf("  disk-related MTTDL  %.4g h\n", rep.DiskMTTDL)
		fmt.Printf("  overall MTTDL       %.4g h (support-limited at %.3g h)\n", rep.OverallMTTDL, p.SupportMTTDL)
		fmt.Printf("  disk-related MDLR   %.4g B/h\n", rep.DiskMDLR)
		fmt.Printf("  overall MDLR        %.4g B/h\n", rep.OverallMDLR)
		return
	}

	fmt.Printf("Section 3 walkthrough (Table 1 parameters, %d-disk array):\n\n", p.Disks)
	fmt.Printf("effective disk MTTF (coverage %.1f): %.3g h\n", p.Coverage, p.DiskMTTF())
	fmt.Printf("eq (1) RAID5 catastrophic MTTDL:    %.3g h (~%.0f years; paper: ~4e9 h, 475,000 years)\n",
		p.RAID5CatastrophicMTTDL(), p.RAID5CatastrophicMTTDL()/8760)
	fmt.Printf("eq (3) RAID5 catastrophic MDLR:     %.2g B/h (paper: ~0.8)\n", p.RAID5CatastrophicMDLR())
	fmt.Printf("RAID0 disk MTTDL:                   %.3g h\n", p.RAID0DiskMTTDL())
	fmt.Printf("RAID0 MDLR:                         %.3g B/h\n", p.RAID0MDLR())
	fmt.Printf("support MDLR at 2M h:               %.3g B/h (paper: 4.0 KB/h)\n", p.SupportMDLR())
	fmt.Printf("PrestoServe NVRAM (1MB @ 15k h):    %.3g B/h (paper: 67)\n", 1e6/15e3)
	fmt.Printf("\nAFRAID exposure examples (eq 2, eq 4):\n")
	for _, f := range []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.0} {
		rep := p.AFRAIDReport(f, 1e6)
		fmt.Printf("  frac=%.2f: disk MTTDL %.3g h, overall %.3g h\n", f, rep.DiskMTTDL, rep.OverallMTTDL)
	}
	fmt.Printf("\nlesson (§3.3): overall availability is dominated by the support hardware,\n")
	fmt.Printf("so trading disk-layer redundancy for performance is nearly free.\n")
}
