module afraid

go 1.22
