// Netserve: serve an AFRAID store over TCP and drive it with concurrent
// network clients — the request path a production array actually sees.
// An in-process server on a loopback port, four clients writing and
// reading in parallel, a STAT over the wire, the metrics snapshot, and
// a graceful drain.
//
//	go run ./examples/netserve
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"afraid/internal/core"
	"afraid/internal/server"
)

func main() {
	// A 5-disk AFRAID store; the server layers the block protocol over
	// it. cmd/afraidd is the standalone version of this wiring.
	devs := make([]core.BlockDevice, 5)
	for i := range devs {
		devs[i] = core.NewMemDevice(8 << 20)
	}
	store, err := core.Open(devs, &core.MemNVRAM{}, core.Options{
		Mode:      core.Afraid,
		ScrubIdle: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	srv := server.New(store, server.Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	addr := lis.Addr().String()
	fmt.Printf("afraid block service on %s\n", addr)

	// Four concurrent clients, each hammering its own region with 4 KB
	// writes then reading them back. Request IDs let each connection
	// keep many requests in flight and complete them out of order.
	const clients = 4
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			base := int64(w) * (c.Capacity() / clients)
			buf := make([]byte, 4<<10)
			for i := range buf {
				buf[i] = byte(w + i)
			}
			for i := 0; i < 64; i++ {
				if _, err := c.WriteAt(buf, base+int64(i)*int64(len(buf))); err != nil {
					log.Fatalf("client %d write: %v", w, err)
				}
			}
			got := make([]byte, len(buf))
			if _, err := c.ReadAt(got, base); err != nil {
				log.Fatalf("client %d read: %v", w, err)
			}
			fmt.Printf("client %d: wrote+verified 256 KB at offset %d\n", w, base)
		}()
	}
	wg.Wait()

	// STAT travels the same wire as the data path.
	c, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	st, err := c.Stat(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STAT: mode=%s writes=%d dirty-stripes=%d (parity deferred, data already durable)\n",
		st.ModeString(), st.Writes, st.DirtyStripes)
	// STAT v2 carries the server's latency percentiles over the wire —
	// the paper's response-time metric, live instead of simulated.
	fmt.Printf("STAT: write latency p50=%v p95=%v p99=%v\n",
		st.WriteP50.Round(time.Microsecond), st.WriteP95.Round(time.Microsecond), st.WriteP99.Round(time.Microsecond))

	// FLUSH is the whole-array parity point.
	if err := c.Flush(context.Background()); err != nil {
		log.Fatal(err)
	}
	st, _ = c.Stat(context.Background())
	fmt.Printf("after FLUSH: dirty-stripes=%d\n", st.DirtyStripes)
	c.Close()

	fmt.Printf("metrics: %s\n", srv.Metrics())

	// Graceful drain: in-flight requests finish, responses flush, then
	// connections close.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")

	// Degraded-state snapshot — what afraidd publishes as the
	// "afraid.store" expvar. Healthy here, but this is where dead
	// members and realized data loss would show up.
	stats := store.Stats()
	fmt.Printf("store health: dead-disks=%v damage-bytes=%d damaged-stripes=%d recovered-stripes=%d\n",
		store.DeadDisks(), stats.DamageBytes, stats.DamagedStripes, stats.RecoveredStripes)
}
