// Crashrecovery: run AFRAID over file-backed devices with a file-backed
// NVRAM, "crash" without flushing, reopen, and show that the marking
// memory brings the array back to exactly the right rebuild set — and
// that a corrupted NVRAM falls back to the paper's whole-array rebuild.
//
//	go run ./examples/crashrecovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"afraid"
)

func main() {
	dir, err := os.MkdirTemp("", "afraid-crash")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const diskSize = 1 << 20
	openDevs := func() []afraid.BlockDevice {
		devs := make([]afraid.BlockDevice, 5)
		for i := range devs {
			d, err := afraid.OpenFileDevice(filepath.Join(dir, fmt.Sprintf("disk%d.img", i)), diskSize)
			if err != nil {
				log.Fatal(err)
			}
			devs[i] = d
		}
		return devs
	}
	nvPath := filepath.Join(dir, "marking-memory.nv")
	opts := afraid.StoreOptions{Mode: afraid.StoreAFRAID, DisableScrubber: true}

	// Session 1: write, flush part of it, crash with two stripes dirty.
	store, err := afraid.OpenStore(openDevs(), afraid.NewFileNVRAM(nvPath), opts)
	if err != nil {
		log.Fatal(err)
	}
	sb := store.Geometry().StripeDataBytes()
	payload := []byte("survives the crash because data writes are immediate")
	store.WriteAt(payload, 0)
	store.Flush()
	store.WriteAt(payload, 4*sb) // these two stay dirty
	store.WriteAt(payload, 9*sb)
	fmt.Printf("session 1: %d dirty stripes recorded in %s\n", store.DirtyStripes(), filepath.Base(nvPath))
	store.Close() // crash: no flush

	// Session 2: recovery. The NVRAM image tells the array exactly
	// which stripes need their parity rebuilt — no full-array scan.
	store, err = afraid.OpenStore(openDevs(), afraid.NewFileNVRAM(nvPath), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: reopened with %d dirty stripes pending rebuild\n", store.DirtyStripes())
	got := make([]byte, len(payload))
	store.ReadAt(got, 4*sb)
	if !bytes.Equal(got, payload) {
		log.Fatal("data lost across crash")
	}
	fmt.Printf("session 2: unflushed data read back intact: %q\n", got[:24])
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	bad, _ := store.CheckParity()
	fmt.Printf("session 2: recovery flush done, %d inconsistent stripes\n", len(bad))
	store.Close()

	// Session 3: the marking memory itself fails (corrupt image). The
	// paper's answer: rebuild parity for the whole array.
	if err := os.WriteFile(nvPath, []byte("cosmic rays"), 0o644); err != nil {
		log.Fatal(err)
	}
	store, err = afraid.OpenStore(openDevs(), afraid.NewFileNVRAM(nvPath), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 3: NVRAM corrupt -> full rebuild scheduled (%d stripes marked, recovered=%v)\n",
		store.DirtyStripes(), store.Stats().NVRAMRecovered)
	store.Flush()
	store.ReadAt(got, 0)
	if !bytes.Equal(got, payload) {
		log.Fatal("data lost in NVRAM recovery")
	}
	fmt.Println("session 3: all data intact, parity fully rebuilt")
	store.Close()
}
