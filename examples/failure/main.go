// Failure: demonstrate AFRAID's exposure semantics end to end — fill a
// store, leave two stripes unredundant, kill a disk, read around it
// degraded, repair, and account for exactly what was lost (one stripe
// unit per dirty stripe, nothing else).
//
//	go run ./examples/failure
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"afraid"
)

func main() {
	const diskSize = 2 << 20
	devs := make([]afraid.BlockDevice, 5)
	for i := range devs {
		devs[i] = afraid.NewMemDevice(diskSize)
	}
	store, err := afraid.OpenStore(devs, &afraid.MemNVRAM{}, afraid.StoreOptions{
		Mode:            afraid.StoreAFRAID,
		DisableScrubber: true, // we drive parity points by hand here
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	geo := store.Geometry()

	// Fill the store with a recognizable pattern and commit parity.
	img := make([]byte, store.Capacity())
	for i := range img {
		img[i] = byte(i * 131)
	}
	if _, err := store.WriteAt(img, 0); err != nil {
		log.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filled %d stripes and flushed parity\n", geo.Stripes())

	// Overwrite a little data in stripes 2 and 6 and do NOT flush:
	// those two stripes are now unredundant — the AFRAID window.
	note := []byte("latest update, parity still pending")
	sb := geo.StripeDataBytes()
	store.WriteAt(note, 2*sb)
	store.WriteAt(note, 6*sb)
	copy(img[2*sb:], note)
	copy(img[6*sb:], note)
	fmt.Printf("dirtied stripes 2 and 6 (%d unredundant)\n", store.DirtyStripes())

	// Disk 1 dies.
	if err := store.FailDisk(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disk 1 failed")

	// Clean stripes reconstruct transparently from parity.
	buf := make([]byte, sb)
	if _, err := store.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(buf, img[:sb]) {
		log.Fatal("degraded read returned wrong data")
	}
	fmt.Println("stripe 0 read degraded: intact")

	// The dirty stripes lost exactly the unit that lived on disk 1.
	lostUnits := 0
	for _, stripe := range []int64{2, 6} {
		for idx := 0; idx < geo.DataDisks(); idx++ {
			off := stripe*sb + int64(idx)*geo.StripeUnit
			_, err := store.ReadAt(buf[:geo.StripeUnit], off)
			if errors.Is(err, afraid.ErrDataLoss) {
				fmt.Printf("stripe %d, unit %d: lost (was on the failed disk while unredundant)\n", stripe, idx)
				lostUnits++
			} else if err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("%d units lost out of %d in the array — the paper's bounded exposure\n",
		lostUnits, geo.Stripes()*int64(geo.DataDisks()))

	// Repair onto a fresh disk; the damage report enumerates the loss.
	report, err := store.RepairDisk(1, afraid.NewMemDevice(diskSize))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired: %d bytes lost in %d ranges:\n", report.Bytes(), len(report.Lost))
	for _, d := range report.Lost {
		fmt.Printf("  stripe %d, client offset %d, %d bytes (zero-filled)\n", d.Stripe, d.Offset, d.Length)
	}

	// Everything else is byte-for-byte intact and fully redundant again.
	for _, d := range report.Lost {
		copy(img[d.Offset:d.Offset+d.Length], make([]byte, d.Length))
	}
	got := make([]byte, len(img))
	if _, err := store.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		log.Fatal("unexpected corruption outside the damage report")
	}
	bad, _ := store.CheckParity()
	fmt.Printf("post-repair: data verified, %d parity inconsistencies, %d dirty stripes\n",
		len(bad), store.DirtyStripes())
}
