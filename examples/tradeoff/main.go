// Tradeoff: sweep the availability/performance continuum on a simulated
// array — plain RAID 5 at one end, pure AFRAID at the other, MTTDL_x
// targets in between — and print each point's mean I/O time and derived
// availability (the paper's Figure 3, for one workload).
//
//	go run ./examples/tradeoff [-workload att] [-dur 60s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"afraid"
)

func main() {
	workload := flag.String("workload", "cello-news", "catalog workload to replay")
	dur := flag.Duration("dur", 60*time.Second, "trace duration")
	flag.Parse()

	type point struct {
		name   string
		mode   afraid.SimMode
		target float64 // MTTDL_x goal in hours (0 = none)
	}
	points := []point{
		{"RAID5 (always redundant)", afraid.SimRAID5, 0},
		{"AFRAID, target 10M h", afraid.SimAFRAID, 10e6},
		{"AFRAID, target 2.5M h", afraid.SimAFRAID, 2.5e6},
		{"AFRAID, target 1M h", afraid.SimAFRAID, 1e6},
		{"AFRAID, pure", afraid.SimAFRAID, 0},
		{"RAID0 (never redundant)", afraid.SimRAID0, 0},
	}

	ap := afraid.DefaultAvailParams()
	fmt.Printf("workload %s over %v on the paper's 5-disk array\n\n", *workload, *dur)
	fmt.Printf("%-26s %12s %12s %14s\n", "policy", "meanIO", "unprot", "overall MTTDL")

	var raid5Mean time.Duration
	for _, p := range points {
		cfg := afraid.DefaultSimConfig(p.mode)
		cfg.Policy.TargetMTTDL = p.target
		if p.target > 0 {
			cfg.Policy.DirtyThreshold = 20 // the paper's MDLR bound
		}
		m, err := afraid.SimulateWorkload(cfg, *workload, *dur, 42)
		if err != nil {
			log.Fatal(err)
		}
		var rep afraid.AvailReport
		switch p.mode {
		case afraid.SimRAID5:
			rep = ap.RAID5Report()
			raid5Mean = m.MeanIOTime
		case afraid.SimRAID0:
			rep = ap.RAID0Report()
		default:
			rep = ap.AFRAIDReport(m.FracUnprotected, m.MeanParityLag)
		}
		speed := ""
		if raid5Mean > 0 && p.mode != afraid.SimRAID5 {
			speed = fmt.Sprintf("  (%.2fx RAID5)", float64(raid5Mean)/float64(m.MeanIOTime))
		}
		unprot := "n/a"
		switch p.mode {
		case afraid.SimAFRAID:
			unprot = fmt.Sprintf("%.1f%%", 100*m.FracUnprotected)
		case afraid.SimRAID5:
			unprot = "0%"
		case afraid.SimRAID0:
			unprot = "100%" // never redundant by construction
		}
		fmt.Printf("%-26s %12v %12s %12.3g h%s\n",
			p.name, m.MeanIOTime.Round(10*time.Microsecond),
			unprot, rep.OverallMTTDL, speed)
	}

	fmt.Printf("\nThe availability axis barely moves while performance multiplies: the\n")
	fmt.Printf("support hardware (%.3g h MTTDL) dominates whatever the disks promise.\n", ap.SupportMTTDL)
}
