// Quickstart: assemble a 5-disk AFRAID store in memory, write to it,
// watch stripes become unredundant, and make them redundant again.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"afraid"
)

func main() {
	// Five member disks of 4 MB each. In production these would be
	// afraid.OpenFileDevice (or your own BlockDevice implementation);
	// memory devices keep the example self-contained.
	devs := make([]afraid.BlockDevice, 5)
	for i := range devs {
		devs[i] = afraid.NewMemDevice(4 << 20)
	}

	// The NVRAM holds the per-stripe "unredundant" bits — one bit per
	// stripe, the paper's entire hardware cost. A FileNVRAM survives
	// crashes; MemNVRAM is fine for a demo.
	nv := &afraid.MemNVRAM{}

	store, err := afraid.OpenStore(devs, nv, afraid.StoreOptions{
		Mode:      afraid.StoreAFRAID,
		ScrubIdle: 50 * time.Millisecond, // rebuild parity after 50ms of quiet
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Printf("store: %d disks, %d stripes, %.1f MB client capacity\n",
		store.Geometry().Disks, store.Geometry().Stripes(),
		float64(store.Capacity())/(1<<20))

	// Writes return as soon as the data is on disk — no parity I/O in
	// the critical path. That is the whole point of AFRAID.
	msg := []byte("AFRAID is frequently redundant, not always redundant.")
	if _, err := store.WriteAt(msg, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after write:    %d stripe(s) unredundant\n", store.DirtyStripes())

	// Read-after-write is immediate, parity lag notwithstanding.
	buf := make([]byte, len(msg))
	if _, err := store.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back:      %q\n", buf)

	// The background scrubber rebuilds parity once the store is idle.
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("after idling:   %d stripe(s) unredundant\n", store.DirtyStripes())

	// Or force the matter — Flush is the whole-array parity point
	// (and ParityPoint commits a specific range, like a database commit).
	if _, err := store.WriteAt(msg, store.Geometry().StripeDataBytes()*3); err != nil {
		log.Fatal(err)
	}
	if err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	bad, err := store.CheckParity()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after flush:    %d stripe(s) unredundant, %d parity inconsistencies\n",
		store.DirtyStripes(), len(bad))

	st := store.Stats()
	fmt.Printf("stats:          %d writes, %d scrubbed stripes\n", st.Writes, st.ScrubbedStripes)
}
