#!/usr/bin/env bash
# bench.sh — run the parity-engine benchmarks and record the results
# as JSON (default BENCH_parity.json at the repo root).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_parity.json
#   benchtime    defaults to 1s (pass e.g. 1x for a smoke run)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_parity.json}"
benchtime="${2:-1s}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Which parity kernel backend this machine dispatches to (avx2, neon,
# or generic): numbers from different backends are not comparable, so
# the variant is recorded next to the results.
kernel="$(go test -run '^TestKernelDispatch$' -v ./internal/parity \
    | sed -n 's/.*parity kernel backend: //p' | head -n1)"
kernel="${kernel:-unknown}"
echo "== parity kernel backend: $kernel" >&2

echo "== kernel benchmarks (internal/parity)" >&2
go test -run '^$' -bench 'XORKernel|GFKernel' -benchmem \
    -benchtime "$benchtime" ./internal/parity | tee -a "$tmp" >&2

echo "== store benchmarks (flush drain, scrub, checksum verify, tier)" >&2
go test -run '^$' -bench 'FlushThroughput|StoreScrub|ChecksumVerify|TierSmallWrites' -benchmem \
    -benchtime "$benchtime" . | tee -a "$tmp" >&2

# Fold the standard benchmark lines into JSON: each line is
#   BenchmarkName-P  <iters>  <value> <unit>  [<value> <unit>]...
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version | awk '{print $3}')" -v kernel="$kernel" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"kernel\": \"%s\",\n  \"benchmarks\": [", date, gover, kernel
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", name, $2
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) printf ", "
        printf "\"%s\": %s", $(i + 1), $(i)
    }
    printf "}}"
}
END { print "\n  ]\n}" }
' "$tmp" > "$out"

echo "wrote $out" >&2
