package tier

import (
	"encoding/binary"
	"fmt"

	"afraid/internal/nvram"
)

// The extent map is the tier's marking memory: it must know which
// extents live in the front tier before any promote is acknowledged,
// or a crash would silently forget dirty front-tier data. The
// persisted image is
//
//	magic "AFTRMAP1" (8)
//	extent size      (8, LE)
//	slot count       (8, LE)
//	failed-copy mask (8, LE: bit i set = front device i failed)
//	slot table       (slots × 8, LE: extent+1, 0 = free)
//	residency bitmap (nvram.Bitmap.Serialize over extents)
//
// The bitmap is derivable from the slot table; it is stored anyway and
// cross-checked at load, so a torn or bit-rotted image fails loudly
// and triggers the tag-scan recovery instead of deserializing into a
// plausible-but-wrong placement.
//
// The failed-copy mask records mirror copies that fail-stopped while
// the array ran on. It is persisted the moment a copy fails, before
// any degraded write is acknowledged: a dead copy's media is stale —
// the survivor kept absorbing writes — and recovery must never pick it
// as the authoritative side of a resilver.
const mapMagic = "AFTRMAP1"

// extentMap is the in-memory form: a slot table plus the inverse
// index. Callers hold Store.meta.
type extentMap struct {
	table    []int64         // per global slot: extent, or -1 free
	byExtent map[int64]int64 // extent -> global slot
	resident *nvram.Bitmap   // over extents, mirrors byExtent
}

func newExtentMap(slots, extents int64) *extentMap {
	m := &extentMap{
		table:    make([]int64, slots),
		byExtent: make(map[int64]int64),
		resident: nvram.NewBitmap(extents),
	}
	for i := range m.table {
		m.table[i] = -1
	}
	return m
}

// set binds a slot to an extent.
func (m *extentMap) set(slot, ext int64) {
	m.table[slot] = ext
	m.byExtent[ext] = slot
	m.resident.Mark(ext)
}

// clear frees a slot.
func (m *extentMap) clear(slot int64) {
	if ext := m.table[slot]; ext >= 0 {
		delete(m.byExtent, ext)
		m.resident.Unmark(ext)
	}
	m.table[slot] = -1
}

// freeSlot returns a free slot of the pair, or -1.
func (m *extentMap) freeSlot(pair int, slotsPer int64) int64 {
	base := int64(pair) * slotsPer
	for s := base; s < base+slotsPer; s++ {
		if m.table[s] < 0 {
			return s
		}
	}
	return -1
}

// serialize renders the persisted image.
func (m *extentMap) serialize(extentSize int64, failedMask uint64) []byte {
	out := make([]byte, 0, 32+len(m.table)*8+int(m.resident.SizeBytes())+8)
	out = append(out, mapMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(extentSize))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(m.table)))
	out = binary.LittleEndian.AppendUint64(out, failedMask)
	for slot, ext := range m.table {
		// Skip in-flight promote reservations (table set, byExtent not
		// yet): their data has not landed, so the persisted image must
		// keep calling the slot free.
		if sl, ok := m.byExtent[ext]; ext >= 0 && ok && sl == int64(slot) {
			out = binary.LittleEndian.AppendUint64(out, uint64(ext+1))
		} else {
			out = binary.LittleEndian.AppendUint64(out, 0)
		}
	}
	return append(out, m.resident.Serialize()...)
}

// deserializeMap parses a persisted image, validating magic, geometry
// and the table/bitmap cross-check. Any failure means the map cannot
// be trusted; the caller falls back to tag-scan recovery.
func deserializeMap(img []byte, extentSize, slots, extents int64) (*extentMap, uint64, error) {
	if len(img) == 0 {
		// First boot: an empty image is a valid empty map, not loss.
		return newExtentMap(slots, extents), 0, nil
	}
	if len(img) < 32 || string(img[:8]) != mapMagic {
		return nil, 0, fmt.Errorf("tier: extent map image lacks magic %q", mapMagic)
	}
	if got := int64(binary.LittleEndian.Uint64(img[8:])); got != extentSize {
		return nil, 0, fmt.Errorf("tier: extent map extent size %d, want %d", got, extentSize)
	}
	if got := int64(binary.LittleEndian.Uint64(img[16:])); got != slots {
		return nil, 0, fmt.Errorf("tier: extent map has %d slots, want %d", got, slots)
	}
	failedMask := binary.LittleEndian.Uint64(img[24:])
	need := 32 + int(slots)*8
	if len(img) < need {
		return nil, 0, fmt.Errorf("tier: extent map image truncated at %d bytes", len(img))
	}
	m := newExtentMap(slots, extents)
	for s := int64(0); s < slots; s++ {
		v := binary.LittleEndian.Uint64(img[32+s*8:])
		if v == 0 {
			continue
		}
		ext := int64(v) - 1
		if ext < 0 || ext >= extents {
			return nil, 0, fmt.Errorf("tier: slot %d maps extent %d outside %d", s, ext, extents)
		}
		if _, dup := m.byExtent[ext]; dup {
			return nil, 0, fmt.Errorf("tier: extent %d resident in two slots", ext)
		}
		m.set(s, ext)
	}
	bm, err := nvram.Deserialize(img[need:])
	if err != nil {
		return nil, 0, fmt.Errorf("tier: extent map bitmap: %w", err)
	}
	if bm.Stripes() != extents || bm.Count() != int64(len(m.byExtent)) {
		return nil, 0, fmt.Errorf("tier: extent map bitmap disagrees with slot table")
	}
	for ext := range m.byExtent {
		if !bm.IsMarked(ext) {
			return nil, 0, fmt.Errorf("tier: extent %d in slot table but not bitmap", ext)
		}
	}
	return m, failedMask, nil
}

// persistMapLocked writes the map through the NVRAM interface. Callers
// hold s.meta. Promotes and evictions persist before acknowledging;
// the dirty bits themselves are not persisted — recovery marks every
// resident extent dirty instead, which is always safe.
func (s *Store) persistMapLocked() error {
	var mask uint64
	for i := range s.copyFailed {
		if s.copyFailed[i].Load() {
			mask |= 1 << uint(i)
		}
	}
	return s.nv.Store(s.m.serialize(s.extentSize, mask))
}
