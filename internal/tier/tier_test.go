package tier

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"afraid/internal/core"
)

// testRig is one assembled hybrid plus the handles tests need to crash
// and reopen it.
type testRig struct {
	back      *core.Store
	backDevs  []core.BlockDevice
	backNV    *core.MemNVRAM
	front     []core.BlockDevice
	nv        *core.MemNVRAM
	st        *Store
	extentSz  int64
	slotsPair int64
}

// newRig builds a small hybrid: a 4-disk AFRAID back end and one front
// mirror pair with slotsPair extent slots.
func newRig(t *testing.T, opts Options, slotsPair int64) *testRig {
	t.Helper()
	if opts.ExtentSize == 0 {
		opts.ExtentSize = 16 << 10
	}
	r := &testRig{
		backNV:    &core.MemNVRAM{},
		nv:        &core.MemNVRAM{},
		extentSz:  opts.ExtentSize,
		slotsPair: slotsPair,
	}
	for i := 0; i < 4; i++ {
		r.backDevs = append(r.backDevs, core.NewMemDevice(256<<10))
	}
	back, err := core.Open(r.backDevs, r.backNV, core.Options{StripeUnit: 4096, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	r.back = back
	frontSize := slotsPair * (opts.ExtentSize + tagSize)
	r.front = []core.BlockDevice{core.NewMemDevice(frontSize), core.NewMemDevice(frontSize)}
	st, err := Open(back, r.front, r.nv, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.st = st
	return r
}

// reopen simulates a crash: the old Store is abandoned (no Close) and
// a new one is assembled over the same devices and NVRAM images.
func (r *testRig) reopen(t *testing.T, opts Options) {
	t.Helper()
	r.st.closed.Store(true)
	if r.st.mig != nil {
		r.st.mig.stop()
	}
	back, err := core.Open(r.backDevs, r.backNV, core.Options{StripeUnit: 4096, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	r.back = back
	if opts.ExtentSize == 0 {
		opts.ExtentSize = r.extentSz
	}
	st, err := Open(back, r.front, r.nv, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.st = st
}

func TestTierWriteReadPromote(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)
	defer r.st.Close()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := r.st.WriteAt(data, 20000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := r.st.ReadAt(got, 20000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back differs after promote")
	}
	ts := r.st.TierStats()
	if ts.Promotes == 0 {
		t.Fatalf("small write did not promote: %+v", ts)
	}
	if ts.FrontReadHits == 0 {
		t.Fatalf("read of resident extent missed the front tier: %+v", ts)
	}
	// A second write to the same extent is a pure front hit.
	if _, err := r.st.WriteAt(data, 21000); err != nil {
		t.Fatal(err)
	}
	if ts := r.st.TierStats(); ts.FrontWriteHits == 0 {
		t.Fatalf("resident write did not hit the front: %+v", ts)
	}
}

func TestTierLargeWriteGoesAround(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)
	defer r.st.Close()

	big := make([]byte, 128<<10) // > PromoteMax (2 × 16 KiB)
	rand.New(rand.NewSource(2)).Read(big)
	if _, err := r.st.WriteAt(big, 0); err != nil {
		t.Fatal(err)
	}
	ts := r.st.TierStats()
	if ts.Promotes != 0 {
		t.Fatalf("large write promoted %d extents", ts.Promotes)
	}
	if ts.WriteArounds == 0 {
		t.Fatal("large write did not write around")
	}
	got := make([]byte, len(big))
	if _, err := r.st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("write-around data corrupted")
	}
}

func TestTierFlushDemotesAndBackHoldsData(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)
	defer r.st.Close()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := r.st.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.st.Flush(); err != nil {
		t.Fatal(err)
	}
	ts := r.st.TierStats()
	if ts.Demotes == 0 {
		t.Fatal("flush did not demote")
	}
	if ts.DirtyExtents != 0 {
		t.Fatalf("dirty extents after flush: %d", ts.DirtyExtents)
	}
	// The back tier must now hold the bytes itself.
	got := make([]byte, 4096)
	if _, err := r.back.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("back tier missing demoted data")
	}
	// Demoted-but-resident (clean) extents still serve reads from the
	// front tier.
	before := ts.FrontReadHits
	if _, err := r.st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if ts := r.st.TierStats(); ts.FrontReadHits == before {
		t.Fatal("clean resident extent read missed the front")
	}
}

func TestTierCrashRecoversDirtyData(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)

	data := make([]byte, 8192)
	rand.New(rand.NewSource(4)).Read(data)
	if _, err := r.st.WriteAt(data, 40960); err != nil {
		t.Fatal(err)
	}
	r.reopen(t, Options{DisableMigrator: true})

	ts := r.st.TierStats()
	if ts.ResidentExtents == 0 {
		t.Fatal("crash forgot resident extents")
	}
	if ts.DirtyExtents == 0 {
		t.Fatal("recovery must conservatively mark residents dirty")
	}
	got := make([]byte, len(data))
	if _, err := r.st.ReadAt(got, 40960); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("acknowledged dirty data lost across crash")
	}
	if err := r.st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.back.ReadAt(got, 40960); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recovered data not demoted to back tier")
	}
	r.st.Close()
}

func TestTierMapLossFullDemote(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)

	data := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := r.st.WriteAt(data, 16384); err != nil {
		t.Fatal(err)
	}
	// Lose the marking memory: the persisted map becomes garbage.
	if err := r.nv.Store([]byte("corrupt extent map")); err != nil {
		t.Fatal(err)
	}
	r.reopen(t, Options{DisableMigrator: true})

	ts := r.st.TierStats()
	if !ts.MapRecovered {
		t.Fatal("map loss not detected")
	}
	if ts.ResidentExtents != 0 {
		t.Fatalf("full-demote recovery left %d residents", ts.ResidentExtents)
	}
	got := make([]byte, len(data))
	if _, err := r.st.ReadAt(got, 16384); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("map-loss recovery lost acknowledged data")
	}
	r.st.Close()
}

// TestTierDeletedMapRecoversFromTags: a *deleted* (empty) map file is
// indistinguishable from a first boot by the image alone; the slot
// tags must disambiguate, or dirty front data would be silently
// stranded behind an empty map.
func TestTierDeletedMapRecoversFromTags(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)

	data := make([]byte, 4096)
	rand.New(rand.NewSource(6)).Read(data)
	if _, err := r.st.WriteAt(data, 16384); err != nil {
		t.Fatal(err)
	}
	// Delete the marking memory: the persisted map becomes empty, not
	// corrupt — the harder case, since empty is also what a fresh
	// store's NVRAM looks like.
	if err := r.nv.Store(nil); err != nil {
		t.Fatal(err)
	}
	r.reopen(t, Options{DisableMigrator: true})

	ts := r.st.TierStats()
	if !ts.MapRecovered {
		t.Fatal("deleted map not detected as loss")
	}
	got := make([]byte, len(data))
	if _, err := r.st.ReadAt(got, 16384); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("deleted-map recovery lost acknowledged data")
	}
	r.st.Close()

	// A genuinely fresh store (blank fronts, empty NVRAM) must still
	// open as a first boot, not as a loss.
	r2 := newRig(t, Options{DisableMigrator: true}, 8)
	if r2.st.TierStats().MapRecovered {
		t.Fatal("fresh store misdiagnosed as map loss")
	}
	r2.st.Close()
}

func TestTierResilverPicksCopyZero(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)

	data := bytes.Repeat([]byte{0xAA}, int(r.extentSz))
	if _, err := r.st.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Diverge copy 1 directly, as a torn mirror write would.
	torn := bytes.Repeat([]byte{0xBB}, 512)
	if _, err := r.front[1].WriteAt(torn, 0); err != nil {
		t.Fatal(err)
	}
	r.reopen(t, Options{DisableMigrator: true, ReadPolicy: RoundRobin})

	if r.st.TierStats().Resilvered == 0 {
		t.Fatal("reopen did not resilver the divergent pair")
	}
	// Every read must now see copy 0's content, whichever copy serves.
	for i := 0; i < 4; i++ {
		got := make([]byte, r.extentSz)
		if _, err := r.st.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d saw divergent mirror content", i)
		}
	}
	r.st.Close()
}

func TestTierFrontCopyFailureServesFromMirror(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)
	defer r.st.Close()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(6)).Read(data)
	if _, err := r.st.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	r.front[0].(*core.MemDevice).Fail()

	got := make([]byte, len(data))
	if _, err := r.st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mirror copy served wrong data")
	}
	// Writes keep landing on the survivor, and a flush still demotes.
	if _, err := r.st.WriteAt(data, 1024); err != nil {
		t.Fatal(err)
	}
	if err := r.st.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.st.TierStats().DegradedWrites == 0 {
		t.Fatal("degraded write not counted")
	}
}

func TestTierBothCopiesFailedReportsLoss(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)
	defer r.st.Close()

	data := make([]byte, 4096)
	if _, err := r.st.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	r.front[0].(*core.MemDevice).Fail()
	r.front[1].(*core.MemDevice).Fail()

	_, err := r.st.ReadAt(make([]byte, 4096), 0)
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("want ErrDataLoss with both copies gone, got %v", err)
	}
}

func TestTierEvictionReclaimsCleanSlots(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 2)
	defer r.st.Close()

	buf := make([]byte, 4096)
	// Fill both slots, demote them clean, then promote two more
	// extents: the clean occupants must be evicted, not block.
	for ext := int64(0); ext < 2; ext++ {
		rand.New(rand.NewSource(ext)).Read(buf)
		if _, err := r.st.WriteAt(buf, ext*r.extentSz); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.st.Flush(); err != nil {
		t.Fatal(err)
	}
	for ext := int64(2); ext < 4; ext++ {
		rand.New(rand.NewSource(ext)).Read(buf)
		if _, err := r.st.WriteAt(buf, ext*r.extentSz); err != nil {
			t.Fatal(err)
		}
	}
	ts := r.st.TierStats()
	if ts.Evictions == 0 {
		t.Fatalf("no evictions with a full pair: %+v", ts)
	}
	// All four extents must read back correctly wherever they live.
	for ext := int64(0); ext < 4; ext++ {
		rand.New(rand.NewSource(ext)).Read(buf)
		got := make([]byte, len(buf))
		if _, err := r.st.ReadAt(got, ext*r.extentSz); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("extent %d corrupted after eviction cycle", ext)
		}
	}
}

func TestTierAllSlotsDirtyWritesAround(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 2)
	defer r.st.Close()

	buf := make([]byte, 4096)
	for ext := int64(0); ext < 4; ext++ {
		rand.New(rand.NewSource(100 + ext)).Read(buf)
		if _, err := r.st.WriteAt(buf, ext*r.extentSz); err != nil {
			t.Fatal(err)
		}
	}
	ts := r.st.TierStats()
	if ts.WriteArounds == 0 {
		t.Fatal("dirty-full pair must write around, not fail")
	}
	for ext := int64(0); ext < 4; ext++ {
		rand.New(rand.NewSource(100 + ext)).Read(buf)
		got := make([]byte, len(buf))
		if _, err := r.st.ReadAt(got, ext*r.extentSz); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("extent %d corrupted", ext)
		}
	}
}

func TestTierParityPointDemotesRange(t *testing.T) {
	r := newRig(t, Options{DisableMigrator: true}, 8)
	defer r.st.Close()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := r.st.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.st.WriteAt(data, 3*r.extentSz); err != nil {
		t.Fatal(err)
	}
	if err := r.st.ParityPoint(0, 4096); err != nil {
		t.Fatal(err)
	}
	ts := r.st.TierStats()
	if ts.Demotes != 1 {
		t.Fatalf("parity point demoted %d extents, want 1 (only the covered one)", ts.Demotes)
	}
	got := make([]byte, 4096)
	if _, err := r.back.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parity point did not demote covered extent")
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, ext := range []int64{0, 1, 12345, 1 << 40} {
		tag := encodeTag(ext)
		got, ok := decodeTag(tag)
		if !ok || got != ext {
			t.Fatalf("tag round trip: ext %d -> %d ok=%v", ext, got, ok)
		}
	}
	if _, ok := decodeTag(make([]byte, tagSize)); ok {
		t.Fatal("zero tag decoded as valid")
	}
	tag := encodeTag(7)
	tag[9] ^= 1
	if _, ok := decodeTag(tag); ok {
		t.Fatal("corrupt tag decoded as valid")
	}
}

func TestExtentMapSerializeRoundTrip(t *testing.T) {
	m := newExtentMap(16, 100)
	m.set(3, 42)
	m.set(10, 7)
	img := m.serialize(16<<10, 0b10)
	got, mask, err := deserializeMap(img, 16<<10, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.byExtent[42] != 3 || got.byExtent[7] != 10 || len(got.byExtent) != 2 {
		t.Fatalf("map round trip: %+v", got.byExtent)
	}
	if mask != 0b10 {
		t.Fatalf("failed-copy mask round trip: got %b, want 10", mask)
	}
	// Geometry mismatches and corruption must fail loudly.
	if _, _, err := deserializeMap(img, 32<<10, 16, 100); err == nil {
		t.Fatal("extent-size mismatch accepted")
	}
	if _, _, err := deserializeMap(img[:30], 16<<10, 16, 100); err == nil {
		t.Fatal("truncated image accepted")
	}
	img[40] ^= 0xFF // corrupt the slot table
	if _, _, err := deserializeMap(img, 16<<10, 16, 100); err == nil {
		t.Fatal("corrupt table accepted (bitmap cross-check failed to fire)")
	}
}
