package tier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"afraid/internal/core"
)

// Each front slot carries a 16-byte tag in the device's trailer:
//
//	magic "AFT1" (4) | crc32(magic‖extent) (4) | extent (8, BE)
//
// The CRC covers only the tag header, not the slot content, so small
// writes to a resident extent never touch the tag. What makes that
// safe is strict ordering: within one front write, copy 0 is written
// completely (data, then tag when promoting) before copy 1 is touched,
// so at any crash point at most one copy is mid-write and the other is
// whole. Tags are written when a slot is claimed and zeroed before it
// is reused or freed, which is exactly what lets a map-loss recovery
// rebuild residency from the media: a valid tag means "this slot was
// fully claimed by this extent and never released".
const tagMagic = "AFT1"

func encodeTag(ext int64) []byte {
	t := make([]byte, tagSize)
	copy(t, tagMagic)
	binary.BigEndian.PutUint64(t[8:], uint64(ext))
	binary.BigEndian.PutUint32(t[4:], crc32.ChecksumIEEE(append(t[:4:4], t[8:]...)))
	return t
}

// decodeTag returns the claimed extent, or ok=false for anything but a
// self-consistent tag.
func decodeTag(t []byte) (int64, bool) {
	if len(t) != tagSize || string(t[:4]) != tagMagic {
		return 0, false
	}
	if binary.BigEndian.Uint32(t[4:]) != crc32.ChecksumIEEE(append(t[:4:4], t[8:]...)) {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(t[8:])), true
}

// tagOff is the device offset of a slot's tag.
func (s *Store) tagOff(slot int64) int64 { return s.tagBase + (slot%s.slotsPer)*tagSize }

// devsOf returns the device indices of a slot's mirror pair.
func (s *Store) devsOf(slot int64) (int, int) {
	pair := int(slot / s.slotsPer)
	return 2 * pair, 2*pair + 1
}

// markCopyFailed latches a copy's failure and persists the failed-copy
// mask in the map image before the caller acknowledges anything done
// while degraded. The dead copy's media is stale from this moment on —
// the survivor keeps absorbing writes — so recovery must learn the
// asymmetry from persistent state, or a resilver after a later crash
// could pick the dead copy as authoritative and resurrect pre-failure
// data over acknowledged writes only the survivor holds.
func (s *Store) markCopyFailed(dev int) {
	if s.copyFailed[dev].CompareAndSwap(false, true) {
		s.meta.Lock()
		// During recovery the map may not be assembled yet; both
		// recovery branches persist the mask themselves before any
		// post-recovery write can be acknowledged.
		if s.m != nil {
			_ = s.persistMapLocked()
		}
		s.meta.Unlock()
	}
}

// writeDev writes to one front device. A core.ErrDeviceFailed marks
// the copy failed (the mirror carries on); other errors — notably a
// power cut — propagate untouched.
func (s *Store) writeDev(dev int, p []byte, off int64) error {
	if s.copyFailed[dev].Load() {
		return core.ErrDeviceFailed
	}
	_, err := s.front[dev].WriteAt(p, off)
	if errors.Is(err, core.ErrDeviceFailed) {
		s.markCopyFailed(dev)
	}
	return err
}

// readDev reads from one front device with the same classification.
func (s *Store) readDev(dev int, p []byte, off int64) error {
	if s.copyFailed[dev].Load() {
		return core.ErrDeviceFailed
	}
	_, err := s.front[dev].ReadAt(p, off)
	if errors.Is(err, core.ErrDeviceFailed) {
		s.markCopyFailed(dev)
	}
	return err
}

// frontWrite lands one extent-local write on both copies of the slot's
// pair, copy 0 strictly before copy 1. One failed copy degrades the
// pair but the write still succeeds; both failed is an error.
func (s *Store) frontWrite(slot, extOff int64, p []byte) error {
	d0, d1 := s.devsOf(slot)
	off := s.slotOff(slot) + extOff
	err0 := s.writeDev(d0, p, off)
	if err0 != nil && !errors.Is(err0, core.ErrDeviceFailed) {
		return err0 // power cut or other whole-machine event
	}
	err1 := s.writeDev(d1, p, off)
	if err1 != nil && !errors.Is(err1, core.ErrDeviceFailed) {
		return err1
	}
	if err0 != nil && err1 != nil {
		return fmt.Errorf("tier: both copies of front pair failed: %w", err0)
	}
	if err0 != nil || err1 != nil {
		s.st.degradedWrites.Add(1)
	}
	return nil
}

// pickCopy chooses the mirror copy a read goes to: the healthy copy
// with the shorter read queue (ties broken round-robin), or plain
// round-robin under that policy.
func (s *Store) pickCopy(d0, d1 int) int {
	f0, f1 := s.copyFailed[d0].Load(), s.copyFailed[d1].Load()
	switch {
	case f0 && f1:
		return -1
	case f0:
		return d1
	case f1:
		return d0
	}
	if s.opts.ReadPolicy == RoundRobin {
		if s.rrTick.Add(1)%2 == 0 {
			return d0
		}
		return d1
	}
	q0, q1 := s.inflight[d0].Load(), s.inflight[d1].Load()
	switch {
	case q0 < q1:
		return d0
	case q1 < q0:
		return d1
	}
	if s.rrTick.Add(1)%2 == 0 {
		return d0
	}
	return d1
}

// frontRead serves one extent-local read from the slot's pair,
// failing over to the mirror if the chosen copy dies mid-read. Both
// copies gone means the dirty data is gone — reported, never silent.
func (s *Store) frontRead(slot, extOff int64, p []byte) error {
	d0, d1 := s.devsOf(slot)
	off := s.slotOff(slot) + extOff
	dev := s.pickCopy(d0, d1)
	if dev < 0 {
		return fmt.Errorf("tier: both copies of front pair %d failed: %w", slot/s.slotsPer, ErrDataLoss)
	}
	s.inflight[dev].Add(1)
	err := s.readDev(dev, p, off)
	s.inflight[dev].Add(-1)
	if err == nil {
		return nil
	}
	if !errors.Is(err, core.ErrDeviceFailed) {
		return err
	}
	// Serve from the mirror.
	other := d0 + d1 - dev
	s.st.mirrorFailovers.Add(1)
	s.inflight[other].Add(1)
	err = s.readDev(other, p, off)
	s.inflight[other].Add(-1)
	if errors.Is(err, core.ErrDeviceFailed) {
		return fmt.Errorf("tier: both copies of front pair %d failed: %w", slot/s.slotsPer, ErrDataLoss)
	}
	return err
}

// writeTags stamps the slot's tag on both copies (copy 0 first).
func (s *Store) writeTags(slot, ext int64) error {
	d0, d1 := s.devsOf(slot)
	t := encodeTag(ext)
	err0 := s.writeDev(d0, t, s.tagOff(slot))
	if err0 != nil && !errors.Is(err0, core.ErrDeviceFailed) {
		return err0
	}
	err1 := s.writeDev(d1, t, s.tagOff(slot))
	if err1 != nil && !errors.Is(err1, core.ErrDeviceFailed) {
		return err1
	}
	if err0 != nil && err1 != nil {
		return fmt.Errorf("tier: both copies of front pair failed: %w", err0)
	}
	return nil
}

// invalidateTags zeroes the slot's tag on both copies; it must precede
// any slot reuse, or a map-loss recovery could resurrect the previous
// occupant's stale content over data the back tier has since rewritten.
func (s *Store) invalidateTags(slot int64) error {
	d0, d1 := s.devsOf(slot)
	zero := make([]byte, tagSize)
	err0 := s.writeDev(d0, zero, s.tagOff(slot))
	if err0 != nil && !errors.Is(err0, core.ErrDeviceFailed) {
		return err0
	}
	err1 := s.writeDev(d1, zero, s.tagOff(slot))
	if err1 != nil && !errors.Is(err1, core.ErrDeviceFailed) {
		return err1
	}
	return nil
}

// readTag reads and decodes one copy's tag for a slot.
func (s *Store) readTag(dev int, slot int64) (int64, bool) {
	t := make([]byte, tagSize)
	if err := s.readDev(dev, t, s.tagOff(slot)); err != nil {
		return 0, false
	}
	return decodeTag(t)
}

// resilver makes the mirror copies of every resident extent identical
// again after a reopen: an in-flight write at the crash can live on
// one copy only, and load-balanced reads must not flicker between two
// versions of an unacknowledged write. Copy 0 is authoritative when
// its tag still matches the map; a slot where neither copy's tag
// matches was mid-eviction (tags are zeroed before the map forgets the
// slot), so the extent's clean content is safe in the back tier and
// the slot is released.
//
// A copy carrying the persisted failed flag is never authoritative,
// valid tag or not: its media froze at the failure while the survivor
// kept taking acknowledged writes. Resilver instead tries to rewrite
// the flagged copy from the survivor; only if every resident slot of
// its pair restores cleanly is the flag cleared and the pair whole
// again.
func (s *Store) resilver() error {
	buf := make([]byte, s.extentSize)
	var dropped []int64
	restored := make([]bool, len(s.front))
	for i := range restored {
		restored[i] = true
	}
	for slot, ext := range s.m.table {
		if ext < 0 {
			continue
		}
		slot := int64(slot)
		d0, d1 := s.devsOf(slot)
		auth := -1
		if !s.copyFailed[d0].Load() {
			if e, ok := s.readTag(d0, slot); ok && e == ext {
				auth = d0
			}
		}
		if auth < 0 && !s.copyFailed[d1].Load() {
			if e, ok := s.readTag(d1, slot); ok && e == ext {
				auth = d1
			}
		}
		if auth < 0 {
			dropped = append(dropped, slot)
			continue
		}
		other := d0 + d1 - auth
		n := s.extentLen(ext)
		if err := s.readDev(auth, buf[:n], s.slotOff(slot)); err != nil {
			if errors.Is(err, core.ErrDeviceFailed) {
				restored[other] = false
				continue // single-copy until it fails too; reads will report
			}
			return err
		}
		// Write the peer directly, bypassing the failed short-circuit: a
		// flagged copy that answers again is exactly what this rewrite
		// brings back into the mirror.
		if _, err := s.front[other].WriteAt(buf[:n], s.slotOff(slot)); err != nil {
			if errors.Is(err, core.ErrDeviceFailed) {
				restored[other] = false
				continue
			}
			return err
		}
		if _, err := s.front[other].WriteAt(encodeTag(ext), s.tagOff(slot)); err != nil {
			if errors.Is(err, core.ErrDeviceFailed) {
				restored[other] = false
				continue
			}
			return err
		}
		s.st.resilvered.Add(1)
	}
	// A dropped slot can still carry a stale valid tag on a flagged
	// copy; zero it so a later map-loss scan cannot resurrect it. A
	// copy whose zeroing fails stays flagged.
	zero := make([]byte, tagSize)
	for _, slot := range dropped {
		d0, d1 := s.devsOf(slot)
		for _, d := range []int{d0, d1} {
			if _, err := s.front[d].WriteAt(zero, s.tagOff(slot)); err != nil {
				restored[d] = false
			}
		}
	}
	changed := len(dropped) > 0
	for i := range s.front {
		if s.copyFailed[i].Load() && restored[i] {
			s.copyFailed[i].Store(false)
			changed = true
		}
	}
	if !changed {
		return nil
	}
	s.meta.Lock()
	defer s.meta.Unlock()
	for _, slot := range dropped {
		s.m.clear(slot)
	}
	return s.persistMapLocked()
}

// scanTags rebuilds an extent map from the on-media slot tags after
// the persisted map is lost. Copy-0 tags are scanned first: an
// eviction in flight at the crash zeroes copy 0 before copy 1, so a
// stale claim can only survive on copy 1 and always loses to the
// current slot's copy-0 claim.
func (s *Store) scanTags() (*extentMap, error) {
	total := int64(s.pairs) * s.slotsPer
	m := newExtentMap(total, s.extents)
	for pass := 0; pass < 2; pass++ {
		for slot := int64(0); slot < total; slot++ {
			if m.table[slot] >= 0 {
				continue
			}
			d0, d1 := s.devsOf(slot)
			dev := d0
			if pass == 1 {
				dev = d1
			}
			ext, ok := s.readTag(dev, slot)
			if !ok || ext < 0 || ext >= s.extents || s.pairOf(ext) != int(slot/s.slotsPer) {
				continue
			}
			if _, dup := m.byExtent[ext]; dup {
				continue
			}
			m.set(slot, ext)
		}
	}
	return m, nil
}
