package tier

import (
	"sync/atomic"

	"afraid/internal/obs"
)

// tierObs is the tier's observability kit, mounted by cmd/afraidd as
// the "tier" section of /debug/histograms.
type tierObs struct {
	reg        *obs.Registry
	frontRead  *obs.Histogram // front-tier read service time
	frontWrite *obs.Histogram // mirrored front write (both copies)
	promote    *obs.Histogram // one extent promotion (compose + install)
	demote     *obs.Histogram // one extent demotion (front read + back write)
	migrate    *obs.Histogram // one migration episode (a run of demotes)
}

func newTierObs() *tierObs {
	r := obs.NewRegistry()
	return &tierObs{
		reg:        r,
		frontRead:  r.Histogram("front_read"),
		frontWrite: r.Histogram("front_write"),
		promote:    r.Histogram("promote"),
		demote:     r.Histogram("demote"),
		migrate:    r.Histogram("migrate_episode"),
	}
}

// Obs returns the tier's observability registry.
func (s *Store) Obs() *obs.Registry { return s.ob.reg }

// stats holds the tier's lock-free counters.
type stats struct {
	reads, writes           atomic.Uint64
	bytesRead, bytesWritten atomic.Int64
	frontReadHits           atomic.Uint64
	frontReadMisses         atomic.Uint64
	frontWriteHits          atomic.Uint64
	promotes, demotes       atomic.Uint64
	evictions               atomic.Uint64
	promotedBytes           atomic.Int64
	demotedBytes            atomic.Int64
	writeArounds            atomic.Uint64
	mirrorFailovers         atomic.Uint64
	degradedWrites          atomic.Uint64
	resilvered              atomic.Uint64
	mapRecovered            atomic.Bool
}

// TierStats is a point-in-time snapshot of the hybrid's behaviour.
type TierStats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten int64
	FrontReadHits           uint64 // reads served by the mirrors
	FrontReadMisses         uint64 // reads served by the back tier
	FrontWriteHits          uint64 // writes absorbed by a resident extent
	Promotes, Demotes       uint64 // extent migrations up / down
	Evictions               uint64 // clean slots reclaimed for promotes
	PromotedBytes           int64
	DemotedBytes            int64
	WriteArounds            uint64 // writes routed straight to the back tier
	MirrorFailovers         uint64 // reads failed over to the other copy
	DegradedWrites          uint64 // front writes that landed on one copy
	Resilvered              uint64 // extents re-mirrored at open
	MapRecovered            bool   // residency rebuilt from slot tags
	ResidentExtents         int64
	DirtyExtents            int64
	ResidentBytes           int64
	DirtyBytes              int64
}

// FrontHitRatio is the fraction of reads served by the front tier.
func (t TierStats) FrontHitRatio() float64 {
	total := t.FrontReadHits + t.FrontReadMisses
	if total == 0 {
		return 0
	}
	return float64(t.FrontReadHits) / float64(total)
}

// TierStats snapshots the tier counters.
func (s *Store) TierStats() TierStats {
	t := TierStats{
		Reads:           s.st.reads.Load(),
		Writes:          s.st.writes.Load(),
		BytesRead:       s.st.bytesRead.Load(),
		BytesWritten:    s.st.bytesWritten.Load(),
		FrontReadHits:   s.st.frontReadHits.Load(),
		FrontReadMisses: s.st.frontReadMisses.Load(),
		FrontWriteHits:  s.st.frontWriteHits.Load(),
		Promotes:        s.st.promotes.Load(),
		Demotes:         s.st.demotes.Load(),
		Evictions:       s.st.evictions.Load(),
		PromotedBytes:   s.st.promotedBytes.Load(),
		DemotedBytes:    s.st.demotedBytes.Load(),
		WriteArounds:    s.st.writeArounds.Load(),
		MirrorFailovers: s.st.mirrorFailovers.Load(),
		DegradedWrites:  s.st.degradedWrites.Load(),
		Resilvered:      s.st.resilvered.Load(),
		MapRecovered:    s.st.mapRecovered.Load(),
	}
	s.meta.Lock()
	t.DirtyBytes = s.dirtyBytes
	t.DirtyExtents = s.dirty.Count()
	for _, ext := range s.m.table {
		if ext < 0 {
			continue
		}
		if sl, ok := s.m.byExtent[ext]; ok && s.m.table[sl] == ext {
			t.ResidentExtents++
			t.ResidentBytes += s.extentLen(ext)
		}
	}
	s.meta.Unlock()
	return t
}

// TierCounters exposes the STAT v4 quartet. The method set is matched
// structurally by the server package, which keeps this package free of
// a dependency on the wire protocol.
func (s *Store) TierCounters() (frontHits, promotes, demotes uint64, residentBytes int64) {
	t := s.TierStats()
	hits := t.FrontReadHits + t.FrontWriteHits
	return hits, t.Promotes, t.Demotes, t.ResidentBytes
}
