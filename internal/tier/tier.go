// Package tier composes an HP AutoRAID-style hybrid out of two stores:
// a mirrored (RAID-1/0) write-back front tier over its own block
// devices, and an AFRAID back tier (core.Store) holding the cold bulk
// of the data. Small writes land on both copies of a front mirror pair
// and acknowledge immediately — no parity work in the write path at
// all — while a background migration engine demotes cold extents to
// the back tier through its normal deferred-parity write path, so the
// paper's loss contract composes across tiers: data is lost only when
// a failure lands inside a window the array has already promised to
// report.
//
// The address space is carved into fixed-size extents. An extent is
// either absent (served by the back tier) or resident in a front slot
// (served by the mirror pair, load-balanced across copies). Residency
// is persisted — an nvram.Bitmap plus a slot table behind a new magic
// — before any promote is acknowledged, so a crash never forgets which
// extents hold dirty front-tier data. Each front slot also carries a
// self-describing tag trailer on the media itself; if the persisted
// map is lost, recovery rebuilds residency from the tags and
// conservatively demotes everything to the back tier.
package tier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"afraid/internal/core"
	"afraid/internal/idle"
	"afraid/internal/layout"
	"afraid/internal/nvram"
)

// DefaultExtentSize is the promotion/demotion unit: large enough that
// a demotion batch amortizes the back tier's stripe work, small enough
// that promoting a 4 KiB write does not drag megabytes up with it.
const DefaultExtentSize = 64 << 10

// ReadPolicy selects how reads pick a copy of a front mirror pair.
type ReadPolicy int

const (
	// ShortestQueue sends the read to the copy with fewer reads in
	// flight, breaking ties round-robin. The default.
	ShortestQueue ReadPolicy = iota
	// RoundRobin alternates copies unconditionally.
	RoundRobin
)

// Options configures a tier Store. The zero value picks defaults.
type Options struct {
	// ExtentSize is the migration unit in bytes (default
	// DefaultExtentSize). Must be a power-of-two multiple of 512.
	ExtentSize int64
	// MaxDirtyBytes is the pressure valve: above it the migrator
	// demotes regardless of idleness, and above twice it the write
	// path demotes inline. Default: half the front data capacity.
	MaxDirtyBytes int64
	// PromoteMax bounds the client op size that still promotes its
	// non-resident extents; larger ops write around the front tier
	// straight to the back end (default 2×ExtentSize).
	PromoteMax int64
	// Idle paces demote-on-idle (default idle.NewTimer(DefaultDelay)).
	Idle idle.Detector
	// ReadPolicy picks the mirror copy for front reads.
	ReadPolicy ReadPolicy
	// DisableMigrator turns the background engine off; demotion then
	// happens only through Flush, ParityPoint and the inline valve.
	// Tests use it for deterministic state machines.
	DisableMigrator bool
}

// Store is a two-tier array: a mirrored write-back front absorbing hot
// small writes over an AFRAID back end. It implements the same
// ReadAt/WriteAt/Flush/Stat surface as core.Store.
type Store struct {
	back  *core.Store
	front []core.BlockDevice // pairs: devs[2p], devs[2p+1] mirror each other
	nv    core.NVRAM
	opts  Options

	extentSize int64
	capacity   int64
	extents    int64 // ceil(capacity / extentSize)
	pairs      int
	slotsPer   int64 // slots per pair
	tagBase    int64 // device offset of the tag trailer

	meta       sync.Mutex
	m          *extentMap
	dirty      *nvram.Bitmap // over global slots; runtime-only (recovery marks resident ⇒ dirty)
	lastUse    []uint64      // per global slot, for LRU victim choice
	useClock   uint64
	dirtyBytes int64

	locks [64]sync.Mutex // extent lock pool, keyed extent % 64

	copyFailed []atomic.Bool  // per front device, set on ErrDeviceFailed
	inflight   []atomic.Int64 // per front device, reads in flight
	rrTick     atomic.Uint64
	lastOp     atomic.Int64 // UnixNano of the latest client op (idle detection)
	bufs       sync.Pool    // extent-size scratch buffers

	st  stats
	ob  *tierObs
	mig *migrator

	closed atomic.Bool
}

// Errors.
var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("tier: store closed")
	// ErrDataLoss re-exports the back tier's reported-loss error; the
	// front tier returns it (wrapped) when both copies of a dirty
	// extent are gone.
	ErrDataLoss = core.ErrDataLoss
)

// tagSize is the per-slot tag in the trailer: magic(4) crc(4) extent(8).
const tagSize = 16

// Open assembles the hybrid. back is the AFRAID (or RAID-5) store the
// cold data lives in; front is an even number of equally-sized block
// devices forming mirror pairs; nv persists the extent map. Open
// resilvers the mirror copies of every resident extent (a crash may
// have left an in-flight write on one copy only) and, if the map image
// is unreadable, rebuilds residency from the on-media slot tags and
// conservatively demotes everything.
func Open(back *core.Store, front []core.BlockDevice, nv core.NVRAM, opts Options) (*Store, error) {
	if back == nil {
		return nil, errors.New("tier: nil back store")
	}
	if len(front) < 2 || len(front)%2 != 0 {
		return nil, fmt.Errorf("tier: need an even number of front devices >= 2, have %d", len(front))
	}
	if len(front) > 64 {
		// The persisted failed-copy mask is one word.
		return nil, fmt.Errorf("tier: at most 64 front devices, have %d", len(front))
	}
	if opts.ExtentSize == 0 {
		opts.ExtentSize = DefaultExtentSize
	}
	if opts.ExtentSize < 512 || opts.ExtentSize&(opts.ExtentSize-1) != 0 {
		return nil, fmt.Errorf("tier: extent size %d must be a power-of-two >= 512", opts.ExtentSize)
	}
	devSize := front[0].Size()
	for i, d := range front {
		if d.Size() != devSize {
			return nil, fmt.Errorf("tier: front device %d is %d bytes, want %d", i, d.Size(), devSize)
		}
	}
	slotsPer := devSize / (opts.ExtentSize + tagSize)
	if slotsPer < 1 {
		return nil, fmt.Errorf("tier: front devices too small for one %d-byte extent", opts.ExtentSize)
	}
	s := &Store{
		back:       back,
		front:      front,
		nv:         nv,
		opts:       opts,
		extentSize: opts.ExtentSize,
		capacity:   back.Capacity(),
		pairs:      len(front) / 2,
		slotsPer:   slotsPer,
		tagBase:    slotsPer * opts.ExtentSize,
		ob:         newTierObs(),
	}
	s.extents = (s.capacity + s.extentSize - 1) / s.extentSize
	totalSlots := int64(s.pairs) * slotsPer
	if opts.MaxDirtyBytes <= 0 {
		s.opts.MaxDirtyBytes = totalSlots * s.extentSize / 2
	}
	if opts.PromoteMax <= 0 {
		s.opts.PromoteMax = 2 * s.extentSize
	}
	if opts.Idle == nil {
		s.opts.Idle = idle.NewTimer(idle.DefaultDelay)
	}
	s.dirty = nvram.NewBitmap(totalSlots)
	s.lastUse = make([]uint64, totalSlots)
	s.copyFailed = make([]atomic.Bool, len(front))
	s.inflight = make([]atomic.Int64, len(front))
	s.bufs.New = func() any { return make([]byte, s.extentSize) }
	s.lastOp.Store(time.Now().UnixNano())

	if err := s.recover(); err != nil {
		return nil, err
	}

	if !s.opts.DisableMigrator {
		s.mig = newMigrator(s)
		s.mig.start()
	}
	return s, nil
}

// recover loads the persisted map (or rebuilds it from slot tags),
// resilvers mirror copies, and conservatively marks every resident
// extent dirty so recovery never leaves acknowledged data stranded.
func (s *Store) recover() error {
	totalSlots := int64(s.pairs) * s.slotsPer
	img, err := s.nv.Load()
	if err != nil {
		return fmt.Errorf("tier: loading extent map: %w", err)
	}
	m, failedMask, derr := deserializeMap(img, s.extentSize, totalSlots, s.extents)
	if derr == nil && len(img) == 0 {
		// An empty image normally means first boot — but a deleted or
		// zeroed-out map file looks identical, and trusting it would
		// silently strand any dirty front data. The slot tags
		// disambiguate for free: a true first boot has blank front
		// devices and an empty scan, while tagged slots under an empty
		// map mean the marking memory was destroyed.
		scanned, err := s.scanTags()
		if err != nil {
			return err
		}
		if len(scanned.byExtent) > 0 {
			derr = errors.New("tier: empty extent map but tagged slots on media")
		}
	}
	if derr != nil {
		// Map loss: the paper's marking-memory failure, one tier up.
		// Rebuild residency from the self-describing slot tags, then
		// demote everything — without the map we no longer trust our
		// placement decisions, so the only conservative home for the
		// data is the fully-redundant back tier. (The failed-copy mask
		// is lost with the map; losing both it and a mirror copy at
		// once is a double failure outside the contract, same as NVRAM
		// loss plus a disk death in the paper.)
		s.st.mapRecovered.Store(true)
		m, err = s.scanTags()
		if err != nil {
			return err
		}
		s.m = m
		if err := s.resilver(); err != nil {
			return err
		}
		s.markAllResidentDirty()
		if err := s.demoteAll(context.Background(), true); err != nil {
			return fmt.Errorf("tier: full-demote recovery: %w", err)
		}
		s.meta.Lock()
		defer s.meta.Unlock()
		return s.persistMapLocked()
	}
	// Copies flagged failed in the persisted image are stale — the
	// mirror kept taking writes after they died — and resilver must
	// treat them as such even if the hardware answers again.
	for i := range s.copyFailed {
		if failedMask&(1<<uint(i)) != 0 {
			s.copyFailed[i].Store(true)
		}
	}
	s.m = m
	if err := s.resilver(); err != nil {
		return err
	}
	s.markAllResidentDirty()
	return nil
}

// markAllResidentDirty applies the recovery conservatism: a clean
// resident extent whose dirtying write raced the crash must not be
// treated as clean, so every survivor is considered dirty and will be
// re-demoted (re-writing identical bytes for truly clean ones).
func (s *Store) markAllResidentDirty() {
	s.meta.Lock()
	defer s.meta.Unlock()
	for slot, ext := range s.m.table {
		if ext >= 0 {
			if s.dirty.Mark(int64(slot)) {
				s.dirtyBytes += s.extentLen(ext)
			}
		}
	}
}

// extentLen is the extent's byte length (the last extent may be short).
func (s *Store) extentLen(ext int64) int64 {
	if l := s.capacity - ext*s.extentSize; l < s.extentSize {
		return l
	}
	return s.extentSize
}

// pairOf maps an extent to its mirror pair (RAID-1/0 striping).
func (s *Store) pairOf(ext int64) int { return int(ext % int64(s.pairs)) }

// slotOff is the device offset of a slot's data.
func (s *Store) slotOff(slot int64) int64 { return (slot % s.slotsPer) * s.extentSize }

// globalSlot combines pair and per-pair slot into the map index.
func globalSlot(pair int, slot int64, slotsPer int64) int64 { return int64(pair)*slotsPer + slot }

// Capacity returns the client-visible byte capacity (the back tier's;
// the front is a staging area, not extra space).
func (s *Store) Capacity() int64 { return s.capacity }

// Mode returns the back tier's redundancy mode.
func (s *Store) Mode() core.Mode { return s.back.Mode() }

// Geometry returns the back tier's layout.
func (s *Store) Geometry() layout.Geometry { return s.back.Geometry() }

// DirtyStripes returns the back tier's dirty (parity-stale) stripe
// count. Front-tier residency is reported separately via TierStats.
func (s *Store) DirtyStripes() int64 { return s.back.DirtyStripes() }

// Stats returns the back tier's counters (the surface server.Backend
// wants); tier-specific counters live in TierStats.
func (s *Store) Stats() core.Stats { return s.back.Stats() }

// Back returns the underlying back-tier store (for repair and
// parity-check plumbing in tests and the daemon).
func (s *Store) Back() *core.Store { return s.back }

// ReadAt implements io.ReaderAt over the composed address space.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	return s.ReadContext(context.Background(), p, off)
}

// WriteAt implements io.WriterAt over the composed address space.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	return s.WriteContext(context.Background(), p, off)
}

// ReadContext reads len(p) bytes at off, serving resident extents from
// the front mirrors (load-balanced) and everything else from the back
// tier.
func (s *Store) ReadContext(ctx context.Context, p []byte, off int64) (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if off < 0 || off+int64(len(p)) > s.capacity {
		return 0, fmt.Errorf("tier: read [%d,%d) outside capacity %d", off, off+int64(len(p)), s.capacity)
	}
	done := 0
	for done < len(p) {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		ext := (off + int64(done)) / s.extentSize
		extOff := (off + int64(done)) % s.extentSize
		n := int(s.extentLen(ext) - extOff)
		if rem := len(p) - done; n > rem {
			n = rem
		}
		if err := s.readExtent(ctx, ext, extOff, p[done:done+n]); err != nil {
			return done, err
		}
		done += n
	}
	s.st.reads.Add(1)
	s.st.bytesRead.Add(int64(len(p)))
	s.lastOp.Store(time.Now().UnixNano())
	return done, nil
}

// readExtent reads one extent-local range from whichever tier owns it.
func (s *Store) readExtent(ctx context.Context, ext, extOff int64, p []byte) error {
	lk := &s.locks[ext%64]
	lk.Lock()
	defer lk.Unlock()

	s.meta.Lock()
	slot, resident := s.m.byExtent[ext]
	if resident {
		s.useClock++
		s.lastUse[slot] = s.useClock
	}
	s.meta.Unlock()

	if !resident {
		s.st.frontReadMisses.Add(1)
		_, err := s.back.ReadContext(ctx, p, ext*s.extentSize+extOff)
		return err
	}
	s.st.frontReadHits.Add(1)
	start := time.Now()
	err := s.frontRead(slot, extOff, p)
	s.ob.frontRead.Observe(time.Since(start))
	return err
}

// WriteContext writes len(p) bytes at off. Resident extents take the
// fast path (two mirror writes, no map traffic); small writes to
// absent extents promote them; large ops write around the front
// straight to the back tier's deferred-parity path.
func (s *Store) WriteContext(ctx context.Context, p []byte, off int64) (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if off < 0 || off+int64(len(p)) > s.capacity {
		return 0, fmt.Errorf("tier: write [%d,%d) outside capacity %d", off, off+int64(len(p)), s.capacity)
	}
	writeAround := int64(len(p)) > s.opts.PromoteMax
	done := 0
	for done < len(p) {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		ext := (off + int64(done)) / s.extentSize
		extOff := (off + int64(done)) % s.extentSize
		n := int(s.extentLen(ext) - extOff)
		if rem := len(p) - done; n > rem {
			n = rem
		}
		if err := s.writeExtent(ctx, ext, extOff, p[done:done+n], writeAround); err != nil {
			return done, err
		}
		done += n
	}
	s.st.writes.Add(1)
	s.st.bytesWritten.Add(int64(len(p)))
	s.lastOp.Store(time.Now().UnixNano())
	// Hard pressure: the migrator is behind; pay one demotion inline
	// (the analogue of the back tier's kickScrub valve) so dirty bytes
	// cannot grow without bound.
	if s.dirtyBytesNow() > 2*s.opts.MaxDirtyBytes {
		s.demoteOne(ctx)
	} else if s.mig != nil && s.dirtyBytesNow() > s.opts.MaxDirtyBytes {
		s.mig.kick()
	}
	return done, nil
}

func (s *Store) dirtyBytesNow() int64 {
	s.meta.Lock()
	defer s.meta.Unlock()
	return s.dirtyBytes
}

// writeExtent routes one extent-local write.
func (s *Store) writeExtent(ctx context.Context, ext, extOff int64, p []byte, writeAround bool) error {
	lk := &s.locks[ext%64]
	lk.Lock()
	defer lk.Unlock()

	s.meta.Lock()
	slot, resident := s.m.byExtent[ext]
	s.meta.Unlock()

	if resident {
		s.st.frontWriteHits.Add(1)
		start := time.Now()
		if err := s.frontWrite(slot, extOff, p); err != nil {
			return err
		}
		s.ob.frontWrite.Observe(time.Since(start))
		s.meta.Lock()
		if s.dirty.Mark(slot) {
			s.dirtyBytes += s.extentLen(ext)
		}
		s.useClock++
		s.lastUse[slot] = s.useClock
		s.meta.Unlock()
		return nil
	}

	if writeAround || s.pairDegraded(s.pairOf(ext)) {
		s.st.writeArounds.Add(1)
		_, err := s.back.WriteContext(ctx, p, ext*s.extentSize+extOff)
		return err
	}
	return s.promote(ctx, ext, extOff, p)
}

// pairDegraded reports whether either copy of a pair has failed; new
// promotes avoid degraded pairs (a single-copy front is worse than the
// parity tier).
func (s *Store) pairDegraded(pair int) bool {
	return s.copyFailed[2*pair].Load() || s.copyFailed[2*pair+1].Load()
}

// Flush demotes every dirty extent and then drives the back tier to a
// parity point: afterwards all data is fully redundant.
func (s *Store) Flush() error { return s.FlushContext(context.Background()) }

// FlushContext is Flush with cancellation.
func (s *Store) FlushContext(ctx context.Context) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.demoteAll(ctx, false); err != nil {
		return err
	}
	return s.back.FlushContext(ctx)
}

// ParityPoint makes the stripes covering [off, off+length) redundant,
// demoting any dirty front extents overlapping the range first.
func (s *Store) ParityPoint(off, length int64) error {
	return s.ParityPointContext(context.Background(), off, length)
}

// ParityPointContext is ParityPoint with cancellation.
func (s *Store) ParityPointContext(ctx context.Context, off, length int64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	lo := off / s.extentSize
	hi := (off + length + s.extentSize - 1) / s.extentSize
	s.meta.Lock()
	var victims []int64
	for ext := lo; ext < hi && ext < s.extents; ext++ {
		if slot, ok := s.m.byExtent[ext]; ok && s.dirty.IsMarked(slot) {
			victims = append(victims, ext)
		}
	}
	s.meta.Unlock()
	for _, ext := range victims {
		if err := s.demoteExtent(ctx, ext, false); err != nil {
			return err
		}
	}
	return s.back.ParityPointContext(ctx, off, length)
}

// Close stops the migrator and persists the extent map. Dirty data
// stays in the front tier — that is the write-back contract; reopening
// recovers it. Call Flush first for a fully-demoted shutdown.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	if s.mig != nil {
		s.mig.stop()
	}
	s.meta.Lock()
	err := s.persistMapLocked()
	s.meta.Unlock()
	return err
}
