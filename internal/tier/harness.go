package tier

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"afraid/internal/core"
	"afraid/internal/fault"
	"afraid/internal/idle"
)

// This file is the tier's chaos harness: seeded episodes that run a
// random workload against a fully assembled hybrid — fault-wrapped
// front mirrors and back-tier members on one shared power line — and
// check the composed contract byte by byte. The power-line fuse tears
// exactly one device write, which lands with equal probability inside
// a mirror write, a promote, a demote or a back-tier stripe write, so
// every arrow of the migration state machine gets crashed mid-flight
// across enough seeds.
//
// The oracle is a byte-level shadow: bytes from acknowledged writes
// are determinate and must read back exactly; bytes under a failed
// write are indeterminate (old, new, or torn — all legal). The
// schedules never exceed the redundancy of either tier (at most one
// front copy fails, the back tier loses no members), so any
// ErrDataLoss touching a determinate byte is a contract violation,
// and any silent mismatch is the cardinal one.

// ChaosConfig selects one episode's failure schedule. The zero value
// plus a seed is a plain crash-free workload.
type ChaosConfig struct {
	Seed           int64
	BackDisks      int     // back-tier members (default 4)
	StripeUnit     int64   // back-tier stripe unit (default 512)
	StripesPerDisk int64   // back device size / StripeUnit (default 48)
	FrontPairs     int     // front mirror pairs (default 1)
	SlotsPerPair   int64   // extent slots per pair (default 6)
	ExtentSize     int64   // migration unit (default 4096)
	Ops            int     // workload operations (default 150)
	WriteFrac      float64 // fraction of ops that write (default 0.65)
	MaxIO          int64   // max bytes per op (default 3×ExtentSize)
	MaxDirtyBytes  int64   // pressure valve (default 2×ExtentSize)

	PowerCut      bool // cut power mid-workload and reopen through recovery
	DropTierMap   bool // the crash also destroys the tier's extent map
	FrontCopyFail bool // fail-stop exactly one copy of a front pair mid-run
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.BackDisks == 0 {
		c.BackDisks = 4
	}
	if c.StripeUnit == 0 {
		c.StripeUnit = 512
	}
	if c.StripesPerDisk == 0 {
		c.StripesPerDisk = 48
	}
	if c.FrontPairs == 0 {
		c.FrontPairs = 1
	}
	if c.SlotsPerPair == 0 {
		c.SlotsPerPair = 6
	}
	if c.ExtentSize == 0 {
		c.ExtentSize = 4096
	}
	if c.Ops == 0 {
		c.Ops = 150
	}
	if c.WriteFrac == 0 {
		c.WriteFrac = 0.65
	}
	if c.MaxIO == 0 {
		c.MaxIO = 3 * c.ExtentSize
	}
	if c.MaxDirtyBytes == 0 {
		c.MaxDirtyBytes = 2 * c.ExtentSize
	}
	if c.DropTierMap {
		// Map loss is only observable through a crash, and losing the
		// map and a mirror copy at once is a double failure outside the
		// contract (the failed-copy mask dies with the map).
		c.PowerCut = true
		c.FrontCopyFail = false
	}
	return c
}

// ChaosResult is one episode's outcome. Violations empty means the
// contract held.
type ChaosResult struct {
	Seed       int64
	Violations []string

	AckedWrites  int
	FailedWrites int
	Crashed      bool
	LostRanges   int // reported-loss reads touching only indeterminate bytes

	// Folded across the pre- and post-crash stores.
	Promotes, Demotes uint64
	FrontHits         uint64
	WriteArounds      uint64
	Resilvered        uint64
	MapRecovered      bool
	FrontCopyFailed   bool
}

func (r *ChaosResult) violate(format string, args ...any) {
	if len(r.Violations) < 20 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// byteShadow is the oracle: the expected content plus a per-byte
// determinacy flag.
type byteShadow struct {
	data []byte
	det  []bool
}

func (s *byteShadow) write(off int64, p []byte) {
	copy(s.data[off:], p)
	for i := range p {
		s.det[off+int64(i)] = true
	}
}

func (s *byteShadow) clobber(off, n int64) {
	for i := off; i < off+n; i++ {
		s.det[i] = false
	}
}

func (s *byteShadow) anyDet(off, n int64) bool {
	for i := off; i < off+n; i++ {
		if s.det[i] {
			return true
		}
	}
	return false
}

type chaosEpisode struct {
	cfg ChaosConfig
	rng *rand.Rand
	res *ChaosResult

	line          *fault.PowerLine
	backBackings  []core.BlockDevice
	frontBackings []core.BlockDevice
	backDevs      []*fault.Device
	frontDevs     []*fault.Device
	backNV        *core.MemNVRAM
	nv            core.NVRAM

	back *core.Store
	st   *Store
	sh   *byteShadow
}

func (e *chaosEpisode) backOptions() core.Options {
	return core.Options{
		Mode:       core.Afraid,
		StripeUnit: e.cfg.StripeUnit,
		ScrubIdle:  3 * time.Millisecond,
	}
}

func (e *chaosEpisode) tierOptions() Options {
	return Options{
		ExtentSize:    e.cfg.ExtentSize,
		MaxDirtyBytes: e.cfg.MaxDirtyBytes,
		// An aggressive idle timer keeps the migrator demoting all
		// through the workload, so the fuse can land mid-migration.
		Idle: idle.NewTimer(2 * time.Millisecond),
	}
}

// wire (re)wraps both device sets with fault injectors on the shared
// power line. seed varies across the crash so post-recovery tearing
// differs from pre-crash tearing.
func (e *chaosEpisode) wire(seed int64) {
	e.backDevs = fault.Wrap(e.backBackings, seed)
	for _, d := range e.backDevs {
		d.OnLine(e.line)
	}
	e.frontDevs = fault.Wrap(e.frontBackings, seed+1)
	for _, d := range e.frontDevs {
		d.OnLine(e.line)
	}
}

func (e *chaosEpisode) open() error {
	back, err := core.Open(fault.Devices(e.backDevs), e.backNV, e.backOptions())
	if err != nil {
		return fmt.Errorf("tier chaos: opening back store: %w", err)
	}
	st, err := Open(back, fault.Devices(e.frontDevs), e.nv, e.tierOptions())
	if err != nil {
		back.Close()
		return fmt.Errorf("tier chaos: opening tier: %w", err)
	}
	e.back, e.st = back, st
	return nil
}

// foldStats accumulates the current store's counters into the result
// (the crash discards the in-memory ones).
func (e *chaosEpisode) foldStats() {
	ts := e.st.TierStats()
	e.res.Promotes += ts.Promotes
	e.res.Demotes += ts.Demotes
	e.res.FrontHits += ts.FrontReadHits + ts.FrontWriteHits
	e.res.WriteArounds += ts.WriteArounds
	e.res.Resilvered += ts.Resilvered
	e.res.MapRecovered = e.res.MapRecovered || ts.MapRecovered
	for _, d := range e.frontDevs {
		if d.Failed() {
			e.res.FrontCopyFailed = true
		}
	}
}

// RunChaosEpisode builds a hybrid, runs the seeded schedule against
// it, and verifies the composed loss contract. The error return is for
// harness-level breakage only; contract breaches land in
// Result.Violations.
func RunChaosEpisode(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	e := &chaosEpisode{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		res:    &ChaosResult{Seed: cfg.Seed},
		line:   fault.NewPowerLine(),
		backNV: &core.MemNVRAM{},
		nv:     &core.MemNVRAM{},
	}
	for i := 0; i < cfg.BackDisks; i++ {
		e.backBackings = append(e.backBackings, core.NewMemDevice(cfg.StripesPerDisk*cfg.StripeUnit))
	}
	frontSize := cfg.SlotsPerPair * (cfg.ExtentSize + tagSize)
	for i := 0; i < 2*cfg.FrontPairs; i++ {
		e.frontBackings = append(e.frontBackings, core.NewMemDevice(frontSize))
	}
	e.wire(cfg.Seed)

	if cfg.FrontCopyFail {
		// Scope the fail-stop to exactly one copy of one pair; which
		// copy claims it depends on the interleaving, which is the
		// point.
		pair := e.rng.Intn(cfg.FrontPairs)
		fault.Mirror(
			fault.Rule{When: fault.After(uint64(1 + e.rng.Intn(cfg.Ops))), Do: fault.FailStop()},
			e.frontDevs[2*pair], e.frontDevs[2*pair+1],
		)
	}

	if err := e.open(); err != nil {
		return nil, err
	}
	capacity := e.st.Capacity()
	e.sh = &byteShadow{data: make([]byte, capacity), det: make([]bool, capacity)}

	if cfg.PowerCut {
		// Fuse on a device-write count: client writes fan out into
		// mirror, tag, promote and demote writes, so the torn write
		// lands at a uniformly random arrow of the state machine.
		e.line.CutAfter(1 + e.rng.Int63n(int64(cfg.Ops)*4))
	}

	cut, err := e.workload()
	if err != nil {
		return e.res, err
	}
	if cfg.PowerCut {
		if !cut {
			e.line.Cut() // fuse never blew: cut at workload end
		}
		if err := e.crashAndRecover(); err != nil {
			return e.res, err
		}
	}

	e.verify("post-recovery")

	// Flush drives everything down to the back tier and to a parity
	// point; afterwards the client view must be unchanged and the back
	// tier fully redundant.
	if err := e.st.Flush(); err != nil {
		if errors.Is(err, core.ErrDataLoss) {
			e.res.violate("flush reported loss (%v) though no schedule exceeds redundancy", err)
		} else {
			return e.res, fmt.Errorf("tier chaos: flush: %w", err)
		}
	}
	e.verify("post-flush")

	if bad, err := e.back.CheckParity(); err != nil {
		return e.res, fmt.Errorf("tier chaos: parity audit: %w", err)
	} else if len(bad) > 0 {
		e.res.violate("post-flush parity audit found %d inconsistent stripes (first %d)", len(bad), bad[0])
	}

	e.foldStats()
	e.st.Close()
	e.back.Close()
	return e.res, nil
}

// workload runs seeded random I/O with live verification, maintaining
// the shadow. It returns cut=true when the power cut ended the run.
func (e *chaosEpisode) workload() (cut bool, err error) {
	capacity := e.st.Capacity()
	hotSpan := 4 * e.cfg.ExtentSize
	if hotSpan > capacity {
		hotSpan = capacity
	}
	for i := 0; i < e.cfg.Ops; i++ {
		if e.line.IsCut() {
			return true, nil
		}
		length := 1 + e.rng.Int63n(e.cfg.MaxIO)
		if length > capacity {
			length = capacity
		}
		off := e.rng.Int63n(capacity - length + 1)
		if e.rng.Float64() < 0.5 && length <= hotSpan {
			// Re-hit a hot prefix half the time so extents stay
			// resident long enough to take front write hits.
			off = e.rng.Int63n(hotSpan - length + 1)
		}

		if e.rng.Float64() < e.cfg.WriteFrac {
			p := make([]byte, length)
			e.rng.Read(p)
			if _, werr := e.st.WriteAt(p, off); werr != nil {
				e.res.FailedWrites++
				e.sh.clobber(off, length)
				if errors.Is(werr, fault.ErrPowerCut) {
					return true, nil
				}
				if errors.Is(werr, core.ErrDataLoss) {
					e.res.violate("live write [%d,%d) reported loss (%v) though no schedule exceeds redundancy", off, off+length, werr)
					continue
				}
				return false, fmt.Errorf("tier chaos: workload write [%d,%d): %w", off, off+length, werr)
			}
			e.res.AckedWrites++
			e.sh.write(off, p)
			continue
		}

		p := make([]byte, length)
		if _, rerr := e.st.ReadAt(p, off); rerr != nil {
			if errors.Is(rerr, fault.ErrPowerCut) {
				return true, nil
			}
			if errors.Is(rerr, core.ErrDataLoss) {
				if e.sh.anyDet(off, length) {
					e.res.violate("live read [%d,%d) lost (%v) over determinate bytes", off, off+length, rerr)
				} else {
					e.res.LostRanges++
				}
				continue
			}
			return false, fmt.Errorf("tier chaos: workload read [%d,%d): %w", off, off+length, rerr)
		}
		e.checkBytes("live read", off, p)
	}
	return false, nil
}

// checkBytes compares a successful read against the shadow.
func (e *chaosEpisode) checkBytes(label string, off int64, got []byte) {
	for i, b := range got {
		at := off + int64(i)
		if e.sh.det[at] && e.sh.data[at] != b {
			e.res.violate("%s: byte %d is %02x, want %02x (silent divergence)", label, at, b, e.sh.data[at])
			return
		}
	}
}

// crashAndRecover abandons both stores mid-flight and reassembles the
// hybrid from the surviving media — the machine rebooting.
func (e *chaosEpisode) crashAndRecover() error {
	e.foldStats()
	frontDead := make([]bool, len(e.frontDevs))
	for i, d := range e.frontDevs {
		frontDead[i] = d.Failed()
	}
	// The crash kills the process: no Close, no Flush. The migrator
	// goroutine is stopped only because the test process itself lives
	// on.
	e.st.closed.Store(true)
	if e.st.mig != nil {
		e.st.mig.stop()
	}
	e.back.Close() // wrappers skip closing backings while the line is cut
	e.res.Crashed = true

	e.line.Restore()
	e.wire(e.cfg.Seed + 100)
	// A front copy that fail-stopped before the crash missed its
	// mirror's degraded writes; its media is stale. Keep it down so
	// recovery exercises the persisted failed-copy mask.
	for i, dead := range frontDead {
		if dead {
			e.frontDevs[i].Fail()
		}
	}
	if e.cfg.DropTierMap {
		e.nv = fault.NewLostNVRAM()
	}
	return e.open()
}

// verify reads the whole client address space extent by extent and
// checks every determinate byte. Reported loss over indeterminate
// bytes is tolerated; over determinate bytes it is a violation, and a
// mismatch is silent divergence — the one thing the design must never
// produce.
func (e *chaosEpisode) verify(label string) {
	capacity := e.st.Capacity()
	buf := make([]byte, e.cfg.ExtentSize)
	for off := int64(0); off < capacity; off += e.cfg.ExtentSize {
		n := e.cfg.ExtentSize
		if off+n > capacity {
			n = capacity - off
		}
		if _, err := e.st.ReadAt(buf[:n], off); err != nil {
			if errors.Is(err, core.ErrDataLoss) {
				if e.sh.anyDet(off, n) {
					e.res.violate("%s read [%d,%d) lost (%v) over determinate bytes", label, off, off+n, err)
				} else {
					e.res.LostRanges++
				}
				continue
			}
			e.res.violate("%s read [%d,%d) failed: %v", label, off, off+n, err)
			continue
		}
		e.checkBytes(label, off, buf[:n])
	}
}
