package tier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"afraid/internal/core"
)

// promote installs an extent in the front tier and applies the write.
// The caller holds the extent's lock. Crash-safety hangs on the order:
// compose the full image, zero any previous occupant's tags, write
// copy 0 (data, tag), write copy 1 (data, tag), and only then persist
// the map and acknowledge. Before the map persist the back tier is
// still authoritative and the write simply never happened; after it
// the front holds a complete image on at least one whole copy.
func (s *Store) promote(ctx context.Context, ext, extOff int64, p []byte) error {
	n := s.extentLen(ext)
	buf := s.bufs.Get().([]byte)[:s.extentSize]
	defer s.bufs.Put(buf[:cap(buf)])
	if extOff > 0 || int64(len(p)) < n {
		if _, err := s.back.ReadContext(ctx, buf[:n], ext*s.extentSize); err != nil {
			if errors.Is(err, core.ErrDataLoss) {
				// The surrounding bytes are already reported lost; let
				// the back tier absorb the partial write directly.
				s.st.writeArounds.Add(1)
				_, werr := s.back.WriteContext(ctx, p, ext*s.extentSize+extOff)
				return werr
			}
			return err
		}
	}
	copy(buf[extOff:], p)

	start := time.Now()
	slot, err := s.claimSlot(ext)
	if err != nil || slot < 0 {
		// No slot to be had: not a failure, just a cold front. Write
		// around and let the migrator catch up.
		s.st.writeArounds.Add(1)
		_, werr := s.back.WriteContext(ctx, p, ext*s.extentSize+extOff)
		if err == nil {
			err = werr
		} else if werr != nil {
			err = fmt.Errorf("%w (and write-around failed: %v)", err, werr)
		}
		return err
	}
	if err := s.frontWrite(slot, 0, buf[:n]); err != nil {
		s.releaseSlot(slot)
		return err
	}
	if err := s.writeTags(slot, ext); err != nil {
		s.releaseSlot(slot)
		return err
	}
	s.meta.Lock()
	s.m.set(slot, ext)
	s.dirty.Mark(slot)
	s.dirtyBytes += n
	s.useClock++
	s.lastUse[slot] = s.useClock
	err = s.persistMapLocked()
	s.meta.Unlock()
	if err != nil {
		return err
	}
	s.st.promotes.Add(1)
	s.st.promotedBytes.Add(n)
	s.ob.promote.Observe(time.Since(start))
	return nil
}

// claimSlot finds a free slot on the extent's pair, evicting the
// least-recently-used clean extent if the pair is full. It returns
// slot -1 (no error) when nothing is evictable — every slot dirty
// means the migrator is the bottleneck, and the right move is to
// write around, not to block the client behind a demotion.
//
// Eviction locks the victim's extent with TryLock: the caller already
// holds the promoting extent's lock, and two promotes evicting across
// each other could otherwise deadlock on the 64-way pool.
func (s *Store) claimSlot(ext int64) (int64, error) {
	pair := s.pairOf(ext)
	s.meta.Lock()
	if slot := s.m.freeSlot(pair, s.slotsPer); slot >= 0 {
		// Reserve it against concurrent promotes on this pair by
		// pointing it at the extent right away; the map is persisted
		// only after the data lands, so a crash here is harmless.
		s.m.table[slot] = ext
		s.meta.Unlock()
		return slot, nil
	}
	// Full pair: pick the LRU clean occupant.
	victimSlot, victimExt := int64(-1), int64(-1)
	base := int64(pair) * s.slotsPer
	var oldest uint64
	for sl := base; sl < base+s.slotsPer; sl++ {
		e := s.m.table[sl]
		if e < 0 || s.dirty.IsMarked(sl) {
			continue
		}
		if victimSlot < 0 || s.lastUse[sl] < oldest {
			victimSlot, victimExt, oldest = sl, e, s.lastUse[sl]
		}
	}
	s.meta.Unlock()
	if victimSlot < 0 {
		return -1, nil
	}
	vlk := &s.locks[victimExt%64]
	sameLock := victimExt%64 == ext%64 // already held by the caller
	if !sameLock && !vlk.TryLock() {
		return -1, nil // contended victim: write around instead of risking deadlock
	}
	if !sameLock {
		defer vlk.Unlock()
	}
	// Recheck under the victim's lock: it may have been written (now
	// dirty) or evicted while we released meta.
	s.meta.Lock()
	if s.m.table[victimSlot] != victimExt || s.dirty.IsMarked(victimSlot) {
		s.meta.Unlock()
		return -1, nil
	}
	s.meta.Unlock()
	if err := s.invalidateTags(victimSlot); err != nil {
		return -1, err
	}
	s.meta.Lock()
	s.m.clear(victimSlot)
	s.m.table[victimSlot] = ext // reserve for the promote
	s.meta.Unlock()
	s.st.evictions.Add(1)
	return victimSlot, nil
}

// releaseSlot undoes a claimSlot reservation after a failed promote.
func (s *Store) releaseSlot(slot int64) {
	s.meta.Lock()
	s.m.table[slot] = -1
	s.meta.Unlock()
}

// demoteExtent pushes one extent's content down to the back tier
// through its normal deferred-parity write path. With evict it also
// frees the slot (tags zeroed first); otherwise the extent stays
// resident clean, still serving reads from the mirrors.
func (s *Store) demoteExtent(ctx context.Context, ext int64, evict bool) error {
	lk := &s.locks[ext%64]
	lk.Lock()
	defer lk.Unlock()

	s.meta.Lock()
	slot, ok := s.m.byExtent[ext]
	wasDirty := ok && s.dirty.IsMarked(slot)
	s.meta.Unlock()
	if !ok || (!wasDirty && !evict) {
		return nil // raced with a concurrent demote or eviction
	}

	start := time.Now()
	n := s.extentLen(ext)
	buf := s.bufs.Get().([]byte)[:s.extentSize]
	defer s.bufs.Put(buf[:cap(buf)])
	if wasDirty {
		d0, d1 := s.devsOf(slot)
		err := s.readDev(d0, buf[:n], s.slotOff(slot))
		if errors.Is(err, core.ErrDeviceFailed) {
			err = s.readDev(d1, buf[:n], s.slotOff(slot))
			if errors.Is(err, core.ErrDeviceFailed) {
				return fmt.Errorf("tier: demoting extent %d: both front copies failed: %w", ext, ErrDataLoss)
			}
		}
		if err != nil {
			return err
		}
		if _, err := s.back.WriteContext(ctx, buf[:n], ext*s.extentSize); err != nil {
			return err
		}
	}
	if evict {
		if err := s.invalidateTags(slot); err != nil {
			return err
		}
	}
	s.meta.Lock()
	if s.dirty.Unmark(slot) {
		s.dirtyBytes -= n
	}
	var err error
	if evict {
		s.m.clear(slot)
		err = s.persistMapLocked()
	}
	s.meta.Unlock()
	if err != nil {
		return err
	}
	if wasDirty {
		s.st.demotes.Add(1)
		s.st.demotedBytes.Add(n)
		s.ob.demote.Observe(time.Since(start))
	}
	return nil
}

// demoteOne demotes the least-recently-used dirty extent, if any. It
// reports whether there was one.
func (s *Store) demoteOne(ctx context.Context) bool {
	s.meta.Lock()
	victim, oldest := int64(-1), uint64(0)
	for slot, ext := range s.m.table {
		if ext < 0 || !s.dirty.IsMarked(int64(slot)) {
			continue
		}
		if victim < 0 || s.lastUse[slot] < oldest {
			victim, oldest = ext, s.lastUse[slot]
		}
	}
	s.meta.Unlock()
	if victim < 0 {
		return false
	}
	// A failed demote (cut power line, lost pair) must read as "no
	// progress" or the pressure loop would spin against a dead tier.
	return s.demoteExtent(ctx, victim, false) == nil
}

// demoteAll demotes every dirty extent (and with evict frees every
// slot — the conservative full-demote recovery).
func (s *Store) demoteAll(ctx context.Context, evict bool) error {
	s.meta.Lock()
	var victims []int64
	for slot, ext := range s.m.table {
		if ext < 0 {
			continue
		}
		if evict || s.dirty.IsMarked(int64(slot)) {
			victims = append(victims, ext)
		}
	}
	s.meta.Unlock()
	for _, ext := range victims {
		if err := s.demoteExtent(ctx, ext, evict); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// migrator is the background engine: demote-on-idle paced by the idle
// detector, plus a dirty-bytes pressure valve that ignores idleness,
// plus an urgent drain whenever a front copy has failed (single-copy
// dirty data belongs in the parity tier, fast).
type migrator struct {
	s     *Store
	kickC chan struct{}
	stopC chan struct{}
	wg    sync.WaitGroup
}

func newMigrator(s *Store) *migrator {
	return &migrator{s: s, kickC: make(chan struct{}, 1), stopC: make(chan struct{})}
}

func (m *migrator) start() {
	m.wg.Add(1)
	go m.loop()
}

func (m *migrator) stop() {
	close(m.stopC)
	m.wg.Wait()
}

// kick wakes the loop early (pressure valve).
func (m *migrator) kick() {
	select {
	case m.kickC <- struct{}{}:
	default:
	}
}

func (m *migrator) loop() {
	defer m.wg.Done()
	s := m.s
	timer := time.NewTimer(s.opts.Idle.Delay())
	defer timer.Stop()
	for {
		select {
		case <-m.stopC:
			return
		case <-m.kickC:
		case <-timer.C:
		}

		degraded := false
		for i := range s.copyFailed {
			if s.copyFailed[i].Load() {
				degraded = true
				break
			}
		}
		pressure := s.dirtyBytesNow() > s.opts.MaxDirtyBytes
		idleFor := time.Duration(time.Now().UnixNano() - s.lastOp.Load())
		quiet := idleFor >= s.opts.Idle.Delay()

		if degraded || pressure || quiet {
			start := time.Now()
			demoted := 0
			for {
				select {
				case <-m.stopC:
					return
				default:
				}
				// Under pressure drain to half the valve; when merely
				// idle, demote until a client op interrupts.
				if !degraded {
					if pressure {
						if s.dirtyBytesNow() <= s.opts.MaxDirtyBytes/2 {
							break
						}
					} else if s.lastOp.Load() > start.UnixNano() {
						s.opts.Idle.Observe(true) // interrupted
						break
					}
				}
				if !s.demoteOne(context.Background()) {
					if demoted > 0 {
						s.opts.Idle.Observe(false)
					}
					break
				}
				demoted++
			}
			if demoted > 0 {
				s.ob.migrate.Observe(time.Since(start))
			}
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(s.opts.Idle.Delay())
	}
}
