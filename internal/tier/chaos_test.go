package tier

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
	"afraid/internal/idle"
)

// runEpisodes sweeps seeds through one schedule shape and fails on any
// contract violation. Each seed is a different interleaving of the
// fuse, the workload and the migrator.
func runEpisodes(t *testing.T, base ChaosConfig, seeds int) {
	t.Helper()
	crashed, promoted, demoted := 0, 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfg := base
		cfg.Seed = seed
		res, err := RunChaosEpisode(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if t.Failed() {
			return
		}
		if res.Crashed {
			crashed++
		}
		if res.Promotes > 0 {
			promoted++
		}
		if res.Demotes > 0 {
			demoted++
		}
	}
	// The sweep must actually exercise the machinery it claims to.
	if promoted == 0 {
		t.Fatal("no episode promoted a single extent; the schedule is vacuous")
	}
	if demoted == 0 {
		t.Fatal("no episode demoted a single extent; the schedule is vacuous")
	}
	if base.PowerCut && crashed == 0 {
		t.Fatal("no episode crashed; the schedule is vacuous")
	}
}

// TestChaosCleanWorkload: no faults at all — the hybrid must be simply
// correct under a random workload with a live migrator.
func TestChaosCleanWorkload(t *testing.T) {
	runEpisodes(t, ChaosConfig{}, 12)
}

// TestChaosPowerCut: the fuse tears one device write mid-run — inside
// a mirror write, a promote, a demote or a back stripe write depending
// on the seed — and recovery must leave every acknowledged byte
// readable from exactly one consistent tier.
func TestChaosPowerCut(t *testing.T) {
	runEpisodes(t, ChaosConfig{PowerCut: true}, 25)
}

// TestChaosPowerCutMapLoss: the crash also destroys the extent map;
// recovery rebuilds residency from the slot tags and conservatively
// demotes everything.
func TestChaosPowerCutMapLoss(t *testing.T) {
	runEpisodes(t, ChaosConfig{PowerCut: true, DropTierMap: true}, 25)
}

// TestChaosFrontCopyFail: one copy of a mirror pair fail-stops
// mid-run; the survivor carries the pair with no client-visible
// effect.
func TestChaosFrontCopyFail(t *testing.T) {
	runEpisodes(t, ChaosConfig{FrontCopyFail: true}, 15)
}

// TestChaosFrontCopyFailThenCrash: the nasty compound — a copy dies,
// degraded writes land on the survivor only, then power fails. The
// persisted failed-copy mask must stop recovery from resilvering the
// stale copy over the survivor.
func TestChaosFrontCopyFailThenCrash(t *testing.T) {
	runEpisodes(t, ChaosConfig{FrontCopyFail: true, PowerCut: true}, 25)
}

// TestChaosMultiPair spreads extents over two mirror pairs to cover
// cross-pair placement under the same schedules.
func TestChaosMultiPair(t *testing.T) {
	runEpisodes(t, ChaosConfig{FrontPairs: 2, PowerCut: true}, 15)
}

// TestConcurrentWritersDuringMigration is the -race stress test:
// parallel writers on disjoint regions race the migrator (tiny
// pressure valve, aggressive idle timer, constant promote/demote
// churn), and every byte must read back exactly.
func TestConcurrentWritersDuringMigration(t *testing.T) {
	const (
		writers   = 4
		rounds    = 40
		extentSz  = int64(4 << 10)
		slotsPair = int64(4)
	)
	backNV := &core.MemNVRAM{}
	var backDevs []core.BlockDevice
	for i := 0; i < 4; i++ {
		backDevs = append(backDevs, core.NewMemDevice(64<<10))
	}
	back, err := core.Open(backDevs, backNV, core.Options{StripeUnit: 512, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	frontSize := slotsPair * (extentSz + tagSize)
	front := []core.BlockDevice{core.NewMemDevice(frontSize), core.NewMemDevice(frontSize)}
	st, err := Open(back, front, &core.MemNVRAM{}, Options{
		ExtentSize:    extentSz,
		MaxDirtyBytes: extentSz, // migrator under constant pressure
		Idle:          idle.NewTimer(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	region := st.Capacity() / writers
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			lo, hi := int64(w)*region, int64(w+1)*region
			want := make([]byte, hi-lo)
			for r := 0; r < rounds; r++ {
				length := 1 + rng.Int63n(2*extentSz)
				if length > hi-lo {
					length = hi - lo
				}
				off := lo + rng.Int63n(hi-lo-length+1)
				p := make([]byte, length)
				rng.Read(p)
				if _, err := st.WriteContext(context.Background(), p, off); err != nil {
					errs <- fmt.Errorf("writer %d: write [%d,%d): %w", w, off, off+length, err)
					return
				}
				copy(want[off-lo:], p)
				// Read something back mid-churn, possibly mid-migration.
				roff := lo + rng.Int63n(hi-lo-length+1)
				q := make([]byte, length)
				if _, err := st.ReadContext(context.Background(), q, roff); err != nil {
					errs <- fmt.Errorf("writer %d: read [%d,%d): %w", w, roff, roff+length, err)
					return
				}
			}
			// Final read-back of the whole region.
			got := make([]byte, hi-lo)
			if _, err := st.ReadAt(got, lo); err != nil {
				errs <- fmt.Errorf("writer %d: final read: %w", w, err)
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Errorf("writer %d: byte %d diverged: got %02x want %02x", w, lo+int64(i), got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	ts := st.TierStats()
	if ts.Promotes == 0 || ts.Demotes == 0 {
		t.Fatalf("stress test was vacuous: %d promotes, %d demotes", ts.Promotes, ts.Demotes)
	}
}
