package array

import (
	"testing"
	"time"

	"afraid/internal/sim"
	"afraid/internal/trace"
)

// subUnitWriteTrace issues small writes (sub-stripe-unit) so the
// marking-granularity extension has something to exploit.
func subUnitWriteTrace(n int, size int64, gap, tail time.Duration, capacity int64) *trace.Trace {
	tr := &trace.Trace{Name: "sub-unit-writes"}
	rng := sim.NewRNG(4242)
	for i := 0; i < n; i++ {
		off := rng.Int63n(capacity/8192-1) * 8192 // unit-aligned starts
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(i) * gap,
			Write:  true,
			Offset: off,
			Length: size,
		})
	}
	if tail > 0 {
		tr.Records = append(tr.Records, trace.Record{
			Time: time.Duration(n)*gap + tail, Offset: 0, Length: 8192,
		})
	}
	return tr
}

func TestMarkGranularityReducesExposedBytes(t *testing.T) {
	// 1 KB writes on 8 KB units: with M=8 only the touched slice is
	// unredundant, so the parity lag should shrink by close to 8x.
	base := DefaultConfig(AFRAID)
	tr := subUnitWriteTrace(200, 1<<10, 25*time.Millisecond, 3*time.Second, base.Geometry.Capacity())
	m1 := mustRun(t, base, tr)

	fine := DefaultConfig(AFRAID)
	fine.Policy.MarkGranularity = 8
	m8 := mustRun(t, fine, tr)

	if m8.DirtyAtEnd != 0 || m1.DirtyAtEnd != 0 {
		t.Fatalf("dirty at end: m1=%d m8=%d", m1.DirtyAtEnd, m8.DirtyAtEnd)
	}
	if m8.MaxParityLag*4 > m1.MaxParityLag {
		t.Fatalf("M=8 peak lag %.0f not well below M=1 peak lag %.0f",
			m8.MaxParityLag, m1.MaxParityLag)
	}
	if m8.MeanParityLag >= m1.MeanParityLag {
		t.Fatalf("M=8 mean lag %.0f not below M=1 %.0f", m8.MeanParityLag, m1.MeanParityLag)
	}
}

func TestMarkGranularityConservation(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.MarkGranularity = 4
	tr := subUnitWriteTrace(300, 2<<10, 10*time.Millisecond, time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.Completed != uint64(len(tr.Records)) {
		t.Fatalf("completed %d/%d", m.Completed, len(tr.Records))
	}
	if m.RebuiltStripes == 0 {
		t.Fatal("no slices rebuilt")
	}
}

func TestMarkGranularityValidation(t *testing.T) {
	cfg := DefaultConfig(RAID5)
	cfg.Policy.MarkGranularity = 4
	if _, err := New(sim.NewEngine(), cfg); err == nil {
		t.Fatal("granularity on RAID5 accepted")
	}
	cfg2 := DefaultConfig(AFRAID)
	cfg2.Policy.MarkGranularity = 3 // does not divide 8KB
	if _, err := New(sim.NewEngine(), cfg2); err == nil {
		t.Fatal("non-dividing granularity accepted")
	}
}

func TestConservativeStartSwitchesOnIdleWorkload(t *testing.T) {
	// A write burst, then plenty of idle: the array must begin in
	// RAID 5 mode and switch to AFRAID once it has observed the idle
	// headroom.
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.ConservativeStart = true
	tr := &trace.Trace{}
	rng := sim.NewRNG(7)
	// Two seconds of bursty-but-mostly-idle traffic, then a probe burst.
	for i := 0; i < 40; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(i) * 100 * time.Millisecond,
			Write:  true,
			Offset: rng.Int63n(cfg.Geometry.Capacity()/8192-1) * 8192,
			Length: 8192,
		})
	}
	m := mustRun(t, cfg, tr)
	if m.RevertedTime == 0 {
		t.Fatal("conservative start never spent time in RAID5 mode")
	}
	if m.RevertedTime >= m.EndTime {
		t.Fatal("conservative start never switched to AFRAID")
	}
	// Once switched, writes mark stripes: some rebuild activity exists.
	if m.RebuiltStripes == 0 {
		t.Fatal("no AFRAID behaviour after the switch")
	}
}

func TestConservativeStartStaysRAID5UnderSaturation(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.ConservativeStart = true
	cfg.Policy.ConservativeIdleFrac = 0.5
	// Back-to-back writes, never idle.
	tr := smallWriteTrace(400, 5*time.Millisecond, 0, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.RebuiltStripes != 0 && m.FracUnprotected > 0.01 {
		t.Fatalf("saturated conservative array behaved like AFRAID (frac=%g)", m.FracUnprotected)
	}
}

func TestPredictiveIdleDetectorRuns(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.PredictiveIdle = true
	tr := smallWriteTrace(200, 12*time.Millisecond, 2*time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.DirtyAtEnd != 0 {
		t.Fatalf("predictive detector left %d dirty stripes", m.DirtyAtEnd)
	}
	if m.Completed != uint64(201) {
		t.Fatalf("completed %d", m.Completed)
	}
}

func TestAdaptiveAndPredictiveExclusive(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.AdaptiveIdle = true
	cfg.Policy.PredictiveIdle = true
	if _, err := New(sim.NewEngine(), cfg); err == nil {
		t.Fatal("mutually exclusive detectors accepted")
	}
}

func TestImmediateReportingSpeedsUpWrites(t *testing.T) {
	// §4.1: the traced systems disabled immediate reporting; enabling
	// it lets writes complete at buffer speed. It must speed up both
	// RAID 5 and AFRAID while AFRAID stays ahead (the RMW pre-reads
	// are still mechanical).
	tr := smallWriteTrace(300, 25*time.Millisecond, 0, DefaultConfig(RAID5).Geometry.Capacity())

	run := func(mode Mode, ir bool) Metrics {
		cfg := DefaultConfig(mode)
		cfg.Disk.ImmediateReport = ir
		return mustRun(t, cfg, tr)
	}
	r5 := run(RAID5, false)
	r5ir := run(RAID5, true)
	af := run(AFRAID, false)
	afir := run(AFRAID, true)

	if r5ir.MeanIOTime >= r5.MeanIOTime {
		t.Errorf("immediate reporting did not speed up RAID5: %v vs %v", r5ir.MeanIOTime, r5.MeanIOTime)
	}
	if afir.MeanIOTime >= af.MeanIOTime {
		t.Errorf("immediate reporting did not speed up AFRAID: %v vs %v", afir.MeanIOTime, af.MeanIOTime)
	}
	if afir.MeanIOTime >= r5ir.MeanIOTime {
		t.Errorf("AFRAID %v not ahead of RAID5 %v under immediate reporting", afir.MeanIOTime, r5ir.MeanIOTime)
	}
}
