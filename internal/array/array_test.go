package array

import (
	"testing"
	"time"

	"afraid/internal/sim"
	"afraid/internal/trace"
)

// smallWriteTrace builds n random-ish 8KB aligned writes with the given
// inter-arrival gap, followed by a sentinel read tail seconds later so
// the measurement window includes an idle period (the paper's day-long
// traces are idle-dominated; without a tail, a trace that ends at its
// last write makes the unprotected fraction read as ~1 by construction).
func smallWriteTrace(n int, gap, tail time.Duration, capacity int64) *trace.Trace {
	tr := &trace.Trace{Name: "synthetic-writes"}
	rng := sim.NewRNG(1234)
	for i := 0; i < n; i++ {
		off := rng.Int63n(capacity/8192-1) * 8192
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(i) * gap,
			Write:  true,
			Offset: off,
			Length: 8192,
		})
	}
	if tail > 0 {
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(n)*gap + tail,
			Offset: 0,
			Length: 8192,
		})
	}
	return tr
}

func mustRun(t *testing.T, cfg Config, tr *trace.Trace) Metrics {
	t.Helper()
	m, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Submitted != m.Completed {
		t.Fatalf("conservation violated: submitted %d completed %d", m.Submitted, m.Completed)
	}
	return m
}

func TestRequestConservationAllModes(t *testing.T) {
	// RAID 5 has the smallest client capacity; a trace within it is
	// valid for every mode.
	tr := smallWriteTrace(200, 25*time.Millisecond, 0, DefaultConfig(RAID5).Geometry.Capacity())
	for _, mode := range []Mode{RAID0, RAID5, AFRAID} {
		m := mustRun(t, DefaultConfig(mode), tr)
		if m.Completed != 200 {
			t.Fatalf("%v: completed %d, want 200", mode, m.Completed)
		}
	}
}

func TestAFRAIDWritesFasterThanRAID5(t *testing.T) {
	// Closely spaced small random writes: the RAID 5 small-update
	// penalty (4 I/Os in the critical path) must show up clearly
	// against AFRAID's single data write.
	tr := smallWriteTrace(500, 15*time.Millisecond, 0, DefaultConfig(RAID5).Geometry.Capacity())
	r5 := mustRun(t, DefaultConfig(RAID5), tr)
	af := mustRun(t, DefaultConfig(AFRAID), tr)
	if af.MeanIOTime*2 > r5.MeanIOTime {
		t.Fatalf("AFRAID %v not clearly faster than RAID5 %v", af.MeanIOTime, r5.MeanIOTime)
	}
}

func TestAFRAIDCloseToRAID0(t *testing.T) {
	tr := smallWriteTrace(500, 15*time.Millisecond, 0, DefaultConfig(RAID5).Geometry.Capacity())
	r0 := mustRun(t, DefaultConfig(RAID0), tr)
	af := mustRun(t, DefaultConfig(AFRAID), tr)
	// AFRAID pays only background rebuild interference; it must be
	// within ~40% of RAID 0 on a workload with inter-request gaps.
	if float64(af.MeanIOTime) > 1.4*float64(r0.MeanIOTime) {
		t.Fatalf("AFRAID %v too far from RAID0 %v", af.MeanIOTime, r0.MeanIOTime)
	}
	if af.MeanIOTime < r0.MeanIOTime/2 {
		t.Fatalf("AFRAID %v implausibly faster than RAID0 %v", af.MeanIOTime, r0.MeanIOTime)
	}
}

func TestRAID5NeverUnprotected(t *testing.T) {
	tr := smallWriteTrace(100, 30*time.Millisecond, 0, DefaultConfig(RAID5).Geometry.Capacity())
	m := mustRun(t, DefaultConfig(RAID5), tr)
	if m.FracUnprotected != 0 || m.MeanParityLag != 0 {
		t.Fatalf("RAID5 unprotected: frac=%g lag=%g", m.FracUnprotected, m.MeanParityLag)
	}
	if m.RebuiltStripes != 0 {
		t.Fatalf("RAID5 rebuilt %d stripes", m.RebuiltStripes)
	}
}

func TestAFRAIDRebuildsInIdlePeriods(t *testing.T) {
	// A burst of writes followed by silence: the idle task must rebuild
	// every stripe, leaving nothing dirty.
	cfg := DefaultConfig(AFRAID)
	tr := smallWriteTrace(50, 5*time.Millisecond, 5*time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.DirtyAtEnd != 0 {
		t.Fatalf("%d stripes still dirty after idle drain", m.DirtyAtEnd)
	}
	if m.RebuiltStripes == 0 {
		t.Fatal("no stripes rebuilt")
	}
	if m.FracUnprotected <= 0 || m.FracUnprotected >= 1 {
		t.Fatalf("frac unprotected = %g, want in (0,1)", m.FracUnprotected)
	}
	if m.MeanParityLag <= 0 {
		t.Fatal("mean parity lag should be positive for AFRAID under writes")
	}
}

func TestAFRAIDUnprotectedWindowShrinksWithIdleDelay(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	tr := smallWriteTrace(100, 20*time.Millisecond, 10*time.Second, cfg.Geometry.Capacity())

	fast := cfg
	fast.Policy.IdleDelay = 20 * time.Millisecond
	slow := cfg
	slow.Policy.IdleDelay = 2 * time.Second

	mf := mustRun(t, fast, tr)
	ms := mustRun(t, slow, tr)
	if mf.FracUnprotected >= ms.FracUnprotected {
		t.Fatalf("shorter idle delay should reduce exposure: fast=%g slow=%g",
			mf.FracUnprotected, ms.FracUnprotected)
	}
}

func TestDirtyThresholdBoundsExposure(t *testing.T) {
	// Saturating writes with no idle time: without the threshold the
	// dirty count grows without bound; with it, forced rebuilds keep
	// the count near the threshold.
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.DirtyThreshold = 20
	tr := smallWriteTrace(300, 50*time.Millisecond, 2*time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.ForcedStripes == 0 {
		t.Fatal("threshold policy never forced a rebuild")
	}
	// Peak lag bounded: threshold+inflight stripes' worth of data.
	limit := float64((int64(cfg.Policy.DirtyThreshold) + 15) * cfg.Geometry.StripeDataBytes())
	if m.MaxParityLag > limit {
		t.Fatalf("max parity lag %g exceeds threshold bound %g", m.MaxParityLag, limit)
	}

	unbounded := DefaultConfig(AFRAID)
	mu := mustRun(t, unbounded, tr)
	if mu.MaxParityLag <= m.MaxParityLag {
		t.Fatalf("unbounded AFRAID peak lag %g not larger than thresholded %g",
			mu.MaxParityLag, m.MaxParityLag)
	}
}

func TestMTTDLTargetPolicyMeetsGoal(t *testing.T) {
	// The paper: "the disk-related MTTDL was never more than 5% below
	// its target, and usually far exceeded it."
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.TargetMTTDL = 1.5e6
	cfg.Policy.DirtyThreshold = 20
	tr := smallWriteTrace(600, 8*time.Millisecond, 30*time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	achieved := cfg.Avail.AFRAIDDiskMTTDL(m.FracUnprotected)
	if achieved < 0.95*cfg.Policy.TargetMTTDL {
		t.Fatalf("achieved disk MTTDL %.3g more than 5%% below target %.3g (frac=%g)",
			achieved, cfg.Policy.TargetMTTDL, m.FracUnprotected)
	}
}

func TestMTTDLPolicyTradesPerformance(t *testing.T) {
	// Tighter targets must not be faster than pure AFRAID.
	tr := smallWriteTrace(400, 10*time.Millisecond, 10*time.Second, DefaultConfig(AFRAID).Geometry.Capacity())
	pure := mustRun(t, DefaultConfig(AFRAID), tr)

	strict := DefaultConfig(AFRAID)
	strict.Policy.TargetMTTDL = 3.0e6 // near the RAID 5 limit: mostly reverted
	strict.Policy.DirtyThreshold = 20
	ms := mustRun(t, strict, tr)

	if ms.MeanIOTime < pure.MeanIOTime {
		t.Fatalf("strict target %v faster than pure AFRAID %v", ms.MeanIOTime, pure.MeanIOTime)
	}
	if ms.FracUnprotected > pure.FracUnprotected {
		t.Fatalf("strict target more exposed (%g) than pure (%g)",
			ms.FracUnprotected, pure.FracUnprotected)
	}
	if ms.Reverts == 0 {
		t.Fatal("strict target never reverted to RAID 5")
	}
}

func TestWritesBlockedDuringRebuildComplete(t *testing.T) {
	// Hammer a single stripe so rebuilds and writes collide; every
	// request must still complete (no deadlock, no loss).
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.IdleDelay = time.Millisecond // rebuild aggressively
	tr := &trace.Trace{Name: "one-stripe"}
	for i := 0; i < 200; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(i) * 3 * time.Millisecond,
			Write:  true,
			Offset: 0,
			Length: 8192,
		})
	}
	m := mustRun(t, cfg, tr)
	if m.Completed != 200 {
		t.Fatalf("completed %d/200", m.Completed)
	}
	if m.DirtyAtEnd != 0 {
		t.Fatalf("%d dirty at end", m.DirtyAtEnd)
	}
}

func TestReadsServeFromDiskAndCache(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	tr := &trace.Trace{Name: "read-repeat"}
	// Two reads of the same block: second should be a cache hit and
	// much faster on average.
	tr.Records = []trace.Record{
		{Time: 0, Offset: 1 << 20, Length: 8192},
		{Time: 100 * time.Millisecond, Offset: 1 << 20, Length: 8192},
	}
	m := mustRun(t, cfg, tr)
	if m.ReadCacheHits == 0 {
		t.Fatal("second read did not hit the cache")
	}
	if m.Reads != 2 || m.Writes != 0 {
		t.Fatalf("reads=%d writes=%d", m.Reads, m.Writes)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	p, _ := trace.Lookup("cello-usr", 20*time.Second)
	tr, err := trace.Generate(p, cfg.Geometry.Capacity(), sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	m1 := mustRun(t, cfg, tr)
	m2 := mustRun(t, cfg, tr)
	if m1.MeanIOTime != m2.MeanIOTime || m1.FracUnprotected != m2.FracUnprotected ||
		m1.RebuiltStripes != m2.RebuiltStripes {
		t.Fatalf("non-deterministic: %+v vs %+v", m1, m2)
	}
}

func TestFullStripeWriteAvoidsPreReads(t *testing.T) {
	// A full-stripe RAID 5 write needs no pre-reads: its latency must
	// be well under a small write's read-modify-write latency plus two
	// rotations.
	cfg := DefaultConfig(RAID5)
	full := &trace.Trace{Records: []trace.Record{
		{Time: 0, Write: true, Offset: 0, Length: cfg.Geometry.StripeDataBytes()},
	}}
	mf := mustRun(t, cfg, full)

	small := &trace.Trace{Records: []trace.Record{
		{Time: 0, Write: true, Offset: 0, Length: 8192},
	}}
	ms := mustRun(t, cfg, small)

	// The small RMW write serializes read->write on two disks; the
	// full-stripe write is one positioning per disk. The full write
	// moves 4x the data yet should not take 2x the time.
	if mf.MeanIOTime > 2*ms.MeanIOTime {
		t.Fatalf("full-stripe %v vs small RMW %v: reconstruct path not engaged",
			mf.MeanIOTime, ms.MeanIOTime)
	}
}

func TestRAID0ModeRequiresRAID0Layout(t *testing.T) {
	cfg := DefaultConfig(RAID0)
	cfg.Geometry.Level = 1 // RAID5 layout
	if _, err := New(sim.NewEngine(), cfg); err == nil {
		t.Fatal("mismatched mode/layout accepted")
	}
	cfg2 := DefaultConfig(AFRAID)
	cfg2.Geometry.Level = 0 // RAID0 layout
	if _, err := New(sim.NewEngine(), cfg2); err == nil {
		t.Fatal("AFRAID with RAID0 layout accepted")
	}
}

func TestAdaptiveIdleDetectorRuns(t *testing.T) {
	cfg := DefaultConfig(AFRAID)
	cfg.Policy.AdaptiveIdle = true
	tr := smallWriteTrace(200, 12*time.Millisecond, time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.DirtyAtEnd != 0 {
		t.Fatalf("adaptive detector left %d dirty stripes", m.DirtyAtEnd)
	}
}

func TestCoalesceAdjacentReducesEpisodes(t *testing.T) {
	// Sequential writes dirty adjacent stripes; with coalescing the
	// rebuilder should finish runs in fewer episodes.
	base := DefaultConfig(AFRAID)
	tr := &trace.Trace{Name: "seq"}
	// Write across 40 consecutive stripes, then go idle; interleave a
	// trickle of reads so episodes get interrupted.
	stripeBytes := base.Geometry.StripeDataBytes()
	for i := 0; i < 40; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(i) * 8 * time.Millisecond,
			Write:  true,
			Offset: int64(i) * stripeBytes,
			Length: 8192,
		})
	}
	for i := 0; i < 20; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time:   400*time.Millisecond + time.Duration(i)*150*time.Millisecond,
			Offset: 4 << 20,
			Length: 8192,
		})
	}
	co := base
	co.Policy.CoalesceAdjacent = true
	mBase := mustRun(t, base, tr)
	mCo := mustRun(t, co, tr)
	if mBase.DirtyAtEnd != 0 || mCo.DirtyAtEnd != 0 {
		t.Fatalf("dirty at end: base=%d coalesce=%d", mBase.DirtyAtEnd, mCo.DirtyAtEnd)
	}
	if mCo.EpisodesCutShort > mBase.EpisodesCutShort {
		t.Fatalf("coalescing increased interruptions: %d > %d",
			mCo.EpisodesCutShort, mBase.EpisodesCutShort)
	}
}
