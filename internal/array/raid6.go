package array

import (
	"afraid/internal/layout"
)

// §5 extension: "A RAID 6 array keeps two parity blocks for each
// stripe, and thus pays an even higher penalty for doing small updates
// than does RAID 5. The AFRAID technique could be combined with the
// RAID 6 parity scheme to delay either or both parity-block updates: if
// only one was deferred, partial redundancy protection would be
// available immediately, and full redundancy once the parity-rebuild
// happened for the other parity block."
//
// Modes implemented here:
//
//   - RAID6: synchronous P and Q — a small write costs six I/Os
//     (read old data, old P, old Q; write data, P, Q);
//   - AFRAID6 with QDefer=DeferQ: data and P written synchronously
//     (RAID 5-grade protection immediately), Q rebuilt in idle periods;
//   - AFRAID6 with QDefer=DeferBoth: data only, both parities deferred
//     (the full AFRAID fast path, full double-failure exposure while
//     dirty).

// QDeferPolicy selects which RAID 6 parity updates AFRAID6 defers.
type QDeferPolicy int

const (
	// DeferQ defers only the Q update; the stripe keeps single-failure
	// protection at all times.
	DeferQ QDeferPolicy = iota
	// DeferBoth defers P and Q; writes cost one I/O as in plain AFRAID.
	DeferBoth
)

// String returns the policy name.
func (q QDeferPolicy) String() string {
	if q == DeferBoth {
		return "defer-both"
	}
	return "defer-q"
}

// writeSpanRAID6 performs the synchronous double-parity small-update
// protocol for one stripe span.
func (a *Array) writeSpanRAID6(r *request, sp layout.StripeSpan) {
	a.writeSpanParity6(r, sp, true, true)
}

// writeSpanAFRAID6 dispatches per the Q-deferral policy, marking the
// stripe so the rebuilder knows which parities are stale.
func (a *Array) writeSpanAFRAID6(r *request, sp layout.StripeSpan) {
	a.markDirty(sp.Stripe)
	switch a.cfg.QDefer {
	case DeferBoth:
		a.writeSpanDataOnly(r, sp)
	default: // DeferQ: synchronous P, deferred Q
		a.writeSpanParity6(r, sp, true, false)
	}
	a.checkDirtyThreshold()
}

// writeSpanParity6 is the generalized parity-maintaining write: data
// writes always happen; P and/or Q are read-modify-written (or computed
// without pre-reads for full-stripe and reconstruct writes) according
// to withP/withQ. The request completes when every included parity
// write has landed.
func (a *Array) writeSpanParity6(r *request, sp layout.StripeSpan, withP, withQ bool) {
	a.noteWriteActive(sp.Stripe)
	stripe := sp.Stripe
	pDisk := a.geo.ParityDisk(stripe)
	qDisk := a.geo.QDisk(stripe)
	pOff := a.geo.DiskOffset(stripe)
	unit := a.geo.StripeUnit

	covered := make(map[int]bool, len(sp.Extents))
	partial := false
	for _, e := range sp.Extents {
		covered[e.DataIdx] = true
		if e.Len != unit {
			partial = true
		}
	}
	full := len(covered) == a.geo.DataDisks() && !partial
	reconstruct := !full && !partial && len(covered) > a.geo.DataDisks()/2

	// Reserve the parity writes up front (see writeSpanRAID5).
	nParity := 0
	if withP {
		nParity++
	}
	if withQ && qDisk >= 0 {
		nParity++
	}
	r.remaining += nParity

	writeParities := func() {
		if withP {
			a.issueParityWrite(r, stripe, pDisk, pOff, unit)
		}
		if withQ && qDisk >= 0 {
			a.issueParityWrite(r, stripe, qDisk, pOff, unit)
		}
	}

	deps := 0
	issuePre := func(d int, op diskOp) {
		deps++
		op.done = func() {
			deps--
			if deps == 0 {
				writeParities()
			}
		}
		a.issue(d, op)
	}

	switch {
	case full:
		// No pre-reads: both parities computed from the new data.
	case reconstruct:
		for i := 0; i < a.geo.DataDisks(); i++ {
			if covered[i] {
				continue
			}
			issuePre(a.geo.DataDisk(stripe, i), diskOp{off: pOff, n: unit})
		}
	default:
		// Read-modify-write: old data plus each old parity included.
		for _, e := range sp.Extents {
			if a.cache.OldDataCached(e.ArrOff, e.Len) {
				continue
			}
			issuePre(e.Disk, diskOp{off: e.DiskOff, n: e.Len})
		}
		if withP {
			issuePre(pDisk, diskOp{off: pOff, n: unit})
		}
		if withQ && qDisk >= 0 {
			issuePre(qDisk, diskOp{off: pOff, n: unit})
		}
	}

	pendingData := len(sp.Extents)
	for _, e := range sp.Extents {
		e := e
		r.remaining++
		a.issue(e.Disk, diskOp{write: true, off: e.DiskOff, n: e.Len, done: func() {
			pendingData--
			if pendingData == 0 {
				a.noteWriteDone(sp.Stripe)
			}
			a.finishOne(r)
		}})
	}

	if deps == 0 {
		writeParities()
	}
}

// rebuildStripe6 rebuilds the deferred parity block(s) of a dirty
// stripe in an AFRAID6 array: read all data units, then write Q (and P
// when both were deferred).
func (a *Array) rebuildStripe6(stripe int64) {
	unit := a.geo.StripeUnit
	off := a.geo.DiskOffset(stripe)
	deps := a.geo.DataDisks()
	for i := 0; i < a.geo.DataDisks(); i++ {
		d := a.geo.DataDisk(stripe, i)
		a.issue(d, diskOp{off: off, n: unit, done: func() {
			deps--
			if deps == 0 {
				a.writeRebuiltParity6(stripe, off, unit)
			}
		}})
	}
}

// writeRebuiltParity6 writes the recomputed deferred parities and
// closes out the stripe.
func (a *Array) writeRebuiltParity6(stripe int64, off, unit int64) {
	writes := 1 // Q is always stale
	if a.cfg.QDefer == DeferBoth {
		writes = 2
	}
	done := func() {
		writes--
		if writes > 0 {
			return
		}
		a.markClean(stripe)
		a.rebuilt++
		if a.forced {
			a.forcedBuilt++
		}
		a.unlockStripe(stripe)
		a.updateMTTDLPolicy()
		a.episodeDone(stripe)
	}
	a.issue(a.geo.QDisk(stripe), diskOp{write: true, off: off, n: unit, done: done})
	if a.cfg.QDefer == DeferBoth {
		a.issue(a.geo.ParityDisk(stripe), diskOp{write: true, off: off, n: unit, done: done})
	}
}
