package array

import "time"

// maybeArmIdleTimer schedules the idle-detection check after the array
// becomes quiescent with unredundant stripes outstanding.
// deferredMode reports whether the array defers parity (AFRAID and
// AFRAID6 both rely on the background rebuilder).
func (a *Array) deferredMode() bool {
	return a.cfg.Mode == AFRAID || a.cfg.Mode == AFRAID6
}

func (a *Array) maybeArmIdleTimer() {
	if !a.deferredMode() || a.rebuilding || a.marks.Count() == 0 {
		return
	}
	if a.deg.failed >= 0 {
		return // parity cannot be rebuilt around a missing member
	}
	at, ok := a.tracker.EligibleAt(a.detect)
	if !ok {
		return
	}
	if a.idleTimer != nil {
		a.idleTimer.Stop()
	}
	now := a.eng.Now()
	if at < now {
		at = now
	}
	// Stop cannot cancel an event the engine has already popped for
	// execution (the timer-cancel contract), so a stale callback may
	// still run after this re-arm. Hand the callback the current
	// generation; idleFired ignores fires from superseded arms.
	a.idleGen++
	gen := a.idleGen
	a.idleTimer = a.eng.At(at, func() { a.idleFired(gen) })
}

// idleFired begins a background parity-rebuild episode if the array is
// still quiescent and the fire is from the most recent arm.
func (a *Array) idleFired(gen uint64) {
	if gen != a.idleGen {
		return // stale fire from a superseded arm
	}
	a.idleTimer = nil
	if a.rebuilding || a.marks.Count() == 0 {
		return
	}
	if _, ok := a.tracker.Idle(a.eng.Now()); !ok {
		return // a request slipped in; its completion will re-arm
	}
	a.beginEpisode(false)
}

// checkDirtyThreshold implements the bound on unprotected stripes: when
// more than DirtyThreshold stripes are unredundant, start rebuilding at
// once, even under load ("automatically starting a parity update when
// more than 20 stripes are unprotected").
func (a *Array) checkDirtyThreshold() {
	th := a.cfg.Policy.DirtyThreshold
	if th <= 0 || a.rebuilding || a.deg.failed >= 0 {
		return
	}
	// The threshold is in stripes; scale to marking slots.
	if a.marks.Count() > int64(th*a.gran) {
		a.beginEpisode(true)
	}
}

// beginEpisode starts a rebuild episode. Forced episodes (threshold or
// MTTDL_x revert) run regardless of foreground load; idle episodes stop
// at the next foreground arrival, preempting between stripes.
func (a *Array) beginEpisode(forced bool) {
	if a.rebuilding {
		return
	}
	a.rebuilding = true
	a.forced = forced
	a.fgArrived = false
	a.episodes++
	a.rebuildNext()
}

// endEpisode closes the current episode and re-arms idle detection.
func (a *Array) endEpisode(interruptedByFg bool) {
	a.rebuilding = false
	a.forced = false
	if interruptedByFg {
		a.interrupted++
	}
	a.detect.Observe(interruptedByFg)
	a.maybeArmIdleTimer()
}

// episodeDone decides whether to continue with another stripe.
func (a *Array) episodeDone(lastStripe int64) {
	if a.marks.Count() == 0 {
		a.endEpisode(false)
		return
	}
	if a.forced {
		// Forced episodes run until the triggering condition clears.
		th := a.cfg.Policy.DirtyThreshold
		switch {
		case a.reverted:
			// Revert flushes everything.
		case th > 0 && a.marks.Count() <= int64(th*a.gran):
			a.endEpisode(false)
			return
		}
		a.rebuildNext()
		return
	}
	if a.fgArrived {
		// Foreground work arrived: preempt between stripes unless the
		// next dirty stripe is adjacent and coalescing is enabled.
		if a.cfg.Policy.CoalesceAdjacent {
			if next, ok := a.marks.Next(a.cursor); ok && next == lastStripe+1 {
				a.fgArrived = false
				a.rebuildNext()
				return
			}
		}
		a.endEpisode(true)
		return
	}
	a.rebuildNext()
}

// rebuildNext picks the next dirty marking slot whose stripe has no
// in-flight foreground write and rebuilds its parity slice: read the
// slice from every data unit, xor (free in simulation), write the
// parity slice. With the default granularity the slice is the whole
// stripe unit.
func (a *Array) rebuildNext() {
	slot, ok := a.pickSlot()
	if !ok {
		// Every dirty stripe currently has foreground writes in
		// flight; those writes will re-mark or complete, and idle
		// detection will bring us back.
		a.endEpisode(a.fgArrived)
		return
	}
	stripe := a.stripeOfSlot(slot)

	if a.cfg.Mode == AFRAID6 {
		a.cursor = slot + 1
		a.lockStripe(stripe)
		a.rebuildStripe6(stripe)
		return
	}

	// Coalesce a run of adjacent dirty slices of the same stripe into
	// one transfer: with sub-stripe marking, paying a positioning per
	// 1/M slice would defeat the point.
	runLen := int64(1)
	for slot+runLen < a.marks.Stripes() &&
		a.stripeOfSlot(slot+runLen) == stripe &&
		a.marks.IsMarked(slot+runLen) {
		runLen++
	}
	a.cursor = slot + runLen
	a.lockStripe(stripe)

	slice := a.geo.StripeUnit / int64(a.gran)
	n := slice * runLen
	off := a.geo.DiskOffset(stripe) + (slot%int64(a.gran))*slice
	deps := a.geo.DataDisks()
	for i := 0; i < a.geo.DataDisks(); i++ {
		d := a.geo.DataDisk(stripe, i)
		a.issue(d, diskOp{off: off, n: n, done: func() {
			deps--
			if deps == 0 {
				a.writeRebuiltParity(slot, runLen, stripe, off, n)
			}
		}})
	}
}

// writeRebuiltParity writes the recomputed parity slice(s) and closes
// out the slot run.
func (a *Array) writeRebuiltParity(slot, runLen, stripe int64, off, n int64) {
	p := a.geo.ParityDisk(stripe)
	a.issue(p, diskOp{write: true, off: off, n: n, done: func() {
		for s := slot; s < slot+runLen; s++ {
			a.markClean(s)
		}
		a.rebuilt++
		if a.forced {
			a.forcedBuilt++
		}
		a.unlockStripe(stripe)
		a.updateMTTDLPolicy()
		a.episodeDone(slot + runLen - 1)
	}})
}

// pickSlot returns the next dirty marking slot whose stripe has no
// active foreground writes, scanning from the round-robin cursor.
func (a *Array) pickSlot() (int64, bool) {
	n := a.marks.Count()
	from := a.cursor
	for i := int64(0); i < n; i++ {
		s, ok := a.marks.Next(from)
		if !ok {
			return 0, false
		}
		if a.activeWrites[a.stripeOfSlot(s)] == 0 {
			return s, true
		}
		from = s + 1
		if from >= a.marks.Stripes() {
			from = 0
		}
	}
	return 0, false
}

// updateConservative implements the §5 conservative-start refinement:
// the array stays in RAID 5 mode until the observed idle fraction shows
// the workload leaves room for background rebuilds.
func (a *Array) updateConservative() {
	if !a.conserving {
		return
	}
	now := a.eng.Now()
	if now < time.Second {
		return // too little evidence either way
	}
	goal := a.cfg.Policy.ConservativeIdleFrac
	if goal <= 0 {
		goal = 0.25
	}
	if 1-a.busyTW.Average(now) >= goal {
		a.conserving = false
		a.reverted = false
		a.revertedTime += now - a.revertedAt
	}
}

// lockStripe blocks foreground access to a stripe during its rebuild.
func (a *Array) lockStripe(stripe int64) {
	if _, locked := a.rebuildLocked[stripe]; locked {
		panic("array: stripe locked twice")
	}
	a.rebuildLocked[stripe] = []func(){}
}

// unlockStripe releases the stripe and runs any blocked foreground work.
func (a *Array) unlockStripe(stripe int64) {
	waiters, locked := a.rebuildLocked[stripe]
	if !locked {
		panic("array: unlock of unlocked stripe")
	}
	delete(a.rebuildLocked, stripe)
	for _, w := range waiters {
		w()
	}
}

// The MTTDL_x policy reverts *before* the achieved MTTDL reaches the
// target (revertMargin) and resumes AFRAID behaviour only once it is
// comfortably clear again (resumeMargin). The margins absorb the
// exposure that keeps accruing between the decision to revert and the
// moment the forced rebuild drains the dirty stripes; without them the
// steady state oscillates right at the target and overshoots it. The
// paper reports the same discipline's outcome: "the disk-related MTTDL
// was never more than 5% below its target".
const (
	revertMargin = 1.35
	resumeMargin = 1.8
)

// updateMTTDLPolicy implements the MTTDL_x policy: compute the
// disk-related MTTDL achieved so far from the measured unprotected-time
// fraction, revert to RAID 5 when approaching the target (also flushing
// pending parity), and return to AFRAID behaviour once the goal is
// comfortably met again.
func (a *Array) updateMTTDLPolicy() {
	target := a.cfg.Policy.TargetMTTDL
	if a.cfg.Mode != AFRAID || target <= 0 || a.conserving {
		return
	}
	now := a.eng.Now()
	if now == 0 {
		return
	}
	frac := float64(a.lag.NonZeroTimeAt(now)) / float64(now)
	if frac > 1 {
		frac = 1
	}
	achieved := a.cfg.Avail.AFRAIDDiskMTTDL(frac)
	if !a.reverted {
		if achieved < target*revertMargin {
			a.reverted = true
			a.revertedAt = now
			a.reverts++
			// Start the parity update for any unprotected stripes now.
			if a.marks.Count() > 0 && !a.rebuilding {
				a.beginEpisode(true)
			}
		}
		return
	}
	// Re-enable AFRAID once the achieved MTTDL is comfortably clear of
	// the target and no stripes remain exposed.
	if achieved > target*resumeMargin && a.marks.Count() == 0 {
		a.revertedTime += now - a.revertedAt
		a.reverted = false
	}
}
