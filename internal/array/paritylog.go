package array

import (
	"sort"

	"afraid/internal/layout"
)

// Parity logging [Stodolsky93] is the related-work baseline of the
// paper's §2: instead of updating parity in place, a small write does a
// read-modify-write on the data block only and appends the xor of old
// and new data (the "parity update image") to a log, preserving full
// redundancy at all times. Logged images accumulate in an NVRAM buffer,
// are flushed to an on-disk log region in large sequential writes, and
// are later reintegrated into the parity in a batch.
//
// The paper's claims about this scheme, which the model reproduces:
//
//   - the write critical path still pays the old-data pre-read (a full
//     extra rotation AFRAID avoids);
//   - reintegration batches interfere with foreground I/O;
//   - when the log fills, foreground writes stall until reintegration
//     completes ("there is no parity log to fill up in AFRAID — all
//     that happens is that the data becomes less well protected").
//
// The log is distributed like parity: the image for a stripe is logged
// on that stripe's parity disk, in a region reserved past the striped
// space.

// plState is the per-disk parity-log state.
type plState struct {
	buffered int64 // bytes in the NVRAM staging buffer
	logged   int64 // bytes in the on-disk log region
	// pending maps stripe -> true for stripes with unintegrated images.
	pending map[int64]bool
	// reintegrating marks a reintegration pass in flight.
	reintegrating bool
	// stalled holds write work waiting for log space.
	stalled []func()
}

// plInit allocates parity-log state (called lazily from writeSpanPLog).
func (a *Array) plInit() {
	if a.plog != nil {
		return
	}
	a.plog = make([]*plState, a.geo.Disks)
	for i := range a.plog {
		a.plog[i] = &plState{pending: make(map[int64]bool)}
	}
}

// logRegionOffset returns the start of disk d's log region (just past
// the striped space; New validated the physical capacity).
func (a *Array) logRegionOffset() int64 { return a.geo.DiskSize }

// writeSpanPLog performs a parity-logging small write for one stripe
// span: RMW on the data blocks, then an NVRAM log append (free) with
// asynchronous batched flushing to the log region.
func (a *Array) writeSpanPLog(r *request, sp layout.StripeSpan) {
	a.plInit()
	pDisk := a.geo.ParityDisk(sp.Stripe)
	st := a.plog[pDisk]

	imageBytes := sp.Bytes()
	if st.logged+st.buffered+imageBytes > a.cfg.PLog.LogBytes {
		// Log full: this write stalls until reintegration frees space.
		a.stalls++
		r.remaining++
		st.stalled = append(st.stalled, func() {
			a.writeSpanPLog(r, sp)
			a.finishOne(r)
		})
		a.startReintegration(pDisk)
		return
	}

	a.noteWriteActive(sp.Stripe)
	// Data-block read-modify-write: the pre-read stays in the critical
	// path (FCFS per disk orders read before write); the request
	// completes when the data writes land.
	pending := len(sp.Extents)
	for _, e := range sp.Extents {
		e := e
		if !a.cache.OldDataCached(e.ArrOff, e.Len) {
			a.issue(e.Disk, diskOp{off: e.DiskOff, n: e.Len})
		}
		r.remaining++
		a.issue(e.Disk, diskOp{write: true, off: e.DiskOff, n: e.Len, done: func() {
			pending--
			if pending == 0 {
				a.noteWriteDone(sp.Stripe)
			}
			a.finishOne(r)
		}})
	}

	// Log append: NVRAM-speed, then batched sequential flush.
	st.buffered += imageBytes
	st.pending[sp.Stripe] = true
	if st.buffered >= a.cfg.PLog.BufferBytes {
		a.flushLogBuffer(pDisk)
	}
	if st.logged+st.buffered >= a.cfg.PLog.LogBytes*9/10 {
		a.startReintegration(pDisk)
	}
}

// flushLogBuffer writes the staged images sequentially to the log
// region (asynchronous; does not join any request's critical path).
func (a *Array) flushLogBuffer(d int) {
	st := a.plog[d]
	n := st.buffered
	if n == 0 {
		return
	}
	off := a.logRegionOffset() + st.logged
	st.buffered = 0
	st.logged += n
	a.logFlushes++
	a.issue(d, diskOp{write: true, off: off, n: n})
}

// startReintegration begins applying disk d's logged images to the
// parity in a batch: one sequential read of the log region, then a
// sorted sweep of parity read-modify-writes. Foreground I/O to disk d
// queues behind it — the interference the paper describes.
func (a *Array) startReintegration(d int) {
	st := a.plog[d]
	if st.reintegrating {
		return
	}
	// Make sure everything staged is on disk first (crash consistency
	// in the real scheme; here it just orders the work).
	a.flushLogBuffer(d)
	if st.logged == 0 {
		a.releaseStalled(d)
		return
	}
	st.reintegrating = true
	a.reintegrations++

	stripes := make([]int64, 0, len(st.pending))
	for s := range st.pending {
		stripes = append(stripes, s)
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })

	// Sequential log read.
	a.issue(d, diskOp{off: a.logRegionOffset(), n: st.logged, done: func() {
		a.reintegrateNext(d, stripes, 0)
	}})
}

// reintegrateNext applies the i-th logged stripe's parity update
// (read parity unit, write it back), then continues.
func (a *Array) reintegrateNext(d int, stripes []int64, i int) {
	st := a.plog[d]
	if i >= len(stripes) {
		// Pass complete: the log region is free again.
		st.logged = 0
		st.pending = make(map[int64]bool)
		st.reintegrating = false
		a.releaseStalled(d)
		return
	}
	stripe := stripes[i]
	off := a.geo.DiskOffset(stripe)
	unit := a.geo.StripeUnit
	a.issue(d, diskOp{off: off, n: unit, done: func() {
		a.issue(d, diskOp{write: true, off: off, n: unit, done: func() {
			a.reintegrateNext(d, stripes, i+1)
		}})
	}})
}

// releaseStalled restarts writes that were waiting for log space.
func (a *Array) releaseStalled(d int) {
	st := a.plog[d]
	waiters := st.stalled
	st.stalled = nil
	for _, w := range waiters {
		w()
	}
}
