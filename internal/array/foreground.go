package array

import (
	"fmt"
	"time"

	"afraid/internal/idle"
	"afraid/internal/iosched"
	"afraid/internal/layout"
	"afraid/internal/trace"
)

// request tracks one client I/O through the array. remaining counts
// outstanding units of work (disk ops plus deferred spans); the request
// completes when it reaches zero.
type request struct {
	rec       trace.Record
	submit    time.Duration
	remaining int
}

// Submit enters a client request into the host device driver at the
// current virtual time. Latency is measured from here, matching the
// paper ("start when a request is given to the device driver ...
// include any time spent queued in the device driver").
func (a *Array) Submit(rec trace.Record) {
	if rec.Length <= 0 || rec.Offset < 0 || rec.Offset+rec.Length > a.geo.Capacity() {
		panic(fmt.Sprintf("array: request [%d,%d) outside capacity %d", rec.Offset, rec.Offset+rec.Length, a.geo.Capacity()))
	}
	a.submitted++
	if a.deg.failed >= 0 {
		a.deg.degLatency++
	}
	r := &request{rec: rec, submit: a.eng.Now()}
	admitted, ok := a.limiter.Submit(iosched.Request{Pos: rec.Offset, Payload: r})
	if ok {
		a.start(admitted.Payload.(*request))
	}
}

// start begins an admitted request.
func (a *Array) start(r *request) {
	a.fgArrived = true
	if rec, ok := a.detect.(idle.IdleRecorder); ok && a.completed > 0 {
		// A busy edge closes an idle period; feed its length to
		// predictive detectors.
		if d, wasIdle := a.tracker.Idle(a.eng.Now()); wasIdle {
			rec.RecordIdlePeriod(d)
		}
	}
	a.tracker.Start(a.eng.Now())
	if a.tracker.Outstanding() == 1 {
		a.busyTW.Set(a.eng.Now(), 1)
	}
	if a.idleTimer != nil {
		a.idleTimer.Stop()
		a.idleTimer = nil
		a.idleGen++ // invalidate a callback Stop could no longer cancel
	}
	a.updateConservative()
	a.updateMTTDLPolicy()

	r.remaining = 1 // guard against synchronous completion while fanning out
	if r.rec.Write {
		a.startWrite(r)
	} else {
		a.startRead(r)
	}
	a.finishOne(r)
}

// finishOne retires one unit of work; at zero the request completes.
func (a *Array) finishOne(r *request) {
	r.remaining--
	if r.remaining > 0 {
		return
	}
	if r.remaining < 0 {
		panic("array: request completion underflow")
	}
	now := a.eng.Now()
	lat := now - r.submit
	a.ioTime.Add(lat)
	if r.rec.Write {
		a.writes++
		a.writeTime.Add(lat)
	} else {
		a.reads++
		a.readTime.Add(lat)
	}
	a.completed++
	a.tracker.End(now)
	if a.tracker.Outstanding() == 0 {
		a.busyTW.Set(now, 0)
	}
	a.maybeArmIdleTimer()
	if next, ok := a.limiter.Done(); ok {
		a.start(next.Payload.(*request))
	}
}

// startRead issues a client read: whole-range cache hits complete in
// controller time; otherwise every extent is read from disk.
func (a *Array) startRead(r *request) {
	if a.cache.ReadHit(r.rec.Offset, r.rec.Length) {
		r.remaining++
		a.eng.After(cacheHitTime, func() { a.finishOne(r) })
		return
	}
	spans := a.geo.Split(r.rec.Offset, r.rec.Length)
	for _, sp := range spans {
		sp := sp
		a.runLocked(r, sp.Stripe, func() {
			for _, e := range sp.Extents {
				e := e
				if a.degradedExtent(e) {
					a.readExtentDegraded(r, e)
					continue
				}
				r.remaining++
				a.issue(e.Disk, diskOp{off: e.DiskOff, n: e.Len, done: func() {
					a.cache.FillRead(e.ArrOff, e.Len)
					a.finishOne(r)
				}})
			}
		})
	}
}

// startWrite dispatches a client write according to the current mode.
func (a *Array) startWrite(r *request) {
	a.cache.Write(r.rec.Offset, r.rec.Length) // write-through staging
	spans := a.geo.Split(r.rec.Offset, r.rec.Length)
	for _, sp := range spans {
		sp := sp
		a.runLocked(r, sp.Stripe, func() { a.writeSpan(r, sp) })
	}
}

// runLocked runs fn now, or defers it until the stripe's parity rebuild
// finishes ("multiple writes to the same stripe were allowed to proceed
// in parallel, but would block if a parity-rebuild on that stripe was in
// progress" — reads to the stripe block likewise while its parity is
// being rewritten).
func (a *Array) runLocked(r *request, stripe int64, fn func()) {
	if waiters, locked := a.rebuildLocked[stripe]; locked {
		r.remaining++
		a.rebuildLocked[stripe] = append(waiters, func() {
			fn()
			a.finishOne(r)
		})
		return
	}
	fn()
}

// writeSpan performs the per-stripe write work for one span.
func (a *Array) writeSpan(r *request, sp layout.StripeSpan) {
	switch {
	case a.deg.failed >= 0 && a.cfg.Mode != RAID0:
		// Degraded operation: parity is maintained synchronously so
		// the lost unit stays encoded (RAID 6's Q is approximated by
		// its P here; the window is short).
		a.writeSpanDegradedSim(r, sp)
	case a.cfg.Mode == RAID0:
		a.writeSpanDataOnly(r, sp)
	case a.cfg.Mode == PARITYLOG:
		a.writeSpanPLog(r, sp)
	case a.cfg.Mode == RAID6:
		a.writeSpanRAID6(r, sp)
	case a.cfg.Mode == AFRAID6:
		a.writeSpanAFRAID6(r, sp)
	case a.cfg.Mode == AFRAID && !a.reverted:
		// The AFRAID fast path: mark the stripe unredundant in NVRAM
		// (effectively free) and write only the new data — one I/O in
		// the critical path instead of four.
		a.markSpanDirty(sp)
		a.writeSpanDataOnly(r, sp)
		a.checkDirtyThreshold()
	default:
		a.writeSpanRAID5(r, sp)
	}
}

// writeSpanDataOnly writes the new data blocks and nothing else.
func (a *Array) writeSpanDataOnly(r *request, sp layout.StripeSpan) {
	a.noteWriteActive(sp.Stripe)
	pending := len(sp.Extents)
	for _, e := range sp.Extents {
		e := e
		r.remaining++
		a.issue(e.Disk, diskOp{write: true, off: e.DiskOff, n: e.Len, done: func() {
			pending--
			if pending == 0 {
				a.noteWriteDone(sp.Stripe)
			}
			a.finishOne(r)
		}})
	}
}

// writeSpanRAID5 performs the traditional small-update protocol:
//
//   - full-stripe spans: compute parity from the new data, write all
//     data units plus parity (no pre-reads);
//   - spans covering more than half the stripe: reconstruct-write —
//     pre-read the uncovered units, then write data and parity;
//   - small spans: read-modify-write — pre-read old data (unless the
//     controller caches it) and old parity, then write data and parity.
//
// The request completes only when the parity write has finished: that
// serialization is exactly the small-update penalty AFRAID removes.
func (a *Array) writeSpanRAID5(r *request, sp layout.StripeSpan) {
	a.noteWriteActive(sp.Stripe)
	stripe := sp.Stripe
	pDisk := a.geo.ParityDisk(stripe)
	pOff := a.geo.DiskOffset(stripe)
	unit := a.geo.StripeUnit

	covered := make(map[int]bool, len(sp.Extents))
	partial := false
	for _, e := range sp.Extents {
		covered[e.DataIdx] = true
		if e.Len != unit {
			partial = true
		}
	}
	full := len(covered) == a.geo.DataDisks() && !partial
	reconstruct := !full && !partial && len(covered) > a.geo.DataDisks()/2

	// Reserve the parity write in the request's work count now: data
	// writes on other disks may land before the pre-reads complete, and
	// the request must not retire until parity is on disk.
	r.remaining++

	// Issue the pre-reads the parity write depends on, counting
	// dependencies so the parity write launches when the last one lands.
	deps := 0
	issuePre := func(d int, op diskOp) {
		deps++
		op.done = func() {
			deps--
			if deps == 0 {
				a.issueParityWrite(r, stripe, pDisk, pOff, unit)
			}
		}
		a.issue(d, op)
	}
	switch {
	case full:
		// Full-stripe: parity computed from the new data; no pre-reads.
	case reconstruct:
		// Reconstruct-write: read the units not being overwritten.
		for i := 0; i < a.geo.DataDisks(); i++ {
			if covered[i] {
				continue
			}
			issuePre(a.geo.DataDisk(stripe, i), diskOp{off: pOff, n: unit})
		}
	default:
		// Read-modify-write: old data (unless cached) and old parity.
		for _, e := range sp.Extents {
			if a.cache.OldDataCached(e.ArrOff, e.Len) {
				continue
			}
			issuePre(e.Disk, diskOp{off: e.DiskOff, n: e.Len})
		}
		issuePre(pDisk, diskOp{off: pOff, n: unit})
	}

	// Data writes proceed independently of the parity chain. Per-disk
	// FCFS queues keep a pre-read of a block ahead of its overwrite.
	pendingData := len(sp.Extents)
	for _, e := range sp.Extents {
		e := e
		r.remaining++
		a.issue(e.Disk, diskOp{write: true, off: e.DiskOff, n: e.Len, done: func() {
			pendingData--
			if pendingData == 0 {
				a.noteWriteDone(sp.Stripe)
			}
			a.finishOne(r)
		}})
	}

	if deps == 0 {
		// No pre-reads were needed; parity can be written immediately.
		a.issueParityWrite(r, stripe, pDisk, pOff, unit)
	}
}

// issueParityWrite writes the stripe's new parity unit; its completion
// retires the slot writeSpanRAID5 reserved in the request's work count.
func (a *Array) issueParityWrite(r *request, stripe int64, pDisk int, pOff, unit int64) {
	a.issue(pDisk, diskOp{write: true, off: pOff, n: unit, done: func() {
		// Parity now consistent for this stripe; if any of its slots
		// had been marked (mode changes can interleave), clear them.
		if a.activeWrites[stripe] == 0 {
			a.markCleanStripe(stripe)
		}
		a.finishOne(r)
	}})
}

// noteWriteActive/noteWriteDone track in-flight foreground write spans
// per stripe so the rebuilder never rewrites parity under an active
// write.
func (a *Array) noteWriteActive(stripe int64) { a.activeWrites[stripe]++ }

func (a *Array) noteWriteDone(stripe int64) {
	a.activeWrites[stripe]--
	if a.activeWrites[stripe] < 0 {
		panic("array: active write count underflow")
	}
	if a.activeWrites[stripe] == 0 {
		delete(a.activeWrites, stripe)
	}
}
