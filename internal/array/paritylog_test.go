package array

import (
	"testing"
	"time"

	"afraid/internal/trace"
)

func TestParityLogConservation(t *testing.T) {
	cfg := DefaultConfig(PARITYLOG)
	tr := smallWriteTrace(300, 15*time.Millisecond, 0, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.Completed != uint64(len(tr.Records)) {
		t.Fatalf("completed %d of %d", m.Completed, len(tr.Records))
	}
	if m.LogFlushes == 0 {
		t.Fatal("no log flushes recorded")
	}
}

func TestParityLogAlwaysRedundant(t *testing.T) {
	cfg := DefaultConfig(PARITYLOG)
	tr := smallWriteTrace(100, 20*time.Millisecond, time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.FracUnprotected != 0 || m.MeanParityLag != 0 {
		t.Fatalf("parity logging exposed data: frac=%g lag=%g", m.FracUnprotected, m.MeanParityLag)
	}
}

func TestParityLogBetweenRAID5AndAFRAID(t *testing.T) {
	// Parity logging removes the parity I/Os from the critical path but
	// keeps the old-data pre-read, so it should land between RAID 5 and
	// AFRAID on small random writes.
	cfg := DefaultConfig(PARITYLOG)
	tr := smallWriteTrace(500, 15*time.Millisecond, 0, cfg.Geometry.Capacity())
	mp := mustRun(t, cfg, tr)
	m5 := mustRun(t, DefaultConfig(RAID5), tr)
	ma := mustRun(t, DefaultConfig(AFRAID), tr)
	if mp.MeanIOTime >= m5.MeanIOTime {
		t.Fatalf("parity logging %v not faster than RAID5 %v", mp.MeanIOTime, m5.MeanIOTime)
	}
	if mp.MeanIOTime <= ma.MeanIOTime {
		t.Fatalf("parity logging %v faster than AFRAID %v (pre-read should cost something)",
			mp.MeanIOTime, ma.MeanIOTime)
	}
}

func TestParityLogFillStallsWrites(t *testing.T) {
	// A tiny log under sustained writes must fill and stall — the §2
	// failure mode AFRAID does not have.
	cfg := DefaultConfig(PARITYLOG)
	cfg.PLog.LogBytes = 64 << 10 // absurdly small: ~8 images
	cfg.PLog.BufferBytes = 16 << 10
	cfg.Geometry.DiskSize = (cfg.Disk.CapacityBytes() - cfg.PLog.LogBytes) / cfg.Geometry.StripeUnit * cfg.Geometry.StripeUnit
	tr := smallWriteTrace(300, 5*time.Millisecond, 0, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.Reintegrations == 0 {
		t.Fatal("log never reintegrated")
	}
	if m.LogStalls == 0 {
		t.Fatal("tiny log never stalled a write")
	}

	// The same workload on AFRAID neither stalls nor reintegrates.
	ma := mustRun(t, DefaultConfig(AFRAID), tr)
	if ma.MeanIOTime >= m.MeanIOTime {
		t.Fatalf("AFRAID %v not faster than log-pressured parity logging %v",
			ma.MeanIOTime, m.MeanIOTime)
	}
}

func TestParityLogReintegrationFreesLog(t *testing.T) {
	cfg := DefaultConfig(PARITYLOG)
	cfg.PLog.LogBytes = 256 << 10
	cfg.Geometry.DiskSize = (cfg.Disk.CapacityBytes() - cfg.PLog.LogBytes) / cfg.Geometry.StripeUnit * cfg.Geometry.StripeUnit
	// Enough writes to force several reintegration cycles, then quiet.
	tr := smallWriteTrace(600, 8*time.Millisecond, 2*time.Second, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.Reintegrations < 2 {
		t.Fatalf("only %d reintegrations; expected several cycles", m.Reintegrations)
	}
	if m.Completed != uint64(len(tr.Records)) {
		t.Fatalf("lost requests under log cycling: %d/%d", m.Completed, len(tr.Records))
	}
}

func TestParityLogReadsUnaffected(t *testing.T) {
	cfg := DefaultConfig(PARITYLOG)
	tr := &trace.Trace{}
	for i := 0; i < 50; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time:   time.Duration(i) * 20 * time.Millisecond,
			Offset: int64(i) * 1 << 20,
			Length: 8192,
		})
	}
	m := mustRun(t, cfg, tr)
	if m.Reads != 50 {
		t.Fatalf("reads = %d", m.Reads)
	}
	if m.LogFlushes != 0 {
		t.Fatal("reads should not touch the parity log")
	}
}
