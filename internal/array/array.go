// Package array implements the simulated disk-array controllers the
// paper evaluates: RAID 0, RAID 5 (read-modify-write and
// reconstruct-write small-update protocols), and AFRAID (immediate data
// writes, deferred parity rebuilt in idle periods), together with the
// availability policies — pure AFRAID, the dirty-stripe threshold, and
// the MTTDL_x target policy that reverts to RAID 5 when the achieved
// availability falls below a goal.
//
// The controller runs inside a sim.Engine. Requests enter through a
// host device driver (CLOOK, outstanding-request limit equal to the
// number of disks), consult the controller caches, and fan out to
// per-disk FCFS queues feeding mechanical disk models. Parity-lag and
// unprotected-time accounting matches the paper's §3 definitions.
package array

import (
	"fmt"
	"time"

	"afraid/internal/avail"
	"afraid/internal/cache"
	"afraid/internal/disk"
	"afraid/internal/idle"
	"afraid/internal/iosched"
	"afraid/internal/layout"
	"afraid/internal/nvram"
	"afraid/internal/sim"
)

// Mode selects the array's redundancy behaviour.
type Mode int

const (
	// RAID0 never writes parity. The paper models it as "an AFRAID
	// that simply never did parity updates", which this implementation
	// reproduces: identical code paths, no parity work.
	RAID0 Mode = iota
	// RAID5 is the traditional always-consistent array: small writes
	// pay the read-modify-write penalty in the critical path.
	RAID5
	// AFRAID applies data writes immediately, marks the stripes
	// unredundant in NVRAM, and rebuilds parity in idle periods.
	AFRAID
	// PARITYLOG is the related-work baseline (§2): parity update images
	// are appended to a distributed log and reintegrated in batches,
	// preserving full redundancy at all times at the cost of the
	// old-data pre-read, reintegration interference, and log-full
	// stalls.
	PARITYLOG
	// RAID6 keeps synchronous P and Q parity: six I/Os per small
	// write (§5 notes the even higher penalty).
	RAID6
	// AFRAID6 is the §5 extension: defer the Q update (partial
	// redundancy immediately) or both parity updates, per
	// Config.QDefer.
	AFRAID6
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case RAID0:
		return "RAID0"
	case RAID5:
		return "RAID5"
	case AFRAID:
		return "AFRAID"
	case PARITYLOG:
		return "PARITYLOG"
	case RAID6:
		return "RAID6"
	case AFRAID6:
		return "AFRAID6"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Policy carries the AFRAID availability knobs.
type Policy struct {
	// IdleDelay is the quiescence threshold before background parity
	// rebuilding starts. Zero selects the paper's 100 ms default.
	IdleDelay time.Duration
	// AdaptiveIdle replaces the fixed timer with the backoff detector.
	AdaptiveIdle bool
	// PredictiveIdle replaces the fixed timer with the Golding-style
	// moving-average idle-period predictor. The paper ran one but
	// ignored its output ("the output from the idle-period predictor
	// was ignored"); enabling it here is an ablation.
	PredictiveIdle bool
	// DirtyThreshold, when positive, starts a parity rebuild as soon
	// as more than this many stripes are unprotected, even if the
	// array is busy (the paper found 20 effective).
	DirtyThreshold int
	// TargetMTTDL, when positive, enables the MTTDL_x policy: the
	// array continuously computes the disk-related MTTDL achieved so
	// far and reverts to RAID 5 behaviour whenever it falls below the
	// target (hours).
	TargetMTTDL float64
	// CoalesceAdjacent rebuilds runs of adjacent dirty stripes without
	// re-checking for idleness between them (an optimization the paper
	// mentions but did not model; off by default).
	CoalesceAdjacent bool
	// MarkGranularity is the §5 sub-stripe marking extension: M > 1
	// divides each stripe unit into M horizontal slices with one
	// marking bit each, so a small write dirties (and the rebuilder
	// re-reads) only the slices it touched. 0 or 1 selects whole-stripe
	// marking (the paper's base design). AFRAID mode only.
	MarkGranularity int
	// ConservativeStart is the §5 refinement: begin in RAID 5 mode and
	// switch into AFRAID behaviour only once the observed idle fraction
	// shows the workload leaves room to rebuild parity.
	ConservativeStart bool
	// ConservativeIdleFrac is the idle fraction that triggers the
	// switch (default 0.25), observed over at least one second.
	ConservativeIdleFrac float64
}

// PLogConfig parameterizes the parity-logging baseline.
type PLogConfig struct {
	// LogBytes is the per-disk log region (reserved past the striped
	// space). Zero selects 2 MB.
	LogBytes int64
	// BufferBytes is the NVRAM staging buffer flushed sequentially to
	// the log region. Zero selects 64 KB.
	BufferBytes int64
}

func (p *PLogConfig) fill() {
	if p.LogBytes == 0 {
		p.LogBytes = 2 << 20
	}
	if p.BufferBytes == 0 {
		p.BufferBytes = 64 << 10
	}
}

// Config describes a simulated array.
type Config struct {
	Geometry layout.Geometry
	Disk     disk.Params
	// SpinSync gives every disk the same rotational phase (the paper
	// considers spin-synchronized arrays).
	SpinSync bool
	Mode     Mode
	Cache    cache.Config
	// MaxOutstanding limits concurrently active client requests inside
	// the array; zero selects the paper's choice (number of disks).
	MaxOutstanding int
	Policy         Policy
	// Avail parameterizes the MTTDL_x policy arithmetic.
	Avail avail.Params
	// PLog parameterizes the PARITYLOG baseline (ignored otherwise).
	PLog PLogConfig
	// Fault optionally injects a disk failure (degraded-mode study).
	Fault Fault
	// QDefer selects which parity updates AFRAID6 defers.
	QDefer QDeferPolicy
	// Seed desynchronizes rotational phases when SpinSync is false.
	Seed uint64
}

// DefaultConfig returns the paper's experimental setup: five
// spin-synchronized HP C3325-class disks, 8 KB stripe units, 256 KB
// write-through staging and 256 KB read cache, CLOOK host queue.
func DefaultConfig(mode Mode) Config {
	p := disk.C3325()
	unit := int64(8 << 10)
	diskSize := p.CapacityBytes() / unit * unit
	var lvl layout.Level
	switch mode {
	case RAID0:
		lvl = layout.RAID0
	case RAID6, AFRAID6:
		lvl = layout.RAID6
	default:
		lvl = layout.RAID5
	}
	cfg := Config{
		Geometry: layout.Geometry{Disks: 5, StripeUnit: unit, DiskSize: diskSize, Level: lvl},
		Disk:     p,
		SpinSync: true,
		Mode:     mode,
		Cache:    cache.Config{BlockSize: unit, ReadBytes: 256 << 10, WriteBytes: 256 << 10},
		Avail:    avail.Default(),
	}
	if mode == PARITYLOG {
		// Reserve the per-disk log region past the striped space.
		cfg.PLog.fill()
		cfg.Geometry.DiskSize = (diskSize - cfg.PLog.LogBytes) / unit * unit
	}
	return cfg
}

// cacheHitTime is the controller time to satisfy a read from cache.
const cacheHitTime = 200 * time.Microsecond

// diskOp is one queued operation on a single disk.
type diskOp struct {
	write bool
	off   int64
	n     int64
	done  func()
}

// Array is the simulated controller. Create with New; drive with
// Submit; read results with Metrics after the engine drains.
type Array struct {
	eng   *sim.Engine
	cfg   Config
	geo   layout.Geometry
	disks []*disk.Disk
	busy  []bool
	queue [][]diskOp

	limiter *iosched.Limiter
	cache   *cache.Controller
	marks   *nvram.Bitmap
	tracker idle.Tracker
	detect  idle.Detector

	// stripe concurrency control
	rebuildLocked map[int64][]func() // stripe -> waiters (non-nil while locked)
	activeWrites  map[int64]int      // stripe -> in-flight foreground write spans

	// AFRAID background state
	idleTimer  *sim.Timer
	idleGen    uint64 // invalidates stale idle-timer callbacks (see idleFired)
	rebuilding bool
	forced     bool
	fgArrived  bool
	cursor     int64
	reverted   bool
	revertedAt time.Duration
	gran       int              // marking slots per stripe (§5; default 1)
	conserving bool             // conservative-start observation phase
	busyTW     sim.TimeWeighted // busy-fraction tracker for conservative start

	// accounting
	lag          sim.TimeWeighted
	maxLag       float64
	ioTime       sim.DurationStats
	readTime     sim.DurationStats
	writeTime    sim.DurationStats
	reads        uint64
	writes       uint64
	rebuilt      uint64
	forcedBuilt  uint64
	episodes     uint64
	interrupted  uint64
	reverts      uint64
	revertedTime time.Duration
	submitted    uint64
	completed    uint64

	// degraded-mode state (injected failure + spare rebuild)
	deg degradedState

	// parity-logging baseline state and counters
	plog           []*plState
	stalls         uint64
	logFlushes     uint64
	reintegrations uint64

	// physical is the usable per-disk byte bound (striped space plus
	// any log region).
	physical int64
}

// New builds an array bound to the engine.
func New(eng *sim.Engine, cfg Config) (*Array, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	physical := cfg.Geometry.DiskSize
	if cfg.Mode == PARITYLOG {
		cfg.PLog.fill()
		physical += cfg.PLog.LogBytes
	}
	if physical > cfg.Disk.CapacityBytes() {
		return nil, fmt.Errorf("array: per-disk footprint %d exceeds disk capacity %d",
			physical, cfg.Disk.CapacityBytes())
	}
	var wantLevel layout.Level
	switch cfg.Mode {
	case RAID0:
		wantLevel = layout.RAID0
	case RAID6, AFRAID6:
		wantLevel = layout.RAID6
	default:
		wantLevel = layout.RAID5
	}
	if cfg.Geometry.Level != wantLevel {
		return nil, fmt.Errorf("array: %v mode requires a %v layout, have %v",
			cfg.Mode, wantLevel, cfg.Geometry.Level)
	}
	max := cfg.MaxOutstanding
	if max == 0 {
		max = cfg.Geometry.Disks
	}
	var det idle.Detector
	switch {
	case cfg.Policy.AdaptiveIdle && cfg.Policy.PredictiveIdle:
		return nil, fmt.Errorf("array: AdaptiveIdle and PredictiveIdle are mutually exclusive")
	case cfg.Policy.AdaptiveIdle:
		base := cfg.Policy.IdleDelay
		if base <= 0 {
			base = idle.DefaultDelay
		}
		det = idle.NewAdaptive(base/8, base, base*8)
	case cfg.Policy.PredictiveIdle:
		det = idle.NewPredictor(cfg.Policy.IdleDelay)
	default:
		det = idle.NewTimer(cfg.Policy.IdleDelay)
	}
	gran := cfg.Policy.MarkGranularity
	if gran < 1 {
		gran = 1
	}
	if gran > 1 {
		if cfg.Mode != AFRAID {
			return nil, fmt.Errorf("array: sub-stripe marking requires AFRAID mode, have %v", cfg.Mode)
		}
		if cfg.Geometry.StripeUnit%int64(gran) != 0 {
			return nil, fmt.Errorf("array: marking granularity %d does not divide stripe unit %d",
				gran, cfg.Geometry.StripeUnit)
		}
	}
	a := &Array{
		eng:           eng,
		cfg:           cfg,
		geo:           cfg.Geometry,
		disks:         make([]*disk.Disk, cfg.Geometry.Disks),
		busy:          make([]bool, cfg.Geometry.Disks),
		queue:         make([][]diskOp, cfg.Geometry.Disks),
		limiter:       iosched.NewLimiter(iosched.NewCLOOK(), max),
		cache:         cache.NewController(cfg.Cache),
		marks:         nvram.NewBitmap(cfg.Geometry.Stripes() * int64(gran)),
		detect:        det,
		rebuildLocked: make(map[int64][]func()),
		activeWrites:  make(map[int64]int),
		gran:          gran,
	}
	if cfg.Policy.ConservativeStart && cfg.Mode == AFRAID {
		// §5: begin conservatively in RAID 5 mode; switch to AFRAID
		// once the observed idle fraction shows headroom for rebuilds.
		a.reverted = true
		a.conserving = true
	}
	a.busyTW.Set(0, 0)
	a.physical = physical
	rng := sim.NewRNG(cfg.Seed ^ 0xafa1d)
	for i := range a.disks {
		var phase time.Duration
		if !cfg.SpinSync {
			phase = time.Duration(rng.Int63n(int64(cfg.Disk.Rotation())))
		}
		a.disks[i] = disk.New(cfg.Disk, phase)
	}
	a.lag.Set(0, 0)
	a.deg.failed = -1
	a.armFault()
	return a, nil
}

// Capacity returns the client-visible capacity.
func (a *Array) Capacity() int64 { return a.geo.Capacity() }

// DirtyStripes returns the current number of unredundant stripes.
func (a *Array) DirtyStripes() int64 { return a.marks.Count() }

// Reverted reports whether the MTTDL_x policy currently has the array
// in RAID 5 mode.
func (a *Array) Reverted() bool { return a.reverted }

// issue enqueues op on disk d, serving it immediately if the disk is
// free.
func (a *Array) issue(d int, op diskOp) {
	if op.off < 0 || op.off+op.n > a.physical {
		panic(fmt.Sprintf("array: disk %d op [%d,%d) outside usable size %d", d, op.off, op.off+op.n, a.physical))
	}
	if a.busy[d] {
		a.queue[d] = append(a.queue[d], op)
		return
	}
	a.serve(d, op)
}

// serve runs op on disk d now. With immediate reporting enabled, a
// write's completion callback fires at buffered-completion time while
// the drive stays busy for the full mechanical service time.
func (a *Array) serve(d int, op diskOp) {
	a.busy[d] = true
	dop := disk.Op{Write: op.write, Offset: op.off, Length: op.n}
	st := a.disks[d].ServiceTime(a.eng.Now(), dop)
	if op.write && a.cfg.Disk.ImmediateReport {
		rt := a.disks[d].ReportTime(dop)
		if rt > st {
			rt = st
		}
		if op.done != nil {
			done := op.done
			a.eng.After(rt, done)
			op.done = nil
		}
	}
	a.eng.After(st, func() {
		a.busy[d] = false
		if len(a.queue[d]) > 0 {
			next := a.queue[d][0]
			a.queue[d] = a.queue[d][1:]
			a.serve(d, next)
		}
		if op.done != nil {
			op.done()
		}
	})
}

// Marking is slot-based: with MarkGranularity M, each stripe has M
// marking slots, one per horizontal slice of its stripe units (§5). The
// default M=1 makes slot == stripe, the paper's base design.

// slotLagBytes returns the unredundant data represented by one slot.
func (a *Array) slotLagBytes() float64 {
	return float64(a.geo.StripeDataBytes()) / float64(a.gran)
}

// stripeOfSlot maps a marking slot to its stripe.
func (a *Array) stripeOfSlot(slot int64) int64 { return slot / int64(a.gran) }

// markDirty records one slot as unredundant and updates lag accounting.
func (a *Array) markDirty(slot int64) {
	if a.marks.Mark(slot) {
		a.lag.Add(a.eng.Now(), a.slotLagBytes())
		if v := a.lag.Value(); v > a.maxLag {
			a.maxLag = v
		}
	}
}

// markSpanDirty marks every slot a span's extents overlap.
func (a *Array) markSpanDirty(sp layout.StripeSpan) {
	if a.gran == 1 {
		a.markDirty(sp.Stripe)
		return
	}
	slice := a.geo.StripeUnit / int64(a.gran)
	base := sp.Stripe * int64(a.gran)
	for _, e := range sp.Extents {
		s0 := e.UnitOff / slice
		s1 := (e.UnitOff + e.Len - 1) / slice
		for s := s0; s <= s1; s++ {
			a.markDirty(base + s)
		}
	}
}

// markClean records one slot's parity as consistent again.
func (a *Array) markClean(slot int64) {
	if a.marks.Unmark(slot) {
		a.lag.Add(a.eng.Now(), -a.slotLagBytes())
	}
}

// markCleanStripe clears every slot of a stripe (used when a full
// parity-unit write makes the whole stripe consistent).
func (a *Array) markCleanStripe(stripe int64) {
	base := stripe * int64(a.gran)
	for s := int64(0); s < int64(a.gran); s++ {
		a.markClean(base + s)
	}
}
