package array

import (
	"fmt"
	"time"

	"afraid/internal/disk"
	"afraid/internal/layout"
)

// Degraded-mode simulation: §2 notes that "all the well-known
// techniques that have been developed for performing stripe rebuilds in
// a recently repaired disk array can be applied" to AFRAID. This file
// injects a fail-stop disk failure at a configured time, serves
// reads/writes degraded (survivor reconstruction), runs a Muntz90-style
// linear rebuild sweep onto a hot spare, and accounts the data AFRAID
// actually loses: one stripe unit per stripe that was unredundant at
// the instant of the failure — the measured counterpart of the §3
// exposure model.

// Fault configures an injected disk failure.
type Fault struct {
	// At is the virtual time of the fail-stop failure; zero disables
	// fault injection.
	At time.Duration
	// Disk is the member that fails.
	Disk int
	// SpareRebuild starts a background reconstruction sweep onto a hot
	// spare immediately after the failure. Without it the array stays
	// degraded for the rest of the run.
	SpareRebuild bool
}

// degradedState tracks the failure lifecycle.
type degradedState struct {
	failed      int // failed member, -1 when healthy
	failedAt    time.Duration
	rebuiltUpTo int64 // stripes below this are reconstructed on the spare
	sweepDone   bool
	doneAt      time.Duration

	lostUnits  int64 // dirty stripes with a data unit on the failed disk
	degReads   uint64
	degLatency int64 // count of requests submitted while degraded
}

// armFault schedules the configured failure.
func (a *Array) armFault() {
	f := a.cfg.Fault
	if f.At <= 0 {
		return
	}
	if f.Disk < 0 || f.Disk >= a.geo.Disks {
		panic(fmt.Sprintf("array: fault disk %d out of range", f.Disk))
	}
	a.eng.At(f.At, a.injectFault)
}

// injectFault fails the configured disk: the paper's exposure becomes
// concrete — every stripe marked unredundant right now loses the data
// unit it keeps on the failed disk (if any; losing the parity unit
// costs nothing).
func (a *Array) injectFault() {
	f := a.cfg.Fault
	if a.deg.failed >= 0 {
		return
	}
	a.deg.failed = f.Disk
	a.deg.failedAt = a.eng.Now()
	a.deg.rebuiltUpTo = 0

	// Realize the loss: count dirty stripes whose failed-disk unit
	// holds data. (AFRAID6 defer-Q keeps P fresh, so a single failure
	// loses nothing there.)
	if a.cfg.Mode == AFRAID || (a.cfg.Mode == AFRAID6 && a.cfg.QDefer == DeferBoth) {
		for _, slot := range a.marks.Marked() {
			stripe := a.stripeOfSlot(slot)
			if role, _ := a.geo.RoleOf(stripe, f.Disk); role == layout.Data {
				a.deg.lostUnits++
			}
		}
	}

	if f.SpareRebuild {
		// Replace the failed member's slot with a fresh spare drive;
		// reads keep reconstructing until the sweep passes each stripe.
		var phase time.Duration
		a.disks[f.Disk] = disk.New(a.cfg.Disk, phase)
		a.rebuildSweepNext()
	}
}

// degraded reports whether an extent's disk is currently unreadable
// (failed and not yet covered by the spare sweep).
func (a *Array) degradedExtent(e layout.Extent) bool {
	return a.deg.failed >= 0 && e.Disk == a.deg.failed &&
		(!a.cfg.Fault.SpareRebuild || e.Stripe >= a.deg.rebuiltUpTo)
}

// readExtentDegraded reconstructs a lost extent: read the same byte
// range of every surviving unit in the stripe (data and parity) and
// xor. Cost: Disks-1 parallel reads.
func (a *Array) readExtentDegraded(r *request, e layout.Extent) {
	a.deg.degReads++
	base := a.geo.DiskOffset(e.Stripe) + e.UnitOff
	for d := 0; d < a.geo.Disks; d++ {
		if d == a.deg.failed {
			continue
		}
		r.remaining++
		a.issue(d, diskOp{off: base, n: e.Len, done: func() { a.finishOne(r) }})
	}
}

// writeSpanDegraded handles a stripe write while a member is down,
// maintaining parity synchronously so the lost unit stays encoded
// (deferring parity during degraded operation would turn the *next*
// failure into certain loss, and the marking memory cannot protect a
// stripe whose data is already unreadable). The whole span is treated
// as a reconstruct-write:
//
//   - read every surviving data unit not being overwritten;
//   - write the covered data units on surviving disks;
//   - write the new parity (if the parity disk survives).
func (a *Array) writeSpanDegradedSim(r *request, sp layout.StripeSpan) {
	a.noteWriteActive(sp.Stripe)
	stripe := sp.Stripe
	unit := a.geo.StripeUnit
	pOff := a.geo.DiskOffset(stripe)
	pDisk := a.geo.ParityDisk(stripe)

	covered := make(map[int]bool, len(sp.Extents))
	for _, e := range sp.Extents {
		covered[e.DataIdx] = true
	}

	parityAlive := pDisk != a.deg.failed
	deps := 0
	issuePre := func(d int, op diskOp) {
		deps++
		op.done = func() {
			deps--
			if deps == 0 && parityAlive {
				a.issueParityWrite(r, stripe, pDisk, pOff, unit)
			}
		}
		a.issue(d, op)
	}
	if parityAlive {
		r.remaining++ // reserve the parity write
		for i := 0; i < a.geo.DataDisks(); i++ {
			if covered[i] {
				continue
			}
			d := a.geo.DataDisk(stripe, i)
			if d == a.deg.failed {
				continue
			}
			issuePre(d, diskOp{off: pOff, n: unit})
		}
	}

	pendingData := 0
	for _, e := range sp.Extents {
		if e.Disk == a.deg.failed {
			continue // absorbed into parity
		}
		pendingData++
	}
	if pendingData == 0 {
		a.noteWriteDone(sp.Stripe)
	}
	for _, e := range sp.Extents {
		if e.Disk == a.deg.failed {
			continue
		}
		e := e
		r.remaining++
		a.issue(e.Disk, diskOp{write: true, off: e.DiskOff, n: e.Len, done: func() {
			pendingData--
			if pendingData == 0 {
				a.noteWriteDone(sp.Stripe)
			}
			a.finishOne(r)
		}})
	}

	if parityAlive && deps == 0 {
		a.issueParityWrite(r, stripe, pDisk, pOff, unit)
	}
}

// sweepBatch is the number of contiguous stripes reconstructed per
// sweep step. Batching turns the sweep into large sequential transfers
// (a streaming rebuild), which is what makes the paper's §3.1 estimate
// — "about ten minutes for an array using 2GB disks that can read at a
// sustained rate of 5MB/s" — achievable; per-stripe random I/O would
// take hours.
const sweepBatch = 64

// rebuildSweepNext reconstructs the next batch of stripes onto the
// spare: sequential reads of every surviving member, xor (free), one
// sequential write to the spare. The sweep is linear (Muntz90's
// baseline) and competes with foreground I/O through the ordinary FCFS
// disk queues, preempting between batches.
func (a *Array) rebuildSweepNext() {
	if a.deg.failed < 0 || a.deg.sweepDone {
		return
	}
	stripe := a.deg.rebuiltUpTo
	if stripe >= a.geo.Stripes() {
		a.finishSweep()
		return
	}
	batch := int64(sweepBatch)
	if stripe+batch > a.geo.Stripes() {
		batch = a.geo.Stripes() - stripe
	}
	n := batch * a.geo.StripeUnit
	off := a.geo.DiskOffset(stripe)
	deps := 0
	for d := 0; d < a.geo.Disks; d++ {
		if d == a.deg.failed {
			continue
		}
		deps++
		a.issue(d, diskOp{off: off, n: n, done: func() {
			deps--
			if deps == 0 {
				// Write the reconstructed region to the spare (sitting
				// in the failed member's slot).
				a.issue(a.deg.failed, diskOp{write: true, off: off, n: n, done: func() {
					a.deg.rebuiltUpTo += batch
					a.rebuildSweepNext()
				}})
			}
		}})
	}
}

// finishSweep completes the spare rebuild: the array is healthy again.
func (a *Array) finishSweep() {
	a.deg.sweepDone = true
	a.deg.doneAt = a.eng.Now()
	a.deg.failed = -1
}
