package array

import (
	"fmt"
	"strings"
	"time"

	"afraid/internal/disk"
	"afraid/internal/sim"
)

// Metrics summarizes a completed simulation run.
type Metrics struct {
	Mode Mode

	Submitted uint64
	Completed uint64
	Reads     uint64
	Writes    uint64

	// MeanIOTime is the paper's headline metric: mean time from
	// device-driver entry to array completion, over all requests.
	MeanIOTime time.Duration
	MeanRead   time.Duration
	MeanWrite  time.Duration
	P95IOTime  time.Duration
	P99IOTime  time.Duration
	MaxIOTime  time.Duration

	// EndTime is the virtual time when the last request completed (or
	// the trace ended, whichever is later); the availability fractions
	// are measured against it.
	EndTime time.Duration

	// FracUnprotected is Tunprot/Ttotal: the fraction of the run during
	// which at least one stripe was unredundant.
	FracUnprotected float64
	// MeanParityLag is the time-averaged bytes of unredundant
	// non-parity data (the paper's parity lag).
	MeanParityLag float64
	// MaxParityLag is the peak parity lag observed.
	MaxParityLag float64

	RebuiltStripes   uint64
	ForcedStripes    uint64
	RebuildEpisodes  uint64
	EpisodesCutShort uint64
	Reverts          uint64
	RevertedTime     time.Duration
	DirtyAtEnd       int64

	ReadCacheHits, ReadCacheMisses uint64

	// Parity-logging baseline counters.
	LogStalls      uint64 // writes that waited for log space
	LogFlushes     uint64 // NVRAM buffer flushes to the log region
	Reintegrations uint64 // batch parity-reintegration passes

	// Degraded-mode study (Config.Fault).
	FailedAt           time.Duration // zero when no fault injected
	RebuildDoneAt      time.Duration // zero when no spare sweep finished
	DegradedReads      uint64        // extents served by reconstruction
	DegradedRequests   int64         // requests submitted while a member was down
	LostUnitsAtFailure int64         // dirty-stripe units on the failed disk

	Disks []disk.Stats
}

// Metrics finalizes accounting at the given end time (typically
// max(last completion, trace duration)) and returns the summary.
// Call after the engine has drained.
func (a *Array) Metrics(end time.Duration) Metrics {
	if a.submitted != a.completed {
		panic("array: Metrics called with requests still in flight")
	}
	now := a.eng.Now()
	if end < now {
		end = now
	}
	if a.reverted {
		a.revertedTime += end - a.revertedAt
		a.revertedAt = end
	}
	frac := 0.0
	if end > 0 {
		frac = float64(a.lag.NonZeroTimeAt(end)) / float64(end)
	}
	hits, misses := a.cache.ReadStats()
	m := Metrics{
		Mode:               a.cfg.Mode,
		Submitted:          a.submitted,
		Completed:          a.completed,
		Reads:              a.reads,
		Writes:             a.writes,
		MeanIOTime:         a.ioTime.Mean(),
		MeanRead:           a.readTime.Mean(),
		MeanWrite:          a.writeTime.Mean(),
		P95IOTime:          a.ioTime.Quantile(0.95),
		P99IOTime:          a.ioTime.Quantile(0.99),
		MaxIOTime:          a.ioTime.Max(),
		EndTime:            end,
		FracUnprotected:    frac,
		MeanParityLag:      a.lag.Average(end),
		MaxParityLag:       a.maxLag,
		RebuiltStripes:     a.rebuilt,
		ForcedStripes:      a.forcedBuilt,
		RebuildEpisodes:    a.episodes,
		EpisodesCutShort:   a.interrupted,
		Reverts:            a.reverts,
		RevertedTime:       a.revertedTime,
		DirtyAtEnd:         a.marks.Count(),
		ReadCacheHits:      hits,
		ReadCacheMisses:    misses,
		LogStalls:          a.stalls,
		LogFlushes:         a.logFlushes,
		Reintegrations:     a.reintegrations,
		FailedAt:           a.deg.failedAt,
		RebuildDoneAt:      a.deg.doneAt,
		DegradedReads:      a.deg.degReads,
		DegradedRequests:   a.deg.degLatency,
		LostUnitsAtFailure: a.deg.lostUnits,
	}
	for _, d := range a.disks {
		m.Disks = append(m.Disks, d.Stats())
	}
	return m
}

// IOTimes exposes the raw latency distribution for detailed reporting.
func (a *Array) IOTimes() *sim.DurationStats { return &a.ioTime }

// String renders a compact multi-line summary of the run.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %d requests (%d reads, %d writes), mean I/O %v",
		m.Mode, m.Completed, m.Reads, m.Writes, m.MeanIOTime.Round(time.Microsecond))
	if m.Mode == AFRAID || m.Mode == AFRAID6 {
		fmt.Fprintf(&b, ", unprotected %.1f%%, parity lag %.1f KB",
			100*m.FracUnprotected, m.MeanParityLag/1e3)
	}
	if m.Mode == PARITYLOG {
		fmt.Fprintf(&b, ", %d log flushes, %d reintegrations, %d stalls",
			m.LogFlushes, m.Reintegrations, m.LogStalls)
	}
	return b.String()
}
