package array

import (
	"testing"
	"time"

	"afraid/internal/sim"
	"afraid/internal/trace"
)

// smallCfg shrinks the array (8 MB per disk) so spare-rebuild sweeps
// finish quickly in tests.
func smallCfg(mode Mode) Config {
	cfg := DefaultConfig(mode)
	cfg.Geometry.DiskSize = 8 << 20
	return cfg
}

func TestFaultDegradedReadsServed(t *testing.T) {
	cfg := smallCfg(RAID5)
	cfg.Fault = Fault{At: 500 * time.Millisecond, Disk: 2}
	tr := smallWriteTrace(100, 20*time.Millisecond, time.Second, cfg.Geometry.Capacity())
	// Append spread-out reads after the failure so reconstruction
	// happens on extents of the failed disk.
	rng := sim.NewRNG(777)
	for i := 0; i < 50; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time:   3100*time.Millisecond + time.Duration(i)*20*time.Millisecond,
			Offset: rng.Int63n(cfg.Geometry.Capacity()/8192-1) * 8192,
			Length: 8192,
		})
	}
	m := mustRun(t, cfg, tr)
	if m.FailedAt != 500*time.Millisecond {
		t.Fatalf("failed at %v", m.FailedAt)
	}
	if m.DegradedReads == 0 {
		t.Fatal("no degraded reads recorded")
	}
	if m.DegradedRequests == 0 {
		t.Fatal("no requests counted as submitted while degraded")
	}
	if m.Completed != uint64(len(tr.Records)) {
		t.Fatalf("completed %d/%d", m.Completed, len(tr.Records))
	}
}

func TestFaultSpareRebuildCompletes(t *testing.T) {
	cfg := smallCfg(RAID5)
	cfg.Fault = Fault{At: 200 * time.Millisecond, Disk: 1, SpareRebuild: true}
	tr := smallWriteTrace(50, 30*time.Millisecond, 0, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.RebuildDoneAt == 0 {
		t.Fatal("spare rebuild never completed")
	}
	if m.RebuildDoneAt <= m.FailedAt {
		t.Fatalf("rebuild done %v before failure %v", m.RebuildDoneAt, m.FailedAt)
	}
	// 1024 stripes * (4 reads + 1 write) of 8KB on a mostly idle array
	// should take seconds of virtual time, not hours.
	if m.RebuildDoneAt-m.FailedAt > 5*time.Minute {
		t.Fatalf("rebuild took %v", m.RebuildDoneAt-m.FailedAt)
	}
}

func TestAFRAIDLosesDirtyUnitsOnFailure(t *testing.T) {
	// Fail mid-burst so stripes are dirty: the measured loss must be
	// positive for AFRAID and zero for RAID 5 — the paper's exposure,
	// realized.
	cfgA := smallCfg(AFRAID)
	cfgA.Policy.IdleDelay = time.Hour // keep stripes dirty until the failure
	cfgA.Fault = Fault{At: 1 * time.Second, Disk: 0}
	tr := smallWriteTrace(60, 15*time.Millisecond, 500*time.Millisecond, cfgA.Geometry.Capacity())
	mA := mustRun(t, cfgA, tr)
	if mA.LostUnitsAtFailure == 0 {
		t.Fatal("AFRAID with dirty stripes lost nothing on failure")
	}

	cfg5 := smallCfg(RAID5)
	cfg5.Fault = Fault{At: 1 * time.Second, Disk: 0}
	m5 := mustRun(t, cfg5, tr)
	if m5.LostUnitsAtFailure != 0 {
		t.Fatalf("RAID5 lost %d units on a single failure", m5.LostUnitsAtFailure)
	}

	// The §5 defer-Q variant also loses nothing: P is still fresh.
	cfg6 := smallCfg(AFRAID6)
	cfg6.Policy.IdleDelay = time.Hour
	cfg6.QDefer = DeferQ
	cfg6.Fault = Fault{At: 1 * time.Second, Disk: 0}
	tr6 := smallWriteTrace(60, 15*time.Millisecond, 500*time.Millisecond, cfg6.Geometry.Capacity())
	m6 := mustRun(t, cfg6, tr6)
	if m6.LostUnitsAtFailure != 0 {
		t.Fatalf("AFRAID6 defer-Q lost %d units on a single failure", m6.LostUnitsAtFailure)
	}
}

func TestDegradedWritesMaintainParity(t *testing.T) {
	// After a failure, AFRAID writes go through the synchronous
	// degraded path: no new stripes get marked.
	cfg := smallCfg(AFRAID)
	cfg.Fault = Fault{At: 100 * time.Millisecond, Disk: 3}
	tr := smallWriteTrace(100, 15*time.Millisecond, 0, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	// Stripes dirtied before the failure stay dirty (no rebuild while
	// degraded); the writes after it must not add more than the
	// pre-failure count.
	preFailureWrites := int64(100 * 15 / (15 * 10)) // ~writes before 100ms (gap 15ms)
	if m.DirtyAtEnd > preFailureWrites+5 {
		t.Fatalf("degraded writes kept marking stripes: %d dirty at end", m.DirtyAtEnd)
	}
	if m.Completed != uint64(len(tr.Records)) {
		t.Fatalf("completed %d/%d", m.Completed, len(tr.Records))
	}
}

func TestRebuildRestoresAFRAIDBehaviour(t *testing.T) {
	// After the spare sweep finishes, deferred-parity rebuilds resume
	// and drain the stripes dirtied before the failure.
	cfg := smallCfg(AFRAID)
	cfg.Fault = Fault{At: 300 * time.Millisecond, Disk: 2, SpareRebuild: true}
	tr := smallWriteTrace(20, 10*time.Millisecond, 2*time.Minute, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.RebuildDoneAt == 0 {
		t.Fatal("sweep did not finish")
	}
	if m.DirtyAtEnd != 0 {
		t.Fatalf("%d stripes still dirty after sweep + idle tail", m.DirtyAtEnd)
	}
}

func TestNoFaultLeavesFieldsZero(t *testing.T) {
	cfg := smallCfg(AFRAID)
	tr := smallWriteTrace(20, 20*time.Millisecond, 0, cfg.Geometry.Capacity())
	m := mustRun(t, cfg, tr)
	if m.FailedAt != 0 || m.DegradedReads != 0 || m.DegradedRequests != 0 || m.LostUnitsAtFailure != 0 {
		t.Fatalf("fault fields non-zero without fault: %+v", m)
	}
}

func TestFullDiskRebuildMatchesPaperEstimate(t *testing.T) {
	// §3.1: rebuilding parity (or here, a whole member onto a spare)
	// for an array of 2GB disks "will take a little while (about ten
	// minutes ... at a sustained rate of 5MB/s)". With the streaming
	// sweep, an idle array must rebuild a full member in minutes of
	// virtual time, not hours.
	cfg := DefaultConfig(RAID5) // full 2GB geometry
	cfg.Fault = Fault{At: 50 * time.Millisecond, Disk: 0, SpareRebuild: true}
	tr := &trace.Trace{Records: []trace.Record{{Time: 0, Offset: 0, Length: 8192}}}
	m := mustRun(t, cfg, tr)
	if m.RebuildDoneAt == 0 {
		t.Fatal("rebuild did not finish")
	}
	d := m.RebuildDoneAt - m.FailedAt
	if d < 2*time.Minute || d > 30*time.Minute {
		t.Fatalf("full-member rebuild took %v, want minutes (paper: ~10)", d)
	}
	t.Logf("full 2GB member rebuild: %v", d.Round(time.Second))
}
