package array

import (
	"testing"

	"afraid/internal/sim"
)

// TestStaleIdleFireIsIgnored is the regression test for the stale
// idle-timer race: sim.Timer.Stop cannot cancel an event the engine has
// already popped for execution, so after a stop/re-arm the superseded
// callback may still run. idleFired is generation-checked; a fire
// carrying an old generation must not start an episode.
func TestStaleIdleFireIsIgnored(t *testing.T) {
	eng := sim.NewEngine()
	a, err := New(eng, DefaultConfig(AFRAID))
	if err != nil {
		t.Fatal(err)
	}
	a.markDirty(0)
	a.maybeArmIdleTimer()
	if a.idleTimer == nil {
		t.Fatal("idle timer not armed with dirty stripes outstanding")
	}
	stale := a.idleGen

	// Re-arming supersedes the first callback and must hand out a new
	// generation.
	a.maybeArmIdleTimer()
	if a.idleGen == stale {
		t.Fatal("re-arm did not bump the idle generation")
	}

	// The stale callback firing anyway (Stop raced an already-popped
	// event) must be a no-op.
	a.idleFired(stale)
	if a.rebuilding || a.episodes != 0 {
		t.Fatalf("stale idle fire started an episode (rebuilding=%v episodes=%d)", a.rebuilding, a.episodes)
	}

	// The current-generation fire still works.
	a.idleFired(a.idleGen)
	if !a.rebuilding || a.episodes != 1 {
		t.Fatalf("current idle fire did not start an episode (rebuilding=%v episodes=%d)", a.rebuilding, a.episodes)
	}
}

// TestForegroundStopInvalidatesIdleFire covers the other stop site: a
// foreground arrival stops the idle timer, and a callback that had
// already been popped must not start an episode behind it.
func TestForegroundStopInvalidatesIdleFire(t *testing.T) {
	eng := sim.NewEngine()
	a, err := New(eng, DefaultConfig(AFRAID))
	if err != nil {
		t.Fatal(err)
	}
	a.markDirty(0)
	a.maybeArmIdleTimer()
	stale := a.idleGen
	// Emulate the foreground path's stop: timer stopped, generation
	// bumped (see foreground.go).
	a.idleTimer.Stop()
	a.idleTimer = nil
	a.idleGen++
	a.idleFired(stale)
	if a.rebuilding || a.episodes != 0 {
		t.Fatalf("idle fire after foreground stop started an episode (rebuilding=%v episodes=%d)", a.rebuilding, a.episodes)
	}
}
