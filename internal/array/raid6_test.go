package array

import (
	"testing"
	"time"
)

func TestRAID6Conservation(t *testing.T) {
	for _, mode := range []Mode{RAID6, AFRAID6} {
		cfg := DefaultConfig(mode)
		tr := smallWriteTrace(200, 20*time.Millisecond, 0, cfg.Geometry.Capacity())
		m := mustRun(t, cfg, tr)
		if m.Completed != uint64(len(tr.Records)) {
			t.Fatalf("%v: completed %d/%d", mode, m.Completed, len(tr.Records))
		}
	}
}

func TestRAID6SlowerThanRAID5(t *testing.T) {
	// §5: RAID 6 "pays an even higher penalty for doing small updates
	// than does RAID 5" — six I/Os vs four.
	cfg6 := DefaultConfig(RAID6)
	tr := smallWriteTrace(400, 15*time.Millisecond, 0, cfg6.Geometry.Capacity())
	m6 := mustRun(t, cfg6, tr)
	m5 := mustRun(t, DefaultConfig(RAID5), tr)
	if m6.MeanIOTime <= m5.MeanIOTime {
		t.Fatalf("RAID6 %v not slower than RAID5 %v", m6.MeanIOTime, m5.MeanIOTime)
	}
}

func TestAFRAID6DeferQBetweenRAID6AndDeferBoth(t *testing.T) {
	cfg := DefaultConfig(AFRAID6)
	tr := smallWriteTrace(400, 15*time.Millisecond, time.Second, cfg.Geometry.Capacity())

	m6 := mustRun(t, DefaultConfig(RAID6), tr)

	dq := DefaultConfig(AFRAID6)
	dq.QDefer = DeferQ
	mq := mustRun(t, dq, tr)

	db := DefaultConfig(AFRAID6)
	db.QDefer = DeferBoth
	mb := mustRun(t, db, tr)

	// Deferring Q removes two of the six I/Os; deferring both removes
	// four more. Strict ordering must hold.
	if !(mb.MeanIOTime < mq.MeanIOTime && mq.MeanIOTime < m6.MeanIOTime) {
		t.Fatalf("ordering violated: defer-both %v, defer-q %v, raid6 %v",
			mb.MeanIOTime, mq.MeanIOTime, m6.MeanIOTime)
	}
}

func TestAFRAID6RebuildsDrainDirty(t *testing.T) {
	for _, q := range []QDeferPolicy{DeferQ, DeferBoth} {
		cfg := DefaultConfig(AFRAID6)
		cfg.QDefer = q
		tr := smallWriteTrace(50, 10*time.Millisecond, 5*time.Second, cfg.Geometry.Capacity())
		m := mustRun(t, cfg, tr)
		if m.DirtyAtEnd != 0 {
			t.Fatalf("%v: %d stripes still dirty", q, m.DirtyAtEnd)
		}
		if m.RebuiltStripes == 0 {
			t.Fatalf("%v: nothing rebuilt", q)
		}
		if m.FracUnprotected <= 0 || m.FracUnprotected >= 1 {
			t.Fatalf("%v: frac = %g", q, m.FracUnprotected)
		}
	}
}

func TestRAID6CapacitySmaller(t *testing.T) {
	c5 := DefaultConfig(RAID5).Geometry.Capacity()
	c6 := DefaultConfig(RAID6).Geometry.Capacity()
	if c6 >= c5 {
		t.Fatalf("RAID6 capacity %d not below RAID5 %d", c6, c5)
	}
}

func TestQDeferPolicyString(t *testing.T) {
	if DeferQ.String() != "defer-q" || DeferBoth.String() != "defer-both" {
		t.Fatal("policy names wrong")
	}
}
