package array

import (
	"time"

	"afraid/internal/sim"
	"afraid/internal/trace"
)

// RunTrace replays a trace against a fresh array built from cfg (open
// queueing: arrivals at trace timestamps regardless of completions,
// matching the paper's methodology) and returns the finalized metrics.
func RunTrace(cfg Config, tr *trace.Trace) (Metrics, error) {
	eng := sim.NewEngine()
	a, err := New(eng, cfg)
	if err != nil {
		return Metrics{}, err
	}
	for _, rec := range tr.Records {
		rec := rec
		eng.At(rec.Time, func() { a.Submit(rec) })
	}
	end := eng.Run()
	if d := tr.Duration(); d > end {
		end = d
	}
	return a.Metrics(end), nil
}

// Replay schedules trace submissions onto an existing engine/array pair
// (used by tests that need to co-schedule other events). The caller
// runs the engine and finalizes metrics.
func Replay(eng *sim.Engine, a *Array, tr *trace.Trace) {
	for _, rec := range tr.Records {
		rec := rec
		eng.At(rec.Time, func() { a.Submit(rec) })
	}
}

// RunNamed generates the named catalog workload with the given duration
// and seed, scaled to the array's capacity, and replays it.
func RunNamed(cfg Config, workload string, duration time.Duration, seed uint64) (Metrics, error) {
	p, err := trace.Lookup(workload, duration)
	if err != nil {
		return Metrics{}, err
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return Metrics{}, err
	}
	tr, err := trace.Generate(p, cfg.Geometry.Capacity(), sim.NewRNG(seed))
	if err != nil {
		return Metrics{}, err
	}
	return RunTrace(cfg, tr)
}
