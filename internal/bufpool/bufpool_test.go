package bufpool

import "testing"

func TestGetLengthAndClass(t *testing.T) {
	for _, n := range []int{1, 511, 512, 513, 4096, 8192, 8193, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		if cap(b)&(cap(b)-1) != 0 {
			t.Fatalf("Get(%d): cap %d not a power of two", n, cap(b))
		}
		Put(b)
	}
}

func TestGetZeroIsZeroed(t *testing.T) {
	b := Get(4096)
	for i := range b {
		b[i] = 0xff
	}
	Put(b)
	z := GetZero(4096)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZero: byte %d = %#x", i, v)
		}
	}
	Put(z)
}

func TestGetZeroLen(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	Put(nil) // must not panic
}

func TestOversizeFallsBack(t *testing.T) {
	n := (1 << 20) + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("len = %d", len(b))
	}
	Put(b) // dropped, not pooled; must not panic
}

func TestPutForeignBuffer(t *testing.T) {
	Put(make([]byte, 100)) // cap not a pooled class: dropped
	Put(make([]byte, 512, 600))
}

func TestRoundTripReuse(t *testing.T) {
	// Not guaranteed by sync.Pool, but overwhelmingly likely within one
	// goroutine without GC: the same backing array comes back.
	b := Get(8192)
	b[0] = 42
	Put(b)
	c := Get(8192)
	defer Put(c)
	if cap(c) != 8192 {
		t.Fatalf("cap = %d", cap(c))
	}
}

func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds allocations; assertion only holds in normal builds")
	}
	// Warm the class, then Get/Put must not allocate.
	Put(Get(8192))
	n := testing.AllocsPerRun(100, func() {
		b := Get(8192)
		Put(b)
	})
	if n > 0 {
		t.Fatalf("Get/Put allocates %v per op in steady state", n)
	}
}
