// Package bufpool is the store's buffer arena: size-classed sync.Pools
// for the []byte scratch blocks the data path churns through — stripe
// units in the scrubber and RMW write paths, reconstruction scratch in
// the recovery paths, and per-request read buffers in the network
// server. Steady-state users allocate nothing: every Get after warmup
// is a recycled buffer.
//
// Buffers are classed by capacity rounded up to a power of two between
// minClass and maxClass; requests outside that range fall back to plain
// allocation (Put drops them). Get returns a buffer of exactly the
// requested length with arbitrary contents; GetZero returns it zeroed,
// for callers that fold into an accumulator or publish the buffer as
// "reconstructed zeros".
package bufpool

import (
	"math/bits"
	"sync"
)

const (
	minShift = 9  // 512 B — smallest pooled class
	maxShift = 20 // 1 MiB — largest pooled class
	classes  = maxShift - minShift + 1
)

var pools [classes]sync.Pool

// classFor returns the pool index for a capacity, or -1 when the size
// is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxShift {
		return -1
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2(n))
	if shift < minShift {
		shift = minShift
	}
	return shift - minShift
}

// Get returns a buffer with len == n. Its contents are arbitrary —
// callers that read before writing must use GetZero.
func Get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := pools[c].Get(); v != nil {
		w := v.(*buf)
		b := w.b
		w.b = nil
		wrapPool.Put(w)
		return b[:n]
	}
	return make([]byte, n, 1<<(c+minShift))
}

// GetZero returns a zeroed buffer with len == n.
func GetZero(n int) []byte {
	b := Get(n)
	clear(b)
	return b
}

// buf wraps the slice so Put stores a pointer-shaped value and the
// sync.Pool interface conversion does not allocate.
type buf struct{ b []byte }

var wrapPool = sync.Pool{New: func() any { return new(buf) }}

// Put recycles a buffer obtained from Get/GetZero. The caller must not
// touch b afterwards. Buffers whose capacity is not an exact pooled
// class (including foreign buffers) are dropped, so Put is always safe.
func Put(b []byte) {
	c := capClass(cap(b))
	if c < 0 {
		return
	}
	w := wrapPool.Get().(*buf)
	w.b = b[:cap(b)]
	pools[c].Put(w)
}

// capClass maps an exact power-of-two capacity to its class, or -1.
func capClass(c int) int {
	if c < 1<<minShift || c > 1<<maxShift || c&(c-1) != 0 {
		return -1
	}
	return bits.Len(uint(c)) - 1 - minShift
}
