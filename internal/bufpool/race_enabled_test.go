//go:build race

package bufpool

// raceEnabled gates allocation assertions: the race detector adds
// bookkeeping allocations around sync.Pool, so allocs/op checks only
// hold in normal builds.
const raceEnabled = true
