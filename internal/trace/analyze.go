package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// BurstStats summarizes the burst/idle structure of a trace — the
// property AFRAID exploits ("real-life workloads really are bursty").
// A burst is a maximal run of requests whose inter-arrival gaps stay
// below the gap threshold.
type BurstStats struct {
	GapThreshold time.Duration

	Requests int
	Bursts   int
	// MeanBurstLen is the mean number of requests per burst.
	MeanBurstLen float64
	// MeanIntraGap is the mean inter-arrival time within bursts.
	MeanIntraGap time.Duration
	// Idle-gap distribution (gaps >= GapThreshold).
	IdleGaps    int
	MeanIdleGap time.Duration
	P50IdleGap  time.Duration
	P95IdleGap  time.Duration
	MaxIdleGap  time.Duration
	// IdleFrac is the fraction of the trace duration spent in idle
	// gaps — the paper's headroom for parity rebuilds.
	IdleFrac float64
	// WriteFrac is the write fraction of all requests.
	WriteFrac float64
	// MeanRate is requests per second over the whole trace.
	MeanRate float64
	// BurstRate is requests per second within bursts (the load the
	// array must absorb while a burst lasts).
	BurstRate float64
}

// Analyze computes burst statistics with the given gap threshold
// (<= 0 selects 250 ms, several times the catalog's intra-burst gaps).
func (t *Trace) Analyze(gapThreshold time.Duration) BurstStats {
	if gapThreshold <= 0 {
		gapThreshold = 250 * time.Millisecond
	}
	s := BurstStats{GapThreshold: gapThreshold, Requests: len(t.Records)}
	if len(t.Records) == 0 {
		return s
	}

	var (
		idleGaps  []time.Duration
		idleTotal time.Duration
		intraSum  time.Duration
		intraN    int
		writes    int
	)
	s.Bursts = 1
	for i, r := range t.Records {
		if r.Write {
			writes++
		}
		if i == 0 {
			continue
		}
		gap := r.Time - t.Records[i-1].Time
		if gap >= gapThreshold {
			s.Bursts++
			idleGaps = append(idleGaps, gap)
			idleTotal += gap
		} else {
			intraSum += gap
			intraN++
		}
	}

	s.MeanBurstLen = float64(s.Requests) / float64(s.Bursts)
	if intraN > 0 {
		s.MeanIntraGap = intraSum / time.Duration(intraN)
	}
	s.IdleGaps = len(idleGaps)
	if len(idleGaps) > 0 {
		sort.Slice(idleGaps, func(i, j int) bool { return idleGaps[i] < idleGaps[j] })
		s.MeanIdleGap = idleTotal / time.Duration(len(idleGaps))
		s.P50IdleGap = idleGaps[len(idleGaps)/2]
		s.P95IdleGap = idleGaps[int(0.95*float64(len(idleGaps)-1))]
		s.MaxIdleGap = idleGaps[len(idleGaps)-1]
	}
	dur := t.Duration()
	if dur > 0 {
		s.IdleFrac = float64(idleTotal) / float64(dur)
		s.MeanRate = float64(s.Requests) / dur.Seconds()
	}
	s.WriteFrac = float64(writes) / float64(s.Requests)
	busy := dur - idleTotal
	if busy > 0 {
		s.BurstRate = float64(s.Requests) / busy.Seconds()
	}
	return s
}

// String renders the statistics.
func (s BurstStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests      %d (%.0f%% writes, %.1f/s overall, %.1f/s in bursts)\n",
		s.Requests, 100*s.WriteFrac, s.MeanRate, s.BurstRate)
	fmt.Fprintf(&b, "bursts        %d (mean %.1f requests, intra-gap %v)\n",
		s.Bursts, s.MeanBurstLen, s.MeanIntraGap.Round(time.Millisecond))
	fmt.Fprintf(&b, "idle gaps     %d >= %v: mean %v, p50 %v, p95 %v, max %v\n",
		s.IdleGaps, s.GapThreshold,
		s.MeanIdleGap.Round(time.Millisecond),
		s.P50IdleGap.Round(time.Millisecond),
		s.P95IdleGap.Round(time.Millisecond),
		s.MaxIdleGap.Round(time.Millisecond))
	fmt.Fprintf(&b, "idle fraction %.1f%% of the trace\n", 100*s.IdleFrac)
	return b.String()
}
