package trace

import (
	"strings"
	"testing"
	"time"
)

func TestAnalyzeSimpleTrace(t *testing.T) {
	// Two bursts of 3 requests at 10ms spacing, separated by 1s.
	tr := &Trace{}
	times := []time.Duration{
		0, 10 * time.Millisecond, 20 * time.Millisecond,
		1020 * time.Millisecond, 1030 * time.Millisecond, 1040 * time.Millisecond,
	}
	for i, at := range times {
		tr.Records = append(tr.Records, Record{Time: at, Write: i%2 == 0, Offset: 0, Length: 4096})
	}
	s := tr.Analyze(250 * time.Millisecond)
	if s.Bursts != 2 {
		t.Fatalf("bursts = %d, want 2", s.Bursts)
	}
	if s.MeanBurstLen != 3 {
		t.Fatalf("mean burst len = %g, want 3", s.MeanBurstLen)
	}
	if s.IdleGaps != 1 || s.MaxIdleGap != time.Second {
		t.Fatalf("idle gaps = %d max %v", s.IdleGaps, s.MaxIdleGap)
	}
	if s.MeanIntraGap != 10*time.Millisecond {
		t.Fatalf("intra gap = %v", s.MeanIntraGap)
	}
	// Idle fraction: 1s of 1.04s.
	if s.IdleFrac < 0.9 || s.IdleFrac > 1.0 {
		t.Fatalf("idle frac = %g", s.IdleFrac)
	}
	if s.WriteFrac != 0.5 {
		t.Fatalf("write frac = %g", s.WriteFrac)
	}
	if out := s.String(); !strings.Contains(out, "bursts") {
		t.Fatal("String output missing")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	s := (&Trace{}).Analyze(0)
	if s.Requests != 0 || s.Bursts != 0 {
		t.Fatalf("empty trace stats: %+v", s)
	}
}

func TestCatalogBurstCharacter(t *testing.T) {
	// The catalog's qualitative ordering must survive analysis: the
	// bursty traces spend most of their time idle; att the least.
	idleFrac := map[string]float64{}
	for _, name := range Names() {
		tr := genNamed(t, name, 2*time.Minute, 9)
		idleFrac[name] = tr.Analyze(0).IdleFrac
	}
	if idleFrac["hplajw"] < 0.7 {
		t.Errorf("hplajw idle fraction %.2f, want mostly idle", idleFrac["hplajw"])
	}
	if idleFrac["att"] > idleFrac["hplajw"] {
		t.Errorf("att idler (%.2f) than hplajw (%.2f)", idleFrac["att"], idleFrac["hplajw"])
	}
	if idleFrac["att"] > 0.8 {
		t.Errorf("att idle fraction %.2f, want clearly the busiest trace", idleFrac["att"])
	}
	if idleFrac["hplajw"]-idleFrac["att"] < 0.15 {
		t.Errorf("att (%.2f) not clearly busier than hplajw (%.2f)", idleFrac["att"], idleFrac["hplajw"])
	}
	// Burst-local rates exceed overall rates everywhere (burstiness).
	for _, name := range Names() {
		tr := genNamed(t, name, time.Minute, 5)
		s := tr.Analyze(0)
		if s.BurstRate <= s.MeanRate {
			t.Errorf("%s: burst rate %.1f not above mean rate %.1f", name, s.BurstRate, s.MeanRate)
		}
	}
}
