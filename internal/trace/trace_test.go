package trace

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"afraid/internal/sim"
)

const testCapacity = 8 << 30 // 8 GB client space (5x2GB RAID 5)

func genNamed(t *testing.T, name string, d time.Duration, seed uint64) *Trace {
	t.Helper()
	p, err := Lookup(name, d)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(p, testCapacity, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateAllCatalogWorkloads(t *testing.T) {
	for _, name := range Names() {
		tr := genNamed(t, name, 30*time.Second, 1)
		if len(tr.Records) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if err := tr.Validate(testCapacity); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genNamed(t, "cello-usr", 20*time.Second, 42)
	b := genNamed(t, "cello-usr", 20*time.Second, 42)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := genNamed(t, "cello-usr", 20*time.Second, 43)
	if len(a.Records) == len(c.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestWorkloadCharacterOrdering(t *testing.T) {
	// The catalog must preserve the paper's qualitative ordering:
	// hplajw is the quietest, att/netware the busiest and most
	// write-heavy.
	d := 60 * time.Second
	rates := map[string]float64{}
	writeFracs := map[string]float64{}
	for _, name := range Names() {
		s := genNamed(t, name, d, 7).Stats()
		rates[name] = s.MeanRate
		writeFracs[name] = s.WriteFrac
	}
	if !(rates["hplajw"] < rates["cello-usr"] && rates["cello-usr"] < rates["att"]) {
		t.Fatalf("rate ordering violated: %v", rates)
	}
	if !(rates["snake"] < rates["netware"]) {
		t.Fatalf("snake %v should be quieter than netware %v", rates["snake"], rates["netware"])
	}
	if writeFracs["att"] < 0.8 {
		t.Fatalf("att write fraction %v, want >= 0.8", writeFracs["att"])
	}
	if writeFracs["snake"] > 0.5 {
		t.Fatalf("snake write fraction %v, want < 0.5", writeFracs["snake"])
	}
}

func TestBurstyWorkloadsHaveLongIdles(t *testing.T) {
	// hplajw must spend most of its time in long idle gaps; att must
	// spend almost none.
	longIdleFrac := func(tr *Trace, min time.Duration) float64 {
		var long time.Duration
		for i := 1; i < len(tr.Records); i++ {
			if gap := tr.Records[i].Time - tr.Records[i-1].Time; gap > min {
				long += gap
			}
		}
		d := tr.Duration()
		if d == 0 {
			return 0
		}
		return float64(long) / float64(d)
	}
	quiet := genNamed(t, "hplajw", 2*time.Minute, 3)
	busy := genNamed(t, "att", 2*time.Minute, 3)
	qf := longIdleFrac(quiet, 2*time.Second)
	bf := longIdleFrac(busy, 2*time.Second)
	if qf < 0.5 {
		t.Fatalf("hplajw spends only %.2f of its time in >2s gaps, want mostly idle", qf)
	}
	if bf > qf/2 {
		t.Fatalf("att long-idle fraction %.2f not clearly below hplajw %.2f", bf, qf)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := genNamed(t, "snake", 10*time.Second, 5)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q, want %q", got.Name, tr.Name)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("count %d, want %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		// Times are stored in whole microseconds.
		if a.Time.Truncate(time.Microsecond) != b.Time || a.Write != b.Write ||
			a.Offset != b.Offset || a.Length != b.Length {
			t.Fatalf("record %d: %+v != %+v", i, a, b)
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	cases := []string{
		"12 X 0 4096\n",
		"not a record\n",
		"12 R 0\n",
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("malformed input %q accepted", c)
		}
	}
}

func TestCodecRejectsUnordered(t *testing.T) {
	in := "100 R 0 4096\n50 W 4096 4096\n"
	if _, err := Read(bytes.NewBufferString(in)); err == nil {
		t.Fatal("unordered trace accepted")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	tr := &Trace{Name: "x", Records: []Record{{Time: 0, Offset: 0, Length: 4096}}}
	if err := tr.Validate(1 << 20); err != nil {
		t.Fatal(err)
	}
	tr.Records = append(tr.Records, Record{Time: time.Second, Offset: 1<<20 - 1, Length: 4096})
	if err := tr.Validate(1 << 20); err == nil {
		t.Fatal("out-of-bounds record accepted")
	}
	tr2 := &Trace{Records: []Record{{Time: 0, Offset: 0, Length: 0}}}
	if err := tr2.Validate(1 << 20); err == nil {
		t.Fatal("zero-length record accepted")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nosuch", 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestParamsValidation(t *testing.T) {
	p, _ := Lookup("att", 0)
	bad := p
	bad.Sizes = []SizeProb{{4096, 0.5}} // doesn't sum to 1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad size distribution accepted")
	}
	bad = p
	bad.MeanBurst = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero burst accepted")
	}
	bad = p
	bad.FootprintFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("footprint > 1 accepted")
	}
}

func TestGeneratedRecordsInBounds(t *testing.T) {
	prop := func(seed uint64) bool {
		p, _ := Lookup("as400-2", 10*time.Second)
		tr, err := Generate(p, testCapacity, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		return tr.Validate(testCapacity) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsComputation(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Time: 0, Write: false, Offset: 0, Length: 4096},
		{Time: time.Second, Write: true, Offset: 8192, Length: 8192},
	}}
	s := tr.Stats()
	if s.Requests != 2 || s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesRead != 4096 || s.BytesWritten != 8192 {
		t.Fatalf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.MeanSize != 6144 || s.WriteFrac != 0.5 {
		t.Fatalf("mean size %d, write frac %g", s.MeanSize, s.WriteFrac)
	}
	if s.MeanRate != 2.0 {
		t.Fatalf("rate = %g", s.MeanRate)
	}
}
