// Package trace defines the I/O trace model driving the simulator, a
// text codec for traces, and synthetic workload generators that stand in
// for the proprietary HP and IBM traces used in the paper (hplajw,
// snake, cello-usr, cello-news, netware, ATT, AS400-1..4).
//
// The generators are open-loop ON/OFF burst processes: bursts of
// closely-spaced requests separated by heavy-tailed idle periods, the
// structure [Ruemmler93] documents for these systems and the property
// AFRAID exploits. Each named workload is a parameterization chosen to
// match the published qualitative character of the original trace; see
// DESIGN.md for the substitution rationale.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"afraid/internal/sim"
)

// Record is a single trace I/O.
type Record struct {
	Time   time.Duration // arrival time relative to trace start
	Write  bool
	Offset int64 // byte address in the array's client space
	Length int64 // bytes
}

// Trace is a time-ordered sequence of records.
type Trace struct {
	Name    string
	Records []Record
}

// Duration returns the arrival time of the last record.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time
}

// Validate checks time ordering and bounds against a capacity.
func (t *Trace) Validate(capacity int64) error {
	var prev time.Duration
	for i, r := range t.Records {
		if r.Time < prev {
			return fmt.Errorf("trace %s: record %d time %v before %v", t.Name, i, r.Time, prev)
		}
		if r.Length <= 0 {
			return fmt.Errorf("trace %s: record %d non-positive length %d", t.Name, i, r.Length)
		}
		if r.Offset < 0 || r.Offset+r.Length > capacity {
			return fmt.Errorf("trace %s: record %d range [%d,%d) outside capacity %d",
				t.Name, i, r.Offset, r.Offset+r.Length, capacity)
		}
		prev = r.Time
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	Requests      int
	Reads, Writes int
	BytesRead     int64
	BytesWritten  int64
	Duration      time.Duration
	MeanSize      int64
	WriteFrac     float64
	// MeanRate is requests per second over the trace duration.
	MeanRate float64
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Requests = len(t.Records)
	var bytes int64
	for _, r := range t.Records {
		bytes += r.Length
		if r.Write {
			s.Writes++
			s.BytesWritten += r.Length
		} else {
			s.Reads++
			s.BytesRead += r.Length
		}
	}
	s.Duration = t.Duration()
	if s.Requests > 0 {
		s.MeanSize = bytes / int64(s.Requests)
		s.WriteFrac = float64(s.Writes) / float64(s.Requests)
	}
	if s.Duration > 0 {
		s.MeanRate = float64(s.Requests) / s.Duration.Seconds()
	}
	return s
}

// Write encodes the trace in the text format:
//
//	# afraid-trace v1 name=<name>
//	<time_us> <R|W> <offset> <length>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# afraid-trace v1 name=%s\n", t.Name); err != nil {
		return err
	}
	for _, r := range t.Records {
		op := byte('R')
		if r.Write {
			op = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%d %c %d %d\n", r.Time.Microseconds(), op, r.Offset, r.Length); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace from the text format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		if text[0] == '#' {
			var name string
			if n, _ := fmt.Sscanf(text, "# afraid-trace v1 name=%s", &name); n == 1 {
				t.Name = name
			}
			continue
		}
		var us, off, length int64
		var op string
		if n, err := fmt.Sscanf(text, "%d %s %d %d", &us, &op, &off, &length); n != 4 || err != nil {
			return nil, fmt.Errorf("trace: line %d: malformed record %q", line, text)
		}
		var write bool
		switch op {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, op)
		}
		t.Records = append(t.Records, Record{
			Time:   time.Duration(us) * time.Microsecond,
			Write:  write,
			Offset: off,
			Length: length,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sort.SliceIsSorted(t.Records, func(i, j int) bool { return t.Records[i].Time < t.Records[j].Time }) {
		return nil, fmt.Errorf("trace: records not time-ordered")
	}
	return t, nil
}

// SizeProb is one entry of a discrete request-size distribution.
type SizeProb struct {
	Bytes int64
	Prob  float64
}

// Params parameterizes a synthetic ON/OFF burst workload.
type Params struct {
	Name string
	// Duration is the length of trace to generate.
	Duration time.Duration
	// MeanBurst is the mean number of requests per burst (geometric).
	MeanBurst float64
	// IntraGap is the mean inter-arrival time within a burst
	// (exponential).
	IntraGap time.Duration
	// IdleMin and IdleAlpha shape the Pareto inter-burst idle period.
	IdleMin   time.Duration
	IdleAlpha float64
	// WriteFrac is the probability a request is a write.
	WriteFrac float64
	// Sizes is the request-size distribution (probabilities sum to 1).
	Sizes []SizeProb
	// SeqProb is the probability a request continues sequentially from
	// the previous one in the same burst.
	SeqProb float64
	// FootprintFrac is the fraction of capacity the workload touches.
	FootprintFrac float64
	// HotSkew is the Zipf skew over footprint blocks (0 = uniform).
	HotSkew float64
	// Align is the address alignment (typically the FS block size).
	Align int64
	// SessionBursts, when positive, adds a second timescale of
	// burstiness: after a mean of SessionBursts bursts, a long
	// inter-session gap (Pareto with SessionGapMin/SessionGapAlpha) is
	// inserted. Real day-long traces show exactly this multi-scale
	// structure [Ruemmler93] — think editor saves within a working
	// session, sessions separated by meetings and nights.
	SessionBursts   float64
	SessionGapMin   time.Duration
	SessionGapAlpha float64
}

// Validate reports whether the parameters are self-consistent.
func (p Params) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("trace: %s: non-positive duration", p.Name)
	}
	if p.MeanBurst < 1 {
		return fmt.Errorf("trace: %s: mean burst %g must be >= 1", p.Name, p.MeanBurst)
	}
	if p.IntraGap < 0 || p.IdleMin <= 0 || p.IdleAlpha <= 0 {
		return fmt.Errorf("trace: %s: invalid gap parameters", p.Name)
	}
	if p.WriteFrac < 0 || p.WriteFrac > 1 || p.SeqProb < 0 || p.SeqProb > 1 {
		return fmt.Errorf("trace: %s: probabilities out of range", p.Name)
	}
	if len(p.Sizes) == 0 {
		return fmt.Errorf("trace: %s: no size distribution", p.Name)
	}
	total := 0.0
	for _, s := range p.Sizes {
		if s.Bytes <= 0 || s.Prob < 0 {
			return fmt.Errorf("trace: %s: bad size entry %+v", p.Name, s)
		}
		total += s.Prob
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("trace: %s: size probabilities sum to %g", p.Name, total)
	}
	if p.FootprintFrac <= 0 || p.FootprintFrac > 1 {
		return fmt.Errorf("trace: %s: footprint fraction %g out of (0,1]", p.Name, p.FootprintFrac)
	}
	if p.Align <= 0 {
		return fmt.Errorf("trace: %s: alignment %d must be positive", p.Name, p.Align)
	}
	if p.SessionBursts < 0 {
		return fmt.Errorf("trace: %s: negative session burst count", p.Name)
	}
	if p.SessionBursts > 0 && (p.SessionGapMin <= 0 || p.SessionGapAlpha <= 0) {
		return fmt.Errorf("trace: %s: sessions require gap parameters", p.Name)
	}
	return nil
}

// Generate synthesizes a trace against an array of the given client
// capacity using the provided RNG. Identical seeds yield identical
// traces.
func Generate(p Params, capacity int64, rng *sim.RNG) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if capacity <= p.Align {
		return nil, fmt.Errorf("trace: capacity %d too small", capacity)
	}
	footprint := int64(float64(capacity) * p.FootprintFrac)
	footprint -= footprint % p.Align
	if footprint < p.Align*16 {
		footprint = p.Align * 16
	}
	if footprint > capacity {
		footprint = capacity - capacity%p.Align
	}
	blocks := footprint / p.Align

	var hot *sim.Zipf
	if p.HotSkew > 0 {
		// Cap the Zipf table size; map table entries onto block ranges.
		n := int(blocks)
		if n > 4096 {
			n = 4096
		}
		hot = sim.NewZipf(rng, n, p.HotSkew)
	}

	maxSize := int64(0)
	for _, s := range p.Sizes {
		if s.Bytes > maxSize {
			maxSize = s.Bytes
		}
	}

	pickSize := func() int64 {
		u := rng.Float64()
		acc := 0.0
		for _, s := range p.Sizes {
			acc += s.Prob
			if u < acc {
				return s.Bytes
			}
		}
		return p.Sizes[len(p.Sizes)-1].Bytes
	}
	pickOffset := func(size int64) int64 {
		var blk int64
		if hot != nil {
			zone := int64(hot.Next())
			tableN := int64(4096)
			if blocks < tableN {
				tableN = blocks
			}
			// Spread each zone over blocks/tableN consecutive blocks.
			span := blocks / tableN
			if span < 1 {
				span = 1
			}
			blk = zone*span + rng.Int63n(span)
		} else {
			blk = rng.Int63n(blocks)
		}
		off := blk * p.Align
		if off+size > footprint {
			off = footprint - size
			off -= off % p.Align
			if off < 0 {
				off = 0
			}
		}
		return off
	}

	t := &Trace{Name: p.Name}
	now := rng.ExpDuration(p.IdleMin) // random start offset so traces don't all begin at 0
	var prevEnd int64 = -1
	for now < p.Duration {
		burst := rng.Geometric(p.MeanBurst)
		for i := 0; i < burst && now < p.Duration; i++ {
			size := pickSize()
			var off int64
			if prevEnd >= 0 && rng.Bool(p.SeqProb) && prevEnd+size <= footprint {
				off = prevEnd
			} else {
				off = pickOffset(size)
			}
			prevEnd = off + size
			t.Records = append(t.Records, Record{
				Time:   now,
				Write:  rng.Bool(p.WriteFrac),
				Offset: off,
				Length: size,
			})
			now += rng.ExpDuration(p.IntraGap)
		}
		prevEnd = -1
		now += rng.ParetoDuration(p.IdleMin, p.IdleAlpha)
		if p.SessionBursts > 0 && rng.Bool(1/p.SessionBursts) {
			now += rng.ParetoDuration(p.SessionGapMin, p.SessionGapAlpha)
		}
	}
	return t, nil
}
