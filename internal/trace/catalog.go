package trace

import (
	"fmt"
	"sort"
	"time"
)

// The catalog parameterizes one synthetic workload per trace in the
// paper's evaluation. The originals are proprietary (HP internal traces
// described in [Ruemmler93] and IBM AS400 traces from Bruce McNutt), so
// each entry reproduces the published qualitative character instead:
//
//   - hplajw: single-user HP-UX workstation (email/editing) — very low
//     rate, long idle periods, write-dominated (the paper notes personal
//     systems are mostly writes because reads hit the file buffer cache).
//   - snake: HP-UX cluster file server at UC Berkeley — bursty,
//     read-leaning small I/O with long idles.
//   - cello-usr: timesharing root//usr//users disks — moderate bursty load.
//   - cello-news: the Usenet news disk — half of all cello I/Os, small
//     write-heavy accesses on a compact footprint, fewer idle periods.
//   - netware: an intensive database-loading benchmark on a Novell
//     server — sustained, write-dominated, partly sequential.
//   - att: a production telephone-company database — sustained random
//     small writes, the busiest workload (highest parity-lag exposure).
//   - as400-1..4: four production IBM AS400 commercial systems —
//     medium-to-heavy mixed random I/O with decreasing intensity.
//
// Rates are scaled to a 5-disk array of ~2 GB disks so that the busiest
// workloads approach (but do not saturate) the RAID 5 small-write
// capacity, matching the paper's regime where RAID 5 queues grow during
// bursts but drain between them.

// fsSizes is a file-system-like request size mix (4-64 KB).
var fsSizes = []SizeProb{
	{4 << 10, 0.35},
	{8 << 10, 0.40},
	{16 << 10, 0.15},
	{32 << 10, 0.07},
	{64 << 10, 0.03},
}

// dbSizes is a database-like size mix (2-8 KB records).
var dbSizes = []SizeProb{
	{2 << 10, 0.40},
	{4 << 10, 0.40},
	{8 << 10, 0.20},
}

// catalog returns the named parameter sets with the given duration.
func catalog(d time.Duration) map[string]Params {
	return map[string]Params{
		"hplajw": {
			Name: "hplajw", Duration: d,
			MeanBurst: 40, IntraGap: 8 * time.Millisecond,
			IdleMin: 4 * time.Second, IdleAlpha: 1.25,
			WriteFrac: 0.60, Sizes: fsSizes, SeqProb: 0.30,
			SessionBursts: 12, SessionGapMin: 15 * time.Second, SessionGapAlpha: 1.4,
			FootprintFrac: 0.05, HotSkew: 0.9, Align: 4 << 10,
		},
		"snake": {
			Name: "snake", Duration: d,
			MeanBurst: 45, IntraGap: 8 * time.Millisecond,
			IdleMin: 2500 * time.Millisecond, IdleAlpha: 1.3,
			WriteFrac: 0.40, Sizes: fsSizes, SeqProb: 0.35,
			SessionBursts: 12, SessionGapMin: 12 * time.Second, SessionGapAlpha: 1.4,
			FootprintFrac: 0.15, HotSkew: 0.9, Align: 4 << 10,
		},
		"cello-usr": {
			Name: "cello-usr", Duration: d,
			MeanBurst: 40, IntraGap: 9 * time.Millisecond,
			IdleMin: 1200 * time.Millisecond, IdleAlpha: 1.35,
			WriteFrac: 0.45, Sizes: fsSizes, SeqProb: 0.25,
			SessionBursts: 12, SessionGapMin: 10 * time.Second, SessionGapAlpha: 1.5,
			FootprintFrac: 0.30, HotSkew: 0.8, Align: 4 << 10,
		},
		"cello-news": {
			Name: "cello-news", Duration: d,
			MeanBurst: 30, IntraGap: 8 * time.Millisecond,
			IdleMin: 650 * time.Millisecond, IdleAlpha: 1.38,
			WriteFrac: 0.75, Sizes: dbSizes, SeqProb: 0.15,
			SessionBursts: 14, SessionGapMin: 8 * time.Second, SessionGapAlpha: 1.5,
			FootprintFrac: 0.10, HotSkew: 1.0, Align: 2 << 10,
		},
		"netware": {
			Name: "netware", Duration: d,
			MeanBurst: 40, IntraGap: 8 * time.Millisecond,
			IdleMin: 600 * time.Millisecond, IdleAlpha: 1.4,
			WriteFrac: 0.80, Sizes: dbSizes, SeqProb: 0.50,
			SessionBursts: 14, SessionGapMin: 8 * time.Second, SessionGapAlpha: 1.5,
			FootprintFrac: 0.20, HotSkew: 0.6, Align: 2 << 10,
		},
		"att": {
			Name: "att", Duration: d,
			MeanBurst: 35, IntraGap: 10 * time.Millisecond,
			IdleMin: 250 * time.Millisecond, IdleAlpha: 1.55,
			WriteFrac: 0.90, Sizes: dbSizes, SeqProb: 0.05,
			FootprintFrac: 0.04, HotSkew: 1.1, Align: 2 << 10,
		},
		"as400-1": {
			Name: "as400-1", Duration: d,
			MeanBurst: 35, IntraGap: 10 * time.Millisecond,
			IdleMin: 550 * time.Millisecond, IdleAlpha: 1.45,
			WriteFrac: 0.60, Sizes: dbSizes, SeqProb: 0.15,
			SessionBursts: 14, SessionGapMin: 8 * time.Second, SessionGapAlpha: 1.5,
			FootprintFrac: 0.40, HotSkew: 0.8, Align: 4 << 10,
		},
		"as400-2": {
			Name: "as400-2", Duration: d,
			MeanBurst: 40, IntraGap: 9 * time.Millisecond,
			IdleMin: 900 * time.Millisecond, IdleAlpha: 1.4,
			WriteFrac: 0.55, Sizes: dbSizes, SeqProb: 0.15,
			SessionBursts: 12, SessionGapMin: 10 * time.Second, SessionGapAlpha: 1.5,
			FootprintFrac: 0.40, HotSkew: 0.8, Align: 4 << 10,
		},
		"as400-3": {
			Name: "as400-3", Duration: d,
			MeanBurst: 35, IntraGap: 9 * time.Millisecond,
			IdleMin: 1800 * time.Millisecond, IdleAlpha: 1.3,
			WriteFrac: 0.50, Sizes: dbSizes, SeqProb: 0.20,
			SessionBursts: 12, SessionGapMin: 12 * time.Second, SessionGapAlpha: 1.4,
			FootprintFrac: 0.35, HotSkew: 0.8, Align: 4 << 10,
		},
		"as400-4": {
			Name: "as400-4", Duration: d,
			MeanBurst: 45, IntraGap: 8 * time.Millisecond,
			IdleMin: 800 * time.Millisecond, IdleAlpha: 1.45,
			WriteFrac: 0.45, Sizes: dbSizes, SeqProb: 0.15,
			SessionBursts: 14, SessionGapMin: 8 * time.Second, SessionGapAlpha: 1.5,
			FootprintFrac: 0.45, HotSkew: 0.8, Align: 4 << 10,
		},
	}
}

// DefaultDuration is the default synthetic trace length. The paper used
// one-day trace subsets; five minutes of the scaled synthetic load gives
// the same burst/idle structure at tractable simulation cost.
const DefaultDuration = 5 * time.Minute

// Names returns the workload names in the paper's presentation order.
func Names() []string {
	return []string{
		"hplajw", "snake", "cello-usr", "cello-news", "netware",
		"att", "as400-1", "as400-2", "as400-3", "as400-4",
	}
}

// Lookup returns the parameter set for a named workload with the given
// trace duration (d <= 0 selects DefaultDuration).
func Lookup(name string, d time.Duration) (Params, error) {
	if d <= 0 {
		d = DefaultDuration
	}
	p, ok := catalog(d)[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return Params{}, fmt.Errorf("trace: unknown workload %q (known: %v)", name, known)
	}
	return p, nil
}
