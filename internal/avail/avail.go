// Package avail implements the paper's analytic availability models
// (§3): mean time to data loss (MTTDL) and mean data loss rate (MDLR)
// for RAID 5, RAID 0, and AFRAID, plus the support-component, NVRAM, and
// external-power models that dominate real arrays.
//
// Conventions: times are in hours, data in bytes (decimal units, as the
// paper's "2GB disk" arithmetic assumes), rates in bytes/hour. The
// AFRAID-specific inputs — the fraction of time any data is unprotected
// (Tunprot/Ttotal) and the mean parity lag in bytes — are measured by
// the simulator and fed in here.
package avail

import (
	"fmt"
	"math"
)

// HoursPerYear converts between the paper's units.
const HoursPerYear = 8760.0

// Params carries the Table 1 constants plus the array shape.
type Params struct {
	// DiskMTTFRaw is the manufacturer disk MTTF in hours (1M).
	DiskMTTFRaw float64
	// Coverage is the fraction of disk failures predicted in advance
	// (C = 0.5): predicted failures are repaired before they bite.
	Coverage float64
	// MTTR is the repair time in hours (48).
	MTTR float64
	// SupportMTTDL is the aggregated non-disk MTTDL in hours (2M).
	SupportMTTDL float64
	// Disks is the total number of disks including parity (5).
	Disks int
	// DiskSize is the per-disk capacity in bytes (2 GB decimal).
	DiskSize float64
	// StripeUnit is the stripe unit size in bytes (8 KB).
	StripeUnit float64
}

// Default returns the paper's Table 1 values for the 5-disk array.
func Default() Params {
	return Params{
		DiskMTTFRaw:  1e6,
		Coverage:     0.5,
		MTTR:         48,
		SupportMTTDL: 2e6,
		Disks:        5,
		DiskSize:     2e9,
		StripeUnit:   8192,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.DiskMTTFRaw <= 0 || p.MTTR <= 0 || p.SupportMTTDL <= 0 {
		return fmt.Errorf("avail: non-positive time parameter")
	}
	if p.Coverage < 0 || p.Coverage >= 1 {
		return fmt.Errorf("avail: coverage %g must be in [0,1)", p.Coverage)
	}
	if p.Disks < 2 {
		return fmt.Errorf("avail: need at least 2 disks, have %d", p.Disks)
	}
	if p.DiskSize <= 0 || p.StripeUnit <= 0 {
		return fmt.Errorf("avail: non-positive size parameter")
	}
	return nil
}

// DiskMTTF returns the effective disk MTTF after failure-prediction
// coverage: MTTFdisk = MTTFdisk-raw / (1 - C).
func (p Params) DiskMTTF() float64 { return p.DiskMTTFRaw / (1 - p.Coverage) }

// N returns the number of data disks (the paper's N; the array has N+1).
func (p Params) N() int { return p.Disks - 1 }

// DataCapacity returns the client-visible bytes of the RAID 5 array.
func (p Params) DataCapacity() float64 { return float64(p.N()) * p.DiskSize }

// RAID5CatastrophicMTTDL implements equation (1):
//
//	MTTDL = MTTFdisk^2 / (N (N+1) MTTR)
func (p Params) RAID5CatastrophicMTTDL() float64 {
	n := float64(p.N())
	mttf := p.DiskMTTF()
	return mttf * mttf / (n * (n + 1) * p.MTTR)
}

// RAID5CatastrophicMDLR implements equation (3): two disks of data lost
// (discounted by the parity fraction) at the catastrophic rate.
func (p Params) RAID5CatastrophicMDLR() float64 {
	n := float64(p.N())
	return 2 * p.DiskSize * (n / (n + 1)) / p.RAID5CatastrophicMTTDL()
}

// RAID0DiskMTTDL returns the disk-related MTTDL of an unprotected array:
// any single disk failure loses data, so MTTFdisk/(N+1).
func (p Params) RAID0DiskMTTDL() float64 {
	return p.DiskMTTF() / float64(p.Disks)
}

// RAID0MDLR returns the unprotected array's data loss rate: one disk's
// worth of data at the all-disks failure rate.
func (p Params) RAID0MDLR() float64 {
	return p.DiskSize / p.RAID0DiskMTTDL() // = Disks * DiskSize / MTTF
}

// AFRAIDUnprotectedMTTDL implements equation (2a): the contribution of
// single-disk failures while unprotected data exists. fracUnprot is
// Tunprot/Ttotal, measured from a run. A zero fraction yields +Inf
// (no exposure).
func (p Params) AFRAIDUnprotectedMTTDL(fracUnprot float64) float64 {
	if fracUnprot < 0 || fracUnprot > 1 {
		panic(fmt.Sprintf("avail: unprotected fraction %g out of [0,1]", fracUnprot))
	}
	if fracUnprot == 0 {
		return math.Inf(1)
	}
	return (1 / fracUnprot) * p.DiskMTTF() / float64(p.Disks)
}

// AFRAIDRAIDMTTDL implements equation (2b): the catastrophic dual-disk
// contribution, scaled to the fraction of time the array is fully
// protected.
func (p Params) AFRAIDRAIDMTTDL(fracUnprot float64) float64 {
	if fracUnprot >= 1 {
		return math.Inf(1) // never fully protected: no RAID-mode exposure
	}
	return p.RAID5CatastrophicMTTDL() / (1 - fracUnprot)
}

// AFRAIDDiskMTTDL implements equation (2c): the harmonic combination of
// (2a) and (2b).
func (p Params) AFRAIDDiskMTTDL(fracUnprot float64) float64 {
	return Combine(p.AFRAIDUnprotectedMTTDL(fracUnprot), p.AFRAIDRAIDMTTDL(fracUnprot))
}

// MDLRUnprotected implements equation (4): the loss rate from single-
// disk failures given the measured mean parity lag in bytes.
//
//	MDLR = (lag/N) * (N+1)/MTTFdisk
func (p Params) MDLRUnprotected(meanParityLag float64) float64 {
	if meanParityLag < 0 {
		panic(fmt.Sprintf("avail: negative parity lag %g", meanParityLag))
	}
	n := float64(p.N())
	return (meanParityLag / n) * (n + 1) / p.DiskMTTF()
}

// AFRAIDMDLR implements equation (5): catastrophic plus unprotected
// contributions.
func (p Params) AFRAIDMDLR(meanParityLag float64) float64 {
	return p.RAID5CatastrophicMDLR() + p.MDLRUnprotected(meanParityLag)
}

// SupportMDLR returns the loss rate implied by support-component
// failures, which destroy the whole array's data.
func (p Params) SupportMDLR() float64 {
	return p.DataCapacity() / p.SupportMTTDL
}

// Combine returns the harmonic combination of independent MTTDL
// components (rates add): 1 / sum(1/m_i). Infinite components are
// ignored; combining nothing returns +Inf.
func Combine(mttdls ...float64) float64 {
	rate := 0.0
	for _, m := range mttdls {
		if m <= 0 {
			panic(fmt.Sprintf("avail: non-positive MTTDL %g", m))
		}
		if !math.IsInf(m, 1) {
			rate += 1 / m
		}
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// OverallMTTDL combines a disk-related MTTDL with the support hardware.
func (p Params) OverallMTTDL(diskMTTDL float64) float64 {
	return Combine(diskMTTDL, p.SupportMTTDL)
}

// ProbLossWithin returns the probability of at least one data loss in
// the given number of hours for a process with the given MTTDL,
// assuming exponentially distributed failures.
func ProbLossWithin(hours, mttdl float64) float64 {
	if mttdl <= 0 {
		panic(fmt.Sprintf("avail: non-positive MTTDL %g", mttdl))
	}
	if math.IsInf(mttdl, 1) {
		return 0
	}
	return 1 - math.Exp(-hours/mttdl)
}

// Power models external power failures (§3.5).
type Power struct {
	// MainsMTTF is the mean time between power failures (4300 h).
	MainsMTTF float64
	// UPSMTTF, when positive, substitutes an uninterruptible supply
	// (200k h for a high-grade unit).
	UPSMTTF float64
	// WriteDuty is the fraction of time writes are outstanding; a
	// power failure is only harmful then (paper uses 10%).
	WriteDuty float64
	// LossBytes is the data corrupted per harmful power failure
	// (in-flight writes; ~30 KB doubles the RAID 5 MDLR as in §3.5).
	LossBytes float64
}

// DefaultPower returns the paper's §3.5 values.
func DefaultPower() Power {
	return Power{MainsMTTF: 4300, UPSMTTF: 0, WriteDuty: 0.10, LossBytes: 30e3}
}

// MTTDL returns the power-related MTTDL: failures are harmful only
// during the write duty cycle.
func (pw Power) MTTDL() float64 {
	if pw.WriteDuty <= 0 {
		return math.Inf(1)
	}
	mttf := pw.MainsMTTF
	if pw.UPSMTTF > 0 {
		mttf = pw.UPSMTTF
	}
	return mttf / pw.WriteDuty
}

// MDLR returns the power-related loss rate.
func (pw Power) MDLR() float64 {
	m := pw.MTTDL()
	if math.IsInf(m, 1) {
		return 0
	}
	return pw.LossBytes / m
}

// NVRAMMDLR returns the loss rate of a single-copy NVRAM holding
// vulnerable bytes with the given MTTF (§3.4: the PrestoServe example is
// 1 MB at 15k hours => 67 bytes/hour).
func NVRAMMDLR(vulnerableBytes, mttf float64) float64 {
	if mttf <= 0 {
		panic(fmt.Sprintf("avail: non-positive NVRAM MTTF %g", mttf))
	}
	return vulnerableBytes / mttf
}

// Report bundles the derived availability figures for one measured run.
type Report struct {
	FracUnprotected float64 // Tunprot / Ttotal
	MeanParityLag   float64 // bytes

	DiskMTTDL    float64 // disk-related MTTDL (hours)
	OverallMTTDL float64 // including support components
	DiskMDLR     float64 // bytes/hour from disk failures
	OverallMDLR  float64 // including support components
}

// AFRAIDReport derives the full availability report from measured
// Tunprot/Ttotal and mean parity lag.
func (p Params) AFRAIDReport(fracUnprot, meanParityLag float64) Report {
	disk := p.AFRAIDDiskMTTDL(fracUnprot)
	return Report{
		FracUnprotected: fracUnprot,
		MeanParityLag:   meanParityLag,
		DiskMTTDL:       disk,
		OverallMTTDL:    p.OverallMTTDL(disk),
		DiskMDLR:        p.AFRAIDMDLR(meanParityLag),
		OverallMDLR:     p.AFRAIDMDLR(meanParityLag) + p.SupportMDLR(),
	}
}

// RAID5Report derives the figures for a conventional RAID 5 (zero lag,
// never unprotected).
func (p Params) RAID5Report() Report {
	disk := p.RAID5CatastrophicMTTDL()
	return Report{
		DiskMTTDL:    disk,
		OverallMTTDL: p.OverallMTTDL(disk),
		DiskMDLR:     p.RAID5CatastrophicMDLR(),
		OverallMDLR:  p.RAID5CatastrophicMDLR() + p.SupportMDLR(),
	}
}

// RAID0Report derives the figures for the unprotected array.
func (p Params) RAID0Report() Report {
	disk := p.RAID0DiskMTTDL()
	return Report{
		FracUnprotected: 1,
		DiskMTTDL:       disk,
		OverallMTTDL:    p.OverallMTTDL(disk),
		DiskMDLR:        p.RAID0MDLR(),
		OverallMDLR:     p.RAID0MDLR() + p.SupportMDLR(),
	}
}
