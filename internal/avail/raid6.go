package avail

import "math"

// RAID 6 / AFRAID6 analytics for the §5 extension. The array has N
// data disks plus P and Q (Disks = N+2 here; Params.Disks counts all
// spindles, so N = Disks-2 for these functions).

// n6 returns the data-disk count of a RAID 6 array with p.Disks
// spindles.
func (p Params) n6() float64 { return float64(p.Disks - 2) }

// RAID6CatastrophicMTTDL returns the mean time to a triple-disk failure
// (the only disk-related loss mode of a healthy RAID 6):
//
//	MTTF^3 / (N (N+1) (N+2) MTTR^2)
func (p Params) RAID6CatastrophicMTTDL() float64 {
	n := p.n6()
	mttf := p.DiskMTTF()
	return mttf * mttf * mttf / (n * (n + 1) * (n + 2) * p.MTTR * p.MTTR)
}

// RAID6CatastrophicMDLR returns the loss rate of the triple-failure
// mode: three disks of data (discounted by the two-parity overhead).
func (p Params) RAID6CatastrophicMDLR() float64 {
	n := p.n6()
	return 3 * p.DiskSize * (n / (n + 2)) / p.RAID6CatastrophicMTTDL()
}

// doubleFailureMTTDL returns the mean time to a double-disk failure of
// the whole array (the loss mode of a RAID 6 stripe whose Q is stale —
// it is then only single-failure tolerant, like RAID 5):
//
//	MTTF^2 / ((N+1) (N+2) MTTR)
func (p Params) doubleFailureMTTDL() float64 {
	n := p.n6()
	mttf := p.DiskMTTF()
	return mttf * mttf / ((n + 1) * (n + 2) * p.MTTR)
}

// AFRAID6DiskMTTDL combines the exposure modes of an AFRAID6 array
// measured to be not-fully-redundant for fraction fracUnprot of the
// time:
//
//   - deferBoth=false (Q deferred): dirty stripes are RAID 5-grade, so
//     the exposed fraction contributes at the double-failure rate;
//   - deferBoth=true: dirty stripes are unprotected, so the exposed
//     fraction contributes at the any-single-disk rate, as in eq (2a).
//
// The protected fraction contributes at the RAID 6 triple-failure rate.
func (p Params) AFRAID6DiskMTTDL(fracUnprot float64, deferBoth bool) float64 {
	if fracUnprot < 0 || fracUnprot > 1 {
		panic("avail: unprotected fraction out of [0,1]")
	}
	var exposed float64
	if deferBoth {
		exposed = p.DiskMTTF() / float64(p.Disks) // single failure bites
	} else {
		exposed = p.doubleFailureMTTDL()
	}
	var comps []float64
	if fracUnprot > 0 {
		comps = append(comps, exposed/fracUnprot)
	}
	if fracUnprot < 1 {
		comps = append(comps, p.RAID6CatastrophicMTTDL()/(1-fracUnprot))
	}
	if len(comps) == 0 {
		return math.Inf(1)
	}
	return Combine(comps...)
}

// MDLR6Unprotected returns the loss rate from the measured mean parity
// lag of an AFRAID6 array (bytes of not-fully-redundant data):
//
//   - deferBoth=true: one strip per dirty stripe is lost on any single
//     disk failure — eq (4) with N+2 spindles;
//   - deferBoth=false: loss additionally requires a second failure
//     within the repair window.
func (p Params) MDLR6Unprotected(meanParityLag float64, deferBoth bool) float64 {
	if meanParityLag < 0 {
		panic("avail: negative parity lag")
	}
	n := p.n6()
	perStripeLoss := meanParityLag / n
	if deferBoth {
		return perStripeLoss * (n + 2) / p.DiskMTTF()
	}
	return perStripeLoss / p.doubleFailureMTTDL()
}

// AFRAID6Report derives the availability report for an AFRAID6 run.
func (p Params) AFRAID6Report(fracUnprot, meanParityLag float64, deferBoth bool) Report {
	disk := p.AFRAID6DiskMTTDL(fracUnprot, deferBoth)
	mdlr := p.RAID6CatastrophicMDLR() + p.MDLR6Unprotected(meanParityLag, deferBoth)
	return Report{
		FracUnprotected: fracUnprot,
		MeanParityLag:   meanParityLag,
		DiskMTTDL:       disk,
		OverallMTTDL:    p.OverallMTTDL(disk),
		DiskMDLR:        mdlr,
		OverallMDLR:     mdlr + p.SupportMDLR(),
	}
}
