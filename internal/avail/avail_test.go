package avail

import (
	"math"
	"testing"
	"testing/quick"
)

// within reports whether got is within frac relative error of want.
func within(got, want, frac float64) bool {
	return math.Abs(got-want) <= frac*math.Abs(want)
}

func TestPaperSection31RAID5MTTDL(t *testing.T) {
	// "With a 5-disk array, and the parameters of Table 1, this gives a
	// theoretical MTTDL of ~4·10^9 hours, or about 475,000 years."
	p := Default()
	got := p.RAID5CatastrophicMTTDL()
	if !within(got, 4.1667e9, 0.01) {
		t.Fatalf("RAID5 MTTDL = %.4g h, want ~4.17e9", got)
	}
	years := got / HoursPerYear
	if !within(years, 475000, 0.01) {
		t.Fatalf("RAID5 MTTDL = %.0f years, want ~475,000", years)
	}
}

func TestCoverageDoublesDiskMTTF(t *testing.T) {
	p := Default()
	if p.DiskMTTF() != 2e6 {
		t.Fatalf("effective disk MTTF = %g, want 2e6 (1M raw / (1-0.5))", p.DiskMTTF())
	}
}

func TestPaperSection32RAID5MDLR(t *testing.T) {
	// "The RAID 5 array we considered earlier would have a MDLR of
	// ~0.8 bytes/hour from this failure mode."
	p := Default()
	got := p.RAID5CatastrophicMDLR()
	if !within(got, 0.8, 0.05) {
		t.Fatalf("RAID5 MDLR = %g B/h, want ~0.8", got)
	}
}

func TestPaperSection33SupportMDLR(t *testing.T) {
	// "With a 2M hour MTTDL, our 5-disk array would suffer a MDLR of
	// 4.0KB/hour; using the 150k hour figure would increase this to
	// 53KB/hour."
	p := Default()
	if got := p.SupportMDLR(); !within(got, 4000, 0.01) {
		t.Fatalf("support MDLR = %g B/h, want 4.0 KB/h", got)
	}
	p.SupportMTTDL = 150e3
	if got := p.SupportMDLR(); !within(got, 53333, 0.01) {
		t.Fatalf("support MDLR = %g B/h, want ~53 KB/h", got)
	}
}

func TestPaperIntroLifetimeLossProbability(t *testing.T) {
	// "An aggregate MTTDL of a million hours (114 years) translates
	// into only a 2.6% likelihood of any data loss at all during a
	// typical 3-year array lifetime."
	if years := 1e6 / HoursPerYear; !within(years, 114, 0.01) {
		t.Fatalf("1M hours = %g years, want ~114", years)
	}
	got := ProbLossWithin(3*HoursPerYear, 1e6)
	if !within(got, 0.026, 0.02) {
		t.Fatalf("3-year loss probability = %g, want ~2.6%%", got)
	}
}

func TestPaperSection35PowerFailure(t *testing.T) {
	// "a 10% write duty cycle on a 5-disk RAID 5 gives a MTTDL of only
	// 43k hours due to external power failures" and a high-grade UPS
	// "returns the MTTDL for the array's external power components to
	// 2M hours".
	pw := DefaultPower()
	if got := pw.MTTDL(); !within(got, 43000, 0.01) {
		t.Fatalf("power MTTDL = %g h, want 43k", got)
	}
	// "The effect on MDLR is roughly to double it (0.7 bytes/hour)".
	if got := pw.MDLR(); !within(got, 0.7, 0.05) {
		t.Fatalf("power MDLR = %g B/h, want ~0.7", got)
	}
	pw.UPSMTTF = 200e3
	if got := pw.MTTDL(); !within(got, 2e6, 0.01) {
		t.Fatalf("UPS power MTTDL = %g h, want 2M", got)
	}
}

func TestPaperSection34NVRAM(t *testing.T) {
	// "the popular PrestoServe card has a predicted MTTF of 15k hours;
	// with 1MB of vulnerable data, this corresponds to an MDLR of 67
	// bytes/hour."
	got := NVRAMMDLR(1e6, 15e3)
	if !within(got, 66.7, 0.01) {
		t.Fatalf("PrestoServe MDLR = %g B/h, want ~67", got)
	}
}

func TestPaperSection36SingleDiskMDLR(t *testing.T) {
	// "If it held 2GB, its mean data loss rate would be 2-4KB/hour"
	// for a disk with MTTF 0.5-1M hours.
	lo := 2e9 / 1e6
	hi := 2e9 / 0.5e6
	if lo != 2000 || hi != 4000 {
		t.Fatalf("single-disk MDLR range = %g-%g, want 2000-4000", lo, hi)
	}
}

func TestAFRAIDUnprotectedMTTDLBehaviour(t *testing.T) {
	p := Default()
	// Never unprotected: infinite exposure-free MTTDL.
	if !math.IsInf(p.AFRAIDUnprotectedMTTDL(0), 1) {
		t.Fatal("zero unprotected fraction should give +Inf")
	}
	// Always unprotected: reduces to RAID 0's disk MTTDL.
	if got, want := p.AFRAIDUnprotectedMTTDL(1), p.RAID0DiskMTTDL(); !within(got, want, 1e-9) {
		t.Fatalf("always-unprotected MTTDL = %g, want RAID0 %g", got, want)
	}
	// Example: unprotected 1% of the time => 100x RAID 0.
	if got, want := p.AFRAIDUnprotectedMTTDL(0.01), 100*p.RAID0DiskMTTDL(); !within(got, want, 1e-9) {
		t.Fatalf("1%%-unprotected MTTDL = %g, want %g", got, want)
	}
}

func TestAFRAIDCombinedBetweenRAID0AndRAID5(t *testing.T) {
	p := Default()
	prop := func(raw float64) bool {
		f := math.Abs(raw)
		f -= math.Floor(f) // [0,1)
		got := p.AFRAIDDiskMTTDL(f)
		return got <= p.RAID5CatastrophicMTTDL()+1 && got >= p.RAID0DiskMTTDL()-1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAFRAIDMTTDLMonotoneInExposure(t *testing.T) {
	p := Default()
	prev := math.Inf(1)
	for f := 0.0; f <= 1.0; f += 0.05 {
		got := p.AFRAIDDiskMTTDL(f)
		if got > prev {
			t.Fatalf("MTTDL increased with exposure at f=%g", f)
		}
		prev = got
	}
}

func TestMDLRUnprotectedEquation4(t *testing.T) {
	p := Default()
	// lag of 1 MB: (1e6/4) * 5/2e6 = 0.625 B/h.
	got := p.MDLRUnprotected(1e6)
	if !within(got, 0.625, 1e-9) {
		t.Fatalf("MDLRunprot(1MB) = %g, want 0.625", got)
	}
	if p.MDLRUnprotected(0) != 0 {
		t.Fatal("zero lag should give zero MDLR")
	}
}

func TestCombineHarmonic(t *testing.T) {
	if got := Combine(2e6, 2e6); !within(got, 1e6, 1e-9) {
		t.Fatalf("Combine(2M,2M) = %g, want 1M", got)
	}
	if got := Combine(math.Inf(1), 5e5); !within(got, 5e5, 1e-9) {
		t.Fatalf("Combine(Inf,500k) = %g, want 500k", got)
	}
	if !math.IsInf(Combine(), 1) {
		t.Fatal("Combine() should be +Inf")
	}
}

func TestCombineNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive MTTDL did not panic")
		}
	}()
	Combine(0)
}

func TestOverallDominatedBySupport(t *testing.T) {
	// §3.3's lesson: support components determine availability. RAID 5
	// overall MTTDL must be within a hair of the 2M-hour support limit.
	p := Default()
	got := p.RAID5Report().OverallMTTDL
	if got > p.SupportMTTDL {
		t.Fatalf("overall MTTDL %g exceeds support limit %g", got, p.SupportMTTDL)
	}
	if got < 0.999*p.SupportMTTDL {
		t.Fatalf("overall MTTDL %g not support-dominated (support %g)", got, p.SupportMTTDL)
	}
}

func TestReportsRelativeOrdering(t *testing.T) {
	p := Default()
	r5 := p.RAID5Report()
	r0 := p.RAID0Report()
	// A moderately-exposed AFRAID.
	af := p.AFRAIDReport(0.2, 2e6)
	if !(r0.OverallMTTDL < af.OverallMTTDL && af.OverallMTTDL < r5.OverallMTTDL) {
		t.Fatalf("MTTDL ordering violated: raid0=%g afraid=%g raid5=%g",
			r0.OverallMTTDL, af.OverallMTTDL, r5.OverallMTTDL)
	}
	if !(r5.DiskMDLR <= af.DiskMDLR && af.DiskMDLR < r0.DiskMDLR) {
		t.Fatalf("MDLR ordering violated: raid5=%g afraid=%g raid0=%g",
			r5.DiskMDLR, af.DiskMDLR, r0.DiskMDLR)
	}
}

func TestTable3ShapeMDLRTiny(t *testing.T) {
	// "with the exception of the heavy load from the ATT trace,
	// MDLRunprotected contributes less than one byte per hour" — a lag
	// below ~1.6 MB keeps equation (4) under 1 B/h for these params.
	p := Default()
	if got := p.MDLRUnprotected(1.5e6); got >= 1 {
		t.Fatalf("MDLRunprot(1.5MB) = %g, want < 1 B/h", got)
	}
	if got := p.MDLRUnprotected(5e6); got <= 1 {
		t.Fatalf("MDLRunprot(5MB) = %g, want > 1 B/h (ATT-like)", got)
	}
}

func TestValidate(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Coverage = 1.0
	if err := bad.Validate(); err == nil {
		t.Fatal("coverage=1 accepted")
	}
	bad = p
	bad.Disks = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 disk accepted")
	}
	bad = p
	bad.MTTR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero MTTR accepted")
	}
}

func TestProbLossWithinProperties(t *testing.T) {
	prop := func(rawH, rawM float64) bool {
		h := math.Abs(rawH)
		m := math.Abs(rawM) + 1
		p := ProbLossWithin(h, m)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if ProbLossWithin(100, math.Inf(1)) != 0 {
		t.Fatal("infinite MTTDL should give zero probability")
	}
}
