package avail

import (
	"math"
	"testing"
)

func TestRAID6MTTDLAstronomical(t *testing.T) {
	p := Default() // 5 disks: N=3 data + P + Q
	got := p.RAID6CatastrophicMTTDL()
	// (2e6)^3 / (3*4*5*48^2) ≈ 5.8e13 hours.
	want := math.Pow(2e6, 3) / (3 * 4 * 5 * 48 * 48)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("RAID6 MTTDL = %g, want %g", got, want)
	}
	if got <= p.RAID5CatastrophicMTTDL() {
		t.Fatal("RAID6 not safer than RAID5")
	}
}

func TestAFRAID6DeferQSaferThanDeferBoth(t *testing.T) {
	p := Default()
	for _, frac := range []float64{0.05, 0.3, 0.9} {
		dq := p.AFRAID6DiskMTTDL(frac, false)
		db := p.AFRAID6DiskMTTDL(frac, true)
		if dq <= db {
			t.Fatalf("frac=%g: defer-q MTTDL %g not above defer-both %g", frac, dq, db)
		}
	}
}

func TestAFRAID6Boundaries(t *testing.T) {
	p := Default()
	if got := p.AFRAID6DiskMTTDL(0, false); got != p.RAID6CatastrophicMTTDL() {
		t.Fatalf("zero exposure should give pure RAID6 MTTDL, got %g", got)
	}
	// Fully exposed defer-both: reduces to the any-single-disk rate.
	if got, want := p.AFRAID6DiskMTTDL(1, true), p.DiskMTTF()/float64(p.Disks); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("fully exposed defer-both = %g, want %g", got, want)
	}
	// Fully exposed defer-q: reduces to the double-failure MTTDL, which
	// still beats plain RAID 5's (same formula, same disks).
	got := p.AFRAID6DiskMTTDL(1, false)
	if math.Abs(got-p.doubleFailureMTTDL()) > 1e-6*got {
		t.Fatalf("fully exposed defer-q = %g, want %g", got, p.doubleFailureMTTDL())
	}
}

func TestAFRAID6MonotoneInExposure(t *testing.T) {
	p := Default()
	for _, deferBoth := range []bool{false, true} {
		prev := math.Inf(1)
		for f := 0.0; f <= 1.0; f += 0.1 {
			got := p.AFRAID6DiskMTTDL(f, deferBoth)
			if got > prev {
				t.Fatalf("deferBoth=%v: MTTDL rose with exposure at f=%g", deferBoth, f)
			}
			prev = got
		}
	}
}

func TestMDLR6DeferQTiny(t *testing.T) {
	p := Default()
	// With Q deferred, loss needs a double failure: the MDLR from a
	// given lag must be orders of magnitude below the defer-both case.
	lag := 5e6
	dq := p.MDLR6Unprotected(lag, false)
	db := p.MDLR6Unprotected(lag, true)
	if dq*1000 > db {
		t.Fatalf("defer-q MDLR %g not well below defer-both %g", dq, db)
	}
	if p.MDLR6Unprotected(0, false) != 0 || p.MDLR6Unprotected(0, true) != 0 {
		t.Fatal("zero lag should give zero MDLR")
	}
}

func TestAFRAID6ReportOrdering(t *testing.T) {
	p := Default()
	dq := p.AFRAID6Report(0.3, 2e6, false)
	db := p.AFRAID6Report(0.3, 2e6, true)
	if dq.OverallMTTDL <= db.OverallMTTDL {
		t.Fatalf("defer-q overall %g not above defer-both %g", dq.OverallMTTDL, db.OverallMTTDL)
	}
	if dq.DiskMDLR >= db.DiskMDLR {
		t.Fatalf("defer-q MDLR %g not below defer-both %g", dq.DiskMDLR, db.DiskMDLR)
	}
	// Both still support-limited overall.
	if dq.OverallMTTDL > p.SupportMTTDL {
		t.Fatal("overall MTTDL exceeds support limit")
	}
}
