package idle

import (
	"testing"
	"time"
)

func TestTimerDefault(t *testing.T) {
	if NewTimer(0).Delay() != DefaultDelay {
		t.Fatal("zero delay should select the paper's 100ms default")
	}
	if NewTimer(50*time.Millisecond).Delay() != 50*time.Millisecond {
		t.Fatal("explicit delay ignored")
	}
	d := NewTimer(0)
	d.Observe(true) // must be a no-op
	if d.Delay() != DefaultDelay {
		t.Fatal("timer detector adapted")
	}
}

func TestAdaptiveBackoff(t *testing.T) {
	a := NewAdaptive(10*time.Millisecond, 100*time.Millisecond, time.Second)
	a.Observe(true)
	if a.Delay() != 200*time.Millisecond {
		t.Fatalf("after interrupt delay = %v, want 200ms", a.Delay())
	}
	a.Observe(false)
	a.Observe(false)
	if a.Delay() != 50*time.Millisecond {
		t.Fatalf("after two successes delay = %v, want 50ms", a.Delay())
	}
}

func TestAdaptiveBounds(t *testing.T) {
	a := NewAdaptive(10*time.Millisecond, 100*time.Millisecond, time.Second)
	for i := 0; i < 20; i++ {
		a.Observe(true)
	}
	if a.Delay() != time.Second {
		t.Fatalf("delay %v exceeded max", a.Delay())
	}
	for i := 0; i < 20; i++ {
		a.Observe(false)
	}
	if a.Delay() != 10*time.Millisecond {
		t.Fatalf("delay %v below min", a.Delay())
	}
}

func TestAdaptiveInvalidBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds did not panic")
		}
	}()
	NewAdaptive(100*time.Millisecond, 10*time.Millisecond, time.Second)
}

func TestTrackerIdleTransitions(t *testing.T) {
	var tr Tracker
	tr.Start(10 * time.Millisecond)
	if _, ok := tr.Idle(20 * time.Millisecond); ok {
		t.Fatal("idle while a request is outstanding")
	}
	tr.Start(15 * time.Millisecond)
	tr.End(30 * time.Millisecond)
	if _, ok := tr.Idle(40 * time.Millisecond); ok {
		t.Fatal("idle while one of two requests is outstanding")
	}
	tr.End(50 * time.Millisecond)
	d, ok := tr.Idle(80 * time.Millisecond)
	if !ok || d != 30*time.Millisecond {
		t.Fatalf("idle = %v,%v, want 30ms,true", d, ok)
	}
}

func TestTrackerEligibleAt(t *testing.T) {
	var tr Tracker
	det := NewTimer(100 * time.Millisecond)
	tr.Start(0)
	if _, ok := tr.EligibleAt(det); ok {
		t.Fatal("eligible while busy")
	}
	tr.End(25 * time.Millisecond)
	at, ok := tr.EligibleAt(det)
	if !ok || at != 125*time.Millisecond {
		t.Fatalf("eligible at %v,%v, want 125ms,true", at, ok)
	}
}

func TestTrackerEndWithoutStartPanics(t *testing.T) {
	var tr Tracker
	defer func() {
		if recover() == nil {
			t.Error("End without Start did not panic")
		}
	}()
	tr.End(0)
}

func TestPredictorWarmupUsesBase(t *testing.T) {
	p := NewPredictor(100 * time.Millisecond)
	if p.Delay() != 100*time.Millisecond {
		t.Fatalf("cold predictor delay = %v, want base", p.Delay())
	}
	// Fewer than 4 samples: still base.
	p.RecordIdlePeriod(5 * time.Millisecond)
	p.RecordIdlePeriod(5 * time.Millisecond)
	if p.Delay() != 100*time.Millisecond {
		t.Fatalf("warming predictor delay = %v, want base", p.Delay())
	}
}

func TestPredictorRaisesThresholdForShortIdles(t *testing.T) {
	p := NewPredictor(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		p.RecordIdlePeriod(150 * time.Millisecond) // short: below MinUseful (300ms)
	}
	d := p.Delay()
	if d <= 100*time.Millisecond {
		t.Fatalf("short-idle workload delay = %v, want above base", d)
	}
	if d > p.Max {
		t.Fatalf("delay %v exceeds max %v", d, p.Max)
	}
}

func TestPredictorKeepsBaseForLongIdles(t *testing.T) {
	p := NewPredictor(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		p.RecordIdlePeriod(2 * time.Second)
	}
	if p.Delay() != 100*time.Millisecond {
		t.Fatalf("long-idle workload delay = %v, want base", p.Delay())
	}
	if p.Predicted() != 2*time.Second {
		t.Fatalf("predicted = %v, want 2s", p.Predicted())
	}
}

func TestPredictorObserveInterruptedShrinksEstimate(t *testing.T) {
	p := NewPredictor(100 * time.Millisecond)
	for i := 0; i < 6; i++ {
		p.RecordIdlePeriod(time.Second)
	}
	before := p.Predicted()
	p.Observe(true)
	if p.Predicted() >= before {
		t.Fatalf("interruption did not shrink estimate: %v -> %v", before, p.Predicted())
	}
	p.Observe(false) // no-op
	if p.Name() != "predictor" {
		t.Fatal("name wrong")
	}
}

func TestPredictorEWMAConverges(t *testing.T) {
	p := NewPredictor(100 * time.Millisecond)
	p.RecordIdlePeriod(time.Second)
	for i := 0; i < 40; i++ {
		p.RecordIdlePeriod(100 * time.Millisecond)
	}
	got := p.Predicted()
	if got > 120*time.Millisecond || got < 90*time.Millisecond {
		t.Fatalf("EWMA = %v, want ~100ms", got)
	}
}
