// Package idle provides the idleness-detection policies that decide when
// AFRAID's background parity rebuild may start. The paper's default is a
// timer-based detector with a 100 ms threshold ("AFRAID started
// processing parity updates once the array had been completely idle for
// 100ms"); an adaptive backoff detector in the style of Golding et al.,
// "Idleness is not sloth" (USENIX 1995), is provided as an alternative.
package idle

import (
	"fmt"
	"time"
)

// DefaultDelay is the paper's idle-detection threshold.
const DefaultDelay = 100 * time.Millisecond

// Detector decides how long the array must be quiescent before
// background work may begin, and learns from the outcome of each
// background attempt.
type Detector interface {
	// Delay returns the current quiescence threshold.
	Delay() time.Duration
	// Observe reports the outcome of a background-work episode:
	// interrupted=true means foreground work arrived while the episode
	// was running (the idle prediction was wrong).
	Observe(interrupted bool)
	// Name identifies the detector.
	Name() string
}

// Timer is the fixed-threshold detector.
type Timer struct {
	D time.Duration
}

// NewTimer returns a Timer detector; d <= 0 selects DefaultDelay.
func NewTimer(d time.Duration) *Timer {
	if d <= 0 {
		d = DefaultDelay
	}
	return &Timer{D: d}
}

// Delay returns the fixed threshold.
func (t *Timer) Delay() time.Duration { return t.D }

// Observe is a no-op for the fixed detector.
func (t *Timer) Observe(bool) {}

// Name returns "timer".
func (t *Timer) Name() string { return "timer" }

// Adaptive is a multiplicative-increase / multiplicative-decrease
// backoff detector: being interrupted doubles the threshold (the array
// was not as idle as predicted), a completed episode halves it, within
// [Min, Max].
type Adaptive struct {
	Min, Max time.Duration
	cur      time.Duration
}

// NewAdaptive returns an adaptive detector starting at start, bounded to
// [min, max].
func NewAdaptive(min, start, max time.Duration) *Adaptive {
	if min <= 0 || start < min || max < start {
		panic(fmt.Sprintf("idle: invalid adaptive bounds min=%v start=%v max=%v", min, start, max))
	}
	return &Adaptive{Min: min, Max: max, cur: start}
}

// Delay returns the current threshold.
func (a *Adaptive) Delay() time.Duration { return a.cur }

// Observe adjusts the threshold based on the episode outcome.
func (a *Adaptive) Observe(interrupted bool) {
	if interrupted {
		a.cur *= 2
		if a.cur > a.Max {
			a.cur = a.Max
		}
	} else {
		a.cur /= 2
		if a.cur < a.Min {
			a.cur = a.Min
		}
	}
}

// Name returns "adaptive".
func (a *Adaptive) Name() string { return "adaptive" }

// Predictor is a moving-average idle-period predictor in the spirit of
// [Golding95]: it tracks an exponentially-weighted moving average of
// observed idle-period lengths and withholds background work when the
// current idle period is predicted to be too short to be useful. (The
// paper ran such a predictor but ignored its output, using the plain
// 100 ms timer; the ablation harness compares both.)
type Predictor struct {
	// Base is the minimum quiescence threshold (default 100 ms).
	Base time.Duration
	// MinUseful is the predicted idle length below which background
	// work is not worth starting (default 3x Base).
	MinUseful time.Duration
	// Max bounds the threshold growth (default 20x Base).
	Max time.Duration

	ewma    time.Duration
	samples int
}

// NewPredictor returns a predictor with the given base threshold
// (<= 0 selects DefaultDelay).
func NewPredictor(base time.Duration) *Predictor {
	if base <= 0 {
		base = DefaultDelay
	}
	return &Predictor{Base: base, MinUseful: 3 * base, Max: 20 * base}
}

// RecordIdlePeriod feeds the length of a completed idle period.
func (p *Predictor) RecordIdlePeriod(d time.Duration) {
	if p.samples == 0 {
		p.ewma = d
	} else {
		// EWMA with alpha = 1/4.
		p.ewma = (3*p.ewma + d) / 4
	}
	p.samples++
}

// Predicted returns the current idle-period length estimate.
func (p *Predictor) Predicted() time.Duration { return p.ewma }

// Delay returns the quiescence threshold: the base delay when idle
// periods are predicted long enough to be useful, otherwise a raised
// threshold that effectively skips the short idles.
func (p *Predictor) Delay() time.Duration {
	if p.samples < 4 || p.ewma >= p.MinUseful {
		return p.Base
	}
	// Predicted-short idle periods: require most of the predicted
	// length to elapse first, so only the tail of unusually long
	// periods triggers background work.
	d := p.ewma
	if d < p.Base {
		d = p.Base
	}
	if d > p.Max {
		d = p.Max
	}
	return d
}

// Observe implements Detector; an interruption means the prediction
// overestimated, so it drags the average down.
func (p *Predictor) Observe(interrupted bool) {
	if interrupted && p.samples > 0 {
		p.ewma = p.ewma * 3 / 4
	}
}

// Name returns "predictor".
func (p *Predictor) Name() string { return "predictor" }

// IdleRecorder is implemented by detectors that learn from completed
// idle-period lengths.
type IdleRecorder interface {
	RecordIdlePeriod(time.Duration)
}

// Tracker maintains the array's quiescence state: the number of
// outstanding foreground operations and the time the array last became
// idle. The simulator consults it to schedule the background task.
type Tracker struct {
	outstanding int
	idleSince   time.Duration
	everActive  bool
}

// Start records a foreground operation beginning at virtual time now.
func (t *Tracker) Start(now time.Duration) {
	t.outstanding++
	t.everActive = true
}

// End records a foreground operation completing at now.
func (t *Tracker) End(now time.Duration) {
	if t.outstanding <= 0 {
		panic("idle: End without Start")
	}
	t.outstanding--
	if t.outstanding == 0 {
		t.idleSince = now
	}
}

// Outstanding returns the number of in-flight foreground operations.
func (t *Tracker) Outstanding() int { return t.outstanding }

// Idle reports whether the array is quiescent at now and, if so, for how
// long it has been.
func (t *Tracker) Idle(now time.Duration) (time.Duration, bool) {
	if t.outstanding > 0 {
		return 0, false
	}
	return now - t.idleSince, true
}

// EligibleAt returns the earliest virtual time at which a detector with
// the given delay would allow background work, assuming no further
// foreground activity. ok is false while requests are outstanding.
func (t *Tracker) EligibleAt(d Detector) (time.Duration, bool) {
	if t.outstanding > 0 {
		return 0, false
	}
	return t.idleSince + d.Delay(), true
}
