package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func TestC3325Validates(t *testing.T) {
	p := C3325()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.CapacityBytes() < 2e9 {
		t.Fatalf("capacity = %d bytes, want >= 2GB (decimal, as marketed)", p.CapacityBytes())
	}
	if p.CapacityBytes() > 3<<30 {
		t.Fatalf("capacity = %d bytes, implausibly large for a C3325", p.CapacityBytes())
	}
}

func TestRotation5400RPM(t *testing.T) {
	p := C3325()
	rot := p.Rotation()
	want := time.Minute / 5400
	if rot != want {
		t.Fatalf("rotation = %v, want %v", rot, want)
	}
	if rot < 11*time.Millisecond || rot > 12*time.Millisecond {
		t.Fatalf("rotation = %v, want ~11.1ms", rot)
	}
}

func TestSeekCurveShape(t *testing.T) {
	p := C3325()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	one := p.SeekTime(1)
	if one < p.SeekSettle {
		t.Fatalf("single-cylinder seek %v below settle %v", one, p.SeekSettle)
	}
	prev := time.Duration(0)
	for d := 1; d < p.Cylinders(); d *= 2 {
		s := p.SeekTime(d)
		if s < prev {
			t.Fatalf("seek time decreased: seek(%d)=%v < %v", d, s, prev)
		}
		prev = s
	}
	max := p.MaxSeek()
	if max < 15*time.Millisecond || max > 30*time.Millisecond {
		t.Fatalf("full-stroke seek = %v, want 15-30ms for this class of drive", max)
	}
	avg := p.SeekTime(p.Cylinders() / 3)
	if avg < 7*time.Millisecond || avg > 14*time.Millisecond {
		t.Fatalf("avg-distance seek = %v, want ~10ms", avg)
	}
}

func TestLocateRoundTripOrdering(t *testing.T) {
	p := C3325()
	// Sequential sectors advance sector-then-head-then-cylinder.
	prev := p.Locate(0)
	if prev.Cyl != 0 || prev.Head != 0 || prev.Sector != 0 {
		t.Fatalf("sector 0 at %+v", prev)
	}
	for s := int64(1); s < 3000; s++ {
		cur := p.Locate(s)
		switch {
		case cur.Cyl == prev.Cyl && cur.Head == prev.Head:
			if cur.Sector != prev.Sector+1 {
				t.Fatalf("sector %d: discontinuous sector %+v after %+v", s, cur, prev)
			}
		case cur.Cyl == prev.Cyl:
			if cur.Head != prev.Head+1 || cur.Sector != 0 {
				t.Fatalf("sector %d: bad head advance %+v after %+v", s, cur, prev)
			}
		default:
			if cur.Cyl != prev.Cyl+1 || cur.Head != 0 || cur.Sector != 0 {
				t.Fatalf("sector %d: bad cylinder advance %+v after %+v", s, cur, prev)
			}
		}
		prev = cur
	}
}

func TestLocateZoneBoundaries(t *testing.T) {
	p := C3325()
	// Last sector of zone 0.
	z0 := int64(p.Zones[0].Cylinders) * int64(p.Heads) * int64(p.Zones[0].SectorsPerTrack)
	last := p.Locate(z0 - 1)
	if last.Cyl != p.Zones[0].Cylinders-1 || last.Spt != p.Zones[0].SectorsPerTrack {
		t.Fatalf("last zone-0 sector at %+v", last)
	}
	first := p.Locate(z0)
	if first.Cyl != p.Zones[0].Cylinders || first.Spt != p.Zones[1].SectorsPerTrack {
		t.Fatalf("first zone-1 sector at %+v", first)
	}
}

func TestLocateQuickInRange(t *testing.T) {
	p := C3325()
	capS := p.CapacitySectors()
	prop := func(raw int64) bool {
		s := raw % capS
		if s < 0 {
			s += capS
		}
		c := p.Locate(s)
		return c.Cyl >= 0 && c.Cyl < p.Cylinders() &&
			c.Head >= 0 && c.Head < p.Heads &&
			c.Sector >= 0 && c.Sector < c.Spt
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceTimeBounds(t *testing.T) {
	p := C3325()
	d := New(p, 0)
	maxOne := p.MaxSeek() + p.Rotation() + p.Rotation() + p.ControllerOverhead + p.WriteSettle + p.HeadSwitch
	now := time.Duration(0)
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 2000; i++ {
		off := int64(next()%uint64(p.CapacityBytes()-65536)) / SectorSize * SectorSize
		op := Op{Write: next()%2 == 0, Offset: off, Length: 8 << 10}
		st := d.ServiceTime(now, op)
		if st <= 0 {
			t.Fatalf("non-positive service time %v", st)
		}
		if st > maxOne+2*p.Rotation() {
			t.Fatalf("service time %v exceeds mechanical bound %v", st, maxOne)
		}
		now += st
	}
	stats := d.Stats()
	if stats.Ops != 2000 {
		t.Fatalf("ops = %d", stats.Ops)
	}
	if stats.Busy != now {
		t.Fatalf("busy %v != elapsed %v for back-to-back ops", stats.Busy, now)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	p := C3325()

	seq := New(p, 0)
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		now += seq.ServiceTime(now, Op{Offset: int64(i) * 8 << 10, Length: 8 << 10})
	}
	seqTotal := now

	rnd := New(p, 0)
	now = 0
	rng := uint64(999)
	for i := 0; i < 500; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		off := int64(rng%uint64(p.CapacityBytes()-16384)) / SectorSize * SectorSize
		now += rnd.ServiceTime(now, Op{Offset: off, Length: 8 << 10})
	}
	rndTotal := now

	// Without a track buffer each sequential op still pays a near-full
	// rotation (the controller overhead lets the next sector pass by),
	// so the gain is the saved seek: expect at least ~25% faster.
	if float64(seqTotal) >= 0.78*float64(rndTotal) {
		t.Fatalf("sequential %v not clearly faster than random %v", seqTotal, rndTotal)
	}
}

func TestRandomSmallIOAveragePlausible(t *testing.T) {
	// An 8KB random I/O on a 5400 RPM ~10ms-seek disk should average
	// roughly seek (~10ms) + half rotation (~5.6ms) + transfer (<1ms)
	// + overhead => 15-22ms.
	p := C3325()
	d := New(p, 0)
	now := time.Duration(0)
	rng := uint64(777)
	n := 2000
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		off := int64(rng%uint64(p.CapacityBytes()-16384)) / SectorSize * SectorSize
		now += d.ServiceTime(now, Op{Offset: off, Length: 8 << 10})
	}
	avg := now / time.Duration(n)
	if avg < 12*time.Millisecond || avg > 25*time.Millisecond {
		t.Fatalf("random 8KB average = %v, want 12-25ms", avg)
	}
}

func TestSameSectorRereadCostsFullRotation(t *testing.T) {
	p := C3325()
	d := New(p, 0)
	op := Op{Offset: 1 << 20, Length: 4 << 10}
	t0 := d.ServiceTime(0, op)
	// Immediately re-reading the same sectors requires ~a full rotation
	// (minus overhead absorbed into it).
	t1 := d.ServiceTime(t0, op)
	if t1 < p.Rotation()/2 {
		t.Fatalf("immediate re-read took %v, expected near a rotation (%v)", t1, p.Rotation())
	}
	if t1 > p.Rotation()+p.ControllerOverhead+p.HeadSwitch+2*time.Millisecond {
		t.Fatalf("re-read took %v, expected about one rotation", t1)
	}
}

func TestSpinSyncPhaseAffectsLatency(t *testing.T) {
	p := C3325()
	a := New(p, 0)
	b := New(p, p.Rotation()/2)
	// Same op at the same instant should see different rotational waits.
	ta := a.ServiceTime(0, Op{Offset: 0, Length: 4 << 10})
	tb := b.ServiceTime(0, Op{Offset: 0, Length: 4 << 10})
	if ta == tb {
		t.Fatal("phase offset had no effect on service time")
	}
}

func TestTrackCrossingTransfer(t *testing.T) {
	p := C3325()
	d := New(p, 0)
	spt := p.Zones[0].SectorsPerTrack
	trackBytes := int64(spt) * SectorSize
	// A transfer of three tracks must cost at least three rotations of
	// media time.
	st := d.ServiceTime(0, Op{Offset: 0, Length: 3 * trackBytes})
	if st < 3*p.Rotation() {
		t.Fatalf("3-track read took %v, below 3 rotations %v", st, 3*p.Rotation())
	}
	if st > 5*p.Rotation() {
		t.Fatalf("3-track read took %v, above 5 rotations (skew too costly)", st)
	}
}

func TestZeroLengthPanics(t *testing.T) {
	d := New(C3325(), 0)
	defer func() {
		if recover() == nil {
			t.Error("zero-length op did not panic")
		}
	}()
	d.ServiceTime(0, Op{Offset: 0, Length: 0})
}

func TestWriteSettleCostsItsMeanOverPhases(t *testing.T) {
	// The rotational wait absorbs fixed pre-transfer overheads except
	// when they push the head past the target sector, costing a whole
	// extra rotation. Averaged over uniformly distributed arrival
	// phases, that extra-rotation probability makes the mean cost of
	// WriteSettle equal WriteSettle itself.
	p := C3325()
	rot := p.Rotation()
	n := 500
	var sumR, sumW time.Duration
	for i := 0; i < n; i++ {
		start := rot * time.Duration(i) / time.Duration(n)
		a := New(p, 0)
		b := New(p, 0)
		sumR += a.ServiceTime(start, Op{Offset: 4 << 20, Length: 8 << 10})
		sumW += b.ServiceTime(start, Op{Write: true, Offset: 4 << 20, Length: 8 << 10})
	}
	meanDiff := (sumW - sumR) / time.Duration(n)
	tol := 60 * time.Microsecond // grid granularity
	if meanDiff < p.WriteSettle-tol || meanDiff > p.WriteSettle+tol {
		t.Fatalf("mean write-read cost = %v, want ~WriteSettle %v", meanDiff, p.WriteSettle)
	}
}

func TestReportTimeBelowMechanical(t *testing.T) {
	p := C3325()
	d := New(p, 0)
	op := Op{Write: true, Offset: 4 << 20, Length: 8 << 10}
	rt := d.ReportTime(op)
	st := d.ServiceTime(0, op)
	if rt >= st {
		t.Fatalf("buffered completion %v not below mechanical %v", rt, st)
	}
	// 8KB at 10MB/s is ~0.8ms plus overhead: low single-digit ms.
	if rt > 5*time.Millisecond {
		t.Fatalf("report time %v implausibly large", rt)
	}
}
