// Package disk implements a mechanical disk-drive service-time model in
// the style of Ruemmler & Wilkes, "An introduction to disk drive
// modeling" (IEEE Computer, 1994) — the calibrated models the paper's
// Pantheon simulator used.
//
// The model tracks head position (cylinder, head) and derives the
// rotational position from absolute virtual time, so rotational latency
// emerges naturally rather than being drawn from a distribution. Zoned
// recording, a two-piece seek curve, head switches, track skew, and
// controller overhead are modelled; an on-disk cache is not (the paper
// disables immediate reporting and relies on the array cache).
package disk

import (
	"fmt"
	"math"
	"time"
)

// SectorSize is the fixed sector size in bytes.
const SectorSize = 512

// Zone describes a band of cylinders with a common track density.
type Zone struct {
	Cylinders       int // number of cylinders in the zone
	SectorsPerTrack int
}

// Params describes a disk model.
type Params struct {
	Name      string
	RPM       int // spindle speed
	Heads     int // tracks per cylinder
	Zones     []Zone
	TrackSkew int // sectors of skew between consecutive tracks

	// Seek curve: seek(d) = SeekShortA + SeekShortB*sqrt(d) for
	// d < SeekBoundary, and the line through the boundary point with
	// slope SeekLongSlope beyond; single-cylinder seeks cost
	// SeekSettle at minimum.
	SeekBoundary  int
	SeekShortA    time.Duration
	SeekShortB    time.Duration // per sqrt(cylinder)
	SeekLongSlope time.Duration // per cylinder
	SeekSettle    time.Duration

	HeadSwitch         time.Duration // head switch / settle time
	ControllerOverhead time.Duration // per-op command processing
	WriteSettle        time.Duration // additional overhead on writes

	// ImmediateReport, when true, lets writes complete as soon as the
	// data is in the drive's buffer (the mechanical work still occupies
	// the drive). The paper's traced systems used synchronous writes
	// "to disable immediate-reporting in disks that allow this", so the
	// calibrated default is off; the option exists for ablation.
	ImmediateReport bool
	// BusMBps is the interface transfer rate used for the buffered
	// completion time (default 10 MB/s SCSI-2 when zero).
	BusMBps float64
}

// C3325 returns parameters approximating the HP C3325 2GB 3.5" 5400 RPM
// drive the paper modelled. Figures follow the published class of drive:
// ~10.5 ms average seek, 11.1 ms rotation, zoned 96-132 sectors/track.
func C3325() Params {
	return Params{
		Name:  "HP-C3325",
		RPM:   5400,
		Heads: 9,
		Zones: []Zone{
			{Cylinders: 500, SectorsPerTrack: 132},
			{Cylinders: 500, SectorsPerTrack: 126},
			{Cylinders: 500, SectorsPerTrack: 120},
			{Cylinders: 500, SectorsPerTrack: 114},
			{Cylinders: 500, SectorsPerTrack: 108},
			{Cylinders: 500, SectorsPerTrack: 102},
			{Cylinders: 500, SectorsPerTrack: 99},
			{Cylinders: 500, SectorsPerTrack: 96},
		},
		TrackSkew:          8,
		SeekBoundary:       400,
		SeekShortA:         3 * time.Millisecond,
		SeekShortB:         250 * time.Microsecond,
		SeekLongSlope:      2500 * time.Nanosecond,
		SeekSettle:         1700 * time.Microsecond,
		HeadSwitch:         1 * time.Millisecond,
		ControllerOverhead: 1100 * time.Microsecond,
		WriteSettle:        200 * time.Microsecond,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.RPM <= 0 {
		return fmt.Errorf("disk: RPM %d must be positive", p.RPM)
	}
	if p.Heads <= 0 {
		return fmt.Errorf("disk: heads %d must be positive", p.Heads)
	}
	if len(p.Zones) == 0 {
		return fmt.Errorf("disk: at least one zone required")
	}
	for i, z := range p.Zones {
		if z.Cylinders <= 0 || z.SectorsPerTrack <= 0 {
			return fmt.Errorf("disk: zone %d has non-positive geometry", i)
		}
	}
	return nil
}

// Cylinders returns the total cylinder count.
func (p Params) Cylinders() int {
	n := 0
	for _, z := range p.Zones {
		n += z.Cylinders
	}
	return n
}

// CapacitySectors returns the total number of sectors.
func (p Params) CapacitySectors() int64 {
	var n int64
	for _, z := range p.Zones {
		n += int64(z.Cylinders) * int64(p.Heads) * int64(z.SectorsPerTrack)
	}
	return n
}

// CapacityBytes returns the raw capacity in bytes.
func (p Params) CapacityBytes() int64 { return p.CapacitySectors() * SectorSize }

// Rotation returns the time of one full revolution.
func (p Params) Rotation() time.Duration {
	return time.Duration(float64(time.Minute) / float64(p.RPM))
}

// SeekTime returns the time to seek d cylinders (d >= 0).
func (p Params) SeekTime(d int) time.Duration {
	if d <= 0 {
		return 0
	}
	if d < p.SeekBoundary {
		t := p.SeekShortA + time.Duration(float64(p.SeekShortB)*math.Sqrt(float64(d)))
		if t < p.SeekSettle {
			t = p.SeekSettle
		}
		return t
	}
	base := p.SeekShortA + time.Duration(float64(p.SeekShortB)*math.Sqrt(float64(p.SeekBoundary)))
	return base + time.Duration(d-p.SeekBoundary)*p.SeekLongSlope
}

// MaxSeek returns the full-stroke seek time.
func (p Params) MaxSeek() time.Duration { return p.SeekTime(p.Cylinders() - 1) }

// Chs is a physical sector address.
type Chs struct {
	Cyl    int
	Head   int
	Sector int
	Spt    int // sectors per track at this cylinder (convenience)
}

// Locate maps a logical sector number to its physical address. Sectors
// are laid out cylinder-major: all tracks of cylinder 0, then cylinder 1,
// and so on, matching conventional LBA ordering.
func (p Params) Locate(sector int64) Chs {
	if sector < 0 || sector >= p.CapacitySectors() {
		panic(fmt.Sprintf("disk: sector %d out of range [0,%d)", sector, p.CapacitySectors()))
	}
	cylBase := 0
	for _, z := range p.Zones {
		zoneSectors := int64(z.Cylinders) * int64(p.Heads) * int64(z.SectorsPerTrack)
		if sector < zoneSectors {
			perCyl := int64(p.Heads) * int64(z.SectorsPerTrack)
			cyl := int(sector / perCyl)
			rem := sector % perCyl
			head := int(rem / int64(z.SectorsPerTrack))
			sec := int(rem % int64(z.SectorsPerTrack))
			return Chs{Cyl: cylBase + cyl, Head: head, Sector: sec, Spt: z.SectorsPerTrack}
		}
		sector -= zoneSectors
		cylBase += z.Cylinders
	}
	panic("disk: Locate fell off zone table")
}

// Op is a single disk transfer.
type Op struct {
	Write  bool
	Offset int64 // byte offset, sector-aligned preferred but not required
	Length int64 // bytes; must be positive
}

// Disk is a single drive with mechanical state. It is not safe for
// concurrent use; the simulator serializes access per disk.
type Disk struct {
	p       Params
	phase   time.Duration // rotational phase offset (0 for spin-synced sets)
	curCyl  int
	curHead int

	// accumulated statistics
	ops       uint64
	busy      time.Duration
	seekTime  time.Duration
	rotTime   time.Duration
	xferTime  time.Duration
	bytesRead int64
	bytesWrit int64
}

// New creates a disk with the given rotational phase. Spin-synchronized
// arrays give every disk the same phase (zero).
func New(p Params, phase time.Duration) *Disk {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Disk{p: p, phase: phase}
}

// Params returns the model parameters.
func (d *Disk) Params() Params { return d.p }

// angleAt returns the rotational position at absolute time t as a sector
// fraction in [0, 1).
func (d *Disk) angleAt(t time.Duration, spt int) float64 {
	rot := d.p.Rotation()
	pos := (t + d.phase) % rot
	if pos < 0 {
		pos += rot
	}
	_ = spt
	return float64(pos) / float64(rot)
}

// rotWait returns the delay from time t until sector sec (of spt) passes
// under the head.
func (d *Disk) rotWait(t time.Duration, sec, spt int) time.Duration {
	rot := d.p.Rotation()
	target := float64(sec) / float64(spt)
	cur := d.angleAt(t, spt)
	frac := target - cur
	if frac < 0 {
		frac += 1
	}
	return time.Duration(frac * float64(rot))
}

// ServiceTime computes the time to perform op starting at absolute
// virtual time start, updates the head position, and returns the
// duration. The caller is responsible for queueing (one op at a time).
func (d *Disk) ServiceTime(start time.Duration, op Op) time.Duration {
	if op.Length <= 0 {
		panic(fmt.Sprintf("disk: op length %d must be positive", op.Length))
	}
	startSector := op.Offset / SectorSize
	nSectors := (op.Offset+op.Length+SectorSize-1)/SectorSize - startSector
	loc := d.p.Locate(startSector)

	t := start + d.p.ControllerOverhead
	if op.Write {
		t += d.p.WriteSettle
	}

	// Positioning: seek and head switch overlap; take the max.
	dist := loc.Cyl - d.curCyl
	if dist < 0 {
		dist = -dist
	}
	pos := d.p.SeekTime(dist)
	if loc.Head != d.curHead && pos < d.p.HeadSwitch {
		pos = d.p.HeadSwitch
	}
	t += pos
	seekEnd := t
	d.seekTime += pos

	// Rotational latency to the first sector.
	rw := d.rotWait(t, loc.Sector, loc.Spt)
	t += rw
	d.rotTime += rw

	// Media transfer, crossing track and cylinder boundaries as needed.
	rot := d.p.Rotation()
	remaining := nSectors
	sec, head, cyl, spt := loc.Sector, loc.Head, loc.Cyl, loc.Spt
	for remaining > 0 {
		onTrack := int64(spt - sec)
		m := remaining
		if m > onTrack {
			m = onTrack
		}
		xfer := time.Duration(float64(m) / float64(spt) * float64(rot))
		t += xfer
		d.xferTime += xfer
		remaining -= m
		sec += int(m)
		if remaining > 0 {
			// Advance to the next track. Track skew is chosen by the
			// manufacturer so that sector 0 of the next track arrives
			// under the head just as the switch settles; we therefore
			// charge max(switch, skew window) and continue transferring
			// without an extra rotational realignment.
			sec = 0
			head++
			switchCost := d.p.HeadSwitch
			if head == d.p.Heads {
				head = 0
				cyl++
				sc := d.p.SeekTime(1)
				if sc > switchCost {
					switchCost = sc
				}
				spt = d.sptAt(cyl)
			}
			skew := time.Duration(float64(d.p.TrackSkew) / float64(spt) * float64(rot))
			if skew > switchCost {
				switchCost = skew
			}
			t += switchCost
		}
	}

	d.curCyl = cyl
	d.curHead = head
	d.ops++
	d.busy += t - start
	if op.Write {
		d.bytesWrit += op.Length
	} else {
		d.bytesRead += op.Length
	}
	_ = seekEnd
	return t - start
}

// Stats reports accumulated per-disk activity.
type Stats struct {
	Ops          uint64
	Busy         time.Duration
	Seek         time.Duration
	Rotational   time.Duration
	Transfer     time.Duration
	BytesRead    int64
	BytesWritten int64
}

// Stats returns a snapshot of the disk's accumulated statistics.
func (d *Disk) Stats() Stats {
	return Stats{
		Ops:          d.ops,
		Busy:         d.busy,
		Seek:         d.seekTime,
		Rotational:   d.rotTime,
		Transfer:     d.xferTime,
		BytesRead:    d.bytesRead,
		BytesWritten: d.bytesWrit,
	}
}

// ReportTime returns the buffered completion time of an op under
// immediate reporting: command overhead plus the bus transfer. The
// mechanical time from ServiceTime still occupies the drive.
func (d *Disk) ReportTime(op Op) time.Duration {
	bus := d.p.BusMBps
	if bus <= 0 {
		bus = 10
	}
	xfer := time.Duration(float64(op.Length) / (bus * 1e6) * float64(time.Second))
	return d.p.ControllerOverhead + xfer
}

// sptAt returns sectors-per-track for a cylinder.
func (d *Disk) sptAt(cyl int) int {
	base := 0
	for _, z := range d.p.Zones {
		if cyl < base+z.Cylinders {
			return z.SectorsPerTrack
		}
		base += z.Cylinders
	}
	// Past the last cylinder (transfer ran off the end); keep the
	// innermost density. Ops are validated against capacity upstream.
	return d.p.Zones[len(d.p.Zones)-1].SectorsPerTrack
}
