// Package cache models the array controller's caches in the paper's
// deliberately small configuration: a 256 KB write-through staging area
// and a 256 KB read cache with no readahead. For the performance
// simulator only block *presence* matters (hits avoid pre-reads in the
// RAID 5 read-modify-write path), so the cache tracks membership, not
// contents.
//
// SIMULATION ONLY. This package exists to reproduce the paper's
// measured configuration inside internal/array and internal/exp; it
// holds no data and never sits in a real I/O path. The functional
// store's write-absorbing layer is internal/tier — a mirrored
// write-back front tier with persisted residency and real
// crash-recovery semantics — which supersedes any notion of write
// staging this package might suggest.
package cache

import (
	"container/list"
	"fmt"
)

// LRU is a fixed-capacity set of block numbers with least-recently-used
// eviction.
type LRU struct {
	capacity int
	ll       *list.List
	items    map[int64]*list.Element

	hits   uint64
	misses uint64
}

// NewLRU creates a cache holding up to capacity blocks (>= 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: capacity %d must be >= 1", capacity))
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[int64]*list.Element, capacity),
	}
}

// Capacity returns the block capacity.
func (c *LRU) Capacity() int { return c.capacity }

// Len returns the number of cached blocks.
func (c *LRU) Len() int { return c.ll.Len() }

// Contains reports membership and records a hit or miss, promoting the
// block on a hit.
func (c *LRU) Contains(block int64) bool {
	if e, ok := c.items[block]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Peek reports membership without promoting or counting.
func (c *LRU) Peek(block int64) bool {
	_, ok := c.items[block]
	return ok
}

// Insert adds a block (promoting it if present), evicting the LRU block
// when full. It returns the evicted block and whether an eviction
// happened.
func (c *LRU) Insert(block int64) (evicted int64, did bool) {
	if e, ok := c.items[block]; ok {
		c.ll.MoveToFront(e)
		return 0, false
	}
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		old := back.Value.(int64)
		c.ll.Remove(back)
		delete(c.items, old)
		evicted, did = old, true
	}
	c.items[block] = c.ll.PushFront(block)
	return evicted, did
}

// Invalidate removes a block if present.
func (c *LRU) Invalidate(block int64) {
	if e, ok := c.items[block]; ok {
		c.ll.Remove(e)
		delete(c.items, block)
	}
}

// Stats returns (hits, misses) accumulated by Contains.
func (c *LRU) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the fraction of Contains calls that hit.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Controller bundles the paper's two array caches, indexed by array
// block number (client address / block size).
type Controller struct {
	blockSize int64
	read      *LRU
	write     *LRU
}

// Config sizes the controller caches in bytes.
type Config struct {
	BlockSize  int64 // cache granularity, typically the stripe unit
	ReadBytes  int64 // read cache size (paper: 256 KB)
	WriteBytes int64 // write staging size (paper: 256 KB, write-through)
}

// DefaultConfig returns the paper's configuration for an 8 KB stripe
// unit.
func DefaultConfig() Config {
	return Config{BlockSize: 8 << 10, ReadBytes: 256 << 10, WriteBytes: 256 << 10}
}

// NewController builds the cache pair.
func NewController(cfg Config) *Controller {
	if cfg.BlockSize <= 0 {
		panic(fmt.Sprintf("cache: block size %d must be positive", cfg.BlockSize))
	}
	rb := int(cfg.ReadBytes / cfg.BlockSize)
	wb := int(cfg.WriteBytes / cfg.BlockSize)
	if rb < 1 || wb < 1 {
		panic("cache: cache sizes must hold at least one block")
	}
	return &Controller{
		blockSize: cfg.BlockSize,
		read:      NewLRU(rb),
		write:     NewLRU(wb),
	}
}

// blockOf returns the block number containing addr.
func (c *Controller) blockOf(addr int64) int64 { return addr / c.blockSize }

// blocksOf enumerates block numbers overlapping [addr, addr+length).
func (c *Controller) blocksOf(addr, length int64) []int64 {
	if length <= 0 {
		return nil
	}
	first := c.blockOf(addr)
	last := c.blockOf(addr + length - 1)
	out := make([]int64, 0, last-first+1)
	for b := first; b <= last; b++ {
		out = append(out, b)
	}
	return out
}

// ReadHit reports whether the whole range is served from either cache
// (read hits in the array were rare in the traced systems; the paper's
// caches are deliberately small).
func (c *Controller) ReadHit(addr, length int64) bool {
	hit := true
	for _, b := range c.blocksOf(addr, length) {
		inWrite := c.write.Peek(b)
		if !c.read.Contains(b) && !inWrite {
			hit = false
		}
	}
	return hit
}

// FillRead records that the range was read from disk into the read cache.
func (c *Controller) FillRead(addr, length int64) {
	for _, b := range c.blocksOf(addr, length) {
		c.read.Insert(b)
	}
}

// Write records a client write passing through the staging buffer
// (write-through: it is also sent to disk by the caller).
func (c *Controller) Write(addr, length int64) {
	for _, b := range c.blocksOf(addr, length) {
		c.write.Insert(b)
		// Keep the read cache coherent: the staged copy is newest.
		c.read.Invalidate(b)
	}
}

// OldDataCached reports whether the pre-image of the whole range is
// available in the controller (avoiding the old-data pre-read of the
// RAID 5 small-update protocol).
func (c *Controller) OldDataCached(addr, length int64) bool {
	hit := true
	for _, b := range c.blocksOf(addr, length) {
		if !c.write.Contains(b) && !c.read.Peek(b) {
			hit = false
		}
	}
	return hit
}

// ReadStats returns the read cache's (hits, misses).
func (c *Controller) ReadStats() (uint64, uint64) { return c.read.Stats() }
