package cache

import (
	"testing"
	"testing/quick"
)

func TestLRUBasicEviction(t *testing.T) {
	c := NewLRU(2)
	c.Insert(1)
	c.Insert(2)
	if ev, did := c.Insert(3); !did || ev != 1 {
		t.Fatalf("insert 3 evicted (%d,%v), want (1,true)", ev, did)
	}
	if c.Peek(1) {
		t.Fatal("1 still present after eviction")
	}
	if !c.Peek(2) || !c.Peek(3) {
		t.Fatal("2 or 3 missing")
	}
}

func TestLRUPromotionOnContains(t *testing.T) {
	c := NewLRU(2)
	c.Insert(1)
	c.Insert(2)
	c.Contains(1) // promote 1; 2 becomes LRU
	if ev, did := c.Insert(3); !did || ev != 2 {
		t.Fatalf("insert 3 evicted (%d,%v), want (2,true)", ev, did)
	}
}

func TestLRUReinsertPromotes(t *testing.T) {
	c := NewLRU(2)
	c.Insert(1)
	c.Insert(2)
	c.Insert(1) // promote, no eviction
	if ev, did := c.Insert(3); !did || ev != 2 {
		t.Fatalf("insert 3 evicted (%d,%v), want (2,true)", ev, did)
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := NewLRU(4)
	c.Insert(7)
	c.Invalidate(7)
	if c.Peek(7) {
		t.Fatal("7 present after invalidate")
	}
	c.Invalidate(7) // no-op
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUStats(t *testing.T) {
	c := NewLRU(2)
	c.Insert(1)
	c.Contains(1)
	c.Contains(2)
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d,%d", h, m)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g", c.HitRate())
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	prop := func(keys []int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewLRU(capacity)
		for _, k := range keys {
			c.Insert(k)
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerWriteThenOldDataCached(t *testing.T) {
	c := NewController(DefaultConfig())
	c.Write(0, 8<<10)
	if !c.OldDataCached(0, 8<<10) {
		t.Fatal("freshly written block not found in staging")
	}
	if c.OldDataCached(1<<20, 8<<10) {
		t.Fatal("never-written block reported cached")
	}
}

func TestControllerReadHitAfterFill(t *testing.T) {
	c := NewController(DefaultConfig())
	if c.ReadHit(16<<10, 8<<10) {
		t.Fatal("cold cache reported a hit")
	}
	c.FillRead(16<<10, 8<<10)
	if !c.ReadHit(16<<10, 8<<10) {
		t.Fatal("filled range missed")
	}
}

func TestControllerWriteInvalidatesRead(t *testing.T) {
	c := NewController(DefaultConfig())
	c.FillRead(0, 8<<10)
	c.Write(0, 8<<10)
	// Still a hit overall (staging holds it), but the read cache's copy
	// must be gone.
	if !c.ReadHit(0, 8<<10) {
		t.Fatal("write-through staging should serve the read")
	}
}

func TestControllerMultiBlockRange(t *testing.T) {
	c := NewController(DefaultConfig())
	c.FillRead(0, 8<<10) // only first block
	if c.ReadHit(0, 16<<10) {
		t.Fatal("partial fill reported full hit")
	}
	c.FillRead(8<<10, 8<<10)
	if !c.ReadHit(0, 16<<10) {
		t.Fatal("both blocks filled but miss reported")
	}
}

func TestControllerSmallCachesEvict(t *testing.T) {
	cfg := DefaultConfig() // 32 blocks of 8KB per cache
	c := NewController(cfg)
	for i := int64(0); i < 64; i++ {
		c.Write(i*8<<10, 8<<10)
	}
	if c.OldDataCached(0, 8<<10) {
		t.Fatal("block 0 should have been evicted from 256KB staging after 512KB of writes")
	}
	if !c.OldDataCached(63*8<<10, 8<<10) {
		t.Fatal("most recent block missing")
	}
}

func TestControllerZeroLengthRange(t *testing.T) {
	c := NewController(DefaultConfig())
	if !c.ReadHit(0, 0) {
		t.Fatal("empty range should trivially hit")
	}
}

func TestNewControllerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	NewController(Config{BlockSize: 0, ReadBytes: 1, WriteBytes: 1})
}
