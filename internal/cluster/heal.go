package cluster

import (
	"context"
	"fmt"
	"time"

	"afraid/internal/bufpool"
	"afraid/internal/layout"
	"afraid/internal/parity"
)

// HealReport summarises one heal sweep.
type HealReport struct {
	Healed int64 // stripe units rebuilt onto the node
	// Lost lists stripes whose contents on this node are unrecoverable:
	// they were unredundant (dirty) when the node went down, so neither
	// the unit nor the parity to rebuild it survives. They stay marked
	// — reads keep reporting ErrDataLoss until a client rewrites them —
	// honouring the contract that loss is always reported.
	Lost []int64
	// Remaining counts stripes skipped because another node they need
	// was unavailable; a later sweep can finish them.
	Remaining int64
}

// HealNode brings node i back into the volume: redial it if it is down
// (Member.Dial), then rebuild exactly the stripe units it missed —
// its stale map, or every stripe when full is set (the "replaced with a
// blank machine" case). Safe to run while the volume serves I/O;
// concurrent writes to a stripe being healed are serialised by the
// stripe locks.
func (v *Volume) HealNode(ctx context.Context, i int, full bool) (HealReport, error) {
	if i < 0 || i >= len(v.nodes) {
		return HealReport{}, fmt.Errorf("cluster: no node %d", i)
	}
	// An explicit heal is an administrative act of trust: lift any flap
	// quarantine — and forget the flap history, so the repaired node is
	// not re-fenced on its first future wobble. The prober's auto-heals
	// go through healNode directly and leave the history alone; that is
	// what lets the damper count a flapping node's cycles at all.
	v.meta.Lock()
	v.clearQuarantineLocked(v.nodes[i])
	v.meta.Unlock()
	return v.healNode(ctx, i, full)
}

// healNode is HealNode without the administrative quarantine reset.
func (v *Volume) healNode(ctx context.Context, i int, full bool) (HealReport, error) {
	var rep HealReport
	v.meta.Lock()
	m := v.nodes[i]
	if v.closed {
		v.meta.Unlock()
		return rep, ErrClosed
	}
	needDial := m.state == StateDown || m.node == nil
	v.meta.Unlock()

	if needDial {
		if err := v.redialNode(i); err != nil {
			return rep, err
		}
		v.logf("cluster: node %d (%s) redialed, healing", i, m.addr)
	}

	var stripes []int64
	if full {
		stripes = make([]int64, 0, v.geo.Stripes())
		for st := int64(0); st < v.geo.Stripes(); st++ {
			stripes = append(stripes, st)
		}
	} else {
		v.meta.Lock()
		stripes = m.stale.Marked()
		v.meta.Unlock()
	}
	for _, st := range stripes {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		v.healStripe(ctx, i, st, full, &rep)
	}
	// Stripes left dirty (parity-role backlog, loss survivors) are the
	// drain's problem now.
	select {
	case v.kick <- struct{}{}:
	default:
	}
	v.meta.Lock()
	if m.state == StateUp {
		m.consecFails = 0 // clean sweep: the node earned its record back
	}
	v.meta.Unlock()
	return rep, nil
}

// redialNode dials a down member, sanity-checks the replacement
// connection, and promotes it to StateUp under a fresh generation. It
// does not rebuild anything — callers schedule the heal.
func (v *Volume) redialNode(i int) error {
	v.meta.Lock()
	m := v.nodes[i]
	if v.closed {
		v.meta.Unlock()
		return ErrClosed
	}
	if m.state == StateUp && m.node != nil {
		v.meta.Unlock()
		return nil
	}
	dial := m.dial
	v.meta.Unlock()
	if dial == nil {
		return fmt.Errorf("%w: node %d has no dialer", ErrNodeDown, i)
	}
	n, err := dial()
	if err != nil {
		return fmt.Errorf("cluster: redial node %d: %w", i, err)
	}
	if c := n.Capacity(); c < v.geo.DiskSize {
		n.Close()
		return fmt.Errorf("cluster: node %d shrank: capacity %d < %d", i, c, v.geo.DiskSize)
	}
	v.meta.Lock()
	if v.closed {
		v.meta.Unlock()
		n.Close()
		return ErrClosed
	}
	if m.state == StateUp && m.node != nil {
		// Lost the race to another redial; this conn is surplus.
		v.meta.Unlock()
		n.Close()
		return nil
	}
	m.node = n
	m.state = StateUp
	m.lastErr = nil
	m.gen++
	v.meta.Unlock()
	v.logf("cluster: node %d (%s) redialed", i, m.addr)
	return nil
}

// healStripe rebuilds node i's unit of one stripe, if it needs it.
func (v *Volume) healStripe(ctx context.Context, i int, st int64, full bool, rep *HealReport) {
	lk := v.stripeLock(st)
	lk.Lock()
	defer lk.Unlock()
	t0 := time.Now()

	v.meta.Lock()
	m := v.nodes[i]
	up := m.state == StateUp && m.node != nil
	stale := m.stale.IsMarked(st)
	dirty := v.dirty.IsMarked(st)
	v.meta.Unlock()
	if !up {
		rep.Remaining++ // node died again mid-sweep
		return
	}
	role, dIdx := v.geo.RoleOf(st, i)
	switch role {
	case layout.Parity:
		if !stale && !dirty && !full {
			return
		}
		// A suspect parity unit is healed by recomputation, which also
		// drains the stripe if it was dirty.
		if v.recomputeParity(ctx, st) != nil {
			rep.Remaining++
			return
		}
		if stale || dirty {
			rep.Healed++
			v.bumpHealed(t0)
		}
	case layout.Data:
		// full treats every unit as suspect (blank replacement node);
		// otherwise only units the stale map says were missed.
		if !stale && !full {
			return
		}
		if dirty {
			// Unredundant at failure time: the unit is gone and parity
			// cannot bring it back. Report, keep the marks, move on.
			rep.Lost = append(rep.Lost, st)
			v.meta.Lock()
			v.stats.LostStripes++
			v.meta.Unlock()
			return
		}
		if v.rebuildUnit(ctx, st, dIdx, i) != nil {
			rep.Remaining++
			return
		}
		v.meta.Lock()
		m.stale.Unmark(st)
		v.stats.HealedStripes++
		v.persistMarksLocked()
		v.meta.Unlock()
		rep.Healed++
		v.ob.heal.Observe(time.Since(t0))
	}
}

func (v *Volume) bumpHealed(t0 time.Time) {
	v.meta.Lock()
	v.stats.HealedStripes++
	v.meta.Unlock()
	v.ob.heal.Observe(time.Since(t0))
}

// recomputeParity reads every data unit of a clean-or-dirty stripe,
// recomputes parity, and writes it to the parity node, clearing the
// dirty and parity-stale bits. Caller holds the stripe lock.
func (v *Volume) recomputeParity(ctx context.Context, st int64) error {
	n := v.geo.DataDisks()
	v.meta.Lock()
	ok := true
	for idx := 0; idx < n; idx++ {
		if !v.availLocked(v.geo.DataDisk(st, idx), st) {
			ok = false
		}
	}
	v.meta.Unlock()
	if !ok {
		return fmt.Errorf("%w: stripe %d data incomplete", ErrNodeDown, st)
	}
	units := make([][]byte, n)
	for idx := range units {
		units[idx] = bufpool.Get(int(v.geo.StripeUnit))
	}
	pbuf := bufpool.Get(int(v.geo.StripeUnit))
	defer func() {
		for _, b := range units {
			bufpool.Put(b)
		}
		bufpool.Put(pbuf)
	}()
	if err := v.readUnits(ctx, st, units); err != nil {
		return err
	}
	parity.Compute(pbuf, units...)
	pNode := v.geo.ParityDisk(st)
	if err := v.nodeWrite(ctx, pNode, pbuf, v.geo.DiskOffset(st)); err != nil {
		return err
	}
	v.meta.Lock()
	v.dirty.Unmark(st)
	v.nodes[pNode].stale.Unmark(st)
	err := v.persistMarksLocked()
	v.meta.Unlock()
	return err
}

// rebuildUnit reconstructs data unit dIdx of a clean stripe from the
// other data units plus parity and writes it to node. Caller holds the
// stripe lock.
func (v *Volume) rebuildUnit(ctx context.Context, st int64, dIdx, node int) error {
	n := v.geo.DataDisks()
	v.meta.Lock()
	ok := v.availLocked(v.geo.ParityDisk(st), st)
	for idx := 0; idx < n; idx++ {
		if idx != dIdx && !v.availLocked(v.geo.DataDisk(st, idx), st) {
			ok = false
		}
	}
	v.meta.Unlock()
	if !ok {
		return fmt.Errorf("%w: stripe %d survivors incomplete", ErrNodeDown, st)
	}
	units := make([][]byte, n)
	for idx := 0; idx < n; idx++ {
		if idx != dIdx {
			units[idx] = bufpool.Get(int(v.geo.StripeUnit))
		}
	}
	pbuf := bufpool.Get(int(v.geo.StripeUnit))
	rebuilt := bufpool.Get(int(v.geo.StripeUnit))
	defer func() {
		for _, b := range units {
			if b != nil {
				bufpool.Put(b)
			}
		}
		bufpool.Put(pbuf)
		bufpool.Put(rebuilt)
	}()
	if err := v.readUnits(ctx, st, units); err != nil {
		return err
	}
	if err := v.nodeRead(ctx, v.geo.ParityDisk(st), pbuf, v.geo.DiskOffset(st)); err != nil {
		return err
	}
	survivors := make([][]byte, 0, n-1)
	for idx := 0; idx < n; idx++ {
		if idx != dIdx {
			survivors = append(survivors, units[idx])
		}
	}
	parity.Reconstruct(rebuilt, pbuf, survivors...)
	return v.nodeWrite(ctx, node, rebuilt, v.geo.DiskOffset(st))
}

// VerifyParity audits every clean stripe: read all data units plus
// parity and check the XOR. It returns the stripes that fail (bad) and
// the count it could not check (dirty, or nodes down). A non-empty bad
// list means redundancy the marking memory believes exists does not —
// the cluster analogue of afraidsim's torn-parity detection.
func (v *Volume) VerifyParity(ctx context.Context) (bad []int64, skipped int64, err error) {
	for st := int64(0); st < v.geo.Stripes(); st++ {
		if err := ctx.Err(); err != nil {
			return bad, skipped, err
		}
		ok, checkErr := v.verifyStripe(ctx, st)
		if checkErr != nil {
			if ignoreNodeDown(checkErr) == nil {
				skipped++
				continue
			}
			return bad, skipped, checkErr
		}
		if !ok {
			bad = append(bad, st)
		}
	}
	return bad, skipped, nil
}

func (v *Volume) verifyStripe(ctx context.Context, st int64) (ok bool, err error) {
	lk := v.stripeLock(st)
	lk.Lock()
	defer lk.Unlock()
	h := v.health(st)
	if h.dirty || len(h.badIdx) > 0 || !h.parityRead {
		return true, fmt.Errorf("%w: stripe %d unverifiable", ErrNodeDown, st)
	}
	n := v.geo.DataDisks()
	units := make([][]byte, n)
	for idx := range units {
		units[idx] = bufpool.Get(int(v.geo.StripeUnit))
	}
	pbuf := bufpool.Get(int(v.geo.StripeUnit))
	defer func() {
		for _, b := range units {
			bufpool.Put(b)
		}
		bufpool.Put(pbuf)
	}()
	if err := v.readUnits(ctx, st, units); err != nil {
		return true, err
	}
	if err := v.nodeRead(ctx, v.geo.ParityDisk(st), pbuf, v.geo.DiskOffset(st)); err != nil {
		return true, err
	}
	return parity.Check(pbuf, units...), nil
}
