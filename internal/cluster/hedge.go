package cluster

import (
	"context"
	"time"

	"afraid/internal/bufpool"
	"afraid/internal/layout"
	"afraid/internal/obs"
)

// Hedged reads are the volume's tail-latency defence: a unit read that
// has not answered after the hedge delay is raced against the
// reconstruction path (the same XOR of survivors + parity that serves
// degraded reads), and the first success wins. A browned-out node then
// costs one hedge delay, not its own latency — without being demoted,
// because the straggling primary keeps running to its NodeTimeout and
// only *that* declares the node down. Hedging never fires on a stripe
// that is not fully redundant: reconstruction there would either be
// impossible or double-read the degraded path.

const (
	// hedgeAutoDefault is the auto-mode delay before enough node reads
	// exist to derive a p99 (millisecond scale: network volumes live
	// there, and local test nodes answer far below it).
	hedgeAutoDefault = 2 * time.Millisecond
	// hedgeAutoFloor keeps the derived delay from collapsing to the
	// bucket floor on very fast nodes, where a hedge would fire on
	// nearly every read and double the cluster's read load.
	hedgeAutoFloor = 500 * time.Microsecond
	// hedgeMinSamples gates auto mode on real signal.
	hedgeMinSamples = 64
	// hedgeEvalEvery bounds how often auto mode re-merges the per-node
	// read histograms; between evaluations the cached delay is served.
	hedgeEvalEvery = 250 * time.Millisecond
)

// hedgeDelay resolves the current hedge delay: Options.HedgeDelay when
// fixed, 0 when disabled, otherwise the cached p99 of node reads
// clamped to [hedgeAutoFloor, NodeTimeout/2].
func (v *Volume) hedgeDelay() time.Duration {
	if hd := v.opts.HedgeDelay; hd != 0 {
		if hd < 0 {
			return 0
		}
		return hd
	}
	now := time.Now().UnixNano()
	if at := v.hedgeEval.Load(); at != 0 && now-at < int64(hedgeEvalEvery) {
		return time.Duration(v.hedgeNS.Load())
	}
	var s obs.Snapshot
	for _, h := range v.ob.nodeRead {
		snap := h.Snapshot()
		s.Merge(&snap)
	}
	d := hedgeAutoDefault
	if s.Count >= hedgeMinSamples {
		d = s.Quantile(0.99)
		if d < hedgeAutoFloor {
			d = hedgeAutoFloor
		}
	}
	if v.opts.NodeTimeout > 0 && d > v.opts.NodeTimeout/2 {
		d = v.opts.NodeTimeout / 2
	}
	v.hedgeNS.Store(int64(d))
	v.hedgeEval.Store(now)
	return d
}

// hedgedReadExtent reads one extent from its home node, arming a hedge
// timer: if the node has not answered when it fires, the extent is also
// reconstructed from the other nodes and the first success is copied to
// dst. Caller holds the stripe lock and has verified the stripe is
// fully redundant.
//
// Each branch reads into its own pooled buffer — never dst — so a late
// loser cannot scribble over the winner's bytes. A primary that fails
// fast (node crash) before the timer fires returns its error directly:
// the demotion it caused re-routes the span, which is the retry layer's
// job, not the hedge's.
func (v *Volume) hedgedReadExtent(ctx context.Context, dst []byte, st int64, e layout.Extent, delay time.Duration) error {
	type res struct {
		buf   []byte
		err   error
		hedge bool
	}
	ch := make(chan res, 2) // both branches always deliver; sends never block
	inflight := 1
	pbuf := bufpool.Get(int(e.Len))
	go func() {
		err := v.nodeRead(ctx, e.Disk, pbuf, e.DiskOff)
		ch <- res{pbuf, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C

	finish := func(r res) {
		copy(dst, r.buf)
		bufpool.Put(r.buf)
		if remaining := inflight; remaining > 0 {
			// Drain the straggler in the background so its buffer is
			// returned to the pool whenever it finally answers.
			go func() {
				for i := 0; i < remaining; i++ {
					lr := <-ch
					bufpool.Put(lr.buf)
				}
			}()
		}
	}

	var primaryErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				finish(r)
				if r.hedge {
					v.meta.Lock()
					v.stats.HedgeWins++
					v.meta.Unlock()
					v.ob.hedgeWins.Inc()
				}
				return nil
			}
			bufpool.Put(r.buf)
			if !r.hedge {
				if timerC != nil {
					// Failed fast, before the hedge fired.
					return r.err
				}
				primaryErr = r.err
			}
			if inflight == 0 {
				if primaryErr != nil {
					return primaryErr
				}
				return r.err
			}
		case <-timerC:
			timerC = nil
			hbuf := bufpool.Get(int(e.Len))
			inflight++
			go func() {
				err := v.degradedReadExtent(ctx, hbuf, st, e)
				ch <- res{hbuf, err, true}
			}()
			v.meta.Lock()
			v.stats.HedgedReads++
			v.meta.Unlock()
			v.ob.hedged.Inc()
		}
	}
}
