package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"afraid/internal/obs"
	"afraid/internal/server"
)

// volObs bundles the volume's latency instrumentation: one read and one
// write histogram per node (so a slow member stands out in Summaries),
// plus drain and heal timings.
type volObs struct {
	reg       *obs.Registry
	nodeRead  []*obs.Histogram
	nodeWrite []*obs.Histogram
	drain     *obs.Histogram
	heal      *obs.Histogram
}

func newVolObs(n int) *volObs {
	ob := &volObs{
		reg:       obs.NewRegistry(),
		nodeRead:  make([]*obs.Histogram, n),
		nodeWrite: make([]*obs.Histogram, n),
	}
	for i := 0; i < n; i++ {
		ob.nodeRead[i] = ob.reg.Histogram(fmt.Sprintf("node%d.read", i))
		ob.nodeWrite[i] = ob.reg.Histogram(fmt.Sprintf("node%d.write", i))
	}
	ob.drain = ob.reg.Histogram("drain.stripe")
	ob.heal = ob.reg.Histogram("heal.stripe")
	return ob
}

// Obs exposes the volume's metrics registry (per-node read/write
// latency, drain and heal timings) for status tooling.
func (v *Volume) Obs() *obs.Registry { return v.ob.reg }

// nodeCtx derives the per-node operation deadline. It is the volume's
// slow-node bound: a member that exceeds it is treated as down rather
// than allowed to stall every stripe it participates in.
func (v *Volume) nodeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if v.opts.NodeTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, v.opts.NodeTimeout)
}

// grab snapshots the member's connection for one operation.
func (v *Volume) grab(i int) (n Node, gen uint64, err error) {
	v.meta.Lock()
	defer v.meta.Unlock()
	m := v.nodes[i]
	if m.state != StateUp || m.node == nil {
		return nil, 0, fmt.Errorf("%w: node %d (%s)", ErrNodeDown, i, m.addr)
	}
	return m.node, m.gen, nil
}

// nodeRead fills p from node i at off, observing latency and demoting
// the node on a connection-class failure.
func (v *Volume) nodeRead(ctx context.Context, i int, p []byte, off int64) error {
	n, gen, err := v.grab(i)
	if err != nil {
		return err
	}
	cctx, cancel := v.nodeCtx(ctx)
	t0 := time.Now()
	_, err = n.ReadAtContext(cctx, p, off)
	cancel()
	v.ob.nodeRead[i].Observe(time.Since(t0))
	return v.classify(ctx, i, gen, err)
}

// nodeWrite writes p to node i at off. A write that *fails mid-op*
// leaves the target unit torn — old, new, or mixed — so the unit is
// marked stale for its stripe before the error propagates: the volume
// never trusts bytes whose write it cannot prove completed. (Every
// nodeWrite targets a single stripe unit, so the stripe is off's.)
func (v *Volume) nodeWrite(ctx context.Context, i int, p []byte, off int64) error {
	n, gen, err := v.grab(i)
	if err != nil {
		return err
	}
	cctx, cancel := v.nodeCtx(ctx)
	t0 := time.Now()
	_, err = n.WriteAtContext(cctx, p, off)
	cancel()
	v.ob.nodeWrite[i].Observe(time.Since(t0))
	if err != nil {
		st := off / v.geo.StripeUnit
		v.meta.Lock()
		if v.nodes[i].stale.Mark(st) {
			v.persistMarksLocked() // best effort; the bits survive in memory
		}
		v.meta.Unlock()
	}
	return v.classify(ctx, i, gen, err)
}

// classify decides whether an operation error means the *node* is gone
// (demote, return ErrNodeDown so span loops re-route) or the operation
// merely failed (pass through). A caller-cancelled context is never
// blamed on the node.
func (v *Volume) classify(ctx context.Context, i int, gen uint64, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if !isNodeDownErr(err) {
		return err
	}
	v.markDown(i, gen, err)
	return fmt.Errorf("%w: node %d: %v", ErrNodeDown, i, err)
}

// isNodeDownErr reports whether err indicates the node (or the path to
// it) is gone, as opposed to a request-level failure like ErrDataLoss
// that the node itself reported.
func isNodeDownErr(err error) bool {
	if errors.Is(err, ErrNodeDown) || // FaultNode injections
		errors.Is(err, server.ErrConnectionLost) ||
		errors.Is(err, server.ErrShutdown) ||
		errors.Is(err, context.DeadlineExceeded) || // NodeTimeout fired
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// markDown transitions node i to StateDown. The gen check makes demote
// racing redial safe: a failure observed on the old connection cannot
// kill a freshly dialed one.
func (v *Volume) markDown(i int, gen uint64, cause error) {
	v.meta.Lock()
	m := v.nodes[i]
	if m.gen != gen || m.state == StateDown {
		v.meta.Unlock()
		return
	}
	m.state = StateDown
	m.lastErr = cause
	old := m.node
	m.node = nil
	v.stats.NodeFailovers++
	v.meta.Unlock()
	if old != nil {
		go old.Close()
	}
	v.logf("cluster: node %d (%s) down: %v", i, m.addr, cause)
}

// FailNode manually demotes a node, as if its next operation had failed
// — the administrative "I am taking this machine away" switch.
func (v *Volume) FailNode(i int) error {
	if i < 0 || i >= len(v.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	v.meta.Lock()
	gen := v.nodes[i].gen
	v.meta.Unlock()
	v.markDown(i, gen, errors.New("administratively failed"))
	return nil
}

func (v *Volume) logf(format string, args ...any) {
	if v.opts.Logf != nil {
		v.opts.Logf(format, args...)
	}
}

// probeLoop is the optional background health prober: it pings up
// nodes so a silently dead one is demoted before a client write trips
// over it, and redials+heals down nodes when they answer again.
func (v *Volume) probeLoop() {
	defer v.wg.Done()
	t := time.NewTicker(v.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-v.stop:
			return
		case <-t.C:
		}
		for i := range v.nodes {
			select {
			case <-v.stop:
				return
			default:
			}
			v.probeNode(i)
		}
	}
}

func (v *Volume) probeNode(i int) {
	v.meta.Lock()
	m := v.nodes[i]
	state, n, gen := m.state, m.node, m.gen
	v.meta.Unlock()
	switch {
	case state == StateUp && n != nil:
		ctx, cancel := context.WithTimeout(context.Background(), v.opts.NodeTimeout)
		err := n.Ping(ctx)
		cancel()
		if err != nil && isNodeDownErr(err) {
			v.markDown(i, gen, err)
		}
	case state == StateDown && m.dial != nil:
		ctx, cancel := context.WithTimeout(context.Background(), v.opts.NodeTimeout)
		defer cancel()
		if _, err := v.HealNode(ctx, i, false); err == nil {
			v.logf("cluster: node %d (%s) back up, heal scheduled", i, m.addr)
		}
	}
}
