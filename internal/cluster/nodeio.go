package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"afraid/internal/obs"
	"afraid/internal/server"
)

// volObs bundles the volume's latency instrumentation: one read and one
// write histogram per node (so a slow member stands out in Summaries),
// plus drain and heal timings.
type volObs struct {
	reg       *obs.Registry
	nodeRead  []*obs.Histogram
	nodeWrite []*obs.Histogram
	drain     *obs.Histogram
	heal      *obs.Histogram
	readOp    *obs.Histogram // whole-volume read latency (what hedging bends)
	writeOp   *obs.Histogram // whole-volume write latency

	hedged           *obs.Counter
	hedgeWins        *obs.Counter
	retries          *obs.Counter
	retriesExhausted *obs.Counter
	quarantines      *obs.Counter
	autoHeals        *obs.Counter
}

func newVolObs(n int) *volObs {
	ob := &volObs{
		reg:       obs.NewRegistry(),
		nodeRead:  make([]*obs.Histogram, n),
		nodeWrite: make([]*obs.Histogram, n),
	}
	for i := 0; i < n; i++ {
		ob.nodeRead[i] = ob.reg.Histogram(fmt.Sprintf("node%d.read", i))
		ob.nodeWrite[i] = ob.reg.Histogram(fmt.Sprintf("node%d.write", i))
	}
	ob.drain = ob.reg.Histogram("drain.stripe")
	ob.heal = ob.reg.Histogram("heal.stripe")
	ob.readOp = ob.reg.Histogram("read.op")
	ob.writeOp = ob.reg.Histogram("write.op")
	ob.hedged = ob.reg.Counter("read.hedged")
	ob.hedgeWins = ob.reg.Counter("read.hedge_wins")
	ob.retries = ob.reg.Counter("span.retries")
	ob.retriesExhausted = ob.reg.Counter("span.retries_exhausted")
	ob.quarantines = ob.reg.Counter("node.quarantines")
	ob.autoHeals = ob.reg.Counter("node.auto_heals")
	return ob
}

// Obs exposes the volume's metrics registry (per-node read/write
// latency, drain and heal timings) for status tooling.
func (v *Volume) Obs() *obs.Registry { return v.ob.reg }

// nodeCtx derives the per-node operation deadline. It is the volume's
// slow-node bound: a member that exceeds it is treated as down rather
// than allowed to stall every stripe it participates in.
func (v *Volume) nodeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if v.opts.NodeTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, v.opts.NodeTimeout)
}

// grab snapshots the member's connection for one operation.
func (v *Volume) grab(i int) (n Node, gen uint64, err error) {
	v.meta.Lock()
	defer v.meta.Unlock()
	m := v.nodes[i]
	if m.state != StateUp || m.node == nil {
		return nil, 0, fmt.Errorf("%w: node %d (%s)", ErrNodeDown, i, m.addr)
	}
	return m.node, m.gen, nil
}

// nodeRead fills p from node i at off, observing latency and demoting
// the node on a connection-class failure.
func (v *Volume) nodeRead(ctx context.Context, i int, p []byte, off int64) error {
	n, gen, err := v.grab(i)
	if err != nil {
		return err
	}
	cctx, cancel := v.nodeCtx(ctx)
	t0 := time.Now()
	_, err = n.ReadAtContext(cctx, p, off)
	cancel()
	v.ob.nodeRead[i].Observe(time.Since(t0))
	return v.classify(ctx, i, gen, err)
}

// nodeWrite writes p to node i at off. A write that *fails mid-op*
// leaves the target unit torn — old, new, or mixed — so the unit is
// marked stale for its stripe before the error propagates: the volume
// never trusts bytes whose write it cannot prove completed. (Every
// nodeWrite targets a single stripe unit, so the stripe is off's.)
func (v *Volume) nodeWrite(ctx context.Context, i int, p []byte, off int64) error {
	n, gen, err := v.grab(i)
	if err != nil {
		return err
	}
	cctx, cancel := v.nodeCtx(ctx)
	t0 := time.Now()
	_, err = n.WriteAtContext(cctx, p, off)
	cancel()
	v.ob.nodeWrite[i].Observe(time.Since(t0))
	if err != nil {
		st := off / v.geo.StripeUnit
		v.meta.Lock()
		if v.nodes[i].stale.Mark(st) {
			v.persistMarksLocked() // best effort; the bits survive in memory
		}
		v.meta.Unlock()
	}
	return v.classify(ctx, i, gen, err)
}

// classify decides whether an operation error means the *node* is gone
// (demote, return ErrNodeDown so span loops re-route) or the operation
// merely failed (pass through). A caller-cancelled context is never
// blamed on the node.
func (v *Volume) classify(ctx context.Context, i int, gen uint64, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if !isNodeDownErr(err) {
		return err
	}
	v.markDown(i, gen, err)
	return fmt.Errorf("%w: node %d: %v", ErrNodeDown, i, err)
}

// isNodeDownErr reports whether err indicates the node (or the path to
// it) is gone, as opposed to a request-level failure like ErrDataLoss
// that the node itself reported.
func isNodeDownErr(err error) bool {
	if errors.Is(err, ErrNodeDown) || // FaultNode injections
		errors.Is(err, server.ErrConnectionLost) ||
		errors.Is(err, server.ErrShutdown) ||
		errors.Is(err, context.DeadlineExceeded) || // NodeTimeout fired
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// markDown transitions node i to StateDown. The gen check makes demote
// racing redial safe: a failure observed on the old connection cannot
// kill a freshly dialed one. Each demotion is also a flap event: a node
// that accumulates FlapThreshold of them inside FlapWindow is
// quarantined, which fences it off from the prober's redial/auto-heal
// cycle (I/O routing is already around it) and ends the heal storm a
// flapping node otherwise drives.
func (v *Volume) markDown(i int, gen uint64, cause error) {
	v.meta.Lock()
	m := v.nodes[i]
	if m.gen != gen || m.state == StateDown {
		v.meta.Unlock()
		return
	}
	m.state = StateDown
	m.lastErr = cause
	old := m.node
	m.node = nil
	v.stats.NodeFailovers++
	m.consecFails++
	quarantined := false
	if v.opts.FlapThreshold > 0 {
		now := time.Now()
		cut := now.Add(-v.opts.FlapWindow)
		keep := m.failTimes[:0]
		for _, ts := range m.failTimes {
			if ts.After(cut) {
				keep = append(keep, ts)
			}
		}
		m.failTimes = append(keep, now)
		if len(m.failTimes) >= v.opts.FlapThreshold && !m.quarantined {
			m.quarantined = true
			m.quarantineAt = now
			v.stats.Quarantines++
			quarantined = true
		}
	}
	fails := len(m.failTimes)
	v.meta.Unlock()
	if old != nil {
		go old.Close()
	}
	v.logf("cluster: node %d (%s) down: %v", i, m.addr, cause)
	if quarantined {
		v.ob.quarantines.Inc()
		v.logf("cluster: node %d (%s) QUARANTINED: %d failures within %v; no auto-heal until cleared",
			i, m.addr, fails, v.opts.FlapWindow)
	}
}

// ClearQuarantine lifts the flap damper's fence from node i, letting
// the prober redial and auto-heal it again — the administrative "I
// fixed the machine" switch. HealNode implies it.
func (v *Volume) ClearQuarantine(i int) error {
	if i < 0 || i >= len(v.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	v.meta.Lock()
	v.clearQuarantineLocked(v.nodes[i])
	v.meta.Unlock()
	return nil
}

func (v *Volume) clearQuarantineLocked(m *member) {
	m.quarantined = false
	m.failTimes = nil
	m.probeBackoff = 0
	m.nextProbe = time.Time{}
}

// FailNode manually demotes a node, as if its next operation had failed
// — the administrative "I am taking this machine away" switch.
func (v *Volume) FailNode(i int) error {
	if i < 0 || i >= len(v.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	v.meta.Lock()
	gen := v.nodes[i].gen
	v.meta.Unlock()
	v.markDown(i, gen, errors.New("administratively failed"))
	return nil
}

func (v *Volume) logf(format string, args ...any) {
	if v.opts.Logf != nil {
		v.opts.Logf(format, args...)
	}
}

// probeLoop is the optional background health prober: it pings up
// nodes so a silently dead one is demoted before a client write trips
// over it, and redials down nodes when they answer again, handing the
// rebuild to a background auto-heal. Every node is probed concurrently
// — one member wedged at NodeTimeout must not delay detection of the
// next by N×timeout — with a per-node in-flight guard so a wedged probe
// never stacks another behind it.
func (v *Volume) probeLoop() {
	defer v.wg.Done()
	t := time.NewTicker(v.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-v.stop:
			return
		case <-t.C:
		}
		for i := range v.nodes {
			if !v.beginProbe(i) {
				continue
			}
			v.wg.Add(1)
			go func(i int) {
				defer v.wg.Done()
				v.probeNode(i)
			}(i)
		}
	}
}

// beginProbe decides whether node i gets a probe this tick and claims
// its in-flight slot. Down nodes are subject to the redial backoff and
// the flap quarantine; a quarantine past its decay is lifted here.
func (v *Volume) beginProbe(i int) bool {
	v.meta.Lock()
	m := v.nodes[i]
	if v.closed || m.probing {
		v.meta.Unlock()
		return false
	}
	decayed := false
	if m.state == StateDown {
		if m.quarantined {
			if v.opts.QuarantineDecay < 0 || time.Since(m.quarantineAt) < v.opts.QuarantineDecay {
				v.meta.Unlock()
				return false
			}
			v.clearQuarantineLocked(m)
			decayed = true
		}
		if m.dial == nil || time.Now().Before(m.nextProbe) {
			v.meta.Unlock()
			return false
		}
	}
	m.probing = true
	v.meta.Unlock()
	if decayed {
		v.logf("cluster: node %d (%s) quarantine decayed, probing again", i, m.addr)
	}
	return true
}

func (v *Volume) probeNode(i int) {
	defer func() {
		v.meta.Lock()
		v.nodes[i].probing = false
		v.meta.Unlock()
	}()
	v.meta.Lock()
	m := v.nodes[i]
	state, n, gen := m.state, m.node, m.gen
	v.meta.Unlock()
	switch {
	case state == StateUp && n != nil:
		ctx, cancel := context.WithTimeout(v.bgCtx, v.opts.NodeTimeout)
		err := n.Ping(ctx)
		cancel()
		if err != nil && isNodeDownErr(err) {
			v.markDown(i, gen, err)
		}
	case state == StateDown:
		if err := v.redialNode(i); err != nil {
			// Still unreachable: back off so a dead node is not hammered
			// every tick (backoff doubles up to ProbeBackoffMax).
			v.meta.Lock()
			if m.probeBackoff == 0 {
				m.probeBackoff = v.opts.ProbeInterval
			} else {
				m.probeBackoff *= 2
			}
			if m.probeBackoff > v.opts.ProbeBackoffMax {
				m.probeBackoff = v.opts.ProbeBackoffMax
			}
			m.nextProbe = time.Now().Add(m.probeBackoff)
			v.meta.Unlock()
			return
		}
		v.meta.Lock()
		m.probeBackoff = 0
		m.nextProbe = time.Time{}
		v.meta.Unlock()
		v.startAutoHeal(i)
	}
}

// startAutoHeal launches one background heal of node i, if none is in
// flight. The heal runs under the volume's background context — a
// generous lifetime ended only by Close, not the prober's tick or
// NodeTimeout — so a large stale backlog is rebuilt once instead of
// being killed mid-sweep and restarted every probe interval.
func (v *Volume) startAutoHeal(i int) {
	v.meta.Lock()
	m := v.nodes[i]
	if v.closed || m.healing {
		v.meta.Unlock()
		return
	}
	m.healing = true
	v.stats.AutoHeals++
	v.wg.Add(1)
	v.meta.Unlock()
	v.ob.autoHeals.Inc()
	v.logf("cluster: node %d (%s) back up, auto-heal started", i, m.addr)
	go func() {
		defer v.wg.Done()
		// Quiesce before rebuilding: the wire protocol has no write
		// fencing, so a request that was in flight when the link failed
		// can still be delivered now that it is back (network-buffered
		// during a partition, for example). Every such zombie write
		// targets a stripe the marking memory already calls stale — the
		// demotion marked it before rerouting — so letting them land
		// first guarantees the rebuild, not the zombie, writes last.
		// The successful redial proves the link forwards again, so the
		// backlog drains in RTTs; NodeTimeout (capped) is generous.
		settle := v.opts.NodeTimeout
		if settle > 500*time.Millisecond {
			settle = 500 * time.Millisecond
		}
		t := time.NewTimer(settle)
		select {
		case <-v.bgCtx.Done():
			t.Stop()
			v.meta.Lock()
			m.healing = false
			v.meta.Unlock()
			return
		case <-t.C:
		}
		rep, err := v.healNode(v.bgCtx, i, false)
		v.meta.Lock()
		m.healing = false
		v.meta.Unlock()
		if err != nil {
			v.logf("cluster: auto-heal node %d: %v", i, err)
			return
		}
		v.logf("cluster: auto-heal node %d done: healed=%d lost=%d remaining=%d",
			i, rep.Healed, len(rep.Lost), rep.Remaining)
	}()
}
