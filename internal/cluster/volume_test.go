package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
)

// memNode is an in-process Node over a byte slice: the unit-test stand-
// in for an afraidd backend. Close is a no-op so tests can hand the
// same instance back through Member.Dial after a simulated crash.
type memNode struct {
	mu   sync.Mutex
	data []byte
}

func newMemNode(size int64) *memNode { return &memNode{data: make([]byte, size)} }

func (n *memNode) ReadAtContext(_ context.Context, p []byte, off int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(n.data)) {
		return 0, fmt.Errorf("memNode: read [%d,%d) outside %d", off, off+int64(len(p)), len(n.data))
	}
	copy(p, n.data[off:])
	return len(p), nil
}

func (n *memNode) WriteAtContext(_ context.Context, p []byte, off int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(n.data)) {
		return 0, fmt.Errorf("memNode: write [%d,%d) outside %d", off, off+int64(len(p)), len(n.data))
	}
	copy(n.data[off:], p)
	return len(p), nil
}

func (n *memNode) Flush(context.Context) error { return nil }
func (n *memNode) Ping(context.Context) error  { return nil }
func (n *memNode) Capacity() int64             { n.mu.Lock(); defer n.mu.Unlock(); return int64(len(n.data)) }
func (n *memNode) Close() error                { return nil }

// testVolume builds an nNodes-member volume over FaultNode-wrapped
// memNodes, each re-dialable (heal hands the same injector back).
func testVolume(t *testing.T, nNodes int, nodeSize int64, opts Options) (*Volume, []*FaultNode) {
	t.Helper()
	faults := make([]*FaultNode, nNodes)
	members := make([]Member, nNodes)
	for i := range members {
		faults[i] = NewFaultNode(newMemNode(nodeSize), int64(1000+i))
		f := faults[i]
		members[i] = Member{
			Addr: fmt.Sprintf("mem%d", i),
			Node: f,
			Dial: func() (Node, error) { return f, nil },
		}
	}
	v, err := Open(members, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v, faults
}

// quietOpts keeps background machinery out of deterministic tests.
func quietOpts() Options {
	return Options{StripeUnit: 4096, DisableDrain: true, NodeTimeout: 5 * time.Second}
}

// TestLocateBoundaries pins the client-address → (stripe, node, offset)
// mapping at the edges, with expectations computed by hand for the
// left-symmetric rotation over 4 nodes (parity starts on node 3 and
// rotates left: stripe 0 data on nodes 0,1,2; stripe 1 on 3,0,1; ...).
func TestLocateBoundaries(t *testing.T) {
	const unit = 4096
	v, _ := testVolume(t, 4, 16*unit, quietOpts()) // 16 stripes, 12K data each
	if got := v.Capacity(); got != 16*3*unit {
		t.Fatalf("capacity = %d, want %d", got, 16*3*unit)
	}
	cases := []struct {
		addr    int64
		stripe  int64
		node    int
		nodeOff int64
	}{
		{0, 0, 0, 0},                        // first byte
		{unit - 1, 0, 0, unit - 1},          // last byte of first unit
		{unit, 0, 1, 0},                     // unit edge crosses to next node
		{3*unit - 1, 0, 2, unit - 1},        // last data byte of stripe 0
		{3 * unit, 1, 3, unit},              // stripe edge; stripe 1 data starts on node 3
		{6*unit - 1, 1, 1, 2*unit - 1},      // last byte of stripe 1 (data idx 2 → node 1)
		{6 * unit, 2, 2, 2 * unit},          // stripe 2 data starts on node 2
		{9 * unit, 3, 1, 3 * unit},          // stripe 3: parity on node 0, data on 1,2,3
		{12 * unit, 4, 0, 4 * unit},         // rotation wraps: stripe 4 like stripe 0
		{16*3*unit - 1, 15, 3, 16*unit - 1}, // very last byte (stripe 15: parity node 0)
	}
	for _, c := range cases {
		st, node, off, err := v.Locate(c.addr)
		if err != nil {
			t.Errorf("Locate(%d): %v", c.addr, err)
			continue
		}
		if st != c.stripe || node != c.node || off != c.nodeOff {
			t.Errorf("Locate(%d) = (stripe %d, node %d, off %d), want (%d, %d, %d)",
				c.addr, st, node, off, c.stripe, c.node, c.nodeOff)
		}
	}
	for _, bad := range []int64{-1, 16 * 3 * unit, math.MaxInt64} {
		if _, _, _, err := v.Locate(bad); err == nil {
			t.Errorf("Locate(%d) succeeded, want error", bad)
		}
	}
}

func TestOpenValidation(t *testing.T) {
	mk := func(n int, size int64) []Member {
		ms := make([]Member, n)
		for i := range ms {
			ms[i] = Member{Addr: fmt.Sprintf("m%d", i), Node: newMemNode(size)}
		}
		return ms
	}
	if _, err := Open(mk(2, 1<<20), Options{}); err == nil {
		t.Error("Open with 2 members succeeded, want error")
	}
	if _, err := Open(mk(3, 100), Options{StripeUnit: 4096}); err == nil {
		t.Error("Open with sub-stripe nodes succeeded, want error")
	}
	// Capacity is truncated to whole stripe units of the smallest node.
	ms := mk(4, 16*4096)
	ms[2] = Member{Addr: "small", Node: newMemNode(8*4096 + 123)}
	v, err := Open(ms, Options{StripeUnit: 4096, DisableDrain: true})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if got, want := v.Capacity(), int64(8*3*4096); got != want {
		t.Errorf("capacity = %d, want %d (truncated to smallest node)", got, want)
	}
}

// TestRangeOverflowHardening mirrors the layout.Split hardening: ranges
// whose off+length wraps int64 must be rejected, not panic or pass.
func TestRangeOverflowHardening(t *testing.T) {
	v, _ := testVolume(t, 4, 16*4096, quietOpts())
	buf := make([]byte, 8192)
	for _, off := range []int64{math.MaxInt64 - 1, math.MaxInt64 - 4096, v.Capacity() - 1, -1} {
		if _, err := v.ReadAt(buf, off); err == nil {
			t.Errorf("ReadAt(len %d, off %d) succeeded, want range error", len(buf), off)
		}
		if _, err := v.WriteAt(buf, off); err == nil {
			t.Errorf("WriteAt(len %d, off %d) succeeded, want range error", len(buf), off)
		}
	}
	// Exactly at capacity end is fine.
	if _, err := v.WriteAt(buf, v.Capacity()-int64(len(buf))); err != nil {
		t.Errorf("write ending at capacity: %v", err)
	}
}

// TestRoundTripAndDrain writes the whole volume with unaligned chunks,
// reads it back, and checks Flush leaves every stripe redundant and
// parity verifiable.
func TestRoundTripAndDrain(t *testing.T) {
	v, _ := testVolume(t, 5, 32*4096, quietOpts())
	capacity := v.Capacity()
	shadow := make([]byte, capacity)
	rng := rand.New(rand.NewSource(42))
	rng.Read(shadow)

	// Unaligned chunked writes: stress unit and stripe edge handling.
	for off := int64(0); off < capacity; {
		n := int64(rng.Intn(3*4096)) + 1
		if off+n > capacity {
			n = capacity - off
		}
		if _, err := v.WriteAt(shadow[off:off+n], off); err != nil {
			t.Fatalf("WriteAt(%d, %d): %v", n, off, err)
		}
		off += n
	}
	if v.DirtyStripes() == 0 {
		t.Fatal("no dirty stripes after writes: deferred parity not deferred")
	}
	got := make([]byte, capacity)
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("read-back mismatch before drain")
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n := v.DirtyStripes(); n != 0 {
		t.Fatalf("%d stripes still dirty after Flush", n)
	}
	bad, skipped, err := v.VerifyParity(context.Background())
	if err != nil || len(bad) != 0 || skipped != 0 {
		t.Fatalf("VerifyParity = (bad %v, skipped %d, err %v), want clean", bad, skipped, err)
	}
	st := v.Stats()
	if st.ParityDrains == 0 || st.Writes == 0 || st.Reads == 0 {
		t.Errorf("stats not counting: %+v", st)
	}
}

// TestBackgroundDrain checks the idle drain empties the dirty set
// without an explicit Flush.
func TestBackgroundDrain(t *testing.T) {
	opts := Options{StripeUnit: 4096, DrainIdle: 10 * time.Millisecond, NodeTimeout: 5 * time.Second}
	v, _ := testVolume(t, 4, 16*4096, opts)
	buf := make([]byte, 3*4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	if _, err := v.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for v.DirtyStripes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background drain left %d stripes dirty", v.DirtyStripes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMarksPersistence checks the marking memory survives a volume-host
// restart: dirty stripes recorded before Close are still dirty after a
// re-Open over the same NVRAM, then drain clean.
func TestMarksPersistence(t *testing.T) {
	nv := &core.MemNVRAM{}
	nodes := make([]*memNode, 4)
	mk := func() []Member {
		ms := make([]Member, len(nodes))
		for i := range nodes {
			if nodes[i] == nil {
				nodes[i] = newMemNode(16 * 4096)
			}
			n := nodes[i]
			ms[i] = Member{Addr: fmt.Sprintf("m%d", i), Node: n, Dial: func() (Node, error) { return n, nil }}
		}
		return ms
	}
	opts := quietOpts()
	opts.NV = nv
	v, err := Open(mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*4096)
	for i := range buf {
		buf[i] = 0xA5
	}
	if _, err := v.WriteAt(buf, 5*3*4096); err != nil { // stripe 5
		t.Fatal(err)
	}
	want := v.DirtyList()
	if len(want) == 0 {
		t.Fatal("write left nothing dirty")
	}
	v.Close()

	v2, err := Open(mk(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	got := v2.DirtyList()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dirty after reopen = %v, want %v", got, want)
	}
	if v2.Stats().Recovered {
		t.Error("clean reopen flagged as recovery")
	}
	if err := v2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := v2.DirtyStripes(); n != 0 {
		t.Fatalf("%d dirty after flush", n)
	}
}

// TestDownAtOpenStaleSurvivesReopen: a process that opens the volume
// with a member unreachable marks that member fully suspect — and must
// PERSIST the verdict. A later process that finds the node answering
// again (possibly with a blank replacement disk) must still see the
// all-stale map and refuse to trust the node until it is healed;
// otherwise the blank disk would serve zeros as data.
func TestDownAtOpenStaleSurvivesReopen(t *testing.T) {
	nv := &core.MemNVRAM{}
	nodes := make([]*memNode, 4)
	for i := range nodes {
		nodes[i] = newMemNode(16 * 4096)
	}
	mk := func(dead int) []Member {
		ms := make([]Member, len(nodes))
		for i := range nodes {
			n := nodes[i]
			if i == dead {
				ms[i] = Member{Addr: fmt.Sprintf("m%d", i),
					Dial: func() (Node, error) { return nil, errors.New("unreachable") }}
				continue
			}
			ms[i] = Member{Addr: fmt.Sprintf("m%d", i), Node: n, Dial: func() (Node, error) { return n, nil }}
		}
		return ms
	}
	opts := quietOpts()
	opts.NV = nv
	// First process: node 2 down at open, no persisted record of it.
	v, err := Open(mk(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	shadow := fillVolume(t, v, 23)
	v.Close()

	// Second process: node 2 answers again, but its disk is blank.
	nodes[2] = newMemNode(16 * 4096)
	v2, err := Open(mk(-1), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if got, want := v2.NodeStates()[2].StaleStripes, v2.Geometry().Stripes(); got != want {
		t.Fatalf("stale after reopen = %d, want all %d (suspect verdict lost)", got, want)
	}
	// Reads must come from reconstruction, not the blank disk...
	got := make([]byte, v2.Capacity())
	if _, err := v2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("blank rejoined node served garbage")
	}
	// ...until a heal sweep rebuilds it for real.
	if rep, err := v2.HealNode(context.Background(), 2, false); err != nil || rep.Remaining != 0 || len(rep.Lost) != 0 {
		t.Fatalf("heal = %+v, %v", rep, err)
	}
	if err := v2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	bad, skipped, err := v2.VerifyParity(context.Background())
	if err != nil || len(bad) != 0 || skipped != 0 {
		t.Fatalf("VerifyParity = (%v, %d, %v), want clean", bad, skipped, err)
	}
}

// TestMarksRecovery: an unusable marking-memory image must trigger the
// paper's recovery — everything marked for parity rebuild, loudly.
func TestMarksRecovery(t *testing.T) {
	nv := &core.MemNVRAM{}
	if err := nv.Store([]byte("definitely not a marks image")); err != nil {
		t.Fatal(err)
	}
	opts := quietOpts()
	opts.NV = nv
	members := make([]Member, 4)
	for i := range members {
		members[i] = Member{Addr: fmt.Sprintf("m%d", i), Node: newMemNode(16 * 4096)}
	}
	v, err := Open(members, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if !v.Stats().Recovered {
		t.Error("Recovered not flagged")
	}
	if got, want := v.DirtyStripes(), v.Geometry().Stripes(); got != want {
		t.Errorf("dirty after recovery = %d, want all %d", got, want)
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatalf("recovery flush: %v", err)
	}
	bad, skipped, err := v.VerifyParity(context.Background())
	if err != nil || len(bad) != 0 || skipped != 0 {
		t.Fatalf("VerifyParity after recovery = (%v, %d, %v)", bad, skipped, err)
	}
}

// TestClosedVolume checks post-Close calls fail with ErrClosed.
func TestClosedVolume(t *testing.T) {
	v, _ := testVolume(t, 3, 16*4096, quietOpts())
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadAt(make([]byte, 4096), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadAt after Close = %v, want ErrClosed", err)
	}
	if err := v.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := v.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}
