package cluster

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// retrySpan runs one span attempt under its stripe lock, retrying while
// the failure is a node demotion (ErrNodeDown). A demotion changes the
// routing — the next attempt reads degraded or writes under the
// synchronous protocol — so the first retry is immediate; later retries
// back off exponentially with jitter, because repeated ErrNodeDown
// inside one span means the cluster is churning (a redial raced a
// failure, a second node is going) and hammering it helps nobody. The
// budget bounds the spin the old bare loop allowed.
func (v *Volume) retrySpan(ctx context.Context, fn func() error) error {
	budget := v.opts.RetryBudget
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || !errors.Is(err, ErrNodeDown) {
			return err
		}
		if budget < 0 {
			return err
		}
		if attempt >= budget {
			v.meta.Lock()
			v.stats.RetriesExhausted++
			v.meta.Unlock()
			v.ob.retriesExhausted.Inc()
			return err
		}
		v.meta.Lock()
		v.stats.Retries++
		v.meta.Unlock()
		v.ob.retries.Inc()
		if attempt == 0 {
			continue
		}
		d := v.backoff(attempt)
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-v.stop:
			t.Stop()
			return ErrClosed
		case <-t.C:
		}
	}
}

// backoff returns the sleep before retry `attempt` (attempt >= 1):
// RetryBase doubling per attempt, capped at RetryMaxBackoff, with equal
// jitter (half fixed, half uniform) so concurrent spans retrying after
// the same demotion do not stampede in phase.
func (v *Volume) backoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 20 {
		shift = 20 // past here the cap below always wins
	}
	d := v.opts.RetryBase << shift
	if d > v.opts.RetryMaxBackoff || d <= 0 {
		d = v.opts.RetryMaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
