package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ignoreNodeDown absorbs a node failure observed during background
// parity work: the node is already demoted, the stripe stays dirty, and
// a later drain (post-heal) retries. Anything else is a real error.
func ignoreNodeDown(err error) error {
	if errors.Is(err, ErrNodeDown) {
		return nil
	}
	return err
}

// drainLoop is the volume's background parity engine: when the volume
// has been quiet for DrainIdle, or whenever the dirty backlog breaches
// MaxDirty, it walks the dirty stripes and rebuilds their parity units.
func (v *Volume) drainLoop() {
	defer v.wg.Done()
	period := v.opts.DrainIdle / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-v.stop:
			return
		case <-v.kick:
		case <-t.C:
		}
		v.drainPass()
	}
}

// drainPass drains the current dirty set once, yielding to foreground
// traffic unless the unredundancy window has been breached.
func (v *Volume) drainPass() {
	for _, st := range v.DirtyList() {
		select {
		case <-v.stop:
			return
		default:
		}
		v.meta.Lock()
		quiet := time.Since(v.lastIO) >= v.opts.DrainIdle
		over := v.dirty.Count() > v.opts.MaxDirty
		v.meta.Unlock()
		if !quiet && !over {
			return // fresh foreground I/O; back off until idle again
		}
		if _, _, err := v.drainStripe(context.Background(), st); err != nil {
			return
		}
	}
}

// Flush drains every dirty stripe (Workers at a time) and then flushes
// each reachable node so its own array settles too. If stripes cannot
// be drained because nodes they need are down, Flush returns
// ErrDegraded and leaves them marked — the exposure is preserved, not
// forgotten.
func (v *Volume) Flush(ctx context.Context) error {
	v.meta.Lock()
	closed := v.closed
	v.meta.Unlock()
	if closed {
		return ErrClosed
	}
	for {
		list := v.DirtyList()
		if len(list) == 0 {
			break
		}
		drained, skipped, err := v.drainMany(ctx, list)
		if err != nil {
			return err
		}
		if drained == 0 {
			if skipped > 0 {
				return fmt.Errorf("%w: %d stripes", ErrDegraded, skipped)
			}
			break
		}
	}
	return v.flushNodes(ctx)
}

// drainMany drains the listed stripes with bounded concurrency.
func (v *Volume) drainMany(ctx context.Context, list []int64) (drained, skipped int64, err error) {
	sem := make(chan struct{}, v.opts.Workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, st := range list {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return drained, skipped, err
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(st int64) {
			defer wg.Done()
			defer func() { <-sem }()
			ok, skip, err := v.drainStripe(ctx, st)
			mu.Lock()
			defer mu.Unlock()
			if ok {
				drained++
			}
			if skip {
				skipped++
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(st)
	}
	wg.Wait()
	return drained, skipped, firstErr
}

// flushNodes asks each reachable node to settle its own store.
func (v *Volume) flushNodes(ctx context.Context) error {
	var firstErr error
	for i := range v.nodes {
		n, gen, err := v.grab(i)
		if err != nil {
			continue // down node: nothing to flush there
		}
		cctx, cancel := v.nodeCtx(ctx)
		err = n.Flush(cctx)
		cancel()
		if err = v.classify(ctx, i, gen, err); err != nil && firstErr == nil && !errors.Is(err, ErrNodeDown) {
			firstErr = err
		}
	}
	return firstErr
}

// ParityPoint establishes a parity point over [off, off+length): on
// return every stripe overlapping the range is redundant, the cluster
// analogue of core.Store.ParityPoint. Stripes that cannot be drained
// (down nodes) yield ErrDegraded.
func (v *Volume) ParityPoint(ctx context.Context, off, length int64) error {
	if err := v.checkRange(off, length); err != nil {
		return err
	}
	if length == 0 {
		return nil
	}
	sdb := v.geo.StripeDataBytes()
	first, last := off/sdb, (off+length-1)/sdb
	list := make([]int64, 0, last-first+1)
	for st := first; st <= last; st++ {
		list = append(list, st)
	}
	_, skipped, err := v.drainMany(ctx, list)
	if err != nil {
		return err
	}
	if skipped > 0 {
		return fmt.Errorf("%w: %d stripes", ErrDegraded, skipped)
	}
	return nil
}
