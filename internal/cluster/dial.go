package cluster

import (
	"afraid/internal/server"
)

// Dial opens a volume over afraidd nodes at the given addresses, with
// redial hooks wired so HealNode and the prober can reconnect members
// that come back. Node i of the volume is addrs[i]; the order is the
// striping geometry and must be stable across restarts.
func Dial(addrs []string, opts Options) (*Volume, error) {
	opts.fill()
	members := make([]Member, len(addrs))
	for i, a := range addrs {
		a := a
		members[i] = Member{
			Addr: a,
			Dial: func() (Node, error) {
				c, err := server.DialTimeout(a, opts.DialTimeout)
				if err != nil {
					return nil, err
				}
				return c, nil
			},
		}
	}
	return Open(members, opts)
}

// VolumeStat is a point-in-time volume snapshot, the cluster mirror of
// core.Store's Stat surface.
type VolumeStat struct {
	Capacity   int64
	StripeUnit int64
	Stripes    int64
	Nodes      []NodeInfo
	Stats      Stats
}

// Stat snapshots geometry, per-node health, and activity counters.
func (v *Volume) Stat() VolumeStat {
	return VolumeStat{
		Capacity:   v.geo.Capacity(),
		StripeUnit: v.geo.StripeUnit,
		Stripes:    v.geo.Stripes(),
		Nodes:      v.NodeStates(),
		Stats:      v.Stats(),
	}
}
