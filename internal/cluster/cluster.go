// Package cluster applies AFRAID's deferred-parity idea across
// machines: a Volume presents one logical block space striped over N+1
// afraidd nodes, each node an independent block store reached over the
// network (internal/server's protocol). Placement reuses
// internal/layout's left-symmetric RAID-5 geometry with nodes in the
// disk role — every stripe has N data units on N distinct nodes and one
// XOR parity unit on another, with the parity role rotating so no
// single node becomes the parity-write bottleneck.
//
// Parity is deferred cluster-wide, exactly as the paper defers it
// across spindles: a write lands on the data nodes immediately, the
// stripe is marked unredundant in the volume's marking memory (an
// nvram.Bitmap, optionally persisted through a core.NVRAM), and a
// background drain rebuilds the parity unit during idle periods or once
// the dirty backlog exceeds the bounded unredundancy window. The
// paper's loss contract carries over at node granularity: if a node is
// lost, data loss is confined to stripes that were unredundant at the
// moment of failure, and is always reported (ErrDataLoss), never
// served silently.
//
// When a node dies the volume degrades rather than fails: reads of its
// units reconstruct from the surviving N-1 data units plus parity, and
// writes switch to a synchronous degraded protocol (parity maintained
// in-line) so no *new* exposure accrues while redundancy is already
// spent. Stripes written around a down node are tracked in a per-node
// stale map; when the node returns, a background heal rewrites exactly
// those units from the survivors and hands the backlog back to the
// drain. Node-level fault injection (crash, partition, slow node) lives
// in FaultNode, in the style of internal/fault, so chaos harnesses can
// audit the cluster-wide contract the way afraidchaos audits one array.
package cluster

import (
	"context"
	"errors"
	"fmt"
)

// Node is what the volume needs from one cluster member: the block
// surface of internal/server's Client, plus the cheap liveness probe.
// *server.Client satisfies it; tests substitute in-process loopbacks
// and fault injectors.
type Node interface {
	ReadAtContext(ctx context.Context, p []byte, off int64) (int, error)
	WriteAtContext(ctx context.Context, p []byte, off int64) (int, error)
	Flush(ctx context.Context) error
	Ping(ctx context.Context) error
	Capacity() int64
	Close() error
}

// Member describes one node position at Open time. Node may be nil when
// the member is unreachable; Dial, when set, lets the volume (re)connect
// — at open, from the health prober, and on HealNode.
type Member struct {
	Addr string // label for status output; not interpreted
	Node Node
	Dial func() (Node, error)
}

// Errors reported by the volume.
var (
	// ErrNodeDown marks an operation that needed a node the volume
	// currently considers unreachable.
	ErrNodeDown = errors.New("cluster: node down")
	// ErrTooManyNodes means the stripes touched need more simultaneous
	// survivors than are up: one lost node degrades, two (data-bearing)
	// lost nodes exceed single-parity redundancy.
	ErrTooManyNodes = errors.New("cluster: too many nodes down")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("cluster: volume is closed")
	// ErrDegraded is returned by Flush when dirty stripes could not be
	// drained because a node they need is down; they stay marked.
	ErrDegraded = errors.New("cluster: volume degraded, stripes left unredundant")
)

// NodeState is a member's reachability as the volume sees it.
type NodeState int

const (
	// StateUp means the node answers requests. It may still carry stale
	// stripe units (state Healing is reported while it does).
	StateUp NodeState = iota
	// StateDown means the node is unreachable: reads of its units are
	// served degraded, writes route around it synchronously.
	StateDown
	// StateHealing is reported for a reachable node whose stale map is
	// non-empty: a heal sweep (or routed writes) are still rebuilding
	// units it missed while down.
	StateHealing
	// StateQuarantined is a down node the flap damper has fenced off:
	// it failed FlapThreshold times inside FlapWindow, so the prober
	// stops redialing and auto-healing it until an administrator
	// (ClearQuarantine, HealNode) or the QuarantineDecay timer clears
	// it. I/O routing is unchanged — the node is still down — the
	// quarantine only ends the heal storm.
	StateQuarantined
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateHealing:
		return "healing"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// NodeInfo is one member's row in a volume status snapshot.
type NodeInfo struct {
	Index        int
	Addr         string
	State        NodeState
	StaleStripes int64  // units this node missed while down, not yet healed
	LastErr      string // error that last marked the node down ("" when up)
	ConsecFails  int    // demotions since the last clean heal
}
