//go:build race

package cluster

// raceEnabled reports whether the race detector is instrumenting this
// build; timing-sensitive assertions widen their margins under it.
const raceEnabled = true
