package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
	"afraid/internal/server"
)

// harnessNode is one real afraidd in miniature: a server.Server over a
// single-device in-memory store, restartable on a fresh port with the
// store's contents intact (the "machine rebooted, disk survived" case).
type harnessNode struct {
	t     *testing.T
	store *core.Store

	mu   sync.Mutex
	srv  *server.Server
	lis  net.Listener
	addr string
	done chan error
}

func newHarnessNode(t *testing.T, size int64) *harnessNode {
	t.Helper()
	st, err := core.Open(
		[]core.BlockDevice{core.NewMemDevice(size)},
		&core.MemNVRAM{},
		core.Options{Mode: core.Raid0, StripeUnit: 8 << 10, ScrubIdle: time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	h := &harnessNode{t: t, store: st}
	h.start()
	t.Cleanup(func() {
		h.stop()
		st.Close()
	})
	return h
}

func (h *harnessNode) start() {
	h.t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.t.Fatal(err)
	}
	srv := server.New(h.store, server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	h.mu.Lock()
	h.srv, h.lis, h.addr, h.done = srv, lis, lis.Addr().String(), done
	h.mu.Unlock()
}

// stop kills the server abruptly — connections die mid-flight — while
// the backing store stays open and intact.
func (h *harnessNode) stop() {
	h.mu.Lock()
	srv, done := h.srv, h.done
	h.srv = nil
	h.mu.Unlock()
	if srv == nil {
		return
	}
	srv.Close()
	if err := <-done; err != nil && !errors.Is(err, server.ErrServerClosed) {
		h.t.Errorf("Serve: %v", err)
	}
}

// Addr returns the node's current listen address (changes on restart).
func (h *harnessNode) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addr
}

// TestHarnessFourNodeCrashDegradedHealCycle is the acceptance cycle
// over real TCP afraidd nodes: write under load, kill a node, verify
// degraded reads and writes, restart the node process over its
// surviving store, heal, and end fully redundant and byte-identical.
func TestHarnessFourNodeCrashDegradedHealCycle(t *testing.T) {
	const nNodes = 4
	hnodes := make([]*harnessNode, nNodes)
	members := make([]Member, nNodes)
	for i := range hnodes {
		hnodes[i] = newHarnessNode(t, 2<<20)
		h := hnodes[i]
		members[i] = Member{
			Addr: h.Addr(),
			Dial: func() (Node, error) {
				c, err := server.DialTimeout(h.Addr(), 2*time.Second)
				if err != nil {
					return nil, err
				}
				return c, nil
			},
		}
	}
	v, err := Open(members, Options{
		StripeUnit:  32 << 10,
		DrainIdle:   20 * time.Millisecond,
		NodeTimeout: 5 * time.Second,
		DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	capacity := v.Capacity()
	shadow := make([]byte, capacity)
	rng := rand.New(rand.NewSource(20260808))
	rng.Read(shadow)

	// Concurrent writers, each owning a disjoint region: the volume
	// must take cluster writes in parallel (this is the -race target).
	var wg sync.WaitGroup
	region := capacity / 4
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * region
			for off := base; off < base+region; off += 24 << 10 {
				n := int64(24 << 10)
				if off+n > base+region {
					n = base + region - off
				}
				if _, err := v.WriteAt(shadow[off:off+n], off); err != nil {
					errs[w] = fmt.Errorf("writer %d at %d: %w", w, off, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Kill node 1's process mid-life. Its store (the "disk") survives.
	const victim = 1
	hnodes[victim].stop()

	// Degraded reads: every byte still correct.
	got := make([]byte, capacity)
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("degraded read mismatch")
	}
	if st := v.Stats(); st.DegradedReads == 0 || st.NodeFailovers == 0 {
		t.Fatalf("crash not visible in stats: %+v", st)
	}
	if v.NodeStates()[victim].State != StateDown {
		t.Fatalf("victim state = %v, want down", v.NodeStates()[victim].State)
	}

	// Degraded writes: routed around the dead node, parity maintained.
	for i := 0; i < 8; i++ {
		off := rng.Int63n(capacity - (40 << 10))
		buf := make([]byte, 40<<10)
		rng.Read(buf)
		if _, err := v.WriteAt(buf, off); err != nil {
			t.Fatalf("degraded write %d: %v", i, err)
		}
		copy(shadow[off:], buf)
	}

	// Restart the node process over the same store, new port, and heal.
	hnodes[victim].start()
	rep, err := v.HealNode(context.Background(), victim, false)
	if err != nil {
		t.Fatalf("HealNode: %v", err)
	}
	if len(rep.Lost) != 0 {
		t.Fatalf("heal lost stripes %v; volume was redundant at crash", rep.Lost)
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatalf("post-heal Flush: %v", err)
	}
	if n := v.DirtyStripes(); n != 0 {
		t.Fatalf("%d dirty stripes after heal+flush", n)
	}
	bad, skipped, err := v.VerifyParity(context.Background())
	if err != nil || len(bad) != 0 || skipped != 0 {
		t.Fatalf("VerifyParity = (%v, %d, %v), want clean", bad, skipped, err)
	}

	// Final proof the heal rebuilt real bytes: kill a different node and
	// read everything through reconstruction that leans on the healed
	// units.
	hnodes[3].stop()
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("read after second crash: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("mismatch after heal + second crash")
	}
}

// TestHarnessOpenWithDeadNodeAndLateJoin: a volume must open and serve
// degraded when a member is unreachable at Open, and absorb the member
// when it appears later via heal (full rebuild: its disk is blank).
func TestHarnessOpenWithDeadNode(t *testing.T) {
	const nNodes = 4
	hnodes := make([]*harnessNode, nNodes)
	members := make([]Member, nNodes)
	for i := range hnodes {
		hnodes[i] = newHarnessNode(t, 1<<20)
		h := hnodes[i]
		members[i] = Member{
			Addr: h.Addr(),
			Dial: func() (Node, error) {
				c, err := server.DialTimeout(h.Addr(), 2*time.Second)
				if err != nil {
					return nil, err
				}
				return c, nil
			},
		}
	}
	hnodes[2].stop() // dead before the volume ever saw it
	v, err := Open(members, Options{
		StripeUnit:   32 << 10,
		DisableDrain: true,
		NodeTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.NodeStates()[2].State != StateDown {
		t.Fatalf("node 2 state = %v, want down", v.NodeStates()[2].State)
	}
	// Everything the dead node would hold is conservatively suspect.
	if got, want := v.NodeStates()[2].StaleStripes, v.Geometry().Stripes(); got != want {
		t.Fatalf("stale stripes = %d, want all %d", got, want)
	}
	shadow := fillVolume(t, v, 17)
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("mismatch with node dead from the start")
	}
	// The node comes up (blank store): heal sweeps its whole stale map.
	hnodes[2].start()
	rep, err := v.HealNode(context.Background(), 2, false)
	if err != nil {
		t.Fatalf("HealNode: %v", err)
	}
	if rep.Remaining != 0 {
		t.Fatalf("heal left %d stripes", rep.Remaining)
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	hnodes[0].stop()
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("read leaning on late-joined node: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("late-joined node serving wrong bytes")
	}
}
