package cluster

import (
	"encoding/binary"
	"fmt"

	"afraid/internal/nvram"
)

// marksMagic heads the volume's persisted marking memory: the dirty map
// plus one stale map per node, the cluster's whole recovery state.
const marksMagic = "AFCLMK1\n"

// persistMarksLocked serialises the dirty and stale maps into the
// configured NVRAM. Callers hold meta. With no NVRAM configured the
// marks are memory-only (a volume-host crash then costs a full parity
// rebuild, exactly like running an array without NVRAM).
func (v *Volume) persistMarksLocked() error {
	if v.opts.NV == nil {
		return nil
	}
	blob := make([]byte, 0, 64)
	blob = append(blob, marksMagic...)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(v.nodes)))
	blob = appendBlob(blob, v.dirty.Serialize())
	for _, m := range v.nodes {
		blob = appendBlob(blob, m.stale.Serialize())
	}
	if err := v.opts.NV.Store(blob); err != nil {
		return fmt.Errorf("cluster: persist marks: %w", err)
	}
	return nil
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func takeBlob(src []byte) (blob, rest []byte, err error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("truncated length")
	}
	n := binary.LittleEndian.Uint32(src)
	src = src[4:]
	if uint32(len(src)) < n {
		return nil, nil, fmt.Errorf("truncated blob")
	}
	return src[:n], src[n:], nil
}

// recoverMarks restores the marking memory from NVRAM at Open. An
// absent image means a fresh volume. An unusable one (bad magic, wrong
// shape) triggers the paper's NVRAM-loss recovery, cluster-wide: every
// stripe is marked for parity rebuild and the event is flagged in
// Stats.Recovered. The data on reachable nodes is trusted — what is
// lost is the knowledge of which parity units lag it.
func (v *Volume) recoverMarks() error {
	if v.opts.NV == nil {
		return nil
	}
	img, err := v.opts.NV.Load()
	if err != nil {
		return fmt.Errorf("cluster: load marks: %w", err)
	}
	if len(img) == 0 {
		return nil // fresh marking memory
	}
	dirty, stales, perr := parseMarks(img, len(v.nodes), v.geo.Stripes())
	if perr != nil {
		v.logf("cluster: marking memory unusable (%v); recovering with full parity rebuild", perr)
		v.meta.Lock()
		markAll(v.dirty)
		v.stats.Recovered = true
		v.meta.Unlock()
		return nil
	}
	v.meta.Lock()
	v.dirty = dirty
	for i, m := range v.nodes {
		m.stale = stales[i]
	}
	if c := dirty.Count(); c > v.stats.DirtyHighWater {
		v.stats.DirtyHighWater = c
	}
	v.meta.Unlock()
	return nil
}

func parseMarks(img []byte, nodes int, stripes int64) (*nvram.Bitmap, []*nvram.Bitmap, error) {
	if len(img) < len(marksMagic)+4 || string(img[:len(marksMagic)]) != marksMagic {
		return nil, nil, fmt.Errorf("bad magic")
	}
	rest := img[len(marksMagic):]
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if int(n) != nodes {
		return nil, nil, fmt.Errorf("image for %d nodes, volume has %d", n, nodes)
	}
	blob, rest, err := takeBlob(rest)
	if err != nil {
		return nil, nil, err
	}
	dirty, err := nvram.Deserialize(blob)
	if err != nil {
		return nil, nil, err
	}
	if dirty.Stripes() != stripes {
		return nil, nil, fmt.Errorf("dirty map for %d stripes, volume has %d", dirty.Stripes(), stripes)
	}
	stales := make([]*nvram.Bitmap, nodes)
	for i := 0; i < nodes; i++ {
		blob, rest, err = takeBlob(rest)
		if err != nil {
			return nil, nil, err
		}
		if stales[i], err = nvram.Deserialize(blob); err != nil {
			return nil, nil, err
		}
		if stales[i].Stripes() != stripes {
			return nil, nil, fmt.Errorf("stale map %d wrong size", i)
		}
	}
	return dirty, stales, nil
}
