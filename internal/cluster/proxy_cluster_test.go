package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"afraid/internal/fault"
	"afraid/internal/server"
)

// proxiedCluster is a 4-node volume over real TCP: each member is an
// afraidd in miniature (harnessNode) reached through a fault.Proxy, so
// network faults exercise the genuine dial/read/write/redial paths.
type proxiedCluster struct {
	nodes   []*harnessNode
	proxies []*fault.Proxy
	v       *Volume
}

func newProxiedCluster(t *testing.T, nNodes int, nodeSize int64, opts Options) *proxiedCluster {
	t.Helper()
	pc := &proxiedCluster{
		nodes:   make([]*harnessNode, nNodes),
		proxies: make([]*fault.Proxy, nNodes),
	}
	members := make([]Member, nNodes)
	for i := range members {
		pc.nodes[i] = newHarnessNode(t, nodeSize)
		p, err := fault.NewProxy(pc.nodes[i].Addr(), int64(9000+i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		pc.proxies[i] = p
		members[i] = Member{
			Addr: p.Addr(),
			Dial: func() (Node, error) {
				return server.DialTimeout(p.Addr(), 500*time.Millisecond)
			},
		}
	}
	v, err := Open(members, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	pc.v = v
	return pc
}

func proxyOpts() Options {
	return Options{
		StripeUnit:    8 << 10,
		NodeTimeout:   300 * time.Millisecond,
		DialTimeout:   250 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		DrainIdle:     10 * time.Millisecond,
		HedgeDelay:    -1, // deterministic routing for these tests
	}
}

// TestProxyClusterPartitionDegradesAndSelfHeals: a black-holed node
// (TCP up, nothing forwarded) must be cut loose by NodeTimeout, served
// around degraded, and — once the partition lifts — redialed and healed
// by the prober with no administrator involved.
func TestProxyClusterPartitionDegradesAndSelfHeals(t *testing.T) {
	const unit = 8 << 10
	pc := newProxiedCluster(t, 4, 256<<10, proxyOpts())
	v := pc.v
	shadow := fillVolume(t, v, 51)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	pc.proxies[1].Partition()
	// Reads keep working: the first touch pays NodeTimeout, the demotion
	// moves the volume to reconstruction.
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("read under partition: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("read under partition diverged")
	}
	// Writes route around the partition under the synchronous protocol.
	buf := bytes.Repeat([]byte{0xA5}, unit)
	if _, err := v.WriteAt(buf, 0); err != nil {
		t.Fatalf("write under partition: %v", err)
	}
	copy(shadow, buf)
	if s := v.NodeStates(); s[1].State == StateUp {
		t.Fatal("partitioned node still up after I/O")
	}
	if st := v.Stats(); st.DegradedReads == 0 {
		t.Error("no degraded reads counted under partition")
	}

	// Partition lifts; the prober redials and auto-heals on its own.
	pc.proxies[1].Restore()
	waitFor(t, 15*time.Second, "partitioned node healed", func() bool {
		s := v.NodeStates()
		return s[1].State == StateUp && s[1].StaleStripes == 0
	})
	if st := v.Stats(); st.AutoHeals == 0 {
		t.Error("no auto-heal counted after the partition lifted")
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("volume diverged after partition + self-heal")
	}
	if bad, skipped, err := v.VerifyParity(context.Background()); err != nil || len(bad) > 0 || skipped > 0 {
		t.Fatalf("parity verify: bad=%v skipped=%d err=%v", bad, skipped, err)
	}
}

// TestProxyClusterMidFrameReset: a connection reset in the middle of a
// request frame must surface as a node failure (the write is marked
// stale, the node demoted, the span rerouted) — never as silent
// corruption or a wedged volume.
func TestProxyClusterMidFrameReset(t *testing.T) {
	const unit = 8 << 10
	pc := newProxiedCluster(t, 4, 256<<10, proxyOpts())
	v := pc.v
	shadow := fillVolume(t, v, 52)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Arm a reset a little into the next traffic; full-unit writes keep
	// every degraded retry on the covers-the-absent-unit path.
	pc.proxies[2].ResetAfter(3000)
	buf := make([]byte, unit)
	for st := int64(0); st < 8; st++ {
		for u := int64(0); u < 3; u++ {
			off := (st*3 + u) * unit
			for i := range buf {
				buf[i] = byte(off + int64(i))
			}
			if _, err := v.WriteAt(buf, off); err != nil {
				t.Fatalf("write at %d: %v", off, err)
			}
			copy(shadow[off:], buf)
		}
	}
	if ps := pc.proxies[2].Stats(); ps.Resets == 0 {
		t.Fatal("armed reset never fired")
	}
	if st := v.Stats(); st.NodeFailovers == 0 {
		t.Error("mid-frame reset did not demote the node")
	}

	// The proxy path is healthy again (ResetAfter disarms after firing):
	// the prober redials and heals whatever the cut write left stale.
	waitFor(t, 15*time.Second, "reset node healed", func() bool {
		s := v.NodeStates()
		return s[2].State == StateUp && s[2].StaleStripes == 0
	})
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("volume diverged after mid-frame reset")
	}
	if bad, skipped, err := v.VerifyParity(context.Background()); err != nil || len(bad) > 0 || skipped > 0 {
		t.Fatalf("parity verify: bad=%v skipped=%d err=%v", bad, skipped, err)
	}
}
