package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultNode wraps a Node with node-level fault injection, the cluster
// analogue of fault.Device: crash (fail-stop), partition (network cut),
// slow node, a deterministic crash-after-N-ops trigger for reproducible
// mid-write failures, and a seeded random fail-stop probability. Chaos
// harnesses wrap each member in one and audit the volume's loss
// contract the way afraidchaos audits a single array.
type FaultNode struct {
	inner Node

	mu          sync.Mutex
	crashed     bool
	partitioned bool
	slow        time.Duration
	crashAfter  int64 // fail-stop before op N+1; <0 disabled
	pFail       float64
	flapUp      int64 // SetFlap: ops served per cycle (0 = flapping off)
	flapDown    int64 // SetFlap: ops refused per cycle
	flapPos     int64 // position inside the current flap cycle
	rng         *rand.Rand
	ops         int64
	injected    int64
}

// FaultNodeStats counts traffic through the injector.
type FaultNodeStats struct {
	Ops      int64 // operations attempted (including injected failures)
	Injected int64 // operations failed by injection
}

// NewFaultNode wraps inner. The seed drives the random fail-stop
// trigger (SetFailProb); runs with the same seed and workload inject at
// the same points.
func NewFaultNode(inner Node, seed int64) *FaultNode {
	return &FaultNode{inner: inner, crashAfter: -1, rng: rand.New(rand.NewSource(seed))}
}

// Crash fail-stops the node: every subsequent operation fails as
// node-down until Restore.
func (f *FaultNode) Crash() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// Partition cuts the node off as a network failure would; operationally
// identical to Crash from the volume's point of view, kept distinct so
// harness logs read true.
func (f *FaultNode) Partition() {
	f.mu.Lock()
	f.partitioned = true
	f.mu.Unlock()
}

// Restore clears crash, partition, slowness, and any pending triggers.
// (The volume still considers the node down until healed.)
func (f *FaultNode) Restore() {
	f.mu.Lock()
	f.crashed, f.partitioned = false, false
	f.slow = 0
	f.crashAfter = -1
	f.pFail = 0
	f.flapUp, f.flapDown, f.flapPos = 0, 0, 0
	f.mu.Unlock()
}

// SetSlow adds a fixed delay to every operation — the brownout node a
// NodeTimeout must eventually cut loose.
func (f *FaultNode) SetSlow(d time.Duration) {
	f.mu.Lock()
	f.slow = d
	f.mu.Unlock()
}

// CrashAfterOps arms a deterministic fail-stop: the next n operations
// succeed, then the node crashes. n=0 crashes on the next operation.
func (f *FaultNode) CrashAfterOps(n int64) {
	f.mu.Lock()
	f.crashAfter = n
	f.mu.Unlock()
}

// SetFailProb makes each operation fail-stop the node with probability
// p, drawn from the seeded generator.
func (f *FaultNode) SetFailProb(p float64) {
	f.mu.Lock()
	f.pFail = p
	f.mu.Unlock()
}

// SetFlap makes the node flap deterministically: upOps operations
// succeed, then downOps fail as node-down, then it "restarts" and the
// cycle repeats — the crash-after-N-ops, auto-restart machine a flap
// damper must fence off. Unlike Crash the node recovers by itself, so
// without damping the volume demotes, redials, and heals it forever.
// SetFlap(0, 0) turns flapping off.
func (f *FaultNode) SetFlap(upOps, downOps int64) {
	f.mu.Lock()
	f.flapUp, f.flapDown = upOps, downOps
	f.flapPos = 0
	f.mu.Unlock()
}

// Stats snapshots the injection counters.
func (f *FaultNode) Stats() FaultNodeStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultNodeStats{Ops: f.ops, Injected: f.injected}
}

// gate applies the injection state to one operation.
func (f *FaultNode) gate(ctx context.Context) error {
	f.mu.Lock()
	f.ops++
	if f.crashAfter >= 0 {
		if f.crashAfter == 0 {
			f.crashed = true
		}
		f.crashAfter--
	}
	if !f.crashed && f.pFail > 0 && f.rng.Float64() < f.pFail {
		f.crashed = true
	}
	dead := f.crashed || f.partitioned
	if !dead && f.flapUp > 0 && f.flapDown > 0 {
		if f.flapPos >= f.flapUp {
			dead = true
		}
		f.flapPos++
		if f.flapPos >= f.flapUp+f.flapDown {
			f.flapPos = 0 // restart: the node comes back by itself
		}
	}
	slow := f.slow
	if dead {
		f.injected++
	}
	f.mu.Unlock()
	if dead {
		return fmt.Errorf("%w: injected fault", ErrNodeDown)
	}
	if slow > 0 {
		t := time.NewTimer(slow)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// ReadAtContext implements Node.
func (f *FaultNode) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := f.gate(ctx); err != nil {
		return 0, err
	}
	return f.inner.ReadAtContext(ctx, p, off)
}

// WriteAtContext implements Node.
func (f *FaultNode) WriteAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := f.gate(ctx); err != nil {
		return 0, err
	}
	return f.inner.WriteAtContext(ctx, p, off)
}

// Flush implements Node.
func (f *FaultNode) Flush(ctx context.Context) error {
	if err := f.gate(ctx); err != nil {
		return err
	}
	return f.inner.Flush(ctx)
}

// Ping implements Node.
func (f *FaultNode) Ping(ctx context.Context) error {
	if err := f.gate(ctx); err != nil {
		return err
	}
	return f.inner.Ping(ctx)
}

// Capacity implements Node. It is volume-open metadata, not I/O, and is
// not gated.
func (f *FaultNode) Capacity() int64 { return f.inner.Capacity() }

// Close implements Node.
func (f *FaultNode) Close() error { return f.inner.Close() }
