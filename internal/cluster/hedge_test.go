package cluster

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// latNode wraps a Node with jittered per-op latency — the statistical
// stand-in for a loaded network path, where memNode's instant answers
// would degenerate every percentile to zero.
type latNode struct {
	Node
	mu   sync.Mutex
	rng  *rand.Rand
	base time.Duration
	jit  time.Duration
}

func newLatNode(inner Node, seed int64, base, jit time.Duration) *latNode {
	return &latNode{Node: inner, rng: rand.New(rand.NewSource(seed)), base: base, jit: jit}
}

func (n *latNode) SetLatency(base, jit time.Duration) {
	n.mu.Lock()
	n.base, n.jit = base, jit
	n.mu.Unlock()
}

func (n *latNode) delay(ctx context.Context) error {
	n.mu.Lock()
	d := n.base
	if n.jit > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jit)))
	}
	n.mu.Unlock()
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (n *latNode) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := n.delay(ctx); err != nil {
		return 0, err
	}
	return n.Node.ReadAtContext(ctx, p, off)
}

func (n *latNode) WriteAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := n.delay(ctx); err != nil {
		return 0, err
	}
	return n.Node.WriteAtContext(ctx, p, off)
}

// p99 returns the 99th percentile of the samples.
func p99(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * 99 / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestHedgedReadBoundsBrownoutTail is the ISSUE 10 latency acceptance:
// with one node browned out at 10x the healthy latency, hedged reads
// must keep the volume's read p99 within 2x the healthy-cluster p99 —
// and far below the brownout itself — without the node being demoted.
func TestHedgedReadBoundsBrownoutTail(t *testing.T) {
	const (
		unit        = 4096
		healthyBase = 5 * time.Millisecond
		healthyJit  = 5 * time.Millisecond // healthy node read: 5–10 ms
		brownout    = 100 * time.Millisecond
		hedgeDelay  = 6 * time.Millisecond
		reads       = 120
	)
	nNodes := 4
	lats := make([]*latNode, nNodes)
	members := make([]Member, nNodes)
	for i := range members {
		lats[i] = newLatNode(newMemNode(16*unit), int64(7000+i), healthyBase, healthyJit)
		n := lats[i]
		members[i] = Member{Addr: "lat", Node: n, Dial: func() (Node, error) { return n, nil }}
	}
	opts := quietOpts()
	opts.HedgeDelay = hedgeDelay
	v, err := Open(members, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	fillVolume(t, v, 99)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4242))
	measure := func() []time.Duration {
		buf := make([]byte, unit)
		samples := make([]time.Duration, 0, reads)
		for i := 0; i < reads; i++ {
			off := rng.Int63n(v.Capacity()/unit) * unit
			t0 := time.Now()
			if _, err := v.ReadAt(buf, off); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			samples = append(samples, time.Since(t0))
		}
		return samples
	}

	healthyP99 := p99(measure())
	lats[2].SetLatency(brownout, 0) // 10x the healthy ceiling
	hedgedP99 := p99(measure())

	t.Logf("healthy p99 = %v, browned-out p99 with hedging = %v", healthyP99, hedgedP99)
	// The race detector slows the reconstruction path (parallel reads +
	// XOR) far more than a plain node read; widen the ratio there. The
	// absolute bound below holds either way.
	ratio := time.Duration(2)
	if raceEnabled {
		ratio = 5
	}
	if hedgedP99 > ratio*healthyP99 {
		t.Errorf("hedged p99 %v exceeds %dx healthy p99 %v", hedgedP99, ratio, healthyP99)
	}
	if hedgedP99 > brownout/2 {
		t.Errorf("hedged p99 %v not well below the %v brownout", hedgedP99, brownout)
	}
	st := v.Stats()
	if st.HedgedReads == 0 || st.HedgeWins == 0 {
		t.Errorf("no hedge activity recorded: hedged=%d wins=%d", st.HedgedReads, st.HedgeWins)
	}
	// The browned-out node answered (slowly) every time: hedging hid the
	// latency without spending a demotion on a live node.
	if s := v.NodeStates(); s[2].State != StateUp {
		t.Errorf("browned-out node state = %v, want up", s[2].State)
	}
	if c := v.Obs().Counters(); c["read.hedge_wins"] == 0 {
		t.Errorf("obs counter read.hedge_wins = 0, want > 0 (%v)", c)
	}
}

// TestHedgeDisabled pins the opt-out: HedgeDelay < 0 must never hedge.
func TestHedgeDisabled(t *testing.T) {
	opts := quietOpts()
	opts.HedgeDelay = -1
	v, _ := testVolume(t, 4, 16*4096, opts)
	fillVolume(t, v, 3)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := 0; i < 32; i++ {
		if _, err := v.ReadAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	if st := v.Stats(); st.HedgedReads != 0 {
		t.Fatalf("hedges fired with hedging disabled: %d", st.HedgedReads)
	}
}

// TestHedgeAutoDelayDerivesFromP99 pins auto mode: with enough samples
// the delay tracks the merged node-read p99 (clamped), not the default.
func TestHedgeAutoDelayDerivesFromP99(t *testing.T) {
	opts := quietOpts()
	v, _ := testVolume(t, 4, 16*4096, opts)
	fillVolume(t, v, 5)
	// Seed the node-read histograms with a known distribution.
	for i := 0; i < 200; i++ {
		v.ob.nodeRead[i%4].Observe(10 * time.Millisecond)
	}
	v.hedgeEval.Store(0) // invalidate the cache
	if d := v.hedgeDelay(); d < 5*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("auto hedge delay = %v, want ~10ms from the seeded p99", d)
	}
}
