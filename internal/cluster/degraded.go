package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"afraid/internal/bufpool"
	"afraid/internal/layout"
	"afraid/internal/parity"
)

// degradedReadExtent reconstructs the bytes of one extent whose home
// node is absent: the same sub-range of every surviving data unit plus
// the parity unit, XORed together. Caller holds the stripe lock and has
// verified the stripe is clean with exactly one absent data unit.
func (v *Volume) degradedReadExtent(ctx context.Context, dst []byte, st int64, e layout.Extent) error {
	n := v.geo.DataDisks()
	srcs := make([][]byte, 0, n) // n-1 survivors + parity
	defer func() {
		for _, b := range srcs {
			bufpool.Put(b)
		}
	}()
	type job struct {
		node int
		buf  []byte
	}
	jobs := make([]job, 0, n)
	for idx := 0; idx < n; idx++ {
		if idx == e.DataIdx {
			continue
		}
		b := bufpool.Get(int(e.Len))
		srcs = append(srcs, b)
		jobs = append(jobs, job{v.geo.DataDisk(st, idx), b})
	}
	pbuf := bufpool.Get(int(e.Len))
	srcs = append(srcs, pbuf)
	jobs = append(jobs, job{v.geo.ParityDisk(st), pbuf})

	off := v.geo.DiskOffset(st) + e.UnitOff
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			errs[i] = v.nodeRead(ctx, j.node, j.buf, off)
		}(i, j)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return err
	}
	parity.Reconstruct(dst, pbuf, srcs[:len(srcs)-1]...)
	return nil
}

// readUnits fills units[idx] (full stripe units) for every non-nil
// entry from the stripe's data nodes, concurrently.
func (v *Volume) readUnits(ctx context.Context, st int64, units [][]byte) error {
	off := v.geo.DiskOffset(st)
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for idx, buf := range units {
		if buf == nil {
			continue
		}
		wg.Add(1)
		go func(idx int, buf []byte) {
			defer wg.Done()
			errs[idx] = v.nodeRead(ctx, v.geo.DataDisk(st, idx), buf, off)
		}(idx, buf)
	}
	wg.Wait()
	return firstError(errs)
}

// writeSpanDegraded applies a span to a stripe with one absent data
// unit (index bIdx) under the synchronous protocol: build the full
// stripe image, apply the new bytes, write touched units and freshly
// computed parity in one stripe-locked step. The stripe is marked
// unredundant for the duration so a crash mid-protocol is recorded,
// and leaves the protocol clean (redundant again) — degraded writes
// never grow the exposure set.
//
// coversB means the span fully overwrites the absent unit, so its old
// contents are not needed; otherwise the stripe is clean (writeSpan
// guarantees it) and the unit is reconstructed from parity.
func (v *Volume) writeSpanDegraded(ctx context.Context, p []byte, base int64, sp layout.StripeSpan, bIdx int, coversB, wasDirty bool) error {
	st := sp.Stripe
	n := v.geo.DataDisks()
	unit := int(v.geo.StripeUnit)

	v.meta.Lock()
	parityReadable := v.availLocked(v.geo.ParityDisk(st), st)
	bm := v.nodes[v.geo.DataDisk(st, bIdx)]
	bReachable := bm.state == StateUp && bm.node != nil // up but stale here
	v.meta.Unlock()
	if !coversB && !parityReadable {
		// Reconstructing the absent unit needs a valid parity unit;
		// without one this stripe is short two units.
		return fmt.Errorf("%w: stripe %d parity unavailable", ErrTooManyNodes, st)
	}

	units := make([][]byte, n)
	for idx := range units {
		units[idx] = bufpool.Get(unit)
	}
	pbuf := bufpool.Get(unit)
	defer func() {
		for _, b := range units {
			bufpool.Put(b)
		}
		bufpool.Put(pbuf)
	}()

	// Phase 1: assemble the current image. Survivor units come from
	// their nodes; the absent unit from parity (unless fully covered).
	toRead := make([][]byte, n)
	for idx := 0; idx < n; idx++ {
		if idx != bIdx {
			toRead[idx] = units[idx]
		}
	}
	if err := v.readUnits(ctx, st, toRead); err != nil {
		return err
	}
	if !coversB {
		if err := v.nodeRead(ctx, v.geo.ParityDisk(st), pbuf, v.geo.DiskOffset(st)); err != nil {
			return err
		}
		survivors := make([][]byte, 0, n-1)
		for idx := 0; idx < n; idx++ {
			if idx != bIdx {
				survivors = append(survivors, units[idx])
			}
		}
		parity.Reconstruct(units[bIdx], pbuf, survivors...)
	}

	// Record the exposure before mutating remote state: a crash between
	// here and the unmark below re-runs as a parity rebuild (or an
	// honest loss report if the absent node is lost for good).
	if err := v.markStripe(st); err != nil {
		return err
	}

	// Phase 2: apply the span and recompute parity over the new image.
	touched := make([]bool, n)
	for _, e := range sp.Extents {
		copy(units[e.DataIdx][e.UnitOff:e.UnitOff+e.Len], p[e.ArrOff-base:e.ArrOff-base+e.Len])
		touched[e.DataIdx] = true
	}
	parity.Compute(pbuf, units...)

	// Phase 3: write touched units and parity. The absent unit is
	// written only when its node is reachable (healing); otherwise its
	// new contents live in parity and the unit is marked stale.
	type wjob struct {
		node int
		buf  []byte
	}
	var jobs []wjob
	for idx := 0; idx < n; idx++ {
		if idx == bIdx {
			if bReachable {
				jobs = append(jobs, wjob{v.geo.DataDisk(st, idx), units[idx]})
			}
			continue
		}
		if touched[idx] {
			jobs = append(jobs, wjob{v.geo.DataDisk(st, idx), units[idx]})
		}
	}
	pNode := v.geo.ParityDisk(st)
	jobs = append(jobs, wjob{pNode, pbuf})
	off := v.geo.DiskOffset(st)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j wjob) {
			defer wg.Done()
			errs[i] = v.nodeWrite(ctx, j.node, j.buf, off)
		}(i, j)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return err
	}

	// Phase 4: the stripe is redundant again. Settle the marks.
	bNode := v.geo.DataDisk(st, bIdx)
	v.meta.Lock()
	defer v.meta.Unlock()
	v.dirty.Unmark(st)
	v.nodes[pNode].stale.Unmark(st) // parity unit just rewritten
	if bReachable {
		v.nodes[bNode].stale.Unmark(st) // full unit just rewritten
	} else if touched[bIdx] {
		// New bytes for the absent unit exist only in parity; the
		// physical unit must be rebuilt before the node is trusted.
		v.nodes[bNode].stale.Mark(st)
	}
	v.stats.DegradedWrites++
	return v.persistMarksLocked()
}

// unmarkStripe clears a stripe's dirty bit and persists.
func (v *Volume) unmarkStripe(stripe int64) error {
	v.meta.Lock()
	defer v.meta.Unlock()
	if v.dirty.Unmark(stripe) {
		return v.persistMarksLocked()
	}
	return nil
}

// drainStripe makes one stripe redundant: read every data unit, XOR,
// write the parity unit, clear the dirty bit. Returns skipped=true when
// a node the stripe needs is unavailable — the stripe stays marked and
// a later drain (after heal) retries.
func (v *Volume) drainStripe(ctx context.Context, st int64) (drained, skipped bool, err error) {
	lk := v.stripeLock(st)
	lk.Lock()
	defer lk.Unlock()
	h := v.health(st)
	if !h.dirty {
		return false, false, nil
	}
	if len(h.badIdx) > 0 || !h.parityWrit {
		return false, true, nil
	}
	t0 := time.Now()
	n := v.geo.DataDisks()
	units := make([][]byte, n)
	for idx := range units {
		units[idx] = bufpool.Get(int(v.geo.StripeUnit))
	}
	pbuf := bufpool.Get(int(v.geo.StripeUnit))
	defer func() {
		for _, b := range units {
			bufpool.Put(b)
		}
		bufpool.Put(pbuf)
	}()
	if err := v.readUnits(ctx, st, units); err != nil {
		return false, true, ignoreNodeDown(err)
	}
	parity.Compute(pbuf, units...)
	pNode := v.geo.ParityDisk(st)
	if err := v.nodeWrite(ctx, pNode, pbuf, v.geo.DiskOffset(st)); err != nil {
		return false, true, ignoreNodeDown(err)
	}
	v.meta.Lock()
	v.dirty.Unmark(st)
	v.nodes[pNode].stale.Unmark(st) // just rewritten
	v.stats.ParityDrains++
	err = v.persistMarksLocked()
	v.meta.Unlock()
	v.ob.drain.Observe(time.Since(t0))
	return true, false, err
}
