package cluster

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"afraid/internal/core"
)

// flapOpts builds options for a prober-driven flap test: tight probe
// cadence, threshold 3, and no hedging so op counts stay deterministic.
func flapOpts() Options {
	o := quietOpts()
	o.ProbeInterval = 5 * time.Millisecond
	o.FlapThreshold = 3
	o.FlapWindow = time.Minute
	o.QuarantineDecay = -1 // administrator-only
	o.HedgeDelay = -1
	return o
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFlapDampingQuarantinesFlappingNode is the ISSUE 10 heal-storm
// acceptance: a deterministic flapping node (N ops up, a few down,
// auto-restart) must produce a bounded number of demote/redial/heal
// cycles and end quarantined — not the unbounded storm the undamped
// prober drove — and an administrator heal must then recover it fully.
func TestFlapDampingQuarantinesFlappingNode(t *testing.T) {
	const unit = 4096
	opts := flapOpts()
	v, faults := testVolume(t, 4, 16*unit, opts)
	shadow := fillVolume(t, v, 21)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	faults[2].SetFlap(15, 4) // 15 ops served, 4 refused, repeat

	// Drive writes until the damper fences the node off. Every write is
	// also applied to the shadow unless the volume reported it impossible
	// (ErrDataLoss on a stripe that was unredundant at a flap point —
	// legal, and always reported).
	rng := rand.New(rand.NewSource(33))
	buf := make([]byte, unit)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if s := v.NodeStates(); s[2].State == StateQuarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flapping node was never quarantined")
		}
		off := rng.Int63n(v.Capacity()/unit) * unit
		rng.Read(buf)
		if _, err := v.WriteAt(buf, off); err != nil {
			if errors.Is(err, core.ErrDataLoss) {
				continue // reported loss; the final audit rewrites it
			}
			t.Fatalf("write at %d: %v", off, err)
		}
		copy(shadow[off:], buf)
	}

	st := v.Stats()
	if st.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1", st.Quarantines)
	}
	// The damping policy bounds the storm: at most FlapThreshold
	// demotions (the threshold trips on the last one) and at most one
	// auto-heal per redial that preceded them.
	if st.NodeFailovers > uint64(opts.FlapThreshold)+1 {
		t.Errorf("node failovers = %d, want <= %d (bounded by damping)",
			st.NodeFailovers, opts.FlapThreshold+1)
	}
	if st.AutoHeals > uint64(opts.FlapThreshold)+1 {
		t.Errorf("auto-heals = %d, want <= %d (bounded by damping)",
			st.AutoHeals, opts.FlapThreshold+1)
	}
	if s := v.NodeStates(); s[2].ConsecFails == 0 {
		t.Error("quarantined node reports zero consecutive failures")
	}

	// Quarantined means left alone: with the foreground quiet, the
	// prober must not send the node another operation.
	time.Sleep(10 * opts.ProbeInterval)
	before := faults[2].Stats().Ops
	time.Sleep(20 * opts.ProbeInterval)
	if after := faults[2].Stats().Ops; after != before {
		t.Errorf("quarantined node still probed: ops %d -> %d", before, after)
	}

	// Administrator path: fix the machine (stop the flapping), heal it.
	faults[2].SetFlap(0, 0)
	rep, err := v.HealNode(context.Background(), 2, false)
	if err != nil {
		t.Fatalf("admin heal: %v", err)
	}
	for _, lost := range rep.Lost {
		// Stripes unredundant at a flap point are honestly lost; rewrite
		// them (3 data units each) and move on — the paper's contract.
		off := lost * 3 * unit
		if _, err := v.WriteAt(shadow[off:off+3*unit], off); err != nil {
			t.Fatalf("rewrite lost stripe %d: %v", lost, err)
		}
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "node 2 back up", func() bool {
		s := v.NodeStates()
		return s[2].State == StateUp && s[2].StaleStripes == 0
	})
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("volume diverged from shadow after flap storm + heal")
	}
	if bad, _, err := v.VerifyParity(context.Background()); err != nil || len(bad) > 0 {
		t.Fatalf("parity verify: bad=%v err=%v", bad, err)
	}
}

// TestQuarantineDecayReadmitsNode: with a decay configured, a
// quarantined node whose fault has cleared comes back without an
// administrator — the prober lifts the fence after the decay and heals.
func TestQuarantineDecayReadmitsNode(t *testing.T) {
	const unit = 4096
	opts := flapOpts()
	opts.QuarantineDecay = 150 * time.Millisecond
	opts.Logf = t.Logf
	v, faults := testVolume(t, 4, 16*unit, opts)
	shadow := fillVolume(t, v, 22)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	faults[2].SetFlap(15, 4)
	rng := rand.New(rand.NewSource(44))
	buf := make([]byte, unit)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if s := v.NodeStates(); s[2].State == StateQuarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flapping node was never quarantined")
		}
		off := rng.Int63n(v.Capacity()/unit) * unit
		rng.Read(buf)
		if _, err := v.WriteAt(buf, off); err != nil && !errors.Is(err, core.ErrDataLoss) {
			t.Fatalf("write: %v", err)
		}
	}
	// The machine "gets fixed" while quarantined; after the decay the
	// prober readmits and redials it with no administrator involved.
	faults[2].SetFlap(0, 0)
	// Readmitted = reachable again: StateUp, or StateHealing when the
	// auto-heal honestly reported lost stripes (they stay stale until a
	// client rewrites them, and the node reports as healing meanwhile).
	waitFor(t, 10*time.Second, "quarantine decay readmission", func() bool {
		s := v.NodeStates()[2].State
		return s == StateUp || s == StateHealing
	})
	// Stripes that were dirty at a flap point are honest losses: the
	// auto-heal reports them and keeps them stale until a client
	// rewrites them. Rewrite everything, and the marks must all clear.
	rng.Read(shadow)
	if _, err := v.WriteAt(shadow, 0); err != nil {
		t.Fatalf("rewrite after readmission: %v", err)
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "stale units cleared by the rewrite", func() bool {
		s := v.NodeStates()
		return s[2].State == StateUp && s[2].StaleStripes == 0
	})
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("volume diverged after decay readmission + rewrite")
	}
	if bad, _, err := v.VerifyParity(context.Background()); err != nil || len(bad) > 0 {
		t.Fatalf("parity verify: bad=%v err=%v", bad, err)
	}
}

// TestProbeConcurrency: one node wedged at NodeTimeout must not delay
// detection of another dead node by the old sequential probe sweep.
func TestProbeConcurrency(t *testing.T) {
	opts := quietOpts()
	opts.NodeTimeout = 500 * time.Millisecond
	opts.ProbeInterval = 10 * time.Millisecond
	opts.HedgeDelay = -1
	v, faults := testVolume(t, 4, 16*4096, opts)
	faults[0].SetSlow(2 * time.Second) // wedged: its ping parks until NodeTimeout
	faults[1].Crash()                  // dead: its ping fails instantly
	// A sequential prober would spend 500 ms on node 0 before looking at
	// node 1; the concurrent prober demotes node 1 within a few ticks.
	waitFor(t, 300*time.Millisecond, "dead node demoted while another is wedged", func() bool {
		return v.NodeStates()[1].State == StateDown
	})
}
