package cluster

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"math/rand"
	"testing"
	"time"

	"afraid/internal/core"
)

var chaosSeed = flag.Int64("cluster.seed", 20260808, "seed for the cluster chaos run")

// TestChaosNodeFailStopLossContract is the cluster analogue of
// afraidchaos: a seeded workload with a deterministic node fail-stop
// mid-write, then a byte-for-byte audit of the paper's contract at node
// granularity:
//
//  1. every readable byte matches the shadow copy — no silent
//     corruption, ever;
//  2. reads that fail do so with ErrDataLoss, only for stripes that
//     were unredundant (dirty) when the node died;
//  3. after restore + heal + rewrite of the reported-lost stripes, the
//     volume returns to fully redundant and verifiable.
func TestChaosNodeFailStopLossContract(t *testing.T) {
	const (
		nNodes   = 4
		unit     = int64(4096)
		nodeSize = 32 * 4096
	)
	seed := *chaosSeed
	rng := rand.New(rand.NewSource(seed))
	opts := Options{StripeUnit: unit, DisableDrain: true, NodeTimeout: 5 * time.Second}
	v, faults := testVolume(t, nNodes, nodeSize, opts)
	shadow := fillVolume(t, v, seed)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	capacity := v.Capacity()
	sdb := v.Geometry().StripeDataBytes()
	victim := rng.Intn(nNodes)
	// Fail-stop after a random number of node ops: lands mid-workload,
	// possibly mid-span, deterministically for a given seed.
	faults[victim].CrashAfterOps(int64(10 + rng.Intn(40)))

	// Seeded single-writer workload. Once the victim is observed down,
	// the dirty set at that instant is the allowed-loss set: the
	// volume's own exposure accounting, sampled at failure time.
	var allowed map[int64]bool
	noteDown := func() {
		if allowed == nil && v.NodeStates()[victim].State != StateUp {
			allowed = map[int64]bool{}
			for _, st := range v.DirtyList() {
				allowed[st] = true
			}
		}
	}
	for i := 0; i < 120; i++ {
		n := int64(rng.Intn(int(2*unit))) + 1
		off := rng.Int63n(capacity - n)
		// Clamp to one stripe: WriteAt is not atomic across stripes
		// (earlier spans land even when a later span fails), so a
		// byte-exact shadow audit issues stripe-local writes.
		if rem := sdb - off%sdb; n > rem {
			n = rem
		}
		buf := make([]byte, n)
		rng.Read(buf)
		_, err := v.WriteAt(buf, off)
		switch {
		case err == nil:
			copy(shadow[off:], buf)
		case errors.Is(err, core.ErrDataLoss):
			// Write into a stripe whose absent unit is already lost:
			// must itself be in the allowed set, and stays lost.
			st := off / sdb
			noteDown()
			if !allowed[st] {
				t.Fatalf("write op %d: ErrDataLoss for stripe %d outside allowed set %v", i, st, allowed)
			}
		default:
			t.Fatalf("write op %d (off %d len %d): %v", i, off, n, err)
		}
		noteDown()
	}
	if allowed == nil {
		t.Fatalf("victim %d never went down: CrashAfterOps too high for workload", victim)
	}
	t.Logf("seed %d: victim %d, allowed-loss set %d stripes, %d dirty now",
		seed, victim, len(allowed), v.DirtyStripes())

	// Audit: stripe by stripe. A successful read must match the shadow
	// exactly; a failed read must be ErrDataLoss on an allowed stripe.
	lost := 0
	buf := make([]byte, sdb)
	for st := int64(0); st < v.Geometry().Stripes(); st++ {
		_, err := v.ReadAt(buf, st*sdb)
		switch {
		case err == nil:
			if !bytes.Equal(buf, shadow[st*sdb:(st+1)*sdb]) {
				t.Fatalf("SILENT CORRUPTION: stripe %d read succeeded with wrong bytes", st)
			}
		case errors.Is(err, core.ErrDataLoss):
			if !allowed[st] {
				t.Fatalf("stripe %d reported lost but was redundant at failure time", st)
			}
			lost++
		default:
			t.Fatalf("stripe %d: unexpected read error %v", st, err)
		}
	}
	t.Logf("audit: %d stripes lost (allowed %d)", lost, len(allowed))

	// Recovery: restore the node, heal, overwrite what was reported
	// lost, and the volume must come back fully redundant.
	faults[victim].Restore()
	rep, err := v.HealNode(context.Background(), victim, false)
	if err != nil {
		t.Fatalf("HealNode: %v", err)
	}
	for _, st := range rep.Lost {
		if !allowed[st] {
			t.Fatalf("heal reported stripe %d lost outside allowed set", st)
		}
	}
	for _, st := range rep.Lost {
		fresh := make([]byte, sdb)
		rng.Read(fresh)
		if _, err := v.WriteAt(fresh, st*sdb); err != nil {
			t.Fatalf("rewrite of lost stripe %d: %v", st, err)
		}
		copy(shadow[st*sdb:], fresh)
	}
	// Rewrites may have left stale bits if they raced nothing here —
	// a second sweep must find nothing left to do.
	rep2, err := v.HealNode(context.Background(), victim, false)
	if err != nil || len(rep2.Lost) != 0 || rep2.Remaining != 0 {
		t.Fatalf("second heal = %+v, %v; want clean", rep2, err)
	}
	if err := v.Flush(context.Background()); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	bad, skipped, err := v.VerifyParity(context.Background())
	if err != nil || len(bad) != 0 || skipped != 0 {
		t.Fatalf("VerifyParity after recovery = (%v, %d, %v)", bad, skipped, err)
	}
	got := make([]byte, capacity)
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("post-recovery data mismatch")
	}
}

// TestChaosManySeeds runs the contract audit over a spread of seeds so
// the fail-stop lands at different points (mid-span, between spans, on
// different victims and roles).
func TestChaosManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed chaos sweep in -short mode")
	}
	base := *chaosSeed
	for i := int64(1); i <= 6; i++ {
		seed := base + i*7919
		t.Run("", func(t *testing.T) {
			old := *chaosSeed
			*chaosSeed = seed
			defer func() { *chaosSeed = old }()
			TestChaosNodeFailStopLossContract(t)
		})
	}
}
