package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"afraid/internal/core"
	"afraid/internal/layout"
	"afraid/internal/nvram"
)

// Options configures a Volume.
type Options struct {
	// StripeUnit is the bytes each node contributes to one stripe
	// (default 64 KiB — network round trips want fatter units than the
	// paper's 8 KB disk stripe depth).
	StripeUnit int64
	// MaxDirty bounds the unredundancy window: past this many dirty
	// stripes the drain runs even under load, and at twice it the write
	// path drains a few stripes inline (default 256).
	MaxDirty int64
	// DrainIdle is how long the volume must be quiescent before the
	// background drain rebuilds parity (default 100 ms).
	DrainIdle time.Duration
	// DisableDrain turns the background goroutine off; parity is then
	// rebuilt only by Flush/ParityPoint (and the inline valve).
	DisableDrain bool
	// NodeTimeout is the per-node operation deadline (default 10 s). It
	// is how a slow or wedged node gets declared down instead of
	// stalling the whole volume.
	NodeTimeout time.Duration
	// DialTimeout bounds connect+handshake when the volume dials a node
	// (Dial, redial on heal, the prober; default 5 s).
	DialTimeout time.Duration
	// ProbeInterval, when positive, runs a background health prober:
	// pinging up nodes to catch silent death, redialing down nodes, and
	// auto-healing them when they answer again. 0 disables (callers
	// drive FailNode/HealNode themselves — tests and afraidctl do).
	ProbeInterval time.Duration
	// Workers bounds the stripes drained or healed concurrently by
	// Flush, ParityPoint, and HealNode (default min(GOMAXPROCS, 4)).
	Workers int
	// HedgeDelay controls hedged reads, the volume's tail-latency
	// defence: a unit read that has not answered after the delay is
	// re-issued to the reconstruction path (survivors + parity) and the
	// first success wins. 0 (the default) derives the delay from the
	// live p99 of node reads; a positive value fixes it; a negative
	// value disables hedging.
	HedgeDelay time.Duration
	// RetryBudget bounds how many times one span retries after a node
	// demotion re-routes it (0 = nodes+1, matching the old behaviour;
	// negative disables retries).
	RetryBudget int
	// RetryBase is the first backoff step between span retries (default
	// 2 ms). The first retry is immediate — a demotion means the next
	// attempt routes differently — backoff starts at the second and
	// doubles with jitter up to RetryMaxBackoff.
	RetryBase time.Duration
	// RetryMaxBackoff caps the exponential backoff (default 250 ms).
	RetryMaxBackoff time.Duration
	// FlapThreshold is the flap damper: a node demoted this many times
	// inside FlapWindow is quarantined — the prober stops redialing and
	// auto-healing it until ClearQuarantine, HealNode, or
	// QuarantineDecay. Default 3; negative disables damping.
	FlapThreshold int
	// FlapWindow is the sliding window the damper counts demotions in
	// (default 1 minute).
	FlapWindow time.Duration
	// QuarantineDecay auto-clears a quarantine after this long, letting
	// the prober try the node again (default 5 minutes; negative means
	// only an administrator clears it).
	QuarantineDecay time.Duration
	// ProbeBackoffMax caps the prober's per-node redial backoff, which
	// starts at ProbeInterval and doubles per failed redial (default
	// max(1s, 8×ProbeInterval)).
	ProbeBackoffMax time.Duration
	// NV, when set, persists the volume's marking memory (dirty map and
	// per-node stale maps), so a restarted volume host resumes the
	// parity rebuild where it left off — the cluster analogue of the
	// paper's NVRAM. An unusable image triggers the paper's recovery:
	// every stripe is marked for parity rebuild.
	NV core.NVRAM
	// Logf, when set, receives node up/down and heal diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.StripeUnit == 0 {
		o.StripeUnit = 64 << 10
	}
	if o.MaxDirty == 0 {
		o.MaxDirty = 256
	}
	if o.DrainIdle == 0 {
		o.DrainIdle = 100 * time.Millisecond
	}
	if o.NodeTimeout == 0 {
		o.NodeTimeout = 10 * time.Second
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 4 {
			o.Workers = 4
		}
	}
	if o.RetryBase == 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMaxBackoff == 0 {
		o.RetryMaxBackoff = 250 * time.Millisecond
	}
	if o.FlapThreshold == 0 {
		o.FlapThreshold = 3
	}
	if o.FlapWindow == 0 {
		o.FlapWindow = time.Minute
	}
	if o.QuarantineDecay == 0 {
		o.QuarantineDecay = 5 * time.Minute
	}
	if o.ProbeBackoffMax == 0 {
		o.ProbeBackoffMax = 8 * o.ProbeInterval
		if o.ProbeBackoffMax < time.Second {
			o.ProbeBackoffMax = time.Second
		}
	}
}

// Stats counts volume activity.
type Stats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten int64
	DegradedReads           uint64 // extents reconstructed around a down node
	DegradedWrites          uint64 // spans written under the synchronous degraded protocol
	ParityDrains            uint64 // stripes made redundant by drains (background, flush, inline)
	InlineDrains            uint64 // stripes drained by the write-path pressure valve
	HealedStripes           uint64 // stripe units rebuilt onto a returned node
	LostStripes             uint64 // stripes reported unrecoverable (dirty at node loss)
	NodeFailovers           uint64 // times a node was declared down
	HedgedReads             uint64 // straggling unit reads re-issued to the reconstruction path
	HedgeWins               uint64 // hedges that answered before the straggler
	Retries                 uint64 // span attempts re-run after a node demotion re-routed them
	RetriesExhausted        uint64 // spans that used their whole retry budget and still failed
	Quarantines             uint64 // nodes fenced off by the flap damper
	AutoHeals               uint64 // background heals started by the prober
	DirtyStripes            int64
	DirtyHighWater          int64 // widest the cluster unredundancy window ever got
	Recovered               bool  // marking memory was unusable; full parity rebuild scheduled
}

// member is one node slot and its volume-side state.
type member struct {
	idx  int
	addr string
	dial func() (Node, error)

	// Guarded by Volume.meta.
	node    Node
	state   NodeState // StateUp or StateDown; Healing/Quarantined are derived
	stale   *nvram.Bitmap
	lastErr error
	gen     uint64 // bumped per (re)dial so stale failures can't kill a fresh conn

	// Flap damping and prober state, guarded by Volume.meta.
	failTimes    []time.Time   // recent demotions, pruned to FlapWindow
	consecFails  int           // demotions since the last clean heal
	quarantined  bool          // fenced off from prober redial/auto-heal
	quarantineAt time.Time     // when the fence went up (for QuarantineDecay)
	probeBackoff time.Duration // current redial backoff (0 = ProbeInterval)
	nextProbe    time.Time     // earliest next redial attempt
	probing      bool          // a probe of this node is in flight
	healing      bool          // a background heal of this node is in flight
}

// Volume is a distributed AFRAID array: one logical block space striped
// over the member nodes with deferred, cluster-wide parity.
type Volume struct {
	geo  layout.Geometry
	opts Options

	meta   sync.Mutex // guards nodes' mutable state and everything below
	nodes  []*member
	dirty  *nvram.Bitmap
	stats  Stats
	lastIO time.Time
	closed bool

	locks [64]sync.Mutex // stripe lock pool (stripe % 64)

	ob *volObs

	kick chan struct{} // write-path handoff to drainLoop (capacity 1)
	stop chan struct{}
	wg   sync.WaitGroup

	// bgCtx outlives any one probe tick: background heals run under it
	// so they are killed by Close, not by a probe interval (the old bug
	// cancelled heals after NodeTimeout every tick).
	bgCtx    context.Context
	bgCancel context.CancelFunc

	// Cached auto hedge delay (ns) and when it was computed (unix ns),
	// so the hot read path does not merge histograms per extent.
	hedgeNS   atomic.Int64
	hedgeEval atomic.Int64
}

// Open assembles a volume over the members. Members whose Node is nil
// are dialed; a member that cannot be reached opens in StateDown with a
// conservatively full stale map (everything written before this volume
// instance is suspect until healed), and the volume serves degraded.
func Open(members []Member, opts Options) (*Volume, error) {
	opts.fill()
	if len(members) < 3 {
		return nil, fmt.Errorf("cluster: need at least 3 nodes (2 data + parity), have %d", len(members))
	}
	nodes := make([]*member, len(members))
	minCap := int64(-1)
	for i, mm := range members {
		m := &member{idx: i, addr: mm.Addr, dial: mm.Dial, node: mm.Node, state: StateUp}
		if m.node == nil && m.dial != nil {
			n, err := m.dial()
			if err != nil {
				m.state = StateDown
				m.lastErr = err
			} else {
				m.node = n
			}
		}
		if m.node == nil {
			m.state = StateDown
			if m.lastErr == nil {
				m.lastErr = fmt.Errorf("%w: no client and no dialer", ErrNodeDown)
			}
		} else if c := m.node.Capacity(); minCap < 0 || c < minCap {
			minCap = c
		}
		nodes[i] = m
	}
	if minCap < 0 {
		return nil, fmt.Errorf("cluster: no reachable nodes")
	}
	size := minCap / opts.StripeUnit * opts.StripeUnit
	if size == 0 {
		return nil, fmt.Errorf("cluster: node capacity %d smaller than one stripe unit %d", minCap, opts.StripeUnit)
	}
	geo := layout.Geometry{
		Disks:      len(members),
		StripeUnit: opts.StripeUnit,
		DiskSize:   size,
		Level:      layout.RAID5,
	}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	v := &Volume{
		geo:    geo,
		opts:   opts,
		nodes:  nodes,
		lastIO: time.Now(),
		ob:     newVolObs(len(members)),
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	v.bgCtx, v.bgCancel = context.WithCancel(context.Background())
	if v.opts.RetryBudget == 0 {
		v.opts.RetryBudget = len(members) + 1
	}
	v.dirty = nvram.NewBitmap(geo.Stripes())
	for _, m := range nodes {
		m.stale = nvram.NewBitmap(geo.Stripes())
	}
	if err := v.recoverMarks(); err != nil {
		return nil, err
	}
	// A member down at open with no persisted record of what it missed
	// is fully suspect: everything on it must be healed before trusted.
	// Persist that verdict immediately — a later process must not open
	// the marking memory, find the node back up with a clean stale map,
	// and trust whatever (possibly blank) disk answers.
	v.meta.Lock()
	suspect := false
	for _, m := range nodes {
		if m.state == StateDown && m.stale.Count() == 0 {
			markAll(m.stale)
			suspect = true
		}
	}
	if suspect {
		v.persistMarksLocked()
	}
	v.meta.Unlock()
	if !opts.DisableDrain {
		v.wg.Add(1)
		go v.drainLoop()
	}
	if opts.ProbeInterval > 0 {
		v.wg.Add(1)
		go v.probeLoop()
	}
	return v, nil
}

func markAll(b *nvram.Bitmap) {
	for st := int64(0); st < b.Stripes(); st++ {
		b.Mark(st)
	}
}

// Close stops the background loops and closes the node clients. Dirty
// and stale maps stay in NV (when configured); the next Open resumes
// the rebuild. Use Flush first for a clean shutdown.
func (v *Volume) Close() error {
	v.meta.Lock()
	if v.closed {
		v.meta.Unlock()
		return ErrClosed
	}
	v.closed = true
	v.meta.Unlock()
	close(v.stop)
	v.bgCancel()
	v.wg.Wait()
	var first error
	v.meta.Lock()
	defer v.meta.Unlock()
	for _, m := range v.nodes {
		if m.node == nil {
			continue
		}
		if err := m.node.Close(); err != nil && first == nil {
			first = err
		}
		m.node = nil
	}
	return first
}

// Capacity returns the client-visible size in bytes.
func (v *Volume) Capacity() int64 { return v.geo.Capacity() }

// Geometry returns the node-striping parameters.
func (v *Volume) Geometry() layout.Geometry { return v.geo }

// DirtyStripes returns the number of cluster-unredundant stripes.
func (v *Volume) DirtyStripes() int64 {
	v.meta.Lock()
	defer v.meta.Unlock()
	return v.dirty.Count()
}

// DirtyList enumerates the unredundant stripes — the cluster-wide
// exposure set a chaos harness samples at failure time.
func (v *Volume) DirtyList() []int64 {
	v.meta.Lock()
	defer v.meta.Unlock()
	return v.dirty.Marked()
}

// Stats returns a snapshot of the activity counters.
func (v *Volume) Stats() Stats {
	v.meta.Lock()
	defer v.meta.Unlock()
	st := v.stats
	st.DirtyStripes = v.dirty.Count()
	return st
}

// NodeStates reports each member's reachability and heal backlog.
func (v *Volume) NodeStates() []NodeInfo {
	v.meta.Lock()
	defer v.meta.Unlock()
	out := make([]NodeInfo, len(v.nodes))
	for i, m := range v.nodes {
		info := NodeInfo{
			Index: i, Addr: m.addr, State: m.state,
			StaleStripes: m.stale.Count(), ConsecFails: m.consecFails,
		}
		if m.state == StateUp && info.StaleStripes > 0 {
			info.State = StateHealing
		}
		if m.state == StateDown {
			if m.quarantined {
				info.State = StateQuarantined
			}
			if m.lastErr != nil {
				info.LastErr = m.lastErr.Error()
			}
		}
		out[i] = info
	}
	return out
}

// stripeLock returns the lock covering a stripe.
func (v *Volume) stripeLock(stripe int64) *sync.Mutex {
	return &v.locks[stripe%int64(len(v.locks))]
}

// touch records foreground activity for drain idle detection.
func (v *Volume) touch() {
	v.meta.Lock()
	v.lastIO = time.Now()
	v.meta.Unlock()
}

// checkRange validates a client range without computing off+length,
// which overflows for off near MaxInt64 (same hardening as
// core.checkRange — layout.Split panics on wrapped ranges).
func (v *Volume) checkRange(off, length int64) error {
	v.meta.Lock()
	closed := v.closed
	v.meta.Unlock()
	if closed {
		return ErrClosed
	}
	if length < 0 || off < 0 || length > v.geo.Capacity() || off > v.geo.Capacity()-length {
		return fmt.Errorf("cluster: range off=%d length=%d outside capacity %d", off, length, v.geo.Capacity())
	}
	return nil
}

// Locate maps a client byte address to its home: the stripe, the node
// holding it, and the byte offset on that node. Unlike layout.Locate it
// rejects out-of-range addresses with an error instead of panicking, so
// tools can probe the mapping safely.
func (v *Volume) Locate(addr int64) (stripe int64, node int, nodeOff int64, err error) {
	if addr < 0 || addr >= v.geo.Capacity() {
		return 0, 0, 0, fmt.Errorf("cluster: address %d outside capacity %d", addr, v.geo.Capacity())
	}
	loc := v.geo.Locate(addr)
	return loc.Stripe, loc.Disk, loc.DiskOff, nil
}

// markStripe marks a stripe cluster-unredundant and persists the map.
// Mark-before-write ordering is what makes the loss contract auditable:
// a node lost mid-write finds the stripe already in the exposure set.
func (v *Volume) markStripe(stripe int64) error {
	v.meta.Lock()
	defer v.meta.Unlock()
	if v.dirty.Mark(stripe) {
		if c := v.dirty.Count(); c > v.stats.DirtyHighWater {
			v.stats.DirtyHighWater = c
		}
		return v.persistMarksLocked()
	}
	return nil
}

// stripeHealth is a per-stripe availability snapshot.
type stripeHealth struct {
	badIdx     []int // data indices whose node can't serve this stripe
	parityRead bool  // parity unit readable (node up, unit not stale)
	parityWrit bool  // parity unit writable (node up)
	dirty      bool
}

// availLocked reports whether node n can serve stripe st: reachable and
// not holding a stale unit for it. Callers hold meta.
func (v *Volume) availLocked(n int, st int64) bool {
	m := v.nodes[n]
	return m.state == StateUp && m.node != nil && !m.stale.IsMarked(st)
}

// health snapshots a stripe's availability. Callers hold the stripe
// lock, so the dirty bit cannot move underneath them.
func (v *Volume) health(st int64) stripeHealth {
	v.meta.Lock()
	defer v.meta.Unlock()
	var h stripeHealth
	for idx := 0; idx < v.geo.DataDisks(); idx++ {
		if !v.availLocked(v.geo.DataDisk(st, idx), st) {
			h.badIdx = append(h.badIdx, idx)
		}
	}
	pn := v.geo.ParityDisk(st)
	h.parityRead = v.availLocked(pn, st)
	pm := v.nodes[pn]
	h.parityWrit = pm.state == StateUp && pm.node != nil
	h.dirty = v.dirty.IsMarked(st)
	return h
}

// ReadAt implements io.ReaderAt over the volume's address space.
func (v *Volume) ReadAt(p []byte, off int64) (int, error) {
	return v.ReadContext(context.Background(), p, off)
}

// ReadContext reads len(p) bytes at off, reconstructing extents that
// live on a down node from the survivors. Cancellation is checked
// between stripe spans.
func (v *Volume) ReadContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := v.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	v.touch()
	t0 := time.Now()
	for _, sp := range v.geo.Split(off, int64(len(p))) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		lk := v.stripeLock(sp.Stripe)
		lk.Lock()
		err := v.retrySpan(ctx, func() error { return v.readSpan(ctx, p, off, sp) })
		lk.Unlock()
		if err != nil {
			return 0, err
		}
	}
	v.ob.readOp.Observe(time.Since(t0))
	v.meta.Lock()
	v.stats.Reads++
	v.stats.BytesRead += int64(len(p))
	v.meta.Unlock()
	return len(p), nil
}

// readSpan serves one stripe's extents. Caller holds the stripe lock.
func (v *Volume) readSpan(ctx context.Context, p []byte, base int64, sp layout.StripeSpan) error {
	h := v.health(sp.Stripe)
	// Hedging needs a fully redundant stripe: every data node up with
	// fresh units and the parity unit readable, so the reconstruction
	// path can answer for any straggler.
	canHedge := !h.dirty && len(h.badIdx) == 0 && h.parityRead
	for _, e := range sp.Extents {
		dst := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		v.meta.Lock()
		ok := v.availLocked(e.Disk, sp.Stripe)
		v.meta.Unlock()
		if ok {
			if hd := v.hedgeDelay(); hd > 0 && canHedge {
				if err := v.hedgedReadExtent(ctx, dst, sp.Stripe, e, hd); err != nil {
					return err
				}
				continue
			}
			if err := v.nodeRead(ctx, e.Disk, dst, e.DiskOff); err != nil {
				return err
			}
			continue
		}
		// The extent's home node can't serve it.
		if h.dirty {
			return fmt.Errorf("%w: stripe %d", core.ErrDataLoss, sp.Stripe)
		}
		if len(h.badIdx) > 1 || !h.parityRead {
			return fmt.Errorf("%w: stripe %d needs %d absent units", ErrTooManyNodes, sp.Stripe, len(h.badIdx))
		}
		if err := v.degradedReadExtent(ctx, dst, sp.Stripe, e); err != nil {
			return err
		}
		v.meta.Lock()
		v.stats.DegradedReads++
		v.meta.Unlock()
	}
	return nil
}

// WriteAt implements io.WriterAt over the volume's address space.
func (v *Volume) WriteAt(p []byte, off int64) (int, error) {
	return v.WriteContext(context.Background(), p, off)
}

// WriteContext writes p at off. With every data node of a stripe
// reachable, the write is AFRAID-deferred: data lands immediately, the
// stripe is marked unredundant, parity follows in the background. With
// a data node down, the stripe switches to the synchronous degraded
// protocol — deferring there would turn the *already spent* redundancy
// into certain loss on the next failure, which would break the paper's
// contract that loss is confined to stripes unredundant at failure
// time.
func (v *Volume) WriteContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := v.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	v.touch()
	t0 := time.Now()
	for _, sp := range v.geo.Split(off, int64(len(p))) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		lk := v.stripeLock(sp.Stripe)
		lk.Lock()
		err := v.retrySpan(ctx, func() error { return v.writeSpan(ctx, p, off, sp) })
		lk.Unlock()
		if err != nil {
			return 0, err
		}
	}
	v.ob.writeOp.Observe(time.Since(t0))
	v.meta.Lock()
	v.stats.Writes++
	v.stats.BytesWritten += int64(len(p))
	v.meta.Unlock()
	v.kickDrain()
	return len(p), nil
}

// writeSpan applies one stripe's worth of a write under the stripe lock.
func (v *Volume) writeSpan(ctx context.Context, p []byte, base int64, sp layout.StripeSpan) error {
	st := sp.Stripe
	h := v.health(st)
	if len(h.badIdx) == 0 {
		// Every data node reachable: the AFRAID deferred path. Mark
		// first, then write — a crash between the two costs a spurious
		// parity rebuild, never an unrecorded exposure.
		if err := v.markStripe(st); err != nil {
			return err
		}
		return v.writeExtents(ctx, sp, p, base)
	}
	if len(h.badIdx) > 1 {
		return fmt.Errorf("%w: stripe %d", ErrTooManyNodes, st)
	}
	bIdx := h.badIdx[0]
	touchesB, coversB := false, false
	for _, e := range sp.Extents {
		if e.DataIdx == bIdx {
			touchesB = true
			coversB = e.UnitOff == 0 && e.Len == v.geo.StripeUnit
		}
	}
	if h.dirty && !coversB {
		if touchesB {
			// The absent unit holds bytes this write would merge with,
			// and the stripe was unredundant when its node was lost.
			return fmt.Errorf("%w: stripe %d", core.ErrDataLoss, st)
		}
		// Stripe already in the exposure set; updating its live units
		// deepens nothing. Keep deferring.
		return v.writeExtents(ctx, sp, p, base)
	}
	if !h.parityWrit {
		// Synchronous parity needed (data node absent) but the parity
		// node is down too: two failures exceed single parity.
		return fmt.Errorf("%w: stripe %d needs parity node", ErrTooManyNodes, st)
	}
	return v.writeSpanDegraded(ctx, p, base, sp, bIdx, coversB, h.dirty)
}

// writeExtents writes the span's extents to their home nodes,
// fanning out one goroutine per extent (distinct nodes by layout).
func (v *Volume) writeExtents(ctx context.Context, sp layout.StripeSpan, p []byte, base int64) error {
	if len(sp.Extents) == 1 {
		e := sp.Extents[0]
		return v.nodeWrite(ctx, e.Disk, p[e.ArrOff-base:e.ArrOff-base+e.Len], e.DiskOff)
	}
	errs := make([]error, len(sp.Extents))
	var wg sync.WaitGroup
	for i, e := range sp.Extents {
		wg.Add(1)
		go func(i int, e layout.Extent) {
			defer wg.Done()
			errs[i] = v.nodeWrite(ctx, e.Disk, p[e.ArrOff-base:e.ArrOff-base+e.Len], e.DiskOff)
		}(i, e)
	}
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// kickDrain wakes the drain loop and, past twice the dirty bound,
// drains a few stripes inline so a write burst cannot push the
// unredundancy window arbitrarily wide (the valve internal/core grew in
// PR 2, cluster-sized).
func (v *Volume) kickDrain() {
	v.meta.Lock()
	dirty := v.dirty.Count()
	v.meta.Unlock()
	if dirty > v.opts.MaxDirty {
		select {
		case v.kick <- struct{}{}:
		default:
		}
	}
	if dirty <= 2*v.opts.MaxDirty {
		return
	}
	const maxInline = 4
	drained := 0
	for _, st := range v.DirtyList() {
		if drained >= maxInline {
			break
		}
		ok, _, err := v.drainStripe(context.Background(), st)
		if err != nil {
			return
		}
		if ok {
			drained++
			v.meta.Lock()
			v.stats.InlineDrains++
			v.meta.Unlock()
		}
	}
}
