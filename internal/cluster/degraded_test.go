package cluster

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"afraid/internal/core"
)

// fillVolume writes seeded data over the whole volume and returns the
// shadow copy.
func fillVolume(t *testing.T, v *Volume, seed int64) []byte {
	t.Helper()
	shadow := make([]byte, v.Capacity())
	rand.New(rand.NewSource(seed)).Read(shadow)
	if _, err := v.WriteAt(shadow, 0); err != nil {
		t.Fatal(err)
	}
	return shadow
}

// TestDegradedReadAfterCrash: with parity settled, every byte must stay
// readable after any single node crashes, served by reconstruction.
func TestDegradedReadAfterCrash(t *testing.T) {
	for victim := 0; victim < 4; victim++ {
		v, faults := testVolume(t, 4, 16*4096, quietOpts())
		shadow := fillVolume(t, v, int64(victim))
		if err := v.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		faults[victim].Crash()
		got := make([]byte, v.Capacity())
		if _, err := v.ReadAt(got, 0); err != nil {
			t.Fatalf("victim %d: degraded read: %v", victim, err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("victim %d: degraded read returned wrong data", victim)
		}
		st := v.Stats()
		if st.DegradedReads == 0 {
			t.Errorf("victim %d: no degraded reads counted", victim)
		}
		if st.NodeFailovers == 0 {
			t.Errorf("victim %d: crash not detected as failover", victim)
		}
		v.Close()
	}
}

// TestDirtyStripeLossIsReported is the loss contract at node
// granularity: a stripe unredundant when its node died must fail reads
// of the absent unit with ErrDataLoss — and clean stripes plus the
// dirty stripe's surviving units must still read fine.
func TestDirtyStripeLossIsReported(t *testing.T) {
	v, faults := testVolume(t, 4, 16*4096, quietOpts())
	shadow := fillVolume(t, v, 7)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Dirty exactly stripe 2, then kill a node carrying its data.
	sdb := v.Geometry().StripeDataBytes()
	if _, err := v.WriteAt(shadow[2*sdb:2*sdb+4096], 2*sdb); err != nil {
		t.Fatal(err)
	}
	if got := v.DirtyList(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dirty = %v, want [2]", got)
	}
	victim := v.Geometry().DataDisk(2, 0)
	faults[victim].Crash()

	// The absent unit of the dirty stripe: always-reported loss.
	buf := make([]byte, 4096)
	if _, err := v.ReadAt(buf, 2*sdb); !errors.Is(err, core.ErrDataLoss) {
		t.Fatalf("read of lost unit = %v, want ErrDataLoss", err)
	}
	// Units of the dirty stripe on surviving nodes are directly readable.
	if _, err := v.ReadAt(buf, 2*sdb+4096); err != nil {
		t.Fatalf("read of surviving unit in dirty stripe: %v", err)
	}
	if !bytes.Equal(buf, shadow[2*sdb+4096:2*sdb+2*4096]) {
		t.Fatal("surviving unit mismatch")
	}
	// Clean stripes reconstruct fine.
	if _, err := v.ReadAt(buf, 0); err != nil {
		t.Fatalf("clean stripe read: %v", err)
	}
	if !bytes.Equal(buf, shadow[:4096]) {
		t.Fatal("clean stripe mismatch")
	}
	// Flush cannot drain the stripe (its node is gone) and must say so.
	if err := v.Flush(context.Background()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Flush with undrainable stripe = %v, want ErrDegraded", err)
	}
	if got := v.DirtyList(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("dirty after degraded flush = %v, want [2] (exposure preserved)", got)
	}
}

// TestDegradedWritesMaintainParity: while a node is down, writes switch
// to the synchronous protocol, so no new exposure accrues and all data
// (including bytes routed around the dead node) reads back correctly —
// both degraded and, after heal, from the healed node itself.
func TestDegradedWritesMaintainParity(t *testing.T) {
	v, faults := testVolume(t, 4, 16*4096, quietOpts())
	shadow := fillVolume(t, v, 11)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	const victim = 1
	faults[victim].Crash()

	// A spread of degraded writes: full stripes, partial units touching
	// the victim's unit, partial writes missing it entirely.
	rng := rand.New(rand.NewSource(99))
	sdb := v.Geometry().StripeDataBytes()
	writes := []struct{ off, n int64 }{
		{0, sdb},                 // full stripe 0
		{3*sdb + 100, 5000},      // partial, crosses units
		{5 * sdb, 4096},          // exactly one unit
		{7*sdb + 4096, 2 * 4096}, // two units
		{9*sdb + 8191, 2},        // tiny, straddles a unit edge
	}
	for _, w := range writes {
		buf := make([]byte, w.n)
		rng.Read(buf)
		if _, err := v.WriteAt(buf, w.off); err != nil {
			t.Fatalf("degraded write (%d,%d): %v", w.off, w.n, err)
		}
		copy(shadow[w.off:], buf)
	}
	if st := v.Stats(); st.DegradedWrites == 0 {
		t.Error("no degraded writes counted")
	}
	if n := v.DirtyStripes(); n != 0 {
		t.Fatalf("degraded writes left %d stripes dirty: exposure grew while redundancy was spent", n)
	}
	// Everything reads back (the victim's units via reconstruction).
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("mismatch while degraded")
	}

	// Bring the node back and heal. Only the stripes the node missed
	// writes for should need rebuilding.
	faults[victim].Restore()
	rep, err := v.HealNode(context.Background(), victim, false)
	if err != nil {
		t.Fatalf("HealNode: %v", err)
	}
	if len(rep.Lost) != 0 || rep.Remaining != 0 {
		t.Fatalf("heal report %+v, want no loss, nothing remaining", rep)
	}
	if rep.Healed == 0 {
		t.Error("heal rebuilt nothing despite routed writes")
	}
	states := v.NodeStates()
	if states[victim].State != StateUp || states[victim].StaleStripes != 0 {
		t.Fatalf("victim after heal: %+v", states[victim])
	}

	// Proof the healed units hold real data: kill a different node and
	// read everything — reconstruction now leans on the healed node.
	other := (victim + 2) % 4
	faults[other].Crash()
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("read after second crash: %v", err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("mismatch after heal + second crash: heal wrote wrong bytes")
	}
}

// TestTwoNodesDownExceedsParity: single parity cannot cover two absent
// data units; operations needing both must fail crisply.
func TestTwoNodesDownExceedsParity(t *testing.T) {
	v, faults := testVolume(t, 4, 16*4096, quietOpts())
	fillVolume(t, v, 3)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	faults[0].Crash()
	faults[1].Crash()
	// Stripe 0 has data on nodes 0,1,2: two of three data units gone.
	buf := make([]byte, 4096)
	_, err := v.ReadAt(buf, 0)
	if !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("read with 2 data nodes down = %v, want ErrTooManyNodes", err)
	}
	_, err = v.WriteAt(buf, 0)
	if !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("write with 2 data nodes down = %v, want ErrTooManyNodes", err)
	}
}

// TestFullHeal rebuilds a blank replacement node: every unit the node
// hosts is reconstructed, after which it serves reads alone.
func TestFullHeal(t *testing.T) {
	blank := newMemNode(16 * 4096)
	faults := make([]*FaultNode, 4)
	members := make([]Member, 4)
	for i := range members {
		var inner Node = newMemNode(16 * 4096)
		faults[i] = NewFaultNode(inner, int64(i))
		f := faults[i]
		members[i] = Member{Node: f, Dial: func() (Node, error) { return f, nil }}
	}
	v, err := Open(members, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	shadow := fillVolume(t, v, 5)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// "Replace" node 2's disk with a blank one behind the injector.
	faults[2].Crash()
	faults[2].Restore()
	faults[2].inner = blank
	rep, err := v.HealNode(context.Background(), 2, true)
	if err != nil {
		t.Fatalf("full heal: %v", err)
	}
	if len(rep.Lost) != 0 {
		t.Fatalf("full heal of clean volume lost stripes: %v", rep.Lost)
	}
	// The blank node must now hold everything: read with all others of
	// each stripe... simplest proof: verify parity and read all data
	// after killing a different node.
	bad, skipped, err := v.VerifyParity(context.Background())
	if err != nil || len(bad) != 0 || skipped != 0 {
		t.Fatalf("VerifyParity after full heal = (%v, %d, %v)", bad, skipped, err)
	}
	faults[0].Crash()
	got := make([]byte, v.Capacity())
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("data mismatch after full heal: blank node served garbage")
	}
}

// TestSlowNodeTimesOutAndFailsOver: a browned-out node must be cut
// loose by NodeTimeout and served around, not waited on forever.
func TestSlowNodeTimesOutAndFailsOver(t *testing.T) {
	opts := quietOpts()
	opts.NodeTimeout = 50 * time.Millisecond
	v, faults := testVolume(t, 4, 16*4096, opts)
	shadow := fillVolume(t, v, 13)
	if err := v.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	faults[2].SetSlow(10 * time.Second) // far past the node timeout
	got := make([]byte, 3*4096)
	if _, err := v.ReadAt(got, 0); err != nil {
		t.Fatalf("read with slow node: %v", err)
	}
	if !bytes.Equal(got, shadow[:len(got)]) {
		t.Fatal("mismatch reading around slow node")
	}
	// A hedge may have answered the read before the straggling primary
	// hit NodeTimeout, so the demotion lands asynchronously — but it
	// must land: hedging hides the latency, the timeout still cuts a
	// wedged node loose.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if states := v.NodeStates(); states[2].State != StateUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow node still considered up after timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
