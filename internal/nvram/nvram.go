// Package nvram implements AFRAID's marking memory: the non-volatile
// per-stripe bitmap recording which stripes are unredundant (their
// parity needs rebuilding). The paper prices this at one bit per stripe
// — ~3 KB per GB of stored data for a 5-wide, 8 KB-stripe-unit array.
package nvram

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-size set of stripe numbers. The zero value is not
// usable; call NewBitmap.
type Bitmap struct {
	words   []uint64
	stripes int64
	count   int64
	failed  bool

	marks   uint64 // total Mark calls that changed state
	unmarks uint64 // total Unmark calls that changed state
}

// NewBitmap creates a marking memory covering the given stripe count.
func NewBitmap(stripes int64) *Bitmap {
	if stripes <= 0 {
		panic(fmt.Sprintf("nvram: stripe count %d must be positive", stripes))
	}
	return &Bitmap{
		words:   make([]uint64, (stripes+63)/64),
		stripes: stripes,
	}
}

// Stripes returns the number of stripes covered.
func (b *Bitmap) Stripes() int64 { return b.stripes }

// SizeBytes returns the memory footprint of the map itself — the
// paper's "cost of the marking memory".
func (b *Bitmap) SizeBytes() int64 { return int64(len(b.words)) * 8 }

func (b *Bitmap) check(stripe int64) {
	if stripe < 0 || stripe >= b.stripes {
		panic(fmt.Sprintf("nvram: stripe %d out of range [0,%d)", stripe, b.stripes))
	}
	if b.failed {
		panic("nvram: access to failed marking memory")
	}
}

// Mark sets the unredundant bit for a stripe. Re-marking an
// already-marked stripe does nothing (as in the paper). It reports
// whether the state changed.
func (b *Bitmap) Mark(stripe int64) bool {
	b.check(stripe)
	w, bit := stripe/64, uint(stripe%64)
	if b.words[w]&(1<<bit) != 0 {
		return false
	}
	b.words[w] |= 1 << bit
	b.count++
	b.marks++
	return true
}

// Unmark clears the bit after a stripe's parity has been rebuilt. It
// reports whether the state changed.
func (b *Bitmap) Unmark(stripe int64) bool {
	b.check(stripe)
	w, bit := stripe/64, uint(stripe%64)
	if b.words[w]&(1<<bit) == 0 {
		return false
	}
	b.words[w] &^= 1 << bit
	b.count--
	b.unmarks++
	return true
}

// IsMarked reports whether a stripe is unredundant.
func (b *Bitmap) IsMarked(stripe int64) bool {
	b.check(stripe)
	return b.words[stripe/64]&(1<<uint(stripe%64)) != 0
}

// Count returns the number of marked stripes.
func (b *Bitmap) Count() int64 {
	if b.failed {
		panic("nvram: access to failed marking memory")
	}
	return b.count
}

// Next returns the first marked stripe at or after from, wrapping past
// the end, and whether any marked stripe exists. Scanning from a moving
// cursor gives the rebuild task a cheap round-robin order that
// naturally coalesces adjacent dirty stripes.
func (b *Bitmap) Next(from int64) (int64, bool) {
	if b.failed {
		panic("nvram: access to failed marking memory")
	}
	if b.count == 0 {
		return 0, false
	}
	if from < 0 || from >= b.stripes {
		from = 0
	}
	// Scan [from, end), then [0, from).
	if s, ok := b.scan(from, b.stripes); ok {
		return s, true
	}
	return b.scan(0, from)
}

// scan finds the first set bit in [lo, hi).
func (b *Bitmap) scan(lo, hi int64) (int64, bool) {
	if lo >= hi {
		return 0, false
	}
	w := lo / 64
	// Mask off bits below lo in the first word.
	word := b.words[w] &^ ((1 << uint(lo%64)) - 1)
	for {
		if word != 0 {
			s := w*64 + int64(bits.TrailingZeros64(word))
			if s < hi {
				return s, true
			}
			return 0, false
		}
		w++
		if w*64 >= hi {
			return 0, false
		}
		word = b.words[w]
	}
}

// Marked returns all marked stripes in ascending order. Intended for
// tests and recovery scans, not hot paths.
func (b *Bitmap) Marked() []int64 {
	if b.failed {
		panic("nvram: access to failed marking memory")
	}
	out := make([]int64, 0, b.count)
	for wi, word := range b.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			out = append(out, int64(wi)*64+int64(bit))
			word &^= 1 << uint(bit)
		}
	}
	return out
}

// Stats returns the number of state-changing marks and unmarks.
func (b *Bitmap) Stats() (marks, unmarks uint64) { return b.marks, b.unmarks }

// Fail simulates a marking-memory failure: the contents are lost. The
// recovery procedure (§3.1) is to rebuild parity for the whole array.
// Subsequent accesses panic until Reset is called.
func (b *Bitmap) Fail() { b.failed = true }

// Failed reports whether the memory has failed.
func (b *Bitmap) Failed() bool { return b.failed }

// Reset clears the failure flag and all marks, modeling replacement of
// the memory (after which a full-array parity rebuild is required).
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
	b.failed = false
}

// Serialize encodes the bitmap for persistence (used by the functional
// store to survive crashes). Format: stripes count, then words,
// little-endian.
func (b *Bitmap) Serialize() []byte {
	if b.failed {
		panic("nvram: serializing failed marking memory")
	}
	out := make([]byte, 8+len(b.words)*8)
	binary.LittleEndian.PutUint64(out, uint64(b.stripes))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+i*8:], w)
	}
	return out
}

// Deserialize reconstructs a bitmap from Serialize output.
func Deserialize(data []byte) (*Bitmap, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("nvram: truncated image (%d bytes)", len(data))
	}
	stripes := int64(binary.LittleEndian.Uint64(data))
	if stripes <= 0 {
		return nil, fmt.Errorf("nvram: invalid stripe count %d", stripes)
	}
	// Validate before allocating: a corrupt header must not drive a
	// huge allocation.
	words := (stripes + 63) / 64
	if int64(len(data)) != 8+words*8 {
		return nil, fmt.Errorf("nvram: image length %d does not match %d stripes", len(data), stripes)
	}
	b := NewBitmap(stripes)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8+i*8:])
		b.count += int64(bits.OnesCount64(b.words[i]))
	}
	// Reject garbage bits beyond the last stripe.
	if rem := stripes % 64; rem != 0 {
		last := b.words[len(b.words)-1]
		if last>>uint(rem) != 0 {
			return nil, fmt.Errorf("nvram: image has bits set beyond stripe %d", stripes)
		}
	}
	return b, nil
}
