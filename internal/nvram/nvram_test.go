package nvram

import (
	"testing"
	"testing/quick"
)

func TestMarkUnmarkCount(t *testing.T) {
	b := NewBitmap(1000)
	if !b.Mark(5) {
		t.Fatal("first mark should change state")
	}
	if b.Mark(5) {
		t.Fatal("re-mark should be a no-op (paper: re-marking does nothing)")
	}
	if b.Count() != 1 {
		t.Fatalf("count = %d", b.Count())
	}
	if !b.IsMarked(5) || b.IsMarked(6) {
		t.Fatal("membership wrong")
	}
	if !b.Unmark(5) {
		t.Fatal("unmark should change state")
	}
	if b.Unmark(5) {
		t.Fatal("double unmark should be a no-op")
	}
	if b.Count() != 0 {
		t.Fatalf("count = %d after unmark", b.Count())
	}
}

func TestNextWrapsAround(t *testing.T) {
	b := NewBitmap(256)
	b.Mark(10)
	b.Mark(200)
	if s, ok := b.Next(0); !ok || s != 10 {
		t.Fatalf("Next(0) = %d,%v", s, ok)
	}
	if s, ok := b.Next(11); !ok || s != 200 {
		t.Fatalf("Next(11) = %d,%v", s, ok)
	}
	if s, ok := b.Next(201); !ok || s != 10 {
		t.Fatalf("Next(201) should wrap to 10, got %d,%v", s, ok)
	}
	b.Unmark(10)
	b.Unmark(200)
	if _, ok := b.Next(0); ok {
		t.Fatal("Next on empty map returned a stripe")
	}
}

func TestNextWordBoundaries(t *testing.T) {
	b := NewBitmap(300)
	for _, s := range []int64{63, 64, 127, 128, 255, 299} {
		b.Mark(s)
	}
	got := b.Marked()
	want := []int64{63, 64, 127, 128, 255, 299}
	if len(got) != len(want) {
		t.Fatalf("marked = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("marked = %v, want %v", got, want)
		}
	}
}

func TestBitmapQuickConsistency(t *testing.T) {
	prop := func(ops []int16) bool {
		const n = 128
		b := NewBitmap(n)
		ref := map[int64]bool{}
		for _, op := range ops {
			s := int64(op) % n
			if s < 0 {
				s += n
			}
			if op%2 == 0 {
				b.Mark(s)
				ref[s] = true
			} else {
				b.Unmark(s)
				delete(ref, s)
			}
		}
		if b.Count() != int64(len(ref)) {
			return false
		}
		for s := int64(0); s < n; s++ {
			if b.IsMarked(s) != ref[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	prop := func(stripesRaw uint16, marks []uint16) bool {
		stripes := int64(stripesRaw%500) + 1
		b := NewBitmap(stripes)
		for _, m := range marks {
			b.Mark(int64(m) % stripes)
		}
		img := b.Serialize()
		got, err := Deserialize(img)
		if err != nil {
			return false
		}
		if got.Count() != b.Count() || got.Stripes() != b.Stripes() {
			return false
		}
		for s := int64(0); s < stripes; s++ {
			if got.IsMarked(s) != b.IsMarked(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := Deserialize(make([]byte, 4)); err == nil {
		t.Fatal("short image accepted")
	}
	b := NewBitmap(10)
	img := b.Serialize()
	if _, err := Deserialize(img[:len(img)-1]); err == nil {
		t.Fatal("truncated image accepted")
	}
	// Set a bit beyond stripe 10.
	img2 := b.Serialize()
	img2[8+1] = 0x80 // bit 15
	if _, err := Deserialize(img2); err == nil {
		t.Fatal("image with out-of-range bits accepted")
	}
}

func TestFailAndReset(t *testing.T) {
	b := NewBitmap(64)
	b.Mark(3)
	b.Fail()
	if !b.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("access to failed memory did not panic")
			}
		}()
		b.IsMarked(3)
	}()
	b.Reset()
	if b.Failed() || b.Count() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if b.IsMarked(3) {
		t.Fatal("mark survived Reset; recovery must rebuild the whole array")
	}
}

func TestSizeBytesMatchesPaperScale(t *testing.T) {
	// Paper: ~3 KB of marking memory per 1 GB stored, for a 5-wide
	// array with 8 KB stripe units. 1 GB data / (4 data disks * 8 KB)
	// stripes = 32768 stripes -> 4 KB of bitmap (1 bit each).
	stripes := int64(1<<30) / (4 * 8 << 10)
	b := NewBitmap(stripes)
	if b.SizeBytes() != stripes/8 {
		t.Fatalf("SizeBytes = %d, want %d", b.SizeBytes(), stripes/8)
	}
	if b.SizeBytes() > 8<<10 {
		t.Fatalf("marking memory %d bytes per GB; paper promises a trivial cost", b.SizeBytes())
	}
}

func TestMarkedOrderedAscending(t *testing.T) {
	b := NewBitmap(1024)
	for _, s := range []int64{700, 3, 512, 64, 65} {
		b.Mark(s)
	}
	got := b.Marked()
	want := []int64{3, 64, 65, 512, 700}
	if len(got) != len(want) {
		t.Fatalf("marked = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("marked = %v, want %v", got, want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := NewBitmap(10)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range mark did not panic")
		}
	}()
	b.Mark(10)
}
