package exp

import (
	"strings"
	"testing"
	"time"
)

// testConfig keeps unit-test runs fast; the recorded experiments use
// the 5-minute default via cmd/experiments.
func testConfig(workloads ...string) Config {
	return Config{Duration: 20 * time.Second, Seed: 77, Workloads: workloads}
}

func TestGridRunsAndIsComplete(t *testing.T) {
	g, err := Run(testConfig("hplajw", "att"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != 2 {
		t.Fatalf("got %d workloads", len(g.Results))
	}
	for _, w := range g.Config.Workloads {
		for _, p := range g.Policies {
			r, ok := g.Results[w][p.Name]
			if !ok {
				t.Fatalf("missing cell %s/%s", w, p.Name)
			}
			if r.Metrics.Completed == 0 {
				t.Fatalf("cell %s/%s completed no requests", w, p.Name)
			}
			if r.Metrics.Submitted != r.Metrics.Completed {
				t.Fatalf("cell %s/%s lost requests", w, p.Name)
			}
		}
	}
}

func TestGridOrderingInvariants(t *testing.T) {
	g, err := Run(testConfig("cello-news", "as400-2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range g.Config.Workloads {
		r5 := g.Results[w]["RAID5"].Metrics
		af := g.Results[w]["AFRAID"].Metrics
		r0 := g.Results[w]["RAID0"].Metrics
		// The paper's central performance result, per workload.
		if af.MeanIOTime >= r5.MeanIOTime {
			t.Errorf("%s: AFRAID %v not faster than RAID5 %v", w, af.MeanIOTime, r5.MeanIOTime)
		}
		if float64(af.MeanIOTime) > 1.5*float64(r0.MeanIOTime) {
			t.Errorf("%s: AFRAID %v far from RAID0 %v", w, af.MeanIOTime, r0.MeanIOTime)
		}
		// Availability ordering: RAID0 < AFRAID < RAID5.
		a0 := g.Results[w]["RAID0"].Avail.OverallMTTDL
		aa := g.Results[w]["AFRAID"].Avail.OverallMTTDL
		a5 := g.Results[w]["RAID5"].Avail.OverallMTTDL
		if !(a0 < aa && aa < a5) {
			t.Errorf("%s: MTTDL ordering violated: %g %g %g", w, a0, aa, a5)
		}
	}
}

func TestFigure3Monotonicity(t *testing.T) {
	g, err := Run(testConfig("cello-usr", "att", "as400-4"))
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Figure3()
	if pts[0].Policy != "RAID5" || pts[len(pts)-1].Policy != "RAID0" {
		t.Fatalf("unexpected policy order: %v", pts)
	}
	// Availability must decline monotonically along the ladder (the
	// smooth tradeoff the paper's Figure 3 shows).
	for i := 1; i < len(pts); i++ {
		if pts[i].RelAvail > pts[i-1].RelAvail+1e-9 {
			t.Errorf("availability rose from %s (%.3f) to %s (%.3f)",
				pts[i-1].Policy, pts[i-1].RelAvail, pts[i].Policy, pts[i].RelAvail)
		}
	}
	// Pure AFRAID must be the fastest AFRAID point and RAID5 the slowest.
	if pts[len(pts)-2].Policy != "AFRAID" {
		t.Fatalf("expected AFRAID before RAID0, got %v", pts[len(pts)-2].Policy)
	}
	if pts[len(pts)-2].RelPerf <= pts[1].RelPerf {
		t.Errorf("pure AFRAID (%.2fx) not faster than tightest target (%.2fx)",
			pts[len(pts)-2].RelPerf, pts[1].RelPerf)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	g, err := Run(testConfig("hplajw"))
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"table2": g.Table2(),
		"table3": g.Table3(),
		"table4": g.Table4(),
		"fig3":   g.Figure3Text(),
		"fig4":   g.Figure4Text(),
	} {
		if !strings.Contains(out, "hplajw") && name != "fig3" {
			t.Errorf("%s output missing workload row:\n%s", name, out)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short", name)
		}
	}
}

func TestIdleDelaySweepMonotoneExposure(t *testing.T) {
	rows, err := IdleDelaySweep("cello-usr", 20*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Longer idle thresholds must not reduce exposure.
	first := rows[0].Metrics.FracUnprotected
	last := rows[len(rows)-1].Metrics.FracUnprotected
	if last <= first {
		t.Errorf("1s threshold exposure %.3f not above 10ms exposure %.3f", last, first)
	}
}

func TestDirtyThresholdSweepBoundsLag(t *testing.T) {
	rows, err := DirtyThresholdSweep("att", 20*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	unbounded := rows[0].Metrics.MaxParityLag
	tightest := rows[1].Metrics.MaxParityLag // th=5
	if tightest >= unbounded {
		t.Errorf("threshold 5 peak lag %.0f not below unbounded %.0f", tightest, unbounded)
	}
}

func TestWidthSweepRuns(t *testing.T) {
	rows, err := WidthSweep("cello-usr", 15*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupX <= 1 {
			t.Errorf("width %d: AFRAID speedup %.2fx not above 1", r.Disks, r.SpeedupX)
		}
	}
}

func TestCoalesceAndAdaptiveSweepsRun(t *testing.T) {
	co, err := CoalesceSweep("netware", 15*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(co) != 2 {
		t.Fatalf("coalesce rows = %d", len(co))
	}
	ad, err := AdaptiveIdleSweep("cello-usr", 15*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ad) != 3 {
		t.Fatalf("detector rows = %d, want timer/adaptive/predictor", len(ad))
	}
	if out := RenderAblation("x", co); !strings.Contains(out, "coalesce=on") {
		t.Error("render missing variant label")
	}
	if out := RenderWidth(nil); !strings.Contains(out, "disks") {
		t.Error("width render missing header")
	}
}
