package exp

import (
	"fmt"
	"strings"
	"time"

	"afraid/internal/array"
	"afraid/internal/cache"
	"afraid/internal/disk"
	"afraid/internal/layout"
	"afraid/internal/sim"
	"afraid/internal/trace"
)

// AblationResult is one row of an ablation sweep.
type AblationResult struct {
	Label   string
	Metrics array.Metrics
}

// runOn generates the workload trace once and replays it under cfg.
func runOn(cfg array.Config, workload string, d time.Duration, seed uint64) (array.Metrics, error) {
	params, err := trace.Lookup(workload, d)
	if err != nil {
		return array.Metrics{}, err
	}
	tr, err := trace.Generate(params, cfg.Geometry.Capacity(), sim.NewRNG(seed))
	if err != nil {
		return array.Metrics{}, err
	}
	return array.RunTrace(cfg, tr)
}

// IdleDelaySweep measures how the idle-detection threshold trades
// exposure (unprotected fraction) against foreground interference
// (mean I/O time). DESIGN.md ablation #1.
func IdleDelaySweep(workload string, d time.Duration, seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, delay := range []time.Duration{
		10 * time.Millisecond, 30 * time.Millisecond, 100 * time.Millisecond,
		300 * time.Millisecond, time.Second,
	} {
		cfg := array.DefaultConfig(array.AFRAID)
		cfg.Policy.IdleDelay = delay
		m, err := runOn(cfg, workload, d, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: delay.String(), Metrics: m})
	}
	return out, nil
}

// DirtyThresholdSweep measures the stripe-count bound's effect on peak
// parity lag and performance. DESIGN.md ablation #2.
func DirtyThresholdSweep(workload string, d time.Duration, seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, th := range []int{0, 5, 20, 50, 100} {
		cfg := array.DefaultConfig(array.AFRAID)
		cfg.Policy.DirtyThreshold = th
		m, err := runOn(cfg, workload, d, seed)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("th=%d", th)
		if th == 0 {
			label = "unbounded"
		}
		out = append(out, AblationResult{Label: label, Metrics: m})
	}
	return out, nil
}

// CoalesceSweep compares rebuild with and without adjacent-stripe
// coalescing (an optimization the paper mentions but did not model).
// DESIGN.md ablation #3.
func CoalesceSweep(workload string, d time.Duration, seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, on := range []bool{false, true} {
		cfg := array.DefaultConfig(array.AFRAID)
		cfg.Policy.CoalesceAdjacent = on
		m, err := runOn(cfg, workload, d, seed)
		if err != nil {
			return nil, err
		}
		label := "coalesce=off"
		if on {
			label = "coalesce=on"
		}
		out = append(out, AblationResult{Label: label, Metrics: m})
	}
	return out, nil
}

// WidthResult is one row of the stripe-width sweep.
type WidthResult struct {
	Disks      int
	AFRAID     array.Metrics
	RAID5      array.Metrics
	SpeedupX   float64
	FracUnprot float64
}

// WidthSweep varies the number of disks. The paper notes AFRAID's
// parity-rebuild overhead is linear in stripe width, so it "is best
// suited to arrays with smaller numbers of disks". DESIGN.md ablation #4.
func WidthSweep(workload string, d time.Duration, seed uint64) ([]WidthResult, error) {
	var out []WidthResult
	for _, n := range []int{3, 4, 5, 7, 9} {
		mk := func(mode array.Mode) array.Config {
			cfg := array.DefaultConfig(mode)
			p := disk.C3325()
			unit := int64(8 << 10)
			cfg.Geometry = layout.Geometry{
				Disks:      n,
				StripeUnit: unit,
				DiskSize:   p.CapacityBytes() / unit * unit,
				Level:      cfg.Geometry.Level,
			}
			cfg.Cache = cache.Config{BlockSize: unit, ReadBytes: 256 << 10, WriteBytes: 256 << 10}
			return cfg
		}
		// Size the trace to the narrowest capacity used (RAID5 at n disks).
		cfg5 := mk(array.RAID5)
		params, err := trace.Lookup(workload, d)
		if err != nil {
			return nil, err
		}
		tr, err := trace.Generate(params, cfg5.Geometry.Capacity(), sim.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		m5, err := array.RunTrace(cfg5, tr)
		if err != nil {
			return nil, err
		}
		ma, err := array.RunTrace(mk(array.AFRAID), tr)
		if err != nil {
			return nil, err
		}
		out = append(out, WidthResult{
			Disks:      n,
			AFRAID:     ma,
			RAID5:      m5,
			SpeedupX:   float64(m5.MeanIOTime) / float64(ma.MeanIOTime),
			FracUnprot: ma.FracUnprotected,
		})
	}
	return out, nil
}

// AdaptiveIdleSweep compares the fixed 100 ms detector with the
// adaptive backoff detector and the Golding-style idle-period
// predictor (the paper ran a predictor but ignored its output; this is
// the ablation that measures what ignoring it cost).
func AdaptiveIdleSweep(workload string, d time.Duration, seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, variant := range []string{"timer-100ms", "adaptive", "predictor"} {
		cfg := array.DefaultConfig(array.AFRAID)
		switch variant {
		case "adaptive":
			cfg.Policy.AdaptiveIdle = true
		case "predictor":
			cfg.Policy.PredictiveIdle = true
		}
		m, err := runOn(cfg, workload, d, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: variant, Metrics: m})
	}
	return out, nil
}

// RenderAblation renders a generic ablation table.
func RenderAblation(title string, rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %12s %10s\n",
		"variant", "meanIO(ms)", "unprot(%)", "lag(KB)", "maxlag(KB)", "cutShort")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %12.1f %12.1f %10d\n",
			r.Label,
			float64(r.Metrics.MeanIOTime)/1e6,
			100*r.Metrics.FracUnprotected,
			r.Metrics.MeanParityLag/1e3,
			r.Metrics.MaxParityLag/1e3,
			r.Metrics.EpisodesCutShort)
	}
	return b.String()
}

// RenderWidth renders the stripe-width sweep.
func RenderWidth(rows []WidthResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: stripe width (paper: AFRAID best suited to small arrays)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %10s %10s\n", "disks", "RAID5(ms)", "AFRAID(ms)", "speedup", "unprot(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %12.2f %12.2f %9.2fx %10.2f\n",
			r.Disks,
			float64(r.RAID5.MeanIOTime)/1e6,
			float64(r.AFRAID.MeanIOTime)/1e6,
			r.SpeedupX,
			100*r.FracUnprot)
	}
	return b.String()
}
