package exp

import (
	"strings"
	"testing"
	"time"
)

func TestRelatedWorkSweepOrdering(t *testing.T) {
	rows, err := RelatedWorkSweep("att", 30*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]RelatedWorkRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// §2: parity logging beats RAID 5 but not AFRAID; a starved log is
	// the failure mode AFRAID does not have.
	if byLabel["plog-2MB"].Metrics.MeanIOTime >= byLabel["RAID5"].Metrics.MeanIOTime {
		t.Error("roomy parity log not faster than RAID5")
	}
	if byLabel["AFRAID"].Metrics.MeanIOTime >= byLabel["plog-2MB"].Metrics.MeanIOTime {
		t.Error("AFRAID not faster than parity logging")
	}
	if byLabel["plog-128KB"].Metrics.LogStalls == 0 {
		t.Error("starved log never stalled")
	}
	if byLabel["plog-128KB"].Metrics.MeanIOTime <= byLabel["plog-2MB"].Metrics.MeanIOTime {
		t.Error("log pressure did not hurt")
	}
	if out := RenderRelatedWork("att", rows); !strings.Contains(out, "plog-128KB") {
		t.Error("render missing row")
	}
}

func TestRAID6SweepOrdering(t *testing.T) {
	rows, err := RAID6Sweep("att", 30*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]RAID6Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// §5: RAID 6 pays an even higher small-update penalty than RAID 5;
	// deferring Q recovers most of it; deferring both recovers all.
	if byLabel["RAID6"].Metrics.MeanIOTime <= byLabel["RAID5"].Metrics.MeanIOTime {
		t.Error("RAID6 not slower than RAID5")
	}
	if byLabel["AFRAID6-q"].Metrics.MeanIOTime >= byLabel["RAID6"].Metrics.MeanIOTime {
		t.Error("deferring Q did not help")
	}
	if byLabel["AFRAID6-pq"].Metrics.MeanIOTime >= byLabel["AFRAID6-q"].Metrics.MeanIOTime {
		t.Error("deferring both not faster than deferring Q")
	}
	// Availability: defer-q keeps single-failure tolerance, so its disk
	// MTTDL stays above even plain RAID 5's.
	ap := byLabel["AFRAID6-q"].Avail.DiskMTTDL
	if ap <= byLabel["RAID5"].Avail.DiskMTTDL {
		t.Errorf("AFRAID6-q disk MTTDL %g not above RAID5 %g", ap, byLabel["RAID5"].Avail.DiskMTTDL)
	}
	if byLabel["AFRAID6-pq"].Avail.DiskMTTDL >= byLabel["AFRAID6-q"].Avail.DiskMTTDL {
		t.Error("defer-both not riskier than defer-q")
	}
	if out := RenderRAID6("att", rows); !strings.Contains(out, "AFRAID6-q") {
		t.Error("render missing row")
	}
}

func TestGranularitySweepShrinksLag(t *testing.T) {
	rows, err := GranularitySweep("cello-news", 30*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	m1 := rows[0].Metrics
	m4 := rows[2].Metrics
	if m4.MeanParityLag >= m1.MeanParityLag {
		t.Errorf("M=4 lag %.0f not below M=1 lag %.0f", m4.MeanParityLag, m1.MeanParityLag)
	}
}

func TestConservativeSweepRuns(t *testing.T) {
	rows, err := ConservativeSweep("att", 20*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Metrics.Completed == 0 {
		t.Fatal("conservative run completed nothing")
	}
}

func TestDegradedSweep(t *testing.T) {
	rows, err := DegradedSweep("cello-usr", 30*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Metrics.FailedAt == 0 {
			t.Fatalf("%s: fault not injected", r.Label)
		}
		if r.Metrics.Submitted != r.Metrics.Completed {
			t.Fatalf("%s: lost requests", r.Label)
		}
	}
	if rows[0].Metrics.LostUnitsAtFailure != 0 {
		t.Error("RAID5 lost units on single failure")
	}
	if out := RenderDegraded("cello-usr", rows); !strings.Contains(out, "lostUnits") {
		t.Error("render missing header")
	}
}
