package exp

import (
	"fmt"
	"strings"
	"time"

	"afraid/internal/array"
	"afraid/internal/avail"
	"afraid/internal/sim"
	"afraid/internal/trace"
)

// RelatedWorkRow compares AFRAID against the §2 baselines.
type RelatedWorkRow struct {
	Label   string
	Metrics array.Metrics
}

// RelatedWorkSweep compares RAID 5, parity logging (roomy and starved
// logs), and AFRAID on one workload — the §2 argument that AFRAID has
// "no parity log to fill up".
func RelatedWorkSweep(workload string, d time.Duration, seed uint64) ([]RelatedWorkRow, error) {
	params, err := trace.Lookup(workload, d)
	if err != nil {
		return nil, err
	}
	mk := func(mode array.Mode, logBytes int64) array.Config {
		cfg := array.DefaultConfig(mode)
		if mode == array.PARITYLOG && logBytes > 0 {
			cfg.PLog.LogBytes = logBytes
			cfg.Geometry.DiskSize = (cfg.Disk.CapacityBytes() - logBytes) /
				cfg.Geometry.StripeUnit * cfg.Geometry.StripeUnit
		}
		return cfg
	}
	// One trace sized to the smallest client capacity in the sweep.
	smallest := mk(array.PARITYLOG, 0).Geometry.Capacity()
	tr, err := trace.Generate(params, smallest, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	var out []RelatedWorkRow
	for _, c := range []struct {
		label string
		cfg   array.Config
	}{
		{"RAID5", mk(array.RAID5, 0)},
		{"plog-2MB", mk(array.PARITYLOG, 0)},
		{"plog-128KB", mk(array.PARITYLOG, 128<<10)},
		{"AFRAID", mk(array.AFRAID, 0)},
	} {
		m, err := array.RunTrace(c.cfg, tr)
		if err != nil {
			return nil, err
		}
		out = append(out, RelatedWorkRow{Label: c.label, Metrics: m})
	}
	return out, nil
}

// RenderRelatedWork renders the §2 comparison.
func RenderRelatedWork(workload string, rows []RelatedWorkRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Related work (§2): AFRAID vs parity logging (%s)\n", workload)
	fmt.Fprintf(&b, "%-12s %10s %8s %10s %8s %10s\n",
		"variant", "meanIO(ms)", "p99(ms)", "stalls", "reinteg", "unprot(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f %8.1f %10d %8d %10.2f\n",
			r.Label,
			float64(r.Metrics.MeanIOTime)/1e6,
			float64(r.Metrics.P99IOTime)/1e6,
			r.Metrics.LogStalls,
			r.Metrics.Reintegrations,
			100*r.Metrics.FracUnprotected)
	}
	return b.String()
}

// RAID6Row is one row of the §5 double-parity sweep.
type RAID6Row struct {
	Label   string
	Metrics array.Metrics
	Avail   avail.Report
}

// RAID6Sweep runs the §5 extension: RAID 5, RAID 6, AFRAID6 deferring
// Q, AFRAID6 deferring both, and plain AFRAID.
func RAID6Sweep(workload string, d time.Duration, seed uint64) ([]RAID6Row, error) {
	params, err := trace.Lookup(workload, d)
	if err != nil {
		return nil, err
	}
	// RAID 6 geometry has the smallest client capacity (two parity
	// units per stripe).
	smallest := array.DefaultConfig(array.RAID6).Geometry.Capacity()
	tr, err := trace.Generate(params, smallest, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	ap := avail.Default()
	type variant struct {
		label string
		mode  array.Mode
		q     array.QDeferPolicy
	}
	var out []RAID6Row
	for _, v := range []variant{
		{"RAID5", array.RAID5, 0},
		{"RAID6", array.RAID6, 0},
		{"AFRAID6-q", array.AFRAID6, array.DeferQ},
		{"AFRAID6-pq", array.AFRAID6, array.DeferBoth},
		{"AFRAID", array.AFRAID, 0},
	} {
		cfg := array.DefaultConfig(v.mode)
		cfg.QDefer = v.q
		m, err := array.RunTrace(cfg, tr)
		if err != nil {
			return nil, err
		}
		var rep avail.Report
		switch v.mode {
		case array.RAID5:
			rep = ap.RAID5Report()
		case array.RAID6:
			rep = ap.AFRAID6Report(0, 0, false)
		case array.AFRAID6:
			rep = ap.AFRAID6Report(m.FracUnprotected, m.MeanParityLag, v.q == array.DeferBoth)
		default:
			rep = ap.AFRAIDReport(m.FracUnprotected, m.MeanParityLag)
		}
		out = append(out, RAID6Row{Label: v.label, Metrics: m, Avail: rep})
	}
	return out, nil
}

// RenderRAID6 renders the §5 double-parity sweep.
func RenderRAID6(workload string, rows []RAID6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§5): AFRAID + RAID 6 deferred parity (%s)\n", workload)
	fmt.Fprintf(&b, "%-12s %10s %10s %14s %12s\n",
		"variant", "meanIO(ms)", "unprot(%)", "diskMTTDL(h)", "MDLR(B/h)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %14.3g %12.3g\n",
			r.Label,
			float64(r.Metrics.MeanIOTime)/1e6,
			100*r.Metrics.FracUnprotected,
			r.Avail.DiskMTTDL,
			r.Avail.DiskMDLR)
	}
	return b.String()
}

// GranularitySweep measures the §5 sub-stripe marking extension on a
// workload with sub-unit writes: finer marking shrinks the exposed
// bytes at the cost of more marking memory.
func GranularitySweep(workload string, d time.Duration, seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, m := range []int{1, 2, 4, 8} {
		cfg := array.DefaultConfig(array.AFRAID)
		cfg.Policy.MarkGranularity = m
		res, err := runOn(cfg, workload, d, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: fmt.Sprintf("M=%d", m), Metrics: res})
	}
	return out, nil
}

// ConservativeSweep compares cold-start behaviour with and without the
// §5 conservative-start refinement.
func ConservativeSweep(workload string, d time.Duration, seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, on := range []bool{false, true} {
		cfg := array.DefaultConfig(array.AFRAID)
		cfg.Policy.ConservativeStart = on
		m, err := runOn(cfg, workload, d, seed)
		if err != nil {
			return nil, err
		}
		label := "immediate"
		if on {
			label = "conservative"
		}
		out = append(out, AblationResult{Label: label, Metrics: m})
	}
	return out, nil
}

// DegradedRow is one row of the failure-injection study.
type DegradedRow struct {
	Label   string
	Metrics array.Metrics
}

// DegradedSweep injects a disk failure halfway through the trace with a
// hot-spare rebuild and compares how RAID 5 and AFRAID ride through it:
// degraded-mode latency, rebuild time, and — the paper's exposure made
// concrete — the stripe units AFRAID actually loses at the instant of
// failure.
func DegradedSweep(workload string, d time.Duration, seed uint64) ([]DegradedRow, error) {
	params, err := trace.Lookup(workload, d)
	if err != nil {
		return nil, err
	}
	mk := func(mode array.Mode) array.Config {
		cfg := array.DefaultConfig(mode)
		cfg.Fault = array.Fault{At: d / 2, Disk: 1, SpareRebuild: true}
		return cfg
	}
	capacity := mk(array.RAID5).Geometry.Capacity()
	tr, err := trace.Generate(params, capacity, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	var out []DegradedRow
	for _, v := range []struct {
		label string
		mode  array.Mode
	}{
		{"RAID5", array.RAID5},
		{"AFRAID", array.AFRAID},
	} {
		m, err := array.RunTrace(mk(v.mode), tr)
		if err != nil {
			return nil, err
		}
		out = append(out, DegradedRow{Label: v.label, Metrics: m})
	}
	return out, nil
}

// RenderDegraded renders the failure-injection study.
func RenderDegraded(workload string, rows []DegradedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degraded-mode study: mid-trace disk failure with hot-spare rebuild (%s)\n", workload)
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %12s %10s\n",
		"variant", "meanIO(ms)", "degReads", "rebuild(s)", "lostUnits", "dirtyEnd")
	for _, r := range rows {
		rebuild := float64(0)
		if r.Metrics.RebuildDoneAt > 0 {
			rebuild = (r.Metrics.RebuildDoneAt - r.Metrics.FailedAt).Seconds()
		}
		fmt.Fprintf(&b, "%-8s %10.2f %10d %12.1f %12d %10d\n",
			r.Label,
			float64(r.Metrics.MeanIOTime)/1e6,
			r.Metrics.DegradedReads,
			rebuild,
			r.Metrics.LostUnitsAtFailure,
			r.Metrics.DirtyAtEnd)
	}
	return b.String()
}
