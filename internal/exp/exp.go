// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§4) from the simulator, and the
// ablation sweeps DESIGN.md calls out. Each experiment returns
// structured results plus a text rendering in the paper's shape.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"afraid/internal/array"
	"afraid/internal/avail"
	"afraid/internal/sim"
	"afraid/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Duration is the synthetic trace length per workload (default 60s;
	// the paper used day-long traces, which only stretch the same
	// stationary behaviour).
	Duration time.Duration
	// Seed fixes the workload generator streams.
	Seed uint64
	// Workloads selects trace names (default: the full catalog).
	Workloads []string
}

func (c *Config) fill() {
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1996
	}
	if len(c.Workloads) == 0 {
		c.Workloads = trace.Names()
	}
}

// PolicyPoint is one point on the availability/performance axis, from
// RAID 5 (left end of Figure 3) to pure AFRAID and RAID 0.
type PolicyPoint struct {
	Name   string
	Mode   array.Mode
	Target float64 // MTTDL_x target in hours; 0 = no target
}

// PolicySweep returns the policy axis used throughout §4: RAID 5, a
// descending ladder of MTTDL_x targets, pure AFRAID, and RAID 0.
func PolicySweep() []PolicyPoint {
	// Targets are disk-related MTTDL goals in hours. Because overall
	// availability is support-limited at 2M hours, a met disk target of
	// 20M hours costs only ~9% overall availability — that end of the
	// ladder is Figure 3's top-left region.
	return []PolicyPoint{
		{Name: "RAID5", Mode: array.RAID5},
		{Name: "MTTDL_20M", Mode: array.AFRAID, Target: 20e6},
		{Name: "MTTDL_10M", Mode: array.AFRAID, Target: 10e6},
		{Name: "MTTDL_5M", Mode: array.AFRAID, Target: 5e6},
		{Name: "MTTDL_2.5M", Mode: array.AFRAID, Target: 2.5e6},
		{Name: "MTTDL_1M", Mode: array.AFRAID, Target: 1e6},
		{Name: "AFRAID", Mode: array.AFRAID},
		{Name: "RAID0", Mode: array.RAID0},
	}
}

// configFor builds the simulated-array configuration for a policy point.
func configFor(p PolicyPoint) array.Config {
	cfg := array.DefaultConfig(p.Mode)
	if p.Target > 0 {
		cfg.Policy.TargetMTTDL = p.Target
		// The paper's MTTDL_x implementation also bounds MDLR with the
		// 20-stripe threshold.
		cfg.Policy.DirtyThreshold = 20
	}
	return cfg
}

// Result is one (workload, policy) cell of the evaluation grid.
type Result struct {
	Workload string
	Policy   PolicyPoint
	Metrics  array.Metrics
	Avail    avail.Report
}

// Grid holds the full evaluation: results[workload][policyName].
type Grid struct {
	Config   Config
	Policies []PolicyPoint
	Results  map[string]map[string]Result
}

// Run executes the full grid (every workload under every policy point).
// The same generated trace drives all policies of a workload, so
// comparisons are paired.
func Run(cfg Config) (*Grid, error) {
	cfg.fill()
	g := &Grid{
		Config:   cfg,
		Policies: PolicySweep(),
		Results:  make(map[string]map[string]Result),
	}
	ap := avail.Default()
	for _, w := range cfg.Workloads {
		params, err := trace.Lookup(w, cfg.Duration)
		if err != nil {
			return nil, err
		}
		// RAID 5 geometry has the smallest client capacity; one trace
		// sized to it is valid everywhere.
		capacity := array.DefaultConfig(array.RAID5).Geometry.Capacity()
		tr, err := trace.Generate(params, capacity, sim.NewRNG(cfg.Seed))
		if err != nil {
			return nil, err
		}
		g.Results[w] = make(map[string]Result)
		for _, p := range g.Policies {
			m, err := array.RunTrace(configFor(p), tr)
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%s: %w", w, p.Name, err)
			}
			var rep avail.Report
			switch p.Mode {
			case array.RAID5:
				rep = ap.RAID5Report()
			case array.RAID0:
				rep = ap.RAID0Report()
			default:
				rep = ap.AFRAIDReport(m.FracUnprotected, m.MeanParityLag)
			}
			g.Results[w][p.Name] = Result{Workload: w, Policy: p, Metrics: m, Avail: rep}
		}
	}
	return g, nil
}

// geomeanOver maps f over the grid's workloads and returns the
// geometric mean.
func (g *Grid) geomeanOver(policy string, f func(Result) float64) float64 {
	var xs []float64
	for _, w := range g.Config.Workloads {
		xs = append(xs, f(g.Results[w][policy]))
	}
	return sim.GeometricMean(xs)
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e6) }

// Table2 renders the relative-performance table (Figure 2 / Table 2):
// mean I/O time per workload for each policy, plus the speedup of
// AFRAID and RAID 0 over RAID 5 and their geometric means.
func (g *Grid) Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 / Figure 2: mean I/O time (ms) by workload and policy\n")
	fmt.Fprintf(&b, "%-11s", "workload")
	for _, p := range g.Policies {
		fmt.Fprintf(&b, " %11s", p.Name)
	}
	fmt.Fprintf(&b, " %9s %9s\n", "AF/R5", "R0/R5")
	for _, w := range g.Config.Workloads {
		fmt.Fprintf(&b, "%-11s", w)
		for _, p := range g.Policies {
			fmt.Fprintf(&b, " %11s", ms(g.Results[w][p.Name].Metrics.MeanIOTime))
		}
		r5 := float64(g.Results[w]["RAID5"].Metrics.MeanIOTime)
		af := float64(g.Results[w]["AFRAID"].Metrics.MeanIOTime)
		r0 := float64(g.Results[w]["RAID0"].Metrics.MeanIOTime)
		fmt.Fprintf(&b, " %8.2fx %8.2fx\n", r5/af, r5/r0)
	}
	afSpeed := g.geomeanOver("AFRAID", func(r Result) float64 {
		return float64(g.Results[r.Workload]["RAID5"].Metrics.MeanIOTime) / float64(r.Metrics.MeanIOTime)
	})
	r0Speed := g.geomeanOver("RAID0", func(r Result) float64 {
		return float64(g.Results[r.Workload]["RAID5"].Metrics.MeanIOTime) / float64(r.Metrics.MeanIOTime)
	})
	fmt.Fprintf(&b, "geometric mean speedup over RAID5: AFRAID %.2fx (paper: 4.1x), RAID0 %.2fx (paper: 4.2x)\n",
		afSpeed, r0Speed)
	return b.String()
}

// Table3 renders the pure-AFRAID availability measures: mean parity
// lag, unprotected-time fraction, MTTDL components and MDLR (§4.3).
func (g *Grid) Table3() string {
	ap := avail.Default()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: availability of pure AFRAID by workload\n")
	fmt.Fprintf(&b, "%-11s %10s %10s %12s %12s %12s %12s\n",
		"workload", "lag(KB)", "unprot(%)", "diskMTTDL(h)", "overall(h)", "MDLRunp(B/h)", "MDLR(B/h)")
	for _, w := range g.Config.Workloads {
		r := g.Results[w]["AFRAID"]
		fmt.Fprintf(&b, "%-11s %10.1f %10.2f %12.3g %12.3g %12.3g %12.3g\n",
			w,
			r.Metrics.MeanParityLag/1e3,
			100*r.Metrics.FracUnprotected,
			r.Avail.DiskMTTDL,
			r.Avail.OverallMTTDL,
			ap.MDLRUnprotected(r.Metrics.MeanParityLag),
			r.Avail.DiskMDLR)
	}
	r5 := ap.RAID5Report()
	r0 := ap.RAID0Report()
	afOverall := g.geomeanOver("AFRAID", func(r Result) float64 { return r.Avail.OverallMTTDL })
	fmt.Fprintf(&b, "reference: RAID5 overall MTTDL %.3g h, RAID0 %.3g h\n", r5.OverallMTTDL, r0.OverallMTTDL)
	fmt.Fprintf(&b, "geometric mean AFRAID overall MTTDL %.3g h: %.1fx better than RAID0 (paper: 4.3x), %.1fx worse than RAID5 (paper: 1.8x)\n",
		afOverall, afOverall/r0.OverallMTTDL, r5.OverallMTTDL/afOverall)
	return b.String()
}

// Table4 renders availability across the MTTDL_x policy ladder:
// achieved disk MTTDL vs target and the unprotected MDLR contribution.
func (g *Grid) Table4() string {
	ap := avail.Default()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: availability by parity-update policy (disk MTTDL in hours / MDLRunprot in B/h)\n")
	fmt.Fprintf(&b, "%-11s", "workload")
	for _, p := range g.Policies {
		if p.Mode == array.AFRAID {
			fmt.Fprintf(&b, " %21s", p.Name)
		}
	}
	fmt.Fprintf(&b, "\n")
	for _, w := range g.Config.Workloads {
		fmt.Fprintf(&b, "%-11s", w)
		for _, p := range g.Policies {
			if p.Mode != array.AFRAID {
				continue
			}
			r := g.Results[w][p.Name]
			fmt.Fprintf(&b, " %12.3g/%8.3g", r.Avail.DiskMTTDL, ap.MDLRUnprotected(r.Metrics.MeanParityLag))
		}
		fmt.Fprintf(&b, "\n")
	}
	// The paper's headline check: targets never missed by more than 5%.
	worst := 1.0
	for _, w := range g.Config.Workloads {
		for _, p := range g.Policies {
			if p.Target <= 0 {
				continue
			}
			r := g.Results[w][p.Name]
			ratio := r.Avail.DiskMTTDL / p.Target
			if ratio < worst {
				worst = ratio
			}
		}
	}
	fmt.Fprintf(&b, "worst achieved/target ratio across all MTTDL_x cells: %.3f (paper: never more than 5%% below, i.e. >= 0.95)\n", worst)
	return b.String()
}

// Figure3Point is one point of the performance/availability tradeoff.
type Figure3Point struct {
	Policy       string
	RelPerf      float64 // RAID5 mean I/O time / policy mean (geomean)
	RelAvail     float64 // policy overall MTTDL / RAID5 overall MTTDL (geomean)
	MeanIOTimeMs float64
}

// Figure3 computes the tradeoff curve (geometric means over workloads,
// both axes relative to RAID 5).
func (g *Grid) Figure3() []Figure3Point {
	r5Overall := avail.Default().RAID5Report().OverallMTTDL
	var pts []Figure3Point
	for _, p := range g.Policies {
		relPerf := g.geomeanOver(p.Name, func(r Result) float64 {
			return float64(g.Results[r.Workload]["RAID5"].Metrics.MeanIOTime) / float64(r.Metrics.MeanIOTime)
		})
		relAvail := g.geomeanOver(p.Name, func(r Result) float64 {
			return r.Avail.OverallMTTDL / r5Overall
		})
		meanMs := g.geomeanOver(p.Name, func(r Result) float64 {
			return float64(r.Metrics.MeanIOTime) / 1e6
		})
		pts = append(pts, Figure3Point{Policy: p.Name, RelPerf: relPerf, RelAvail: relAvail, MeanIOTimeMs: meanMs})
	}
	return pts
}

// Figure3Text renders the tradeoff curve.
func (g *Grid) Figure3Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: performance vs availability relative to RAID5 (geometric means)\n")
	fmt.Fprintf(&b, "%-11s %10s %10s %12s\n", "policy", "rel perf", "rel avail", "meanIO(ms)")
	for _, p := range g.Figure3() {
		fmt.Fprintf(&b, "%-11s %9.2fx %9.1f%% %12.2f\n", p.Policy, p.RelPerf, 100*p.RelAvail, p.MeanIOTimeMs)
	}
	fmt.Fprintf(&b, "paper's reference points: +42%% perf for -10%% avail; +97%% for -23%%; 4.1x for < half\n")
	return b.String()
}

// Figure4Text renders the per-workload mean I/O time across policies
// (the per-trace tradeoff curves).
func (g *Grid) Figure4Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: mean I/O time (ms) per workload across the policy ladder\n")
	fmt.Fprintf(&b, "%-11s", "workload")
	for _, p := range g.Policies {
		fmt.Fprintf(&b, " %11s", p.Name)
	}
	fmt.Fprintf(&b, "\n")
	for _, w := range g.Config.Workloads {
		fmt.Fprintf(&b, "%-11s", w)
		for _, p := range g.Policies {
			fmt.Fprintf(&b, " %11s", ms(g.Results[w][p.Name].Metrics.MeanIOTime))
		}
		fmt.Fprintf(&b, "\n")
	}
	// Quantify the paper's qualitative claim: bursty traces flat,
	// busy traces declining smoothly.
	fmt.Fprintf(&b, "spread (max/min mean I/O across AFRAID policies):\n")
	type spread struct {
		w string
		r float64
	}
	var sp []spread
	for _, w := range g.Config.Workloads {
		lo, hi := 0.0, 0.0
		for _, p := range g.Policies {
			if p.Mode != array.AFRAID {
				continue
			}
			v := float64(g.Results[w][p.Name].Metrics.MeanIOTime)
			if lo == 0 || v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		sp = append(sp, spread{w, hi / lo})
	}
	sort.Slice(sp, func(i, j int) bool { return sp[i].r < sp[j].r })
	for _, s := range sp {
		fmt.Fprintf(&b, "  %-11s %.2fx\n", s.w, s.r)
	}
	return b.String()
}
