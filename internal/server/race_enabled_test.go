//go:build race

package server

// raceEnabled gates allocation assertions: the race detector adds
// bookkeeping allocations (notably around sync.Pool), so allocs/op
// checks only hold in normal builds.
const raceEnabled = true
