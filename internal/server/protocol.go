// Package server exposes an AFRAID store as a concurrent network block
// service: a length-prefixed binary protocol over TCP with request IDs
// for out-of-order completion, a bounded worker pool dispatching into
// the store's stripe-lock pool, write coalescing, per-request
// deadlines, backpressure, graceful drain, and expvar metrics. The
// matching Client speaks the same protocol.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"afraid/internal/bufpool"
)

// Handshake: the client opens with Magic; the server answers with
// Magic, the store capacity (u64), and the frame payload limit (u32).
// Everything on the wire is big-endian.
const Magic = "AFRDBLK1"

// handshakeReplyLen is len(Magic) + capacity + maxPayload.
const handshakeReplyLen = len(Magic) + 8 + 4

// Op identifies a request operation.
type Op uint8

// Request operations.
const (
	// OpRead returns Length bytes starting at Off.
	OpRead Op = 1
	// OpWrite stores Data at Off. Adjacent pipelined writes may be
	// coalesced server-side; each request ID is still acknowledged.
	OpWrite Op = 2
	// OpFlush makes the whole array redundant (parity point).
	OpFlush Op = 3
	// OpStat returns an encoded Stat snapshot.
	OpStat Op = 4
	// OpScrub makes the stripes covering [Off, Off+Length) redundant.
	OpScrub Op = 5
)

func (o Op) valid() bool { return o >= OpRead && o <= OpScrub }

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpFlush:
		return "FLUSH"
	case OpStat:
		return "STAT"
	case OpScrub:
		return "SCRUB"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Status is a response disposition.
type Status uint8

// Response statuses.
const (
	// StatusOK means the operation completed; READ/STAT carry data.
	StatusOK Status = 0
	// StatusBusy means the server's in-flight window is full; retry.
	StatusBusy Status = 1
	// StatusBadRequest means the frame was well-formed but the request
	// invalid (range outside capacity, unknown op).
	StatusBadRequest Status = 2
	// StatusIO is a store or device error; the payload holds a message.
	StatusIO Status = 3
	// StatusDataLoss marks reads of bytes lost in the AFRAID exposure
	// window (failed disk in an unredundant stripe).
	StatusDataLoss Status = 4
	// StatusTimeout means the per-request deadline expired.
	StatusTimeout Status = 5
	// StatusShutdown means the server is draining and rejected the
	// request.
	StatusShutdown Status = 6
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusBusy:
		return "ERR_BUSY"
	case StatusBadRequest:
		return "ERR_BAD_REQUEST"
	case StatusIO:
		return "ERR_IO"
	case StatusDataLoss:
		return "ERR_DATA_LOSS"
	case StatusTimeout:
		return "ERR_TIMEOUT"
	case StatusShutdown:
		return "ERR_SHUTDOWN"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Frame layout. Both directions are a u32 body length followed by the
// body; the length never includes its own four bytes.
//
//	request body:  op(1) id(8) off(8) length(4) data(length, WRITE only)
//	response body: op(1) status(1) id(8) data(rest)
const (
	reqHeaderLen  = 1 + 8 + 8 + 4
	respHeaderLen = 1 + 1 + 8
)

// DefaultMaxPayload bounds the data carried by one frame (WRITE data or
// READ length). Larger client I/Os are split into multiple requests.
const DefaultMaxPayload = 1 << 20

// Protocol errors.
var (
	// ErrFrameTooLarge rejects a frame whose declared body exceeds the
	// payload limit.
	ErrFrameTooLarge = errors.New("server: frame exceeds payload limit")
	// ErrTruncatedFrame rejects a body shorter than its fixed header or
	// than its declared data length.
	ErrTruncatedFrame = errors.New("server: truncated frame")
	// ErrBadMagic rejects a handshake that is not an AFRAID block
	// service.
	ErrBadMagic = errors.New("server: bad protocol magic")
)

// Request is one client operation.
type Request struct {
	Op     Op
	ID     uint64
	Off    int64
	Length uint32 // READ: bytes wanted; WRITE: len(Data); SCRUB: range length
	Data   []byte // WRITE payload
}

// Response completes one request ID.
type Response struct {
	Op     Op
	Status Status
	ID     uint64
	Data   []byte // READ data, STAT payload, or an error message

	// pooled marks Data as borrowed from bufpool: the connection writer
	// returns it after the frame is serialized. Set only for OpRead
	// responses, which are never shared between frame IDs.
	pooled bool

	// frame, when non-nil, is the pooled buffer backing Data (set by the
	// client's read loop, which reads response frames into bufpool
	// buffers instead of allocating per frame). release returns it.
	frame []byte
}

// release returns the response's pooled frame buffer, if any, to the
// pool. The caller must be done with Data, which aliases the frame.
func (r *Response) release() {
	if r.frame != nil {
		bufpool.Put(r.frame)
		r.frame, r.Data = nil, nil
	}
}

// AppendRequest appends the framed request (length prefix included) to
// dst and returns the extended slice.
func AppendRequest(dst []byte, r *Request) []byte {
	body := reqHeaderLen + len(r.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Off))
	dst = binary.BigEndian.AppendUint32(dst, r.Length)
	return append(dst, r.Data...)
}

// DecodeRequest parses a request body (the bytes after the length
// prefix). It rejects truncated bodies, oversized payloads, unknown
// ops, offsets that overflow int64, and length/data mismatches. The
// returned Data aliases body.
func DecodeRequest(body []byte, maxPayload uint32) (Request, error) {
	var r Request
	if len(body) < reqHeaderLen {
		return r, fmt.Errorf("%w: request body %d bytes, need %d", ErrTruncatedFrame, len(body), reqHeaderLen)
	}
	r.Op = Op(body[0])
	r.ID = binary.BigEndian.Uint64(body[1:])
	off := binary.BigEndian.Uint64(body[9:])
	r.Length = binary.BigEndian.Uint32(body[17:])
	data := body[reqHeaderLen:]
	if !r.Op.valid() {
		return r, fmt.Errorf("server: unknown op %d", uint8(r.Op))
	}
	if off > math.MaxInt64 {
		return r, fmt.Errorf("server: offset %d overflows int64", off)
	}
	r.Off = int64(off)
	// Length bounds an allocation for READ/WRITE; for SCRUB it is only
	// a range length and may cover gigabytes.
	if (r.Op == OpRead || r.Op == OpWrite) && r.Length > maxPayload {
		return r, fmt.Errorf("%w: length %d > limit %d", ErrFrameTooLarge, r.Length, maxPayload)
	}
	if r.Op == OpWrite {
		if uint32(len(data)) != r.Length {
			return r, fmt.Errorf("%w: WRITE declares %d data bytes, carries %d", ErrTruncatedFrame, r.Length, len(data))
		}
		r.Data = data
	} else if len(data) != 0 {
		return r, fmt.Errorf("server: %v carries %d unexpected data bytes", r.Op, len(data))
	}
	return r, nil
}

// readFrame reads one length-prefixed body, applying the payload limit
// before allocating.
func readFrame(br *bufio.Reader, maxPayload uint32) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(br, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n > maxPayload+uint32(reqHeaderLen)+uint32(respHeaderLen) {
		return nil, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
		}
		return nil, err
	}
	return body, nil
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(br *bufio.Reader, maxPayload uint32) (Request, error) {
	body, err := readFrame(br, maxPayload)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(body, maxPayload)
}

// AppendResponse appends the framed response (length prefix included)
// to dst and returns the extended slice.
func AppendResponse(dst []byte, r *Response) []byte {
	body := respHeaderLen + len(r.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(r.Op), byte(r.Status))
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	return append(dst, r.Data...)
}

// appendResponseHeader appends the frame length prefix and fixed
// response header for r — declaring, but not appending, r.Data, which
// the caller sends as its own scatter-gather vector element.
func appendResponseHeader(dst []byte, r *Response) []byte {
	body := respHeaderLen + len(r.Data)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(r.Op), byte(r.Status))
	return binary.BigEndian.AppendUint64(dst, r.ID)
}

// DecodeResponse parses a response body (the bytes after the length
// prefix). The returned Data aliases body.
func DecodeResponse(body []byte, maxPayload uint32) (Response, error) {
	var r Response
	if len(body) < respHeaderLen {
		return r, fmt.Errorf("%w: response body %d bytes, need %d", ErrTruncatedFrame, len(body), respHeaderLen)
	}
	r.Op = Op(body[0])
	r.Status = Status(body[1])
	r.ID = binary.BigEndian.Uint64(body[2:])
	r.Data = body[respHeaderLen:]
	return r, nil
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(br *bufio.Reader, maxPayload uint32) (Response, error) {
	body, err := readFrame(br, maxPayload)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(body, maxPayload)
}

// StatVersion is the newest STAT payload version this package encodes.
// Version negotiation rides on the STAT request's otherwise-unused
// Length field: a client advertises the highest version it understands
// there (0, from pre-versioning clients, means 1), and the server
// replies with min(advertised, StatVersion). Pre-versioning servers
// ignore the field and always answer version 1, so the exchange
// degrades gracefully in both directions without touching the
// fixed-length handshake.
//
// Version history:
//
//	1: mode + capacity/dirty/reads/writes/bytes/scrubbed counters
//	2: v1 + read/write latency percentiles (p50/p95/p99, ns)
//	3: v2 + checksum counters (detected/repaired/lost)
//	4: v3 + hybrid-tier counters (front hits/promotes/demotes/resident bytes)
const StatVersion = 4

// Stat is the STAT payload: a snapshot of the served store.
type Stat struct {
	Capacity        int64
	Mode            uint8 // core.Mode
	DirtyStripes    int64
	Reads           uint64
	Writes          uint64
	BytesRead       int64
	BytesWritten    int64
	ScrubbedStripes uint64

	// Server-side request latency percentiles (STAT version >= 2; zero
	// when the server only speaks version 1).
	ReadP50, ReadP95, ReadP99    time.Duration
	WriteP50, WriteP95, WriteP99 time.Duration

	// Block-checksum counters (STAT version >= 3; zero when the server
	// speaks an older version or runs without Options.Checksums).
	ChecksumDetected uint64
	ChecksumRepaired uint64
	ChecksumLost     uint64

	// Hybrid-tier counters (STAT version >= 4; zero when the server
	// speaks an older version or serves a bare store with no front
	// tier).
	TierFrontHits     uint64
	TierPromotes      uint64
	TierDemotes       uint64
	TierResidentBytes int64
}

const (
	statPayloadLenV1 = 1 + 1 + 7*8
	statPayloadLenV2 = statPayloadLenV1 + 6*8
	statPayloadLenV3 = statPayloadLenV2 + 3*8
	statPayloadLenV4 = statPayloadLenV3 + 4*8
)

// statVersionFor clamps a client-advertised version to what this server
// encodes.
func statVersionFor(advertised uint32) uint8 {
	if advertised <= 1 {
		return 1
	}
	if advertised >= StatVersion {
		return StatVersion
	}
	return uint8(advertised)
}

// appendStat encodes a Stat (version byte first) at the given payload
// version.
func appendStat(dst []byte, st *Stat, version uint8) []byte {
	if version < 1 || version > StatVersion {
		version = 1
	}
	dst = append(dst, version, st.Mode)
	for _, v := range [...]uint64{
		uint64(st.Capacity), uint64(st.DirtyStripes), st.Reads, st.Writes,
		uint64(st.BytesRead), uint64(st.BytesWritten), st.ScrubbedStripes,
	} {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	if version >= 2 {
		for _, d := range [...]time.Duration{
			st.ReadP50, st.ReadP95, st.ReadP99,
			st.WriteP50, st.WriteP95, st.WriteP99,
		} {
			dst = binary.BigEndian.AppendUint64(dst, uint64(d))
		}
	}
	if version >= 3 {
		for _, v := range [...]uint64{st.ChecksumDetected, st.ChecksumRepaired, st.ChecksumLost} {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	}
	if version >= 4 {
		for _, v := range [...]uint64{
			st.TierFrontHits, st.TierPromotes, st.TierDemotes, uint64(st.TierResidentBytes),
		} {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// decodeStat parses a STAT payload at any version this package
// understands; fields a version-1 server never sent stay zero.
func decodeStat(b []byte) (Stat, error) {
	var st Stat
	if len(b) < 1 {
		return st, fmt.Errorf("%w: empty stat payload", ErrTruncatedFrame)
	}
	want := 0
	switch b[0] {
	case 1:
		want = statPayloadLenV1
	case 2:
		want = statPayloadLenV2
	case 3:
		want = statPayloadLenV3
	case 4:
		want = statPayloadLenV4
	default:
		return st, fmt.Errorf("server: unknown stat version %d", b[0])
	}
	if len(b) != want {
		return st, fmt.Errorf("%w: stat v%d payload %d bytes, want %d", ErrTruncatedFrame, b[0], len(b), want)
	}
	st.Mode = b[1]
	u := func(i int) uint64 { return binary.BigEndian.Uint64(b[2+8*i:]) }
	st.Capacity = int64(u(0))
	st.DirtyStripes = int64(u(1))
	st.Reads = u(2)
	st.Writes = u(3)
	st.BytesRead = int64(u(4))
	st.BytesWritten = int64(u(5))
	st.ScrubbedStripes = u(6)
	if b[0] >= 2 {
		st.ReadP50 = time.Duration(u(7))
		st.ReadP95 = time.Duration(u(8))
		st.ReadP99 = time.Duration(u(9))
		st.WriteP50 = time.Duration(u(10))
		st.WriteP95 = time.Duration(u(11))
		st.WriteP99 = time.Duration(u(12))
	}
	if b[0] >= 3 {
		st.ChecksumDetected = u(13)
		st.ChecksumRepaired = u(14)
		st.ChecksumLost = u(15)
	}
	if b[0] >= 4 {
		st.TierFrontHits = u(16)
		st.TierPromotes = u(17)
		st.TierDemotes = u(18)
		st.TierResidentBytes = int64(u(19))
	}
	return st, nil
}
