package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"afraid/internal/core"
)

// gatedBackend wraps a real store but parks writes on a gate so tests
// can hold requests in flight deterministically.
type gatedBackend struct {
	*core.Store
	gate    chan struct{} // writes block receiving from it
	blocked atomic.Int64
}

func (g *gatedBackend) WriteContext(ctx context.Context, p []byte, off int64) (int, error) {
	g.blocked.Add(1)
	defer g.blocked.Add(-1)
	select {
	case <-g.gate:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return g.Store.WriteContext(ctx, p, off)
}

func startGated(t *testing.T, srvOpts Options) (*Server, *gatedBackend, string) {
	t.Helper()
	devs := make([]core.BlockDevice, 5)
	for i := range devs {
		devs[i] = core.NewMemDevice(4 << 20)
	}
	st, err := core.Open(devs, &core.MemNVRAM{}, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedBackend{Store: st, gate: make(chan struct{})}
	srv := New(g, srvOpts)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv, g, lis.Addr().String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackpressureBusy fills the in-flight window and checks that the
// next request is rejected with ERR_BUSY instead of queueing, and that
// the window recovers once requests complete.
func TestBackpressureBusy(t *testing.T) {
	const window = 4
	srv, g, addr := startGated(t, Options{MaxInflight: window, Workers: window, CoalesceLimit: -1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Occupy the whole window with writes parked on the gate.
	done := make(chan error, window)
	for i := 0; i < window; i++ {
		off := int64(i) * (64 << 10) // distinct stripes: no lock coupling
		go func() {
			_, err := c.WriteAt([]byte("held"), off)
			done <- err
		}()
	}
	waitFor(t, "window to fill", func() bool { return g.blocked.Load() == window })

	// The next request must bounce immediately.
	if _, err := c.WriteAt([]byte("overflow"), 1<<20); !errors.Is(err, ErrBusy) {
		t.Fatalf("request over the window: got %v, want ErrBusy", err)
	}
	if n := srv.Metrics().BusyRejected.Value(); n != 1 {
		t.Fatalf("busy_rejected = %d, want 1", n)
	}

	// Release the gate; the held writes finish, the window frees up.
	close(g.gate)
	for i := 0; i < window; i++ {
		if err := <-done; err != nil {
			t.Fatalf("held write: %v", err)
		}
	}
	if _, err := c.WriteAt([]byte("after"), 1<<20); err != nil {
		t.Fatalf("write after window drained: %v", err)
	}
}

// TestRequestTimeout parks a write past the per-request deadline and
// expects ERR_TIMEOUT while the connection stays healthy.
func TestRequestTimeout(t *testing.T) {
	_, g, addr := startGated(t, Options{RequestTimeout: 30 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.WriteAt([]byte("never lands"), 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("parked write: got %v, want ErrTimeout", err)
	}
	close(g.gate)
	// The connection survives a timed-out request.
	if _, err := c.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("read after timeout: %v", err)
	}
}

// TestGracefulDrainDeliversInflightResponses starts a slow write, shuts
// the server down mid-flight, and requires the response to arrive
// before the connection closes.
func TestGracefulDrainDeliversInflightResponses(t *testing.T) {
	srv, g, addr := startGated(t, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writeDone := make(chan error, 1)
	go func() {
		_, err := c.WriteAt([]byte("in flight during drain"), 8192)
		writeDone <- err
	}()
	waitFor(t, "write to reach the store", func() bool { return g.blocked.Load() == 1 })

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// Drain must wait for the in-flight write, not abandon it.
	select {
	case err := <-writeDone:
		t.Fatalf("write completed before gate release: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(g.gate)
	if err := <-writeDone; err != nil {
		t.Fatalf("in-flight write during drain: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The write really landed.
	got := make([]byte, 22)
	if _, err := g.Store.ReadAt(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("in flight during drain")) {
		t.Fatalf("drained write not durable: %q", got)
	}
	// New connections are refused after drain.
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial succeeded after Shutdown")
	}
}

// TestHardShutdownCancelsStoreWork expires the drain deadline while a
// request is parked; the base context must cancel it.
func TestHardShutdownCancelsStoreWork(t *testing.T) {
	srv, g, addr := startGated(t, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writeDone := make(chan error, 1)
	go func() {
		_, err := c.WriteAt([]byte("doomed"), 0)
		writeDone <- err
	}()
	waitFor(t, "write to reach the store", func() bool { return g.blocked.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard Shutdown: got %v, want DeadlineExceeded", err)
	}
	// The parked write was cancelled, not left hanging (the client may
	// see the shutdown status or the dropped connection).
	if err := <-writeDone; err == nil {
		t.Fatal("write succeeded through a hard shutdown")
	}
}

// TestStalledReaderDisconnected pipelines reads on a connection that
// never reads its responses. The response queue and socket buffers
// fill, the writer's deadline expires, and the server must drop that
// connection — releasing the workers parked in send — rather than let
// one stalled client wedge the shared pool for everyone else.
func TestStalledReaderDisconnected(t *testing.T) {
	_, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour},
		Options{Workers: 4, MaxInflight: 512, WriteTimeout: 200 * time.Millisecond})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte(Magic)); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, handshakeReplyLen)
	if _, err := io.ReadFull(nc, reply); err != nil {
		t.Fatal(err)
	}
	// Pipeline far more response bytes (128 × 256 KiB) than the write
	// buffers can absorb, then read nothing.
	var buf []byte
	for i := 0; i < 128; i++ {
		buf = AppendRequest(buf[:0], &Request{Op: OpRead, ID: uint64(i + 1), Length: 256 << 10})
		if _, err := nc.Write(buf); err != nil {
			break // the server may already have cut us off
		}
	}

	// The pool must come back: a healthy client completes a round trip
	// well before the 10s deadline.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data := []byte("pool still alive")
	if _, err := c.WriteAtContext(ctx, data, 0); err != nil {
		t.Fatalf("write while another conn is stalled: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAtContext(ctx, got, 0); err != nil {
		t.Fatalf("read while another conn is stalled: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}

	// And the stalled connection really was severed: draining it hits
	// EOF/reset, not the read deadline.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = io.Copy(io.Discard, nc)
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.Fatal("stalled connection was never closed by the server")
	}
}

// TestHandshakeRejectsBadMagic ensures a non-protocol client is
// dropped without a reply.
func TestHandshakeRejectsBadMagic(t *testing.T) {
	_, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour}, Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("HTTP/1.1")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if n, err := nc.Read(buf); err == nil || n != 0 {
		t.Fatalf("server replied %d bytes to bad magic (err=%v)", n, err)
	}
}
