package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"afraid/internal/bufpool"
	"afraid/internal/core"
)

// Client errors mapped from response statuses.
var (
	// ErrBusy means the server's in-flight window was full; the request
	// did no work and can be retried.
	ErrBusy = errors.New("server: busy, retry")
	// ErrTimeout means the server's per-request deadline expired.
	ErrTimeout = errors.New("server: request timed out")
	// ErrShutdown means the server cancelled the request while closing.
	ErrShutdown = errors.New("server: shutting down")
	// ErrBadRequest means the server rejected the request as invalid.
	ErrBadRequest = errors.New("server: bad request")
	// ErrConnectionLost wraps every error reported after the client's
	// connection has failed. Callers that pool or route over several
	// servers (internal/cluster) test for it with errors.Is to tell a
	// dead node from an op-level failure.
	ErrConnectionLost = errors.New("server: connection lost")
)

// Client speaks the block protocol over one connection. It is safe for
// concurrent use: every request carries a unique ID, concurrent calls
// pipeline onto the connection, and a background reader completes them
// in whatever order the server finishes (out-of-order completion).
//
// A Client is bound to its one connection for life: once the connection
// fails, every past and future call reports an error wrapping
// ErrConnectionLost and the Client cannot be revived — dial a fresh one.
// Err exposes the terminal state so a routing layer can decide to
// redial without issuing a probe request.
type Client struct {
	nc         net.Conn
	br         *bufio.Reader
	capacity   int64
	maxPayload uint32

	wmu    sync.Mutex // serializes frame writes
	encBuf []byte

	// chPool recycles completion channels across requests. A channel is
	// recycled only after its response was received (wait's success
	// path): a channel abandoned by context cancellation may still get a
	// late buffered response from the read loop, so reusing it would
	// deliver a stale completion to a new request.
	chPool sync.Pool

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	err     error
	done    chan struct{} // closed when the read loop exits
}

// Dial connects to an afraidd server and performs the handshake.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// DialTimeout is Dial with a bound covering both the TCP connect and
// the protocol handshake, so a black-holed address cannot wedge the
// caller for the kernel's connect timeout plus an unbounded handshake
// read. A cluster layer probing a possibly-dead node wants this, not
// Dial. d <= 0 means no bound.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	if d > 0 {
		nc.SetDeadline(time.Now().Add(d))
	}
	c, err := NewClient(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the handshake over an established connection and
// starts the response reader. The client owns nc from here on. Any
// deadline the caller armed on nc (see DialTimeout) is cleared once the
// handshake completes, so it bounds only the setup.
func NewClient(nc net.Conn) (*Client, error) {
	if _, err := nc.Write([]byte(Magic)); err != nil {
		return nil, fmt.Errorf("server: handshake write: %w", err)
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	reply := make([]byte, handshakeReplyLen)
	if _, err := io.ReadFull(br, reply); err != nil {
		return nil, fmt.Errorf("server: handshake read: %w", err)
	}
	if string(reply[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	capacity := uint64(0)
	for _, b := range reply[len(Magic) : len(Magic)+8] {
		capacity = capacity<<8 | uint64(b)
	}
	maxPayload := uint32(0)
	for _, b := range reply[len(Magic)+8:] {
		maxPayload = maxPayload<<8 | uint32(b)
	}
	if maxPayload == 0 {
		return nil, fmt.Errorf("server: handshake advertises zero payload limit")
	}
	nc.SetDeadline(time.Time{}) // handshake done; steady-state I/O is unbounded
	c := &Client{
		nc:         nc,
		br:         br,
		capacity:   int64(capacity),
		maxPayload: maxPayload,
		pending:    make(map[uint64]chan Response),
		done:       make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Capacity returns the served store's size in bytes.
func (c *Client) Capacity() int64 { return c.capacity }

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.done
	return err
}

// readLoop dispatches responses to waiting calls by request ID.
func (c *Client) readLoop() {
	for {
		resp, err := c.readResponse()
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; body is this request's own pooled frame
		} else {
			resp.release() // request was forgotten; recycle the frame now
		}
	}
}

// readResponse reads one response frame into a pooled buffer instead of
// allocating per frame (ReadResponse's behavior); the waiter that
// consumes the response returns the buffer via release. This is what
// makes the windowed ReadAt/WriteAt chunk loops allocation-free in
// steady state.
func (c *Client) readResponse() (Response, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(c.br, pfx[:]); err != nil {
		return Response{}, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n > c.maxPayload+uint32(reqHeaderLen)+uint32(respHeaderLen) {
		return Response{}, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, n)
	}
	body := bufpool.Get(int(n))
	if _, err := io.ReadFull(c.br, body); err != nil {
		bufpool.Put(body)
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Response{}, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
		}
		return Response{}, err
	}
	resp, err := DecodeResponse(body, c.maxPayload)
	if err != nil {
		bufpool.Put(body)
		return Response{}, err
	}
	resp.frame = body
	return resp, nil
}

// fail records the terminal error and releases every waiter. From here
// the client is permanently dead: there is no reconnect path, by design
// — request IDs, the pipeline window, and the server's per-connection
// coalescing state are all connection-scoped, so a transparent redial
// would silently drop in-flight requests. Routing layers detect the
// state via errors.Is(err, ErrConnectionLost) or Err and dial afresh.
func (c *Client) fail(err error) {
	err = fmt.Errorf("%w: %v", ErrConnectionLost, err)
	c.mu.Lock()
	c.err = err
	c.pending = nil
	c.mu.Unlock()
	close(c.done)
}

// Err returns the terminal connection error (wrapping
// ErrConnectionLost), or nil while the client is usable.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Client) getCh() chan Response {
	if v := c.chPool.Get(); v != nil {
		return v.(chan Response)
	}
	return make(chan Response, 1)
}

// start registers a fresh request ID, sends the frame, and returns the
// channel the read loop will complete it on. Callers pipeline by
// starting several requests before waiting on any.
func (c *Client) start(req *Request) (uint64, chan Response, error) {
	ch := c.getCh()
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()
	req.ID = id

	c.wmu.Lock()
	c.encBuf = AppendRequest(c.encBuf[:0], req)
	_, err := c.nc.Write(c.encBuf)
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		return 0, nil, fmt.Errorf("%w: send: %v", ErrConnectionLost, err)
	}
	return id, ch, nil
}

// wait blocks for the completion of a started request. On the response
// path the (now drained) channel is recycled for future requests; on
// the cancellation paths it is abandoned, since the read loop may still
// complete it.
func (c *Client) wait(ctx context.Context, id uint64, ch chan Response) (Response, error) {
	select {
	case resp := <-ch:
		c.chPool.Put(ch)
		err := statusErr(resp)
		if err != nil {
			resp.release() // Data already captured in the error string
		}
		return resp, err
	case <-ctx.Done():
		c.forget(id)
		return Response{}, ctx.Err()
	case <-c.done:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return Response{}, err
	}
}

// do sends one request and waits for its completion.
func (c *Client) do(ctx context.Context, req *Request) (Response, error) {
	id, ch, err := c.start(req)
	if err != nil {
		return Response{}, err
	}
	return c.wait(ctx, id, ch)
}

func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// statusErr maps a response status to a client error.
func statusErr(r Response) error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusBusy:
		return ErrBusy
	case StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, r.Data)
	case StatusDataLoss:
		return fmt.Errorf("%w: %s", core.ErrDataLoss, r.Data)
	case StatusTimeout:
		return fmt.Errorf("%w: %s", ErrTimeout, r.Data)
	case StatusShutdown:
		return fmt.Errorf("%w: %s", ErrShutdown, r.Data)
	default:
		return fmt.Errorf("server: %v: %s", r.Status, r.Data)
	}
}

// ReadAt implements io.ReaderAt against the served store.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	return c.ReadAtContext(context.Background(), p, off)
}

// pipelineWindow bounds the chunk requests a split I/O keeps in flight
// at once — enough to hide the round trip, and well under the server's
// default 256-request window so a single transfer doesn't trip
// ERR_BUSY.
const pipelineWindow = 16

// chunkCall is one in-flight chunk of a split I/O.
type chunkCall struct {
	off  int // chunk start within p
	size int
	id   uint64
	ch   chan Response
}

// ReadAtContext reads len(p) bytes at off, splitting requests larger
// than the server's payload limit into chunks pipelined onto the
// connection (up to pipelineWindow outstanding at once). Completions
// are collected in issue order, so the returned count is always the
// contiguous prefix of p that was filled. ctx is checked before every
// chunk issue as well as while waiting, so a cancelled context stops a
// large split read promptly instead of pushing the rest of the window
// at a server that may be stalled.
func (c *Client) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	// The window is a fixed ring rather than an appended-to slice so a
	// steady stream of split reads keeps zero per-call window state on
	// the heap.
	var win [pipelineWindow]chunkCall
	head, count := 0, 0
	defer func() {
		for i := 0; i < count; i++ {
			c.forget(win[(head+i)%pipelineWindow].id)
		}
	}()
	n, sent := 0, 0
	for sent < len(p) || count > 0 {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if sent < len(p) && count < pipelineWindow {
			chunk := len(p) - sent
			if chunk > int(c.maxPayload) {
				chunk = int(c.maxPayload)
			}
			id, ch, err := c.start(&Request{Op: OpRead, Off: off + int64(sent), Length: uint32(chunk)})
			if err != nil {
				return n, err
			}
			win[(head+count)%pipelineWindow] = chunkCall{off: sent, size: chunk, id: id, ch: ch}
			count++
			sent += chunk
			continue
		}
		cc := win[head]
		head, count = (head+1)%pipelineWindow, count-1
		resp, err := c.wait(ctx, cc.id, cc.ch)
		if err != nil {
			return n, err
		}
		if len(resp.Data) != cc.size {
			resp.release()
			return n, fmt.Errorf("server: READ returned %d bytes, want %d", len(resp.Data), cc.size)
		}
		copy(p[cc.off:], resp.Data)
		resp.release()
		n += cc.size
	}
	return n, nil
}

// WriteAt implements io.WriterAt against the served store.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	return c.WriteAtContext(context.Background(), p, off)
}

// WriteAtContext writes p at off, splitting writes larger than the
// server's payload limit into chunks pipelined onto the connection (up
// to pipelineWindow outstanding; the server may re-coalesce adjacent
// ones). Completions are collected in issue order, so the returned
// count is always the contiguous prefix of p that was written. ctx is
// checked before every chunk issue as well as while waiting, so a
// cluster-level timeout abandons the remaining chunks promptly.
func (c *Client) WriteAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	var win [pipelineWindow]chunkCall
	head, count := 0, 0
	defer func() {
		for i := 0; i < count; i++ {
			c.forget(win[(head+i)%pipelineWindow].id)
		}
	}()
	n, sent := 0, 0
	for sent < len(p) || count > 0 {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if sent < len(p) && count < pipelineWindow {
			chunk := len(p) - sent
			if chunk > int(c.maxPayload) {
				chunk = int(c.maxPayload)
			}
			id, ch, err := c.start(&Request{Op: OpWrite, Off: off + int64(sent), Length: uint32(chunk), Data: p[sent : sent+chunk]})
			if err != nil {
				return n, err
			}
			win[(head+count)%pipelineWindow] = chunkCall{off: sent, size: chunk, id: id, ch: ch}
			count++
			sent += chunk
			continue
		}
		cc := win[head]
		head, count = (head+1)%pipelineWindow, count-1
		resp, err := c.wait(ctx, cc.id, cc.ch)
		if err != nil {
			return n, err
		}
		resp.release()
		n += cc.size
	}
	return n, nil
}

// Flush asks the server to make the whole array redundant.
func (c *Client) Flush(ctx context.Context) error {
	resp, err := c.do(ctx, &Request{Op: OpFlush})
	resp.release()
	return err
}

// Scrub asks the server to make the stripes covering [off, off+length)
// redundant (a parity point).
func (c *Client) Scrub(ctx context.Context, off, length int64) error {
	if length < 0 || length > int64(^uint32(0)) {
		return fmt.Errorf("%w: scrub length %d does not fit the wire's u32", ErrBadRequest, length)
	}
	resp, err := c.do(ctx, &Request{Op: OpScrub, Off: off, Length: uint32(length)})
	resp.release()
	return err
}

// Ping performs a minimal health-check round trip: a version-1 STAT
// whose payload is discarded. It is the cheapest request the protocol
// offers (no store I/O, a few dozen bytes each way), so a cluster layer
// can probe node liveness on a tight deadline without waiting out a
// full request timeout on a real transfer.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.do(ctx, &Request{Op: OpStat})
	resp.release()
	return err
}

// Stat returns the server's store snapshot. The request's Length field
// advertises the newest STAT payload version this client understands;
// pre-versioning servers ignore it and answer version 1, leaving the
// percentile fields zero.
func (c *Client) Stat(ctx context.Context) (Stat, error) {
	resp, err := c.do(ctx, &Request{Op: OpStat, Length: StatVersion})
	if err != nil {
		return Stat{}, err
	}
	st, err := decodeStat(resp.Data)
	resp.release()
	return st, err
}

// ModeString names the served store's redundancy mode.
func (st Stat) ModeString() string { return core.Mode(st.Mode).String() }
