package server

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
)

// BenchmarkServerThroughput is the serving-path baseline: 4 KB random
// writes from 8 concurrent loopback clients, AFRAID vs RAID 5 mode.
// ns/op is the per-write wall time across the whole fleet; p95-ms is
// the client-observed tail latency. The AFRAID/RAID5 ratio here is the
// network-visible version of the paper's small-update-penalty result.
func BenchmarkServerThroughput(b *testing.B) {
	b.Run("afraid", func(b *testing.B) { benchmarkServerWrites(b, core.Afraid) })
	b.Run("raid5", func(b *testing.B) { benchmarkServerWrites(b, core.Raid5) })
}

func benchmarkServerWrites(b *testing.B, mode core.Mode) {
	const (
		clients = 8
		ioSize  = 4 << 10
	)
	devs := make([]core.BlockDevice, 5)
	for i := range devs {
		devs[i] = core.NewMemDevice(16 << 20)
	}
	st, err := core.Open(devs, &core.MemNVRAM{}, core.Options{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := New(st, Options{MaxInflight: 1024})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	region := st.Capacity() / clients
	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	perClient := b.N / clients

	b.ResetTimer()
	start := time.Now()
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(lis.Addr().String())
			if err != nil {
				b.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * region
			buf := make([]byte, ioSize)
			rng.Read(buf)
			mine := make([]time.Duration, 0, perClient)
			n := perClient
			if w == 0 {
				n += b.N % clients
			}
			for i := 0; i < n; i++ {
				off := base + rng.Int63n(region-ioSize)
				t0 := time.Now()
				for {
					_, err := c.WriteAt(buf, off)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						b.Error(err)
						return
					}
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	all := make([]time.Duration, 0, b.N)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		p95 := all[int(0.95*float64(len(all)-1))]
		b.ReportMetric(float64(p95.Microseconds())/1e3, "p95-ms")
	}
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "ops/s")
	b.SetBytes(ioSize)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

// startReadBench brings up a served store with every block written and
// returns a connected client. The caller owns both shutdowns.
func startReadBench(tb testing.TB) (*Server, *Client) {
	tb.Helper()
	devs := make([]core.BlockDevice, 5)
	for i := range devs {
		devs[i] = core.NewMemDevice(8 << 20)
	}
	st, err := core.Open(devs, &core.MemNVRAM{}, core.Options{Mode: core.Afraid})
	if err != nil {
		tb.Fatal(err)
	}
	srv := New(st, Options{MaxInflight: 1024})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		tb.Fatal(err)
	}
	go srv.Serve(lis)
	c, err := Dial(lis.Addr().String())
	if err != nil {
		srv.Close()
		st.Close()
		tb.Fatal(err)
	}
	buf := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(buf)
	for off := int64(0); off < st.Capacity(); off += int64(len(buf)) {
		n := int64(len(buf))
		if off+n > st.Capacity() {
			n = st.Capacity() - off
		}
		if _, err := c.WriteAt(buf[:n], off); err != nil {
			tb.Fatal(err)
		}
	}
	// Drain deferred parity so the scrubber idles during measurement.
	if err := c.Flush(context.Background()); err != nil {
		tb.Fatal(err)
	}
	return srv, c
}

// BenchmarkServerRead is the read-side serving baseline: one client
// issuing 64 KiB reads over loopback. With the scatter-gather response
// path the server never copies the store payload into a contiguous
// frame, and the client lands each response in a pooled buffer, so
// B/op here should sit far below the 64 KiB payload.
func BenchmarkServerRead(b *testing.B) {
	srv, c := startReadBench(b)
	defer srv.Close()
	defer c.Close()
	const ioSize = 64 << 10
	p := make([]byte, ioSize)
	rng := rand.New(rand.NewSource(2))
	max := c.Capacity() - ioSize
	b.SetBytes(ioSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadAt(p, rng.Int63n(max)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReadResponsePathAllocBytes pins the zero-copy claim: in steady
// state a 64 KiB read must allocate only request-bookkeeping scraps,
// not payload-sized buffers. Both a server-side frame copy and a
// client-side per-frame allocation would each add >= 64 KiB/op and
// trip the bound. Gated off under -race, whose instrumented sync.Pool
// allocates on every Get/Put.
func TestReadResponsePathAllocBytes(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	srv, c := startReadBench(t)
	defer srv.Close()
	defer c.Close()
	const ioSize = 64 << 10
	p := make([]byte, ioSize)
	for i := 0; i < 64; i++ { // warm the pools on both ends
		if _, err := c.ReadAt(p, int64(i)*ioSize%(c.Capacity()-ioSize)); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, err := c.ReadAt(p, int64(i)*ioSize%(c.Capacity()-ioSize)); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / rounds
	t.Logf("read path: %d B allocated per %d B read", perOp, ioSize)
	if perOp > ioSize/8 {
		t.Fatalf("read response path allocates %d B/op for %d B payloads; want < %d (payload buffers must be pooled end to end)", perOp, ioSize, ioSize/8)
	}
}
