package server

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
)

// BenchmarkServerThroughput is the serving-path baseline: 4 KB random
// writes from 8 concurrent loopback clients, AFRAID vs RAID 5 mode.
// ns/op is the per-write wall time across the whole fleet; p95-ms is
// the client-observed tail latency. The AFRAID/RAID5 ratio here is the
// network-visible version of the paper's small-update-penalty result.
func BenchmarkServerThroughput(b *testing.B) {
	b.Run("afraid", func(b *testing.B) { benchmarkServerWrites(b, core.Afraid) })
	b.Run("raid5", func(b *testing.B) { benchmarkServerWrites(b, core.Raid5) })
}

func benchmarkServerWrites(b *testing.B, mode core.Mode) {
	const (
		clients = 8
		ioSize  = 4 << 10
	)
	devs := make([]core.BlockDevice, 5)
	for i := range devs {
		devs[i] = core.NewMemDevice(16 << 20)
	}
	st, err := core.Open(devs, &core.MemNVRAM{}, core.Options{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := New(st, Options{MaxInflight: 1024})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	region := st.Capacity() / clients
	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	perClient := b.N / clients

	b.ResetTimer()
	start := time.Now()
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(lis.Addr().String())
			if err != nil {
				b.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * region
			buf := make([]byte, ioSize)
			rng.Read(buf)
			mine := make([]time.Duration, 0, perClient)
			n := perClient
			if w == 0 {
				n += b.N % clients
			}
			for i := 0; i < n; i++ {
				off := base + rng.Int63n(region-ioSize)
				t0 := time.Now()
				for {
					_, err := c.WriteAt(buf, off)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						b.Error(err)
						return
					}
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	all := make([]time.Duration, 0, b.N)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		p95 := all[int(0.95*float64(len(all)-1))]
		b.ReportMetric(float64(p95.Microseconds())/1e3, "p95-ms")
	}
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "ops/s")
	b.SetBytes(ioSize)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
