package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"afraid/internal/bufpool"
	"afraid/internal/core"
)

// Backend is what the service needs from a store. *core.Store satisfies
// it; tests substitute gated fakes to force timeouts and backpressure.
type Backend interface {
	ReadContext(ctx context.Context, p []byte, off int64) (int, error)
	WriteContext(ctx context.Context, p []byte, off int64) (int, error)
	FlushContext(ctx context.Context) error
	ParityPointContext(ctx context.Context, off, length int64) error
	Capacity() int64
	Mode() core.Mode
	DirtyStripes() int64
	Stats() core.Stats
}

// Options configures a Server. The zero value picks sensible defaults.
type Options struct {
	// Workers bounds the goroutines applying requests to the store
	// (default 2×GOMAXPROCS, min 4). The store's 64-way stripe lock
	// pool is what they contend on.
	Workers int
	// MaxInflight bounds accepted-but-unfinished requests across all
	// connections (default 256). Beyond it the server answers
	// ERR_BUSY instead of buffering without bound.
	MaxInflight int
	// MaxPayload bounds one frame's data (default DefaultMaxPayload).
	MaxPayload uint32
	// RequestTimeout is the per-request deadline (default 30s); it
	// cancels store work mid-request via context.
	RequestTimeout time.Duration
	// WriteTimeout bounds each socket write of response frames
	// (default 30s). A client that pipelines requests but stops
	// reading responses would otherwise block the connection's writer,
	// fill its response queue, and wedge pool workers in send; on
	// expiry the connection is closed instead.
	WriteTimeout time.Duration
	// CoalesceLimit caps the bytes merged from adjacent pipelined
	// WRITEs into one store call (default 256 KiB; negative disables).
	// Only frames already buffered on the connection are merged, so
	// coalescing never adds latency.
	CoalesceLimit int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.GOMAXPROCS(0)
		if o.Workers < 4 {
			o.Workers = 4
		}
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.MaxPayload == 0 {
		o.MaxPayload = DefaultMaxPayload
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.CoalesceLimit == 0 {
		o.CoalesceLimit = 256 << 10
	}
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// task is one unit of store work: a request plus every frame ID it
// acknowledges (>1 when adjacent writes were coalesced).
type task struct {
	c     *conn
	req   Request
	ids   []uint64
	start time.Time
}

// Server serves the block protocol over accepted connections.
type Server struct {
	store   Backend
	opts    Options
	metrics *Metrics

	tasks  chan *task
	tokens chan struct{} // in-flight semaphore; acquired before enqueue

	baseCtx context.Context // cancelled on hard close
	cancel  context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	draining  bool

	connWG    sync.WaitGroup
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// New builds a server over the store and starts its worker pool.
func New(store Backend, opts Options) *Server {
	opts.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:     store,
		opts:      opts,
		metrics:   newMetrics(store.DirtyStripes),
		tasks:     make(chan *task, opts.MaxInflight),
		tokens:    make(chan struct{}, opts.MaxInflight),
		baseCtx:   ctx,
		cancel:    cancel,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the server's metric tree.
func (s *Server) Metrics() *Metrics { return s.metrics }

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections until the listener fails or the server is
// shut down, then returns ErrServerClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		c := s.newConn(nc)
		if c == nil {
			nc.Close()
			continue
		}
		go c.serve()
	}
}

// newConn registers a connection, or rejects it when draining.
func (s *Server) newConn(nc net.Conn) *conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	c := &conn{
		srv:  s,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 64<<10),
		out:  make(chan Response, 64),
		done: make(chan struct{}),
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	s.metrics.ConnsOpen.Add(1)
	s.metrics.ConnsTotal.Add(1)
	return c
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.metrics.ConnsOpen.Add(-1)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Shutdown drains gracefully: stop accepting, unblock connection
// readers at the next frame boundary, finish every in-flight request,
// flush its response, then close. If ctx expires first, connections and
// outstanding store work are cancelled hard and ctx's error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for lis := range s.listeners {
		listeners = append(listeners, lis)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if first {
		for _, lis := range listeners {
			lis.Close()
		}
		for _, c := range conns {
			// Unblocks the reader; responses still flow until the
			// connection's in-flight work has been answered.
			c.nc.SetReadDeadline(time.Now())
		}
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		s.closeOnce.Do(func() { close(s.tasks) })
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // cancel in-store work
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately, cancelling in-flight work.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

// worker applies tasks to the store until the task channel closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		s.execute(t)
	}
}

func (s *Server) execute(t *task) {
	queued := time.Since(t.start) // dispatch -> worker pickup
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.RequestTimeout)
	resp := s.apply(ctx, &t.req)
	cancel()
	d := time.Since(t.start)
	s.metrics.task(&t.req, resp.Status, queued, d)
	for _, id := range t.ids {
		r := resp
		r.ID = id
		s.metrics.response(r.Op, r.Status, d)
		t.c.send(r)
	}
	s.metrics.Inflight.Add(-1)
	<-s.tokens
	t.c.pending.Done()
}

// rangeOK reports whether [off, off+length) lies within capacity,
// without computing off+length (which overflows for off near MaxInt64
// — DecodeRequest admits any offset up to MaxInt64).
func rangeOK(off, length, capacity int64) bool {
	return off >= 0 && length >= 0 && length <= capacity && off <= capacity-length
}

// apply performs one request against the store.
func (s *Server) apply(ctx context.Context, r *Request) Response {
	resp := Response{Op: r.Op, Status: StatusOK}
	cap := s.store.Capacity()
	switch r.Op {
	case OpRead:
		if !rangeOK(r.Off, int64(r.Length), cap) {
			return s.reject(resp, cap, r)
		}
		// Read payloads are the server's hottest allocation; borrow the
		// buffer from the pool and let the connection writer return it
		// once the response frame is on the wire.
		buf := bufpool.Get(int(r.Length))
		if _, err := s.store.ReadContext(ctx, buf, r.Off); err != nil {
			bufpool.Put(buf)
			return s.fail(resp, err)
		}
		resp.Data = buf
		resp.pooled = true
		s.metrics.BytesRead.Add(int64(r.Length))
	case OpWrite:
		if !rangeOK(r.Off, int64(len(r.Data)), cap) {
			return s.reject(resp, cap, r)
		}
		if _, err := s.store.WriteContext(ctx, r.Data, r.Off); err != nil {
			return s.fail(resp, err)
		}
		s.metrics.BytesWritten.Add(int64(len(r.Data)))
	case OpFlush:
		if err := s.store.FlushContext(ctx); err != nil {
			return s.fail(resp, err)
		}
	case OpScrub:
		if !rangeOK(r.Off, int64(r.Length), cap) {
			return s.reject(resp, cap, r)
		}
		if err := s.store.ParityPointContext(ctx, r.Off, int64(r.Length)); err != nil {
			return s.fail(resp, err)
		}
	case OpStat:
		// The request's Length field advertises the newest STAT payload
		// version the client understands (0 from pre-versioning clients).
		ver := statVersionFor(r.Length)
		st := s.store.Stats()
		stat := Stat{
			Capacity:        cap,
			Mode:            uint8(s.store.Mode()),
			DirtyStripes:    st.DirtyStripes,
			Reads:           st.Reads,
			Writes:          st.Writes,
			BytesRead:       st.BytesRead,
			BytesWritten:    st.BytesWritten,
			ScrubbedStripes: st.ScrubbedStripes,
		}
		if ver >= 2 {
			rl := s.metrics.OpLatency(OpRead)
			wl := s.metrics.OpLatency(OpWrite)
			stat.ReadP50, stat.ReadP95, stat.ReadP99 = rl.Quantile(0.50), rl.Quantile(0.95), rl.Quantile(0.99)
			stat.WriteP50, stat.WriteP95, stat.WriteP99 = wl.Quantile(0.50), wl.Quantile(0.95), wl.Quantile(0.99)
		}
		if ver >= 3 {
			stat.ChecksumDetected = st.ChecksumDetected
			stat.ChecksumRepaired = st.ChecksumRepaired
			stat.ChecksumLost = st.ChecksumLost
		}
		if ver >= 4 {
			// Matched structurally so a hybrid backend (tier.Store)
			// reports its counters without this package importing it; a
			// bare store simply leaves the quartet zero.
			if tc, ok := s.store.(interface {
				TierCounters() (frontHits, promotes, demotes uint64, residentBytes int64)
			}); ok {
				stat.TierFrontHits, stat.TierPromotes, stat.TierDemotes, stat.TierResidentBytes = tc.TierCounters()
			}
		}
		resp.Data = appendStat(nil, &stat, ver)
	default:
		resp.Status = StatusBadRequest
		resp.Data = []byte(fmt.Sprintf("unknown op %d", uint8(r.Op)))
	}
	return resp
}

func (s *Server) reject(resp Response, cap int64, r *Request) Response {
	resp.Status = StatusBadRequest
	resp.Data = []byte(fmt.Sprintf("range off=%d length=%d outside capacity %d", r.Off, r.Length, cap))
	return resp
}

// fail maps a store error onto a response status.
func (s *Server) fail(resp Response, err error) Response {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		resp.Status = StatusTimeout
	case errors.Is(err, context.Canceled):
		resp.Status = StatusShutdown
	case errors.Is(err, core.ErrDataLoss):
		resp.Status = StatusDataLoss
	default:
		resp.Status = StatusIO
	}
	resp.Data = []byte(err.Error())
	return resp
}

// conn is one client connection: a reader (this goroutine) feeding the
// shared worker pool and a writer goroutine streaming completions back,
// so responses return in completion order, not issue order.
type conn struct {
	srv     *Server
	nc      net.Conn
	br      *bufio.Reader
	out     chan Response
	done    chan struct{}  // closed when the writer exits
	pending sync.WaitGroup // tasks dispatched and not yet answered
}

// send delivers a response to the writer, dropping it if the writer is
// gone (broken connection).
func (c *conn) send(r Response) {
	select {
	case c.out <- r:
	case <-c.done:
	}
}

func (c *conn) serve() {
	defer c.srv.connWG.Done()
	defer c.srv.removeConn(c)
	defer c.nc.Close()
	if err := c.handshake(); err != nil {
		c.srv.logf("server: %s handshake: %v", c.nc.RemoteAddr(), err)
		close(c.done)
		return
	}
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writeLoop()
	}()
	c.readLoop()
	c.pending.Wait() // every dispatched task has queued its response
	close(c.out)     // writer flushes the tail and exits
	writerWG.Wait()
}

// handshake validates the client magic and announces capacity and the
// payload limit.
func (c *conn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(c.br, magic); err != nil {
		return err
	}
	if string(magic) != Magic {
		return ErrBadMagic
	}
	c.nc.SetReadDeadline(time.Time{})
	reply := make([]byte, 0, handshakeReplyLen)
	reply = append(reply, Magic...)
	reply = appendUint64(reply, uint64(c.srv.store.Capacity()))
	reply = appendUint32(reply, c.srv.opts.MaxPayload)
	_, err := deadlineWriter{c.nc, c.srv.opts.WriteTimeout}.Write(reply)
	return err
}

// deadlineWriter arms a fresh write deadline before every socket write
// so a stalled client bounds the writer at WriteTimeout instead of
// blocking it (and, through the full response queue, the shared worker
// pool) forever.
type deadlineWriter struct {
	nc      net.Conn
	timeout time.Duration
}

func (w deadlineWriter) Write(p []byte) (int, error) {
	w.nc.SetWriteDeadline(time.Now().Add(w.timeout))
	return w.nc.Write(p)
}

// readLoop reads frames, applies backpressure, coalesces adjacent
// pipelined writes, and dispatches tasks to the worker pool. It returns
// on connection error, protocol error, or drain (read deadline).
func (c *conn) readLoop() {
	s := c.srv
	for {
		req, err := ReadRequest(c.br, s.opts.MaxPayload)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isClosing(err) {
				s.logf("server: %s read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		s.metrics.request(req.Op, 1)
		select {
		case s.tokens <- struct{}{}:
		default:
			// In-flight window full: reject instead of buffering.
			s.metrics.BusyRejected.Add(1)
			s.metrics.responses.Add(StatusBusy.String(), 1)
			c.send(Response{Op: req.Op, Status: StatusBusy, ID: req.ID})
			continue
		}
		t := &task{c: c, req: req, ids: []uint64{req.ID}, start: time.Now()}
		if req.Op == OpWrite && s.opts.CoalesceLimit > 0 {
			c.coalesce(t)
		}
		c.pending.Add(1)
		s.metrics.Inflight.Add(1)
		s.tasks <- t
	}
}

// coalesce merges adjacent WRITE frames that the client has already
// pipelined into the connection buffer onto t, turning back-to-back
// sequential 4 KB writes into one store call (one stripe lock trip, one
// parity mark). Each merged frame keeps its own request ID and gets its
// own acknowledgement. Only buffered bytes are examined — never blocks.
func (c *conn) coalesce(t *task) {
	s := c.srv
	for len(t.req.Data) < s.opts.CoalesceLimit {
		if c.br.Buffered() < 4 {
			return
		}
		pfx, err := c.br.Peek(4)
		if err != nil {
			return
		}
		n := int(uint32(pfx[0])<<24 | uint32(pfx[1])<<16 | uint32(pfx[2])<<8 | uint32(pfx[3]))
		if c.br.Buffered() < 4+n {
			return
		}
		frame, err := c.br.Peek(4 + n)
		if err != nil {
			return
		}
		next, err := DecodeRequest(frame[4:], s.opts.MaxPayload)
		if err != nil {
			return // leave it; the main loop will surface the error
		}
		if next.Op != OpWrite || next.Off != t.req.Off+int64(len(t.req.Data)) ||
			len(t.req.Data)+len(next.Data) > s.opts.CoalesceLimit {
			return
		}
		// Copy out of the bufio buffer before discarding it.
		t.req.Data = append(t.req.Data, next.Data...)
		t.req.Length = uint32(len(t.req.Data))
		t.ids = append(t.ids, next.ID)
		c.br.Discard(4 + n)
		s.metrics.request(OpWrite, 1)
		s.metrics.CoalescedWrites.Add(1)
	}
}

// wireSeg is one vector element of a response batch: either a range of
// the batch's header arena (frame headers and inline payloads) or a
// direct reference to a pooled read payload that travels to the socket
// without being recopied. Arena segments are stored as offsets, not
// slices, because the arena may be reallocated by later appends; the
// slices are materialized only when the batch is sealed.
type wireSeg struct {
	start, end int    // arena range; meaningful when data == nil
	data       []byte // pooled payload, written zero-copy
}

// maxResponseBatch bounds the vector elements gathered into one writev
// batch, keeping the arena finite when the queue never goes empty.
const maxResponseBatch = 256

// maxBatchBytes bounds the payload bytes gathered into one writev
// batch. Beyond coalescing efficiency this bounds what one write
// deadline covers: a multi-megabyte batch can be absorbed whole by
// kernel buffer autotuning, letting a stalled reader soak up responses
// that a sequence of bounded writes would have turned into a timeout.
// One response larger than the cap still travels as a single batch.
const maxBatchBytes = 64 << 10

// writeLoop streams responses, gathering everything already queued into
// one scatter-gather socket write (writev on TCP): frame headers and
// small payloads are serialized into a reusable arena, while pooled READ
// payloads are passed to net.Buffers as their own vector elements — the
// hot read path never copies payload bytes into a frame buffer. Each
// batch write carries a deadline: if the client stops reading, the write
// times out and the connection is torn down rather than blocking workers
// behind the full response queue.
func (c *conn) writeLoop() {
	defer close(c.done)
	timeout := c.srv.opts.WriteTimeout
	var (
		arena      []byte
		segs       []wireSeg
		vecs       net.Buffers
		pooled     [][]byte
		batchBytes int
	)
	add := func(resp *Response) {
		batchBytes += respHeaderLen + 4 + len(resp.Data)
		if resp.pooled && len(resp.Data) > 0 {
			start := len(arena)
			arena = appendResponseHeader(arena, resp)
			segs = append(segs, wireSeg{start: start, end: len(arena)}, wireSeg{data: resp.Data})
			pooled = append(pooled, resp.Data)
			return
		}
		start := len(arena)
		arena = AppendResponse(arena, resp)
		if resp.pooled {
			bufpool.Put(resp.Data) // empty payload; serialized inline
		}
		if n := len(segs); n > 0 && segs[n-1].data == nil && segs[n-1].end == start {
			segs[n-1].end = len(arena) // coalesce adjacent arena segments
		} else {
			segs = append(segs, wireSeg{start: start, end: len(arena)})
		}
	}
	// flush seals and writes the batch. net.Buffers.WriteTo consumes the
	// vector and must see the connection itself (not a wrapper) to take
	// the writev path, so the deadline is armed on the conn directly.
	flush := func() bool {
		vecs = vecs[:0]
		for _, sg := range segs {
			if sg.data != nil {
				vecs = append(vecs, sg.data)
			} else {
				vecs = append(vecs, arena[sg.start:sg.end])
			}
		}
		c.nc.SetWriteDeadline(time.Now().Add(timeout))
		_, err := vecs.WriteTo(c.nc)
		for _, b := range pooled {
			bufpool.Put(b) // on the wire (or the conn is dead); done with it
		}
		arena, segs, pooled, batchBytes = arena[:0], segs[:0], pooled[:0], 0
		if err != nil {
			c.nc.Close() // unblock the reader
			return false
		}
		return true
	}
	for resp := range c.out {
		for {
			add(&resp)
			if len(segs) >= maxResponseBatch || batchBytes >= maxBatchBytes {
				if !flush() {
					return
				}
			}
			var ok bool
			select {
			case resp, ok = <-c.out:
				if !ok {
					flush()
					return
				}
				continue
			default:
			}
			if !flush() {
				return
			}
			break
		}
	}
}

// isClosing reports errors expected at teardown: closed sockets and the
// drain deadline.
func isClosing(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
