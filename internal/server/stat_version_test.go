package server

import (
	"context"
	"net"
	"testing"
	"time"

	"afraid/internal/core"
	"afraid/internal/tier"
)

func TestStatV2RoundTrip(t *testing.T) {
	want := Stat{
		Capacity: 512 << 20, Mode: 0, DirtyStripes: 17,
		Reads: 1000, Writes: 2000, BytesRead: 1 << 22, BytesWritten: 1 << 23,
		ScrubbedStripes: 99,
		ReadP50:         120 * time.Microsecond,
		ReadP95:         900 * time.Microsecond,
		ReadP99:         3 * time.Millisecond,
		WriteP50:        200 * time.Microsecond,
		WriteP95:        2 * time.Millisecond,
		WriteP99:        9 * time.Millisecond,
	}
	b := appendStat(nil, &want, 2)
	if len(b) != statPayloadLenV2 {
		t.Fatalf("v2 payload %d bytes, want %d", len(b), statPayloadLenV2)
	}
	got, err := decodeStat(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v2 round trip: got %+v want %+v", got, want)
	}
}

// TestStatV1DropsPercentiles is the new-client/old-server direction: a
// version-1 payload (all an old server can send) must decode cleanly
// with the percentile fields zero.
func TestStatV1DropsPercentiles(t *testing.T) {
	full := Stat{
		Capacity: 1 << 30, DirtyStripes: 3, Writes: 7,
		ReadP95: time.Second, WriteP99: time.Minute, // lost by v1 encoding
	}
	b := appendStat(nil, &full, 1)
	if len(b) != statPayloadLenV1 {
		t.Fatalf("v1 payload %d bytes, want %d", len(b), statPayloadLenV1)
	}
	got, err := decodeStat(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Capacity != full.Capacity || got.DirtyStripes != full.DirtyStripes || got.Writes != full.Writes {
		t.Fatalf("v1 base fields: got %+v", got)
	}
	if got.ReadP95 != 0 || got.WriteP99 != 0 {
		t.Fatalf("v1 decode produced percentiles from nowhere: %+v", got)
	}
}

// TestStatV3RoundTrip: the checksum counters survive a v3 encode/decode
// cycle, and a v2 encoding of the same Stat drops them cleanly.
func TestStatV3RoundTrip(t *testing.T) {
	want := Stat{
		Capacity: 256 << 20, Mode: 1, DirtyStripes: 5,
		Reads: 10, Writes: 20, BytesRead: 1 << 20, BytesWritten: 1 << 21,
		ScrubbedStripes:  4,
		ReadP50:          time.Microsecond,
		WriteP99:         time.Millisecond,
		ChecksumDetected: 7, ChecksumRepaired: 6, ChecksumLost: 1,
	}
	b := appendStat(nil, &want, 3)
	if len(b) != statPayloadLenV3 {
		t.Fatalf("v3 payload %d bytes, want %d", len(b), statPayloadLenV3)
	}
	got, err := decodeStat(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v3 round trip: got %+v want %+v", got, want)
	}

	v2, err := decodeStat(appendStat(nil, &want, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ChecksumDetected != 0 || v2.ChecksumRepaired != 0 || v2.ChecksumLost != 0 {
		t.Fatalf("v2 decode produced checksum counters from nowhere: %+v", v2)
	}
	if v2.ScrubbedStripes != want.ScrubbedStripes || v2.WriteP99 != want.WriteP99 {
		t.Fatalf("v2 base fields: got %+v", v2)
	}
}

// TestStatV4RoundTrip: the tier counters survive a v4 encode/decode
// cycle, and a v3 encoding of the same Stat drops them cleanly.
func TestStatV4RoundTrip(t *testing.T) {
	want := Stat{
		Capacity: 128 << 20, Mode: 0, DirtyStripes: 2,
		Reads: 31, Writes: 17, BytesRead: 1 << 19, BytesWritten: 1 << 18,
		ScrubbedStripes: 3,
		ReadP50:         2 * time.Microsecond,
		WriteP99:        4 * time.Millisecond,
		ChecksumLost:    1,
		TierFrontHits:   420, TierPromotes: 33, TierDemotes: 21,
		TierResidentBytes: 5 << 20,
	}
	b := appendStat(nil, &want, 4)
	if len(b) != statPayloadLenV4 {
		t.Fatalf("v4 payload %d bytes, want %d", len(b), statPayloadLenV4)
	}
	got, err := decodeStat(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v4 round trip: got %+v want %+v", got, want)
	}

	v3, err := decodeStat(appendStat(nil, &want, 3))
	if err != nil {
		t.Fatal(err)
	}
	if v3.TierFrontHits != 0 || v3.TierPromotes != 0 || v3.TierDemotes != 0 || v3.TierResidentBytes != 0 {
		t.Fatalf("v3 decode produced tier counters from nowhere: %+v", v3)
	}
	if v3.ChecksumLost != want.ChecksumLost || v3.ScrubbedStripes != want.ScrubbedStripes {
		t.Fatalf("v3 base fields: got %+v", v3)
	}
}

func TestStatVersionClamping(t *testing.T) {
	cases := []struct {
		advertised uint32
		want       uint8
	}{
		{0, 1},  // pre-versioning client
		{1, 1},  // explicit v1
		{2, 2},  // explicit v2
		{3, 3},  // explicit v3
		{4, 4},  // current
		{99, 4}, // future client against this server
		{1 << 20, 4},
	}
	for _, c := range cases {
		if got := statVersionFor(c.advertised); got != c.want {
			t.Errorf("statVersionFor(%d) = %d, want %d", c.advertised, got, c.want)
		}
	}
	// Encoding at an impossible version degrades to v1 rather than
	// emitting a payload nothing can parse.
	b := appendStat(nil, &Stat{}, 0)
	if b[0] != 1 || len(b) != statPayloadLenV1 {
		t.Fatalf("appendStat at version 0 produced version %d, len %d", b[0], len(b))
	}
}

func TestStatTruncatedPayloads(t *testing.T) {
	for _, b := range [][]byte{nil, {2}, appendStat(nil, &Stat{}, 2)[:statPayloadLenV1], appendStat(nil, &Stat{}, 3)[:statPayloadLenV2], appendStat(nil, &Stat{}, 4)[:statPayloadLenV3], {7, 0}} {
		if _, err := decodeStat(b); err == nil {
			t.Errorf("decodeStat(%d bytes, version %v) accepted a bad payload", len(b), b)
		}
	}
}

// TestStatNegotiationOverWire exercises both directions against a live
// server. An old client (Length=0, what pre-versioning clients send,
// since Client.Stat set no Length) must get a version-1 payload; the
// current Client advertises StatVersion and gets live percentiles.
func TestStatNegotiationOverWire(t *testing.T) {
	_, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour, DisableScrubber: true}, Options{})

	// Generate latency samples so v2 percentiles are non-zero.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 4<<10)
	for i := 0; i < 32; i++ {
		if _, err := c.WriteAt(buf, int64(i)*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReadAt(buf, int64(i)*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}

	// Old client: raw STAT frame with Length=0.
	raw := dialRaw(t, addr)
	frame := AppendRequest(nil, &Request{Op: OpStat, ID: 1})
	if _, err := raw.nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(raw.br, DefaultMaxPayload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("old-client STAT status %v", resp.Status)
	}
	if len(resp.Data) != statPayloadLenV1 || resp.Data[0] != 1 {
		t.Fatalf("old client got %d-byte version-%d payload, want v1 (%d bytes)", len(resp.Data), resp.Data[0], statPayloadLenV1)
	}
	if _, err := decodeStat(resp.Data); err != nil {
		t.Fatalf("old-client payload does not decode: %v", err)
	}

	// New client: Client.Stat advertises StatVersion.
	st, err := c.Stat(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || st.Reads == 0 {
		t.Fatalf("stat counters empty: %+v", st)
	}
	for name, d := range map[string]time.Duration{
		"ReadP50": st.ReadP50, "ReadP95": st.ReadP95, "ReadP99": st.ReadP99,
		"WriteP50": st.WriteP50, "WriteP95": st.WriteP95, "WriteP99": st.WriteP99,
	} {
		if d <= 0 {
			t.Errorf("v2 STAT percentile %s = %v, want > 0", name, d)
		}
	}
	if st.ReadP50 > st.ReadP99 || st.WriteP50 > st.WriteP99 {
		t.Errorf("percentiles not ordered: %+v", st)
	}
	// Against a bare core store, the tier quartet must stay zero even
	// at v4.
	if st.TierFrontHits != 0 || st.TierPromotes != 0 || st.TierResidentBytes != 0 {
		t.Errorf("bare store reported tier counters: %+v", st)
	}
}

// TestStatTierCountersOverWire serves a hybrid tier.Store and checks
// that a v4 STAT carries live tier counters end to end.
func TestStatTierCountersOverWire(t *testing.T) {
	devs := make([]core.BlockDevice, 4)
	for i := range devs {
		devs[i] = core.NewMemDevice(1 << 20)
	}
	back, err := core.Open(devs, &core.MemNVRAM{}, core.Options{StripeUnit: 8 << 10, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	const extentSize = 16 << 10
	frontSize := int64(8 * (extentSize + 16))
	front := []core.BlockDevice{core.NewMemDevice(frontSize), core.NewMemDevice(frontSize)}
	hybrid, err := tier.Open(back, front, &core.MemNVRAM{}, tier.Options{ExtentSize: extentSize, DisableMigrator: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(hybrid, Options{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	defer func() {
		srv.Close()
		<-serveDone
		hybrid.Close()
		back.Close()
	}()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 4<<10)
	for i := 0; i < 8; i++ {
		if _, err := c.WriteAt(buf, int64(i)*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReadAt(buf, int64(i)*int64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stat(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.TierPromotes == 0 {
		t.Fatalf("hybrid backend reported no promotes over the wire: %+v", st)
	}
	if st.TierFrontHits == 0 {
		t.Fatalf("hybrid backend reported no front hits over the wire: %+v", st)
	}
	if st.TierResidentBytes == 0 {
		t.Fatalf("hybrid backend reported no resident bytes over the wire: %+v", st)
	}
}
