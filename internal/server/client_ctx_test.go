package server

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"afraid/internal/core"
)

// startStalledServer speaks just enough protocol to complete the
// handshake, then never reads another byte and never responds: the
// degenerate node a cluster-level timeout must cut loose promptly. It
// advertises a tiny payload limit so client transfers split into many
// chunks and exercise the windowed-pipelining loop.
func startStalledServer(t *testing.T, maxPayload uint32) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				magic := make([]byte, len(Magic))
				if _, err := io.ReadFull(nc, magic); err != nil {
					return
				}
				reply := append([]byte(Magic), appendUint64(nil, 1<<20)...)
				reply = appendUint32(reply, maxPayload)
				if _, err := nc.Write(reply); err != nil {
					return
				}
				<-stop // hold the connection open, reading nothing
			}(nc)
		}
	}()
	t.Cleanup(func() {
		close(stop)
		lis.Close()
	})
	return lis.Addr().String()
}

// TestWriteAtContextAbandonsChunksOnCancel is the regression test for
// ctx propagation into the windowed chunk loop: with the server stalled
// (handshake done, nothing read or answered since), a large split write
// under a short deadline must return promptly with the context error
// instead of waiting out the chunk completions that will never come.
func TestWriteAtContextAbandonsChunksOnCancel(t *testing.T) {
	// 1K chunks keep the 16-chunk pipeline window well under the
	// socket buffers, so the issue loop never blocks in a raw write.
	addr := startStalledServer(t, 1024)
	c, err := DialTimeout(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	buf := make([]byte, 64<<10) // 64 chunks at 1K — several full windows
	start := time.Now()
	_, err = c.WriteAtContext(ctx, buf, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WriteAtContext = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("WriteAtContext took %v after a 150ms deadline", d)
	}
}

// TestReadAtContextPreCancelled checks the issue-side ctx gate: a
// context cancelled before the call must stop the loop before it pushes
// a window of chunk requests at the (stalled) server.
func TestReadAtContextPreCancelled(t *testing.T) {
	addr := startStalledServer(t, 4096)
	c, err := DialTimeout(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := c.ReadAtContext(ctx, make([]byte, 64<<10), 0)
	if n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadAtContext = (%d, %v), want (0, Canceled)", n, err)
	}
	if got := c.Err(); got != nil {
		t.Fatalf("client terminally failed by a cancelled read: %v", got)
	}
}

// TestDialTimeoutHandshake bounds the setup path: a listener that
// accepts but never answers the handshake must fail DialTimeout within
// the bound rather than hanging on the handshake read.
func TestDialTimeoutHandshake(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // accept and go mute
		}
	}()
	start := time.Now()
	if _, err := DialTimeout(lis.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("DialTimeout succeeded against a mute listener")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("DialTimeout took %v with a 200ms bound", d)
	}
}

// TestPingAndConnectionLost exercises the health-check round trip and
// the terminal-state contract: Ping succeeds against a live server,
// and after the server goes away every call (and Err) reports
// ErrConnectionLost.
func TestPingAndConnectionLost(t *testing.T) {
	srv, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour}, Options{})
	c, err := DialTimeout(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Ping(ctx)
		if errors.Is(err, ErrConnectionLost) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Ping after server close = %v, want ErrConnectionLost", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Err(); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("Err = %v, want ErrConnectionLost", err)
	}
}
