package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpRead, ID: 1, Off: 0, Length: 4096},
		{Op: OpRead, ID: math.MaxUint64, Off: math.MaxInt64 - 4096, Length: 4096},
		{Op: OpWrite, ID: 2, Off: 8192, Length: 3, Data: []byte{0xde, 0xad, 0xbf}},
		{Op: OpWrite, ID: 3, Off: 0, Length: 0, Data: []byte{}},
		{Op: OpFlush, ID: 4},
		{Op: OpStat, ID: 5},
		{Op: OpScrub, ID: 6, Off: 1 << 20, Length: 64 << 20}, // range, not payload
	}
	for _, want := range cases {
		t.Run(want.Op.String(), func(t *testing.T) {
			frame := AppendRequest(nil, &want)
			got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)), DefaultMaxPayload)
			if err != nil {
				t.Fatalf("ReadRequest: %v", err)
			}
			if got.Op != want.Op || got.ID != want.ID || got.Off != want.Off || got.Length != want.Length {
				t.Fatalf("round trip: got %+v want %+v", got, want)
			}
			if !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("data round trip: got %x want %x", got.Data, want.Data)
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Op: OpRead, Status: StatusOK, ID: 7, Data: []byte("abcd")},
		{Op: OpWrite, Status: StatusBusy, ID: 8},
		{Op: OpFlush, Status: StatusIO, ID: 9, Data: []byte("disk 3 write: device failed")},
		{Op: OpRead, Status: StatusDataLoss, ID: 10, Data: []byte("stripe 12")},
		{Op: OpStat, Status: StatusOK, ID: 11, Data: appendStat(nil, &Stat{Capacity: 1 << 30, Writes: 42}, 1)},
	}
	for _, want := range cases {
		t.Run(want.Status.String(), func(t *testing.T) {
			frame := AppendResponse(nil, &want)
			got, err := ReadResponse(bufio.NewReader(bytes.NewReader(frame)), DefaultMaxPayload)
			if err != nil {
				t.Fatalf("ReadResponse: %v", err)
			}
			if got.Op != want.Op || got.Status != want.Status || got.ID != want.ID {
				t.Fatalf("round trip: got %+v want %+v", got, want)
			}
			if !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("data round trip: got %x want %x", got.Data, want.Data)
			}
		})
	}
}

func TestStatRoundTrip(t *testing.T) {
	want := Stat{
		Capacity: 512 << 20, Mode: 0, DirtyStripes: 17,
		Reads: 1000, Writes: 2000, BytesRead: 1 << 22, BytesWritten: 1 << 23,
		ScrubbedStripes: 99,
	}
	got, err := decodeStat(appendStat(nil, &want, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stat round trip: got %+v want %+v", got, want)
	}
	if got.ModeString() != "afraid" {
		t.Fatalf("ModeString() = %q, want afraid", got.ModeString())
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	write := func(length uint32, data []byte) []byte {
		body := AppendRequest(nil, &Request{Op: OpWrite, ID: 1, Off: 0, Length: length, Data: data})[4:]
		return body
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"short header", make([]byte, reqHeaderLen-1)},
		{"unknown op", func() []byte {
			b := AppendRequest(nil, &Request{Op: OpRead, ID: 1})[4:]
			b[0] = 99
			return b
		}()},
		{"zero op", func() []byte {
			b := AppendRequest(nil, &Request{Op: OpRead, ID: 1})[4:]
			b[0] = 0
			return b
		}()},
		{"offset overflows int64", func() []byte {
			b := AppendRequest(nil, &Request{Op: OpRead, ID: 1, Length: 16})[4:]
			for i := 9; i < 17; i++ {
				b[i] = 0xff
			}
			return b
		}()},
		{"read length over limit", func() []byte {
			b := AppendRequest(nil, &Request{Op: OpRead, ID: 1, Length: DefaultMaxPayload + 1})[4:]
			return b
		}()},
		{"write data shorter than declared", write(100, make([]byte, 50))},
		{"write data longer than declared", write(50, make([]byte, 100))},
		{"trailing data on READ", append(AppendRequest(nil, &Request{Op: OpRead, ID: 1, Length: 8})[4:], 1, 2, 3)},
		{"trailing data on FLUSH", append(AppendRequest(nil, &Request{Op: OpFlush, ID: 1})[4:], 9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRequest(tc.body, DefaultMaxPayload); err == nil {
				t.Fatalf("DecodeRequest accepted %q body", tc.name)
			}
		})
	}
}

func TestReadRequestRejectsOversizedAndTruncatedFrames(t *testing.T) {
	// Declared body length far over the limit: rejected before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(huge)), DefaultMaxPayload); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	// Frame cut off mid-body.
	frame := AppendRequest(nil, &Request{Op: OpWrite, ID: 1, Length: 64, Data: make([]byte, 64)})
	cut := frame[:len(frame)-10]
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(cut)), DefaultMaxPayload); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("truncated frame: got %v, want ErrTruncatedFrame", err)
	}
	// Clean EOF at a frame boundary stays io.EOF so connection close is
	// distinguishable from corruption.
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(nil)), DefaultMaxPayload); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

// FuzzDecodeRequest feeds arbitrary frames through the reader and the
// body decoder: malformed input must error, never panic, and accepted
// requests must re-encode to a decodable frame.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{Op: OpRead, ID: 1, Off: 4096, Length: 512}))
	f.Add(AppendRequest(nil, &Request{Op: OpWrite, ID: 2, Off: 0, Length: 5, Data: []byte("hello")}))
	f.Add(AppendRequest(nil, &Request{Op: OpFlush, ID: 3}))
	f.Add(AppendRequest(nil, &Request{Op: OpScrub, ID: 4, Off: 0, Length: 1 << 30}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		const limit = 4096
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)), limit)
		if err != nil {
			return
		}
		if (req.Op == OpRead || req.Op == OpWrite) && req.Length > limit {
			t.Fatalf("decoder admitted payload length %d over limit %d", req.Length, limit)
		}
		if req.Off < 0 {
			t.Fatalf("decoder admitted negative offset %d", req.Off)
		}
		// Accepted requests must survive a re-encode round trip.
		again, err := DecodeRequest(AppendRequest(nil, &req)[4:], limit)
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		if again.Op != req.Op || again.ID != req.ID || again.Off != req.Off || again.Length != req.Length || !bytes.Equal(again.Data, req.Data) {
			t.Fatalf("re-encode changed request: %+v vs %+v", again, req)
		}
	})
}
