package server

import (
	"expvar"
	"fmt"
	"net/http"
	"time"

	"afraid/internal/obs"
)

// Metrics counts server activity as expvar vars and records request
// latencies in lock-free obs histograms. The vars live in a per-server
// expvar.Map rather than the process-global registry so multiple
// servers (tests, benchmarks) don't collide; Publish exports the map
// globally for /debug/vars, and Handler serves it directly. The
// histogram registry is mounted separately (obs.HistogramHandler) as
// the "server" section of /debug/histograms.
type Metrics struct {
	vars *expvar.Map

	// Per-op request counters (one frame = one request, even when the
	// server coalesces adjacent writes into a single store call).
	requests *expvar.Map
	// Per-status response counters.
	responses *expvar.Map

	ConnsOpen       expvar.Int
	ConnsTotal      expvar.Int
	Inflight        expvar.Int
	BusyRejected    expvar.Int
	CoalescedWrites expvar.Int
	BytesRead       expvar.Int
	BytesWritten    expvar.Int

	reg       *obs.Registry
	opLat     [OpScrub + 1]*obs.Histogram // end-to-end latency per op
	queueWait *obs.Histogram              // dispatch -> worker pickup
	service   *obs.Histogram              // worker pickup -> completion
	trace     *obs.Ring
}

// newMetrics builds the metric tree; dirty reports the store's current
// unredundant-stripe count.
func newMetrics(dirty func() int64) *Metrics {
	m := &Metrics{
		vars:      new(expvar.Map).Init(),
		requests:  new(expvar.Map).Init(),
		responses: new(expvar.Map).Init(),
		reg:       obs.NewRegistry(),
	}
	for op := OpRead; op <= OpScrub; op++ {
		m.opLat[op] = m.reg.Histogram(op.String())
	}
	m.queueWait = m.reg.Histogram("queue_wait")
	m.service = m.reg.Histogram("service_time")
	m.trace = m.reg.Ring("requests", 1024)
	m.vars.Set("requests", m.requests)
	m.vars.Set("responses", m.responses)
	m.vars.Set("conns_open", &m.ConnsOpen)
	m.vars.Set("conns_total", &m.ConnsTotal)
	m.vars.Set("inflight", &m.Inflight)
	m.vars.Set("busy_rejected", &m.BusyRejected)
	m.vars.Set("coalesced_writes", &m.CoalescedWrites)
	m.vars.Set("bytes_read", &m.BytesRead)
	m.vars.Set("bytes_written", &m.BytesWritten)
	m.vars.Set("read_latency_us", expvar.Func(func() any { return m.opLat[OpRead].Summary() }))
	m.vars.Set("write_latency_us", expvar.Func(func() any { return m.opLat[OpWrite].Summary() }))
	m.vars.Set("queue_wait_us", expvar.Func(func() any { return m.queueWait.Summary() }))
	m.vars.Set("dirty_stripes", expvar.Func(func() any { return dirty() }))
	return m
}

// request counts one received frame.
func (m *Metrics) request(op Op, n int64) { m.requests.Add(op.String(), n) }

// response counts one completed frame and records its end-to-end
// latency.
func (m *Metrics) response(op Op, st Status, d time.Duration) {
	m.responses.Add(st.String(), 1)
	if h := m.hist(op); h != nil {
		h.Observe(d)
	}
}

// task records timing for one executed store call (which may have
// completed several coalesced frames): the queue-wait/service-time
// split and a trace-ring event.
func (m *Metrics) task(r *Request, st Status, queued, total time.Duration) {
	m.queueWait.Observe(queued)
	m.service.Observe(total - queued)
	n := int64(r.Length)
	if r.Op == OpWrite {
		n = int64(len(r.Data))
	}
	ev := obs.Event{
		Op:    r.Op.String(),
		Off:   r.Off,
		Len:   n,
		Start: time.Now().Add(-total),
		Queue: queued,
		Total: total,
	}
	if st != StatusOK {
		ev.Err = st.String()
	}
	m.trace.Record(ev)
}

// hist returns the latency histogram for one op, nil for unknown ops.
func (m *Metrics) hist(op Op) *obs.Histogram {
	if op.valid() {
		return m.opLat[op]
	}
	return nil
}

// Obs returns the server's histogram/trace registry for mounting on a
// debug endpoint.
func (m *Metrics) Obs() *obs.Registry { return m.reg }

// OpLatency snapshots the end-to-end latency histogram for one op.
func (m *Metrics) OpLatency(op Op) obs.Snapshot {
	if h := m.hist(op); h != nil {
		return h.Snapshot()
	}
	return obs.Snapshot{}
}

// Requests returns the request counter for one op.
func (m *Metrics) Requests(op Op) int64 {
	if v, ok := m.requests.Get(op.String()).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// Responses returns the response counter for one status.
func (m *Metrics) Responses(st Status) int64 {
	if v, ok := m.responses.Get(st.String()).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// WriteLatencyP95 returns the p95 end-to-end WRITE latency.
func (m *Metrics) WriteLatencyP95() time.Duration {
	s := m.opLat[OpWrite].Snapshot()
	return s.Quantile(0.95)
}

// Publish registers the metric tree in the process-global expvar
// registry under name, making it visible on expvar.Handler
// (/debug/vars). Publishing the same name twice panics (expvar
// semantics), so daemons should call it once.
func (m *Metrics) Publish(name string) { expvar.Publish(name, m.vars) }

// Handler serves the metric tree as JSON.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.vars.String())
	})
}

// String returns the metric tree as JSON (expvar.Var).
func (m *Metrics) String() string { return m.vars.String() }
