package server

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Metrics counts server activity as expvar vars. The vars live in a
// per-server expvar.Map rather than the process-global registry so
// multiple servers (tests, benchmarks) don't collide; Publish exports
// the map globally for /debug/vars, and Handler serves it directly.
type Metrics struct {
	vars *expvar.Map

	// Per-op request counters (one frame = one request, even when the
	// server coalesces adjacent writes into a single store call).
	requests *expvar.Map
	// Per-status response counters.
	responses *expvar.Map

	ConnsOpen       expvar.Int
	ConnsTotal      expvar.Int
	Inflight        expvar.Int
	BusyRejected    expvar.Int
	CoalescedWrites expvar.Int
	BytesRead       expvar.Int
	BytesWritten    expvar.Int

	readLat  latencySampler
	writeLat latencySampler
}

// newMetrics builds the metric tree; dirty reports the store's current
// unredundant-stripe count.
func newMetrics(dirty func() int64) *Metrics {
	m := &Metrics{
		vars:      new(expvar.Map).Init(),
		requests:  new(expvar.Map).Init(),
		responses: new(expvar.Map).Init(),
	}
	m.vars.Set("requests", m.requests)
	m.vars.Set("responses", m.responses)
	m.vars.Set("conns_open", &m.ConnsOpen)
	m.vars.Set("conns_total", &m.ConnsTotal)
	m.vars.Set("inflight", &m.Inflight)
	m.vars.Set("busy_rejected", &m.BusyRejected)
	m.vars.Set("coalesced_writes", &m.CoalescedWrites)
	m.vars.Set("bytes_read", &m.BytesRead)
	m.vars.Set("bytes_written", &m.BytesWritten)
	m.vars.Set("read_latency_us", expvar.Func(m.readLat.percentiles))
	m.vars.Set("write_latency_us", expvar.Func(m.writeLat.percentiles))
	m.vars.Set("dirty_stripes", expvar.Func(func() any { return dirty() }))
	return m
}

// request counts one received frame.
func (m *Metrics) request(op Op, n int64) { m.requests.Add(op.String(), n) }

// response counts one completed frame and samples its latency.
func (m *Metrics) response(op Op, st Status, d time.Duration) {
	m.responses.Add(st.String(), 1)
	switch op {
	case OpRead:
		m.readLat.record(d)
	case OpWrite:
		m.writeLat.record(d)
	}
}

// Requests returns the request counter for one op.
func (m *Metrics) Requests(op Op) int64 {
	if v, ok := m.requests.Get(op.String()).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// Responses returns the response counter for one status.
func (m *Metrics) Responses(st Status) int64 {
	if v, ok := m.responses.Get(st.String()).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// WriteLatencyP95 returns the sampled p95 write latency.
func (m *Metrics) WriteLatencyP95() time.Duration { return m.writeLat.p95() }

// Publish registers the metric tree in the process-global expvar
// registry under name, making it visible on expvar.Handler
// (/debug/vars). Publishing the same name twice panics (expvar
// semantics), so daemons should call it once.
func (m *Metrics) Publish(name string) { expvar.Publish(name, m.vars) }

// Handler serves the metric tree as JSON.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.vars.String())
	})
}

// String returns the metric tree as JSON (expvar.Var).
func (m *Metrics) String() string { return m.vars.String() }

// latencySampler keeps a fixed-size reservoir of recent request
// latencies, enough for tail percentiles without unbounded memory.
type latencySampler struct {
	mu      sync.Mutex
	ring    [1024]time.Duration
	n       int // ring entries in use
	next    int // ring write cursor
	count   int64
	totalUS int64
}

func (l *latencySampler) record(d time.Duration) {
	l.mu.Lock()
	l.ring[l.next] = d
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.count++
	l.totalUS += d.Microseconds()
	l.mu.Unlock()
}

// snapshot returns the retained samples, sorted ascending.
func (l *latencySampler) snapshot() ([]time.Duration, int64, int64) {
	l.mu.Lock()
	out := make([]time.Duration, l.n)
	copy(out, l.ring[:l.n])
	count, total := l.count, l.totalUS
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, count, total
}

func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func (l *latencySampler) p95() time.Duration {
	s, _, _ := l.snapshot()
	return pct(s, 0.95)
}

// percentiles is the expvar.Func payload: count, mean, and tail
// latencies in microseconds.
func (l *latencySampler) percentiles() any {
	s, count, totalUS := l.snapshot()
	out := map[string]int64{
		"count": count,
		"p50":   pct(s, 0.50).Microseconds(),
		"p95":   pct(s, 0.95).Microseconds(),
		"p99":   pct(s, 0.99).Microseconds(),
	}
	if count > 0 {
		out["mean"] = totalUS / count
	}
	return out
}
