package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
	"afraid/internal/obs"
)

// startServer brings up a server over a fresh AFRAID-mode mem-device
// store on a loopback listener and returns its address.
func startServer(t *testing.T, storeOpts core.Options, srvOpts Options) (*Server, *core.Store, string) {
	t.Helper()
	devs := make([]core.BlockDevice, 5)
	for i := range devs {
		devs[i] = core.NewMemDevice(4 << 20)
	}
	if storeOpts.StripeUnit == 0 {
		storeOpts.StripeUnit = 8 << 10
	}
	st, err := core.Open(devs, &core.MemNVRAM{}, storeOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, srvOpts)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
		st.Close()
	})
	return srv, st, lis.Addr().String()
}

func TestServerEndToEnd(t *testing.T) {
	srv, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour}, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Capacity() == 0 {
		t.Fatal("handshake reported zero capacity")
	}
	data := []byte("one disk I/O, not four")
	if _, err := c.WriteAt(data, 4096); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(got, 4096); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}

	ctx := context.Background()
	st, err := c.Stat(ctx)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.ModeString() != "afraid" {
		t.Fatalf("mode %q, want afraid", st.ModeString())
	}
	if st.DirtyStripes == 0 {
		t.Fatal("write left no dirty stripes before flush")
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st, err = c.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyStripes != 0 {
		t.Fatalf("dirty stripes after flush = %d", st.DirtyStripes)
	}

	// Scrub a specific range (trivially clean after the flush).
	if err := c.Scrub(ctx, 0, 32<<10); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	// Bad range → ERR_BAD_REQUEST, connection stays usable.
	if _, err := c.ReadAt(make([]byte, 16), c.Capacity()); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range read: got %v, want ErrBadRequest", err)
	}
	if _, err := c.ReadAt(got, 4096); err != nil {
		t.Fatalf("ReadAt after rejected request: %v", err)
	}
	if n := srv.Metrics().Requests(OpRead); n == 0 {
		t.Fatal("metrics recorded no READ requests")
	}
}

// TestOverflowingOffsetsRejected covers offsets near MaxInt64 (which
// DecodeRequest admits): a naive off+length capacity check wraps
// negative, passes, and panics in layout.Split inside a worker. Every
// ranged op must answer ERR_BAD_REQUEST and the connection must stay
// usable.
func TestOverflowingOffsetsRejected(t *testing.T) {
	_, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour}, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	huge := int64(math.MaxInt64 - 100)
	if _, err := c.do(ctx, &Request{Op: OpRead, Off: huge, Length: 4096}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("READ at %d: got %v, want ErrBadRequest", huge, err)
	}
	if _, err := c.do(ctx, &Request{Op: OpWrite, Off: huge, Length: 4, Data: []byte("boom")}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("WRITE at %d: got %v, want ErrBadRequest", huge, err)
	}
	if err := c.Scrub(ctx, huge, 4096); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("SCRUB at %d: got %v, want ErrBadRequest", huge, err)
	}
	// A length exceeding capacity on its own must bounce too (SCRUB
	// lengths are not bounded by the payload limit).
	if err := c.Scrub(ctx, 0, int64(^uint32(0))); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("SCRUB longer than capacity: got %v, want ErrBadRequest", err)
	}
	// The worker pool survived: a normal round trip still works.
	data := []byte("still serving")
	if _, err := c.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt after rejected requests: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after rejected requests: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestServerLargeTransfersChunk(t *testing.T) {
	_, _, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour},
		Options{MaxPayload: 8 << 10})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := make([]byte, 100<<10) // 12.5 chunks at the 8 KiB limit
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	if _, err := c.WriteAt(data, 512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked transfer corrupted data")
	}
}

// TestServerConcurrency is the acceptance workload: ≥8 concurrent
// clients over real TCP issuing mixed reads and writes against an
// AFRAID-mode store with the scrubber live, then a graceful drain.
// Every client verifies its own region, the store is checked after
// drain, and the metrics must account for every frame.
func TestServerConcurrency(t *testing.T) {
	srv, st, addr := startServer(t,
		core.Options{Mode: core.Afraid, ScrubIdle: 2 * time.Millisecond, DirtyThreshold: 16},
		Options{MaxInflight: 1024, RequestTimeout: time.Minute})

	const (
		clients = 10
		ops     = 120
		ioSize  = 4 << 10
	)
	region := st.Capacity() / clients
	var wantReads, wantWrites int64
	var cmu sync.Mutex // guards wantReads/wantWrites
	errs := make(chan error, clients)
	final := make([][]byte, clients) // expected content of each region

	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * region
			mirror := make([]byte, region) // what the region must hold
			buf := make([]byte, ioSize)
			got := make([]byte, ioSize)
			reads, writes := int64(0), int64(0)
			for i := 0; i < ops; i++ {
				off := rng.Int63n(region - ioSize)
				if rng.Intn(3) == 0 { // 1/3 reads, 2/3 writes
					if _, err := c.ReadAt(got, base+off); err != nil {
						errs <- fmt.Errorf("client %d read: %w", w, err)
						return
					}
					if !bytes.Equal(got, mirror[off:off+ioSize]) {
						errs <- fmt.Errorf("client %d: read at %d disagrees with model", w, off)
						return
					}
					reads++
				} else {
					rng.Read(buf)
					if _, err := c.WriteAt(buf, base+off); err != nil {
						errs <- fmt.Errorf("client %d write: %w", w, err)
						return
					}
					copy(mirror[off:], buf)
					writes++
				}
			}
			final[w] = mirror
			cmu.Lock()
			wantReads += reads
			wantWrites += writes
			cmu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Metrics on the endpoint must match what the clients issued.
	m := srv.Metrics()
	if got := m.Requests(OpRead); got != wantReads {
		t.Fatalf("metrics READ requests = %d, clients issued %d", got, wantReads)
	}
	if got := m.Requests(OpWrite); got != wantWrites {
		t.Fatalf("metrics WRITE requests = %d, clients issued %d", got, wantWrites)
	}
	if got := m.Responses(StatusOK); got != wantReads+wantWrites {
		t.Fatalf("metrics OK responses = %d, want %d", got, wantReads+wantWrites)
	}
	if busy := m.BusyRejected.Value(); busy != 0 {
		t.Fatalf("unexpected ERR_BUSY rejections: %d", busy)
	}
	// The metrics endpoint itself must serve parseable JSON with the
	// same counters.
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics endpoint JSON: %v\n%s", err, rec.Body.String())
	}
	reqs, ok := doc["requests"].(map[string]any)
	if !ok {
		t.Fatalf("metrics endpoint missing requests map: %s", rec.Body.String())
	}
	if int64(reqs["READ"].(float64)) != wantReads {
		t.Fatalf("endpoint READ count %v, want %d", reqs["READ"], wantReads)
	}
	if _, ok := doc["dirty_stripes"]; !ok {
		t.Fatal("metrics endpoint missing dirty_stripes")
	}

	// The /debug/histograms payload (same handler afraidd mounts) must
	// report non-zero p50/p95/p99 for READ and WRITE after the
	// workload, in both the server and core sections.
	rec = httptest.NewRecorder()
	obs.HistogramHandler(
		obs.Section{Name: "server", Reg: m.Obs()},
		obs.Section{Name: "core", Reg: st.Obs()},
	).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/histograms", nil))
	var hist map[string]map[string]obs.Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatalf("histogram endpoint JSON: %v\n%s", err, rec.Body.String())
	}
	for _, op := range []Op{OpRead, OpWrite} {
		sum, ok := hist["server"][op.String()]
		if !ok {
			t.Fatalf("histogram dump missing server/%s", op)
		}
		if sum.Count == 0 || sum.P50US <= 0 || sum.P95US <= 0 || sum.P99US <= 0 {
			t.Fatalf("server %s histogram has zero percentiles after workload: %+v", op, sum)
		}
		if sum.P50US > sum.P99US {
			t.Fatalf("server %s percentiles not ordered: %+v", op, sum)
		}
	}
	for _, name := range []string{"device_read", "device_write", "stripe_lock_wait"} {
		if sum := hist["core"][name]; sum.Count == 0 {
			t.Fatalf("core %s histogram empty after workload", name)
		}
	}
	if qw := hist["server"]["queue_wait"]; qw.Count == 0 {
		t.Fatal("queue_wait histogram empty after workload")
	}

	// Graceful drain, then verify every region directly on the store.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, region)
	for w := 0; w < clients; w++ {
		if _, err := st.ReadAt(got, int64(w)*region); err != nil {
			t.Fatalf("post-drain read region %d: %v", w, err)
		}
		if !bytes.Equal(got, final[w]) {
			t.Fatalf("post-drain: region %d differs from client %d's model", w, w)
		}
	}
	if bad, err := st.CheckParity(); err != nil || len(bad) != 0 {
		t.Fatalf("post-drain parity check: bad=%v err=%v", bad, err)
	}
}

// rawConn speaks the wire protocol directly (no Client) for tests that
// need precise control over framing.
type rawConn struct {
	nc net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte(Magic)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	reply := make([]byte, handshakeReplyLen)
	if _, err := io.ReadFull(br, reply); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{nc: nc, br: br}
}

func TestWriteCoalescing(t *testing.T) {
	srv, st, addr := startServer(t, core.Options{Mode: core.Afraid, ScrubIdle: time.Hour, DisableScrubber: true},
		Options{MaxInflight: 64})

	// Pipeline batches of adjacent 4 KiB writes in a single TCP send so
	// they land in the connection buffer together. Loopback delivery
	// isn't atomic, so allow a few attempts before requiring that the
	// server saw at least one merge.
	const batch = 4
	const ioSize = 4 << 10
	raw := dialRaw(t, addr)
	want := make([]byte, batch*ioSize)
	deadline := time.Now().Add(10 * time.Second)
	attempt := 0
	for srv.Metrics().CoalescedWrites.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no write coalescing observed across attempts")
		}
		attempt++
		var frames []byte
		base := int64(attempt%7) * int64(batch*ioSize)
		for i := 0; i < batch; i++ {
			chunk := want[i*ioSize : (i+1)*ioSize]
			for j := range chunk {
				chunk[j] = byte(attempt + i + j)
			}
			frames = AppendRequest(frames, &Request{
				Op: OpWrite, ID: uint64(attempt*100 + i),
				Off: base + int64(i*ioSize), Length: ioSize, Data: chunk,
			})
		}
		if _, err := raw.nc.Write(frames); err != nil {
			t.Fatal(err)
		}
		// Every frame must be acknowledged individually, coalesced or not.
		seen := map[uint64]bool{}
		for i := 0; i < batch; i++ {
			resp, err := ReadResponse(raw.br, DefaultMaxPayload)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != StatusOK {
				t.Fatalf("write %d: %v %s", resp.ID, resp.Status, resp.Data)
			}
			seen[resp.ID] = true
		}
		if len(seen) != batch {
			t.Fatalf("got %d distinct acks, want %d", len(seen), batch)
		}
		got := make([]byte, batch*ioSize)
		if _, err := st.ReadAt(got, base); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("coalesced writes corrupted data")
		}
	}
	// The merged frames must outnumber the store-level write calls.
	merged := srv.Metrics().CoalescedWrites.Value()
	if calls := int64(st.Stats().Writes); calls+merged != srv.Metrics().Requests(OpWrite) {
		t.Fatalf("store writes (%d) + merged frames (%d) != WRITE requests (%d)",
			calls, merged, srv.Metrics().Requests(OpWrite))
	}
}
