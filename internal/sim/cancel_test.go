package sim

import (
	"testing"
	"time"
)

// TestTimerStopDuringFireReportsFalse pins the timer-cancel contract:
// once the engine has committed to running an event, Stop must report
// false — including a Stop issued from inside the event's own callback.
// A true here would let callers believe they cancelled a callback that
// is in fact running, the root of the stale idle-timer bug in
// internal/array.
func TestTimerStopDuringFireReportsFalse(t *testing.T) {
	eng := NewEngine()
	var tm *Timer
	fired := false
	tm = eng.At(10*time.Millisecond, func() {
		fired = true
		if tm.Stop() {
			t.Error("Stop on the currently-firing timer reported true")
		}
	})
	if !eng.Step() {
		t.Fatal("no event to step")
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if tm.Stop() {
		t.Error("Stop on an already-fired timer reported true")
	}
}

// TestTimerStopAfterRearmOnlyCancelsOnce exercises the stop/re-arm
// pattern: stopping a live timer works exactly once, and the cancelled
// event never runs even if a replacement is scheduled at the same time.
func TestTimerStopAfterRearmOnlyCancelsOnce(t *testing.T) {
	eng := NewEngine()
	ranOld, ranNew := false, false
	old := eng.At(5*time.Millisecond, func() { ranOld = true })
	if !old.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if old.Stop() {
		t.Fatal("second Stop on the same timer reported true")
	}
	eng.At(5*time.Millisecond, func() { ranNew = true })
	eng.Run()
	if ranOld {
		t.Error("cancelled event ran")
	}
	if !ranNew {
		t.Error("replacement event did not run")
	}
}
