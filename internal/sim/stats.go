package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean accumulates a running mean and variance (Welford's algorithm).
type Mean struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (m *Mean) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() uint64 { return m.n }

// Mean returns the sample mean, or 0 with no observations.
func (m *Mean) Mean() float64 { return m.mean }

// Var returns the sample variance (n-1 denominator).
func (m *Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stddev returns the sample standard deviation.
func (m *Mean) Stddev() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation (0 if none).
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest observation (0 if none).
func (m *Mean) Max() float64 { return m.max }

// DurationStats accumulates duration observations with exact quantiles
// (it retains samples; simulations here produce at most a few hundred
// thousand requests, so this is cheap and precise).
type DurationStats struct {
	mean    Mean
	samples []time.Duration
	sorted  bool
}

// Add records one duration observation.
func (d *DurationStats) Add(v time.Duration) {
	d.mean.Add(float64(v))
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the number of observations.
func (d *DurationStats) N() uint64 { return d.mean.N() }

// Mean returns the mean duration.
func (d *DurationStats) Mean() time.Duration { return time.Duration(d.mean.Mean()) }

// Max returns the maximum duration.
func (d *DurationStats) Max() time.Duration { return time.Duration(d.mean.Max()) }

// Min returns the minimum duration.
func (d *DurationStats) Min() time.Duration { return time.Duration(d.mean.Min()) }

// Stddev returns the standard deviation of the durations.
func (d *DurationStats) Stddev() time.Duration { return time.Duration(d.mean.Stddev()) }

// Quantile returns the q-th quantile (0 <= q <= 1) of the observations,
// or 0 with no observations.
func (d *DurationStats) Quantile(q float64) time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(q * float64(len(d.samples)-1))
	return d.samples[idx]
}

// String summarizes the distribution.
func (d *DurationStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		d.N(), d.Mean().Round(time.Microsecond),
		d.Quantile(0.5).Round(time.Microsecond),
		d.Quantile(0.95).Round(time.Microsecond),
		d.Quantile(0.99).Round(time.Microsecond),
		d.Max().Round(time.Microsecond))
}

// TimeWeighted integrates a piecewise-constant value over virtual time,
// yielding its time-average. It is used for parity-lag (bytes) and for
// unprotected-time accounting.
type TimeWeighted struct {
	last     time.Duration
	value    float64
	integral float64 // value * seconds
	started  bool
	// nonZero accumulates the total time during which value > 0.
	nonZero time.Duration
}

// Set records that the tracked value becomes v at virtual time now.
func (t *TimeWeighted) Set(now time.Duration, v float64) {
	if !t.started {
		t.last = now
		t.value = v
		t.started = true
		return
	}
	if now < t.last {
		panic(fmt.Sprintf("sim: TimeWeighted time going backwards: %v < %v", now, t.last))
	}
	dt := now - t.last
	t.integral += t.value * dt.Seconds()
	if t.value > 0 {
		t.nonZero += dt
	}
	t.last = now
	t.value = v
}

// Add adjusts the tracked value by delta at virtual time now.
func (t *TimeWeighted) Add(now time.Duration, delta float64) {
	t.Set(now, t.value+delta)
}

// Value returns the current tracked value.
func (t *TimeWeighted) Value() float64 { return t.value }

// Finish closes the integration at virtual time end and returns the
// time-average of the value from the first Set to end.
func (t *TimeWeighted) Finish(end time.Duration) float64 {
	t.Set(end, t.value)
	total := t.last.Seconds()
	if total == 0 {
		return 0
	}
	return t.integral / total
}

// Average returns the time-average up to virtual time now without
// terminating the accumulator.
func (t *TimeWeighted) Average(now time.Duration) float64 {
	if !t.started || now == 0 {
		return 0
	}
	integral := t.integral + t.value*(now-t.last).Seconds()
	return integral / now.Seconds()
}

// NonZeroTime returns the total virtual time during which the tracked
// value was positive, up to the last Set/Add call.
func (t *TimeWeighted) NonZeroTime() time.Duration { return t.nonZero }

// NonZeroTimeAt returns total positive-valued time including the open
// interval ending at now.
func (t *TimeWeighted) NonZeroTimeAt(now time.Duration) time.Duration {
	nz := t.nonZero
	if t.started && t.value > 0 && now > t.last {
		nz += now - t.last
	}
	return nz
}

// GeometricMean returns the geometric mean of xs. All values must be
// positive; it returns 0 for an empty slice.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("sim: GeometricMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Histogram is a fixed-bucket histogram over durations, used for
// reporting latency distributions.
type Histogram struct {
	Bounds []time.Duration // ascending upper bounds; implicit +inf final bucket
	Counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds.
func NewHistogram(bounds ...time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("sim: histogram bounds must be ascending")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Add records an observation.
func (h *Histogram) Add(v time.Duration) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count for bucket i (the final bucket catches
// overflow values).
func (h *Histogram) Bucket(i int) uint64 { return h.Counts[i] }
