package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical outputs from different seeds", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64RangeQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	var m Mean
	for i := 0; i < 200000; i++ {
		m.Add(r.Exp(5.0))
	}
	if math.Abs(m.Mean()-5.0) > 0.1 {
		t.Fatalf("Exp mean = %g, want ~5.0", m.Mean())
	}
}

func TestParetoBoundsAndTail(t *testing.T) {
	r := NewRNG(13)
	var m Mean
	for i := 0; i < 100000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto below xm: %g", v)
		}
		m.Add(v)
	}
	// alpha=1.5, xm=2 has mean alpha*xm/(alpha-1) = 6.
	if m.Mean() < 4 || m.Mean() > 9 {
		t.Fatalf("Pareto mean = %g, want near 6", m.Mean())
	}
}

func TestGeometricMeanValue(t *testing.T) {
	r := NewRNG(17)
	var m Mean
	for i := 0; i < 100000; i++ {
		v := r.Geometric(8.0)
		if v < 1 {
			t.Fatalf("Geometric < 1: %d", v)
		}
		m.Add(float64(v))
	}
	if math.Abs(m.Mean()-8.0) > 0.3 {
		t.Fatalf("Geometric mean = %g, want ~8", m.Mean())
	}
}

func TestExpDurationPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		if d := r.ExpDuration(time.Second); d < 0 {
			t.Fatalf("negative duration %v", d)
		}
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 count %d not greater than rank 50 count %d", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("rank 0 count %d not greater than rank 99 count %d", counts[0], counts[99])
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(31)
	fork := a.Fork()
	// The fork must not replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == fork.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork replays parent stream (%d matches)", same)
	}
}
