package sim

import (
	"math"
	"time"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64* core seeded through splitmix64). It is deliberately
// self-contained so simulation results are reproducible across Go
// releases, unlike math/rand's unspecified stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero,
// produces a usable stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to a state derived from seed via splitmix64.
func (r *RNG) Seed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Fork returns a new generator whose stream is independent of r's
// subsequent output, suitable for giving each simulation component its
// own stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponentially distributed duration with the
// given mean.
func (r *RNG) ExpDuration(mean time.Duration) time.Duration {
	return time.Duration(r.Exp(float64(mean)))
}

// Pareto returns a bounded Pareto value with shape alpha and minimum xm.
// Heavy-tailed idle periods in disk workloads are well described by
// Pareto-like distributions; alpha in (1, 2) gives the burstiness the
// paper relies on.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// ParetoDuration returns a Pareto-distributed duration with minimum xm.
func (r *RNG) ParetoDuration(xm time.Duration, alpha float64) time.Duration {
	return time.Duration(r.Pareto(float64(xm), alpha))
}

// Geometric returns a geometrically distributed count >= 1 with the given
// mean (mean must be >= 1).
func (r *RNG) Geometric(mean float64) int {
	if mean < 1 {
		mean = 1
	}
	p := 1 / mean
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	n := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Zipf draws from {0, ..., n-1} with probability proportional to
// 1/(rank+1)^s, using inverse-CDF on a precomputed table.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with skew s (> 0).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
