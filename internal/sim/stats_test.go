package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Mean() != 3 {
		t.Fatalf("Mean = %g, want 3", m.Mean())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Fatalf("Min/Max = %g/%g", m.Min(), m.Max())
	}
	if math.Abs(m.Var()-2.5) > 1e-12 {
		t.Fatalf("Var = %g, want 2.5", m.Var())
	}
}

func TestMeanMatchesDirectComputation(t *testing.T) {
	prop := func(xs []float64) bool {
		var m Mean
		sum := 0.0
		clean := xs[:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		for _, x := range clean {
			m.Add(x)
			sum += x
		}
		want := sum / float64(len(clean))
		return math.Abs(m.Mean()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationStatsQuantiles(t *testing.T) {
	var d DurationStats
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if d.Min() != time.Millisecond || d.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
	p50 := d.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if d.Quantile(0) != time.Millisecond {
		t.Fatalf("q0 = %v", d.Quantile(0))
	}
	if d.Quantile(1) != 100*time.Millisecond {
		t.Fatalf("q1 = %v", d.Quantile(1))
	}
}

func TestDurationStatsEmpty(t *testing.T) {
	var d DurationStats
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.N() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestDurationStatsAddAfterQuantile(t *testing.T) {
	var d DurationStats
	d.Add(2 * time.Millisecond)
	_ = d.Quantile(0.5)
	d.Add(1 * time.Millisecond)
	if d.Quantile(0) != time.Millisecond {
		t.Fatal("quantile stale after Add following Quantile")
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 10)
	tw.Set(2*time.Second, 20)         // 10 for 2s
	tw.Set(4*time.Second, 0)          // 20 for 2s
	avg := tw.Finish(8 * time.Second) // 0 for 4s
	want := (10.0*2 + 20.0*2 + 0.0*4) / 8
	if math.Abs(avg-want) > 1e-9 {
		t.Fatalf("avg = %g, want %g", avg, want)
	}
}

func TestTimeWeightedNonZeroTime(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(1*time.Second, 5)
	tw.Set(3*time.Second, 0)
	tw.Set(10*time.Second, 0)
	if nz := tw.NonZeroTime(); nz != 2*time.Second {
		t.Fatalf("non-zero time = %v, want 2s", nz)
	}
	tw.Set(11*time.Second, 7)
	if nz := tw.NonZeroTimeAt(15 * time.Second); nz != 6*time.Second {
		t.Fatalf("non-zero time at 15s = %v, want 6s", nz)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Set(5*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	tw.Set(4*time.Second, 2)
}

func TestGeometricMeanKnown(t *testing.T) {
	got := GeometricMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %g, want 4", got)
	}
	if GeometricMean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
}

func TestGeometricMeanScaleInvariance(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = 0.1 + r.Float64()*10
		}
		g := GeometricMean(xs)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		g2 := GeometricMean(scaled)
		return math.Abs(g2-3*g) < 1e-9*(1+g2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Add(500 * time.Microsecond) // bucket 0
	h.Add(time.Millisecond)       // bucket 0 (<=)
	h.Add(5 * time.Millisecond)   // bucket 1
	h.Add(50 * time.Millisecond)  // bucket 2
	h.Add(time.Second)            // bucket 3 (overflow)
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("descending bounds did not panic")
		}
	}()
	NewHistogram(10*time.Millisecond, time.Millisecond)
}
