// Package sim provides a deterministic discrete-event simulation engine,
// pseudo-random number generation, probability distributions, and the
// statistics accumulators used throughout the AFRAID reproduction.
//
// The engine models virtual time as a time.Duration offset from the start
// of the simulation. Events are closures scheduled for a particular
// virtual time; the engine executes them in time order, breaking ties by
// scheduling order so that runs are fully deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func()

// event is an entry in the engine's pending-event heap.
type event struct {
	at   time.Duration // virtual time the event fires
	seq  uint64        // tie-breaker: insertion order
	fn   Event
	dead bool // cancelled
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	e *event
}

// Stop cancels the timer. It reports whether the event had not yet fired
// (and was therefore actually cancelled). Stopping an already-fired,
// currently-firing, or already-stopped timer is a no-op that reports
// false — in particular, a callback calling Stop on its own timer gets
// false, because that firing can no longer be prevented. Callers that
// re-arm timers must therefore not rely on Stop alone to keep a stale
// callback from running; guard the callback with a generation check.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead {
		return false
	}
	t.e.dead = true
	return true
}

// When returns the virtual time at which the timer will fire.
func (t *Timer) When() time.Duration { return t.e.at }

// Engine is a discrete-event simulator. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	pending eventHeap
	steps   uint64
	// MaxSteps bounds the number of events executed by Run as a runaway
	// guard; zero means no bound.
	MaxSteps uint64
}

// NewEngine returns an engine with virtual time zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events that are scheduled and not cancelled.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pending {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug.
func (e *Engine) At(t time.Duration, fn Event) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pending, ev)
	return &Timer{e: ev}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn Event) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing virtual time
// to its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	for e.pending.Len() > 0 {
		ev := heap.Pop(&e.pending).(*event)
		if ev.dead {
			continue
		}
		// The event is committed to run: mark it dead before the
		// callback so a Stop issued from inside fn (or anything it
		// calls) reports false instead of claiming a cancellation that
		// never happened.
		ev.dead = true
		e.now = ev.at
		e.steps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain (or MaxSteps is hit). It returns
// the final virtual time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
		if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then sets the
// virtual clock to deadline. Events beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
		if e.MaxSteps != 0 && e.steps >= e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
		}
	}
	if deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// peek returns the timestamp of the earliest live pending event.
func (e *Engine) peek() (time.Duration, bool) {
	for e.pending.Len() > 0 {
		ev := e.pending[0]
		if ev.dead {
			heap.Pop(&e.pending)
			continue
		}
		return ev.at, true
	}
	return 0, false
}
