package sim

import (
	"testing"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at1, at2 time.Duration
	e.After(5*time.Millisecond, func() {
		at1 = e.Now()
		e.After(7*time.Millisecond, func() { at2 = e.Now() })
	})
	e.Run()
	if at1 != 5*time.Millisecond || at2 != 12*time.Millisecond {
		t.Fatalf("at1=%v at2=%v, want 5ms and 12ms", at1, at2)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Millisecond, func() {})
	})
	e.Run()
}

func TestTimerStopCancelsEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10*time.Millisecond, func() { ran++ })
	e.At(20*time.Millisecond, func() { ran++ })
	e.At(30*time.Millisecond, func() { ran++ })
	e.RunUntil(20 * time.Millisecond)
	if ran != 2 {
		t.Fatalf("ran %d events by 20ms, want 2", ran)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("now = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d total, want 3", ran)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42 * time.Millisecond)
	if e.Now() != 42*time.Millisecond {
		t.Fatalf("now = %v, want 42ms", e.Now())
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	e.At(0, func() {})
	if !e.Step() {
		t.Fatal("Step with a pending event returned false")
	}
	if e.Step() {
		t.Fatal("Step after draining returned true")
	}
}

func TestEnginePendingIgnoresCancelled(t *testing.T) {
	e := NewEngine()
	tm := e.At(time.Millisecond, func() {})
	e.At(2*time.Millisecond, func() {})
	tm.Stop()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestEngineStepsCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", e.Steps())
	}
}
