package iosched

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestFCFSOrder(t *testing.T) {
	q := NewFCFS()
	for i := 0; i < 5; i++ {
		q.Push(Request{Pos: int64(5 - i), Payload: i})
	}
	for i := 0; i < 5; i++ {
		r := q.Pop()
		if r.Payload.(int) != i {
			t.Fatalf("FCFS pop %d returned payload %v", i, r.Payload)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestFCFSPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty FCFS did not panic")
		}
	}()
	NewFCFS().Pop()
}

func TestCLOOKSweepsAscending(t *testing.T) {
	q := NewCLOOK()
	positions := []int64{50, 10, 40, 20, 30}
	for _, p := range positions {
		q.Push(Request{Pos: p})
	}
	var got []int64
	for q.Len() > 0 {
		got = append(got, q.Pop().Pos)
	}
	want := []int64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep order %v, want %v", got, want)
		}
	}
}

func TestCLOOKWrapsToLowest(t *testing.T) {
	q := NewCLOOK()
	q.Push(Request{Pos: 100})
	if q.Pop().Pos != 100 {
		t.Fatal("first pop")
	}
	// Head is now 100; lower-positioned arrivals must wait for wrap but
	// are served in ascending order after wrapping.
	q.Push(Request{Pos: 10})
	q.Push(Request{Pos: 50})
	q.Push(Request{Pos: 150})
	var got []int64
	for q.Len() > 0 {
		got = append(got, q.Pop().Pos)
	}
	want := []int64{150, 10, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after wrap = %v, want %v", got, want)
		}
	}
}

func TestCLOOKEqualPositionsFIFO(t *testing.T) {
	q := NewCLOOK()
	for i := 0; i < 4; i++ {
		q.Push(Request{Pos: 7, Payload: i})
	}
	for i := 0; i < 4; i++ {
		if got := q.Pop().Payload.(int); got != i {
			t.Fatalf("equal-pos pop %d returned %d", i, got)
		}
	}
}

func TestCLOOKStaticBatchSortsAscendingFromHead(t *testing.T) {
	prop := func(raw []int64) bool {
		q := NewCLOOK()
		for _, p := range raw {
			if p < 0 {
				p = -p
			}
			q.Push(Request{Pos: p})
		}
		var got []int64
		for q.Len() > 0 {
			got = append(got, q.Pop().Pos)
		}
		// From head 0, a static batch must come out fully sorted.
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCLOOKConservation(t *testing.T) {
	prop := func(raw []int64) bool {
		q := NewCLOOK()
		pushed := map[int64]int{}
		for _, p := range raw {
			q.Push(Request{Pos: p})
			pushed[p]++
		}
		popped := map[int64]int{}
		for q.Len() > 0 {
			popped[q.Pop().Pos]++
		}
		if len(pushed) != len(popped) {
			return false
		}
		for k, v := range pushed {
			if popped[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewByName(t *testing.T) {
	if s, err := New("fcfs"); err != nil || s.Name() != "fcfs" {
		t.Fatalf("New(fcfs) = %v, %v", s, err)
	}
	if s, err := New("clook"); err != nil || s.Name() != "clook" {
		t.Fatalf("New(clook) = %v, %v", s, err)
	}
	if _, err := New("elevator"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestLimiterAdmitsUpToMax(t *testing.T) {
	l := NewLimiter(NewFCFS(), 2)
	_, ok := l.Submit(Request{Pos: 1})
	if !ok {
		t.Fatal("first submit should admit")
	}
	_, ok = l.Submit(Request{Pos: 2})
	if !ok {
		t.Fatal("second submit should admit")
	}
	_, ok = l.Submit(Request{Pos: 3})
	if ok {
		t.Fatal("third submit should queue")
	}
	if l.Outstanding() != 2 || l.Queued() != 1 {
		t.Fatalf("outstanding=%d queued=%d", l.Outstanding(), l.Queued())
	}
	next, ok := l.Done()
	if !ok || next.Pos != 3 {
		t.Fatalf("Done should release queued request, got %v %v", next, ok)
	}
	if _, ok := l.Done(); ok {
		t.Fatal("Done with empty queue should not return a request")
	}
	l.Done()
	if l.Outstanding() != 0 {
		t.Fatalf("outstanding=%d, want 0", l.Outstanding())
	}
}

func TestLimiterDoneUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Done without outstanding did not panic")
		}
	}()
	NewLimiter(NewFCFS(), 1).Done()
}

func TestLimiterUsesSchedulerDiscipline(t *testing.T) {
	l := NewLimiter(NewCLOOK(), 1)
	l.Submit(Request{Pos: 0})
	l.Submit(Request{Pos: 30})
	l.Submit(Request{Pos: 10})
	l.Submit(Request{Pos: 20})
	var got []int64
	for {
		r, ok := l.Done()
		if !ok {
			break
		}
		got = append(got, r.Pos)
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("release order %v, want %v", got, want)
		}
	}
}

func TestCLOOKReducesSeekDistanceVsFCFS(t *testing.T) {
	// The point of the elevator: total head travel over a static batch
	// must be well below FCFS arrival order.
	rng := uint64(2024)
	next := func() int64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int64(rng % 1_000_000)
	}
	positions := make([]int64, 200)
	for i := range positions {
		positions[i] = next()
	}
	travel := func(s Scheduler) int64 {
		for _, p := range positions {
			s.Push(Request{Pos: p})
		}
		var total, head int64
		for s.Len() > 0 {
			p := s.Pop().Pos
			d := p - head
			if d < 0 {
				d = -d
			}
			total += d
			head = p
		}
		return total
	}
	fcfs := travel(NewFCFS())
	clook := travel(NewCLOOK())
	if clook*5 > fcfs {
		t.Fatalf("CLOOK travel %d not well below FCFS %d", clook, fcfs)
	}
}
