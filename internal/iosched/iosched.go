// Package iosched implements the request-queue scheduling disciplines
// used in the experiments: CLOOK for the host device driver and FCFS for
// the back-end per-disk queues, matching the paper's configuration
// ("the host device driver used the clook policy, the back-end device
// drivers inside the array used fcfs").
package iosched

import (
	"fmt"
	"sort"
)

// Request is a schedulable unit: an opaque payload ordered by position.
type Request struct {
	Pos     int64 // position key (array or disk byte address)
	Payload interface{}
}

// Scheduler is a queue discipline over Requests.
type Scheduler interface {
	// Push enqueues a request.
	Push(Request)
	// Pop removes and returns the next request per the discipline.
	// It panics when empty; check Len first.
	Pop() Request
	// Len returns the number of queued requests.
	Len() int
	// Name identifies the discipline.
	Name() string
}

// FCFS is a first-come-first-served queue.
type FCFS struct {
	q []Request
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Name returns "fcfs".
func (f *FCFS) Name() string { return "fcfs" }

// Push enqueues r at the tail.
func (f *FCFS) Push(r Request) { f.q = append(f.q, r) }

// Len returns the queue length.
func (f *FCFS) Len() int { return len(f.q) }

// Pop dequeues from the head.
func (f *FCFS) Pop() Request {
	if len(f.q) == 0 {
		panic("iosched: Pop from empty FCFS queue")
	}
	r := f.q[0]
	// Avoid leaking the payload reference.
	f.q[0] = Request{}
	f.q = f.q[1:]
	if len(f.q) == 0 {
		f.q = nil // let the backing array be collected
	}
	return r
}

// CLOOK is a circular-LOOK elevator: it serves requests in ascending
// position order from the current head position, and when none remain
// ahead it jumps back to the lowest-positioned request and continues
// ascending. Requests at equal positions are served in arrival order.
type CLOOK struct {
	q    []Request // sorted by (Pos, seq)
	seqs []uint64
	seq  uint64
	head int64
}

// NewCLOOK returns an empty CLOOK queue with head position 0.
func NewCLOOK() *CLOOK { return &CLOOK{} }

// Name returns "clook".
func (c *CLOOK) Name() string { return "clook" }

// Len returns the queue length.
func (c *CLOOK) Len() int { return len(c.q) }

// Push inserts r in sorted order.
func (c *CLOOK) Push(r Request) {
	seq := c.seq
	c.seq++
	i := sort.Search(len(c.q), func(i int) bool {
		if c.q[i].Pos != r.Pos {
			return c.q[i].Pos > r.Pos
		}
		return c.seqs[i] > seq
	})
	c.q = append(c.q, Request{})
	c.seqs = append(c.seqs, 0)
	copy(c.q[i+1:], c.q[i:])
	copy(c.seqs[i+1:], c.seqs[i:])
	c.q[i] = r
	c.seqs[i] = seq
}

// Pop returns the next request at or beyond the head position, wrapping
// to the lowest position when none remain ahead, and advances the head.
func (c *CLOOK) Pop() Request {
	if len(c.q) == 0 {
		panic("iosched: Pop from empty CLOOK queue")
	}
	i := sort.Search(len(c.q), func(i int) bool { return c.q[i].Pos >= c.head })
	if i == len(c.q) {
		i = 0 // wrap: sweep restarts at the lowest position
	}
	r := c.q[i]
	copy(c.q[i:], c.q[i+1:])
	copy(c.seqs[i:], c.seqs[i+1:])
	c.q[len(c.q)-1] = Request{}
	c.q = c.q[:len(c.q)-1]
	c.seqs = c.seqs[:len(c.seqs)-1]
	c.head = r.Pos
	return r
}

// Head returns the current sweep position (for tests/inspection).
func (c *CLOOK) Head() int64 { return c.head }

// New constructs a scheduler by name ("fcfs" or "clook").
func New(name string) (Scheduler, error) {
	switch name {
	case "fcfs":
		return NewFCFS(), nil
	case "clook":
		return NewCLOOK(), nil
	default:
		return nil, fmt.Errorf("iosched: unknown scheduler %q", name)
	}
}

// Limiter caps the number of outstanding operations, queueing the excess
// behind a Scheduler. The paper limits concurrently active client
// requests inside the array to the number of physical disks.
type Limiter struct {
	sched       Scheduler
	outstanding int
	max         int
}

// NewLimiter wraps sched with an outstanding-op cap of max (>= 1).
func NewLimiter(sched Scheduler, max int) *Limiter {
	if max < 1 {
		panic(fmt.Sprintf("iosched: limiter max %d must be >= 1", max))
	}
	return &Limiter{sched: sched, max: max}
}

// Submit offers a request. It returns the request to start now (admit)
// if a slot is free, otherwise queues it and returns false.
func (l *Limiter) Submit(r Request) (Request, bool) {
	if l.outstanding < l.max {
		l.outstanding++
		return r, true
	}
	l.sched.Push(r)
	return Request{}, false
}

// Done signals completion of one outstanding request and returns the
// next queued request to start, if any.
func (l *Limiter) Done() (Request, bool) {
	if l.outstanding <= 0 {
		panic("iosched: Done without outstanding request")
	}
	l.outstanding--
	if l.sched.Len() > 0 && l.outstanding < l.max {
		l.outstanding++
		return l.sched.Pop(), true
	}
	return Request{}, false
}

// Outstanding returns the number of admitted, unfinished requests.
func (l *Limiter) Outstanding() int { return l.outstanding }

// Queued returns the number of requests waiting for a slot.
func (l *Limiter) Queued() int { return l.sched.Len() }
