// Package obs is the live-path observability kit: lock-free
// log-bucketed latency histograms with percentile extraction, a
// fixed-size ring of per-operation trace events, and a named registry
// with JSON HTTP handlers. The paper's entire argument is a latency
// distribution — AFRAID is judged by mean and 95th-percentile response
// time per trace (§4) — and this package makes those distributions
// observable on the production store path, not just in the simulator.
//
// Recording is allocation-free: Observe is a bucket index computation
// plus four atomic adds, cheap enough to leave on permanently in the
// request hot path.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout is HDR-style log-linear over nanoseconds. Values below
// subCount land in unit-wide buckets; above that, each power-of-two
// octave is split into subCount equal sub-buckets, giving ~6% relative
// resolution from nanoseconds to the full range of time.Duration with a
// fixed array of 976 counters (7.6 KB) per histogram.
const (
	subBits    = 4
	subCount   = 1 << subBits
	numBuckets = (63 - subBits + 2) * subCount
)

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns uint64) int {
	if ns < subCount {
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 // >= subBits
	sub := int(ns>>uint(exp-subBits)) & (subCount - 1)
	return subCount + (exp-subBits)*subCount + sub
}

// bucketBound returns the inclusive lower bound of a bucket.
func bucketBound(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	k := i - subCount
	exp := subBits + k/subCount
	sub := k % subCount
	return uint64(subCount+sub) << uint(exp-subBits)
}

// bucketMid returns a representative value for a bucket: the midpoint
// of its range, which bounds quantile error at half the bucket width
// (~3% relative).
func bucketMid(i int) uint64 {
	lo := bucketBound(i)
	width := uint64(1)
	if i >= subCount {
		exp := subBits + (i-subCount)/subCount
		width = uint64(1) << uint(exp-subBits)
	}
	return lo + width/2
}

// Histogram is a lock-free latency histogram. The zero value is ready
// to use; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram's counters at one (approximate) moment.
// Concurrent Observes may straddle the copy; each observation is still
// counted exactly once across successive snapshots.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	s.MaxNS = h.maxNS.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Summary condenses the histogram into the fixed percentile set the
// debug endpoints and STAT responses report. Durations are microseconds
// because device-class latencies sit between 10µs (RAM-backed tests)
// and tens of ms (loaded spindles) — ns would drown the reader in
// digits, ms would round the interesting cases to zero.
func (h *Histogram) Summary() Summary {
	s := h.Snapshot()
	return s.Summary()
}

// Snapshot is an immutable copy of a Histogram, safe to merge and query
// without synchronization.
type Snapshot struct {
	Count   uint64
	SumNS   uint64
	MaxNS   uint64
	Buckets [numBuckets]uint64
}

// Merge folds another snapshot into this one, as if every observation
// had landed in a single histogram.
func (s *Snapshot) Merge(o *Snapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the value at quantile q in [0, 1], or 0 for an empty
// snapshot. The result is the midpoint of the bucket holding the rank,
// so the relative error is bounded by half the bucket width.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen >= rank {
			mid := bucketMid(i)
			if mid > s.MaxNS && s.MaxNS > 0 {
				mid = s.MaxNS // don't report beyond the observed max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(s.MaxNS)
}

// Mean returns the arithmetic mean of the observations, exact (not
// bucketed) because the sum is tracked separately.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Max returns the largest observation.
func (s *Snapshot) Max() time.Duration { return time.Duration(s.MaxNS) }

// Summary is the JSON shape served by the debug endpoints.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summary condenses the snapshot; see Histogram.Summary.
func (s *Snapshot) Summary() Summary {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return Summary{
		Count:  s.Count,
		MeanUS: us(s.Mean()),
		P50US:  us(s.Quantile(0.50)),
		P95US:  us(s.Quantile(0.95)),
		P99US:  us(s.Quantile(0.99)),
		MaxUS:  us(s.Max()),
	}
}
