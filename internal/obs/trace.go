package obs

import (
	"sync"
	"time"
)

// Event is one traced operation on the live path. Phase durations are
// per-op aggregates: Queue is time spent waiting for a worker (server
// side), Lock is stripe-lock acquisition wait, Dev is time in device
// I/O, and Total is the end-to-end latency the caller saw. Phases a
// layer cannot see are left zero.
type Event struct {
	Seq   uint64        `json:"seq"`
	Op    string        `json:"op"`
	Off   int64         `json:"off"`
	Len   int64         `json:"len"`
	Start time.Time     `json:"start"`
	Queue time.Duration `json:"queue_ns,omitempty"`
	Lock  time.Duration `json:"lock_ns,omitempty"`
	Dev   time.Duration `json:"device_ns,omitempty"`
	Total time.Duration `json:"total_ns"`
	Err   string        `json:"err,omitempty"`
}

// Ring is a fixed-size buffer of the most recent trace events. Record
// takes a short mutex-guarded copy (no allocation after construction);
// at op rates the store path sustains, contention on it is negligible
// next to the device I/O each event describes.
type Ring struct {
	mu  sync.Mutex
	seq uint64
	buf []Event
}

// NewRing returns a ring holding the last size events (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]Event, size)}
}

// Record appends one event, overwriting the oldest when full. The
// event's Seq field is assigned here.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	e.Seq = r.seq
	r.buf[r.seq%uint64(len(r.buf))] = e
	r.seq++
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.seq
	if r.seq > n {
		start = r.seq - n
		count = n
	}
	out := make([]Event, 0, count)
	for s := start; s < r.seq; s++ {
		out = append(out, r.buf[s%n])
	}
	return out
}
