package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestBucketMappingMonotonic(t *testing.T) {
	// Every value must fall inside its bucket's [bound, next bound)
	// range, and indices must never decrease as values grow.
	vals := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096,
		1e6, 1e9, 1e12, 1 << 40, (1 << 62) + 12345, math.MaxInt64}
	last := -1
	for _, v := range vals {
		i := bucketOf(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, i, numBuckets)
		}
		if i < last {
			t.Fatalf("bucketOf(%d) = %d decreased from %d", v, i, last)
		}
		last = i
		if lo := bucketBound(i); v < lo {
			t.Errorf("value %d below its bucket %d bound %d", v, i, lo)
		}
		if i+1 < numBuckets {
			if hi := bucketBound(i + 1); v >= hi {
				t.Errorf("value %d at or above next bucket bound %d", v, hi)
			}
		}
	}
}

func TestBucketResolution(t *testing.T) {
	// Log-linear with 16 sub-buckets per octave bounds relative error
	// at half a bucket width: ~3.2%.
	for _, v := range []uint64{100, 1_000, 50_000, 1_000_000, 123_456_789} {
		mid := bucketMid(bucketOf(v))
		relErr := math.Abs(float64(mid)-float64(v)) / float64(v)
		if relErr > 0.04 {
			t.Errorf("bucketMid(%d) = %d, relative error %.3f > 4%%", v, mid, relErr)
		}
	}
}

func TestQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1µs..1000µs: p50 ≈ 500µs, p95 ≈ 950µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	check := func(q, wantUS float64) {
		t.Helper()
		got := float64(s.Quantile(q)) / float64(time.Microsecond)
		if math.Abs(got-wantUS)/wantUS > 0.05 {
			t.Errorf("q%.2f = %.1fµs, want %.1fµs ± 5%%", q, got, wantUS)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if got := s.Max(); got != 1000*time.Microsecond {
		t.Errorf("max = %v, want 1ms", got)
	}
	if got := s.Mean(); got < 495*time.Microsecond || got > 505*time.Microsecond {
		t.Errorf("mean = %v, want ~500.5µs", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	empty := h.Snapshot()
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(42 * time.Millisecond)
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got <= 0 || got > 42*time.Millisecond {
			t.Errorf("single-sample q%v = %v, want within (0, 42ms]", q, got)
		}
	}
	h.Observe(-time.Second) // negative counts as zero, must not panic
	if got := h.Count(); got != 2 {
		t.Errorf("count after negative observe = %d, want 2", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if got := sa.Max(); got != time.Second {
		t.Errorf("merged max = %v, want 1s", got)
	}
	// Half the mass at 1ms, half at 1s: p25 in the low mode, p75 high.
	if got := sa.Quantile(0.25); got > 2*time.Millisecond {
		t.Errorf("merged p25 = %v, want ~1ms", got)
	}
	if got := sa.Quantile(0.75); got < 900*time.Millisecond {
		t.Errorf("merged p75 = %v, want ~1s", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for i := range s.Buckets {
		sum += s.Buckets[i]
	}
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 {
		t.Fatalf("empty ring len = %d", r.Len())
	}
	for i := 0; i < 6; i++ {
		r.Record(Event{Op: "WRITE", Off: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 || r.Len() != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// Oldest first, and only the most recent four survive the wrap.
	for i, e := range evs {
		if want := int64(i + 2); e.Off != want || e.Seq != uint64(want) {
			t.Errorf("event %d: off=%d seq=%d, want %d", i, e.Off, e.Seq, want)
		}
	}
}

func TestRegistryAndHandlers(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("read")
	if reg.Histogram("read") != h {
		t.Fatal("second lookup returned a different histogram")
	}
	h.Observe(3 * time.Millisecond)
	reg.Ring("ops", 8).Record(Event{Op: "READ", Len: 512, Total: 3 * time.Millisecond})

	rec := httptest.NewRecorder()
	HistogramHandler(Section{Name: "server", Reg: reg}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/histograms", nil))
	var hist map[string]map[string]Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatalf("histogram dump is not JSON: %v", err)
	}
	sum := hist["server"]["read"]
	if sum.Count != 1 || sum.P95US <= 0 {
		t.Fatalf("histogram dump: %+v, want count=1 and positive p95", sum)
	}

	rec = httptest.NewRecorder()
	TraceHandler(Section{Name: "server", Reg: reg}).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	var traces map[string]map[string][]Event
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("trace dump is not JSON: %v", err)
	}
	if evs := traces["server"]["ops"]; len(evs) != 1 || evs[0].Op != "READ" {
		t.Fatalf("trace dump: %+v, want one READ event", traces)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 37 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += time.Microsecond
		}
	})
}
