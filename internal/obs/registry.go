package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Registry is a named collection of histograms and trace rings, one per
// instrumented layer (the server keeps one, the store keeps one). The
// lock guards only registration; recording goes straight to the
// lock-free histograms.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	rings    map[string]*Ring
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		rings:    make(map[string]*Ring),
		counters: make(map[string]*Counter),
	}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Ring returns the named trace ring, creating it with the given size on
// first use (later sizes are ignored).
func (r *Registry) Ring(name string, size int) *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.rings[name]
	if g == nil {
		g = NewRing(size)
		r.rings[name] = g
	}
	return g
}

// Summaries snapshots every histogram in the registry.
func (r *Registry) Summaries() map[string]Summary {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	out := make(map[string]Summary, len(hists))
	for name, h := range hists {
		out[name] = h.Summary()
	}
	return out
}

// Traces snapshots every trace ring in the registry, oldest event
// first.
func (r *Registry) Traces() map[string][]Event {
	r.mu.Lock()
	rings := make(map[string]*Ring, len(r.rings))
	for name, g := range r.rings {
		rings[name] = g
	}
	r.mu.Unlock()
	out := make(map[string][]Event, len(rings))
	for name, g := range rings {
		out[name] = g.Events()
	}
	return out
}

// Section names one registry inside a multi-layer debug dump.
type Section struct {
	Name string
	Reg  *Registry
}

// HistogramHandler serves a JSON object mapping each section to its
// histogram summaries — the /debug/histograms endpoint.
func HistogramHandler(sections ...Section) http.Handler {
	return dumpHandler(sections, func(reg *Registry) any { return reg.Summaries() })
}

// TraceHandler serves a JSON object mapping each section to its
// recent trace events — the /debug/trace endpoint.
func TraceHandler(sections ...Section) http.Handler {
	return dumpHandler(sections, func(reg *Registry) any { return reg.Traces() })
}

func dumpHandler(sections []Section, dump func(*Registry) any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		body := make(map[string]any, len(sections))
		for _, s := range sections {
			body[s.Name] = dump(s.Reg)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body) // map keys marshal sorted, so output is stable
	})
}
