package obs

import "sync/atomic"

// Counter is a monotonically increasing event count — the scalar
// sibling of Histogram for events whose *number* matters but whose
// latency does not (hedge fires, retries, quarantines). Lock-free like
// the histograms: recording is a single atomic add.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Counters snapshots every counter in the registry.
func (r *Registry) Counters() map[string]uint64 {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	r.mu.Unlock()
	out := make(map[string]uint64, len(counters))
	for name, c := range counters {
		out[name] = c.Value()
	}
	return out
}
