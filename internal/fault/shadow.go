package fault

// shadow is the harness's reference model of the store's client address
// space: the content of every acknowledged write, plus a per-byte
// determinacy flag. A byte starts determinate-zero (fresh devices read
// back zeros); a successful write makes its range determinate with the
// new content; a *failed* write makes its range indeterminate — the
// store may hold the old bytes, the new ones, or a torn mix, and the
// stripes it covers may carry inconsistent parity (the RAID 5 write
// hole). Those stripes are recorded as hole stripes: the only stripes,
// beyond the dirty set, where a disk loss may legally surface garbage.
type shadow struct {
	data []byte
	det  []bool
	sdb  int64 // stripe data bytes: client bytes per stripe

	holes map[int64]bool // stripes ever covered by a failed write
}

func newShadow(capacity, stripeDataBytes int64) *shadow {
	sh := &shadow{
		data:  make([]byte, capacity),
		det:   make([]bool, capacity),
		sdb:   stripeDataBytes,
		holes: make(map[int64]bool),
	}
	for i := range sh.det {
		sh.det[i] = true
	}
	return sh
}

// write records an acknowledged write.
func (s *shadow) write(off int64, p []byte) {
	copy(s.data[off:], p)
	for i := off; i < off+int64(len(p)); i++ {
		s.det[i] = true
	}
}

// clobber records a failed write: the range is indeterminate and every
// stripe it touches becomes a hole stripe.
func (s *shadow) clobber(off, n int64) {
	for i := off; i < off+n; i++ {
		s.det[i] = false
	}
	for st := off / s.sdb; st <= (off+n-1)/s.sdb; st++ {
		s.holes[st] = true
	}
}

// distrust marks a range indeterminate without declaring a hole — used
// after a repair reconstructs through possibly-stale parity.
func (s *shadow) distrust(off, n int64) {
	if off < 0 {
		off = 0
	}
	if off+n > int64(len(s.det)) {
		n = int64(len(s.det)) - off
	}
	for i := off; i < off+n; i++ {
		s.det[i] = false
	}
}

// zero records a repair zero-filling a damaged range: the content is
// now determinately zero.
func (s *shadow) zero(off, n int64) {
	for i := off; i < off+n; i++ {
		s.data[i] = 0
		s.det[i] = true
	}
}

// diff compares a stripe's read-back bytes against the model and
// returns the offset of the first determinate mismatch, or -1.
func (s *shadow) diff(stripe int64, got []byte) int64 {
	base := stripe * s.sdb
	for i, b := range got {
		off := base + int64(i)
		if s.det[off] && s.data[off] != b {
			return off
		}
	}
	return -1
}
