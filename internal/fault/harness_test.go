package fault

import (
	"math/rand"
	"strings"
	"testing"

	"afraid/internal/core"
)

func runOne(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := RunEpisode(cfg)
	if err != nil {
		t.Fatalf("episode (seed %d, mode %v): %v", cfg.Seed, cfg.Mode, err)
	}
	for _, v := range res.Violations {
		t.Errorf("episode (seed %d, mode %v) violation: %s", cfg.Seed, cfg.Mode, v)
	}
	return res
}

func TestEpisodePlainWorkload(t *testing.T) {
	for _, m := range []core.Mode{core.Afraid, core.Raid5, core.Raid6, core.Afraid6, core.Raid0} {
		runOne(t, Config{Seed: 1, Mode: m})
	}
}

func TestEpisodeCrashRecover(t *testing.T) {
	for _, m := range []core.Mode{core.Afraid, core.Raid5, core.Raid6, core.Afraid6} {
		res := runOne(t, Config{Seed: 2, Mode: m, PowerCut: true})
		if !res.Crashed {
			t.Errorf("mode %v: episode did not crash", m)
		}
	}
}

func TestEpisodeCrashThenDiskLoss(t *testing.T) {
	for _, m := range []core.Mode{core.Afraid, core.Raid5, core.Afraid6} {
		res := runOne(t, Config{Seed: 3, Mode: m, PowerCut: true, DiskFails: 1, Repair: true})
		if len(res.FailedDisks) == 0 {
			t.Errorf("mode %v: no disk failed", m)
		}
	}
}

func TestEpisodeRaid6DoubleLoss(t *testing.T) {
	for _, m := range []core.Mode{core.Raid6, core.Afraid6} {
		res := runOne(t, Config{Seed: 4, Mode: m, PowerCut: true, DiskFails: 2, Repair: true})
		if len(res.FailedDisks) < 2 {
			t.Errorf("mode %v: expected 2 failed disks, got %v", m, res.FailedDisks)
		}
	}
}

func TestEpisodeTransientMidWorkload(t *testing.T) {
	for _, m := range []core.Mode{core.Afraid, core.Raid5, core.Raid6} {
		runOne(t, Config{Seed: 5, Mode: m, Transients: 1, Repair: true})
	}
}

func TestEpisodeDropNVRAM(t *testing.T) {
	res := runOne(t, Config{Seed: 6, Mode: core.Afraid, PowerCut: true, DropNVRAM: true})
	if !res.NVRAMRebuild {
		t.Error("dropping the marking memory should force the full-array rebuild path")
	}
}

func TestEpisodeDropNVRAMThenDiskLoss(t *testing.T) {
	// The paper's worst case: crash destroys the marking memory AND a
	// disk fails. Every stripe is presumed unredundant, so any loss is
	// legal — but the harness still audits that the loss is *reported*
	// and that reads never silently diverge.
	res := runOne(t, Config{Seed: 7, Mode: core.Afraid, PowerCut: true, DropNVRAM: true, DiskFails: 1, Repair: true})
	if !res.NVRAMRebuild {
		t.Error("expected NVRAM rebuild")
	}
}

func TestEpisodeDeferBothParities(t *testing.T) {
	runOne(t, Config{Seed: 8, Mode: core.Afraid6, DeferBothParities: true, PowerCut: true, DiskFails: 1, Repair: true})
}

// TestEpisodeSeededRepro: the same seed must reproduce the same
// workload outcome (acked-write count), making violations replayable.
func TestEpisodeSeededRepro(t *testing.T) {
	cfg := Config{Seed: 9, Mode: core.Afraid, PowerCut: true}
	a, err := RunEpisode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEpisode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AckedWrites != b.AckedWrites || a.Crashed != b.Crashed {
		t.Fatalf("seed 9 not reproducible: %+v vs %+v", a, b)
	}
}

// TestHarnessDetectsCorruption proves the checker is not vacuous: a bit
// flipped behind the store's back in a clean, determinate stripe must
// surface as a violation.
func TestHarnessDetectsCorruption(t *testing.T) {
	cfg := Config{Seed: 10, Mode: core.Afraid}.withDefaults()
	res := &Result{Seed: cfg.Seed, Mode: cfg.Mode}
	e := &episode{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		res:        res,
		line:       NewPowerLine(),
		dirtyUnion: make(map[int64]bool),
		damaged:    make(map[int64]bool),
	}
	diskSize := cfg.StripesPerDisk * cfg.StripeUnit
	e.backings = make([]core.BlockDevice, cfg.Disks)
	for i := range e.backings {
		e.backings[i] = core.NewMemDevice(diskSize)
	}
	e.devs = Wrap(e.backings, cfg.Seed)
	for _, d := range e.devs {
		d.OnLine(e.line)
	}
	st, err := core.Open(Devices(e.devs), &core.MemNVRAM{}, core.Options{Mode: cfg.Mode, StripeUnit: cfg.StripeUnit, ScrubIdle: cfg.ScrubIdle})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e.st = st
	e.geo = st.Geometry()
	e.sh = newShadow(st.Capacity(), e.geo.StripeDataBytes())

	if _, err := e.runWorkload(cfg.Ops); err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("clean workload produced violations: %v", res.Violations)
	}

	// Corrupt one data byte on disk 0 behind the store's back.
	var one [1]byte
	e.backings[0].ReadAt(one[:], 0)
	one[0] ^= 0xFF
	e.backings[0].WriteAt(one[:], 0)

	if err := e.verify("tamper", false); err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("harness failed to detect out-of-band corruption")
	}
	if !strings.Contains(res.Violations[0], "diverged") {
		t.Fatalf("unexpected violation text: %v", res.Violations)
	}
}
