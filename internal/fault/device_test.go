package fault

import (
	"bytes"
	"errors"
	"testing"

	"afraid/internal/core"
)

func TestTriggersDeterministic(t *testing.T) {
	fire := func(seed int64) []uint64 {
		d := New(core.NewMemDevice(4096), seed)
		d.AddRule(Rule{When: All(Writes(), Prob(0.3)), Do: Transient(nil)})
		var hits []uint64
		buf := make([]byte, 16)
		for i := 0; i < 100; i++ {
			if _, err := d.WriteAt(buf, 0); err != nil {
				hits = append(hits, uint64(i))
			}
		}
		return hits
	}
	a, b := fire(42), fire(42)
	if len(a) == 0 {
		t.Fatal("Prob(0.3) never fired in 100 writes")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
}

func TestAfterEveryInRange(t *testing.T) {
	d := New(core.NewMemDevice(4096), 1)
	d.AddRule(Rule{When: All(Writes(), After(3)), Do: Transient(nil), Max: 1})
	buf := make([]byte, 8)
	for i := 1; i <= 3; i++ {
		if _, err := d.WriteAt(buf, 0); err != nil {
			t.Fatalf("write %d failed before After(3): %v", i, err)
		}
	}
	if _, err := d.WriteAt(buf, 0); err == nil {
		t.Fatal("4th write should trip After(3)")
	}
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("Max:1 rule fired twice: %v", err)
	}

	d2 := New(core.NewMemDevice(4096), 1)
	d2.AddRule(Rule{When: InRange(100, 50), Do: Transient(nil)})
	if _, err := d2.WriteAt(buf, 0); err != nil {
		t.Fatalf("write outside range: %v", err)
	}
	if _, err := d2.WriteAt(buf, 145); err == nil {
		t.Fatal("write overlapping [100,150) should fail")
	}
	if _, err := d2.ReadAt(buf, 120); err == nil {
		t.Fatal("read inside [100,150) should fail")
	}
}

func TestTransientWrapsDeviceFailed(t *testing.T) {
	if !errors.Is(ErrInjected, core.ErrDeviceFailed) {
		t.Fatal("ErrInjected must wrap core.ErrDeviceFailed")
	}
	if errors.Is(ErrPowerCut, core.ErrDeviceFailed) {
		t.Fatal("ErrPowerCut must NOT wrap core.ErrDeviceFailed (a power cut is not a disk failure)")
	}
	if errors.Is(ErrTorn, core.ErrDeviceFailed) {
		t.Fatal("ErrTorn must NOT wrap core.ErrDeviceFailed")
	}
}

func TestFailStopAndHeal(t *testing.T) {
	d := New(core.NewMemDevice(4096), 7)
	d.AddRule(Rule{When: After(2), Do: FailStop(), Max: 1})
	buf := make([]byte, 8)
	d.WriteAt(buf, 0)
	d.WriteAt(buf, 0)
	if _, err := d.WriteAt(buf, 0); !errors.Is(err, core.ErrDeviceFailed) {
		t.Fatalf("expected fail-stop, got %v", err)
	}
	if !d.Failed() {
		t.Fatal("device should report failed")
	}
	if _, err := d.ReadAt(buf, 0); !errors.Is(err, core.ErrDeviceFailed) {
		t.Fatalf("failed device must reject reads, got %v", err)
	}
	d.Heal()
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("healed device errored: %v", err)
	}
}

func TestTornWritePersistsPrefixOnly(t *testing.T) {
	mem := core.NewMemDevice(4096)
	d := New(mem, 3)
	d.AddRule(Rule{When: Every(1), Do: TornWrite(), Max: 1})
	p := bytes.Repeat([]byte{0xAA}, 256)
	if _, err := d.WriteAt(p, 0); !errors.Is(err, ErrTorn) {
		t.Fatalf("expected ErrTorn, got %v", err)
	}
	got := make([]byte, 256)
	if _, err := mem.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	n := 0
	for n < 256 && got[n] == 0xAA {
		n++
	}
	if n == 256 {
		t.Fatal("torn write persisted the full buffer")
	}
	for _, b := range got[n:] {
		if b != 0 {
			t.Fatal("torn write left non-prefix bytes")
		}
	}
}

func TestFlipBitSilentCorruption(t *testing.T) {
	mem := core.NewMemDevice(4096)
	d := New(mem, 9)
	d.AddRule(Rule{Do: FlipBit(), Max: 1})
	p := bytes.Repeat([]byte{0x55}, 64)
	if _, err := d.WriteAt(p, 0); err != nil {
		t.Fatalf("FlipBit must not error: %v", err)
	}
	got := make([]byte, 64)
	mem.ReadAt(got, 0)
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ p[i])
	}
	if diff != 1 {
		t.Fatalf("expected exactly 1 flipped bit, got %d", diff)
	}
	if d.Stats().FlipBits != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestPowerLineFuse(t *testing.T) {
	mem := core.NewMemDevice(4096)
	line := NewPowerLine()
	d := New(mem, 11).OnLine(line)
	line.CutAfter(3)
	p := bytes.Repeat([]byte{0xFF}, 128)
	for i := 0; i < 2; i++ {
		if _, err := d.WriteAt(p, int64(i)*128); err != nil {
			t.Fatalf("write %d before fuse: %v", i, err)
		}
	}
	if _, err := d.WriteAt(p, 256); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("3rd write should blow the fuse, got %v", err)
	}
	if !line.IsCut() {
		t.Fatal("line should be cut")
	}
	// The victim write landed at most a strict prefix.
	got := make([]byte, 128)
	mem.ReadAt(got, 256)
	n := 0
	for n < 128 && got[n] == 0xFF {
		n++
	}
	if n == 128 {
		t.Fatal("fused write persisted fully")
	}
	// Reads and writes reject until restore.
	if _, err := d.ReadAt(got, 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("read on cut line: %v", err)
	}
	line.Restore()
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
	if got[0] != 0xFF {
		t.Fatal("pre-cut write lost")
	}
}

// TestStoreAbsorbsInjectedTransient is the satellite-1 regression: a
// transient error wrapping core.ErrDeviceFailed (not equal to it) must
// move the store to degraded mode via errors.Is, and the interrupted
// write must be retried and acknowledged.
func TestStoreAbsorbsInjectedTransient(t *testing.T) {
	backings := make([]core.BlockDevice, 4)
	for i := range backings {
		backings[i] = core.NewMemDevice(16 << 10)
	}
	devs := Wrap(backings, 21)
	devs[2].AddRule(Rule{When: Writes(), Do: Transient(nil), Max: 1})
	st, err := core.Open(Devices(devs), &core.MemNVRAM{}, core.Options{Mode: core.Raid5, StripeUnit: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	p := bytes.Repeat([]byte{0x7}, 4096)
	if _, err := st.WriteAt(p, 0); err != nil {
		t.Fatalf("write over transient fault should be absorbed and retried: %v", err)
	}
	dead := st.DeadDisks()
	if len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("store should have absorbed disk 2, dead=%v", dead)
	}
	got := make([]byte, 4096)
	if _, err := st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("acknowledged write diverged after degraded retry")
	}
}
