package fault

import (
	"errors"
	"fmt"

	"afraid/internal/core"
)

// runWorkload issues ops seeded random reads and writes against the
// store, maintaining the shadow model. It returns cut=true when a
// power cut ended the run. Reads are verified live: a determinate byte
// that comes back wrong is an immediate violation.
func (e *episode) runWorkload(ops int) (cut bool, err error) {
	capacity := e.st.Capacity()
	for i := 0; i < ops; i++ {
		if e.line.IsCut() {
			return true, nil
		}
		length := 1 + e.rng.Int63n(e.cfg.MaxIO)
		if length > capacity {
			length = capacity
		}
		off := e.rng.Int63n(capacity - length + 1)

		if e.rng.Float64() < e.cfg.WriteFrac {
			p := make([]byte, length)
			e.rng.Read(p)
			if _, werr := e.st.WriteAt(p, off); werr != nil {
				// The store did not acknowledge the write: the range may
				// hold old bytes, new bytes, or a torn mix, and the
				// stripes it spans may carry inconsistent parity.
				e.res.FailedWrites++
				e.sh.clobber(off, length)
				if errors.Is(werr, ErrPowerCut) {
					return true, nil
				}
				if !errors.Is(werr, core.ErrDataLoss) && !errors.Is(werr, core.ErrTooManyFailures) {
					return false, fmt.Errorf("fault: workload write [%d,%d): %w", off, off+length, werr)
				}
				continue
			}
			e.res.AckedWrites++
			e.sh.write(off, p)
			continue
		}

		p := make([]byte, length)
		if _, rerr := e.st.ReadAt(p, off); rerr != nil {
			if errors.Is(rerr, ErrPowerCut) {
				return true, nil
			}
			if errors.Is(rerr, core.ErrDataLoss) {
				if lossAllowed := e.liveLossAllowed(off, length); !lossAllowed {
					e.res.violate("live read [%d,%d) lost (%v) with no unredundant stripe in range", off, off+length, rerr)
				}
				continue
			}
			return false, fmt.Errorf("fault: workload read [%d,%d): %w", off, off+length, rerr)
		}
		e.checkLiveRead(off, p)
	}
	return false, nil
}

// liveLossAllowed reports whether a data-loss error on a live read of
// [off, off+n) is legal: a member is down and some stripe in the range
// is currently unredundant (or under an unacknowledged write). When the
// schedule injects bit flips, any reported loss is legal — detecting
// and refusing to serve corruption is exactly the contract under test.
func (e *episode) liveLossAllowed(off, n int64) bool {
	if e.csumArmed() {
		return true
	}
	if len(e.st.DeadDisks()) == 0 {
		return false
	}
	dirtyNow := make(map[int64]bool)
	for _, st := range e.st.DirtyList() {
		dirtyNow[st] = true
	}
	sdb := e.geo.StripeDataBytes()
	for stp := off / sdb; stp <= (off+n-1)/sdb; stp++ {
		if dirtyNow[stp] || e.dirtyUnion[stp] || e.sh.holes[stp] {
			return true
		}
	}
	return false
}

// checkLiveRead compares a successful read against the shadow model.
// Mismatches on hole stripes are excused only while a member is down
// (degraded reconstruction may pass through inconsistent parity).
func (e *episode) checkLiveRead(off int64, got []byte) {
	degraded := len(e.st.DeadDisks()) > 0
	for i, b := range got {
		pos := off + int64(i)
		if !e.sh.det[pos] || e.sh.data[pos] == b {
			continue
		}
		stripe := pos / e.sh.sdb
		if degraded && e.sh.holes[stripe] {
			continue
		}
		e.res.violate("live read: byte %d (stripe %d) diverged from acknowledged write", pos, stripe)
		return
	}
}
