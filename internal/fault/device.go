// Package fault is a seeded, deterministic fault-injection layer and
// crash-recovery harness over core.BlockDevice. Device wraps a backing
// device and executes a programmable set of Rules — fail-stop,
// transient I/O errors (wrapping core.ErrDeviceFailed so the store's
// degraded-mode machinery absorbs them), injected latency, torn writes,
// and silent bit corruption — gated by composable Triggers. PowerLine
// models whole-machine power loss: in-flight writes land torn or not at
// all. On top, RunEpisode drives a core.Store through randomized
// crash/fault schedules and checks every block against a shadow
// reference model, asserting the AFRAID contract: divergence is
// confined to stripes that were unredundant at crash time.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"afraid/internal/core"
)

// Errors produced by injected faults.
var (
	// ErrInjected is the default transient fault. It wraps
	// core.ErrDeviceFailed, so the store treats the member as fail-stop
	// and absorbs it into degraded mode.
	ErrInjected = fmt.Errorf("fault: injected error: %w", core.ErrDeviceFailed)
	// ErrTorn is returned by a TornWrite action after persisting only a
	// prefix of the write. It does not wrap core.ErrDeviceFailed: the
	// disk is fine, the write is not.
	ErrTorn = errors.New("fault: torn write")
)

// Op describes one device operation for trigger evaluation.
type Op struct {
	N       uint64 // 1-based sequence number of this op on the device
	Write   bool
	Off     int64
	Len     int
	Trailer bool // op starts in the checksum-trailer region (SetChecksumRegion)
}

// Trigger decides whether a rule fires for an operation. Triggers may
// consume the device's seeded RNG (Prob), so rule order is part of the
// deterministic schedule.
type Trigger func(op Op, rng *rand.Rand) bool

// After fires on every op once more than n ops have been issued.
func After(n uint64) Trigger {
	return func(op Op, _ *rand.Rand) bool { return op.N > n }
}

// Before fires on ops up to and including the n-th.
func Before(n uint64) Trigger {
	return func(op Op, _ *rand.Rand) bool { return op.N <= n }
}

// Reads fires on reads only.
func Reads() Trigger {
	return func(op Op, _ *rand.Rand) bool { return !op.Write }
}

// Writes fires on writes only.
func Writes() Trigger {
	return func(op Op, _ *rand.Rand) bool { return op.Write }
}

// InRange fires when the op overlaps [off, off+length) on the device.
func InRange(off, length int64) Trigger {
	return func(op Op, _ *rand.Rand) bool {
		return op.Off < off+length && op.Off+int64(op.Len) > off
	}
}

// Trailer fires on ops that touch the checksum-trailer region declared
// with SetChecksumRegion. With no region declared it never fires.
func Trailer() Trigger {
	return func(op Op, _ *rand.Rand) bool { return op.Trailer }
}

// Prob fires with probability p, drawn from the device's seeded RNG.
func Prob(p float64) Trigger {
	return func(_ Op, rng *rand.Rand) bool { return rng.Float64() < p }
}

// Every fires on every n-th op.
func Every(n uint64) Trigger {
	return func(op Op, _ *rand.Rand) bool { return n > 0 && op.N%n == 0 }
}

// All fires when every trigger fires (evaluated in order, so an RNG
// consumer placed last is only consulted when the cheap gates pass).
func All(ts ...Trigger) Trigger {
	return func(op Op, rng *rand.Rand) bool {
		for _, t := range ts {
			if !t(op, rng) {
				return false
			}
		}
		return true
	}
}

type actionKind int

const (
	actFailStop actionKind = iota
	actTransient
	actDelay
	actTornWrite
	actFlipBit
)

// Action is what a fired rule does to the operation.
type Action struct {
	kind  actionKind
	err   error
	delay time.Duration
}

// FailStop fails the device permanently (until Heal): the op and all
// subsequent ones return core.ErrDeviceFailed.
func FailStop() Action { return Action{kind: actFailStop} }

// Transient fails the op with err without changing device state. A nil
// err uses ErrInjected (which wraps core.ErrDeviceFailed, so the store
// declares the member dead and degrades).
func Transient(err error) Action {
	if err == nil {
		err = ErrInjected
	}
	return Action{kind: actTransient, err: err}
}

// Delay sleeps for d before performing the op normally. Unlike the
// other actions, a firing Delay does not stop rule evaluation.
func Delay(d time.Duration) Action { return Action{kind: actDelay, delay: d} }

// TornWrite persists a seeded-random strict prefix of the write (possibly
// none of it) and returns ErrTorn. Ignored on reads.
func TornWrite() Action { return Action{kind: actTornWrite} }

// FlipBit silently corrupts one seeded-random bit. On a write the
// flipped data lands and the write "succeeds"; on a read the flip is
// also persisted to the backing — media decay discovered (or not) at
// read time, not a one-shot transfer glitch.
func FlipBit() Action { return Action{kind: actFlipBit} }

// Rule is a Trigger-gated Action with an optional firing budget.
type Rule struct {
	When Trigger // nil means every op
	Do   Action
	Max  int // max firings; 0 means unlimited

	hits int
}

// Plan is a reusable set of rules.
type Plan []Rule

// Stats counts device activity and injected faults.
type Stats struct {
	Reads, Writes uint64
	FailStops     uint64
	Transients    uint64
	Delays        uint64
	TornWrites    uint64
	FlipBits      uint64
	PowerRejects  uint64 // ops rejected (or torn) by a cut PowerLine
}

// Device is a fault-injecting core.BlockDevice wrapper. All state is
// mutex-serialized, so a single-threaded op stream with a fixed seed
// replays the same fault schedule exactly.
type Device struct {
	mu        sync.Mutex
	backing   core.BlockDevice
	rng       *rand.Rand
	rules     []*Rule
	line      *PowerLine
	failed    bool
	ops       uint64
	csumStart int64 // device offset where the checksum trailer begins; -1 = none
	stats     Stats
}

// New wraps backing with a fault layer seeded with seed.
func New(backing core.BlockDevice, seed int64, plan ...Rule) *Device {
	d := &Device{backing: backing, rng: rand.New(rand.NewSource(seed)), csumStart: -1}
	for _, r := range plan {
		d.AddRule(r)
	}
	return d
}

// Wrap wraps every device with a fault layer; each gets a seed derived
// from seed and its index. The optional plan is armed on all of them.
func Wrap(devs []core.BlockDevice, seed int64, plan ...Rule) []*Device {
	out := make([]*Device, len(devs))
	for i, b := range devs {
		out[i] = New(b, seed+int64(i)*7919, plan...)
	}
	return out
}

// Devices converts fault wrappers to the core interface slice Open wants.
func Devices(ds []*Device) []core.BlockDevice {
	out := make([]core.BlockDevice, len(ds))
	for i, d := range ds {
		out[i] = d
	}
	return out
}

// OnLine attaches the device to a power line and returns it.
func (d *Device) OnLine(l *PowerLine) *Device {
	d.mu.Lock()
	d.line = l
	d.mu.Unlock()
	return d
}

// SetChecksumRegion declares where the store's checksum trailer starts
// on this device (core's layout.Geometry.DiskSize), so triggers can
// tell data I/O from checksum-slot I/O: Trailer() gates a rule to slot
// ops, and a TornWrite firing there models the torn-metadata crash —
// a slot half-landed, which the store must treat as a mismatch (detect
// and repair), never as a valid checksum.
func (d *Device) SetChecksumRegion(start int64) *Device {
	d.mu.Lock()
	d.csumStart = start
	d.mu.Unlock()
	return d
}

// AddRule arms a rule.
func (d *Device) AddRule(r Rule) *Device {
	d.mu.Lock()
	rc := r
	d.rules = append(d.rules, &rc)
	d.mu.Unlock()
	return d
}

// Mirror arms one rule across the copies of a mirrored set so it fires
// on exactly one of them — whichever copy's trigger trips first — and
// is suppressed on the rest. Tier fault schedules use it to take out a
// single copy of a front pair without hand-rolling per-device plans: a
// mirrored tier that loses both copies at once has no contract left to
// test. The shared budget is on top of the rule's own Max, which still
// bounds repeat firings on the copy that won the race.
func Mirror(r Rule, copies ...*Device) {
	var winner atomic.Int32
	winner.Store(-1)
	for i, d := range copies {
		i := int32(i)
		rc := r
		inner := r.When
		rc.When = func(op Op, rng *rand.Rand) bool {
			if inner != nil && !inner(op, rng) {
				return false
			}
			// The first copy whose trigger trips claims the fault for
			// the whole set; repeat firings stay on that copy.
			return winner.CompareAndSwap(-1, i) || winner.Load() == i
		}
		d.AddRule(rc)
	}
}

// Fail switches the device into fail-stop state. It implements
// core.Failer, so core.Store.FailDisk propagates here.
func (d *Device) Fail() {
	d.mu.Lock()
	d.failed = true
	d.stats.FailStops++
	d.mu.Unlock()
}

// Heal clears the fail-stop state. The contents are whatever the
// backing holds — stale if the array wrote around the failure.
func (d *Device) Heal() {
	d.mu.Lock()
	d.failed = false
	d.mu.Unlock()
}

// Failed reports whether the device is in fail-stop state.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// Stats returns a snapshot of the fault counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Backing returns the wrapped device.
func (d *Device) Backing() core.BlockDevice { return d.backing }

// Size returns the backing capacity.
func (d *Device) Size() int64 { return d.backing.Size() }

// Close closes the backing device — unless the power line is cut, in
// which case the machine stopped without a clean shutdown and the
// backing is left as-is for the harness to reopen.
func (d *Device) Close() error {
	d.mu.Lock()
	line := d.line
	d.mu.Unlock()
	if line != nil && line.IsCut() {
		return nil
	}
	return d.backing.Close()
}

// fire evaluates the rules for op, applying Delay actions inline, and
// returns the first other firing action.
func (d *Device) fire(op Op) (Action, bool) {
	for _, r := range d.rules {
		if r.Max > 0 && r.hits >= r.Max {
			continue
		}
		if !op.Write && r.Do.kind == actTornWrite {
			continue
		}
		if r.When != nil && !r.When(op, d.rng) {
			continue
		}
		r.hits++
		if r.Do.kind == actDelay {
			d.stats.Delays++
			time.Sleep(r.Do.delay)
			continue
		}
		return r.Do, true
	}
	return Action{}, false
}

// ReadAt implements io.ReaderAt with fault injection.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	if d.line != nil && d.line.IsCut() {
		d.stats.PowerRejects++
		d.mu.Unlock()
		return 0, ErrPowerCut
	}
	if d.failed {
		d.mu.Unlock()
		return 0, core.ErrDeviceFailed
	}
	d.ops++
	d.stats.Reads++
	act, ok := d.fire(Op{N: d.ops, Off: off, Len: len(p), Trailer: d.csumStart >= 0 && off >= d.csumStart})
	if ok {
		switch act.kind {
		case actFailStop:
			d.failed = true
			d.stats.FailStops++
			d.mu.Unlock()
			return 0, core.ErrDeviceFailed
		case actTransient:
			d.stats.Transients++
			d.mu.Unlock()
			return 0, act.err
		case actFlipBit:
			if len(p) > 0 {
				// Read-path bit decay: the medium rotted under this
				// range. The flip is persisted to the backing so it is
				// durable corruption every later read sees too.
				d.stats.FlipBits++
				bit := d.rng.Intn(len(p) * 8)
				d.mu.Unlock()
				n, err := d.backing.ReadAt(p, off)
				if err != nil {
					return n, err
				}
				p[bit/8] ^= 1 << (bit % 8)
				d.backing.WriteAt(p[bit/8:bit/8+1], off+int64(bit/8))
				return n, nil
			}
		}
	}
	d.mu.Unlock()
	return d.backing.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with fault injection. A cut power line
// rejects the write; the write in flight when the line's fuse blows
// lands a torn prefix first (see PowerLine.CutAfter).
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	if d.line != nil {
		prefix, ok := d.line.admitWrite(len(p), d.rng)
		if !ok {
			d.stats.PowerRejects++
			if prefix > 0 {
				d.backing.WriteAt(p[:prefix], off)
			}
			d.mu.Unlock()
			return 0, ErrPowerCut
		}
	}
	if d.failed {
		d.mu.Unlock()
		return 0, core.ErrDeviceFailed
	}
	d.ops++
	d.stats.Writes++
	act, ok := d.fire(Op{N: d.ops, Write: true, Off: off, Len: len(p), Trailer: d.csumStart >= 0 && off >= d.csumStart})
	if ok {
		switch act.kind {
		case actFailStop:
			d.failed = true
			d.stats.FailStops++
			d.mu.Unlock()
			return 0, core.ErrDeviceFailed
		case actTransient:
			d.stats.Transients++
			d.mu.Unlock()
			return 0, act.err
		case actTornWrite:
			d.stats.TornWrites++
			n := 0
			if len(p) > 0 {
				n = d.rng.Intn(len(p))
			}
			if n > 0 {
				d.backing.WriteAt(p[:n], off)
			}
			d.mu.Unlock()
			return 0, ErrTorn
		case actFlipBit:
			d.stats.FlipBits++
			cp := make([]byte, len(p))
			copy(cp, p)
			if len(cp) > 0 {
				bit := d.rng.Intn(len(cp) * 8)
				cp[bit/8] ^= 1 << (bit % 8)
			}
			d.mu.Unlock()
			return d.backing.WriteAt(cp, off)
		}
	}
	d.mu.Unlock()
	return d.backing.WriteAt(p, off)
}
