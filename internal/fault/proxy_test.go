package fault

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back, recording
// what it received.
type echoServer struct {
	ln net.Listener

	mu  sync.Mutex
	rcv []byte
}

func newEchoServer(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						s.mu.Lock()
						s.rcv = append(s.rcv, buf[:n]...)
						s.mu.Unlock()
						if _, werr := c.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *echoServer) received() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.rcv...)
}

func newTestProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := NewProxy(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundtrip writes msg and reads len(msg) bytes back.
func roundtrip(c net.Conn, msg []byte, timeout time.Duration) ([]byte, error) {
	if err := c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	_, err := io.ReadFull(c, got)
	return got, err
}

func TestProxyForwards(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	msg := []byte("hello through the chaos proxy")
	got, err := roundtrip(c, msg, 2*time.Second)
	if err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
	st := p.Stats()
	if st.Conns != 1 || st.BytesUp != int64(len(msg)) || st.BytesDown != int64(len(msg)) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProxyLatency(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	msg := []byte("x")
	if _, err := roundtrip(c, msg, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.SetLatency(30*time.Millisecond, 10*time.Millisecond, 0)
	t0 := time.Now()
	if _, err := roundtrip(c, msg, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 40*time.Millisecond {
		t.Fatalf("latency injection missed: roundtrip took %v, want >= 40ms", d)
	}
}

func TestProxyPartitionBlackholeAndRestore(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	if _, err := roundtrip(c, []byte("warm"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Partition()
	// The link is up at the TCP level but forwards nothing: the request
	// times out instead of failing fast.
	if _, err := roundtrip(c, []byte("lost"), 100*time.Millisecond); err == nil {
		t.Fatal("roundtrip succeeded through a black-holed proxy")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout through black hole, got %v", err)
	}
	// A new connection is also accepted, then stalls.
	c2 := dialProxy(t, p)
	if _, err := roundtrip(c2, []byte("also lost"), 100*time.Millisecond); err == nil {
		t.Fatal("new connection forwarded through a black-holed proxy")
	}
	// Restore lets the stalled bytes drain through: the first request's
	// echo finally arrives (4 bytes of "lost", then "also lost" on c2).
	p.Restore()
	got := make([]byte, 4)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
	if string(got) != "lost" {
		t.Fatalf("after restore got %q, want %q", got, "lost")
	}
}

func TestProxyRefuse(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	if _, err := roundtrip(c, []byte("warm"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Refuse()
	// The existing connection was reset.
	if _, err := roundtrip(c, []byte("dead"), time.Second); err == nil {
		t.Fatal("old connection survived Refuse")
	}
	// New connections are torn down at accept: the first read fails fast
	// rather than timing out.
	c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		defer c2.Close()
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		c2.Write([]byte("x"))
		if _, rerr := c2.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("read succeeded through a refusing proxy")
		} else if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
			t.Fatalf("refused connection timed out instead of failing fast: %v", rerr)
		}
	}
	if st := p.Stats(); st.Refused == 0 {
		t.Fatalf("no refused connections counted: %+v", st)
	}
	// Restore brings the path back for fresh connections.
	p.Restore()
	c3 := dialProxy(t, p)
	if _, err := roundtrip(c3, []byte("back"), 2*time.Second); err != nil {
		t.Fatalf("roundtrip after restore: %v", err)
	}
}

func TestProxyResetAfterCutsMidStream(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	p.ResetAfter(4)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Only the first 4 bytes crossed; then the connection died.
	buf := make([]byte, 10)
	n, err := io.ReadFull(c, buf)
	if err == nil {
		t.Fatalf("read %d bytes through a reset connection", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.received()) >= 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.received(); len(got) != 4 || string(got) != "0123" {
		t.Fatalf("server received %q, want exactly %q", got, "0123")
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Fatalf("no resets counted: %+v", st)
	}
}

func TestProxyTruncateNext(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	p.TruncateNext(3)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("abcdefgh")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := io.ReadFull(c, make([]byte, 8)); err == nil {
		t.Fatal("full echo came back through a truncated frame")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.received()) >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.received(); string(got) != "abc" {
		t.Fatalf("server received %q, want truncated %q", got, "abc")
	}
	if st := p.Stats(); st.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1 (%+v)", st.Truncations, st)
	}
}

func TestProxyBandwidthCap(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	// 256 KiB/s cap: a 32 KiB payload needs >= 125 ms each way.
	p.SetBandwidth(256 << 10)
	msg := bytes.Repeat([]byte("b"), 32<<10)
	t0 := time.Now()
	got, err := roundtrip(c, msg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo mismatch under bandwidth cap")
	}
	if d := time.Since(t0); d < 200*time.Millisecond {
		t.Fatalf("bandwidth cap missed: 64 KiB round trip in %v, want >= 200ms", d)
	}
}

func TestProxyKillConns(t *testing.T) {
	s := newEchoServer(t)
	p := newTestProxy(t, s.ln.Addr().String())
	c := dialProxy(t, p)
	if _, err := roundtrip(c, []byte("warm"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.KillConns()
	if _, err := roundtrip(c, []byte("dead"), time.Second); err == nil {
		t.Fatal("connection survived KillConns")
	}
	// The path itself is healthy: a redial works immediately.
	c2 := dialProxy(t, p)
	if _, err := roundtrip(c2, []byte("back"), 2*time.Second); err != nil {
		t.Fatalf("redial after KillConns: %v", err)
	}
}
