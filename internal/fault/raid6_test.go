package fault

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"afraid/internal/core"
)

// TestRaid6DoubleFailureUnderConcurrentIO drives a RAID 6 store with
// concurrent writers while injected transient faults (wrapping
// core.ErrDeviceFailed) take two members down, then repairs both disks
// while the writers keep running. Every acknowledged write must read
// back bit-exact afterwards, the damage reports must be empty (RAID 6
// keeps parity synchronously — nothing is ever exposed), and the
// repaired array's parity must verify. Run under -race this also
// checks the repair-sweep/degraded-write locking.
func TestRaid6DoubleFailureUnderConcurrentIO(t *testing.T) {
	const (
		disks   = 6
		unit    = 512
		stripes = 32
		workers = 4
		opsEach = 250
	)
	backings := make([]core.BlockDevice, disks)
	for i := range backings {
		backings[i] = core.NewMemDevice(stripes * unit)
	}
	devs := Wrap(backings, 77)
	// Two victims, tripped at different depths of the run.
	devs[1].AddRule(Rule{When: After(40), Do: Transient(nil), Max: 1})
	devs[4].AddRule(Rule{When: After(150), Do: Transient(nil), Max: 1})

	st, err := core.Open(Devices(devs), nil, core.Options{Mode: core.Raid6, StripeUnit: unit})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	capacity := st.Capacity()
	region := capacity / workers

	type worker struct {
		base int64
		ref  []byte
	}
	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	stopRepair := make(chan struct{})

	for w := 0; w < workers; w++ {
		ws[w] = &worker{base: int64(w) * region, ref: make([]byte, region)}
		wg.Add(1)
		go func(w *worker, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				n := 1 + rng.Int63n(3*unit)
				if n > region {
					n = region
				}
				off := rng.Int63n(region - n + 1)
				if rng.Float64() < 0.7 {
					p := make([]byte, n)
					rng.Read(p)
					if _, err := st.WriteAt(p, w.base+off); err != nil {
						errCh <- fmt.Errorf("write [%d,%d): %w", w.base+off, w.base+off+n, err)
						return
					}
					copy(w.ref[off:], p)
				} else {
					got := make([]byte, n)
					if _, err := st.ReadAt(got, w.base+off); err != nil {
						errCh <- fmt.Errorf("read [%d,%d): %w", w.base+off, w.base+off+n, err)
						return
					}
					if !bytes.Equal(got, w.ref[off:off+n]) {
						errCh <- fmt.Errorf("read [%d,%d) diverged from acknowledged writes", w.base+off, w.base+off+n)
						return
					}
				}
			}
		}(ws[w], int64(1000+w))
	}

	// Repair goroutine: as soon as both victims are absorbed, rebuild
	// them onto fresh devices while the writers are still running.
	repairErr := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			select {
			case <-stopRepair:
				repairErr <- nil
				return
			default:
			}
			dead := st.DeadDisks()
			if len(dead) == 2 {
				for _, i := range dead {
					rep := core.NewMemDevice(stripes * unit)
					report, err := st.RepairDisk(i, rep)
					if err != nil {
						repairErr <- fmt.Errorf("repair disk %d: %w", i, err)
						return
					}
					if len(report.Lost) != 0 {
						repairErr <- fmt.Errorf("RAID 6 repair of disk %d reported loss: %+v", i, report.Lost)
						return
					}
				}
				repairErr <- nil
				return
			}
			if time.Now().After(deadline) {
				repairErr <- fmt.Errorf("victims never absorbed; dead=%v", st.DeadDisks())
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	close(stopRepair)
	if err := <-repairErr; err != nil {
		t.Fatal(err)
	}

	// If the workload finished before both transients tripped (or the
	// repairer was stopped first), finish the job synchronously.
	for _, i := range []int{1, 4} {
		if devs[i].Failed() && !contains(st.DeadDisks(), i) {
			// The wrapper tripped but the store never touched it.
			if err := st.FailDisk(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, i := range st.DeadDisks() {
		rep := core.NewMemDevice(stripes * unit)
		report, err := st.RepairDisk(i, rep)
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Lost) != 0 {
			t.Fatalf("RAID 6 repair of disk %d reported loss: %+v", i, report.Lost)
		}
	}

	// Whole array healthy again: every acknowledged byte reads back and
	// both parities verify on every stripe.
	for _, w := range ws {
		got := make([]byte, region)
		if _, err := st.ReadAt(got, w.base); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w.ref) {
			t.Fatalf("region at %d diverged after double repair", w.base)
		}
	}
	bad, err := st.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("parity inconsistent after repair: stripes %v", bad)
	}
}
