package fault

import "sync"

// LostNVRAM models the paper's marking-memory failure (§4 "loss of the
// NVRAM"): Load returns an image the store cannot deserialize, forcing
// the documented recovery procedure — mark every stripe and rebuild
// parity for the whole array. Store works normally afterwards, so the
// recovered store can persist its new map.
type LostNVRAM struct {
	mu  sync.Mutex
	img []byte
}

// NewLostNVRAM returns an NVRAM holding a corrupt image.
func NewLostNVRAM() *LostNVRAM {
	return &LostNVRAM{img: []byte("corrupt marking memory")}
}

// Load returns the current (initially corrupt) image.
func (n *LostNVRAM) Load() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]byte, len(n.img))
	copy(out, n.img)
	return out, nil
}

// Store replaces the image.
func (n *LostNVRAM) Store(img []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.img = append(n.img[:0:0], img...)
	return nil
}
