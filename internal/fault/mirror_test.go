package fault

import (
	"errors"
	"testing"

	"afraid/internal/core"
)

// TestMirrorFiresOnExactlyOneCopy: a Mirror-scoped fail-stop takes out
// one copy of the pair and leaves the other healthy, regardless of
// which copy the workload touches first.
func TestMirrorFiresOnExactlyOneCopy(t *testing.T) {
	d0 := New(core.NewMemDevice(4096), 1)
	d1 := New(core.NewMemDevice(4096), 2)
	Mirror(Rule{When: After(2), Do: FailStop()}, d0, d1)

	buf := make([]byte, 512)
	// Interleave ops across both copies past the trigger point.
	for i := 0; i < 4; i++ {
		d0.WriteAt(buf, 0)
		d1.WriteAt(buf, 0)
	}
	if d0.Failed() && d1.Failed() {
		t.Fatal("Mirror let the fault take out both copies")
	}
	if !d0.Failed() && !d1.Failed() {
		t.Fatal("Mirror suppressed the fault entirely")
	}
}

// TestMirrorRepeatFiringsStayOnWinner: a recurring transient stays
// pinned to the copy that claimed the fault.
func TestMirrorRepeatFiringsStayOnWinner(t *testing.T) {
	d0 := New(core.NewMemDevice(4096), 3)
	d1 := New(core.NewMemDevice(4096), 4)
	Mirror(Rule{Do: Transient(nil)}, d0, d1)

	buf := make([]byte, 16)
	_, err0 := d0.WriteAt(buf, 0) // d0 claims
	if !errors.Is(err0, ErrInjected) {
		t.Fatalf("first op on d0 should fire, got %v", err0)
	}
	for i := 0; i < 3; i++ {
		if _, err := d1.WriteAt(buf, 0); err != nil {
			t.Fatalf("d1 must stay healthy once d0 claimed, got %v", err)
		}
		if _, err := d0.WriteAt(buf, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("repeat firing left the winner, got %v", err)
		}
	}
}
