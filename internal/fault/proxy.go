package fault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP chaos proxy: it listens on a loopback port, forwards
// every connection to a fixed target (an afraidd listener), and injects
// network faults into the stream — the network-layer sibling of Device.
// Where Device corrupts what a store *persists*, Proxy corrupts how a
// client *reaches* it: partitions (accept-then-black-hole, or full
// connection refusal), one-way or symmetric latency with seeded jitter,
// bandwidth caps, mid-frame connection resets, and byte-truncation of
// in-flight frames. A server.Client dialed through a Proxy therefore
// exercises its genuine dial/read/write/redial paths under failure,
// instead of having errors handed to it by an interface shim.
//
// All switches take effect immediately on both existing and future
// connections and are cleared together by Restore. Methods are safe for
// concurrent use.
type Proxy struct {
	target string
	ln     net.Listener

	mu        sync.Mutex
	rng       *rand.Rand // jitter; seeded so schedules replay
	blackhole bool       // accept, then forward nothing (stall)
	refuse    bool       // close new connections on accept
	latUp     time.Duration
	latDown   time.Duration
	jitter    time.Duration
	bps       int64 // bandwidth cap, bytes/sec per direction; 0 = unlimited
	resetIn   int64 // RST all conns after this many more forwarded bytes; <0 off
	truncNext int64 // truncate the next client->server chunk to this; <0 off
	conns     map[*proxyPair]struct{}
	stats     ProxyStats
	closed    bool

	wg sync.WaitGroup
}

// ProxyStats counts traffic and injections through the proxy.
type ProxyStats struct {
	Conns       int64 // connections accepted and forwarded
	Refused     int64 // connections closed at accept by Refuse
	BytesUp     int64 // client -> server bytes forwarded
	BytesDown   int64 // server -> client bytes forwarded
	Resets      int64 // connections killed mid-stream (RST where possible)
	Truncations int64 // frames cut short by TruncateNext
}

// proxyPair is one forwarded connection: the accepted client side and
// the dialed server side, closed as a unit.
type proxyPair struct {
	client net.Conn
	server net.Conn
	once   sync.Once
}

// kill tears the pair down. rst requests an abortive close (RST) on the
// client side so the peer sees a reset mid-frame, not a graceful EOF.
func (pp *proxyPair) kill(rst bool) {
	pp.once.Do(func() {
		if rst {
			if tc, ok := pp.client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			if tc, ok := pp.server.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		pp.client.Close()
		pp.server.Close()
	})
}

// NewProxy starts a proxy forwarding to target on an ephemeral loopback
// port. The seed drives jitter; identical seeds and traffic replay the
// same delays.
func NewProxy(target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fault: proxy listen: %w", err)
	}
	p := &Proxy{
		target:    target,
		ln:        ln,
		rng:       rand.New(rand.NewSource(seed)),
		resetIn:   -1,
		truncNext: -1,
		conns:     make(map[*proxyPair]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the upstream address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// Partition black-holes the link: new connections are accepted and
// existing ones stay open, but no byte is forwarded in either direction
// until Restore — the "switch port wedged" partition where TCP connects
// fine and then every request times out.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.blackhole = true
	p.mu.Unlock()
}

// Refuse hard-partitions the link: existing connections are reset and
// new ones are closed at accept — the "machine unplugged" partition
// where dials fail fast.
func (p *Proxy) Refuse() {
	p.mu.Lock()
	p.refuse = true
	p.mu.Unlock()
	p.KillConns()
}

// SetLatency adds per-chunk delay: up on client->server traffic, down
// on server->client, each plus a uniform [0, jitter) draw from the
// seeded generator. Zero disables a direction.
func (p *Proxy) SetLatency(up, down, jitter time.Duration) {
	p.mu.Lock()
	p.latUp, p.latDown, p.jitter = up, down, jitter
	p.mu.Unlock()
}

// SetBandwidth caps each direction at bytesPerSec; 0 removes the cap.
func (p *Proxy) SetBandwidth(bytesPerSec int64) {
	p.mu.Lock()
	p.bps = bytesPerSec
	p.mu.Unlock()
}

// ResetAfter arms a mid-stream reset: after n more forwarded bytes
// (both directions pooled) every connection is killed with an abortive
// close, so a frame in flight is cut mid-body. n<0 disarms.
func (p *Proxy) ResetAfter(n int64) {
	p.mu.Lock()
	p.resetIn = n
	p.mu.Unlock()
}

// TruncateNext arms a frame truncation: the next client->server chunk
// forwards only its first n bytes, then the connection is reset — the
// peer sees a syntactically broken frame, not just a dropped one.
func (p *Proxy) TruncateNext(n int64) {
	p.mu.Lock()
	p.truncNext = n
	p.mu.Unlock()
}

// Restore clears every fault switch. Existing connections resume
// forwarding; stalled requests complete if the client is still waiting.
func (p *Proxy) Restore() {
	p.mu.Lock()
	p.blackhole, p.refuse = false, false
	p.latUp, p.latDown, p.jitter = 0, 0, 0
	p.bps = 0
	p.resetIn, p.truncNext = -1, -1
	p.mu.Unlock()
}

// KillConns resets every active connection (abortive close). New
// connections are still accepted unless Refuse is in effect.
func (p *Proxy) KillConns() {
	p.mu.Lock()
	pairs := make([]*proxyPair, 0, len(p.conns))
	for pp := range p.conns {
		pairs = append(pairs, pp)
	}
	if len(pairs) > 0 {
		p.stats.Resets += int64(len(pairs))
	}
	p.mu.Unlock()
	for _, pp := range pairs {
		pp.kill(true)
	}
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the listener and tears down every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.KillConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse, closed := p.refuse, p.closed
		p.mu.Unlock()
		if refuse || closed {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			c.Close()
			p.mu.Lock()
			p.stats.Refused++
			p.mu.Unlock()
			continue
		}
		s, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			c.Close()
			continue
		}
		pp := &proxyPair{client: c, server: s}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			pp.kill(true)
			continue
		}
		p.conns[pp] = struct{}{}
		p.stats.Conns++
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(pp, c, s, true)
		go p.pump(pp, s, c, false)
	}
}

// pump copies src to dst in bounded chunks, consulting the fault gate
// before each forward. up marks the client->server direction (the one
// TruncateNext targets).
func (p *Proxy) pump(pp *proxyPair, src, dst net.Conn, up bool) {
	defer p.wg.Done()
	defer func() {
		pp.kill(false)
		p.mu.Lock()
		delete(p.conns, pp)
		p.mu.Unlock()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.forward(pp, dst, buf[:n], up) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// forward applies the gate to one chunk and writes it. It returns false
// when the connection was killed (reset, truncation) or the write
// failed.
func (p *Proxy) forward(pp *proxyPair, dst net.Conn, chunk []byte, up bool) bool {
	// Black hole: stall until restored or the pair dies. Polling keeps
	// the gate lock-free for the common path; 2 ms is far below any
	// timeout a test would assert on.
	for {
		p.mu.Lock()
		stalled := p.blackhole
		p.mu.Unlock()
		if !stalled {
			break
		}
		if !alive(dst) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}

	p.mu.Lock()
	lat := p.latDown
	if up {
		lat = p.latUp
	}
	if p.jitter > 0 {
		lat += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	bps := p.bps
	trunc := int64(-1)
	if up && p.truncNext >= 0 {
		trunc = p.truncNext
		p.truncNext = -1
		p.stats.Truncations++
	}
	reset := false
	if p.resetIn >= 0 {
		if p.resetIn < int64(len(chunk)) {
			chunk = chunk[:p.resetIn]
			reset = true
			p.resetIn = -1
		} else {
			p.resetIn -= int64(len(chunk))
		}
	}
	p.mu.Unlock()

	if trunc >= 0 {
		if trunc < int64(len(chunk)) {
			chunk = chunk[:trunc]
		}
		reset = true
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	if bps > 0 {
		time.Sleep(time.Duration(int64(len(chunk)) * int64(time.Second) / bps))
	}
	if len(chunk) > 0 {
		if _, err := dst.Write(chunk); err != nil {
			return false
		}
		p.mu.Lock()
		if up {
			p.stats.BytesUp += int64(len(chunk))
		} else {
			p.stats.BytesDown += int64(len(chunk))
		}
		p.mu.Unlock()
	}
	if reset {
		p.mu.Lock()
		p.stats.Resets++
		p.mu.Unlock()
		pp.kill(true)
		return false
	}
	return true
}

// alive reports whether the connection can still take a write — used to
// break the black-hole stall loop once the pair has been killed.
func alive(c net.Conn) bool {
	if err := c.SetWriteDeadline(time.Time{}); err != nil {
		return false
	}
	return true
}
