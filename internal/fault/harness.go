package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"afraid/internal/core"
	"afraid/internal/layout"
)

// Config describes one chaos episode: an array build, a seeded
// workload, and a fault schedule (transient member faults, a power cut
// with optional marking-memory loss, post-recovery disk failures, and
// repair). Everything is derived from Seed, so a violating episode is
// reproducible from its number alone.
type Config struct {
	Seed              int64
	Mode              core.Mode
	Disks             int
	StripeUnit        int64
	StripesPerDisk    int64 // device size = StripesPerDisk * StripeUnit
	Ops               int   // workload operations
	WriteFrac         float64
	MaxIO             int64 // max bytes per workload op
	ScrubIdle         time.Duration
	DirtyThreshold    int
	DeferBothParities bool

	Transients int  // member disks hit by an injected transient fault (capped at the redundancy)
	PowerCut   bool // cut power mid-workload and restart through recovery
	DropNVRAM  bool // the crash also destroys the marking memory (paper §4)
	DiskFails  int  // disks to fail after recovery (capped at the redundancy)
	Repair     bool // repair failed disks and audit the damage report

	Checksums bool // open the store with Options.Checksums
	FlipBits  int  // write-path silent bit flips to arm (one rule each)
	ReadRot   int  // read-path bit-decay flips to arm (one rule each)
}

// storeOptions maps the episode config onto core.Options (shared by the
// initial open and the post-crash reopen).
func (c Config) storeOptions() core.Options {
	return core.Options{
		Mode:              c.Mode,
		StripeUnit:        c.StripeUnit,
		ScrubIdle:         c.ScrubIdle,
		DirtyThreshold:    c.DirtyThreshold,
		DeferBothParities: c.DeferBothParities,
		Checksums:         c.Checksums,
	}
}

func (c Config) withDefaults() Config {
	if c.Disks == 0 {
		c.Disks = 5
	}
	if c.StripeUnit == 0 {
		c.StripeUnit = 512
	}
	if c.StripesPerDisk == 0 {
		c.StripesPerDisk = 48
	}
	if c.Ops == 0 {
		c.Ops = 150
	}
	if c.WriteFrac == 0 {
		c.WriteFrac = 0.65
	}
	if c.MaxIO == 0 {
		c.MaxIO = 3 * c.StripeUnit
	}
	if c.ScrubIdle == 0 {
		c.ScrubIdle = 3 * time.Millisecond
	}
	return c
}

// maxDead is how many simultaneous member failures the mode absorbs.
func maxDead(m core.Mode) int {
	switch m {
	case core.Raid6, core.Afraid6:
		return 2
	case core.Raid0:
		return 0
	default:
		return 1
	}
}

func deferred(m core.Mode) bool { return m == core.Afraid || m == core.Afraid6 }

// Result is one episode's outcome. Violations are breaches of the
// AFRAID contract; everything else is accounting.
type Result struct {
	Seed       int64
	Mode       core.Mode
	Violations []string

	AckedWrites  int // writes the store acknowledged
	FailedWrites int // writes that errored (their ranges become indeterminate)

	Crashed      bool  // a power cut ended the workload
	NVRAMRebuild bool  // recovery fell back to the full-array rebuild
	Degraded     bool  // the store absorbed a member failure mid-workload
	FailedDisks  []int // disks failed by the schedule (pre- and post-crash)

	DirtyAtCrash     int    // unredundant stripes when the failure landed
	HoleStripes      int    // stripes covered by unacknowledged writes
	LostBytes        int64  // bytes reported lost by repair
	DamagedStripes   int    // stripes in the damage report
	RecoveredStripes uint64 // stripes reconstructed exactly by repair

	FlipBits          int    // silent bit flips the device layer actually injected
	ChecksumsDetected uint64 // corrupt units the store caught (Options.Checksums)
	ChecksumsRepaired uint64 // corrupt units rewritten from redundancy
	ChecksumsLost     uint64 // corrupt units with no redundancy left
}

func (r *Result) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// episode carries the mutable state of one RunEpisode call.
type episode struct {
	cfg      Config
	rng      *rand.Rand
	res      *Result
	line     *PowerLine
	backings []core.BlockDevice
	devs     []*Device
	nv       core.NVRAM
	st       *core.Store
	geo      layout.Geometry
	sh       *shadow

	dirtyUnion map[int64]bool // union of DirtyList samples at failure points
	damaged    map[int64]bool // stripes in repair damage reports
	victims    []int          // disks with an armed transient rule
}

// csumArmed reports whether the schedule injects silent corruption.
// With flips armed, any *reported* loss is legal — two flips can land
// in one synchronous-RAID5 stripe, a genuine double failure — but
// silent divergence never is: checkLiveRead and verify still compare
// every successful read byte-exact.
func (e *episode) csumArmed() bool { return e.cfg.FlipBits > 0 || e.cfg.ReadRot > 0 }

// allowedLoss reports whether a stripe may legally lose data: it was
// marked unredundant at a failure point, was covered by a write the
// store never acknowledged, was already reported damaged, or the
// schedule injects corruption (reported loss is then always legal —
// only silent corruption violates).
func (e *episode) allowedLoss(stripe int64) bool {
	return e.dirtyUnion[stripe] || e.sh.holes[stripe] || e.damaged[stripe] || e.csumArmed()
}

// sampleDirty folds the store's current unredundant set into the union.
// Called at every failure point: recovery open, before each disk
// failure, and before each repair.
func (e *episode) sampleDirty() {
	for _, st := range e.st.DirtyList() {
		e.dirtyUnion[st] = true
	}
}

// stripeReadsLost reports whether reading the stripe's data back
// returns ErrDataLoss — i.e. the store detected corruption there and
// refuses to serve it rather than serving it silently.
func (e *episode) stripeReadsLost(stripe int64) bool {
	buf := make([]byte, e.geo.StripeDataBytes())
	_, err := e.st.ReadAt(buf, stripe*e.geo.StripeDataBytes())
	return errors.Is(err, core.ErrDataLoss)
}

// RunEpisode runs one seeded crash/fault episode and checks the store
// against the shadow model. The returned error is an infrastructure
// failure (the episode could not run); contract breaches are in
// Result.Violations.
func RunEpisode(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Seed: cfg.Seed, Mode: cfg.Mode}
	e := &episode{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		res:        res,
		line:       NewPowerLine(),
		dirtyUnion: make(map[int64]bool),
		damaged:    make(map[int64]bool),
	}

	diskSize := cfg.StripesPerDisk * cfg.StripeUnit
	e.backings = make([]core.BlockDevice, cfg.Disks)
	for i := range e.backings {
		e.backings[i] = core.NewMemDevice(diskSize)
	}
	e.devs = Wrap(e.backings, cfg.Seed)
	for _, d := range e.devs {
		d.OnLine(e.line)
	}
	if deferred(cfg.Mode) {
		e.nv = &core.MemNVRAM{}
	}
	st, err := core.Open(Devices(e.devs), e.nv, cfg.storeOptions())
	if err != nil {
		return res, err
	}
	e.st = st
	e.geo = st.Geometry()
	e.sh = newShadow(st.Capacity(), e.geo.StripeDataBytes())
	if cfg.Checksums {
		for _, d := range e.devs {
			d.SetChecksumRegion(e.geo.DiskSize)
		}
	}

	// Arm the schedule. Transient faults (which the store absorbs as
	// fail-stop) land on distinct victims, capped at the redundancy so
	// the array is never asked to survive more than it promises.
	victims := cfg.Transients
	if m := maxDead(cfg.Mode); victims > m {
		victims = m
	}
	for _, v := range e.rng.Perm(cfg.Disks)[:victims] {
		e.devs[v].AddRule(Rule{
			When: After(uint64(e.rng.Intn(cfg.Ops + 1))),
			Do:   Transient(nil),
			Max:  1,
		})
		res.FailedDisks = append(res.FailedDisks, v)
		e.victims = append(e.victims, v)
	}
	// Silent corruption: seeded one-shot bit flips, on the write path
	// (FlipBits) and as read-time media decay (ReadRot). Each rule lands
	// on a random device after a random number of its ops.
	for k := 0; k < cfg.FlipBits; k++ {
		e.devs[e.rng.Intn(cfg.Disks)].AddRule(Rule{
			When: All(Writes(), After(uint64(e.rng.Intn(cfg.Ops*2+1)))),
			Do:   FlipBit(),
			Max:  1,
		})
	}
	for k := 0; k < cfg.ReadRot; k++ {
		e.devs[e.rng.Intn(cfg.Disks)].AddRule(Rule{
			When: All(Reads(), After(uint64(e.rng.Intn(cfg.Ops*2+1)))),
			Do:   FlipBit(),
			Max:  1,
		})
	}
	if cfg.PowerCut {
		// Device writes outnumber workload ops; a fuse within a few
		// multiples of Ops usually blows mid-workload, and a fuse that
		// survives the workload is forced below.
		e.line.CutAfter(1 + e.rng.Int63n(int64(cfg.Ops)*3))
	}

	cut, err := e.runWorkload(cfg.Ops)
	if err != nil {
		return res, err
	}
	res.Degraded = len(st.DeadDisks()) > 0

	if cfg.PowerCut {
		if !cut {
			e.line.Cut()
		}
		if err := e.crashAndRecover(); err != nil {
			return res, err
		}
	}
	e.sampleDirty()
	res.DirtyAtCrash = len(e.dirtyUnion)

	// Phase A: every byte the store acknowledged must read back, except
	// that a hole stripe's bytes may pass through degraded
	// reconstruction over inconsistent parity while a disk is down.
	if err := e.verify("post-recovery", len(e.st.DeadDisks()) > 0); err != nil {
		return res, err
	}

	if err := e.failDisks(); err != nil {
		return res, err
	}
	if err := e.repairDisks(); err != nil {
		return res, err
	}

	// Parity audit: after a Flush on a whole array, only hole stripes
	// (sync modes never revisit them), stripes still dirty (held by
	// quarantine), and corrupted stripes whose reads report loss may be
	// inconsistent.
	if len(e.st.DeadDisks()) == 0 {
		auditErr := e.st.Flush()
		if auditErr != nil && e.cfg.Checksums && errors.Is(auditErr, core.ErrDataLoss) {
			// Stripes quarantined by detected-but-unrecoverable corruption
			// hold their dirty marks, so Flush reports loss. That is loss
			// accounting, not an audit failure — provided each quarantined
			// stripe is one that may legally lose data.
			for _, stp := range e.st.QuarantinedStripes() {
				if !e.allowedLoss(stp) {
					res.violate("stripe %d quarantined by corruption but was never unredundant", stp)
				}
			}
			e.sampleDirty()
			auditErr = nil
		}
		if auditErr == nil {
			dirtyNow := make(map[int64]bool)
			for _, stp := range e.st.DirtyList() {
				dirtyNow[stp] = true
			}
			bad, err := e.st.CheckParity()
			if err != nil {
				auditErr = err
			}
			for _, stp := range bad {
				if e.sh.holes[stp] || dirtyNow[stp] {
					continue
				}
				if e.csumArmed() && e.stripeReadsLost(stp) {
					continue // detected corruption, reported as loss
				}
				res.violate("parity inconsistent after flush on stripe %d (not a hole stripe)", stp)
			}
		}
		if auditErr != nil {
			if len(e.st.DeadDisks()) == 0 {
				return res, fmt.Errorf("fault: parity audit: %w", auditErr)
			}
			// A latent transient tripped mid-audit: the array is
			// degraded again and the audit no longer applies. The final
			// verify below still runs (in its degraded form).
			res.Degraded = true
		}
	}

	if err := e.verify("final", len(e.st.DeadDisks()) > 0); err != nil {
		return res, err
	}

	res.HoleStripes = len(e.sh.holes)
	stats := e.st.Stats()
	res.RecoveredStripes = stats.RecoveredStripes
	res.ChecksumsDetected += stats.ChecksumDetected
	res.ChecksumsRepaired += stats.ChecksumRepaired
	res.ChecksumsLost += stats.ChecksumLost
	for _, d := range e.devs {
		res.FlipBits += int(d.Stats().FlipBits)
	}
	e.st.Close()
	return res, nil
}

// crashAndRecover abandons the cut store and reopens from the
// surviving device contents — the machine rebooting after the crash.
func (e *episode) crashAndRecover() error {
	deadPre := e.st.DeadDisks()
	// The crash loses the in-memory counters and the wrapper stats
	// (re-wrapping resets them); fold both into the result first.
	stats := e.st.Stats()
	e.res.ChecksumsDetected += stats.ChecksumDetected
	e.res.ChecksumsRepaired += stats.ChecksumRepaired
	e.res.ChecksumsLost += stats.ChecksumLost
	for _, d := range e.devs {
		e.res.FlipBits += int(d.Stats().FlipBits)
	}
	e.st.Close() // wrappers skip closing backings while the line is cut
	e.res.Crashed = true

	e.line.Restore()
	e.devs = Wrap(e.backings, e.cfg.Seed+1)
	e.victims = nil // re-wrapping discards any still-armed transient rules
	for _, d := range e.devs {
		d.OnLine(e.line)
	}
	// A member the old store had declared dead missed its degraded
	// writes; its contents are stale and must not resurrect. Re-fail it
	// so Open's probe sees it down.
	for _, i := range deadPre {
		e.devs[i].Fail()
	}
	nv := e.nv
	if e.cfg.DropNVRAM && nv != nil {
		nv = NewLostNVRAM()
		e.nv = nv
	}
	if e.cfg.Checksums {
		for _, d := range e.devs {
			d.SetChecksumRegion(e.geo.DiskSize)
		}
	}
	st, err := core.Open(Devices(e.devs), nv, e.cfg.storeOptions())
	if err != nil {
		return fmt.Errorf("fault: reopen after crash: %w", err)
	}
	e.st = st
	e.res.NVRAMRebuild = st.Stats().NVRAMRecovered
	return nil
}

// failDisks fails up to cfg.DiskFails additional members through the
// device layer, letting foreground I/O trip the store's degraded-mode
// absorption, then runs a short degraded workload burst.
func (e *episode) failDisks() error {
	limit := maxDead(e.cfg.Mode)
	failed := 0
	for failed < e.cfg.DiskFails {
		dead := e.st.DeadDisks()
		// An armed transient that hasn't tripped yet is a pending
		// failure the store can't see; scheduling another member on top
		// of it would exceed the redundancy the array promises.
		pending := 0
		for _, v := range e.victims {
			if !contains(dead, v) && !e.devs[v].Failed() {
				pending++
			}
		}
		if len(dead)+pending >= limit {
			break
		}
		e.sampleDirty()
		victim := e.pickAlive(dead)
		if victim < 0 {
			break
		}
		e.devs[victim].Fail()
		e.sweep() // touch every stripe so the failure is absorbed
		if !contains(e.st.DeadDisks(), victim) {
			if err := e.st.FailDisk(victim); err != nil {
				return fmt.Errorf("fault: fail disk %d: %w", victim, err)
			}
		}
		e.res.FailedDisks = append(e.res.FailedDisks, victim)
		failed++
	}
	if failed > 0 && e.cfg.Ops >= 4 {
		// Degraded burst: acknowledged writes must survive even with
		// members down (and must mirror onto an in-progress repair).
		if _, err := e.runWorkload(e.cfg.Ops / 4); err != nil {
			return err
		}
	}
	return nil
}

func (e *episode) pickAlive(dead []int) int {
	alive := make([]int, 0, e.cfg.Disks)
	for i := 0; i < e.cfg.Disks; i++ {
		if !contains(dead, i) && !e.devs[i].Failed() {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return -1
	}
	return alive[e.rng.Intn(len(alive))]
}

// sweep reads every stripe once, ignoring data-loss errors.
func (e *episode) sweep() {
	sdb := e.geo.StripeDataBytes()
	buf := make([]byte, sdb)
	for stp := int64(0); stp < e.geo.Stripes(); stp++ {
		e.st.ReadAt(buf, stp*sdb)
	}
}

// repairDisks repairs every dead member onto a fresh device and audits
// the damage report: every lost range must lie in a stripe that was
// unredundant at a failure point (or under an unacknowledged write) —
// the paper's bounded-exposure contract.
func (e *episode) repairDisks() error {
	if !e.cfg.Repair {
		return nil
	}
	diskSize := e.cfg.StripesPerDisk * e.cfg.StripeUnit
	for _, i := range e.st.DeadDisks() {
		e.sampleDirty()
		rep := New(core.NewMemDevice(diskSize), e.cfg.Seed+100+int64(i)).OnLine(e.line)
		if e.cfg.Checksums {
			rep.SetChecksumRegion(e.geo.DiskSize)
		}
		report, err := e.st.RepairDisk(i, rep)
		if err != nil {
			return fmt.Errorf("fault: repair disk %d: %w", i, err)
		}
		e.res.FlipBits += int(e.devs[i].Stats().FlipBits)
		e.devs[i] = rep
		for _, lost := range report.Lost {
			if !e.allowedLoss(lost.Stripe) {
				e.res.violate("repair of disk %d lost [%d,%d) in stripe %d, which was redundant at crash time",
					i, lost.Offset, lost.Offset+lost.Length, lost.Stripe)
			}
			e.damaged[lost.Stripe] = true
			e.sh.zero(lost.Offset, lost.Length)
			e.res.LostBytes += lost.Length
		}
		e.res.DamagedStripes += len(report.Lost)
		// A hole stripe the repair treated as clean was reconstructed
		// through possibly-inconsistent parity: the rebuilt data unit
		// (and only it) is untrustworthy. Survivor units were read
		// directly and stay fully checked.
		for stp := range e.sh.holes {
			if e.damaged[stp] {
				continue
			}
			if role, dataIdx := e.geo.RoleOf(stp, i); role == layout.Data {
				e.sh.distrust(stp*e.geo.StripeDataBytes()+int64(dataIdx)*e.cfg.StripeUnit, e.cfg.StripeUnit)
			}
		}
	}
	return nil
}

// verify reads every stripe and checks it against the shadow model.
// Data-loss reads are legal only on stripes in the allowed-loss set;
// determinate bytes elsewhere must match bit-exact. When
// excuseHoleBytes is set (a disk is down), hole stripes skip the byte
// comparison: their reads may pass through inconsistent parity.
func (e *episode) verify(label string, excuseHoleBytes bool) error {
	sdb := e.geo.StripeDataBytes()
	buf := make([]byte, sdb)
	for stp := int64(0); stp < e.geo.Stripes(); stp++ {
		if _, err := e.st.ReadAt(buf, stp*sdb); err != nil {
			if errors.Is(err, core.ErrDataLoss) {
				if !e.allowedLoss(stp) {
					e.res.violate("%s: stripe %d unreadable (%v) but was redundant at crash time", label, stp, err)
				}
				continue
			}
			return fmt.Errorf("fault: verify %s stripe %d: %w", label, stp, err)
		}
		if excuseHoleBytes && e.sh.holes[stp] {
			continue
		}
		if off := e.sh.diff(stp, buf); off >= 0 {
			e.res.violate("%s: byte %d (stripe %d) diverged from acknowledged write", label, off, stp)
		}
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
