package fault

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrPowerCut is returned by devices on a cut power line. It
// deliberately does NOT wrap core.ErrDeviceFailed: losing power is a
// whole-machine event, and the store must surface it to the caller
// rather than absorb it as a cascade of member-disk failures.
var ErrPowerCut = errors.New("fault: power cut")

// PowerLine models the machine's power supply, shared by every device
// wired to it (Device.OnLine). While cut, all attached devices reject
// I/O with ErrPowerCut. CutAfter arms a fuse: the n-th subsequent
// device write is the one "in flight" when power fails — it persists
// only a seeded-random prefix (possibly nothing), modelling a torn
// sector, and everything after it is rejected. Restore re-powers the
// line; the harness then reopens the store from the surviving devices,
// exactly like a machine rebooting after a crash.
type PowerLine struct {
	mu   sync.Mutex
	cut  bool
	fuse int64 // writes remaining until the cut; -1 disarmed
}

// NewPowerLine returns a powered line with no fuse armed.
func NewPowerLine() *PowerLine { return &PowerLine{fuse: -1} }

// Cut fails the power immediately. Writes already persisted stay;
// everything in flight from the store's point of view is rejected.
func (l *PowerLine) Cut() {
	l.mu.Lock()
	l.cut = true
	l.fuse = -1
	l.mu.Unlock()
}

// CutAfter arms the fuse: power fails on the n-th subsequent device
// write (n >= 1), which lands only a torn prefix.
func (l *PowerLine) CutAfter(n int64) {
	l.mu.Lock()
	if n < 1 {
		n = 1
	}
	l.fuse = n - 1
	l.mu.Unlock()
}

// IsCut reports whether the line is currently cut.
func (l *PowerLine) IsCut() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cut
}

// Restore re-powers the line and disarms any fuse.
func (l *PowerLine) Restore() {
	l.mu.Lock()
	l.cut = false
	l.fuse = -1
	l.mu.Unlock()
}

// admitWrite gates one device write of n bytes. It returns (n, true)
// while powered. At the fuse it cuts the line and returns a strict
// prefix length with ok=false: the caller persists that prefix and
// reports failure. After the cut it returns (0, false).
func (l *PowerLine) admitWrite(n int, rng *rand.Rand) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cut {
		return 0, false
	}
	if l.fuse > 0 {
		l.fuse--
		return n, true
	}
	if l.fuse == 0 {
		l.cut = true
		l.fuse = -1
		if n <= 0 {
			return 0, false
		}
		return rng.Intn(n), false
	}
	return n, true
}
