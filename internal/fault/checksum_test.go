package fault

import (
	"bytes"
	"errors"
	"testing"

	"afraid/internal/core"
)

// TestFlipBitReadPathDecay is the satellite regression for read-path
// bit decay: a FlipBit rule armed on reads must fire (the old fire()
// rejected every non-torn action on the read path), corrupt exactly one
// bit, and persist the rot to the backing so later reads see it too.
func TestFlipBitReadPathDecay(t *testing.T) {
	mem := core.NewMemDevice(4096)
	d := New(mem, 17)
	d.AddRule(Rule{When: Reads(), Do: FlipBit(), Max: 1})

	p := bytes.Repeat([]byte{0x55}, 64)
	if _, err := d.WriteAt(p, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	first := make([]byte, 64)
	if _, err := d.ReadAt(first, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	diff := 0
	for i := range first {
		diff += popcount(first[i] ^ p[i])
	}
	if diff != 1 {
		t.Fatalf("read-path FlipBit: expected exactly 1 flipped bit, got %d", diff)
	}
	if d.Stats().FlipBits != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
	// The rot is durable: a second read (rule exhausted) sees the same
	// corrupted image, both through the wrapper and from the backing.
	second := make([]byte, 64)
	if _, err := d.ReadAt(second, 0); err != nil {
		t.Fatalf("second read: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("read-path flip did not persist to the backing")
	}
	raw := make([]byte, 64)
	mem.ReadAt(raw, 0)
	if !bytes.Equal(first, raw) {
		t.Fatal("backing diverges from what the wrapper served")
	}
}

// TestTornTrailerDetectedAndRepaired tears a checksum-slot write (the
// Trailer() trigger picks device writes landing in the checksum region)
// and checks the store treats the half-written slot as an ordinary
// mismatch on the next read: detected, repaired from redundancy, and
// the unit settles on old-or-new content — never garbage, never loss.
func TestTornTrailerDetectedAndRepaired(t *testing.T) {
	backings := make([]core.BlockDevice, 5)
	for i := range backings {
		backings[i] = core.NewMemDevice(64 << 10)
	}
	devs := Wrap(backings, 23)
	st, err := core.Open(Devices(devs), &core.MemNVRAM{}, core.Options{
		Mode: core.Raid5, StripeUnit: 512, Checksums: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	geo := st.Geometry()
	for _, d := range devs {
		d.SetChecksumRegion(geo.DiskSize)
	}

	old := bytes.Repeat([]byte{0xA1}, int(geo.StripeUnit))
	if _, err := st.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}

	// Tear the next trailer write on the device holding data unit 0.
	target := geo.DataDisk(0, 0)
	devs[target].AddRule(Rule{When: All(Writes(), Trailer()), Do: TornWrite(), Max: 1})

	neu := bytes.Repeat([]byte{0xB2}, int(geo.StripeUnit))
	if _, werr := st.WriteAt(neu, 0); werr == nil {
		t.Fatal("write over a torn trailer should not be acknowledged")
	} else if !errors.Is(werr, ErrTorn) {
		t.Fatalf("expected ErrTorn, got %v", werr)
	}
	if devs[target].Stats().TornWrites != 1 {
		t.Fatalf("torn rule did not fire: %+v", devs[target].Stats())
	}

	got := make([]byte, geo.StripeUnit)
	if _, err := st.ReadAt(got, 0); err != nil {
		t.Fatalf("read after torn trailer must repair, not fail: %v", err)
	}
	if !bytes.Equal(got, old) && !bytes.Equal(got, neu) {
		t.Fatalf("unacknowledged unit must settle on old or new content, got %x...", got[:8])
	}
	stats := st.Stats()
	if stats.ChecksumDetected == 0 || stats.ChecksumRepaired == 0 {
		t.Fatalf("torn slot not detected/repaired: %+v", stats)
	}
	if stats.ChecksumLost != 0 {
		t.Fatalf("torn slot reported as loss: %+v", stats)
	}
	// The repaired stripe is fully consistent again.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := st.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("stripes still inconsistent after repair: %v", bad)
	}
}

// TestEpisodeChecksumsRepairFlips drives seeded chaos episodes with
// silent bit flips armed on both I/O paths. With checksums on, every
// episode must end corruption-free: flips are either detected and
// repaired or surface as reported loss — never served silently.
func TestEpisodeChecksumsRepairFlips(t *testing.T) {
	flips, detected := 0, uint64(0)
	for _, m := range []core.Mode{core.Afraid, core.Raid5, core.Raid6, core.Afraid6} {
		for seed := int64(0); seed < 8; seed++ {
			res := runOne(t, Config{
				Seed: 40 + seed, Mode: m,
				Checksums: true, FlipBits: 2, ReadRot: 1,
			})
			flips += res.FlipBits
			detected += res.ChecksumsDetected
		}
	}
	if flips == 0 {
		t.Fatal("no flip rule ever fired; the matrix is vacuous")
	}
	if detected == 0 {
		t.Fatalf("%d flips injected but the store detected none", flips)
	}
}

// TestEpisodeChecksumsUnderCrash mixes flips with the power-cut and
// repair schedules: detection must survive crash recovery, disk
// failure, and rebuild onto a replacement.
func TestEpisodeChecksumsUnderCrash(t *testing.T) {
	for _, m := range []core.Mode{core.Afraid, core.Raid5, core.Afraid6} {
		for seed := int64(0); seed < 6; seed++ {
			runOne(t, Config{
				Seed: 80 + seed, Mode: m,
				Checksums: true, FlipBits: 1, ReadRot: 1,
				PowerCut: true, DiskFails: 1, Repair: true,
			})
		}
	}
}

// TestEpisodeFlipsWithoutChecksumsViolate is the bites-proof: the same
// flip schedule with Options.Checksums off must produce at least one
// silent-corruption violation across the seed sweep, showing both that
// the harness can see the corruption and that the checksum layer is
// what prevents it.
func TestEpisodeFlipsWithoutChecksumsViolate(t *testing.T) {
	violations, flips := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		res, err := RunEpisode(Config{
			Seed: 120 + seed, Mode: core.Raid5,
			Checksums: false, FlipBits: 2, ReadRot: 1,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", 120+seed, err)
		}
		violations += len(res.Violations)
		flips += res.FlipBits
	}
	if flips == 0 {
		t.Fatal("no flip rule ever fired")
	}
	if violations == 0 {
		t.Fatal("flips with checksums disabled produced no violations; the detection claim is vacuous")
	}
}
