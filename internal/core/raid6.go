package core

import (
	"fmt"

	"afraid/internal/layout"
	"afraid/internal/parity"
)

// RAID 6 / AFRAID6 support for the functional store (§5 extension):
// Raid6 maintains P and Q synchronously; Afraid6 defers the Q update
// (or both, with Options.DeferBothParities) to the scrubber. Deferring
// only Q keeps every stripe single-failure recoverable at all times —
// the "partial redundancy protection available immediately" point of
// the paper — while still removing most of the small-update penalty.

// parityFresh reports which of a stripe's parity blocks are trustworthy
// given its dirty state: Q is stale while dirty; P additionally when
// both updates are deferred. Synchronous Raid6 never marks, so both are
// always fresh there.
func (s *Store) parityFresh(dirty bool) (pFresh, qFresh bool) {
	if !dirty {
		return true, true
	}
	return !s.opts.DeferBothParities, false
}

// deadSet returns the currently failed disks.
func (s *Store) deadSet() []int {
	var out []int
	if s.dead >= 0 {
		out = append(out, s.dead)
	}
	if s.dead2 >= 0 {
		out = append(out, s.dead2)
	}
	return out
}

// materialize6 reconstructs all data units of a stripe around the dead
// disks. It reports ok=false when the surviving fresh parities cannot
// cover the missing units (the data-loss case). Caller holds the
// stripe lock.
func (s *Store) materialize6(stripe int64, dead []int, pFresh, qFresh bool) (units [][]byte, ok bool, err error) {
	unit := s.geo.StripeUnit
	off := s.geo.DiskOffset(stripe)
	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}

	units = make([][]byte, s.geo.DataDisks())
	var missing []int
	for i := range units {
		units[i] = make([]byte, unit)
		d := s.geo.DataDisk(stripe, i)
		if isDead(d) {
			missing = append(missing, i)
			continue
		}
		if err := s.devRead(d, units[i], off); err != nil {
			return nil, false, err
		}
	}
	if len(missing) == 0 {
		return units, true, nil
	}

	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	pAvail := pFresh && !isDead(pDisk)
	qAvail := qFresh && !isDead(qDisk)

	readParity := func(d int) ([]byte, error) {
		buf := make([]byte, unit)
		if err := s.devRead(d, buf, off); err != nil {
			return nil, err
		}
		return buf, nil
	}

	switch {
	case len(missing) == 1 && pAvail:
		p, err := readParity(pDisk)
		if err != nil {
			return nil, false, err
		}
		survivors := make([][]byte, 0, len(units)-1)
		for i, u := range units {
			if i != missing[0] {
				survivors = append(survivors, u)
			}
		}
		parity.Reconstruct(units[missing[0]], p, survivors...)
		return units, true, nil

	case len(missing) == 1 && qAvail:
		q, err := readParity(qDisk)
		if err != nil {
			return nil, false, err
		}
		surv := make(map[int][]byte, len(units)-1)
		for i, u := range units {
			if i != missing[0] {
				surv[i] = u
			}
		}
		parity.ReconstructOnePQ(units[missing[0]], missing[0], true, q, surv)
		return units, true, nil

	case len(missing) == 2 && pAvail && qAvail:
		p, err := readParity(pDisk)
		if err != nil {
			return nil, false, err
		}
		q, err := readParity(qDisk)
		if err != nil {
			return nil, false, err
		}
		surv := make(map[int][]byte, len(units)-2)
		for i, u := range units {
			if i != missing[0] && i != missing[1] {
				surv[i] = u
			}
		}
		parity.ReconstructTwoPQ(units[missing[0]], units[missing[1]],
			missing[0], missing[1], p, q, surv)
		return units, true, nil
	}
	return units, false, nil
}

// readSpan6 reads one stripe's extents on a RAID 6 store, using erasure
// reconstruction around failed disks. Caller holds the stripe lock.
func (s *Store) readSpan6(p []byte, base int64, sp layout.StripeSpan) error {
	s.meta.Lock()
	dead := s.deadSet()
	dirty := s.marks.IsMarked(sp.Stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)

	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}

	var units [][]byte // lazily materialized
	for _, e := range sp.Extents {
		dst := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		if !isDead(e.Disk) {
			if err := s.devRead(e.Disk, dst, e.DiskOff); err != nil {
				return err
			}
			continue
		}
		if units == nil {
			var ok bool
			var err error
			units, ok, err = s.materialize6(sp.Stripe, dead, pFresh, qFresh)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("%w: stripe %d", ErrDataLoss, sp.Stripe)
			}
			s.meta.Lock()
			s.stats.DegradedReads++
			s.meta.Unlock()
		}
		copy(dst, units[e.DataIdx][e.UnitOff:e.UnitOff+e.Len])
	}
	return nil
}

// writeSpan6 dispatches a RAID 6 stripe write. Caller holds the stripe
// lock.
func (s *Store) writeSpan6(p []byte, base int64, sp layout.StripeSpan) error {
	s.meta.Lock()
	dead := s.deadSet()
	s.meta.Unlock()

	if len(dead) > 0 {
		return s.writeSpanDegraded6(p, base, sp, dead)
	}

	switch {
	case s.opts.Mode == Raid6:
		return s.writeSpanSync6(p, base, sp, true, true)
	case s.opts.DeferBothParities:
		if err := s.markStripe(sp.Stripe); err != nil {
			return err
		}
		return s.writeSpanData(p, base, sp, -1)
	default: // Afraid6 deferring Q only: synchronous P, data write
		if err := s.markStripe(sp.Stripe); err != nil {
			return err
		}
		return s.writeSpanSync6(p, base, sp, true, false)
	}
}

// markStripe marks a stripe dirty, persists the map, and tracks the
// dirty-count high-water mark (the widest the unredundancy window ever
// got — the paper's exposure metric).
func (s *Store) markStripe(stripe int64) error {
	s.meta.Lock()
	changed := s.marks.Mark(stripe)
	var err error
	if changed {
		if c := s.marks.Count(); c > s.stats.DirtyHighWater {
			s.stats.DirtyHighWater = c
		}
		err = s.persistMarks()
	}
	s.meta.Unlock()
	return err
}

// writeSpanSync6 performs the double-parity read-modify-write for the
// included parities: read old data (and old P/Q ranges), delta-update,
// write data and parities.
func (s *Store) writeSpanSync6(p []byte, base int64, sp layout.StripeSpan, withP, withQ bool) error {
	stripe := sp.Stripe
	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	for _, e := range sp.Extents {
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		old := make([]byte, e.Len)
		if err := s.devRead(e.Disk, old, e.DiskOff); err != nil {
			return err
		}
		rangeOff := s.geo.DiskOffset(stripe) + e.UnitOff
		if withP {
			par := make([]byte, e.Len)
			if err := s.devRead(pDisk, par, rangeOff); err != nil {
				return err
			}
			parity.Update(par, old, src)
			if err := s.devWrite(pDisk, par, rangeOff); err != nil {
				return err
			}
		}
		if withQ {
			q := make([]byte, e.Len)
			if err := s.devRead(qDisk, q, rangeOff); err != nil {
				return err
			}
			parity.UpdateQ(q, old, src, e.DataIdx)
			if err := s.devWrite(qDisk, q, rangeOff); err != nil {
				return err
			}
		}
		if err := s.devWrite(e.Disk, src, e.DiskOff); err != nil {
			return err
		}
	}
	return nil
}

// writeSpanDegraded6 rewrites the stripe image around failed disks,
// keeping the surviving parities fresh so the missing units stay
// encoded. Caller holds the stripe lock.
func (s *Store) writeSpanDegraded6(p []byte, base int64, sp layout.StripeSpan, dead []int) error {
	stripe := sp.Stripe
	s.meta.Lock()
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)

	units, ok, err := s.materialize6(stripe, dead, pFresh, qFresh)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: stripe %d", ErrDataLoss, stripe)
	}
	for _, e := range sp.Extents {
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		copy(units[e.DataIdx][e.UnitOff:], src)
	}
	return s.storeStripeImage6(stripe, units, dead, dirty)
}

// storeStripeImage6 writes back data and recomputed parities to every
// surviving disk; with both parity disks alive the stripe ends fully
// redundant and is unmarked. A dead disk's unit (data, P, or Q) is
// mirrored onto an in-progress replacement once the repair sweep has
// passed this stripe — see storeStripeImage.
func (s *Store) storeStripeImage6(stripe int64, units [][]byte, dead []int, wasDirty bool) error {
	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}
	mirror := func(d int, buf []byte, off int64) error {
		if rd := s.repairTarget(stripe, d); rd != nil {
			if _, err := rd.WriteAt(buf, off); err != nil {
				return fmt.Errorf("core: repair mirror write: %w", err)
			}
		}
		return nil
	}
	off := s.geo.DiskOffset(stripe)
	for i, u := range units {
		d := s.geo.DataDisk(stripe, i)
		if isDead(d) {
			if err := mirror(d, u, off); err != nil {
				return err
			}
			continue
		}
		if err := s.devWrite(d, u, off); err != nil {
			return err
		}
	}
	pBuf := make([]byte, s.geo.StripeUnit)
	qBuf := make([]byte, s.geo.StripeUnit)
	parity.ComputePQ(pBuf, qBuf, units...)
	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	pWritten, qWritten := false, false
	if !isDead(pDisk) {
		if err := s.devWrite(pDisk, pBuf, off); err != nil {
			return err
		}
		pWritten = true
	} else if err := mirror(pDisk, pBuf, off); err != nil {
		return err
	}
	if !isDead(qDisk) {
		if err := s.devWrite(qDisk, qBuf, off); err != nil {
			return err
		}
		qWritten = true
	} else if err := mirror(qDisk, qBuf, off); err != nil {
		return err
	}
	// The stripe is fully fresh only if both live parities were
	// rewritten; a dead parity disk gets its copy at repair time.
	if wasDirty && pWritten && qWritten {
		s.meta.Lock()
		s.marks.Unmark(stripe)
		err := s.persistMarks()
		s.meta.Unlock()
		return err
	}
	return nil
}

// rebuildParity6 is the scrubber's RAID 6 path: recompute the parities
// from the data units. Caller holds the stripe lock; no disks are dead
// (the scrubber checks). Both parities are always rewritten, even when
// only Q is deferred: a marked stripe may carry a *torn* synchronous P
// from a write interrupted by a crash, and unmarking it with that stale
// P in place would plant latent corruption.
func (s *Store) rebuildParity6(stripe int64) error {
	unit := s.geo.StripeUnit
	off := s.geo.DiskOffset(stripe)
	units := make([][]byte, s.geo.DataDisks())
	for i := range units {
		units[i] = make([]byte, unit)
		d := s.geo.DataDisk(stripe, i)
		if err := s.devRead(d, units[i], off); err != nil {
			return fmt.Errorf("core: scrub: %w", err)
		}
	}
	pBuf := make([]byte, unit)
	qBuf := make([]byte, unit)
	parity.ComputePQ(pBuf, qBuf, units...)
	if err := s.devWrite(s.geo.ParityDisk(stripe), pBuf, off); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	if err := s.devWrite(s.geo.QDisk(stripe), qBuf, off); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	return nil
}

// checkParity6 verifies both parities of every stripe.
func (s *Store) checkParity6() ([]int64, error) {
	var bad []int64
	unit := s.geo.StripeUnit
	for stripe := int64(0); stripe < s.geo.Stripes(); stripe++ {
		lk := s.stripeLock(stripe)
		lk.Lock()
		units := make([][]byte, s.geo.DataDisks())
		var err error
		for i := range units {
			units[i] = make([]byte, unit)
			d := s.geo.DataDisk(stripe, i)
			if _, err = s.devs[d].ReadAt(units[i], s.geo.DiskOffset(stripe)); err != nil {
				break
			}
		}
		var pBuf, qBuf []byte
		if err == nil {
			pBuf = make([]byte, unit)
			_, err = s.devs[s.geo.ParityDisk(stripe)].ReadAt(pBuf, s.geo.DiskOffset(stripe))
		}
		if err == nil {
			qBuf = make([]byte, unit)
			_, err = s.devs[s.geo.QDisk(stripe)].ReadAt(qBuf, s.geo.DiskOffset(stripe))
		}
		lk.Unlock()
		if err != nil {
			return nil, err
		}
		if !parity.CheckPQ(pBuf, qBuf, units...) {
			bad = append(bad, stripe)
		}
	}
	return bad, nil
}

// repairStripe6 reconstructs the target disk's unit of one stripe onto
// the replacement. When this repair makes the array whole again, the
// stripe's parities are refreshed and its mark cleared. Caller holds
// the stripe lock.
func (s *Store) repairStripe6(stripe int64, target int, replacement BlockDevice, report *DamageReport) error {
	unit := s.geo.StripeUnit
	off := s.geo.DiskOffset(stripe)
	s.meta.Lock()
	dead := s.deadSet()
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)

	units, ok, err := s.materialize6(stripe, dead, pFresh, qFresh)
	if err != nil {
		return err
	}
	role, dataIdx := s.geo.RoleOf(stripe, target)

	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}
	// devFor routes writes to the replacement for the target disk.
	devFor := func(d int) BlockDevice {
		if d == target {
			return replacement
		}
		return s.devs[d]
	}
	// reachable reports whether a disk can be written during this
	// repair: it is alive, or it is the target being rebuilt.
	reachable := func(d int) bool { return d == target || !isDead(d) }

	if !ok {
		// Unrecoverable stripe: every missing data unit's contents are
		// gone for good. Zero them all in the image, report each once,
		// write zeros to the target if it holds data, and refresh every
		// reachable parity over the zeroed image so later repairs
		// reconstruct zeros instead of garbage through a stale parity.
		zero := make([]byte, unit)
		for i := 0; i < s.geo.DataDisks(); i++ {
			d := s.geo.DataDisk(stripe, i)
			if !isDead(d) {
				continue
			}
			copy(units[i], zero) // materialize left them zeroed; be explicit
			report.Lost = append(report.Lost, DamagedRange{
				Offset: stripe*s.geo.StripeDataBytes() + int64(i)*unit,
				Length: unit,
				Stripe: stripe,
			})
		}
		if role == layout.Data {
			if _, err := replacement.WriteAt(zero, off); err != nil {
				return err
			}
		}
		pBuf := make([]byte, unit)
		qBuf := make([]byte, unit)
		parity.ComputePQ(pBuf, qBuf, units...)
		pDisk, qDisk := s.geo.ParityDisk(stripe), s.geo.QDisk(stripe)
		pOK, qOK := reachable(pDisk), reachable(qDisk)
		if pOK {
			if _, err := devFor(pDisk).WriteAt(pBuf, off); err != nil {
				return err
			}
		}
		if qOK {
			if _, err := devFor(qDisk).WriteAt(qBuf, off); err != nil {
				return err
			}
		}
		// With both parities rewritten, the stripe is self-consistent
		// (over zeroed lost units) and fully redundant again.
		if pOK && qOK {
			s.clearMark(stripe)
		}
		return nil
	}

	switch role {
	case layout.Data:
		if _, err := replacement.WriteAt(units[dataIdx], off); err != nil {
			return err
		}
	case layout.Parity, layout.ParityQ:
		pBuf := make([]byte, unit)
		qBuf := make([]byte, unit)
		parity.ComputePQ(pBuf, qBuf, units...)
		buf := pBuf
		if role == layout.ParityQ {
			buf = qBuf
		}
		if _, err := replacement.WriteAt(buf, off); err != nil {
			return err
		}
	}
	s.bumpRecovered()

	// Last repair: refresh both parities and clear the mark so the
	// array ends fully redundant.
	if len(dead) == 1 {
		pBuf := make([]byte, unit)
		qBuf := make([]byte, unit)
		parity.ComputePQ(pBuf, qBuf, units...)
		if _, err := devFor(s.geo.ParityDisk(stripe)).WriteAt(pBuf, off); err != nil {
			return err
		}
		if _, err := devFor(s.geo.QDisk(stripe)).WriteAt(qBuf, off); err != nil {
			return err
		}
		s.clearMark(stripe)
	}
	return nil
}
