package core

import (
	"fmt"
	"time"

	"afraid/internal/layout"
	"afraid/internal/parity"
)

// RAID 6 / AFRAID6 support for the functional store (§5 extension):
// Raid6 maintains P and Q synchronously; Afraid6 defers the Q update
// (or both, with Options.DeferBothParities) to the scrubber. Deferring
// only Q keeps every stripe single-failure recoverable at all times —
// the "partial redundancy protection available immediately" point of
// the paper — while still removing most of the small-update penalty.

// parityFresh reports which of a stripe's parity blocks are trustworthy
// given its dirty state: Q is stale while dirty; P additionally when
// both updates are deferred. Synchronous Raid6 never marks, so both are
// always fresh there.
func (s *Store) parityFresh(dirty bool) (pFresh, qFresh bool) {
	if !dirty {
		return true, true
	}
	return !s.opts.DeferBothParities, false
}

// deadSet returns the currently failed disks.
func (s *Store) deadSet() []int {
	var out []int
	if s.dead >= 0 {
		out = append(out, s.dead)
	}
	if s.dead2 >= 0 {
		out = append(out, s.dead2)
	}
	return out
}

// materialize6 reconstructs all data units of a stripe into sb around
// the dead disks, fanning the survivor reads out to the I/O workers.
// It reports ok=false when the surviving fresh parities cannot cover
// the missing units (the data-loss case); the missing units' buffers
// then hold arbitrary pooled contents and must not be read. Caller
// holds the stripe lock.
func (s *Store) materialize6(sb *stripeBuf, stripe int64, dead []int, pFresh, qFresh bool) (ok bool, err error) {
	off := s.geo.DiskOffset(stripe)
	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}

	skipA, skipB := -1, -1
	if len(dead) > 0 {
		skipA = dead[0]
	}
	if len(dead) > 1 {
		skipB = dead[1]
	}
	if err := s.readStripeUnits(sb, stripe, skipA, skipB); err != nil {
		return false, err
	}
	var missBuf [2]int
	missing := missBuf[:0]
	for i := range sb.units {
		if isDead(s.geo.DataDisk(stripe, i)) {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return true, nil
	}

	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	pAvail := pFresh && !isDead(pDisk)
	qAvail := qFresh && !isDead(qDisk)

	switch {
	case len(missing) == 1 && pAvail:
		if err := s.devRead(pDisk, sb.p, off); err != nil {
			return false, err
		}
		parity.Reconstruct(sb.units[missing[0]], sb.p, sb.survivors(missing[0])...)
		return true, nil

	case len(missing) == 1 && qAvail:
		if err := s.devRead(qDisk, sb.q, off); err != nil {
			return false, err
		}
		surv := make(map[int][]byte, len(sb.units)-1)
		for i, u := range sb.units {
			if i != missing[0] {
				surv[i] = u
			}
		}
		parity.ReconstructOnePQ(sb.units[missing[0]], missing[0], true, sb.q, surv)
		return true, nil

	case len(missing) == 2 && pAvail && qAvail:
		if err := s.devRead(pDisk, sb.p, off); err != nil {
			return false, err
		}
		if err := s.devRead(qDisk, sb.q, off); err != nil {
			return false, err
		}
		surv := make(map[int][]byte, len(sb.units)-2)
		for i, u := range sb.units {
			if i != missing[0] && i != missing[1] {
				surv[i] = u
			}
		}
		parity.ReconstructTwoPQ(sb.units[missing[0]], sb.units[missing[1]],
			missing[0], missing[1], sb.p, sb.q, surv)
		return true, nil
	}
	return false, nil
}

// readSpan6 reads one stripe's extents on a RAID 6 store, using erasure
// reconstruction around failed disks. Caller holds the stripe lock.
func (s *Store) readSpan6(p []byte, base int64, sp layout.StripeSpan) error {
	s.meta.Lock()
	dead := s.deadSet()
	dirty := s.marks.IsMarked(sp.Stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)

	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}

	var sb *stripeBuf // lazily materialized
	defer func() {
		if sb != nil {
			s.putStripeBuf(sb)
		}
	}()
	for _, e := range sp.Extents {
		dst := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		if !isDead(e.Disk) {
			if err := s.devRead(e.Disk, dst, e.DiskOff); err != nil {
				return err
			}
			continue
		}
		if sb == nil {
			sb = s.getStripeBuf()
			ok, err := s.materialize6(sb, sp.Stripe, dead, pFresh, qFresh)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("%w: stripe %d", ErrDataLoss, sp.Stripe)
			}
			s.meta.Lock()
			s.stats.DegradedReads++
			s.meta.Unlock()
		}
		copy(dst, sb.units[e.DataIdx][e.UnitOff:e.UnitOff+e.Len])
	}
	return nil
}

// writeSpan6 dispatches a RAID 6 stripe write. Caller holds the stripe
// lock.
func (s *Store) writeSpan6(p []byte, base int64, sp layout.StripeSpan) error {
	s.meta.Lock()
	dead := s.deadSet()
	s.meta.Unlock()

	if len(dead) > 0 {
		return s.writeSpanDegraded6(p, base, sp, dead)
	}

	switch {
	case s.opts.Mode == Raid6:
		return s.writeSpanSync6(p, base, sp, true, true)
	case s.opts.DeferBothParities:
		// Both parities go stale at the mark, so corruption under a
		// partial extent must be found (and repaired) while they are
		// still fresh — see preflightChecksums.
		if err := s.preflightChecksums(sp); err != nil {
			return err
		}
		if err := s.markStripe(sp.Stripe); err != nil {
			return err
		}
		return s.writeSpanData(p, base, sp, -1)
	default: // Afraid6 deferring Q only: synchronous P, data write
		if err := s.markStripe(sp.Stripe); err != nil {
			return err
		}
		return s.writeSpanSync6(p, base, sp, true, false)
	}
}

// markStripe marks a stripe dirty, persists the map, and tracks the
// dirty-count high-water mark (the widest the unredundancy window ever
// got — the paper's exposure metric).
func (s *Store) markStripe(stripe int64) error {
	s.meta.Lock()
	changed := s.marks.Mark(stripe)
	// A fresh write may overwrite the corrupt unit that put the stripe
	// in quarantine; let the scrubber try again.
	s.dropQuarantine(stripe)
	var err error
	if changed {
		if c := s.marks.Count(); c > s.stats.DirtyHighWater {
			s.stats.DirtyHighWater = c
		}
		err = s.commitMarks()
	}
	s.meta.Unlock()
	return err
}

// writeSpanSync6 performs the double-parity read-modify-write for the
// included parities: read old data (and old P/Q ranges), delta-update,
// write data and parities.
func (s *Store) writeSpanSync6(p []byte, base int64, sp layout.StripeSpan, withP, withQ bool) error {
	for _, e := range sp.Extents {
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		if err := s.rmwExtent6(sp.Stripe, e, src, withP, withQ); err != nil {
			return err
		}
	}
	return nil
}

// rmwExtent6 is one extent's double-parity read-modify-write. The old
// data, old P, and old Q ranges live on three different disks; two
// reads go to the I/O workers while this goroutine does the third, and
// all scratch comes from the stripe-buffer pool.
func (s *Store) rmwExtent6(stripe int64, e layout.Extent, src []byte, withP, withQ bool) error {
	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	rangeOff := s.geo.DiskOffset(stripe) + e.UnitOff
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	sb.errs[0], sb.errs[1] = nil, nil
	old := sb.units[0][:e.Len]
	s.devReadAsync(e.Disk, old, e.DiskOff, &sb.errs[0], &sb.wg)
	var par, q []byte
	if withP {
		par = sb.p[:e.Len]
		s.devReadAsync(pDisk, par, rangeOff, &sb.errs[1], &sb.wg)
	}
	var qerr error
	if withQ {
		q = sb.q[:e.Len]
		qerr = s.devRead(qDisk, q, rangeOff)
	}
	sb.wg.Wait()
	if sb.errs[0] != nil {
		return sb.errs[0]
	}
	if sb.errs[1] != nil {
		return sb.errs[1]
	}
	if qerr != nil {
		return qerr
	}
	pt := time.Now()
	if withP {
		parity.Update(par, old, src)
	}
	if withQ {
		parity.UpdateQ(q, old, src, e.DataIdx)
	}
	s.observeParity(pt)
	if withP {
		if err := s.devWrite(pDisk, par, rangeOff); err != nil {
			return err
		}
	}
	if withQ {
		if err := s.devWrite(qDisk, q, rangeOff); err != nil {
			return err
		}
	}
	return s.devWrite(e.Disk, src, e.DiskOff)
}

// writeSpanDegraded6 rewrites the stripe image around failed disks,
// keeping the surviving parities fresh so the missing units stay
// encoded. Caller holds the stripe lock.
func (s *Store) writeSpanDegraded6(p []byte, base int64, sp layout.StripeSpan, dead []int) error {
	stripe := sp.Stripe
	s.meta.Lock()
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)

	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	ok, err := s.materialize6(sb, stripe, dead, pFresh, qFresh)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: stripe %d", ErrDataLoss, stripe)
	}
	for _, e := range sp.Extents {
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		copy(sb.units[e.DataIdx][e.UnitOff:], src)
	}
	return s.storeStripeImage6(stripe, sb, dead, dirty)
}

// storeStripeImage6 writes back data and recomputed parities to every
// surviving disk; with both parity disks alive the stripe ends fully
// redundant and is unmarked. A dead disk's unit (data, P, or Q) is
// mirrored onto an in-progress replacement once the repair sweep has
// passed this stripe — see storeStripeImage.
func (s *Store) storeStripeImage6(stripe int64, sb *stripeBuf, dead []int, wasDirty bool) error {
	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}
	mirror := func(d int, buf []byte, off int64) error {
		if rd := s.repairTarget(stripe, d); rd != nil {
			if _, err := rd.WriteAt(buf, off); err != nil {
				return fmt.Errorf("core: repair mirror write: %w", err)
			}
			if err := s.putChecksumTo(rd, stripe, buf); err != nil {
				return err
			}
		}
		return nil
	}
	off := s.geo.DiskOffset(stripe)
	for i, u := range sb.units {
		d := s.geo.DataDisk(stripe, i)
		if isDead(d) {
			if err := mirror(d, u, off); err != nil {
				return err
			}
			continue
		}
		if err := s.devWrite(d, u, off); err != nil {
			return err
		}
	}
	pt := time.Now()
	parity.ComputePQ(sb.p, sb.q, sb.units...)
	s.observeParity(pt)
	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	pWritten, qWritten := false, false
	if !isDead(pDisk) {
		if err := s.devWrite(pDisk, sb.p, off); err != nil {
			return err
		}
		pWritten = true
	} else if err := mirror(pDisk, sb.p, off); err != nil {
		return err
	}
	if !isDead(qDisk) {
		if err := s.devWrite(qDisk, sb.q, off); err != nil {
			return err
		}
		qWritten = true
	} else if err := mirror(qDisk, sb.q, off); err != nil {
		return err
	}
	// The stripe is fully fresh only if both live parities were
	// rewritten; a dead parity disk gets its copy at repair time.
	if wasDirty && pWritten && qWritten {
		s.meta.Lock()
		s.marks.Unmark(stripe)
		s.dropQuarantine(stripe)
		err := s.commitMarks()
		s.meta.Unlock()
		return err
	}
	return nil
}

// rebuildParity6 is the scrubber's RAID 6 path: recompute the parities
// from the data units. Caller holds the stripe lock; no disks are dead
// (the scrubber checks). Both parities are always rewritten, even when
// only Q is deferred: a marked stripe may carry a *torn* synchronous P
// from a write interrupted by a crash, and unmarking it with that stale
// P in place would plant latent corruption.
func (s *Store) rebuildParity6(stripe int64) error {
	off := s.geo.DiskOffset(stripe)
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	if err := s.readStripeUnits(sb, stripe, -1, -1); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	pt := time.Now()
	parity.ComputePQ(sb.p, sb.q, sb.units...)
	s.observeParity(pt)
	if err := s.devWrite(s.geo.ParityDisk(stripe), sb.p, off); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	if err := s.devWrite(s.geo.QDisk(stripe), sb.q, off); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	return nil
}

// checkStripe6 verifies one stripe's P and Q under its stripe lock.
func (s *Store) checkStripe6(sb *stripeBuf, stripe int64) (bool, error) {
	off := s.geo.DiskOffset(stripe)
	lk := s.stripeLock(stripe)
	lk.Lock()
	err := s.readStripeUnits(sb, stripe, -1, -1)
	if err == nil {
		err = s.devRead(s.geo.ParityDisk(stripe), sb.p, off)
	}
	if err == nil {
		err = s.devRead(s.geo.QDisk(stripe), sb.q, off)
	}
	lk.Unlock()
	if err != nil {
		return false, err
	}
	return parity.CheckPQ(sb.p, sb.q, sb.units...), nil
}

// repairStripe6 reconstructs the target disk's unit of one stripe onto
// the replacement. When this repair makes the array whole again, the
// stripe's parities are refreshed and its mark cleared. Caller holds
// the stripe lock.
func (s *Store) repairStripe6(stripe int64, target int, replacement BlockDevice, report *DamageReport) error {
	unit := s.geo.StripeUnit
	off := s.geo.DiskOffset(stripe)
	s.meta.Lock()
	dead := s.deadSet()
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)

	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	ok, err := s.materialize6(sb, stripe, dead, pFresh, qFresh)
	if err != nil {
		return err
	}
	role, dataIdx := s.geo.RoleOf(stripe, target)

	isDead := func(d int) bool {
		for _, x := range dead {
			if x == d {
				return true
			}
		}
		return false
	}
	// devFor routes writes to the replacement for the target disk.
	devFor := func(d int) BlockDevice {
		if d == target {
			return replacement
		}
		return s.devs[d]
	}
	// reachable reports whether a disk can be written during this
	// repair: it is alive, or it is the target being rebuilt.
	reachable := func(d int) bool { return d == target || !isDead(d) }

	if !ok {
		// Unrecoverable stripe: every missing data unit's contents are
		// gone for good. Zero them all in the image (the pooled buffers
		// hold arbitrary contents), report each once, write zeros to the
		// target if it holds data, and refresh every reachable parity
		// over the zeroed image so later repairs reconstruct zeros
		// instead of garbage through a stale parity.
		for i := 0; i < s.geo.DataDisks(); i++ {
			d := s.geo.DataDisk(stripe, i)
			if !isDead(d) {
				continue
			}
			clear(sb.units[i])
			report.Lost = append(report.Lost, DamagedRange{
				Offset: stripe*s.geo.StripeDataBytes() + int64(i)*unit,
				Length: unit,
				Stripe: stripe,
			})
		}
		if role == layout.Data {
			if _, err := replacement.WriteAt(sb.units[dataIdx], off); err != nil {
				return err
			}
			if err := s.putChecksumTo(replacement, stripe, sb.units[dataIdx]); err != nil {
				return err
			}
		}
		parity.ComputePQ(sb.p, sb.q, sb.units...)
		pDisk, qDisk := s.geo.ParityDisk(stripe), s.geo.QDisk(stripe)
		pOK, qOK := reachable(pDisk), reachable(qDisk)
		if pOK {
			if _, err := devFor(pDisk).WriteAt(sb.p, off); err != nil {
				return err
			}
			if err := s.putChecksumTo(devFor(pDisk), stripe, sb.p); err != nil {
				return err
			}
		}
		if qOK {
			if _, err := devFor(qDisk).WriteAt(sb.q, off); err != nil {
				return err
			}
			if err := s.putChecksumTo(devFor(qDisk), stripe, sb.q); err != nil {
				return err
			}
		}
		// With both parities rewritten, the stripe is self-consistent
		// (over zeroed lost units) and fully redundant again.
		if pOK && qOK {
			s.clearMark(stripe)
		}
		return nil
	}

	switch role {
	case layout.Data:
		if _, err := replacement.WriteAt(sb.units[dataIdx], off); err != nil {
			return err
		}
		if err := s.putChecksumTo(replacement, stripe, sb.units[dataIdx]); err != nil {
			return err
		}
	case layout.Parity, layout.ParityQ:
		parity.ComputePQ(sb.p, sb.q, sb.units...)
		buf := sb.p
		if role == layout.ParityQ {
			buf = sb.q
		}
		if _, err := replacement.WriteAt(buf, off); err != nil {
			return err
		}
		if err := s.putChecksumTo(replacement, stripe, buf); err != nil {
			return err
		}
	}
	s.bumpRecovered()

	// Last repair: refresh both parities and clear the mark so the
	// array ends fully redundant.
	if len(dead) == 1 {
		parity.ComputePQ(sb.p, sb.q, sb.units...)
		pd, qd := devFor(s.geo.ParityDisk(stripe)), devFor(s.geo.QDisk(stripe))
		if _, err := pd.WriteAt(sb.p, off); err != nil {
			return err
		}
		if err := s.putChecksumTo(pd, stripe, sb.p); err != nil {
			return err
		}
		if _, err := qd.WriteAt(sb.q, off); err != nil {
			return err
		}
		if err := s.putChecksumTo(qd, stripe, sb.q); err != nil {
			return err
		}
		s.clearMark(stripe)
	}
	return nil
}
