package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"afraid/internal/layout"
	"afraid/internal/parity"
)

// maxInlineScrub bounds how many stripes a single write is ever held
// hostage rebuilding. The valve still applies back-pressure — a flood
// of writers each pays for a few rebuilds — but one victim request can
// no longer stall indefinitely while its peers keep re-dirtying
// stripes; the remainder of the backlog is handed to scrubLoop.
const maxInlineScrub = 4

// kickScrub nudges the scrubber when the dirty-threshold policy demands
// immediate rebuilding: it does a small, bounded synchronous rebuild
// pass inline when the backlog is far over threshold, then wakes
// scrubLoop to drain the rest in the background.
func (s *Store) kickScrub() {
	th := s.opts.DirtyThreshold
	if th <= 0 {
		return
	}
	s.meta.Lock()
	over := s.marks.Count()-int64(len(s.quarantine)) > 2*int64(th)
	s.meta.Unlock()
	if !over {
		return
	}
	// Rebuild a bounded batch in the caller's context, like the paper's
	// policy of starting parity updates under load.
	for i := 0; i < maxInlineScrub; i++ {
		s.meta.Lock()
		n := s.marks.Count() - int64(len(s.quarantine))
		s.meta.Unlock()
		if n <= int64(th) {
			return
		}
		built, _ := s.scrubOne(true, nil)
		if !built {
			return
		}
		s.meta.Lock()
		s.stats.InlineScrubs++
		s.meta.Unlock()
	}
	// Still over threshold: hand the backlog to scrubLoop without
	// blocking (the channel holds one pending kick; more add nothing).
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// scrubLoop is the background parity rebuilder: it waits for the store
// to be idle for ScrubIdle, for the dirty backlog to exceed the
// threshold, or for a kick from the write-path pressure valve, then
// runs a scrub episode.
func (s *Store) scrubLoop() {
	defer s.wg.Done()
	poll := s.opts.ScrubIdle / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		case <-s.kick:
		}
		s.scrubPass()
	}
}

// scrubPass runs one scrub episode: rebuild stripes until the backlog
// is gone, the idle window closes, or foreground I/O preempts an idle
// rebuild. Episode starts and lengths feed the scrub accounting.
func (s *Store) scrubPass() {
	var (
		started time.Time
		built   int
	)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		s.meta.Lock()
		// Quarantined stripes are dirty but undrainable; they must not
		// keep an episode spinning.
		dirty := s.marks.Count() - int64(len(s.quarantine))
		idleFor := time.Since(s.lastIO)
		gen := s.scrubGen
		s.meta.Unlock()
		if dirty == 0 {
			break
		}
		forced := s.opts.DirtyThreshold > 0 && dirty > int64(s.opts.DirtyThreshold)
		if !forced && idleFor < s.opts.ScrubIdle {
			break
		}
		// An idle rebuild must not consume a mark freshened by a write
		// landing after the sample above: scrubOne re-checks gen under
		// the stripe lock. Forced rebuilds pass nil — they must make
		// progress even under sustained writes, or the backlog (and
		// Flush behind it) could be starved forever.
		genp := &gen
		if forced {
			genp = nil
		}
		if built == 0 {
			started = time.Now()
			s.meta.Lock()
			if forced {
				s.stats.ForcedEpisodes++
			} else {
				s.stats.IdleEpisodes++
			}
			s.meta.Unlock()
		}
		ok, err := s.scrubOne(forced, genp)
		if err != nil || !ok {
			break
		}
		built++
	}
	if built > 0 {
		s.ob.scrubEpisode.Observe(time.Since(started))
	}
}

// scrubOne rebuilds the parity of one dirty stripe: read all data
// units, xor, write parity, clear the mark. It reports whether a
// stripe was rebuilt. When gen is non-nil (an idle-path rebuild), the
// stripe is abandoned if foreground I/O has bumped the scrub
// generation since the caller sampled *gen — otherwise a write landing
// between the idle check and the rebuild would have its fresh mark
// consumed as "idle" scrubbing, competing with the very I/O the idle
// policy exists to yield to.
func (s *Store) scrubOne(forced bool, gen *uint64) (bool, error) {
	s.meta.Lock()
	if s.dead >= 0 || s.dead2 >= 0 {
		// Cannot rebuild parity with a missing disk; RepairDisk will.
		s.meta.Unlock()
		return false, nil
	}
	stripe, ok := s.nextUnclaimed()
	s.meta.Unlock()
	if !ok {
		return false, nil
	}
	defer func() {
		s.meta.Lock()
		delete(s.claimed, stripe)
		s.meta.Unlock()
	}()

	start := time.Now()
	lk := s.stripeLock(stripe)
	lk.Lock()
	defer lk.Unlock()

	s.meta.Lock()
	if gen != nil && s.scrubGen != *gen {
		s.stats.ScrubPreempts++
		s.meta.Unlock()
		return false, nil
	}
	stillDirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	if !stillDirty {
		return true, nil // raced with a degraded write; count as progress
	}

	var rerr error
	for tries := 0; ; tries++ {
		if s.geo.Level == layout.RAID6 {
			rerr = s.rebuildParity6(stripe)
		} else {
			rerr = s.rebuildParity(stripe)
		}
		// A unit that fails checksum verification mid-rebuild is repaired
		// from redundancy and the rebuild retried; rebuilding parity over
		// the corrupt bytes would bless them forever.
		if rerr == nil || tries >= s.spanRetryBudget() {
			break
		}
		var retry bool
		if retry, rerr = s.absorbMismatch(rerr); !retry {
			break
		}
	}
	if rerr != nil {
		if s.absorbFailure(rerr) {
			// A member failed mid-rebuild: the store is now degraded and
			// scrubbing pauses until RepairDisk (the check at the top of
			// this function). The stripe keeps its mark.
			return false, nil
		}
		if errors.Is(rerr, ErrDataLoss) {
			// Detected corruption this stripe's stale parity cannot undo:
			// quarantine it (kept dirty, skipped by the drains, reads
			// report loss) and count the claim as progress so callers
			// move on to other stripes.
			s.quarantineStripe(stripe)
			return true, nil
		}
		return false, rerr
	}

	s.meta.Lock()
	s.marks.Unmark(stripe)
	s.dropQuarantine(stripe)
	s.stats.ScrubbedStripes++
	if forced {
		s.stats.ForcedScrubs++
	}
	err := s.commitMarks()
	s.meta.Unlock()
	s.ob.scrubStripe.Observe(time.Since(start))
	return true, err
}

// nextUnclaimed picks the first dirty stripe no other drain worker is
// already rebuilding and claims it. The claim keeps concurrent Flush
// workers off each other's stripes — without it, every worker would
// take marks.Next(0) and serialize on the same stripe lock. Caller
// holds meta; the claimer must delete its claim when done.
//
// Bitmap.Next wraps past the end of the array, so a claimed stripe
// would be returned again forever once it is the only mark left; the
// st < from check detects the wrap and reports "nothing unclaimed"
// instead of spinning with meta held.
func (s *Store) nextUnclaimed() (int64, bool) {
	from := int64(0)
	for {
		st, ok := s.marks.Next(from)
		if !ok || st < from {
			return 0, false
		}
		if !s.claimed[st] && !s.quarantine[st] {
			s.claimed[st] = true
			return st, true
		}
		from = st + 1
	}
}

// rebuildParity recomputes and writes one stripe's parity from its data
// units, read concurrently from their disks into a pooled stripe
// arena. Caller holds the stripe lock.
func (s *Store) rebuildParity(stripe int64) error {
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	if err := s.readStripeUnits(sb, stripe, -1, -1); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	pt := time.Now()
	parity.Compute(sb.p, sb.units...)
	s.observeParity(pt)
	if err := s.devWrite(s.geo.ParityDisk(stripe), sb.p, s.geo.DiskOffset(stripe)); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	return nil
}

// Flush synchronously rebuilds parity for every dirty stripe — the
// whole-array parity point. After a successful Flush the store is fully
// redundant.
func (s *Store) Flush() error {
	return s.FlushContext(context.Background())
}

// FlushContext is Flush with cancellation, checked between stripes.
// Stripes scrubbed before cancellation stay redundant. With more than
// one scrub worker configured, dirty stripes are drained concurrently:
// each worker claims a distinct stripe (see nextUnclaimed) and rebuilds
// it under its stripe lock, so the per-disk reads of several rebuilds
// overlap.
func (s *Store) FlushContext(ctx context.Context) error {
	if s.opts.Mode == Raid0 {
		return nil
	}
	workers := s.scrubWorkers()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.meta.Lock()
		if s.closed {
			s.meta.Unlock()
			return ErrClosed
		}
		dead := s.dead
		if s.dead2 >= 0 {
			dead = s.dead2
		}
		n := s.marks.Count()
		q := int64(len(s.quarantine))
		s.meta.Unlock()
		if n-q <= 0 {
			if q > 0 {
				// Every remaining mark is a quarantined stripe: rebuilding
				// its parity would seal detected corruption in. The store
				// cannot be made fully redundant; say so.
				return s.quarantineError()
			}
			return nil
		}
		if dead >= 0 {
			return fmt.Errorf("core: cannot flush with disk %d failed: %w", dead, ErrTooManyFailures)
		}
		// gen is nil: Flush must drain regardless of foreground I/O, or
		// concurrent writers could starve it forever.
		var built int64
		if workers <= 1 || n == 1 {
			ok, err := s.scrubOne(false, nil)
			if err != nil {
				return err
			}
			if ok {
				built = 1
			}
		} else {
			var err error
			built, err = s.drainParallel(ctx, workers)
			if err != nil {
				return err
			}
		}
		if built == 0 {
			// Every remaining mark is claimed by another drainer (the
			// background scrubber, a parity point, or an inline scrub).
			// Yield briefly instead of spinning until they release.
			time.Sleep(100 * time.Microsecond)
		}
		// Loop: stripes re-dirtied by concurrent writers (or abandoned
		// when another claimer raced) get another round; the n == 0
		// check above is the only exit with a clean store.
	}
}

// drainParallel runs one round of concurrent scrubOne workers until no
// unclaimed dirty stripe remains or a worker fails; the first error
// wins and stops the others at their next claim attempt. It reports
// how many stripes the round rebuilt so the caller can tell progress
// from "everything left is claimed elsewhere".
func (s *Store) drainParallel(ctx context.Context, workers int) (int64, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		built atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				stop := first != nil
				mu.Unlock()
				if stop {
					return
				}
				ok, err := s.scrubOne(false, nil)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				if !ok {
					return
				}
				built.Add(1)
			}
		}()
	}
	wg.Wait()
	return built.Load(), first
}

// ParityPoint makes the stripes covering [off, off+length) redundant
// now — the §5 "commit" operation, analogous to the paritypoints of
// Cormen & Kotz. It returns once their parity is consistent.
func (s *Store) ParityPoint(off, length int64) error {
	return s.ParityPointContext(context.Background(), off, length)
}

// ParityPointContext is ParityPoint with cancellation, checked between
// stripes. Multi-stripe ranges are drained by a pool of scrub workers
// striding an atomic cursor; a single-stripe range (or ScrubWorkers=1)
// runs inline on the caller's goroutine, so the common "commit this
// record" case spawns nothing and allocates nothing.
func (s *Store) ParityPointContext(ctx context.Context, off, length int64) error {
	if err := s.checkRange(off, length); err != nil {
		return err
	}
	if length == 0 || s.opts.Mode == Raid0 {
		return nil
	}
	first := off / s.geo.StripeDataBytes()
	last := (off + length - 1) / s.geo.StripeDataBytes()
	workers := s.scrubWorkers()
	if span := last - first + 1; span < int64(workers) {
		workers = int(span)
	}
	if workers <= 1 {
		for stripe := first; stripe <= last; stripe++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := s.parityPointStripe(stripe); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cur      atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	cur.Store(first)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				stripe := cur.Add(1) - 1
				if stripe > last {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := s.parityPointStripe(stripe); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// parityPointStripe makes one stripe redundant if it is dirty. The
// dirty check is repeated under the stripe lock so a rebuild that
// raced with the scrubber (or another parity-point worker) is skipped
// instead of done twice.
func (s *Store) parityPointStripe(stripe int64) error {
	s.meta.Lock()
	dirty := s.marks.IsMarked(stripe)
	quarantined := s.quarantine[stripe]
	dead := s.dead
	if s.dead2 >= 0 {
		dead = s.dead2
	}
	s.meta.Unlock()
	if !dirty {
		return nil
	}
	if quarantined {
		return fmt.Errorf("core: stripe %d held dirty by unrecoverable checksum corruption: %w", stripe, ErrDataLoss)
	}
	if dead >= 0 {
		return fmt.Errorf("core: cannot make stripe %d redundant with disk %d failed: %w", stripe, dead, ErrTooManyFailures)
	}
	lk := s.stripeLock(stripe)
	lk.Lock()
	defer lk.Unlock()
	s.meta.Lock()
	dirty = s.marks.IsMarked(stripe)
	s.meta.Unlock()
	if !dirty {
		return nil
	}
	var err error
	for tries := 0; ; tries++ {
		if s.geo.Level == layout.RAID6 {
			err = s.rebuildParity6(stripe)
		} else {
			err = s.rebuildParity(stripe)
		}
		if err == nil || tries >= s.spanRetryBudget() {
			break
		}
		var retry bool
		if retry, err = s.absorbMismatch(err); !retry {
			break
		}
	}
	if err != nil {
		if errors.Is(err, ErrDataLoss) {
			s.quarantineStripe(stripe)
		}
		return err
	}
	s.meta.Lock()
	s.marks.Unmark(stripe)
	s.stats.ScrubbedStripes++
	err = s.commitMarks()
	s.meta.Unlock()
	return err
}

// CheckParity verifies every stripe's parity against its data and
// returns the stripes that are inconsistent, in ascending order. On a
// healthy AFRAID store the result is exactly the set of dirty stripes;
// after Flush it is empty. RAID 0 stores trivially verify. Stripes are
// checked by a pool of scrub workers, each with its own pooled arena.
func (s *Store) CheckParity() ([]int64, error) {
	if s.opts.Mode == Raid0 {
		return nil, nil
	}
	stripes := s.geo.Stripes()
	workers := s.scrubWorkers()
	if int64(workers) > stripes {
		workers = int(stripes)
	}
	raid6 := s.geo.Level == layout.RAID6
	var (
		cur      atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		bad      []int64
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sb := s.getStripeBuf()
			defer s.putStripeBuf(sb)
			for {
				stripe := cur.Add(1) - 1
				if stripe >= stripes {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				var consistent bool
				var err error
				for tries := 0; ; tries++ {
					if raid6 {
						consistent, err = s.checkStripe6(sb, stripe)
					} else {
						consistent, err = s.checkStripe(sb, stripe)
					}
					if err == nil || tries >= s.spanRetryBudget() {
						break
					}
					// checkStripe drops the stripe lock before returning, so
					// the repair re-acquires it.
					var retry bool
					if retry, err = s.absorbMismatchIn(err); !retry {
						break
					}
				}
				if err != nil && errors.Is(err, ErrDataLoss) {
					// Corruption beyond redundancy: the stripe is by
					// definition inconsistent. Report it in the result
					// rather than failing the whole audit.
					consistent, err = false, nil
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if !consistent {
					mu.Lock()
					bad = append(bad, stripe)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad, nil
}

// checkStripe verifies one stripe's parity under its stripe lock.
func (s *Store) checkStripe(sb *stripeBuf, stripe int64) (bool, error) {
	lk := s.stripeLock(stripe)
	lk.Lock()
	err := s.readStripeUnits(sb, stripe, -1, -1)
	if err == nil {
		err = s.devRead(s.geo.ParityDisk(stripe), sb.p, s.geo.DiskOffset(stripe))
	}
	lk.Unlock()
	if err != nil {
		return false, err
	}
	return parity.Check(sb.p, sb.units...), nil
}
