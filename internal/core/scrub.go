package core

import (
	"context"
	"fmt"
	"time"

	"afraid/internal/layout"
	"afraid/internal/parity"
)

// maxInlineScrub bounds how many stripes a single write is ever held
// hostage rebuilding. The valve still applies back-pressure — a flood
// of writers each pays for a few rebuilds — but one victim request can
// no longer stall indefinitely while its peers keep re-dirtying
// stripes; the remainder of the backlog is handed to scrubLoop.
const maxInlineScrub = 4

// kickScrub nudges the scrubber when the dirty-threshold policy demands
// immediate rebuilding: it does a small, bounded synchronous rebuild
// pass inline when the backlog is far over threshold, then wakes
// scrubLoop to drain the rest in the background.
func (s *Store) kickScrub() {
	th := s.opts.DirtyThreshold
	if th <= 0 {
		return
	}
	s.meta.Lock()
	over := s.marks.Count() > 2*int64(th)
	s.meta.Unlock()
	if !over {
		return
	}
	// Rebuild a bounded batch in the caller's context, like the paper's
	// policy of starting parity updates under load.
	for i := 0; i < maxInlineScrub; i++ {
		s.meta.Lock()
		n := s.marks.Count()
		s.meta.Unlock()
		if n <= int64(th) {
			return
		}
		built, _ := s.scrubOne(true, nil)
		if !built {
			return
		}
		s.meta.Lock()
		s.stats.InlineScrubs++
		s.meta.Unlock()
	}
	// Still over threshold: hand the backlog to scrubLoop without
	// blocking (the channel holds one pending kick; more add nothing).
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// scrubLoop is the background parity rebuilder: it waits for the store
// to be idle for ScrubIdle, for the dirty backlog to exceed the
// threshold, or for a kick from the write-path pressure valve, then
// runs a scrub episode.
func (s *Store) scrubLoop() {
	defer s.wg.Done()
	poll := s.opts.ScrubIdle / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		case <-s.kick:
		}
		s.scrubPass()
	}
}

// scrubPass runs one scrub episode: rebuild stripes until the backlog
// is gone, the idle window closes, or foreground I/O preempts an idle
// rebuild. Episode starts and lengths feed the scrub accounting.
func (s *Store) scrubPass() {
	var (
		started time.Time
		built   int
	)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		s.meta.Lock()
		dirty := s.marks.Count()
		idleFor := time.Since(s.lastIO)
		gen := s.scrubGen
		s.meta.Unlock()
		if dirty == 0 {
			break
		}
		forced := s.opts.DirtyThreshold > 0 && dirty > int64(s.opts.DirtyThreshold)
		if !forced && idleFor < s.opts.ScrubIdle {
			break
		}
		// An idle rebuild must not consume a mark freshened by a write
		// landing after the sample above: scrubOne re-checks gen under
		// the stripe lock. Forced rebuilds pass nil — they must make
		// progress even under sustained writes, or the backlog (and
		// Flush behind it) could be starved forever.
		genp := &gen
		if forced {
			genp = nil
		}
		if built == 0 {
			started = time.Now()
			s.meta.Lock()
			if forced {
				s.stats.ForcedEpisodes++
			} else {
				s.stats.IdleEpisodes++
			}
			s.meta.Unlock()
		}
		ok, err := s.scrubOne(forced, genp)
		if err != nil || !ok {
			break
		}
		built++
	}
	if built > 0 {
		s.ob.scrubEpisode.Observe(time.Since(started))
	}
}

// scrubOne rebuilds the parity of one dirty stripe: read all data
// units, xor, write parity, clear the mark. It reports whether a
// stripe was rebuilt. When gen is non-nil (an idle-path rebuild), the
// stripe is abandoned if foreground I/O has bumped the scrub
// generation since the caller sampled *gen — otherwise a write landing
// between the idle check and the rebuild would have its fresh mark
// consumed as "idle" scrubbing, competing with the very I/O the idle
// policy exists to yield to.
func (s *Store) scrubOne(forced bool, gen *uint64) (bool, error) {
	s.meta.Lock()
	if s.dead >= 0 || s.dead2 >= 0 {
		// Cannot rebuild parity with a missing disk; RepairDisk will.
		s.meta.Unlock()
		return false, nil
	}
	stripe, ok := s.marks.Next(0)
	s.meta.Unlock()
	if !ok {
		return false, nil
	}

	start := time.Now()
	lk := s.stripeLock(stripe)
	lk.Lock()
	defer lk.Unlock()

	s.meta.Lock()
	if gen != nil && s.scrubGen != *gen {
		s.stats.ScrubPreempts++
		s.meta.Unlock()
		return false, nil
	}
	stillDirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	if !stillDirty {
		return true, nil // raced with a degraded write; count as progress
	}

	var rerr error
	if s.geo.Level == layout.RAID6 {
		rerr = s.rebuildParity6(stripe)
	} else {
		rerr = s.rebuildParity(stripe)
	}
	if rerr != nil {
		if s.absorbFailure(rerr) {
			// A member failed mid-rebuild: the store is now degraded and
			// scrubbing pauses until RepairDisk (the check at the top of
			// this function). The stripe keeps its mark.
			return false, nil
		}
		return false, rerr
	}

	s.meta.Lock()
	s.marks.Unmark(stripe)
	s.stats.ScrubbedStripes++
	if forced {
		s.stats.ForcedScrubs++
	}
	err := s.persistMarks()
	s.meta.Unlock()
	s.ob.scrubStripe.Observe(time.Since(start))
	return true, err
}

// rebuildParity recomputes and writes one stripe's parity from its data
// units. Caller holds the stripe lock.
func (s *Store) rebuildParity(stripe int64) error {
	unit := s.geo.StripeUnit
	off := s.geo.DiskOffset(stripe)
	units := make([][]byte, s.geo.DataDisks())
	for i := range units {
		units[i] = make([]byte, unit)
		d := s.geo.DataDisk(stripe, i)
		if err := s.devRead(d, units[i], off); err != nil {
			return fmt.Errorf("core: scrub: %w", err)
		}
	}
	par := make([]byte, unit)
	pt := time.Now()
	parity.Compute(par, units...)
	s.observeParity(pt)
	if err := s.devWrite(s.geo.ParityDisk(stripe), par, off); err != nil {
		return fmt.Errorf("core: scrub: %w", err)
	}
	return nil
}

// Flush synchronously rebuilds parity for every dirty stripe — the
// whole-array parity point. After a successful Flush the store is fully
// redundant.
func (s *Store) Flush() error {
	return s.FlushContext(context.Background())
}

// FlushContext is Flush with cancellation, checked between stripes.
// Stripes scrubbed before cancellation stay redundant.
func (s *Store) FlushContext(ctx context.Context) error {
	if s.opts.Mode == Raid0 {
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.meta.Lock()
		if s.closed {
			s.meta.Unlock()
			return ErrClosed
		}
		dead := s.dead
		if s.dead2 >= 0 {
			dead = s.dead2
		}
		n := s.marks.Count()
		s.meta.Unlock()
		if n == 0 {
			return nil
		}
		if dead >= 0 {
			return fmt.Errorf("core: cannot flush with disk %d failed: %w", dead, ErrTooManyFailures)
		}
		// gen is nil: Flush must drain regardless of foreground I/O, or
		// concurrent writers could starve it forever.
		if _, err := s.scrubOne(false, nil); err != nil {
			return err
		}
	}
}

// ParityPoint makes the stripes covering [off, off+length) redundant
// now — the §5 "commit" operation, analogous to the paritypoints of
// Cormen & Kotz. It returns once their parity is consistent.
func (s *Store) ParityPoint(off, length int64) error {
	return s.ParityPointContext(context.Background(), off, length)
}

// ParityPointContext is ParityPoint with cancellation, checked between
// stripes.
func (s *Store) ParityPointContext(ctx context.Context, off, length int64) error {
	if err := s.checkRange(off, length); err != nil {
		return err
	}
	if length == 0 || s.opts.Mode == Raid0 {
		return nil
	}
	first := off / s.geo.StripeDataBytes()
	last := (off + length - 1) / s.geo.StripeDataBytes()
	for stripe := first; stripe <= last; stripe++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.meta.Lock()
		dirty := s.marks.IsMarked(stripe)
		dead := s.dead
		if s.dead2 >= 0 {
			dead = s.dead2
		}
		s.meta.Unlock()
		if !dirty {
			continue
		}
		if dead >= 0 {
			return fmt.Errorf("core: cannot make stripe %d redundant with disk %d failed: %w", stripe, dead, ErrTooManyFailures)
		}
		lk := s.stripeLock(stripe)
		lk.Lock()
		var err error
		if s.geo.Level == layout.RAID6 {
			err = s.rebuildParity6(stripe)
		} else {
			err = s.rebuildParity(stripe)
		}
		if err == nil {
			s.meta.Lock()
			s.marks.Unmark(stripe)
			s.stats.ScrubbedStripes++
			err = s.persistMarks()
			s.meta.Unlock()
		}
		lk.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckParity verifies every stripe's parity against its data and
// returns the stripes that are inconsistent. On a healthy AFRAID store
// the result is exactly the set of dirty stripes; after Flush it is
// empty. RAID 0 stores trivially verify.
func (s *Store) CheckParity() ([]int64, error) {
	if s.opts.Mode == Raid0 {
		return nil, nil
	}
	if s.geo.Level == layout.RAID6 {
		return s.checkParity6()
	}
	var bad []int64
	unit := s.geo.StripeUnit
	for stripe := int64(0); stripe < s.geo.Stripes(); stripe++ {
		lk := s.stripeLock(stripe)
		lk.Lock()
		units := make([][]byte, s.geo.DataDisks())
		var err error
		for i := range units {
			units[i] = make([]byte, unit)
			d := s.geo.DataDisk(stripe, i)
			if _, err = s.devs[d].ReadAt(units[i], s.geo.DiskOffset(stripe)); err != nil {
				break
			}
		}
		var par []byte
		if err == nil {
			par = make([]byte, unit)
			_, err = s.devs[s.geo.ParityDisk(stripe)].ReadAt(par, s.geo.DiskOffset(stripe))
		}
		lk.Unlock()
		if err != nil {
			return nil, err
		}
		if !parity.Check(par, units...) {
			bad = append(bad, stripe)
		}
	}
	return bad, nil
}
