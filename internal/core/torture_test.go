package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// The torture test drives a store through long random sequences of
// writes, reads, flushes, parity points, crashes (close + reopen with
// the same devices and NVRAM), disk failures, and repairs, checking
// after every step against an in-memory reference image plus a model of
// which bytes are legitimately lost. It is the strongest correctness
// statement in the package: AFRAID loses exactly the stripe units that
// the paper says it loses, and nothing else, under any interleaving.

// tortureRNG is a tiny deterministic generator (no math/rand, keeps
// replays stable across Go versions).
type tortureRNG uint64

func (r *tortureRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = tortureRNG(x)
	return x
}

func (r *tortureRNG) intn(n int) int { return int(r.next() % uint64(n)) }

type tortureState struct {
	t    *testing.T
	rng  tortureRNG
	mode Mode
	csum bool // run with Options.Checksums and inject bit flips
	devs []BlockDevice
	nv   *MemNVRAM
	s    *Store
	img  []byte         // reference contents
	lost map[int64]bool // client unit offsets legitimately lost
	dead map[int]bool
	unit int64
	sb   int64 // stripe data bytes

	flippedParity bool // latent parity flips outstanding (csum mode)
	flips         int
	detected      uint64 // ChecksumDetected accumulated across reopens
	csumLost      uint64 // ChecksumLost accumulated across reopens
}

// harvestStats folds the live store's checksum counters into the
// cross-reopen accumulators (a reopened store starts them at zero).
func (ts *tortureState) harvestStats() {
	st := ts.s.Stats()
	ts.detected += st.ChecksumDetected
	ts.csumLost += st.ChecksumLost
}

func newTorture(t *testing.T, mode Mode, disks int, seed uint64, csum bool) *tortureState {
	ts := &tortureState{
		t:    t,
		rng:  tortureRNG(seed),
		mode: mode,
		csum: csum,
		nv:   &MemNVRAM{},
		lost: map[int64]bool{},
		dead: map[int]bool{},
	}
	ts.devs = make([]BlockDevice, disks)
	for i := range ts.devs {
		ts.devs[i] = NewMemDevice(128 << 10)
	}
	ts.open()
	ts.img = make([]byte, ts.s.Capacity())
	ts.unit = ts.s.Geometry().StripeUnit
	ts.sb = ts.s.Geometry().StripeDataBytes()
	return ts
}

func (ts *tortureState) open() {
	s, err := Open(ts.devs, ts.nv, Options{
		Mode:            ts.mode,
		StripeUnit:      testUnit,
		ScrubIdle:       time.Hour,
		DisableScrubber: true,
		Checksums:       ts.csum,
	})
	if err != nil {
		ts.t.Fatalf("open: %v", err)
	}
	ts.s = s
}

// unitsIn returns the client unit offsets overlapping [off, off+n).
func (ts *tortureState) unitsIn(off, n int64) []int64 {
	var out []int64
	for u := off / ts.unit * ts.unit; u < off+n; u += ts.unit {
		out = append(out, u)
	}
	return out
}

// expectLoss reports whether any unit in [off, off+n) is modeled lost.
func (ts *tortureState) expectLoss(off, n int64) bool {
	for _, u := range ts.unitsIn(off, n) {
		if ts.lost[u] {
			return true
		}
	}
	return false
}

// diskUnitOffset returns the client offset of the unit the given disk
// holds in the given stripe, or -1 if the disk holds parity there.
func (ts *tortureState) diskUnitOffset(stripe int64, disk int) int64 {
	geo := ts.s.Geometry()
	for i := 0; i < geo.DataDisks(); i++ {
		if geo.DataDisk(stripe, i) == disk {
			return stripe*ts.sb + int64(i)*ts.unit
		}
	}
	return -1
}

// markLossOnFailure models the paper's exposure rule at failure time,
// stripe by stripe: a dirty stripe loses its data units on failed disks
// exactly when the missing units outnumber the surviving *fresh*
// parities. Plain AFRAID has no fresh parity while dirty; AFRAID6
// deferring only Q keeps P fresh (one failure absorbed); synchronous
// modes never have dirty stripes.
func (ts *tortureState) markLossOnFailure(failed int) {
	switch ts.mode {
	case Raid5, Raid6:
		return
	}
	geo := ts.s.Geometry()
	s := ts.s
	s.meta.Lock()
	dirty := s.marks.Marked()
	s.meta.Unlock()
	for _, stripe := range dirty {
		var missing []int64
		for d := range ts.dead {
			if off := ts.diskUnitOffset(stripe, d); off >= 0 {
				missing = append(missing, off)
			}
		}
		if len(missing) == 0 {
			continue
		}
		availParity := 0
		if ts.mode == Afraid6 && !ts.s.opts.DeferBothParities {
			// P stays fresh in defer-Q mode; it helps unless the P
			// disk itself is among the dead.
			if !ts.dead[geo.ParityDisk(stripe)] {
				availParity = 1
			}
		}
		if len(missing) > availParity {
			for _, off := range missing {
				ts.lost[off] = true
			}
		}
	}
}

// verifyAll reads the whole store and checks every unit against the
// model: intact units must match the reference image; lost units must
// return ErrDataLoss (before repair) or zeros (after repair).
func (ts *tortureState) verifyAll(repaired bool) {
	buf := make([]byte, ts.unit)
	for off := int64(0); off < ts.s.Capacity(); off += ts.unit {
		_, err := ts.s.ReadAt(buf, off)
		switch {
		case ts.lost[off] && !repaired:
			if !errors.Is(err, ErrDataLoss) {
				ts.t.Fatalf("unit %d modeled lost but read returned %v", off, err)
			}
		case ts.lost[off] && repaired:
			if err != nil {
				ts.t.Fatalf("repaired lost unit %d: %v", off, err)
			}
			if !bytes.Equal(buf, make([]byte, ts.unit)) {
				ts.t.Fatalf("repaired lost unit %d not zero-filled", off)
			}
		default:
			if err != nil {
				ts.t.Fatalf("intact unit %d: %v", off, err)
			}
			if !bytes.Equal(buf, ts.img[off:off+ts.unit]) {
				ts.t.Fatalf("intact unit %d corrupted", off)
			}
		}
	}
}

// resync reads back [off, off+n) unit by unit and folds readable
// contents into the reference image (used after partially-applied
// writes, whose prefix spans landed before the error).
func (ts *tortureState) resync(off, n int64) {
	buf := make([]byte, ts.unit)
	for _, u := range ts.unitsIn(off, n) {
		if _, err := ts.s.ReadAt(buf, u); err == nil {
			copy(ts.img[u:u+ts.unit], buf)
		} else if !errors.Is(err, ErrDataLoss) {
			ts.t.Fatalf("resync read at %d: %v", u, err)
		}
	}
}

// logf records the operation stream under -v for debugging failures.
func (ts *tortureState) logf(format string, args ...interface{}) {
	if testing.Verbose() {
		ts.t.Logf(format, args...)
	}
}

// maybeFlip injects silent corruption (csum mode only): one flipped bit
// on a random disk's unit of a random *clean* stripe, behind the
// store's back. A flipped data unit must be detected and repaired by
// the very next read of it — checked on the spot. A flipped parity
// unit stays latent (nothing reads it until a degraded read, a
// read-modify-write, or an audit); it is swept up by CheckParity before
// any disk failure, since corrupt parity plus a dead member would be a
// genuine double failure the loss model does not track.
func (ts *tortureState) maybeFlip(i int) {
	if len(ts.dead) > 0 {
		return
	}
	geo := ts.s.Geometry()
	stripe := int64(ts.rng.intn(int(geo.Stripes())))
	ts.s.meta.Lock()
	dirty := ts.s.marks.IsMarked(stripe)
	ts.s.meta.Unlock()
	if dirty {
		return
	}
	d := ts.rng.intn(len(ts.devs))
	off := geo.DiskOffset(stripe) + int64(ts.rng.intn(int(ts.unit)))
	b := make([]byte, 1)
	if _, err := ts.devs[d].ReadAt(b, off); err != nil {
		ts.t.Fatalf("step %d: flip read: %v", i, err)
	}
	b[0] ^= 1 << (ts.rng.intn(8))
	if _, err := ts.devs[d].WriteAt(b, off); err != nil {
		ts.t.Fatalf("step %d: flip write: %v", i, err)
	}
	ts.flips++
	uoff := ts.diskUnitOffset(stripe, d)
	ts.logf("step %d: flip disk %d stripe %d (unit off %d)", i, d, stripe, uoff)
	if uoff < 0 {
		ts.flippedParity = true
		return
	}
	// A latent parity flip in this same stripe would make the fresh data
	// flip a double failure on single-parity layouts; sweep first (which
	// may also repair the data flip — the read below passes either way).
	before := ts.s.Stats().ChecksumDetected
	ts.sweepParityFlips(i)
	buf := make([]byte, ts.unit)
	if _, err := ts.s.ReadAt(buf, uoff); err != nil {
		ts.t.Fatalf("step %d: read of flipped unit %d: %v", i, uoff, err)
	}
	if !bytes.Equal(buf, ts.img[uoff:uoff+ts.unit]) {
		ts.t.Fatalf("step %d: flipped unit %d served corrupt", i, uoff)
	}
	if ts.s.Stats().ChecksumDetected == before {
		ts.t.Fatalf("step %d: flip on unit %d served correctly but undetected", i, uoff)
	}
}

// sweepParityFlips repairs latent parity corruption via a full audit.
func (ts *tortureState) sweepParityFlips(i int) {
	if !ts.flippedParity {
		return
	}
	if _, err := ts.s.CheckParity(); err != nil {
		ts.t.Fatalf("step %d: parity sweep: %v", i, err)
	}
	ts.flippedParity = false
}

func (ts *tortureState) step(i int) {
	s := ts.s
	capacity := s.Capacity()
	if ts.csum && ts.rng.intn(8) == 0 {
		ts.maybeFlip(i)
	}
	switch op := ts.rng.intn(100); {
	case op < 50: // write
		n := int64(ts.rng.intn(3*int(ts.unit)) + 1)
		off := int64(ts.rng.intn(int(capacity - n)))
		ts.logf("step %d: write [%d,%d) stripe %d..%d dead=%v", i, off, off+n, off/ts.sb, (off+n-1)/ts.sb, ts.dead)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(ts.rng.next())
		}
		_, err := s.WriteAt(data, off)
		switch {
		case err == nil:
			copy(ts.img[off:], data)
		case errors.Is(err, ErrDataLoss):
			if !ts.expectLoss(off, n) && len(ts.dead) == 0 {
				ts.t.Fatalf("step %d: spurious write loss at %d: %v", i, off, err)
			}
			// A multi-stripe write fails span by span: earlier spans
			// may have been applied. Resync the reference image with
			// whatever is actually readable.
			ts.resync(off, n)
		default:
			ts.t.Fatalf("step %d: write: %v", i, err)
		}
	case op < 75: // read
		n := int64(ts.rng.intn(2*int(ts.unit)) + 1)
		off := int64(ts.rng.intn(int(capacity - n)))
		ts.logf("step %d: read [%d,%d) stripe %d..%d dead=%v dirty=%v", i, off, off+n, off/ts.sb, (off+n-1)/ts.sb, ts.dead, ts.s.DirtyStripes())
		got := make([]byte, n)
		_, err := s.ReadAt(got, off)
		switch {
		case errors.Is(err, ErrDataLoss):
			if !ts.expectLoss(off, n) {
				ts.t.Fatalf("step %d: spurious read loss at [%d,%d)", i, off, off+n)
			}
		case err != nil:
			ts.t.Fatalf("step %d: read: %v", i, err)
		case ts.expectLoss(off, n):
			// Lost range read successfully: only legal if it was
			// zero-filled by a repair (checked in verifyAll).
		default:
			if !bytes.Equal(got, ts.img[off:off+n]) {
				ts.t.Fatalf("step %d: read mismatch at [%d,%d)", i, off, off+n)
			}
		}
	case op < 82: // flush or parity point
		if len(ts.dead) > 0 {
			return
		}
		ts.logf("step %d: flush/paritypoint", i)
		if ts.rng.intn(2) == 0 {
			if err := s.Flush(); err != nil {
				ts.t.Fatalf("step %d: flush: %v", i, err)
			}
		} else {
			off := int64(ts.rng.intn(int(capacity/ts.sb))) * ts.sb
			if err := s.ParityPoint(off, ts.sb); err != nil {
				ts.t.Fatalf("step %d: parity point: %v", i, err)
			}
		}
	case op < 90: // crash and reopen
		ts.logf("step %d: crash+reopen", i)
		ts.harvestStats()
		if err := s.Close(); err != nil {
			ts.t.Fatalf("step %d: close: %v", i, err)
		}
		ts.open()
	case op < 96: // fail a disk, if redundancy allows
		limit := 1
		if ts.mode == Raid6 || ts.mode == Afraid6 {
			limit = 2
		}
		if len(ts.dead) >= limit {
			return
		}
		d := ts.rng.intn(len(ts.devs))
		if ts.dead[d] {
			return
		}
		if ts.csum {
			ts.sweepParityFlips(i)
		}
		ts.logf("step %d: fail disk %d", i, d)
		if err := s.FailDisk(d); err != nil {
			ts.t.Fatalf("step %d: fail disk %d: %v", i, d, err)
		}
		ts.dead[d] = true
		ts.markLossOnFailure(d)
	default: // repair one failed disk
		for d := range ts.dead {
			ts.logf("step %d: repair disk %d", i, d)
			rep, err := s.RepairDisk(d, NewMemDevice(128<<10))
			if err != nil {
				ts.t.Fatalf("step %d: repair disk %d: %v", i, d, err)
			}
			// Every reported damaged range must be modeled lost; fold
			// the zero-fill into the reference image.
			for _, dr := range rep.Lost {
				for _, u := range ts.unitsIn(dr.Offset, dr.Length) {
					if !ts.lost[u] {
						ts.t.Fatalf("step %d: repair reported unexpected loss at %d", i, u)
					}
				}
				copy(ts.img[dr.Offset:dr.Offset+dr.Length], make([]byte, dr.Length))
			}
			delete(ts.dead, d)
			ts.devs[d] = s.devs[d] // replacement now lives in the store
			break
		}
		if len(ts.dead) == 0 {
			// Fully repaired: lost units were zero-filled; from here on
			// they read as zeros and the image already reflects that.
			for u := range ts.lost {
				delete(ts.lost, u)
			}
		}
	}
}

func runTorture(t *testing.T, mode Mode, disks int, seed uint64, steps int, csum bool) {
	ts := newTorture(t, mode, disks, seed, csum)
	defer ts.s.Close()
	for i := 0; i < steps; i++ {
		ts.step(i)
	}
	// Settle: repair anything still broken, flush, verify everything.
	for d := range ts.dead {
		rep, err := ts.s.RepairDisk(d, NewMemDevice(128<<10))
		if err != nil {
			t.Fatalf("final repair: %v", err)
		}
		for _, dr := range rep.Lost {
			for _, u := range ts.unitsIn(dr.Offset, dr.Length) {
				if !ts.lost[u] {
					t.Fatalf("final repair reported unexpected loss at %d", u)
				}
			}
			copy(ts.img[dr.Offset:dr.Offset+dr.Length], make([]byte, dr.Length))
		}
		delete(ts.dead, d)
	}
	for u := range ts.lost {
		delete(ts.lost, u)
	}
	if err := ts.s.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	ts.verifyAll(true)
	if bad, err := ts.s.CheckParity(); err != nil || len(bad) != 0 {
		t.Fatalf("final parity check: bad=%v err=%v", bad, err)
	}
	if csum {
		ts.harvestStats()
		if ts.flips > 0 && ts.detected == 0 {
			t.Fatalf("%d flips injected but none detected", ts.flips)
		}
		if ts.csumLost != 0 {
			t.Fatalf("checksum losses on repairable corruption: detected=%d lost=%d", ts.detected, ts.csumLost)
		}
		if q := ts.s.QuarantinedStripes(); len(q) != 0 {
			t.Fatalf("stripes left quarantined: %v", q)
		}
	}
}

func TestTortureAfraid(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runTorture(t, Afraid, 5, seed, 600, false)
		})
	}
}

func TestTortureRaid5(t *testing.T) {
	runTorture(t, Raid5, 5, 99, 500, false)
}

func TestTortureAfraid6(t *testing.T) {
	for seed := uint64(11); seed <= 13; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runTorture(t, Afraid6, 6, seed, 500, false)
		})
	}
}

func TestTortureRaid6(t *testing.T) {
	runTorture(t, Raid6, 6, 7, 500, false)
}

// TestTortureChecksums runs the same gauntlet with Options.Checksums on
// and random bit flips injected between operations: every flip must end
// detected-and-repaired (zero silent corruption, zero losses).
// TestChecksumFlipSilentWhenDisabled proves the same tampering corrupts
// reads when checksums are off, so these passes are not vacuous.
func TestTortureChecksums(t *testing.T) {
	for _, tc := range []struct {
		mode  Mode
		disks int
		seed  uint64
	}{
		{Afraid, 5, 21},
		{Raid5, 5, 22},
		{Afraid6, 6, 23},
		{Raid6, 6, 24},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			runTorture(t, tc.mode, tc.disks, tc.seed, 500, true)
		})
	}
}
