//go:build !linux

package core

import "os"

// preallocFile on platforms without fallocate zero-fills the file's
// unwritten tail, which forces the filesystem to commit real blocks.
func preallocFile(f *os.File, oldSize, size int64) error {
	return zeroFill(f, oldSize, size)
}
