package core

import (
	"sync"
)

// stripeBuf is the per-rebuild scratch arena: one data-unit buffer per
// data disk, P and Q parity buffers, a gather slice for assembling
// variadic survivor lists without allocating, and the error slots +
// WaitGroup used by the concurrent unit-read fan-out. Buffers are
// recycled through the store's sync.Pool, so steady-state scrubbing,
// parity points, and degraded reads allocate nothing.
//
// Unit buffers come back with arbitrary contents; every user either
// fills them from disk, reconstructs into them (a full overwrite), or
// explicitly zeroes them (the unrecoverable-stripe repair path).
type stripeBuf struct {
	units  [][]byte // data units, indexed by data index within the stripe
	p, q   []byte   // parity scratch (q doubles as scratch on RAID 5 paths)
	gather [][]byte // scratch for survivor/operand lists
	errs   []error  // one slot per fanned-out read
	wg     sync.WaitGroup
}

// getStripeBuf returns a stripe arena sized for the store's geometry.
func (s *Store) getStripeBuf() *stripeBuf {
	if v := s.sbPool.Get(); v != nil {
		return v.(*stripeBuf)
	}
	dd := s.geo.DataDisks()
	unit := s.geo.StripeUnit
	sb := &stripeBuf{
		units:  make([][]byte, dd),
		p:      make([]byte, unit),
		q:      make([]byte, unit),
		gather: make([][]byte, 0, dd+1),
		errs:   make([]error, dd+2),
	}
	for i := range sb.units {
		sb.units[i] = make([]byte, unit)
	}
	return sb
}

// putStripeBuf recycles an arena. The caller must not touch it after.
func (s *Store) putStripeBuf(sb *stripeBuf) {
	sb.gather = sb.gather[:0]
	s.sbPool.Put(sb)
}

// ioReq is one device-unit read executed by the store's I/O workers.
// Completion is signalled through wg; the result lands in *errp, made
// visible to the waiter by the WaitGroup's happens-before edge.
type ioReq struct {
	disk int
	buf  []byte
	off  int64
	errp *error
	wg   *sync.WaitGroup
}

// ioWorker serves fanned-out unit reads until the store stops.
func (s *Store) ioWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.ioCh:
			*req.errp = s.devRead(req.disk, req.buf, req.off)
			req.wg.Done()
		}
	}
}

// devReadAsync hands a unit read to an idle I/O worker, or performs it
// inline when none is free (including after Close): the send is
// non-blocking on an unbuffered channel, so a request is either picked
// up immediately or executed by the caller — never parked. This keeps
// the fan-out work-conserving and deadlock-free by construction.
func (s *Store) devReadAsync(disk int, buf []byte, off int64, errp *error, wg *sync.WaitGroup) {
	wg.Add(1)
	select {
	case s.ioCh <- ioReq{disk: disk, buf: buf, off: off, errp: errp, wg: wg}:
	default:
		*errp = s.devRead(disk, buf, off)
		wg.Done()
	}
}

// readStripeUnits fills sb.units[i] from the stripe's data disks,
// fanning the per-disk reads out to the I/O workers — they target
// distinct devices, so they overlap. Disks skipA/skipB (-1 for none)
// are left untouched (their unit buffers keep arbitrary contents). One
// read is kept back and done inline so the calling goroutine
// contributes instead of blocking. Returns the first error in data-
// index order.
func (s *Store) readStripeUnits(sb *stripeBuf, stripe int64, skipA, skipB int) error {
	off := s.geo.DiskOffset(stripe)
	for i := range sb.errs {
		sb.errs[i] = nil
	}
	inline := -1
	for i := range sb.units {
		d := s.geo.DataDisk(stripe, i)
		if d == skipA || d == skipB {
			continue
		}
		if inline < 0 {
			inline = i
			continue
		}
		s.devReadAsync(d, sb.units[i], off, &sb.errs[i], &sb.wg)
	}
	if inline >= 0 {
		sb.errs[inline] = s.devRead(s.geo.DataDisk(stripe, inline), sb.units[inline], off)
	}
	sb.wg.Wait()
	for i := range sb.units {
		if err := sb.errs[i]; err != nil {
			return err
		}
	}
	return nil
}

// survivors gathers sb.units excluding data index skip into sb.gather.
func (sb *stripeBuf) survivors(skip int) [][]byte {
	sb.gather = sb.gather[:0]
	for i, u := range sb.units {
		if i != skip {
			sb.gather = append(sb.gather, u)
		}
	}
	return sb.gather
}
