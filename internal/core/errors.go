package core

import (
	"errors"
	"fmt"
)

// DiskError wraps an I/O error from one member disk with the disk's
// index, so the degraded-mode machinery can tell *which* member failed.
// Every device read and write in the store goes through devRead/devWrite
// below, which produce DiskErrors; the foreground paths use
// errors.As + errors.Is(ErrDeviceFailed) on them to absorb fail-stop
// failures (including wrapped errors injected by internal/fault) and
// retry the operation degraded.
type DiskError struct {
	Disk int
	Op   string // "read" or "write"
	Err  error
}

// Error implements error.
func (e *DiskError) Error() string {
	return fmt.Sprintf("core: disk %d %s: %v", e.Disk, e.Op, e.Err)
}

// Unwrap exposes the underlying device error to errors.Is/As.
func (e *DiskError) Unwrap() error { return e.Err }

// devRead reads from member disk i, wrapping failures with the index.
// With Options.Checksums the unit's contents are verified against its
// checksum slot and a mismatch surfaces as *ChecksumError (see
// checksum.go).
func (s *Store) devRead(i int, p []byte, off int64) error {
	if s.opts.Checksums {
		return s.devReadVerified(i, p, off)
	}
	if _, err := s.devs[i].ReadAt(p, off); err != nil {
		return &DiskError{Disk: i, Op: "read", Err: err}
	}
	return nil
}

// devWrite writes to member disk i, wrapping failures with the index.
// With Options.Checksums the unit's checksum slot is refreshed from the
// in-memory contents, so corruption on the wire or the medium is caught
// by the next verified read.
func (s *Store) devWrite(i int, p []byte, off int64) error {
	if s.opts.Checksums {
		return s.devWriteChecksummed(i, p, off)
	}
	if _, err := s.devs[i].WriteAt(p, off); err != nil {
		return &DiskError{Disk: i, Op: "write", Err: err}
	}
	return nil
}

// absorbFailure inspects an error from a span operation and, when it is
// a member disk reporting fail-stop failure (anything wrapping
// ErrDeviceFailed — matched with errors.Is so injected errors wrapped by
// fault layers count), moves the store to degraded mode. It reports
// whether the failure was absorbed, in which case the caller may retry
// the span: reads reconstruct around the dead disk, writes switch to the
// synchronous degraded protocol.
func (s *Store) absorbFailure(err error) bool {
	var de *DiskError
	if !errors.As(err, &de) || !errors.Is(de.Err, ErrDeviceFailed) {
		return false
	}
	return s.FailDisk(de.Disk) == nil
}
