package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

const (
	testUnit = 4 << 10
	testDisk = 256 << 10 // 64 stripes of 4KB units on each of 5 disks
)

func newDevs(n int) []BlockDevice {
	devs := make([]BlockDevice, n)
	for i := range devs {
		devs[i] = NewMemDevice(testDisk)
	}
	return devs
}

func openTest(t *testing.T, opts Options) (*Store, []BlockDevice) {
	t.Helper()
	opts.StripeUnit = testUnit
	if opts.ScrubIdle == 0 {
		opts.ScrubIdle = time.Hour // keep the scrubber out of the way unless wanted
	}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, devs
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

func TestReadAfterWrite(t *testing.T) {
	for _, mode := range []Mode{Afraid, Raid5, Raid0} {
		s, _ := openTest(t, Options{Mode: mode, DisableScrubber: true})
		data := pattern(3*testUnit+123, 5) // spans stripes and partial units
		if _, err := s.WriteAt(data, 777); err != nil {
			t.Fatalf("%v: write: %v", mode, err)
		}
		got := make([]byte, len(data))
		if _, err := s.ReadAt(got, 777); err != nil {
			t.Fatalf("%v: read: %v", mode, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: read-after-write mismatch", mode)
		}
		s.Close()
	}
}

func TestReadAfterWriteQuick(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	capb := s.Capacity()
	prop := func(rawOff int64, size uint16, seed byte) bool {
		n := int64(size%8192) + 1
		off := rawOff % (capb - n)
		if off < 0 {
			off += capb - n
		}
		data := pattern(int(n), seed)
		if _, err := s.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, n)
		if _, err := s.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAFRAIDMarksThenFlushCleans(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	s.WriteAt(pattern(testUnit, 1), 0)
	s.WriteAt(pattern(testUnit, 2), 10*int64(s.Geometry().StripeDataBytes()))
	if got := s.DirtyStripes(); got != 2 {
		t.Fatalf("dirty = %d, want 2", got)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 {
		t.Fatalf("inconsistent stripes = %v, want the 2 dirty ones", bad)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyStripes(); got != 0 {
		t.Fatalf("dirty after flush = %d", got)
	}
	bad, err = s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("inconsistent stripes after flush: %v", bad)
	}
}

func TestRaid5AlwaysConsistent(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Raid5, DisableScrubber: true})
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.WriteAt(pattern(1000, byte(i)), int64(i)*3333)
	}
	if got := s.DirtyStripes(); got != 0 {
		t.Fatalf("RAID5 store has %d dirty stripes", got)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("RAID5 parity inconsistent: %v", bad)
	}
}

func TestScrubberRebuildsInIdle(t *testing.T) {
	opts := Options{Mode: Afraid, ScrubIdle: 20 * time.Millisecond}
	opts.StripeUnit = testUnit
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.WriteAt(pattern(testUnit, byte(i)), int64(i)*s.Geometry().StripeDataBytes())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.DirtyStripes() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scrubber did not drain: %d dirty", s.DirtyStripes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("scrubbed store has inconsistent stripes %v", bad)
	}
	if s.Stats().ScrubbedStripes == 0 {
		t.Fatal("scrub counter is zero")
	}
}

func TestParityPointMakesRangeRedundant(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	sb := s.Geometry().StripeDataBytes()
	s.WriteAt(pattern(100, 1), 0)
	s.WriteAt(pattern(100, 2), 5*sb)
	if err := s.ParityPoint(0, sb); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyStripes(); got != 1 {
		t.Fatalf("dirty = %d after partial parity point, want 1", got)
	}
}

func TestCrashRecoveryResumesDirtyStripes(t *testing.T) {
	nv := &MemNVRAM{}
	devs := newDevs(5)
	opts := Options{Mode: Afraid, DisableScrubber: true, StripeUnit: testUnit, ScrubIdle: time.Hour}
	s, err := Open(devs, nv, opts)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(2*testUnit, 9)
	s.WriteAt(data, 0)
	dirtyBefore := s.DirtyStripes()
	s.Close() // crash: no flush; NVRAM retains the marks

	s2, err := Open(devs, nv, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.DirtyStripes(); got != dirtyBefore {
		t.Fatalf("recovered dirty = %d, want %d", got, dirtyBefore)
	}
	got := make([]byte, len(data))
	if _, err := s2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across crash")
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if bad, _ := s2.CheckParity(); len(bad) != 0 {
		t.Fatalf("parity inconsistent after recovery flush: %v", bad)
	}
}

func TestCorruptNVRAMTriggersFullRebuild(t *testing.T) {
	nv := &MemNVRAM{}
	nv.Store([]byte("garbage image"))
	devs := newDevs(5)
	s, err := Open(devs, nv, Options{Mode: Afraid, DisableScrubber: true, StripeUnit: testUnit, ScrubIdle: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Stats().NVRAMRecovered {
		t.Fatal("NVRAM recovery not flagged")
	}
	if got := s.DirtyStripes(); got != s.Geometry().Stripes() {
		t.Fatalf("full rebuild should mark all %d stripes, got %d", s.Geometry().Stripes(), got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if bad, _ := s.CheckParity(); len(bad) != 0 {
		t.Fatalf("parity inconsistent after full rebuild: %v", bad)
	}
}

func TestStripePolicyOverrides(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	sb := s.Geometry().StripeDataBytes()
	// Stripe 0: always redundant; stripe 1: never; stripe 2: default.
	if err := s.SetStripePolicy(0, sb, PolicyAlwaysRedundant); err != nil {
		t.Fatal(err)
	}
	if err := s.SetStripePolicy(sb, sb, PolicyNeverRedundant); err != nil {
		t.Fatal(err)
	}
	s.WriteAt(pattern(100, 1), 0)
	s.WriteAt(pattern(100, 2), sb)
	s.WriteAt(pattern(100, 3), 2*sb)
	if got := s.DirtyStripes(); got != 1 {
		t.Fatalf("dirty = %d, want 1 (only the default-policy stripe)", got)
	}
	// Unaligned policy range rejected.
	if err := s.SetStripePolicy(1, sb, PolicyAlwaysRedundant); err == nil {
		t.Fatal("unaligned policy range accepted")
	}
}

func TestBoundsAndClosedErrors(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	buf := make([]byte, 10)
	if _, err := s.ReadAt(buf, s.Capacity()-5); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := s.WriteAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	// Offsets near MaxInt64 must be rejected, not wrapped by off+length
	// overflow into a range that passes the capacity check (and then
	// panics in layout.Split).
	if _, err := s.ReadAt(buf, math.MaxInt64-5); err == nil {
		t.Fatal("overflowing read range accepted")
	}
	if _, err := s.WriteAt(buf, math.MaxInt64-5); err == nil {
		t.Fatal("overflowing write range accepted")
	}
	s.Close()
	if _, err := s.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestMismatchedDeviceSizesRejected(t *testing.T) {
	devs := newDevs(5)
	devs[3] = NewMemDevice(testDisk / 2)
	if _, err := Open(devs, &MemNVRAM{}, Options{StripeUnit: testUnit}); err == nil {
		t.Fatal("mismatched device sizes accepted")
	}
}

func TestDirtyThresholdForcesScrub(t *testing.T) {
	opts := Options{Mode: Afraid, ScrubIdle: time.Hour, DirtyThreshold: 4, StripeUnit: testUnit}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sb := s.Geometry().StripeDataBytes()
	for i := 0; i < 20; i++ {
		s.WriteAt(pattern(100, byte(i)), int64(i)*sb)
	}
	// kickScrub runs inline when far over threshold; the backlog must
	// be bounded near the threshold despite ScrubIdle never elapsing.
	if got := s.DirtyStripes(); got > 2*int64(opts.DirtyThreshold)+1 {
		t.Fatalf("dirty = %d, threshold policy not bounding backlog", got)
	}
	if s.Stats().ForcedScrubs == 0 {
		t.Fatal("no forced scrubs recorded")
	}
}
