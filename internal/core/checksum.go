package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"afraid/internal/bufpool"
	"afraid/internal/layout"
	"afraid/internal/parity"
)

// End-to-end block checksums. With Options.Checksums every member disk
// reserves a trailer (layout.ChecksumTrailerBytes) holding one 8-byte
// slot per stripe: a magic tag plus the CRC32C (Castagnoli, hardware-
// accelerated by hash/crc32) of that disk's stripe unit. devWrite
// refreshes the slot from the in-memory buffer on every unit write —
// so a flip on the wire or the medium can never be blessed — and
// devRead verifies every unit it returns. A verify failure surfaces as
// a *ChecksumError and is handled exactly like a fail-stop member on
// that one unit: reconstruct from redundancy, rewrite through with a
// fresh checksum, or report ErrDataLoss. Corruption is never served
// silently.
//
// Slot states: a valid magic gates the CRC comparison; anything else
// (torn slot write, scribbled trailer, all zeroes) is a mismatch and
// goes down the same repair path. Open formats absent (all-zero) slots
// with the CRC of a zero unit, which is correct because a checksummed
// store has checksums from birth — every never-written unit still
// holds zeroes.

// csumMagic tags a valid checksum slot ("AFC1").
const csumMagic = 0x41464331

// slotPool recycles the 8-byte slot buffers the hot paths hand to
// device ReadAt/WriteAt. The interface call makes a stack-declared
// slot escape, which costs one heap allocation per unit verified or
// written — per-unit garbage that group scrubs and checksummed spans
// generate by the thousand.
var slotPool = sync.Pool{New: func() any { return new([layout.ChecksumSlotSize]byte) }}

// castagnoliTable selects the CRC32C polynomial, for which hash/crc32
// uses the SSE4.2/ARMv8 instruction when available.
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksumMismatch marks a stripe unit whose contents do not match
// its stored checksum: silent corruption, detected.
var ErrChecksumMismatch = errors.New("core: block checksum mismatch")

// ChecksumError identifies the corrupt unit. It is not a DiskError —
// the device transferred the bytes fine, the bytes are wrong — so
// absorbFailure will not kill the member for it; absorbMismatch
// repairs the one unit instead.
type ChecksumError struct {
	Disk   int
	Stripe int64
}

// Error implements error.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("core: disk %d stripe %d: checksum mismatch", e.Disk, e.Stripe)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *ChecksumError) Unwrap() error { return ErrChecksumMismatch }

// csumLossError reports a detected corruption that redundancy cannot
// undo. It wraps ErrDataLoss: detected-but-unrecoverable corruption is
// reported loss, the same contract as losing a disk under a dirty
// stripe.
func csumLossError(stripe int64, disk int) error {
	return fmt.Errorf("%w: stripe %d (checksum mismatch on disk %d beyond redundancy)", ErrDataLoss, stripe, disk)
}

// encodeSlot fills an 8-byte checksum slot for unit contents.
func encodeSlot(slot []byte, unit []byte) {
	binary.BigEndian.PutUint32(slot[0:4], csumMagic)
	binary.BigEndian.PutUint32(slot[4:8], crc32.Checksum(unit, castagnoliTable))
}

// readSlot reads disk i's checksum slot for a stripe. Device errors
// come back as DiskErrors so fail-stop members degrade normally.
func (s *Store) readSlot(i int, stripe int64, slot []byte) error {
	if _, err := s.devs[i].ReadAt(slot, s.geo.ChecksumOff(stripe)); err != nil {
		return &DiskError{Disk: i, Op: "read", Err: err}
	}
	return nil
}

// putChecksum writes a fresh checksum slot for disk i's unit of stripe,
// computed from the in-memory contents the caller just wrote.
func (s *Store) putChecksum(i int, stripe int64, unit []byte) error {
	slot := slotPool.Get().(*[layout.ChecksumSlotSize]byte)
	defer slotPool.Put(slot)
	encodeSlot(slot[:], unit)
	if _, err := s.devs[i].WriteAt(slot[:], s.geo.ChecksumOff(stripe)); err != nil {
		return &DiskError{Disk: i, Op: "write", Err: err}
	}
	return nil
}

// putChecksumTo is putChecksum for a device that is not (yet) a member
// — the replacement a repair sweep writes, or a repair mirror target.
// No-op with checksums off, so repair call sites stay unconditional.
func (s *Store) putChecksumTo(dev BlockDevice, stripe int64, unit []byte) error {
	if !s.opts.Checksums {
		return nil
	}
	slot := slotPool.Get().(*[layout.ChecksumSlotSize]byte)
	defer slotPool.Put(slot)
	encodeSlot(slot[:], unit)
	if _, err := dev.WriteAt(slot[:], s.geo.ChecksumOff(stripe)); err != nil {
		return fmt.Errorf("core: replacement checksum write: %w", err)
	}
	return nil
}

// verifyAgainstSlot checks unit contents against disk i's stored slot.
func (s *Store) verifyAgainstSlot(i int, stripe int64, unit []byte) error {
	slot := slotPool.Get().(*[layout.ChecksumSlotSize]byte)
	defer slotPool.Put(slot)
	if err := s.readSlot(i, stripe, slot[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(slot[0:4]) != csumMagic ||
		binary.BigEndian.Uint32(slot[4:8]) != crc32.Checksum(unit, castagnoliTable) {
		return &ChecksumError{Disk: i, Stripe: stripe}
	}
	return nil
}

// devReadVerified is the checksummed read path: return the requested
// range only after the whole stripe unit it lives in checks out against
// its slot. Partial reads verify over a pooled full-unit buffer.
// Callers hold the stripe lock, which serializes the unit+slot pair
// against concurrent writers of the same stripe.
func (s *Store) devReadVerified(i int, p []byte, off int64) error {
	unit := s.geo.StripeUnit
	stripe := off / unit
	t0 := time.Now()
	defer func() { s.ob.csumVerify.Observe(time.Since(t0)) }()
	if off%unit == 0 && int64(len(p)) == unit {
		if _, err := s.devs[i].ReadAt(p, off); err != nil {
			return &DiskError{Disk: i, Op: "read", Err: err}
		}
		return s.verifyAgainstSlot(i, stripe, p)
	}
	whole := bufpool.Get(int(unit))
	defer bufpool.Put(whole)
	if _, err := s.devs[i].ReadAt(whole, stripe*unit); err != nil {
		return &DiskError{Disk: i, Op: "read", Err: err}
	}
	if err := s.verifyAgainstSlot(i, stripe, whole); err != nil {
		return err
	}
	copy(p, whole[off-stripe*unit:])
	return nil
}

// devWriteChecksummed is the checksummed write path: land the data,
// then refresh the slot from the in-memory image. A partial write first
// does a verified read of the old unit — corruption under the
// untouched bytes must surface now (and be repaired by the caller's
// retry loop), not be patched over and blessed by the new slot.
func (s *Store) devWriteChecksummed(i int, p []byte, off int64) error {
	unit := s.geo.StripeUnit
	stripe := off / unit
	if off%unit == 0 && int64(len(p)) == unit {
		if _, err := s.devs[i].WriteAt(p, off); err != nil {
			return &DiskError{Disk: i, Op: "write", Err: err}
		}
		return s.putChecksum(i, stripe, p)
	}
	whole := bufpool.Get(int(unit))
	defer bufpool.Put(whole)
	if err := s.devReadVerified(i, whole, stripe*unit); err != nil {
		return err
	}
	copy(whole[off-stripe*unit:], p)
	if _, err := s.devs[i].WriteAt(p, off); err != nil {
		return &DiskError{Disk: i, Op: "write", Err: err}
	}
	return s.putChecksum(i, stripe, whole)
}

// verifyUnit re-reads disk i's unit of stripe and checks it. Caller
// holds the stripe lock.
func (s *Store) verifyUnit(i int, stripe int64) error {
	unit := s.geo.StripeUnit
	whole := bufpool.Get(int(unit))
	defer bufpool.Put(whole)
	return s.devReadVerified(i, whole, stripe*unit)
}

// formatChecksums installs slots for units that have none yet: at first
// open every slot is zero, and after a crash during a previous format a
// suffix may still be. An absent slot means the unit was never written
// (checksummed stores carry checksums from birth), so its contents are
// zeroes and the zero-unit CRC is the right install. Live members only;
// a dead member gets its slots rewritten by RepairDisk.
func (s *Store) formatChecksums() error {
	stripes := s.geo.Stripes()
	trailer := make([]byte, stripes*layout.ChecksumSlotSize)
	var zeroSlot [layout.ChecksumSlotSize]byte
	zero := make([]byte, s.geo.StripeUnit)
	var fresh [layout.ChecksumSlotSize]byte
	encodeSlot(fresh[:], zero)
	for i, d := range s.devs {
		if i == s.dead || i == s.dead2 {
			continue
		}
		if _, err := d.ReadAt(trailer, s.geo.DiskSize); err != nil {
			return &DiskError{Disk: i, Op: "read", Err: err}
		}
		dirtied := false
		for st := int64(0); st < stripes; st++ {
			slot := trailer[st*layout.ChecksumSlotSize : (st+1)*layout.ChecksumSlotSize]
			if [layout.ChecksumSlotSize]byte(slot) == zeroSlot {
				copy(slot, fresh[:])
				dirtied = true
			}
		}
		if !dirtied {
			continue
		}
		if _, err := d.WriteAt(trailer, s.geo.DiskSize); err != nil {
			return &DiskError{Disk: i, Op: "write", Err: err}
		}
	}
	return nil
}

// absorbMismatch is the span loops' counterpart of absorbFailure for
// checksum failures: when err identifies a corrupt unit, repair it in
// place from redundancy. It returns retry=true when the repair
// succeeded and the caller should re-run the span; otherwise the error
// to surface (the original err when it was not a checksum failure, a
// loss error when redundancy could not cover the corruption). Caller
// holds the corrupt stripe's lock.
func (s *Store) absorbMismatch(err error) (retry bool, out error) {
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		return false, err
	}
	s.meta.Lock()
	s.stats.ChecksumDetected++
	s.meta.Unlock()
	if rerr := s.repairUnitLocked(ce.Stripe, ce.Disk); rerr != nil {
		if errors.Is(rerr, ErrDataLoss) {
			s.meta.Lock()
			s.stats.ChecksumLost++
			s.meta.Unlock()
		}
		return false, rerr
	}
	s.meta.Lock()
	s.stats.ChecksumRepaired++
	s.meta.Unlock()
	return true, nil
}

// absorbMismatchIn is absorbMismatch for callers that do not already
// hold the stripe lock (the CheckParity workers release it inside
// checkStripe).
func (s *Store) absorbMismatchIn(err error) (bool, error) {
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		return false, err
	}
	lk := s.stripeLock(ce.Stripe)
	lk.Lock()
	defer lk.Unlock()
	return s.absorbMismatch(err)
}

// spanRetryBudget bounds the absorb-and-retry loops around span
// operations: enough for every member to fail or every unit of a
// stripe to be repaired once, plus slack for a nested repair.
func (s *Store) spanRetryBudget() int { return len(s.devs) + 2 }

// preflightChecksums verifies the old contents under the partial
// extents of a deferred-parity write before the stripe is marked.
// Ordering matters: the AFRAID paths mark first, and a corruption
// discovered after our own mark would read as "dirty stripe, stale
// parity — unrecoverable" even though the stripe was clean and
// repairable a microsecond earlier. Full-unit extents need nothing
// (the overwrite installs a fresh slot), and modes that keep P fresh
// while dirty (Afraid6 deferring only Q) repair fine post-mark.
func (s *Store) preflightChecksums(sp layout.StripeSpan) error {
	if !s.opts.Checksums {
		return nil
	}
	unit := s.geo.StripeUnit
	for _, e := range sp.Extents {
		if e.UnitOff == 0 && e.Len == unit {
			continue
		}
		if err := s.verifyUnit(e.Disk, sp.Stripe); err != nil {
			return err
		}
	}
	return nil
}

// repairUnitLocked rewrites one corrupt unit from redundancy. Caller
// holds the stripe lock; the unit is re-verified first, so a retry
// that lost a race with another repair (CheckParity workers drop the
// lock between check and repair) is a no-op.
func (s *Store) repairUnitLocked(stripe int64, disk int) error {
	if err := s.verifyUnit(disk, stripe); err == nil {
		return nil
	} else if !errors.Is(err, ErrChecksumMismatch) {
		return err
	}
	if s.geo.Level == layout.RAID6 {
		return s.repairUnit6(stripe, disk)
	}
	return s.repairUnit5(stripe, disk)
}

// repairUnit5 is the RAID 5 / RAID 0 unit repair. Any second problem in
// the stripe — a dead member, a stale (dirty) parity, a nested
// mismatch — exhausts the single redundancy and the unit is reported
// lost.
func (s *Store) repairUnit5(stripe int64, disk int) error {
	s.meta.Lock()
	dead := s.dead
	dirty := s.marks.IsMarked(stripe)
	pol := s.effectivePolicy(stripe)
	s.meta.Unlock()
	if s.geo.Level == layout.RAID0 || pol == PolicyNeverRedundant {
		return csumLossError(stripe, disk)
	}
	off := s.geo.DiskOffset(stripe)
	role, dataIdx := s.geo.RoleOf(stripe, disk)
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)

	if role == layout.Parity {
		// Recompute parity from the data units — valid for dirty stripes
		// too (the mark stays; the scrubber recomputes again and clears
		// it). A dead data member makes the recompute impossible.
		if dead >= 0 {
			return csumLossError(stripe, disk)
		}
		if err := s.readStripeUnits(sb, stripe, -1, -1); err != nil {
			if errors.Is(err, ErrChecksumMismatch) {
				return csumLossError(stripe, disk)
			}
			return err
		}
		pt := time.Now()
		parity.Compute(sb.p, sb.units...)
		s.observeParity(pt)
		return s.devWrite(disk, sb.p, off)
	}

	if dirty || dead >= 0 {
		return csumLossError(stripe, disk)
	}
	if err := s.readStripeUnits(sb, stripe, disk, -1); err != nil {
		if errors.Is(err, ErrChecksumMismatch) {
			return csumLossError(stripe, disk)
		}
		return err
	}
	if err := s.devRead(s.geo.ParityDisk(stripe), sb.p, off); err != nil {
		if errors.Is(err, ErrChecksumMismatch) {
			return csumLossError(stripe, disk)
		}
		return err
	}
	pt := time.Now()
	parity.Reconstruct(sb.units[dataIdx], sb.p, sb.survivors(dataIdx)...)
	s.observeParity(pt)
	return s.devWrite(disk, sb.units[dataIdx], off)
}

// repairUnit6 is the RAID 6 unit repair: the corrupt unit joins the
// missing set, nested mismatches met while reconstructing join it too
// (or disqualify a parity), and materialize6 decides whether the fresh
// parities still cover the set. Up to two missing data units plus both
// parities are repairable on a clean stripe.
func (s *Store) repairUnit6(stripe int64, disk int) error {
	s.meta.Lock()
	dead := s.deadSet()
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	pFresh, qFresh := s.parityFresh(dirty)
	pDisk := s.geo.ParityDisk(stripe)
	qDisk := s.geo.QDisk(stripe)
	off := s.geo.DiskOffset(stripe)

	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)

	badData := map[int]bool{}
	pBad, qBad := false, false
	switch disk {
	case pDisk:
		pBad = true
	case qDisk:
		qBad = true
	default:
		badData[disk] = true
	}

	for tries := 0; tries <= s.geo.Disks; tries++ {
		missing := append([]int(nil), dead...)
		for d := range badData {
			if !containsInt(missing, d) {
				missing = append(missing, d)
			}
		}
		dataMissing := 0
		for _, d := range missing {
			if r, _ := s.geo.RoleOf(stripe, d); r == layout.Data {
				dataMissing++
			}
		}
		if dataMissing > 2 {
			return csumLossError(stripe, disk)
		}
		ok, err := s.materialize6(sb, stripe, missing, pFresh && !pBad, qFresh && !qBad)
		if err != nil {
			var ce *ChecksumError
			if !errors.As(err, &ce) {
				return err
			}
			switch ce.Disk {
			case pDisk:
				pBad = true
			case qDisk:
				qBad = true
			default:
				badData[ce.Disk] = true
			}
			continue
		}
		if !ok {
			return csumLossError(stripe, disk)
		}
		// Rewrite everything the reconstruction proved corrupt. Live
		// disks only: dead members are RepairDisk's job.
		for d := range badData {
			if containsInt(dead, d) {
				continue
			}
			_, idx := s.geo.RoleOf(stripe, d)
			if err := s.devWrite(d, sb.units[idx], off); err != nil {
				return err
			}
		}
		if pBad || qBad {
			// All data units are in hand (materialize6 reconstructed the
			// missing ones), so both parities can be recomputed; write
			// back the corrupt one(s). On a dirty stripe the mark stays
			// and the scrubber refreshes them again — harmless.
			pt := time.Now()
			parity.ComputePQ(sb.p, sb.q, sb.units...)
			s.observeParity(pt)
			if pBad && !containsInt(dead, pDisk) {
				if err := s.devWrite(pDisk, sb.p, off); err != nil {
					return err
				}
			}
			if qBad && !containsInt(dead, qDisk) {
				if err := s.devWrite(qDisk, sb.q, off); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return csumLossError(stripe, disk)
}

// resyncParity rebuilds a stripe's parity from its at-rest data units.
// The write-span retry loop calls it after a mismatch repair: the
// interrupted attempt's delta read-modify-write may have applied its
// parity delta on some parity disks but not others before the corrupt
// unit surfaced, and repairUnitLocked recomputes only the corrupt
// element — leaving the untouched parity holding a delta for data that
// never landed, under a perfectly valid checksum. Rebuilding from data
// restores the invariant the retried delta update relies on: at-rest
// parity encodes at-rest data. Dirty stripes are skipped (their parity
// is stale by design and the scrubber rebuilds it), as are degraded
// arrays (their write paths store full stripe images, which retry
// idempotently). Caller holds the stripe lock.
func (s *Store) resyncParity(stripe int64) error {
	if s.geo.Level == layout.RAID0 {
		return nil
	}
	s.meta.Lock()
	dead := s.deadSet()
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()
	if len(dead) > 0 || dirty {
		return nil
	}
	if s.geo.Level == layout.RAID6 {
		return s.rebuildParity6(stripe)
	}
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	if err := s.readStripeUnits(sb, stripe, -1, -1); err != nil {
		return err
	}
	pt := time.Now()
	parity.Compute(sb.p, sb.units...)
	s.observeParity(pt)
	return s.devWrite(s.geo.ParityDisk(stripe), sb.p, s.geo.DiskOffset(stripe))
}

// quarantineStripe records a dirty stripe whose scrub hit unrecoverable
// corruption. It stays marked (its parity must not be rebuilt over the
// corrupt unit) but the drain machinery skips it, so Flush can
// terminate — with a loss report — instead of spinning on a stripe it
// can never clean. Any fresh mark or unmark drops the quarantine: an
// overwrite may have replaced the corrupt unit.
func (s *Store) quarantineStripe(stripe int64) {
	s.meta.Lock()
	s.quarantine[stripe] = true
	s.meta.Unlock()
}

// dropQuarantine clears a stripe's quarantine. Caller holds meta.
func (s *Store) dropQuarantine(stripe int64) {
	if len(s.quarantine) != 0 {
		delete(s.quarantine, stripe)
	}
}

// quarantineError reports the quarantined stripes as data loss.
// Caller does not hold meta.
func (s *Store) quarantineError() error {
	s.meta.Lock()
	list := make([]int64, 0, len(s.quarantine))
	for st := range s.quarantine {
		list = append(list, st)
	}
	s.meta.Unlock()
	sortInt64s(list)
	return fmt.Errorf("%w: %d stripe(s) %v held dirty by unrecoverable checksum corruption", ErrDataLoss, len(list), list)
}

// QuarantinedStripes returns the stripes held dirty by unrecoverable
// checksum corruption, ascending. They read as ErrDataLoss until
// overwritten.
func (s *Store) QuarantinedStripes() []int64 {
	s.meta.Lock()
	out := make([]int64, 0, len(s.quarantine))
	for st := range s.quarantine {
		out = append(out, st)
	}
	s.meta.Unlock()
	sortInt64s(out)
	return out
}

func sortInt64s(a []int64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
