package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// The context variants exist for the network frontend: a per-request
// deadline must be able to stop multi-stripe work between spans. These
// tests pin the contract — a cancelled context aborts before touching
// the next span, and the plain ReadAt/WriteAt wrappers stay no-ops.

func TestContextVariantsMatchPlainCalls(t *testing.T) {
	opts := Options{Mode: Afraid, DisableScrubber: true, StripeUnit: testUnit}
	s, err := Open(newDevs(5), &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	data := pattern(3*testUnit+57, 7)
	if _, err := s.WriteContext(context.Background(), data, 100); err != nil {
		t.Fatalf("WriteContext: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := s.ReadContext(context.Background(), got, 100); err != nil {
		t.Fatalf("ReadContext: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadContext returned different bytes than WriteContext stored")
	}
	if err := s.FlushContext(context.Background()); err != nil {
		t.Fatalf("FlushContext: %v", err)
	}
	if n := s.DirtyStripes(); n != 0 {
		t.Fatalf("dirty stripes after FlushContext = %d, want 0", n)
	}
}

func TestContextCancellationAbortsIO(t *testing.T) {
	opts := Options{Mode: Afraid, DisableScrubber: true, StripeUnit: testUnit}
	s, err := Open(newDevs(5), &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf := make([]byte, 2*testUnit)
	if _, err := s.ReadContext(ctx, buf, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := s.WriteContext(ctx, buf, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteContext on cancelled ctx = %v, want context.Canceled", err)
	}
	// A dirty store refuses a cancelled flush without scrubbing.
	if _, err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	dirty := s.DirtyStripes()
	if dirty == 0 {
		t.Fatal("write left no dirty stripes")
	}
	if err := s.FlushContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FlushContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if n := s.DirtyStripes(); n != dirty {
		t.Fatalf("cancelled flush changed dirty count %d -> %d", dirty, n)
	}
	if err := s.ParityPointContext(ctx, 0, s.Geometry().StripeDataBytes()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParityPointContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestContextDeadlineStopsLongFlush(t *testing.T) {
	opts := Options{Mode: Afraid, DisableScrubber: true, StripeUnit: testUnit}
	s, err := Open(newDevs(5), &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Dirty every stripe, then flush with an already-expired deadline:
	// the flush must abort between stripes rather than run to the end.
	for st := int64(0); st < s.Geometry().Stripes(); st++ {
		if _, err := s.WriteAt(pattern(64, byte(st)), st*s.Geometry().StripeDataBytes()); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := s.FlushContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FlushContext with expired deadline = %v, want DeadlineExceeded", err)
	}
	if n := s.DirtyStripes(); n == 0 {
		t.Fatal("expired-deadline flush scrubbed the whole array")
	}
}
