// Package core implements a functional (real-data, wall-clock) AFRAID
// store: a software disk array with immediate data writes, an NVRAM
// dirty-stripe map, deferred parity rebuilt by a background scrubber,
// crash recovery, and single-disk failure reconstruction. Where the
// sibling simulator packages reproduce the paper's *measurements*, this
// package is the adoptable implementation of its *mechanism*.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// BlockDevice is the backing store for one member disk.
type BlockDevice interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the device capacity in bytes.
	Size() int64
	// Close releases the device.
	Close() error
}

// ErrDeviceFailed is returned by a device that has been failed by fault
// injection (or by the array when an operation needs a failed device).
var ErrDeviceFailed = errors.New("core: device failed")

// MemDevice is an in-memory block device, useful for tests and examples.
type MemDevice struct {
	mu     sync.RWMutex
	data   []byte
	failed bool
}

// NewMemDevice allocates a zeroed in-memory device.
func NewMemDevice(size int64) *MemDevice {
	if size <= 0 {
		panic(fmt.Sprintf("core: device size %d must be positive", size))
	}
	return &MemDevice{data: make([]byte, size)}
}

// ReadAt implements io.ReaderAt.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.failed {
		return 0, ErrDeviceFailed
	}
	if off < 0 || off >= int64(len(d.data)) {
		return 0, fmt.Errorf("core: read at %d outside device size %d", off, len(d.data))
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, ErrDeviceFailed
	}
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return 0, fmt.Errorf("core: write [%d,%d) outside device size %d", off, off+int64(len(p)), len(d.data))
	}
	copy(d.data[off:], p)
	return len(p), nil
}

// Size returns the device capacity.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

// Close is a no-op for memory devices.
func (d *MemDevice) Close() error { return nil }

// Fail simulates a fail-stop disk failure: all subsequent I/O errors.
func (d *MemDevice) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Failed reports whether the device has been failed.
func (d *MemDevice) Failed() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.failed
}

// FileDevice is a file-backed block device.
type FileDevice struct {
	f    *os.File
	size int64
}

// FileDeviceOptions configures OpenFileDeviceOpts.
type FileDeviceOptions struct {
	// Preallocate reserves the device's blocks at open time instead of
	// leaving the image sparse. Without it, the first write to each
	// filesystem block pays an allocation (and on a filling disk may
	// fail with ENOSPC mid-workload); with it, the space is committed
	// up front and steady-state writes never stall on the allocator.
	// Uses fallocate where the platform and filesystem support it,
	// falling back to zero-filling the file's unwritten tail.
	Preallocate bool
}

// OpenFileDevice creates (or opens) path and ensures it is exactly size
// bytes long.
func OpenFileDevice(path string, size int64) (*FileDevice, error) {
	return OpenFileDeviceOpts(path, size, FileDeviceOptions{})
}

// OpenFileDeviceOpts is OpenFileDevice with explicit options.
func OpenFileDeviceOpts(path string, size int64, opts FileDeviceOptions) (*FileDevice, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: device size %d must be positive", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	oldSize := st.Size()
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if opts.Preallocate {
		if err := preallocFile(f, oldSize, size); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: preallocating %s: %w", path, err)
		}
	}
	return &FileDevice{f: f, size: size}, nil
}

// zeroFill is the portable preallocation fallback: it materializes the
// file's blocks from oldSize (the length before this open grew it) up
// to size by writing zeros. Existing bytes are never touched, so
// reopening a populated image is safe; a pre-existing sparse region
// below oldSize stays sparse, which is the best a write-based fallback
// can do.
func zeroFill(f *os.File, oldSize, size int64) error {
	if oldSize >= size {
		return nil
	}
	buf := make([]byte, 1<<20)
	for off := oldSize; off < size; {
		n := int64(len(buf))
		if off+n > size {
			n = size - off
		}
		if _, err := f.WriteAt(buf[:n], off); err != nil {
			return err
		}
		off += n
	}
	return f.Sync()
}

// ReadAt implements io.ReaderAt.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }

// Size returns the device capacity.
func (d *FileDevice) Size() int64 { return d.size }

// Close closes the backing file.
func (d *FileDevice) Close() error { return d.f.Close() }

// Sync flushes the backing file to stable storage.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// NVRAM persists the marking memory across crashes. Implementations
// must make Store durable before returning (the paper's marking memory
// is battery-backed RAM; a file plus fsync is the software equivalent).
type NVRAM interface {
	// Load returns the last stored image, or (nil, nil) when empty.
	Load() ([]byte, error)
	// Store replaces the image.
	Store([]byte) error
}

// MemNVRAM is an in-memory NVRAM, for tests: it survives Store reopen
// (pass the same instance) but not process exit.
type MemNVRAM struct {
	mu  sync.Mutex
	img []byte
}

// Load returns the stored image.
func (m *MemNVRAM) Load() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.img == nil {
		return nil, nil
	}
	out := make([]byte, len(m.img))
	copy(out, m.img)
	return out, nil
}

// Store replaces the image.
func (m *MemNVRAM) Store(img []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.img = append(m.img[:0:0], img...)
	return nil
}

// FileNVRAM persists the marking memory in a file with fsync.
type FileNVRAM struct {
	path string
	mu   sync.Mutex
}

// NewFileNVRAM returns a file-backed NVRAM at path.
func NewFileNVRAM(path string) *FileNVRAM { return &FileNVRAM{path: path} }

// Load reads the image; a missing file is an empty NVRAM.
func (n *FileNVRAM) Load() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	img, err := os.ReadFile(n.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return img, err
}

// Store atomically replaces the image (write temp, fsync, rename).
func (n *FileNVRAM) Store(img []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	tmp := n.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, n.path)
}
