package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"afraid/internal/layout"
	"afraid/internal/nvram"
	"afraid/internal/parity"
)

// Mode selects how the store maintains redundancy.
type Mode int

const (
	// Afraid writes data immediately, marks stripes unredundant in
	// NVRAM, and lets the scrubber rebuild parity in idle periods.
	Afraid Mode = iota
	// Raid5 keeps parity synchronously consistent (read-modify-write
	// in the write path).
	Raid5
	// Raid0 never maintains parity.
	Raid0
	// Raid6 keeps P and Q parity synchronously consistent (§5).
	Raid6
	// Afraid6 is the §5 extension: P is maintained synchronously and Q
	// deferred to the scrubber (single-failure protection at all
	// times), or both deferred with Options.DeferBothParities.
	Afraid6
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Afraid:
		return "afraid"
	case Raid5:
		return "raid5"
	case Raid0:
		return "raid0"
	case Raid6:
		return "raid6"
	case Afraid6:
		return "afraid6"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// StripePolicy is the §5 extension: stripe-aligned subsets of the store
// may be flagged with their own redundancy behaviour, overriding Mode.
type StripePolicy byte

const (
	// PolicyDefault follows the store's Mode.
	PolicyDefault StripePolicy = iota
	// PolicyAlwaysRedundant forces synchronous RAID 5 parity for the
	// stripe.
	PolicyAlwaysRedundant
	// PolicyNeverRedundant never maintains parity for the stripe
	// (RAID 0 storage carved out of the array).
	PolicyNeverRedundant
)

// Options configures a Store.
type Options struct {
	// Mode is the redundancy mode (default Afraid).
	Mode Mode
	// StripeUnit is the per-disk stripe unit size (default 8 KB).
	StripeUnit int64
	// ScrubIdle is how long the store must be quiescent before the
	// background scrubber rebuilds parity (default 100 ms, the paper's
	// idle threshold).
	ScrubIdle time.Duration
	// DirtyThreshold, when positive, lets the scrubber run even under
	// load once more than this many stripes are unredundant.
	DirtyThreshold int
	// DisableScrubber turns the background goroutine off; parity is
	// then rebuilt only by Flush/ParityPoint.
	DisableScrubber bool
	// DeferBothParities makes Afraid6 defer P as well as Q (full
	// AFRAID write speed, full exposure while dirty). Afraid6 only.
	DeferBothParities bool
	// ScrubWorkers bounds the stripes rebuilt concurrently by Flush,
	// ParityPoint, CheckParity, and the RepairDisk sweep (default
	// min(GOMAXPROCS, data disks)). 1 drains serially.
	ScrubWorkers int
	// Checksums enables per-unit CRC32C verification: every member
	// reserves a checksum trailer, writes refresh it, reads and scrubs
	// verify against it, and a mismatch is repaired from redundancy or
	// reported as loss — never served silently (see checksum.go). The
	// trailer claims a little of each device, so a store must keep the
	// setting it was created with.
	Checksums bool
}

func (o *Options) fill() {
	if o.StripeUnit == 0 {
		o.StripeUnit = 8 << 10
	}
	if o.ScrubIdle == 0 {
		o.ScrubIdle = 100 * time.Millisecond
	}
}

// Errors reported by the store.
var (
	// ErrDataLoss marks bytes that are unrecoverable: they lived on a
	// failed disk in a stripe whose parity was stale (the AFRAID
	// exposure window) or in a never-redundant stripe.
	ErrDataLoss = errors.New("core: data lost (failed disk in unprotected stripe)")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: store is closed")
	// ErrTooManyFailures means more disks are failed than the
	// redundancy can absorb.
	ErrTooManyFailures = errors.New("core: multiple disk failures")
)

// Stats counts store activity.
type Stats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten int64
	ScrubbedStripes         uint64
	ForcedScrubs            uint64
	DegradedReads           uint64
	RecoveredStripes        uint64 // rebuilt during RepairDisk
	DamagedStripes          uint64
	NVRAMRecovered          bool // full-array rebuild after bad NVRAM image
	DirtyStripes            int64

	IdleEpisodes   uint64 // scrub episodes begun on idle detection
	ForcedEpisodes uint64 // scrub episodes begun over the dirty threshold
	ScrubPreempts  uint64 // idle rebuilds abandoned to fresh foreground I/O
	InlineScrubs   uint64 // stripes rebuilt inline by the write-path pressure valve
	DirtyHighWater int64  // most stripes simultaneously unredundant
	DamageBytes    int64  // bytes lost to disk failures in unprotected stripes

	ChecksumDetected uint64 // unit reads that failed checksum verification
	ChecksumRepaired uint64 // corrupt units rewritten from redundancy
	ChecksumLost     uint64 // detected corruptions beyond redundancy (reported loss)

	NVRAMPersists uint64 // NVRAM writes issued (group commit batches markers)
}

// Store is the functional AFRAID array.
type Store struct {
	geo  layout.Geometry
	devs []BlockDevice
	opts Options
	nv   NVRAM

	meta     sync.Mutex // guards everything below
	marks    *nvram.Bitmap
	policy   []StripePolicy
	dead     int // index of first failed disk, -1 if none
	dead2    int // second failed disk (RAID 6 only), -1 if none
	lastIO   time.Time
	closed   bool
	stats    Stats
	scrubGen uint64         // bumped on foreground I/O to preempt scrub runs
	claimed  map[int64]bool // stripes a drain worker is rebuilding right now

	// quarantine holds dirty stripes whose scrub found unrecoverable
	// checksum corruption: they must stay marked (rebuilding parity
	// would bless the corrupt unit) but the drain machinery skips them
	// so Flush terminates with a loss report instead of livelocking.
	// Invariant: quarantine ⊆ marked; any mark/unmark drops the entry.
	quarantine map[int64]bool

	// In-progress repair (RepairDisk): stripes marked in repDone have
	// already been rebuilt onto repDev, so degraded foreground writes
	// must mirror the dead disk's unit there or the replacement would
	// hold stale data when it is swapped in. A bitmap rather than a
	// cursor because the parallel sweep completes stripes out of
	// order. repDisk is -1 when no repair is running.
	repDisk int
	repDev  BlockDevice
	repDone *nvram.Bitmap

	// Group-commit state for NVRAM persists (guarded by meta). A
	// persist in flight releases meta, so concurrent markers pile
	// their changes into the bitmap and the next leader's snapshot
	// covers them all with one NVRAM write.
	gcCond    *sync.Cond
	gcRunning bool
	gcSeq     uint64 // highest change generation made durable
	gcDirty   uint64 // latest change generation applied to marks
	gcErr     error  // outcome of the persist that reached gcSeq

	locks [64]sync.Mutex // stripe lock pool (stripe % 64)

	sbPool sync.Pool  // *stripeBuf arena (stripebuf.go)
	ioCh   chan ioReq // unbuffered hand-off to the I/O workers

	ob   *storeObs
	kick chan struct{} // pressure-valve handoff to scrubLoop (capacity 1)
	stop chan struct{}
	wg   sync.WaitGroup
}

// spanPool recycles the span slices ReadContext/WriteContext split
// I/Os into (SplitAppend reuses both the slice and each entry's
// Extents backing), removing the per-call splitting garbage from the
// foreground hot path.
var spanPool = sync.Pool{New: func() any { return new([]layout.StripeSpan) }}

// Open assembles a store over the devices, recovering the marking
// memory from nv. A corrupt or mismatched NVRAM image triggers the
// paper's recovery procedure: every stripe is marked for rebuild.
func Open(devs []BlockDevice, nv NVRAM, opts Options) (*Store, error) {
	opts.fill()
	if len(devs) < 2 && opts.Mode != Raid0 {
		return nil, fmt.Errorf("core: %v needs at least 2 devices, have %d", opts.Mode, len(devs))
	}
	if len(devs) < 1 {
		return nil, fmt.Errorf("core: need at least 1 device")
	}
	size := devs[0].Size()
	for i, d := range devs {
		if d.Size() != size {
			return nil, fmt.Errorf("core: device %d size %d differs from device 0 size %d", i, d.Size(), size)
		}
	}
	// With checksums, each device gives up trailer pages for its
	// checksum slots; the usable size shrinks so data plus trailer fit.
	size = layout.UsableDiskSize(size, opts.StripeUnit, opts.Checksums)
	if size == 0 {
		return nil, fmt.Errorf("core: devices smaller than one stripe unit (plus checksum trailer)")
	}
	lvl := layout.RAID5
	switch opts.Mode {
	case Raid0:
		lvl = layout.RAID0
	case Raid6, Afraid6:
		lvl = layout.RAID6
	}
	if opts.DeferBothParities && opts.Mode != Afraid6 {
		return nil, fmt.Errorf("core: DeferBothParities requires Afraid6 mode")
	}
	geo := layout.Geometry{
		Disks:      len(devs),
		StripeUnit: opts.StripeUnit,
		DiskSize:   size,
		Level:      lvl,
	}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	s := &Store{
		geo:        geo,
		devs:       devs,
		opts:       opts,
		nv:         nv,
		dead:       -1,
		dead2:      -1,
		repDisk:    -1,
		lastIO:     time.Now(),
		claimed:    make(map[int64]bool),
		quarantine: make(map[int64]bool),
		ioCh:       make(chan ioReq),
		ob:         newStoreObs(),
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		policy:     make([]StripePolicy, geo.Stripes()),
	}
	s.gcCond = sync.NewCond(&s.meta)
	// I/O workers serve the per-disk unit reads fanned out by stripe
	// rebuilds, degraded reads, and parity checks. Enough for every
	// drain worker to have a whole stripe's reads in flight at once.
	ioN := len(devs) * s.scrubWorkers()
	if ioN > 32 {
		ioN = 32
	}
	for i := 0; i < ioN; i++ {
		s.wg.Add(1)
		go s.ioWorker()
	}
	// Probe the members: a disk that failed before a crash is still
	// failed after reopen, and the store must know before issuing I/O.
	// Any probe error counts — an unreadable member is a failed member,
	// whether it reports a bare ErrDeviceFailed, a wrapped one from a
	// fault-injection layer, or a real I/O error.
	probe := make([]byte, 1)
	for i, d := range devs {
		if _, err := d.ReadAt(probe, 0); err == nil {
			continue
		}
		switch {
		case s.dead < 0:
			s.dead = i
		case lvl == layout.RAID6 && s.dead2 < 0:
			s.dead2 = i
		default:
			return nil, fmt.Errorf("core: devices %d and %d both failed: %w", s.dead, i, ErrTooManyFailures)
		}
	}
	if opts.Checksums {
		if err := s.formatChecksums(); err != nil {
			return nil, fmt.Errorf("core: formatting checksum trailers: %w", err)
		}
	}
	if err := s.recoverNVRAM(); err != nil {
		return nil, err
	}
	if !opts.DisableScrubber && (opts.Mode == Afraid || opts.Mode == Afraid6) {
		s.wg.Add(1)
		go s.scrubLoop()
	}
	return s, nil
}

// recoverNVRAM loads the marking memory, falling back to a full-array
// rebuild when the image is unusable.
func (s *Store) recoverNVRAM() error {
	stripes := s.geo.Stripes()
	if s.nv == nil {
		s.marks = nvram.NewBitmap(stripes)
		return nil
	}
	img, err := s.nv.Load()
	if err != nil {
		return fmt.Errorf("core: loading NVRAM: %w", err)
	}
	if img == nil {
		s.marks = nvram.NewBitmap(stripes)
		return nil
	}
	bm, err := nvram.Deserialize(img)
	if err == nil && bm.Stripes() == stripes {
		s.marks = bm
		return nil
	}
	// The paper's marking-memory failure recovery: rebuild parity for
	// the whole array.
	s.marks = nvram.NewBitmap(stripes)
	for st := int64(0); st < stripes; st++ {
		s.marks.Mark(st)
	}
	s.stats.NVRAMRecovered = true
	s.stats.DirtyHighWater = stripes
	return s.persistMarks()
}

// persistMarks stores the bitmap to NVRAM. Callers hold meta. Only
// Open-time recovery uses it directly; every steady-state persist goes
// through commitMarks so images always reach NVRAM in generation order.
func (s *Store) persistMarks() error {
	if s.nv == nil {
		return nil
	}
	return s.nv.Store(s.marks.Serialize())
}

// commitMarks makes the caller's bitmap change durable via group
// commit. The change (already applied to s.marks) is assigned a
// generation; the call returns once a persist whose snapshot included
// that generation has completed. One caller at a time leads — it
// snapshots the bitmap, releases meta for the NVRAM write, and wakes
// the others — so N concurrent markers cost ~1 NVRAM write instead of
// N. The mark-before-write invariant is preserved: success means a
// covering image reached NVRAM before the caller proceeds to its data
// write. Callers hold meta; meta is released and reacquired inside.
func (s *Store) commitMarks() error {
	if s.nv == nil {
		return nil
	}
	s.gcDirty++
	want := s.gcDirty
	for s.gcSeq < want {
		if s.gcRunning {
			s.gcCond.Wait()
			continue
		}
		s.gcRunning = true
		goal := s.gcDirty // snapshot covers every generation through goal
		img := s.marks.Serialize()
		s.meta.Unlock()
		err := s.nv.Store(img)
		s.meta.Lock()
		s.gcRunning = false
		s.gcSeq, s.gcErr = goal, err
		s.stats.NVRAMPersists++
		s.gcCond.Broadcast()
	}
	// gcErr is the outcome of the persist that reached (or passed) our
	// generation; a later successful persist also covers our change.
	return s.gcErr
}

// Close stops the scrubber and closes the devices. Dirty stripes stay
// recorded in NVRAM; the next Open resumes their rebuild (crash-safe by
// construction). Use Flush first for a clean shutdown.
func (s *Store) Close() error {
	s.meta.Lock()
	if s.closed {
		s.meta.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.meta.Unlock()
	close(s.stop)
	s.wg.Wait()
	var first error
	for _, d := range s.devs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Capacity returns the client-visible size in bytes.
func (s *Store) Capacity() int64 { return s.geo.Capacity() }

// Mode returns the store's redundancy mode.
func (s *Store) Mode() Mode { return s.opts.Mode }

// Geometry returns the striping parameters.
func (s *Store) Geometry() layout.Geometry { return s.geo }

// DirtyStripes returns the number of unredundant stripes.
func (s *Store) DirtyStripes() int64 {
	s.meta.Lock()
	defer s.meta.Unlock()
	return s.marks.Count()
}

// DeadDisks returns the indices of the currently failed member disks,
// in failure order. Empty when the array is healthy.
func (s *Store) DeadDisks() []int {
	s.meta.Lock()
	defer s.meta.Unlock()
	var out []int
	if s.dead >= 0 {
		out = append(out, s.dead)
	}
	if s.dead2 >= 0 {
		out = append(out, s.dead2)
	}
	return out
}

// DirtyList returns the stripes currently marked unredundant — the
// paper's exposure set, enumerated. A crash harness samples it at
// failure time to bound which stripes may legally lose data.
func (s *Store) DirtyList() []int64 {
	s.meta.Lock()
	defer s.meta.Unlock()
	return s.marks.Marked()
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.meta.Lock()
	defer s.meta.Unlock()
	st := s.stats
	st.DirtyStripes = s.marks.Count()
	return st
}

// stripeLock returns the lock covering a stripe.
func (s *Store) stripeLock(stripe int64) *sync.Mutex {
	return &s.locks[stripe%int64(len(s.locks))]
}

// scrubWorkers resolves the drain concurrency: Options.ScrubWorkers,
// or min(GOMAXPROCS, data disks) — wider gains nothing once every
// spindle has a read in flight, narrower wastes idle devices.
func (s *Store) scrubWorkers() int {
	w := s.opts.ScrubWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if dd := s.geo.DataDisks(); w > dd {
			w = dd
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// touch records foreground activity for idle detection and scrub
// preemption. Callers hold meta or accept the small race on lastIO.
func (s *Store) touch() {
	s.meta.Lock()
	s.lastIO = time.Now()
	s.scrubGen++
	s.meta.Unlock()
}

// effectivePolicy resolves a stripe's redundancy behaviour.
func (s *Store) effectivePolicy(stripe int64) StripePolicy {
	p := s.policy[stripe]
	if p != PolicyDefault {
		return p
	}
	switch s.opts.Mode {
	case Raid5:
		return PolicyAlwaysRedundant
	case Raid0:
		return PolicyNeverRedundant
	default:
		return PolicyDefault // AFRAID behaviour
	}
}

// SetStripePolicy flags the stripe-aligned range [off, off+length) with
// a redundancy policy (§5: "stripe-aligned subsets of an AFRAID's
// storage space could be permanently flagged with different redundancy
// properties"). The range must cover whole stripes.
func (s *Store) SetStripePolicy(off, length int64, p StripePolicy) error {
	sb := s.geo.StripeDataBytes()
	if off%sb != 0 || length%sb != 0 {
		return fmt.Errorf("core: policy range [%d,%d) not stripe-aligned (stripe data bytes %d)", off, off+length, sb)
	}
	if off < 0 || length < 0 || length > s.geo.Capacity() || off > s.geo.Capacity()-length {
		return fmt.Errorf("core: policy range outside capacity")
	}
	if s.opts.Mode == Raid0 && p != PolicyNeverRedundant && p != PolicyDefault {
		return fmt.Errorf("core: RAID 0 store has no parity to maintain")
	}
	if s.geo.Level == layout.RAID6 && p != PolicyDefault {
		return fmt.Errorf("core: per-stripe policies are not supported on RAID 6 stores")
	}
	first := off / sb
	last := (off + length) / sb
	s.meta.Lock()
	defer s.meta.Unlock()
	for st := first; st < last; st++ {
		s.policy[st] = p
	}
	return nil
}

// ReadAt implements io.ReaderAt over the client address space.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	return s.ReadContext(context.Background(), p, off)
}

// ReadContext is ReadAt with cancellation: the context is checked
// before each stripe span, so a network frontend's per-request deadline
// stops a large read between stripes instead of after it completes.
// Already-read spans are not undone; a cancelled read returns 0 and the
// context's error.
func (s *Store) ReadContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := s.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	s.touch()
	start := time.Now()
	var lockWait, dev time.Duration
	spp := spanPool.Get().(*[]layout.StripeSpan)
	spans := s.geo.SplitAppend((*spp)[:0], off, int64(len(p)))
	defer func() { *spp = spans; spanPool.Put(spp) }()
	for _, sp := range spans {
		if err := ctx.Err(); err != nil {
			s.traceOp("READ", off, int64(len(p)), start, lockWait, dev, err)
			return 0, err
		}
		lk := s.stripeLock(sp.Stripe)
		t0 := time.Now()
		lk.Lock()
		t1 := time.Now()
		var err error
		for tries := 0; ; tries++ {
			if s.geo.Level == layout.RAID6 {
				err = s.readSpan6(p, off, sp)
			} else {
				err = s.readSpan(p, off, sp)
			}
			// A member reporting fail-stop failure mid-span moves the
			// store to degraded mode; retry the span, now reconstructing
			// around the dead disk. absorbFailure refuses once the
			// redundancy is exhausted; the tries bound guards against a
			// span that keeps tripping on an already-absorbed member. A
			// checksum mismatch is absorbed the same way: repair the one
			// corrupt unit from redundancy, then retry the span.
			if err == nil || tries >= s.spanRetryBudget() {
				break
			}
			if s.absorbFailure(err) {
				continue
			}
			var retry bool
			if retry, err = s.absorbMismatch(err); !retry {
				break
			}
		}
		lk.Unlock()
		t2 := time.Now()
		s.ob.lockWait.Observe(t1.Sub(t0))
		s.ob.devRead.Observe(t2.Sub(t1))
		lockWait += t1.Sub(t0)
		dev += t2.Sub(t1)
		if err != nil {
			s.traceOp("READ", off, int64(len(p)), start, lockWait, dev, err)
			return 0, err
		}
	}
	s.traceOp("READ", off, int64(len(p)), start, lockWait, dev, nil)
	s.meta.Lock()
	s.stats.Reads++
	s.stats.BytesRead += int64(len(p))
	s.meta.Unlock()
	return len(p), nil
}

// readSpan reads one stripe's extents, reconstructing around a failed
// disk when possible. Caller holds the stripe lock.
func (s *Store) readSpan(p []byte, base int64, sp layout.StripeSpan) error {
	s.meta.Lock()
	dead := s.dead
	dirty := s.marks.IsMarked(sp.Stripe)
	pol := s.effectivePolicy(sp.Stripe)
	s.meta.Unlock()

	for _, e := range sp.Extents {
		dst := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		if e.Disk != dead {
			if err := s.devRead(e.Disk, dst, e.DiskOff); err != nil {
				return err
			}
			continue
		}
		// The extent lives on the failed disk.
		if dirty || pol == PolicyNeverRedundant {
			return fmt.Errorf("%w: stripe %d", ErrDataLoss, sp.Stripe)
		}
		if err := s.degradedReadExtent(dst, sp.Stripe, e); err != nil {
			return err
		}
		s.meta.Lock()
		s.stats.DegradedReads++
		s.meta.Unlock()
	}
	return nil
}

// degradedReadExtent reconstructs a lost extent from parity plus the
// surviving data units. The survivor reads target distinct disks, so
// they are fanned out to the I/O workers and overlap; the parity read
// is done inline by this goroutine. Caller holds the stripe lock.
func (s *Store) degradedReadExtent(dst []byte, stripe int64, e layout.Extent) error {
	n := len(dst)
	off := s.geo.DiskOffset(stripe) + e.UnitOff
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	for i := range sb.errs {
		sb.errs[i] = nil
	}
	dd := s.geo.DataDisks()
	for i := 0; i < dd; i++ {
		if i == e.DataIdx {
			continue
		}
		s.devReadAsync(s.geo.DataDisk(stripe, i), sb.units[i][:n], off, &sb.errs[i], &sb.wg)
	}
	p := sb.p[:n]
	perr := s.devRead(s.geo.ParityDisk(stripe), p, off)
	sb.wg.Wait()
	if perr != nil {
		return perr
	}
	sb.gather = sb.gather[:0]
	for i := 0; i < dd; i++ {
		if i == e.DataIdx {
			continue
		}
		if sb.errs[i] != nil {
			return sb.errs[i]
		}
		sb.gather = append(sb.gather, sb.units[i][:n])
	}
	parity.Reconstruct(dst, p, sb.gather...)
	return nil
}

// WriteAt implements io.WriterAt over the client address space.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	return s.WriteContext(context.Background(), p, off)
}

// WriteContext is WriteAt with cancellation, checked before each stripe
// span. Spans written before cancellation stay written (the store has
// no transactions); the caller learns how far the write got only by
// re-reading, exactly as after a crash.
func (s *Store) WriteContext(ctx context.Context, p []byte, off int64) (int, error) {
	if err := s.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	s.touch()
	start := time.Now()
	var lockWait, dev time.Duration
	spp := spanPool.Get().(*[]layout.StripeSpan)
	spans := s.geo.SplitAppend((*spp)[:0], off, int64(len(p)))
	defer func() { *spp = spans; spanPool.Put(spp) }()
	for _, sp := range spans {
		if err := ctx.Err(); err != nil {
			s.traceOp("WRITE", off, int64(len(p)), start, lockWait, dev, err)
			return 0, err
		}
		lk := s.stripeLock(sp.Stripe)
		t0 := time.Now()
		lk.Lock()
		t1 := time.Now()
		var err error
		for tries := 0; ; tries++ {
			if s.geo.Level == layout.RAID6 {
				err = s.writeSpan6(p, off, sp)
			} else {
				err = s.writeSpan(p, off, sp)
			}
			// See ReadContext: absorb a fail-stop member (or repair a
			// unit that failed checksum verification) and retry the span
			// under the appropriate protocol.
			if err == nil || tries >= s.spanRetryBudget() {
				break
			}
			if s.absorbFailure(err) {
				continue
			}
			var retry bool
			if retry, err = s.absorbMismatch(err); !retry {
				break
			}
			// The failed attempt may have applied its parity delta
			// partially before the corrupt unit surfaced; rebuild parity
			// from at-rest data so the retried read-modify-write starts
			// from a consistent stripe. Corruption met during the
			// rebuild joins the absorb loop like any other span error.
			if err = s.resyncParity(sp.Stripe); err != nil {
				if s.absorbFailure(err) {
					continue
				}
				if retry, err = s.absorbMismatch(err); !retry {
					break
				}
				if err = s.resyncParity(sp.Stripe); err != nil {
					break
				}
			}
		}
		lk.Unlock()
		t2 := time.Now()
		s.ob.lockWait.Observe(t1.Sub(t0))
		s.ob.devWrite.Observe(t2.Sub(t1))
		lockWait += t1.Sub(t0)
		dev += t2.Sub(t1)
		if err != nil {
			s.traceOp("WRITE", off, int64(len(p)), start, lockWait, dev, err)
			return 0, err
		}
	}
	s.meta.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += int64(len(p))
	s.meta.Unlock()
	s.kickScrub()
	s.traceOp("WRITE", off, int64(len(p)), start, lockWait, dev, nil)
	return len(p), nil
}

// writeSpan applies one stripe's worth of a write under the stripe lock.
func (s *Store) writeSpan(p []byte, base int64, sp layout.StripeSpan) error {
	s.meta.Lock()
	dead := s.dead
	pol := s.effectivePolicy(sp.Stripe)
	s.meta.Unlock()

	if dead >= 0 && pol != PolicyNeverRedundant {
		// Degraded operation: with a disk already gone, deferring
		// parity would turn the next failure into certain loss, so the
		// array maintains parity synchronously (and through it the
		// contents of the dead unit).
		return s.writeSpanDegraded(p, base, sp)
	}

	switch pol {
	case PolicyNeverRedundant:
		return s.writeSpanData(p, base, sp, dead)
	case PolicyAlwaysRedundant:
		return s.writeSpanRaid5(p, base, sp)
	default: // AFRAID
		// Verify the old contents under partial extents *before* marking:
		// a corruption found after our own mark would be misread as
		// dirty-stripe loss (see preflightChecksums).
		if err := s.preflightChecksums(sp); err != nil {
			return err
		}
		if err := s.markStripe(sp.Stripe); err != nil {
			return err
		}
		return s.writeSpanData(p, base, sp, -1)
	}
}

// writeSpanData writes only the data extents. A dead disk makes writes
// to its units unrecoverable, matching RAID 0 semantics.
func (s *Store) writeSpanData(p []byte, base int64, sp layout.StripeSpan, dead int) error {
	for _, e := range sp.Extents {
		if e.Disk == dead {
			return fmt.Errorf("%w: stripe %d", ErrDataLoss, sp.Stripe)
		}
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		if err := s.devWrite(e.Disk, src, e.DiskOff); err != nil {
			return err
		}
	}
	return nil
}

// writeSpanRaid5 performs the synchronous small-update protocol:
// read old data and old parity, xor-update, write data and parity.
func (s *Store) writeSpanRaid5(p []byte, base int64, sp layout.StripeSpan) error {
	stripe := sp.Stripe
	pDisk := s.geo.ParityDisk(stripe)
	for _, e := range sp.Extents {
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		if err := s.rmwExtent(stripe, pDisk, e, src); err != nil {
			return err
		}
	}
	return nil
}

// rmwExtent is one extent's read-modify-write. The old-data and
// old-parity reads target different disks, so one is handed to the I/O
// workers while this goroutine does the other; scratch comes from the
// stripe-buffer pool, so steady-state RAID 5 writes allocate nothing.
func (s *Store) rmwExtent(stripe int64, pDisk int, e layout.Extent, src []byte) error {
	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	old := sb.units[0][:e.Len]
	sb.errs[0] = nil
	s.devReadAsync(e.Disk, old, e.DiskOff, &sb.errs[0], &sb.wg)
	par := sb.p[:e.Len]
	pOff := s.geo.DiskOffset(stripe) + e.UnitOff
	perr := s.devRead(pDisk, par, pOff)
	sb.wg.Wait()
	if perr != nil {
		return perr
	}
	if sb.errs[0] != nil {
		return sb.errs[0]
	}
	pt := time.Now()
	parity.Update(par, old, src)
	s.observeParity(pt)
	if err := s.devWrite(e.Disk, src, e.DiskOff); err != nil {
		return err
	}
	return s.devWrite(pDisk, par, pOff)
}

// writeSpanDegraded rewrites the whole stripe image around a failed
// disk: reconstruct, apply the new data, recompute parity, write the
// surviving units. Caller holds the stripe lock.
func (s *Store) writeSpanDegraded(p []byte, base int64, sp layout.StripeSpan) error {
	stripe := sp.Stripe
	s.meta.Lock()
	dead := s.dead
	dirty := s.marks.IsMarked(stripe)
	s.meta.Unlock()

	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	if err := s.loadStripeImageInto(sb, stripe, dead, dirty); err != nil {
		return err
	}
	// Apply the new data in memory.
	for _, e := range sp.Extents {
		src := p[e.ArrOff-base : e.ArrOff-base+e.Len]
		copy(sb.units[e.DataIdx][e.UnitOff:], src)
	}
	return s.storeStripeImage(stripe, sb, dead, dirty)
}

// loadStripeImageInto reads all data units of a stripe into sb,
// reconstructing the dead one from parity when the stripe is clean. A
// dirty stripe's dead data unit is unrecoverable and is surfaced as
// ErrDataLoss.
func (s *Store) loadStripeImageInto(sb *stripeBuf, stripe int64, dead int, dirty bool) error {
	deadIdx := -1
	if dead >= 0 {
		for i := range sb.units {
			if s.geo.DataDisk(stripe, i) == dead {
				deadIdx = i
				break
			}
		}
	}
	if deadIdx >= 0 && dirty {
		return fmt.Errorf("%w: stripe %d", ErrDataLoss, stripe)
	}
	if err := s.readStripeUnits(sb, stripe, dead, -1); err != nil {
		return err
	}
	if deadIdx >= 0 {
		pDisk := s.geo.ParityDisk(stripe)
		if pDisk == dead {
			return fmt.Errorf("core: internal: dead disk is both data and parity")
		}
		if err := s.devRead(pDisk, sb.p, s.geo.DiskOffset(stripe)); err != nil {
			return err
		}
		parity.Reconstruct(sb.units[deadIdx], sb.p, sb.survivors(deadIdx)...)
	}
	return nil
}

// storeStripeImage writes back a full stripe image (data plus parity),
// skipping the dead disk's unit; parity then encodes it. When a repair
// sweep has already rebuilt this stripe onto an in-progress replacement,
// the dead disk's unit is mirrored there too, so the replacement does
// not hold stale data when RepairDisk swaps it in.
func (s *Store) storeStripeImage(stripe int64, sb *stripeBuf, dead int, wasDirty bool) error {
	off := s.geo.DiskOffset(stripe)
	rd := s.repairTarget(stripe, dead)
	for i, u := range sb.units {
		d := s.geo.DataDisk(stripe, i)
		if d == dead {
			if rd != nil {
				if _, err := rd.WriteAt(u, off); err != nil {
					return fmt.Errorf("core: repair mirror write: %w", err)
				}
				if err := s.putChecksumTo(rd, stripe, u); err != nil {
					return err
				}
			}
			continue
		}
		if err := s.devWrite(d, u, off); err != nil {
			return err
		}
	}
	pDisk := s.geo.ParityDisk(stripe)
	pt := time.Now()
	parity.Compute(sb.p, sb.units...)
	s.observeParity(pt)
	if pDisk == dead {
		if rd != nil {
			if _, err := rd.WriteAt(sb.p, off); err != nil {
				return fmt.Errorf("core: repair mirror parity write: %w", err)
			}
			if err := s.putChecksumTo(rd, stripe, sb.p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.devWrite(pDisk, sb.p, off); err != nil {
		return err
	}
	if wasDirty {
		s.meta.Lock()
		s.marks.Unmark(stripe)
		s.dropQuarantine(stripe)
		err := s.commitMarks()
		s.meta.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// repairTarget returns the replacement device a degraded write to the
// stripe must mirror disk d's unit onto: non-nil exactly when RepairDisk
// is rebuilding disk d and its sweep has already rebuilt this stripe.
// The answer cannot go stale within the span: a sweep worker sets the
// stripe's done bit only while holding that stripe's lock, which the
// caller already holds.
func (s *Store) repairTarget(stripe int64, d int) BlockDevice {
	if d < 0 {
		return nil
	}
	s.meta.Lock()
	defer s.meta.Unlock()
	if s.repDisk == d && s.repDone != nil && s.repDone.IsMarked(stripe) {
		return s.repDev
	}
	return nil
}

// checkRange validates a client range.
func (s *Store) checkRange(off, length int64) error {
	s.meta.Lock()
	closed := s.closed
	s.meta.Unlock()
	if closed {
		return ErrClosed
	}
	// Compare without computing off+length, which overflows for off
	// near MaxInt64 and would wrap past the capacity check.
	if length < 0 || off < 0 || length > s.geo.Capacity() || off > s.geo.Capacity()-length {
		return fmt.Errorf("core: range off=%d length=%d outside capacity %d", off, length, s.geo.Capacity())
	}
	return nil
}
