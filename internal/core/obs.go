package core

import (
	"time"

	"afraid/internal/obs"
)

// storeObs is the store's observability kit: per-phase latency
// histograms and a trace ring, all registered in one obs.Registry that
// cmd/afraidd serves under the "core" section of /debug/histograms.
// Recording is lock-free, so the instrumentation stays on permanently.
type storeObs struct {
	reg *obs.Registry

	lockWait     *obs.Histogram // stripe-lock acquisition wait, per span
	devRead      *obs.Histogram // device phase of one read span
	devWrite     *obs.Histogram // device phase of one write span
	parity       *obs.Histogram // in-memory parity compute
	scrubStripe  *obs.Histogram // one stripe rebuild (lock wait included)
	scrubEpisode *obs.Histogram // one scrub episode (a run of rebuilds)
	csumVerify   *obs.Histogram // one checksummed unit read (slot I/O + CRC)
	trace        *obs.Ring
}

func newStoreObs() *storeObs {
	r := obs.NewRegistry()
	return &storeObs{
		reg:          r,
		lockWait:     r.Histogram("stripe_lock_wait"),
		devRead:      r.Histogram("device_read"),
		devWrite:     r.Histogram("device_write"),
		parity:       r.Histogram("parity_compute"),
		scrubStripe:  r.Histogram("scrub_stripe"),
		scrubEpisode: r.Histogram("scrub_episode"),
		csumVerify:   r.Histogram("checksum_verify"),
		trace:        r.Ring("ops", 512),
	}
}

// Obs returns the store's observability registry for mounting on a
// debug endpoint.
func (s *Store) Obs() *obs.Registry { return s.ob.reg }

// traceOp records one completed client operation in the trace ring.
func (s *Store) traceOp(op string, off, n int64, start time.Time, lockWait, dev time.Duration, err error) {
	ev := obs.Event{
		Op:    op,
		Off:   off,
		Len:   n,
		Start: start,
		Lock:  lockWait,
		Dev:   dev,
		Total: time.Since(start),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.ob.trace.Record(ev)
}

// observeParity wraps a parity-compute phase. Kept out of line so the
// call sites in the write and scrub paths stay one line.
func (s *Store) observeParity(start time.Time) {
	s.ob.parity.Observe(time.Since(start))
}
