package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The concurrency test hammers a live store from many goroutines while
// the background scrubber runs, then verifies contents and parity. Run
// with -race: the stripe-lock pool and the meta mutex are the only
// synchronization, and this is what exercises them.

func TestConcurrentReadersWritersWithScrubber(t *testing.T) {
	opts := Options{Mode: Afraid, StripeUnit: testUnit, ScrubIdle: 2 * time.Millisecond, DirtyThreshold: 8}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		workers   = 8
		perWorker = 200
	)
	// Each worker owns a disjoint region: racing writers to the same
	// bytes have no defined winner, but disjoint regions must never
	// interfere (stripe locks are shared across regions, so this still
	// exercises lock contention within stripes).
	region := s.Capacity() / workers
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(w) * region
			buf := make([]byte, 1500)
			got := make([]byte, 1500)
			for i := 0; i < perWorker; i++ {
				off := base + int64(i*37%int(region-1600))
				for j := range buf {
					buf[j] = byte(w*31 + i + j)
				}
				if _, err := s.WriteAt(buf, off); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if _, err := s.ReadAt(got, off); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- fmt.Errorf("worker %d: read-after-write mismatch at %d", w, off)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("parity inconsistent after concurrent load: %v", bad)
	}
}

func TestConcurrentFlushAndWrites(t *testing.T) {
	opts := Options{Mode: Afraid, StripeUnit: testUnit, ScrubIdle: time.Hour, DisableScrubber: true}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 4096)
	for i := 0; i < 500; i++ {
		off := int64(i) % (s.Capacity() - 4096)
		if _, err := s.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if bad, _ := s.CheckParity(); len(bad) != 0 {
		t.Fatalf("parity inconsistent: %v", bad)
	}
}
