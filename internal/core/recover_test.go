package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// fillStore writes a distinct pattern across the whole client space and
// returns the image.
func fillStore(t *testing.T, s *Store) []byte {
	t.Helper()
	img := pattern(int(s.Capacity()), 42)
	const chunk = 64 << 10
	for off := int64(0); off < s.Capacity(); off += chunk {
		n := int64(chunk)
		if off+n > s.Capacity() {
			n = s.Capacity() - off
		}
		if _, err := s.WriteAt(img[off:off+n], off); err != nil {
			t.Fatal(err)
		}
	}
	return img
}

func TestDegradedReadCleanStripes(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("degraded read returned wrong data")
	}
	if s.Stats().DegradedReads == 0 {
		t.Fatal("no degraded reads counted")
	}
}

func TestDirtyStripeLosesOnlyFailedDiskBlocks(t *testing.T) {
	// The paper's exposure semantics: a single-disk failure with
	// unredundant stripes loses exactly one stripe unit per dirty
	// stripe (the one on the failed disk), and nothing from clean
	// stripes.
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Dirty exactly stripes 3 and 7.
	sb := s.Geometry().StripeDataBytes()
	s.WriteAt(pattern(100, 9), 3*sb)
	s.WriteAt(pattern(100, 9), 7*sb)
	copy(img[3*sb:3*sb+100], pattern(100, 9))
	copy(img[7*sb:7*sb+100], pattern(100, 9))
	if s.DirtyStripes() != 2 {
		t.Fatalf("dirty = %d", s.DirtyStripes())
	}

	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}

	geo := s.Geometry()
	unit := geo.StripeUnit
	buf := make([]byte, unit)
	for stripe := int64(0); stripe < geo.Stripes(); stripe++ {
		for idx := 0; idx < geo.DataDisks(); idx++ {
			off := stripe*sb + int64(idx)*unit
			_, err := s.ReadAt(buf, off)
			onFailed := geo.DataDisk(stripe, idx) == 1
			isDirty := stripe == 3 || stripe == 7
			switch {
			case onFailed && isDirty:
				if !errors.Is(err, ErrDataLoss) {
					t.Fatalf("stripe %d unit %d: expected data loss, got %v", stripe, idx, err)
				}
			default:
				if err != nil {
					t.Fatalf("stripe %d unit %d: unexpected error %v", stripe, idx, err)
				}
				if !bytes.Equal(buf, img[off:off+unit]) {
					t.Fatalf("stripe %d unit %d: wrong data", stripe, idx)
				}
			}
		}
	}
}

func TestRepairReconstructsCleanData(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	report, err := s.RepairDisk(4, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if report.Bytes() != 0 {
		t.Fatalf("clean array lost %d bytes in repair", report.Bytes())
	}
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("repair corrupted data")
	}
	if bad, _ := s.CheckParity(); len(bad) != 0 {
		t.Fatalf("parity inconsistent after repair: %v", bad)
	}
}

func TestRepairReportsDirtyStripeDamage(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	s.Flush()
	sb := s.Geometry().StripeDataBytes()
	unit := s.Geometry().StripeUnit
	// Dirty stripe 5, then fail a disk that holds one of its data units.
	s.WriteAt(pattern(100, 3), 5*sb)
	copy(img[5*sb:5*sb+100], pattern(100, 3))
	failDisk := s.Geometry().DataDisk(5, 2)
	if err := s.FailDisk(failDisk); err != nil {
		t.Fatal(err)
	}
	report, err := s.RepairDisk(failDisk, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one unit lost: stripe 5's unit on the failed disk.
	if len(report.Lost) != 1 {
		t.Fatalf("damage report = %+v, want exactly 1 range", report.Lost)
	}
	d := report.Lost[0]
	if d.Stripe != 5 || d.Length != unit || d.Offset != 5*sb+2*unit {
		t.Fatalf("damage range = %+v", d)
	}
	// The rest of the array must be intact and consistent, with the
	// damaged unit zero-filled.
	copy(img[d.Offset:d.Offset+d.Length], make([]byte, d.Length))
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("repair corrupted data outside the damaged range")
	}
	if bad, _ := s.CheckParity(); len(bad) != 0 {
		t.Fatalf("parity inconsistent after repair: %v", bad)
	}
	if s.DirtyStripes() != 0 {
		t.Fatalf("dirty = %d after repair", s.DirtyStripes())
	}
}

func TestDegradedWriteKeepsRedundancy(t *testing.T) {
	// Writes while a disk is down must maintain parity synchronously so
	// the dead unit stays recoverable.
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	s.Flush()
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	data := pattern(testUnit*2, 77)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(img[0:len(data)], data)
	// No new dirty stripes in degraded mode.
	if s.DirtyStripes() != 0 {
		t.Fatalf("degraded write marked %d stripes dirty", s.DirtyStripes())
	}
	// Repair and verify everything, including data that lived on disk 0.
	report, err := s.RepairDisk(0, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if report.Bytes() != 0 {
		t.Fatalf("lost %d bytes despite degraded-mode parity maintenance", report.Bytes())
	}
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("data mismatch after degraded writes and repair")
	}
}

func TestSecondFailureRejected(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(2); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("second failure: %v", err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatalf("re-failing the same disk should be idempotent: %v", err)
	}
	if _, err := s.RepairDisk(2, NewMemDevice(testDisk)); err == nil {
		t.Fatal("repairing a healthy disk accepted")
	}
}

func TestFlushBlockedWhileDegraded(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	s.WriteAt(pattern(100, 1), 0)
	s.FailDisk(3)
	if err := s.Flush(); err == nil {
		t.Fatal("flush with failed disk should error")
	}
}

func TestRaid0RepairLosesEverythingOnThatDisk(t *testing.T) {
	devs := newDevs(4)
	s, err := Open(devs, &MemNVRAM{}, Options{Mode: Raid0, StripeUnit: testUnit, ScrubIdle: time.Hour, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s)
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	report, err := s.RepairDisk(2, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	// One unit per stripe lived on the failed disk; all lost.
	want := s.Geometry().Stripes() * s.Geometry().StripeUnit
	if report.Bytes() != want {
		t.Fatalf("RAID0 repair lost %d bytes, want %d (a full disk)", report.Bytes(), want)
	}
}

func TestScrubberSkipsWhileDegraded(t *testing.T) {
	opts := Options{Mode: Afraid, ScrubIdle: 10 * time.Millisecond, StripeUnit: testUnit}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.WriteAt(pattern(100, 1), 0)
	s.FailDisk(1)
	time.Sleep(100 * time.Millisecond)
	if s.DirtyStripes() == 0 {
		t.Fatal("scrubber rebuilt parity using a failed disk")
	}
}
