//go:build linux

package core

import (
	"os"
	"syscall"
)

// preallocFile commits the whole image's blocks with fallocate, which
// reserves space without writing (and without disturbing existing
// data). Filesystems that don't support it (and tmpfs kernels built
// without it) report ENOTSUP; then the zero-fill fallback materializes
// the unwritten tail instead.
func preallocFile(f *os.File, oldSize, size int64) error {
	err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
	if err == nil {
		return nil
	}
	if err == syscall.EOPNOTSUPP || err == syscall.ENOSYS {
		return zeroFill(f, oldSize, size)
	}
	return err
}
