package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// openCsum opens a 5-disk store with block checksums enabled.
func openCsum(t *testing.T, opts Options) (*Store, []BlockDevice) {
	t.Helper()
	opts.StripeUnit = testUnit
	opts.Checksums = true
	if opts.ScrubIdle == 0 {
		opts.ScrubIdle = time.Hour
	}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, devs
}

// flipByte corrupts one byte directly on a backing device, behind the
// store's back: the unit changes but its checksum slot does not.
func flipByte(t *testing.T, d BlockDevice, off int64) {
	t.Helper()
	b := make([]byte, 1)
	if _, err := d.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := d.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumRoundTripModes(t *testing.T) {
	for _, mode := range []Mode{Afraid, Raid5, Raid0, Raid6, Afraid6} {
		s, _ := openCsum(t, Options{Mode: mode, DisableScrubber: true})
		data := pattern(3*testUnit+123, 5)
		if _, err := s.WriteAt(data, 777); err != nil {
			t.Fatalf("%v: write: %v", mode, err)
		}
		got := make([]byte, len(data))
		if _, err := s.ReadAt(got, 777); err != nil {
			t.Fatalf("%v: read: %v", mode, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: read-after-write mismatch", mode)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("%v: flush: %v", mode, err)
		}
		s.Close()
	}
}

func TestChecksumTrailerShrinksCapacity(t *testing.T) {
	plain, _ := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer plain.Close()
	sums, _ := openCsum(t, Options{Mode: Afraid, DisableScrubber: true})
	defer sums.Close()
	if sums.Capacity() >= plain.Capacity() {
		t.Fatalf("checksummed capacity %d not below plain %d", sums.Capacity(), plain.Capacity())
	}
}

// A flipped bit on a clean stripe's data unit is detected on read and
// repaired in place from parity: the client sees the original bytes.
func TestChecksumRepairsCleanDataUnit(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	data := pattern(testUnit, 9)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	d := s.geo.DataDisk(0, 0)
	flipByte(t, devs[d], s.geo.DiskOffset(0)+100)
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("read after flip: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read served corrupt bytes")
	}
	st := s.Stats()
	if st.ChecksumDetected == 0 || st.ChecksumRepaired == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Repaired in place: verifying the raw unit passes again.
	if err := s.verifyUnit(d, 0); err != nil {
		t.Fatalf("unit still corrupt after repair: %v", err)
	}
}

// A flipped bit on a clean stripe's parity is caught by CheckParity and
// recomputed; the audit ends consistent.
func TestChecksumRepairsParityUnit(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Raid5, DisableScrubber: true})
	defer s.Close()
	if _, err := s.WriteAt(pattern(testUnit, 3), 0); err != nil {
		t.Fatal(err)
	}
	flipByte(t, devs[s.geo.ParityDisk(0)], s.geo.DiskOffset(0)+7)
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("inconsistent stripes after repair: %v", bad)
	}
	if st := s.Stats(); st.ChecksumRepaired == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// A scribbled checksum slot (torn trailer write) is indistinguishable
// from corrupt data and goes down the same repair path.
func TestChecksumTornSlotRepairs(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	data := pattern(testUnit, 11)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	d := s.geo.DataDisk(0, 0)
	// Torn slot: the magic landed, the CRC bytes did not.
	if _, err := devs[d].WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, s.geo.ChecksumOff(0)+4); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("read after torn slot: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read served wrong bytes")
	}
	if err := s.verifyUnit(d, 0); err != nil {
		t.Fatalf("slot not rewritten: %v", err)
	}
}

// Corruption under a dirty AFRAID stripe has no redundancy to repair
// from: the read reports loss (never serves the corrupt bytes), Flush
// quarantines the stripe, and overwriting the unit clears the state.
func TestChecksumDirtyStripeLoss(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	if _, err := s.WriteAt(pattern(testUnit, 4), 0); err != nil {
		t.Fatal(err)
	}
	d := s.geo.DataDisk(0, 0)
	flipByte(t, devs[d], s.geo.DiskOffset(0)+50)

	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("read: want ErrDataLoss, got %v", err)
	}
	if st := s.Stats(); st.ChecksumLost == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := s.Flush(); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("flush: want ErrDataLoss, got %v", err)
	}
	if q := s.QuarantinedStripes(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("quarantine: %v", q)
	}

	// A full overwrite of the corrupt unit replaces data and checksum;
	// the stripe becomes scrubbable again.
	fresh := pattern(testUnit, 77)
	if _, err := s.WriteAt(fresh, 0); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after overwrite: %v", err)
	}
	if _, err := s.ReadAt(got, 0); err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("read after overwrite: %v", err)
	}
	if q := s.QuarantinedStripes(); len(q) != 0 {
		t.Fatalf("quarantine not dropped: %v", q)
	}
}

// With checksums disabled the same flip is served silently — the
// detection tests above are not vacuously passing.
func TestChecksumFlipSilentWhenDisabled(t *testing.T) {
	s, devs := openTest(t, Options{Mode: Afraid, DisableScrubber: true})
	defer s.Close()
	data := pattern(testUnit, 8)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, devs[s.geo.DataDisk(0, 0)], s.geo.DiskOffset(0)+100)
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("flip not visible — tamper ineffective, detection tests prove nothing")
	}
}

// Double-parity repair: two corrupt data units in the same clean RAID 6
// stripe are both recovered.
func TestChecksumRaid6DoubleTamper(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Raid6, DisableScrubber: true})
	defer s.Close()
	data := pattern(2*testUnit, 21)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	flipByte(t, devs[s.geo.DataDisk(0, 0)], s.geo.DiskOffset(0)+1)
	flipByte(t, devs[s.geo.DataDisk(0, 1)], s.geo.DiskOffset(0)+2)
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("double tamper not repaired")
	}
}

// Afraid6 defers only Q, so a dirty stripe still repairs single
// corruption through its fresh P — the paper's partial-redundancy
// point extended to integrity.
func TestChecksumAfraid6DirtyRepairs(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Afraid6, DisableScrubber: true})
	defer s.Close()
	data := pattern(testUnit, 31)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	flipByte(t, devs[s.geo.DataDisk(0, 0)], s.geo.DiskOffset(0)+3)
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("dirty-stripe corruption not repaired through fresh P")
	}
	if st := s.Stats(); st.ChecksumRepaired == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// RepairDisk writes checksum slots for everything it reconstructs, so
// the replacement's units verify from the moment of the swap.
func TestChecksumRepairDiskWritesSlots(t *testing.T) {
	s, _ := openCsum(t, Options{Mode: Raid5, DisableScrubber: true})
	defer s.Close()
	data := pattern(int(s.Capacity()), 13)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	rep, err := s.RepairDisk(2, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 0 {
		t.Fatalf("unexpected loss: %+v", rep)
	}
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after repair")
	}
	for st := int64(0); st < s.geo.Stripes(); st++ {
		if err := s.verifyUnit(2, st); err != nil {
			t.Fatalf("stripe %d on replacement: %v", st, err)
		}
	}
}

// A survivor corrupted while a disk is dead exceeds RAID 5 redundancy:
// the repair sweep salvages the stripe — zeroing and reporting both
// unrecoverable units — instead of failing or serving garbage.
func TestChecksumRepairDiskSalvagesCorruptSurvivor(t *testing.T) {
	s, devs := openCsum(t, Options{Mode: Raid5, DisableScrubber: true})
	defer s.Close()
	data := pattern(int(s.Capacity()), 17)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	target := s.geo.DataDisk(0, 0)
	var survivor int
	for i := 0; i < s.geo.DataDisks(); i++ {
		if d := s.geo.DataDisk(0, i); d != target {
			survivor = d
			break
		}
	}
	if err := s.FailDisk(target); err != nil {
		t.Fatal(err)
	}
	flipByte(t, devs[survivor], s.geo.DiskOffset(0)+9)
	rep, err := s.RepairDisk(target, NewMemDevice(testDisk))
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if len(rep.Lost) == 0 {
		t.Fatal("salvage reported no loss")
	}
	for _, l := range rep.Lost {
		if l.Stripe != 0 {
			t.Fatalf("loss outside tampered stripe: %+v", l)
		}
	}
	// Everything reads without error now; lost ranges read zero.
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("read after salvage: %v", err)
	}
	zero := make([]byte, testUnit)
	for _, l := range rep.Lost {
		if !bytes.Equal(got[l.Offset:l.Offset+l.Length], zero[:l.Length]) {
			t.Fatalf("lost range %+v not zeroed", l)
		}
	}
}
