package core

import (
	"testing"
)

// TestIOPathAllocs pins the foreground I/O path's allocation behavior:
// after warm-up, full-span reads and writes — with and without
// checksums — run without heap allocation. The pooled pieces this
// guards: span slices (SplitAppend + spanPool), checksum slot buffers
// (slotPool), and unit scratch (bufpool). A regression in any of them
// shows up here as a nonzero allocs/op long before it shows up as GC
// pressure in a throughput benchmark.
func TestIOPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	for _, checksums := range []bool{false, true} {
		name := "checksums=off"
		if checksums {
			name = "checksums=on"
		}
		t.Run(name, func(t *testing.T) {
			s, _ := openTest(t, Options{Mode: Raid0, DisableScrubber: true, Checksums: checksums})
			defer s.Close()
			span := s.Geometry().StripeDataBytes()
			buf := make([]byte, span)
			for i := 0; i < 16; i++ { // warm the pools
				if _, err := s.WriteAt(buf, 0); err != nil {
					t.Fatal(err)
				}
				if _, err := s.ReadAt(buf, 0); err != nil {
					t.Fatal(err)
				}
			}
			writes := testing.AllocsPerRun(100, func() {
				if _, err := s.WriteAt(buf, 0); err != nil {
					t.Fatal(err)
				}
			})
			reads := testing.AllocsPerRun(100, func() {
				if _, err := s.ReadAt(buf, 0); err != nil {
					t.Fatal(err)
				}
			})
			if writes >= 1 || reads >= 1 {
				t.Fatalf("steady-state I/O allocates (write %.1f, read %.1f allocs/op); pooled buffers regressed", writes, reads)
			}
		})
	}
}
