package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func openTest6(t *testing.T, opts Options) (*Store, []BlockDevice) {
	t.Helper()
	opts.Mode = defaultIf(opts.Mode, Afraid6)
	opts.StripeUnit = testUnit
	if opts.ScrubIdle == 0 {
		opts.ScrubIdle = time.Hour
	}
	devs := newDevs(6) // 4 data + P + Q
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, devs
}

func defaultIf(m, d Mode) Mode {
	if m == Afraid { // zero value
		return d
	}
	return m
}

func TestRaid6ReadAfterWrite(t *testing.T) {
	for _, mode := range []Mode{Raid6, Afraid6} {
		s, _ := openTest6(t, Options{Mode: mode, DisableScrubber: true})
		data := pattern(3*testUnit+511, 9)
		if _, err := s.WriteAt(data, 1234); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got := make([]byte, len(data))
		if _, err := s.ReadAt(got, 1234); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: round trip mismatch", mode)
		}
		s.Close()
	}
}

func TestRaid6SyncAlwaysConsistent(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Raid6, DisableScrubber: true})
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.WriteAt(pattern(777, byte(i)), int64(i)*2345)
	}
	if s.DirtyStripes() != 0 {
		t.Fatalf("sync RAID6 has %d dirty stripes", s.DirtyStripes())
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("P/Q inconsistent: %v", bad)
	}
}

func TestAfraid6DeferQMarksThenFlushCleans(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Afraid6, DisableScrubber: true})
	defer s.Close()
	s.WriteAt(pattern(100, 1), 0)
	if s.DirtyStripes() != 1 {
		t.Fatalf("dirty = %d", s.DirtyStripes())
	}
	bad, _ := s.CheckParity()
	if len(bad) != 1 {
		t.Fatalf("inconsistent = %v, want the one Q-stale stripe", bad)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, _ = s.CheckParity()
	if len(bad) != 0 {
		t.Fatalf("inconsistent after flush: %v", bad)
	}
}

func TestAfraid6DirtyStripeSurvivesSingleFailure(t *testing.T) {
	// The §5 selling point: with only Q deferred, a dirty stripe is
	// still single-failure recoverable through P.
	s, _ := openTest6(t, Options{Mode: Afraid6, DisableScrubber: true})
	defer s.Close()
	data := pattern(testUnit, 7)
	s.WriteAt(data, 0) // dirty: Q stale, P fresh
	if err := s.FailDisk(s.Geometry().DataDisk(0, 0)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("single failure on a Q-stale stripe should reconstruct via P: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong data reconstructed")
	}
}

func TestAfraid6DeferBothDirtyStripeLosesOnSingleFailure(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Afraid6, DeferBothParities: true, DisableScrubber: true})
	defer s.Close()
	s.WriteAt(pattern(testUnit, 7), 0)
	if err := s.FailDisk(s.Geometry().DataDisk(0, 0)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("defer-both dirty stripe should lose data on single failure, got %v", err)
	}
}

func TestRaid6SurvivesDoubleFailure(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Raid6, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(3); err != nil {
		t.Fatalf("RAID6 should absorb a second failure: %v", err)
	}
	if err := s.FailDisk(5); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("third failure accepted: %v", err)
	}
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatalf("double-degraded read: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("double-degraded read returned wrong data")
	}
}

func TestRaid6DoubleFailureRepairBothDisks(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Raid6, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	s.FailDisk(1)
	s.FailDisk(4)
	rep1, err := s.RepairDisk(1, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Bytes() != 0 {
		t.Fatalf("first repair lost %d bytes", rep1.Bytes())
	}
	rep2, err := s.RepairDisk(4, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Bytes() != 0 {
		t.Fatalf("second repair lost %d bytes", rep2.Bytes())
	}
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("data corrupted across double repair")
	}
	bad, _ := s.CheckParity()
	if len(bad) != 0 {
		t.Fatalf("parity inconsistent after repairs: %v", bad)
	}
}

func TestAfraid6DegradedWriteMaintainsParity(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Afraid6, DisableScrubber: true})
	defer s.Close()
	img := fillStore(t, s)
	s.Flush()
	s.FailDisk(2)
	data := pattern(2*testUnit, 55)
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(img, data)
	rep, err := s.RepairDisk(2, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes() != 0 {
		t.Fatalf("lost %d bytes despite degraded parity maintenance", rep.Bytes())
	}
	got := make([]byte, len(img))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("data mismatch after degraded write and repair")
	}
}

func TestAfraid6ScrubberDrains(t *testing.T) {
	opts := Options{Mode: Afraid6, ScrubIdle: 20 * time.Millisecond, StripeUnit: testUnit}
	devs := newDevs(6)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.WriteAt(pattern(100, byte(i)), int64(i)*s.Geometry().StripeDataBytes())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.DirtyStripes() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scrubber stuck with %d dirty", s.DirtyStripes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	bad, _ := s.CheckParity()
	if len(bad) != 0 {
		t.Fatalf("inconsistent after scrub: %v", bad)
	}
}

func TestAfraid6DirtyStripeDoubleFailureLosesData(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Afraid6, DisableScrubber: true})
	defer s.Close()
	fillStore(t, s)
	s.Flush()
	s.WriteAt(pattern(100, 3), 0) // stripe 0 dirty: Q stale
	d0 := s.Geometry().DataDisk(0, 0)
	d1 := s.Geometry().DataDisk(0, 1)
	s.FailDisk(d0)
	s.FailDisk(d1)
	buf := make([]byte, testUnit)
	if _, err := s.ReadAt(buf, 0); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("dirty stripe with two dead data disks should be lost, got %v", err)
	}
	// A clean stripe remains double-failure recoverable.
	if _, err := s.ReadAt(buf, 5*s.Geometry().StripeDataBytes()); err != nil {
		t.Fatalf("clean stripe under double failure: %v", err)
	}
}

func TestRaid6RepairAfterDirtyLossReportsDamage(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Afraid6, DeferBothParities: true, DisableScrubber: true})
	defer s.Close()
	fillStore(t, s)
	s.Flush()
	s.WriteAt(pattern(100, 3), 0) // dirty with both parities stale
	failDisk := s.Geometry().DataDisk(0, 0)
	s.FailDisk(failDisk)
	rep, err := s.RepairDisk(failDisk, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0].Stripe != 0 {
		t.Fatalf("damage report = %+v, want stripe 0's unit", rep.Lost)
	}
	// After repair the array must be fully consistent again.
	bad, _ := s.CheckParity()
	if len(bad) != 0 {
		t.Fatalf("inconsistent after lossy repair: %v", bad)
	}
	if s.DirtyStripes() != 0 {
		t.Fatalf("dirty = %d after repair", s.DirtyStripes())
	}
}

func TestRaid6PolicyRangesRejected(t *testing.T) {
	s, _ := openTest6(t, Options{Mode: Afraid6, DisableScrubber: true})
	defer s.Close()
	sb := s.Geometry().StripeDataBytes()
	if err := s.SetStripePolicy(0, sb, PolicyAlwaysRedundant); err == nil {
		t.Fatal("per-stripe policy accepted on RAID6 store")
	}
}

func TestDeferBothRequiresAfraid6(t *testing.T) {
	devs := newDevs(6)
	_, err := Open(devs, &MemNVRAM{}, Options{Mode: Raid6, DeferBothParities: true, StripeUnit: testUnit})
	if err == nil {
		t.Fatal("DeferBothParities on Raid6 accepted")
	}
}
