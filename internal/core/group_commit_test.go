package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"afraid/internal/nvram"
)

// slowNVRAM counts Store calls and holds each one for delay, modeling a
// marking memory whose persist latency dominates small writes. It also
// keeps the last image so tests can check what actually became durable.
type slowNVRAM struct {
	MemNVRAM
	delay  time.Duration
	stores atomic.Uint64
}

func (n *slowNVRAM) Store(img []byte) error {
	n.stores.Add(1)
	time.Sleep(n.delay)
	return n.MemNVRAM.Store(img)
}

// TestGroupCommitBatchesPersists drives many concurrent writers, each
// dirtying its own stripe, against an NVRAM slow enough that their
// marks must pile up behind the in-flight persist. Group commit then
// covers the pile with the next write: far fewer NVRAM stores than
// marks, while the final durable image still holds every mark.
func TestGroupCommitBatchesPersists(t *testing.T) {
	const (
		writers   = 8
		perWriter = 8
	)
	nv := &slowNVRAM{delay: 2 * time.Millisecond}
	devs := newDevs(5)
	s, err := Open(devs, nv, Options{Mode: Afraid, StripeUnit: testUnit, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := pattern(testUnit, byte(w))
			for i := 0; i < perWriter; i++ {
				stripe := int64(w*perWriter + i)
				if _, err := s.WriteAt(buf, stripe*4*testUnit); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	marks := uint64(writers * perWriter)
	persists := s.Stats().NVRAMPersists
	if persists != nv.stores.Load() {
		t.Fatalf("stats report %d persists, NVRAM saw %d", persists, nv.stores.Load())
	}
	if persists >= marks {
		t.Fatalf("group commit issued %d NVRAM stores for %d marks; want batching (fewer stores than marks)", persists, marks)
	}
	t.Logf("%d marks batched into %d NVRAM stores", marks, persists)

	// Every mark must be durable: the image in NVRAM matches the
	// in-memory bitmap, with all written stripes dirty.
	img, err := nv.Load()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := nvram.Deserialize(img)
	if err != nil {
		t.Fatal(err)
	}
	for st := int64(0); st < int64(marks); st++ {
		if !bm.IsMarked(st) {
			t.Fatalf("stripe %d written but not marked in the durable image", st)
		}
	}
}

// TestGroupCommitDurableBeforeReturn pins the mark-before-write
// invariant under group commit: by the time WriteAt returns, the
// stripe's mark is in NVRAM (not merely queued). A sequential caller
// never shares a batch, so this also covers the leader fast path.
func TestGroupCommitDurableBeforeReturn(t *testing.T) {
	nv := &slowNVRAM{}
	devs := newDevs(5)
	s, err := Open(devs, nv, Options{Mode: Afraid, StripeUnit: testUnit, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for stripe := int64(0); stripe < 4; stripe++ {
		if _, err := s.WriteAt(pattern(512, byte(stripe)), stripe*4*testUnit); err != nil {
			t.Fatal(err)
		}
		img, err := nv.Load()
		if err != nil {
			t.Fatal(err)
		}
		bm, err := nvram.Deserialize(img)
		if err != nil {
			t.Fatal(err)
		}
		if !bm.IsMarked(stripe) {
			t.Fatalf("WriteAt returned before stripe %d's mark was durable", stripe)
		}
	}

	// And the unmark side: after Flush the durable image is clean.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	img, err := nv.Load()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := nvram.Deserialize(img)
	if err != nil {
		t.Fatal(err)
	}
	if c := bm.Count(); c != 0 {
		t.Fatalf("durable image still has %d marks after Flush", c)
	}
}
