package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowDev wraps a device with a switchable per-read delay, so a test
// can make parity rebuilds expensive (each rebuild reads every data
// unit) without slowing the data-only writes that build the backlog.
type slowDev struct {
	BlockDevice
	readDelay atomic.Int64 // nanoseconds per ReadAt
}

func (d *slowDev) ReadAt(p []byte, off int64) (int, error) {
	if dl := d.readDelay.Load(); dl > 0 {
		time.Sleep(time.Duration(dl))
	}
	return d.BlockDevice.ReadAt(p, off)
}

// openSlow builds a 5-disk store over slowDev-wrapped memory devices:
// 2 MB disks at 4 KB units = 512 stripes.
func openSlow(t *testing.T, opts Options) (*Store, []*slowDev) {
	t.Helper()
	opts.StripeUnit = testUnit
	slows := make([]*slowDev, 5)
	devs := make([]BlockDevice, len(slows))
	for i := range slows {
		slows[i] = &slowDev{BlockDevice: NewMemDevice(2 << 20)}
		devs[i] = slows[i]
	}
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, slows
}

// markBacklog dirties every stripe directly in the marking memory,
// bypassing WriteAt so the pressure valve can't cap the backlog while
// it is being built.
func markBacklog(t *testing.T, s *Store) int64 {
	t.Helper()
	stripes := s.geo.Stripes()
	s.meta.Lock()
	for st := int64(0); st < stripes; st++ {
		s.marks.Mark(st)
	}
	s.meta.Unlock()
	return stripes
}

// TestKickScrubBoundsInlineRebuilds is the regression test for the
// pressure-valve stall: with the dirty backlog far over threshold, one
// foreground write used to be held rebuilding the entire backlog
// inline. The valve must now rebuild at most maxInlineScrub stripes
// and return.
func TestKickScrubBoundsInlineRebuilds(t *testing.T) {
	const th = 8
	s, slows := openSlow(t, Options{Mode: Afraid, DirtyThreshold: th, DisableScrubber: true})
	stripes := markBacklog(t, s)

	// Each stripe rebuild reads 4 data units; at 2ms per read the old
	// unbounded valve would hold the write for (512-8)×4×2ms ≈ 4s.
	perRead := 2 * time.Millisecond
	for _, d := range slows {
		d.readDelay.Store(int64(perRead))
	}

	buf := make([]byte, 512)
	start := time.Now()
	if _, err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Generous bound for slow CI: the bounded valve does 4 rebuilds
	// (~32ms of injected delay); a quarter of the unbounded cost means
	// the old behaviour is back.
	unbounded := time.Duration(stripes-th) * 4 * perRead
	if elapsed > unbounded/4 {
		t.Fatalf("write under backlog took %v (unbounded cost ~%v): inline scrub pass is not bounded", elapsed, unbounded)
	}
	if dirty := s.DirtyStripes(); dirty <= 2*th {
		t.Fatalf("backlog drained to %d stripes inline; the valve should have stopped at %d rebuilds", dirty, maxInlineScrub)
	}
	if got := s.Stats().InlineScrubs; got != maxInlineScrub {
		t.Fatalf("InlineScrubs = %d, want %d", got, maxInlineScrub)
	}
}

// TestKickScrubHandsBacklogToScrubber verifies the second half of the
// valve: what the bounded inline pass doesn't rebuild, the kick channel
// hands to scrubLoop. ScrubIdle is an hour, so the loop's poll ticker
// (ScrubIdle/4) cannot be what drains the backlog promptly.
func TestKickScrubHandsBacklogToScrubber(t *testing.T) {
	const th = 8
	s, _ := openSlow(t, Options{Mode: Afraid, DirtyThreshold: th, ScrubIdle: time.Hour})
	markBacklog(t, s)

	if _, err := s.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.DirtyStripes() > th {
		if time.Now().After(deadline) {
			t.Fatalf("backlog stuck at %d dirty stripes: kick did not reach scrubLoop", s.DirtyStripes())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := s.Stats(); st.ForcedEpisodes == 0 {
		t.Fatalf("stats = %+v, want at least one forced episode", st)
	}
}

// TestIdleScrubPreemptedByForegroundWrite is the deterministic
// regression test for the idle-sample race: a write landing between
// scrubLoop's idle check and scrubOne must not have its fresh mark
// consumed as idle scrubbing. scrubOne re-checks the scrub generation
// under the stripe lock.
func TestIdleScrubPreemptedByForegroundWrite(t *testing.T) {
	s, _ := openSlow(t, Options{Mode: Afraid, DisableScrubber: true, ScrubIdle: time.Hour})
	buf := make([]byte, 512)
	if _, err := s.WriteAt(buf, 0); err != nil { // dirties stripe 0
		t.Fatal(err)
	}

	// The idle path samples the generation...
	s.meta.Lock()
	gen := s.scrubGen
	s.meta.Unlock()
	// ...and a foreground write lands before scrubOne runs.
	if _, err := s.WriteAt(buf, s.geo.StripeDataBytes()); err != nil {
		t.Fatal(err)
	}

	built, err := s.scrubOne(false, &gen)
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Fatal("idle scrub consumed a stripe despite fresh foreground I/O")
	}
	if st := s.Stats(); st.ScrubPreempts != 1 || st.ScrubbedStripes != 0 || st.DirtyStripes != 2 {
		t.Fatalf("stats after preempt = %+v, want 1 preempt, 0 scrubbed, 2 dirty", st)
	}

	// With a current generation the rebuild proceeds.
	s.meta.Lock()
	gen = s.scrubGen
	s.meta.Unlock()
	if built, err = s.scrubOne(false, &gen); err != nil || !built {
		t.Fatalf("current-generation scrub: built=%v err=%v", built, err)
	}
	if st := s.Stats(); st.ScrubbedStripes != 1 || st.DirtyStripes != 1 {
		t.Fatalf("stats after scrub = %+v, want 1 scrubbed, 1 dirty", st)
	}
}

// TestScrubGenRaceUnderLoad drives concurrent writers against a live
// scrubber with a tight idle threshold and a dirty threshold, so the
// idle path, the forced path, the inline valve, and the gen re-check
// all race under -race. Parity must still verify after a final flush.
func TestScrubGenRaceUnderLoad(t *testing.T) {
	s, _ := openSlow(t, Options{Mode: Afraid, ScrubIdle: time.Millisecond, DirtyThreshold: 4})
	const workers = 4
	var wg sync.WaitGroup
	region := s.geo.Capacity() / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := pattern(testUnit, byte(w))
			base := int64(w) * region
			for i := 0; i < 200; i++ {
				off := base + int64(i%32)*testUnit
				if _, err := s.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					time.Sleep(time.Millisecond) // open idle windows
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("inconsistent parity on stripes %v after concurrent scrub/write", bad)
	}
	st := s.Stats()
	if st.ScrubbedStripes == 0 {
		t.Fatal("scrubber never ran")
	}
	if st.DirtyHighWater == 0 {
		t.Fatal("dirty high-water mark never recorded")
	}
}
